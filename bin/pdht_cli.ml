(* pdht - command-line front end.

   Subcommands:
     model     evaluate the analytical model at one parameter point
     sweep     print the Fig. 1-4 series over the query-frequency sweep
     simulate  run the event-driven simulator for one strategy
     ttl       keyTtl sensitivity analysis (Section 5.1.1)
*)

open Cmdliner

module Params = Pdht_model.Params
module Sweep = Pdht_model.Sweep
module Strategies = Pdht_model.Strategies
module Index_policy = Pdht_model.Index_policy
module Table = Pdht_util.Table
module Scenario = Pdht_work.Scenario
module System = Pdht_core.System
module Strategy = Pdht_core.Strategy
module Psel = Pdht_policy.Selector

(* ------------------------------------------------------------------ *)
(* Shared parameter arguments (defaults = paper Table 1) *)

let peers_arg =
  Arg.(value & opt int Params.default.Params.num_peers
       & info [ "peers" ] ~docv:"N" ~doc:"Total number of peers (numPeers).")

let keys_arg =
  Arg.(value & opt int Params.default.Params.keys
       & info [ "keys" ] ~docv:"N" ~doc:"Number of unique keys.")

let stor_arg =
  Arg.(value & opt int Params.default.Params.stor
       & info [ "stor" ] ~docv:"N" ~doc:"Per-peer index cache capacity.")

let repl_arg =
  Arg.(value & opt int Params.default.Params.repl
       & info [ "repl" ] ~docv:"N" ~doc:"Replication factor (index and content).")

let alpha_arg =
  Arg.(value & opt float Params.default.Params.alpha
       & info [ "alpha" ] ~docv:"A" ~doc:"Zipf exponent of the query distribution.")

let fqry_arg =
  Arg.(value & opt float Params.default.Params.f_qry
       & info [ "fqry" ] ~docv:"F" ~doc:"Queries per peer per second.")

let fupd_arg =
  Arg.(value & opt float Params.default.Params.f_upd
       & info [ "fupd" ] ~docv:"F" ~doc:"Updates per key per second.")

let build_params num_peers keys stor repl alpha f_qry f_upd =
  {
    Params.default with
    Params.num_peers;
    keys;
    stor;
    repl;
    alpha;
    f_qry;
    f_upd;
  }

let params_term =
  Term.(const build_params $ peers_arg $ keys_arg $ stor_arg $ repl_arg $ alpha_arg
        $ fqry_arg $ fupd_arg)

let with_validated params k =
  match Params.validate params with
  | Ok p -> k p; `Ok ()
  | Error msg -> `Error (false, "invalid parameters: " ^ msg)

let jobs_arg =
  Arg.(value & opt int (Pdht_core.Runner.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for independent tasks (default: cores - 1). \
                 Results are identical for any value.")

(* ------------------------------------------------------------------ *)
(* Index-selection policy flag (shared by simulate and sweep). *)

let policy_conv =
  let parse s =
    match Psel.of_string s with Ok spec -> Ok spec | Error msg -> Error (`Msg msg)
  in
  let print ppf spec = Format.pp_print_string ppf (Psel.to_string spec) in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(value & opt (some policy_conv) None
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Index-selection policy: $(b,ttl) (model-derived keyTtl, the \
                 default), $(b,ttl:SECS) (fixed keyTtl), $(b,ttl:adaptive) \
                 (self-tuning controller), $(b,cost) (online Eq. 1-2 \
                 re-solve), $(b,learned) (demand-coverage placement), or \
                 $(b,cache:BUDGET) (size-budgeted cache).  Subsumes \
                 $(b,--key-ttl)/$(b,--adaptive); combining them is an error.")

(* ------------------------------------------------------------------ *)
(* Network-model flags (shared by simulate and sweep).  Giving any of
   them enables the model; the others fall back to
   [Pdht_net.Config.default]. *)

let net_term =
  let latency_arg =
    Arg.(value & opt (some string) None
         & info [ "latency" ] ~docv:"SPEC"
             ~doc:"Per-hop latency model: a bare float (constant seconds), or \
                   $(b,constant:S), $(b,uniform:LO:HI), \
                   $(b,lognormal:MU:SIGMA).  Enables the network model.")
  in
  let loss_arg =
    Arg.(value & opt (some float) None
         & info [ "loss" ] ~docv:"P"
             ~doc:"Independent per-message drop probability in [0,1].  Enables \
                   the network model.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "rpc-timeout" ] ~docv:"S"
             ~doc:"Seconds an RPC caller waits for its first attempt (later \
                   attempts back off exponentially).  Enables the network \
                   model.")
  in
  let retries_arg =
    Arg.(value & opt (some int) None
         & info [ "rpc-retries" ] ~docv:"N"
             ~doc:"RPC retries after the first attempt (0 = one shot).  \
                   Enables the network model.")
  in
  let build latency loss rpc_timeout rpc_retries =
    match (latency, loss, rpc_timeout, rpc_retries) with
    | None, None, None, None -> Ok None
    | _ -> (
        let base = Pdht_net.Config.default in
        let latency_result =
          match latency with
          | None -> Ok base.Pdht_net.Config.latency
          | Some spec -> Pdht_net.Config.latency_of_string spec
        in
        match latency_result with
        | Error msg -> Error ("--latency: " ^ msg)
        | Ok latency -> (
            let cfg =
              {
                base with
                Pdht_net.Config.latency;
                loss = Option.value loss ~default:base.Pdht_net.Config.loss;
                rpc_timeout =
                  Option.value rpc_timeout
                    ~default:base.Pdht_net.Config.rpc_timeout;
                rpc_retries =
                  Option.value rpc_retries
                    ~default:base.Pdht_net.Config.rpc_retries;
              }
            in
            match Pdht_net.Config.validate cfg with
            | Ok cfg -> Ok (Some cfg)
            | Error msg -> Error ("invalid network model: " ^ msg)))
  in
  Term.(const build $ latency_arg $ loss_arg $ timeout_arg $ retries_arg)

(* ------------------------------------------------------------------ *)
(* Fault-injection flags (simulate only).  [--fault] carries the whole
   schedule; the companion flags turn on the self-healing and checking
   halves. *)

let fault_term =
  let plan_arg =
    Arg.(value & opt (some string) None
         & info [ "fault" ] ~docv:"PLAN"
             ~doc:"Crash-fault schedule: comma-separated events \
                   $(b,crash:F\\@T) (crash fraction F at time T), \
                   $(b,crash:F\\@T+D) (recover after D), \
                   $(b,flap:F\\@T+DxN) (N crash episodes of length D), \
                   $(b,rack:LO-HI\\@T[+D]) (correlated index-range failure), \
                   $(b,abort\\@T).  Enables fault injection.")
  in
  let repair_arg =
    Arg.(value & opt (some float) None
         & info [ "fault-repair" ] ~docv:"S"
             ~doc:"Run a self-healing anti-entropy pass every S simulated \
                   seconds (requires $(b,--fault)).")
  in
  let threshold_arg =
    Arg.(value & opt (some float) None
         & info [ "fault-repair-threshold" ] ~docv:"F"
             ~doc:"Re-replicate an item when its online replica count falls \
                   below F * repl (default 0.5; requires $(b,--fault-repair)).")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "fault-check" ]
             ~doc:"Periodically verify fault invariants (store bounds, crashed \
                   peers hold nothing), failing the run with the simulated time \
                   on violation (requires $(b,--fault)).")
  in
  let build plan repair threshold check =
    match (plan, repair, threshold) with
    | None, None, None when not check -> Ok None
    | None, _, _ ->
        Error "--fault-repair/--fault-repair-threshold/--fault-check require --fault"
    | Some _, None, Some _ -> Error "--fault-repair-threshold requires --fault-repair"
    | Some spec, repair, threshold -> (
        match Pdht_fault.Plan.of_string spec with
        | Error msg -> Error ("--fault: " ^ msg)
        | Ok plan -> (
            let repair =
              Option.map
                (fun every ->
                  { Pdht_fault.Plan.every;
                    min_fraction = Option.value threshold ~default:0.5 })
                repair
            in
            let plan = { plan with Pdht_fault.Plan.repair; check_invariants = check } in
            match Pdht_fault.Plan.validate plan with
            | Ok plan -> Ok (Some plan)
            | Error msg -> Error ("invalid fault plan: " ^ msg)))
  in
  Term.(const build $ plan_arg $ repair_arg $ threshold_arg $ check_arg)

(* ------------------------------------------------------------------ *)
(* model *)

let run_model params =
  with_validated params @@ fun p ->
  Format.printf "%a@." Params.pp p;
  let s = Index_policy.solve p in
  Printf.printf "\nDerived quantities:\n";
  Printf.printf "  cSUnstr (Eq. 6)        %.2f msg\n" s.Index_policy.c_s_unstr;
  Printf.printf "  cSIndx (Eq. 7)         %.3f msg\n" s.Index_policy.c_s_indx;
  Printf.printf "  cIndKey (Eq. 10)       %.5f msg/s\n" s.Index_policy.c_ind_key;
  Printf.printf "  fMin (Eq. 2)           %.6f 1/s\n" s.Index_policy.f_min;
  Printf.printf "  maxRank                %d of %d keys\n" s.Index_policy.max_rank p.Params.keys;
  Printf.printf "  numActivePeers         %d\n" s.Index_policy.num_active_peers;
  Printf.printf "  pIndxd (Eq. 5)         %.4f\n" s.Index_policy.p_indexed;
  let key_ttl = Strategies.default_key_ttl s in
  Printf.printf "  keyTtl = 1/fMin        %.0f s\n\n" key_ttl;
  let show label (b : Strategies.breakdown) =
    Printf.printf "  %-22s %10.1f msg/s  (maint %.1f, index %.1f, broadcast %.1f)\n" label
      b.Strategies.total b.Strategies.maintenance b.Strategies.index_search
      b.Strategies.broadcast_search
  in
  Printf.printf "Strategy costs:\n";
  show "indexAll (Eq. 11)" (Strategies.index_all p);
  show "noIndex (Eq. 12)" (Strategies.no_index p);
  show "partial ideal (Eq. 13)" (Strategies.partial_ideal p s);
  show "partial TTL (Eq. 17)" (Strategies.partial_selection p ~key_ttl)

let model_cmd =
  let doc = "Evaluate the analytical model (Eq. 1-17) at one parameter point." in
  Cmd.v (Cmd.info "model" ~doc) Term.(ret (const run_model $ params_term))

(* ------------------------------------------------------------------ *)
(* sweep *)

let run_sweep csv jobs net policy params =
  if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else
  match net with
  | Error msg -> `Error (false, msg)
  | Ok net ->
  (match policy with
  | Some spec when Psel.uses_selector spec ->
      (* Same symmetry contract as --net below: the analytical sweep
         has no query stream for a selector to learn from. *)
      Printf.eprintf
        "note: selection policy %s does not affect the analytical sweep (the \
         TTL column is always the model's 1/fMin); use `pdht simulate \
         --policy` to measure it\n"
        (Psel.to_string spec)
  | Some _ | None -> ());
  (match net with
  | Some cfg ->
      (* The analytical sweep counts messages (Eqs. 11-17); delivery
         timing does not enter the equations.  Accept the flags for
         symmetry with [simulate], but say what they (don't) do. *)
      Printf.eprintf
        "note: network model (%s, loss %.3f) does not affect the analytical \
         sweep; use `pdht simulate` to measure delivery effects\n"
        (Pdht_net.Config.latency_to_string cfg.Pdht_net.Config.latency)
        cfg.Pdht_net.Config.loss
  | None -> ());
  with_validated params @@ fun p ->
  let t =
    Table.create
      ~columns:
        [ ("fQry", Table.Left); ("indexAll", Table.Right); ("noIndex", Table.Right);
          ("partial", Table.Right); ("selection", Table.Right);
          ("idx frac", Table.Right); ("pIndxd", Table.Right); ("keyTtl", Table.Right) ]
  in
  List.iter
    (fun (pt : Sweep.point) ->
      Table.add_row t
        [ Printf.sprintf "1/%.0f" (1. /. pt.Sweep.f_qry);
          Printf.sprintf "%.0f" pt.Sweep.index_all;
          Printf.sprintf "%.0f" pt.Sweep.no_index;
          Printf.sprintf "%.0f" pt.Sweep.partial_ideal;
          Printf.sprintf "%.0f" pt.Sweep.partial_selection;
          Printf.sprintf "%.3f" pt.Sweep.index_fraction;
          Printf.sprintf "%.3f" pt.Sweep.p_indexed;
          Printf.sprintf "%.0f" pt.Sweep.key_ttl ])
    (Pdht_runner.Pool.map_list ~jobs
       ~f:(fun _ f -> Sweep.point (Params.with_query_frequency p f))
       (Params.query_frequency_sweep p));
  if csv then print_endline (Table.render_csv t) else Table.print t

let sweep_cmd =
  let doc = "Print the Fig. 1-4 series across the paper's query-frequency sweep." in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an aligned table.")
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(ret (const run_sweep $ csv_arg $ jobs_arg $ net_term $ policy_arg $ params_term))

(* ------------------------------------------------------------------ *)
(* simulate *)

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "partial" -> Ok `Partial
    | "indexall" | "index-all" | "all" -> Ok `Index_all
    | "noindex" | "no-index" | "none" -> Ok `No_index
    | _ -> Error (`Msg "expected one of: partial, indexall, noindex")
  in
  let print ppf v =
    Format.pp_print_string ppf
      (match v with `Partial -> "partial" | `Index_all -> "indexall" | `No_index -> "noindex")
  in
  Arg.conv (parse, print)

let setup_logging verbose log_level =
  Logs.set_reporter (Logs.format_reporter ());
  let level =
    match log_level with
    | Some l -> l
    | None -> Some (if verbose then Logs.Info else Logs.Warning)
  in
  Logs.set_level level

(* "query,dht-lookup" -> category list; errors name the bad token. *)
let parse_trace_filter spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec convert acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match Pdht_obs.Event.category_of_label tok with
        | Some cat -> convert (cat :: acc) rest
        | None ->
            Error
              (Printf.sprintf "unknown trace category %S; known: %s" tok
                 (String.concat ", "
                    (List.map Pdht_obs.Event.category_label
                       Pdht_obs.Event.all_categories))))
  in
  convert [] tokens

(* [--policy] subsumes the legacy TTL flags; the error names every
   conflicting flag actually passed, so one fix clears the whole
   conflict. *)
let policy_flag_conflict ~policy ~key_ttl ~adaptive =
  if policy = None then None
  else
    Option.map
      (fun msg ->
        msg
        ^ "; use --policy ttl:SECS or --policy ttl:adaptive instead of combining \
           them")
      (Pdht_util.Flags.conflicts ~dominant:"--policy"
         ~subsumed:[ ("--key-ttl", key_ttl <> None); ("--adaptive", adaptive) ])

(* [--churn] takes an optional session spec in the
   {!Pdht_dist.Session.of_string} grammar; the bare flag means the
   historical default (exponential 10-minute uptimes, 75% availability
   — see [churn_arg]'s [~vopt]).  An all-exponential spec normalises to
   [Exponential_sessions], so it runs the exact pre-existing churn code
   path; heavy-tailed legs become a [Sessions] plan. *)
let churn_plan_of_flag = function
  | None -> Ok Scenario.No_churn
  | Some spec_str -> (
      match Pdht_dist.Session.of_string spec_str with
      | Error msg -> Error ("--churn: " ^ msg)
      | Ok spec ->
          if Pdht_dist.Session.is_exponential spec then
            Ok
              (Scenario.Exponential_sessions
                 {
                   mean_uptime = spec.Pdht_dist.Session.mean_uptime;
                   mean_downtime = spec.Pdht_dist.Session.mean_downtime;
                   initially_online_fraction =
                     spec.Pdht_dist.Session.initially_online_fraction;
                 })
          else Ok (Scenario.Sessions spec))

(* Scenario construction shared by [simulate] and [cluster], so a
   same-flag cluster run reproduces the simulator's workload exactly. *)
let build_scenario ~preset ~peers ~keys ~fqry ~duration ~seed ~churn =
  match preset with
  | Some name -> (
      match Scenario.preset name with
      | Some s -> Ok { s with Scenario.seed }
      | None ->
          Error
            (Printf.sprintf "unknown preset %S; available: %s" name
               (String.concat ", " (List.map (fun (n, _, _) -> n) Scenario.presets))))
  | None -> (
      match churn_plan_of_flag churn with
      | Error _ as e -> e
      | Ok churn ->
          Ok
            {
              Scenario.news_default with
              Scenario.num_peers = peers;
              keys;
              f_qry = fqry;
              duration;
              seed;
              churn;
            })

let selection_policy_of_flags ~policy ~key_ttl ~adaptive =
  match policy with
  | Some spec -> spec
  | None ->
      (* Legacy flags: --adaptive wins over --key-ttl (the controller
         subsumes any fixed starting point). *)
      if adaptive then Psel.Ttl Psel.Adaptive
      else (
        match key_ttl with
        | Some ttl -> Psel.Ttl (Psel.Fixed ttl)
        | None -> Psel.Ttl Psel.Model_derived)

let strategy_of_flag strategy ~scenario ~options =
  match strategy with
  | `Partial ->
      Strategy.Partial_index { key_ttl = System.derive_key_ttl scenario options }
  | `Index_all -> Strategy.Index_all
  | `No_index -> Strategy.No_index

let run_simulate verbose log_level metrics_out trace_out trace_filter trace_sample
    timeline_out timeline_window preset peers keys repl stor fqry duration seed strategy
    key_ttl adaptive policy churn bucket_refresh jobs replicate net fault =
  setup_logging verbose log_level;
  if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else
    match policy_flag_conflict ~policy ~key_ttl ~adaptive with
  | Some msg -> `Error (false, msg)
  | None ->
  if replicate < 1 then `Error (false, "--replicate must be >= 1")
  else if trace_sample < 1 then `Error (false, "--trace-sample must be >= 1")
  else if (match timeline_window with Some w -> not (w > 0.) | None -> false) then
    `Error (false, "--timeline-window must be positive")
  else if (match bucket_refresh with Some r -> not (r > 0.) | None -> false) then
    `Error (false, "--bucket-refresh must be positive")
  else
  match net with
  | Error msg -> `Error (false, msg)
  | Ok net ->
  match fault with
  | Error msg -> `Error (false, msg)
  | Ok fault ->
  match build_scenario ~preset ~peers ~keys ~fqry ~duration ~seed ~churn with
  | Error msg -> `Error (false, msg)
  | Ok scenario ->
  match Scenario.validate scenario with
  | Error msg -> `Error (false, "invalid scenario: " ^ msg)
  | Ok scenario ->
      let selection_policy = selection_policy_of_flags ~policy ~key_ttl ~adaptive in
      (* [--timeline-out] without an explicit window gets the default
         sample cadence; a bare [--timeline-window] still lands the
         summary in the printed report. *)
      let timeline_width =
        match (timeline_out, timeline_window) with
        | _, Some w -> Some w
        | Some _, None -> Some 60.
        | None, None -> None
      in
      (* [--bucket-refresh] only makes sense on Kademlia, and the CLI has
         no backend flag, so the option implies the backend. *)
      let backend =
        match bucket_refresh with
        | Some _ -> Some Pdht_dht.Dht.Kademlia_backend
        | None -> None
      in
      let options =
        System.Options.make ~repl ~stor ~selection_policy ?backend ?net ?fault
          ?timeline_window:timeline_width ?bucket_refresh ()
      in
      let strategy = strategy_of_flag strategy ~scenario ~options in
      if replicate > 1 then begin
        if trace_out <> None || metrics_out <> None || timeline_out <> None then
          `Error
            ( false,
              "--trace-out/--metrics-out/--timeline-out describe a single run; drop \
               them or drop --replicate" )
        else begin
          let seeds = List.init replicate (fun i -> seed + i) in
          let stats =
            Pdht_core.Experiment.replicate_seeds ~jobs ~options ~scenario ~strategy
              ~seeds ()
          in
          Printf.printf "%d/%d runs (seeds %d..%d, %d domains)\n" stats.Pdht_core.Experiment.runs
            replicate seed (seed + replicate - 1) jobs;
          Printf.printf "  messages/s  %.1f +- %.1f\n"
            stats.Pdht_core.Experiment.mean_messages_per_second
            stats.Pdht_core.Experiment.sd_messages_per_second;
          Printf.printf "  hit rate    %.3f +- %.3f\n"
            stats.Pdht_core.Experiment.mean_hit_rate
            stats.Pdht_core.Experiment.sd_hit_rate;
          List.iter
            (fun (tag, msg) -> Printf.printf "  FAILED %s: %s\n" tag msg)
            stats.Pdht_core.Experiment.failures;
          `Ok ()
        end
      end
      else
      let filter =
        match trace_filter with
        | None -> Ok None
        | Some spec -> (
            match parse_trace_filter spec with
            | Ok cats -> Ok (Some cats)
            | Error msg -> Error msg)
      in
      (match filter with
      | Error msg -> `Error (false, msg)
      | Ok filter -> (
          let obs = Pdht_obs.Context.create () in
          let tracer = Pdht_obs.Context.tracer obs in
          let run_label = scenario.Scenario.name ^ "/" ^ Strategy.label strategy in
          match
            match trace_out with
            | None -> Ok None
            | Some path -> (
                match open_out path with
                | oc ->
                    Pdht_obs.Tracer.enable tracer;
                    Pdht_obs.Tracer.set_filter tracer filter;
                    Pdht_obs.Tracer.set_sampling tracer trace_sample;
                    Pdht_obs.Tracer.add_sink tracer (Pdht_obs.Sink.jsonl oc);
                    (* Keep the file usable if the run dies mid-way: the
                       engine's snapshot tick drives registered
                       flushers. *)
                    Pdht_obs.Tracer.add_flusher tracer (fun () -> flush oc);
                    Ok (Some oc)
                | exception Sys_error msg -> Error ("cannot open trace file: " ^ msg))
          with
          | Error msg -> `Error (false, msg)
          | Ok trace_channel -> (
              (* Same interrupted-run insurance for metrics: rewrite the
                 snapshot (sans final timestamp) on every flush tick; the
                 post-run write below restores the exact final file. *)
              (match metrics_out with
              | None -> ()
              | Some path ->
                  Pdht_obs.Tracer.add_flusher tracer (fun () ->
                      try
                        Pdht_obs.Export.to_file ~run:run_label ~path
                          (Pdht_obs.Registry.snapshot (Pdht_obs.Context.registry obs))
                      with Sys_error _ -> ()));
              (* Single-spec batch: the runner executes it inline against
                 this obs context, so the tracer still sees every event,
                 and the seed derivation matches what batch runs use. *)
              let report =
                Pdht_core.Runner.run_all ~jobs ~obs
                  [ Pdht_core.Run_spec.make ~strategy ~options scenario ]
                |> List.hd |> snd |> Pdht_core.Run_result.report_exn
              in
              Format.printf "%a@." System.pp_report report;
              (match trace_channel with
              | None -> ()
              | Some oc ->
                  close_out oc;
                  Logs.info (fun m ->
                      m "wrote %d trace events"
                        (Pdht_obs.Tracer.events_emitted tracer)));
              let timeline_status =
                match (timeline_out, report.System.timeline) with
                | None, _ -> Ok ()
                | Some path, Some summary -> (
                    match open_out path with
                    | oc ->
                        Pdht_obs.Timeline.write_jsonl oc summary;
                        close_out oc;
                        Ok ()
                    | exception Sys_error msg ->
                        Error ("cannot write timeline file: " ^ msg))
                | Some _, None -> Error "timeline missing from report (internal error)"
              in
              match timeline_status with
              | Error msg -> `Error (false, msg)
              | Ok () -> (
                  match metrics_out with
                  | None -> `Ok ()
                  | Some path -> (
                      match
                        Pdht_obs.Export.to_file ~run:run_label
                          ~time:scenario.Scenario.duration ~path
                          (Pdht_obs.Registry.snapshot (Pdht_obs.Context.registry obs))
                      with
                      | () -> `Ok ()
                      | exception Sys_error msg ->
                          `Error (false, "cannot write metrics file: " ^ msg))))))

let simulate_cmd =
  let doc = "Run the event-driven simulator for one strategy on a news-style scenario." in
  let duration_arg =
    Arg.(value & opt float 1800. & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  let strategy_arg =
    Arg.(value & opt strategy_conv `Partial
         & info [ "strategy" ] ~docv:"S" ~doc:"partial | indexall | noindex.")
  in
  let ttl_arg =
    Arg.(value & opt (some float) None
         & info [ "key-ttl" ] ~docv:"S" ~doc:"Fixed keyTtl (default: model-derived 1/fMin).")
  in
  let adaptive_arg =
    Arg.(value & flag & info [ "adaptive" ] ~doc:"Enable the self-tuning keyTtl controller.")
  in
  let churn_arg =
    Arg.(
      value
      & opt ~vopt:(Some "exp:up=600:down=200") (some string) None
      & info [ "churn" ] ~docv:"SPEC"
          ~doc:
            "Enable peer churn.  Bare $(b,--churn) keeps the historical default \
             (exponential sessions, 10-minute mean uptime, 75% availability).  \
             SPEC is DIST[:up=S][:down=S][:sigma=X|:shape=X][:on=F] with DIST \
             one of exp, lognormal, weibull, pareto; up/down are mean session \
             seconds, sigma/shape the heavy-tail parameter, on the initial \
             online fraction (default: stationary up/(up+down)).")
  in
  let bucket_refresh_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "bucket-refresh" ] ~docv:"SECS"
          ~doc:
            "Live Kademlia routing tables: mutable k-buckets with replacement \
             caches and liveness probing, plus a stale-range refresh sweep \
             every SECS simulated seconds.  Implies the Kademlia backend; \
             probe traffic is charged to the maintenance account.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log run progress to stderr.")
  in
  let log_level_arg =
    let level_conv =
      Arg.conv
        ( Logs.level_of_string,
          fun ppf l -> Format.pp_print_string ppf (Logs.level_to_string l) )
    in
    Arg.(value & opt (some level_conv) None
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Log verbosity (quiet, error, warning, info, debug); overrides \
                   $(b,--verbose).")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the final metrics snapshot to FILE (JSONL, or CSV if the \
                   name ends in .csv).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Enable event tracing and stream typed events to FILE as JSONL.")
  in
  let trace_filter_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-filter" ] ~docv:"CATS"
             ~doc:"Comma-separated event categories to keep (e.g. \
                   query,dht-lookup); default: all.  Filtering can orphan \
                   child spans whose parent's category is dropped; the trace \
                   analyzer only guarantees rooted trees on unfiltered \
                   traces.")
  in
  let trace_sample_arg =
    Arg.(value & opt int 1
         & info [ "trace-sample" ] ~docv:"N"
             ~doc:"Causally trace 1 in N queries/updates (default 1 = all): \
                   sampled operations carry span ids linking every step to \
                   its root, for $(b,trace_stats).")
  in
  let timeline_out_arg =
    Arg.(value & opt (some string) None
         & info [ "timeline-out" ] ~docv:"FILE"
             ~doc:"Record a windowed timeline (queries, hits, messages, \
                   latency, indexed keys per window) and write it to FILE as \
                   JSONL.")
  in
  let timeline_window_arg =
    Arg.(value & opt (some float) None
         & info [ "timeline-window" ] ~docv:"S"
             ~doc:"Timeline window width in simulated seconds (default 60); \
                   also enables the timeline in the printed report without \
                   $(b,--timeline-out).")
  in
  let preset_arg =
    Arg.(value & opt (some string) None
         & info [ "preset" ]
             ~doc:"Named scenario (news, flash-crowd, churn-storm, busy-day, \
                   uniform-stress); overrides the size/rate flags.")
  in
  let peers = Arg.(value & opt int 1000 & info [ "peers" ] ~docv:"N" ~doc:"Peers.") in
  let keys = Arg.(value & opt int 2000 & info [ "keys" ] ~docv:"N" ~doc:"Keys.") in
  let repl = Arg.(value & opt int 20 & info [ "repl" ] ~docv:"N" ~doc:"Replication factor.") in
  let stor = Arg.(value & opt int 100 & info [ "stor" ] ~docv:"N" ~doc:"Cache capacity.") in
  let fqry =
    Arg.(value & opt float (1. /. 30.) & info [ "fqry" ] ~docv:"F" ~doc:"Queries/peer/s.")
  in
  let replicate_arg =
    Arg.(value & opt int 1
         & info [ "replicate" ] ~docv:"N"
             ~doc:"Run N independent replicas on seeds seed..seed+N-1 (spread over \
                   $(b,--jobs) domains) and report mean +- sd instead of one report.")
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      ret
        (const run_simulate $ verbose_arg $ log_level_arg $ metrics_out_arg
         $ trace_out_arg $ trace_filter_arg $ trace_sample_arg $ timeline_out_arg
         $ timeline_window_arg $ preset_arg $ peers $ keys $ repl $ stor
         $ fqry $ duration_arg $ seed_arg $ strategy_arg $ ttl_arg $ adaptive_arg
         $ policy_arg $ churn_arg $ bucket_refresh_arg $ jobs_arg $ replicate_arg
         $ net_term $ fault_term))

(* ------------------------------------------------------------------ *)
(* ttl *)

let run_ttl params =
  with_validated params @@ fun p ->
  let t =
    Table.create
      ~columns:
        [ ("scale", Table.Right); ("keyTtl", Table.Right); ("cost [msg/s]", Table.Right);
          ("vs indexAll", Table.Right); ("vs noIndex", Table.Right);
          ("savings drop", Table.Right) ]
  in
  List.iter
    (fun (r : Pdht_model.Ttl_analysis.row) ->
      Table.add_row t
        [ Printf.sprintf "%.2f" r.Pdht_model.Ttl_analysis.scale;
          Printf.sprintf "%.0f" r.Pdht_model.Ttl_analysis.key_ttl;
          Printf.sprintf "%.0f" r.Pdht_model.Ttl_analysis.total_cost;
          Printf.sprintf "%.3f" r.Pdht_model.Ttl_analysis.savings_vs_all;
          Printf.sprintf "%.3f" r.Pdht_model.Ttl_analysis.savings_vs_none;
          Printf.sprintf "%+.4f" r.Pdht_model.Ttl_analysis.savings_drop_vs_ideal_ttl ])
    (Pdht_model.Ttl_analysis.run p ~scales:Pdht_model.Ttl_analysis.default_scales);
  Table.print t

let ttl_cmd =
  let doc = "keyTtl estimation-error sensitivity (paper Section 5.1.1)." in
  Cmd.v (Cmd.info "ttl" ~doc) Term.(ret (const run_ttl $ params_term))

(* ------------------------------------------------------------------ *)
(* plan *)

let run_plan params availability target max_repl =
  with_validated params @@ fun p ->
  let module Planner = Pdht_model.Replication_planner in
  match Planner.plan p ~peer_availability:availability ~target ~max_repl with
  | plan ->
      Printf.printf "peer availability %.2f, target item availability %.4f:\n" availability target;
      Printf.printf "  availability floor     %d replicas\n" plan.Planner.floor;
      Printf.printf "  cost-optimal factor    %d replicas\n" plan.Planner.repl;
      Printf.printf "  achieved availability  %.6f\n" plan.Planner.achieved_availability;
      Printf.printf "  Eq. 17 system cost     %.0f msg/s\n" plan.Planner.partial_cost
  | exception Invalid_argument msg -> Printf.printf "no feasible plan: %s\n" msg

let plan_cmd =
  let doc = "Plan a replication factor for an availability target ([VaCh02] mechanism)." in
  let availability_arg =
    Arg.(value & opt float 0.5
         & info [ "availability" ] ~docv:"A" ~doc:"Probability a peer is online.")
  in
  let target_arg =
    Arg.(value & opt float 0.99
         & info [ "target" ] ~docv:"T" ~doc:"Required item availability in [0,1).")
  in
  let max_repl_arg =
    Arg.(value & opt int 200 & info [ "max-repl" ] ~docv:"N" ~doc:"Largest factor to consider.")
  in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(ret (const run_plan $ params_term $ availability_arg $ target_arg $ max_repl_arg))

(* ------------------------------------------------------------------ *)
(* node *)

let run_node connect node_id obs_out =
  if connect < 1 || connect > 65535 then
    `Error (false, "--connect must be a TCP port (1-65535)")
  else if node_id < 0 then `Error (false, "--node-id must be >= 0")
  else
    match Pdht_proc.Node.run ?obs_out ~port:connect ~node_id () with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
    | exception Unix.Unix_error (err, fn, _) ->
        `Error
          ( false,
            Printf.sprintf "node %d: %s: %s" node_id fn (Unix.error_message err) )

let node_cmd =
  let doc =
    "Run one storage worker process (spawned by $(b,cluster); rarely run by hand)."
  in
  let connect_arg =
    Arg.(required & opt (some int) None
         & info [ "connect" ] ~docv:"PORT"
             ~doc:"Conductor port on 127.0.0.1 to connect to.")
  in
  let node_id_arg =
    Arg.(required & opt (some int) None
         & info [ "node-id" ] ~docv:"K" ~doc:"This worker's id in [0, nodes).")
  in
  let obs_out_arg =
    Arg.(value & opt (some string) None
         & info [ "obs-out" ] ~docv:"FILE"
             ~doc:"Write this node's counter registry as node-stamped JSONL on \
                   shutdown.")
  in
  Cmd.v (Cmd.info "node" ~doc)
    Term.(ret (const run_node $ connect_arg $ node_id_arg $ obs_out_arg))

(* ------------------------------------------------------------------ *)
(* cluster *)

let run_cluster verbose log_level nodes obs_dir preset peers keys repl stor fqry
    duration seed strategy key_ttl adaptive policy churn =
  setup_logging verbose log_level;
  if nodes < 1 then `Error (false, "--nodes must be >= 1")
  else
    match policy_flag_conflict ~policy ~key_ttl ~adaptive with
    | Some msg -> `Error (false, msg)
    | None -> (
        match build_scenario ~preset ~peers ~keys ~fqry ~duration ~seed ~churn with
        | Error msg -> `Error (false, msg)
        | Ok scenario -> (
            match Scenario.validate scenario with
            | Error msg -> `Error (false, "invalid scenario: " ^ msg)
            | Ok scenario -> (
                let selection_policy =
                  selection_policy_of_flags ~policy ~key_ttl ~adaptive
                in
                let options =
                  System.Options.make ~repl ~stor ~selection_policy ()
                in
                let strategy = strategy_of_flag strategy ~scenario ~options in
                (* The simulator path hands its spec to the batch runner,
                   which derives the run seed as stream 0 of the scenario
                   seed; apply the same derivation so a same-flag cluster
                   run is the same-seed run. *)
                let scenario =
                  { scenario with
                    Scenario.seed =
                      Pdht_util.Rng.derive_seed ~seed:scenario.Scenario.seed
                        ~stream:0 }
                in
                let config =
                  { (Pdht_proc.Cluster.default_config ~nodes
                       ~exe:Sys.executable_name)
                    with Pdht_proc.Cluster.obs_dir }
                in
                match Pdht_proc.Cluster.run config scenario strategy options with
                | report ->
                    Format.printf "%a@." System.pp_report report;
                    `Ok ()
                | exception Failure msg -> `Error (false, msg)
                | exception Invalid_argument msg -> `Error (false, msg)
                | exception Unix.Unix_error (err, fn, _) ->
                    `Error
                      ( false,
                        Printf.sprintf "cluster: %s: %s" fn
                          (Unix.error_message err) ))))

let cluster_cmd =
  let doc =
    "Run a scenario across N worker processes on this machine: the conductor \
     keeps the protocol brain and drives every index-store access and DHT hop \
     over loopback TCP to the worker owning that member's shard.  With the \
     same flags and seed, prints the exact report $(b,simulate) prints."
  in
  let nodes_arg =
    Arg.(value & opt int 4
         & info [ "nodes" ] ~docv:"N" ~doc:"Worker process count.")
  in
  let obs_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "obs-dir" ] ~docv:"DIR"
             ~doc:"Telemetry directory: each worker writes \
                   $(i,node-K.jsonl) and the conductor writes \
                   $(i,merged.jsonl) (run registry plus summed worker \
                   counters).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log run progress to stderr.")
  in
  let log_level_arg =
    let level_conv =
      Arg.conv
        ( Logs.level_of_string,
          fun ppf l -> Format.pp_print_string ppf (Logs.level_to_string l) )
    in
    Arg.(value & opt (some level_conv) None
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Log verbosity (quiet, error, warning, info, debug); overrides \
                   $(b,--verbose).")
  in
  let preset_arg =
    Arg.(value & opt (some string) None
         & info [ "preset" ]
             ~doc:"Named scenario (news, flash-crowd, churn-storm, busy-day, \
                   uniform-stress); overrides the size/rate flags.")
  in
  let peers = Arg.(value & opt int 1000 & info [ "peers" ] ~docv:"N" ~doc:"Peers.") in
  let keys = Arg.(value & opt int 2000 & info [ "keys" ] ~docv:"N" ~doc:"Keys.") in
  let repl = Arg.(value & opt int 20 & info [ "repl" ] ~docv:"N" ~doc:"Replication factor.") in
  let stor = Arg.(value & opt int 100 & info [ "stor" ] ~docv:"N" ~doc:"Cache capacity.") in
  let fqry =
    Arg.(value & opt float (1. /. 30.) & info [ "fqry" ] ~docv:"F" ~doc:"Queries/peer/s.")
  in
  let duration_arg =
    Arg.(value & opt float 1800. & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  let strategy_arg =
    Arg.(value & opt strategy_conv `Partial
         & info [ "strategy" ] ~docv:"S" ~doc:"partial | indexall | noindex.")
  in
  let ttl_arg =
    Arg.(value & opt (some float) None
         & info [ "key-ttl" ] ~docv:"S" ~doc:"Fixed keyTtl (default: model-derived 1/fMin).")
  in
  let adaptive_arg =
    Arg.(value & flag & info [ "adaptive" ] ~doc:"Enable the self-tuning keyTtl controller.")
  in
  let churn_arg =
    Arg.(
      value
      & opt ~vopt:(Some "exp:up=600:down=200") (some string) None
      & info [ "churn" ] ~docv:"SPEC"
          ~doc:
            "Enable peer churn.  Bare $(b,--churn) keeps the historical default \
             (exponential sessions, 10-minute mean uptime, 75% availability); \
             SPEC accepts the session grammar documented under $(b,simulate).")
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      ret
        (const run_cluster $ verbose_arg $ log_level_arg $ nodes_arg $ obs_dir_arg
         $ preset_arg $ peers $ keys $ repl $ stor $ fqry $ duration_arg $ seed_arg
         $ strategy_arg $ ttl_arg $ adaptive_arg $ policy_arg $ churn_arg))

(* ------------------------------------------------------------------ *)

let () =
  let doc = "query-adaptive partial distributed hash table (Klemm, Datta, Aberer; EDBT 2004)" in
  let info = Cmd.info "pdht" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ model_cmd; sweep_cmd; simulate_cmd; cluster_cmd; node_cmd; ttl_cmd;
            plan_cmd ]))
