module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng
module Sampling = Pdht_util.Sampling

type t = {
  paths : string array; (* peer -> binary path *)
  refs : int array array array; (* peer -> level -> complementary references *)
  leaves : (string, int array) Hashtbl.t; (* terminal path -> replica group *)
  subtrees : (string, int array) Hashtbl.t; (* any trie prefix -> peers under it *)
  refs_per_level : int;
  max_depth : int;
}

let members t = Array.length t.paths
let path_of t p = t.paths.(p)
let path_length t p = String.length t.paths.(p)
let max_path_length t = t.max_depth

let build rng ~members:n ~leaf_size ~refs_per_level =
  if n < 1 then invalid_arg "Pgrid.build: need >= 1 member";
  if leaf_size < 1 then invalid_arg "Pgrid.build: leaf_size must be >= 1";
  if refs_per_level < 1 then invalid_arg "Pgrid.build: refs_per_level must be >= 1";
  let paths = Array.make n "" in
  let leaves = Hashtbl.create 64 in
  let subtrees = Hashtbl.create 256 in
  let max_depth = ref 0 in
  (* Balanced recursive split: both halves differ in size by at most
     one, giving near-uniform path lengths — the shape a converged
     P-Grid reaches under uniform load. *)
  let rec split prefix peers =
    Hashtbl.replace subtrees prefix peers;
    if Array.length peers <= leaf_size || String.length prefix >= Bitkey.width then begin
      Hashtbl.replace leaves prefix peers;
      Array.iter (fun p -> paths.(p) <- prefix) peers;
      if String.length prefix > !max_depth then max_depth := String.length prefix
    end
    else begin
      let shuffled = Array.copy peers in
      Sampling.shuffle rng shuffled;
      let half = Array.length shuffled / 2 in
      split (prefix ^ "0") (Array.sub shuffled 0 half);
      split (prefix ^ "1") (Array.sub shuffled half (Array.length shuffled - half))
    end
  in
  split "" (Array.init n Fun.id);
  let complement path l =
    let flipped = if path.[l] = '0' then '1' else '0' in
    String.sub path 0 l ^ String.make 1 flipped
  in
  let refs =
    Array.init n (fun p ->
        let path = paths.(p) in
        Array.init (String.length path) (fun l ->
            let pool = Hashtbl.find subtrees (complement path l) in
            let k = min refs_per_level (Array.length pool) in
            let idx = Sampling.sample_without_replacement rng ~k ~n:(Array.length pool) in
            Array.map (fun i -> pool.(i)) idx))
  in
  { paths; refs; leaves; subtrees; refs_per_level; max_depth = !max_depth }

let key_matches_path key path =
  let rec go i = i = String.length path || (Bitkey.bit key i = (path.[i] = '1') && go (i + 1)) in
  go 0

(* Length of the longest common prefix of the key's bits and [path]. *)
let match_length key path =
  let n = String.length path in
  let rec go i = if i < n && Bitkey.bit key i = (path.[i] = '1') then go (i + 1) else i in
  go 0

let responsible_peers t key =
  let rec descend prefix i =
    match Hashtbl.find_opt t.leaves prefix with
    | Some peers -> peers
    | None ->
        if i >= Bitkey.width then [||]
        else
          let bit = if Bitkey.bit key i then "1" else "0" in
          descend (prefix ^ bit) (i + 1)
  in
  descend "" 0

let responsible t ~online key =
  let peers = responsible_peers t key in
  let rec scan i =
    if i = Array.length peers then None
    else if online peers.(i) then Some peers.(i)
    else scan (i + 1)
  in
  scan 0

let refs_at t ~peer ~level =
  if level < 0 || level >= Array.length t.refs.(peer) then
    invalid_arg "Pgrid.refs_at: level out of range";
  t.refs.(peer).(level)

type outcome = { responsible : int option; messages : int; hops : int }

let lookup t rng ~online ~source ~key =
  if source < 0 || source >= members t then invalid_arg "Pgrid.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else begin
    let messages = ref 0 in
    let hops = ref 0 in
    let current = ref source in
    let failed = ref false in
    let arrived = ref (key_matches_path key t.paths.(source)) in
    (* Every hop extends the matched prefix by at least one bit, so the
       loop runs at most [max_depth] times. *)
    while (not !arrived) && not !failed do
      let path = t.paths.(!current) in
      let l = match_length key path in
      let candidates = Array.copy t.refs.(!current).(l) in
      Sampling.shuffle rng candidates;
      let next = ref None in
      let i = ref 0 in
      while !next = None && !i < Array.length candidates do
        incr messages;
        if online candidates.(!i) then next := Some candidates.(!i);
        incr i
      done;
      match !next with
      | Some p ->
          incr hops;
          current := p;
          if key_matches_path key t.paths.(p) then arrived := true
      | None -> failed := true
    done;
    if !failed then { responsible = None; messages = !messages; hops = !hops }
    else { responsible = Some !current; messages = !messages; hops = !hops }
  end

let probe_and_repair t rng ~online ~peer ~probes =
  if probes < 0 then invalid_arg "Pgrid.probe_and_repair: negative probes";
  let levels = Array.length t.refs.(peer) in
  if levels = 0 then 0
  else begin
    for _ = 1 to probes do
      let l = Rng.int rng levels in
      let arr = t.refs.(peer).(l) in
      if Array.length arr > 0 then begin
        let i = Rng.int rng (Array.length arr) in
        if not (online arr.(i)) then begin
          (* Replace with an online peer from the same complementary
             subtree, if one exists. *)
          let path = t.paths.(peer) in
          let flipped = if path.[l] = '0' then '1' else '0' in
          let comp = String.sub path 0 l ^ String.make 1 flipped in
          let pool = Hashtbl.find t.subtrees comp in
          let tries = min 20 (2 * Array.length pool) in
          let rec attempt k =
            if k = 0 then ()
            else
              let cand = pool.(Rng.int rng (Array.length pool)) in
              if online cand then arr.(i) <- cand else attempt (k - 1)
          in
          attempt tries
        end
      end
    done;
    probes
  end

let routing_table_size t p =
  Array.fold_left (fun acc refs -> acc + Array.length refs) 0 t.refs.(p)
