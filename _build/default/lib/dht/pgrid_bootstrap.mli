(** Decentralized P-Grid construction ([Aber01]).

    {!Pgrid} builds its trie by a global balanced split — fine for
    steady-state experiments, but the real P-Grid is self-organizing:
    peers start unspecialized and build the trie through random pairwise
    meetings, with no coordination.  This module implements that
    bootstrap, the algorithm behind the paper's remark that P-Grid is "a
    self-organizing access structure".

    The exchange rule between meeting peers [p] and [q] (basic Aberer
    2001 protocol):

    - equal paths: the region splits — [p] appends 0, [q] appends 1,
      each adds the other as a reference at the new level;
    - one path a proper prefix of the other: the shallower peer
      specializes one level, taking the branch complementary to the
      deeper peer's next bit (keeping both branches covered), and they
      reference each other;
    - diverging paths: they exchange references at the divergence level
      and recursively introduce random references to each other,
      propagating the meeting deeper into both subtrees.

    Invariant maintained throughout (tested): every key always has at
    least one responsible peer — splits and specializations never
    abandon a region. *)

type t

val create : members:int -> ?max_depth:int -> ?refs_per_level:int -> unit -> t
(** All peers start with the empty path.  [max_depth] (default 20) caps
    specialization; [refs_per_level] (default 4) bounds reference lists.
    Requires [members >= 1]. *)

val members : t -> int
val path_of : t -> int -> string
val refs_at : t -> peer:int -> level:int -> int array

val run_exchanges : t -> Pdht_util.Rng.t -> meetings:int -> unit
(** Perform [meetings] random pairwise meetings (with their recursive
    sub-exchanges). *)

val responsible_peers : t -> Pdht_util.Bitkey.t -> int array
(** Peers whose current path prefixes the key (O(members) scan). *)

type outcome = { responsible : int option; messages : int; hops : int }

val lookup :
  t -> Pdht_util.Rng.t -> online:(int -> bool) -> source:int -> key:Pdht_util.Bitkey.t -> outcome
(** Greedy prefix routing exactly as in {!Pgrid.lookup}; fails when the
    trie under construction lacks a reference for some level. *)

type stats = {
  mean_path_length : float;
  max_path_length : int;
  min_path_length : int;
  distinct_paths : int;
  mean_refs : float; (** routing-table entries per peer *)
}

val stats : t -> stats

val lookup_success_rate :
  t -> Pdht_util.Rng.t -> trials:int -> float
(** Fraction of random-source random-key lookups that reach a
    responsible peer with everyone online — the convergence measure for
    the bootstrap bench. *)
