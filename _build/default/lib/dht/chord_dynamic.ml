module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng

type node = {
  id : Bitkey.t;
  mutable successor : int;
  mutable predecessor : int option;
  mutable successor_list : int list;
  mutable fingers : int array; (* finger j aims at id + 2^j *)
}

type t = {
  slots : node option array;
  successor_list_length : int;
  rng : Rng.t;
  mutable count : int;
}

let create rng ~capacity ?(successor_list_length = 4) () =
  if capacity < 1 then invalid_arg "Chord_dynamic.create: capacity must be >= 1";
  if successor_list_length < 1 then
    invalid_arg "Chord_dynamic.create: successor_list_length must be >= 1";
  { slots = Array.make capacity None; successor_list_length; rng; count = 0 }

let node_count t = t.count
let is_member t slot = slot >= 0 && slot < Array.length t.slots && t.slots.(slot) <> None

let get t slot =
  match t.slots.(slot) with
  | Some n -> n
  | None -> invalid_arg "Chord_dynamic: slot is not a member"

let id_of t slot = (get t slot).id

let fresh_slot t =
  let n = Array.length t.slots in
  let rec scan i = if i = n then None else if t.slots.(i) = None then Some i else scan (i + 1) in
  scan 0

let half_add id offset = Bitkey.of_int ((Bitkey.to_int id + offset) land max_int)

(* Circular open interval (a, b); when a = b it wraps the whole ring
   except the endpoint itself (Chord's degenerate single-node case). *)
let in_open_interval ~a ~b x =
  if Bitkey.compare a b < 0 then Bitkey.compare a x < 0 && Bitkey.compare x b < 0
  else if Bitkey.compare a b > 0 then Bitkey.compare x a > 0 || Bitkey.compare x b < 0
  else not (Bitkey.equal x a)

(* (a, b] circular; when a = b the interval wraps the whole ring (the
   single-node / self-successor case). *)
let in_half_open ~a ~b x =
  Bitkey.equal a b || in_open_interval ~a ~b x || Bitkey.equal x b

let make_node t id slot successor =
  t.slots.(slot) <-
    Some
      {
        id;
        successor;
        predecessor = None;
        successor_list = [];
        fingers = Array.make Bitkey.width successor;
      };
  t.count <- t.count + 1

let random_fresh_id t =
  let rec draw () =
    let id = Bitkey.random t.rng in
    let clash = ref false in
    Array.iter
      (function Some n when Bitkey.equal n.id id -> clash := true | Some _ | None -> ())
      t.slots;
    if !clash then draw () else id
  in
  draw ()

let bootstrap t =
  if t.count > 0 then invalid_arg "Chord_dynamic.bootstrap: ring is not empty";
  match fresh_slot t with
  | None -> invalid_arg "Chord_dynamic.bootstrap: zero capacity"
  | Some slot ->
      let id = random_fresh_id t in
      make_node t id slot slot;
      let n = get t slot in
      n.predecessor <- Some slot;
      n.successor_list <- [ slot ];
      slot

type outcome = { responsible : int option; messages : int; hops : int }

(* Greedy routing over current pointers.  Probing a dead pointer costs a
   message (the timeout) and the route tries the next option; it fails
   only when every pointer out of the current node is dead. *)
let lookup t ~source ~key =
  if not (is_member t source) then invalid_arg "Chord_dynamic.lookup: source not a member";
  let messages = ref 0 in
  let hops = ref 0 in
  let current = ref source in
  let result = ref None in
  let give_up = ref false in
  let budget = 4 * Array.length t.slots in
  while !result = None && (not !give_up) && !hops <= budget do
    let n = get t !current in
    let succ_alive = is_member t n.successor in
    if succ_alive && in_half_open ~a:n.id ~b:(id_of t n.successor) key then begin
      incr messages;
      result := Some n.successor
    end
    else begin
      (* Closest preceding alive finger. *)
      let chosen = ref None in
      let j = ref (Bitkey.width - 1) in
      while !chosen = None && !j >= 0 do
        let f = n.fingers.(!j) in
        if f <> !current && is_member t f && in_open_interval ~a:n.id ~b:key (id_of t f)
        then begin
          incr messages;
          chosen := Some f
        end
        else if f <> !current && not (is_member t f) then incr messages (* timeout *);
        decr j
      done;
      match !chosen with
      | Some f ->
          incr hops;
          current := f
      | None ->
          (* Fall back on the successor chain. *)
          let rec try_successors = function
            | [] -> None
            | s :: rest ->
                incr messages;
                if is_member t s && s <> !current then Some s else try_successors rest
          in
          let next =
            if succ_alive then begin
              incr messages;
              Some n.successor
            end
            else try_successors n.successor_list
          in
          (match next with
          | Some s ->
              incr hops;
              current := s
          | None -> give_up := true)
    end
  done;
  if !hops > budget then give_up := true;
  match !result with
  | Some r when not !give_up -> { responsible = Some r; messages = !messages; hops = !hops }
  | Some _ | None -> { responsible = None; messages = !messages; hops = !hops }

let join t ~via =
  if not (is_member t via) then Error "via is not a member"
  else
    match fresh_slot t with
    | None -> Error "ring is at capacity"
    | Some slot -> (
        let id = random_fresh_id t in
        let o = lookup t ~source:via ~key:id in
        match o.responsible with
        | None -> Error "join lookup failed; stabilize and retry"
        | Some successor ->
            make_node t id slot successor;
            Ok (slot, o.messages + 1))

let leave t ~node =
  if not (is_member t node) then 0
  else begin
    let n = get t node in
    let messages = ref 0 in
    (match n.predecessor with
    | Some p when is_member t p ->
        incr messages;
        (get t p).successor <- n.successor
    | Some _ | None -> ());
    if is_member t n.successor then begin
      incr messages;
      (get t n.successor).predecessor <- n.predecessor
    end;
    t.slots.(node) <- None;
    t.count <- t.count - 1;
    !messages
  end

let crash t ~node =
  if is_member t node then begin
    t.slots.(node) <- None;
    t.count <- t.count - 1
  end

let ideal_responsible t key =
  let best = ref None in
  Array.iteri
    (fun slot entry ->
      match entry with
      | None -> ()
      | Some n -> (
          let better current =
            (* smallest id >= key; fall back to the global minimum id *)
            match current with
            | None -> true
            | Some c ->
                let cid = id_of t c in
                if Bitkey.compare cid key >= 0 then
                  Bitkey.compare n.id key >= 0 && Bitkey.compare n.id cid < 0
                else
                  Bitkey.compare n.id key >= 0 || Bitkey.compare n.id cid < 0
          in
          if better !best then best := Some slot))
    t.slots;
  !best

let stabilize_node t slot =
  if not (is_member t slot) then 0
  else begin
    let n = get t slot in
    let messages = ref 0 in
    (* 1. Replace a dead successor from the successor list (or, as a
       last resort, with the ideal successor — modelling the expensive
       rejoin-by-lookup a real node would perform). *)
    if not (is_member t n.successor) then begin
      let rec first_alive = function
        | [] -> None
        | s :: rest ->
            incr messages;
            if is_member t s && s <> slot then Some s else first_alive rest
      in
      match first_alive n.successor_list with
      | Some s -> n.successor <- s
      | None -> (
          match ideal_responsible t (half_add n.id 1) with
          | Some s ->
              messages := !messages + 3;
              n.successor <- s
          | None -> n.successor <- slot)
    end;
    if is_member t n.successor then begin
      let succ = get t n.successor in
      (* 2. Rectify: adopt our successor's predecessor if it sits
         between us.  With a self-successor (bootstrap state) the
         interval wraps the whole ring, so any notifier is adopted —
         this is how the first node learns a second one exists. *)
      incr messages;
      (match succ.predecessor with
      | Some p
        when is_member t p && p <> slot
             && in_open_interval ~a:n.id ~b:succ.id (id_of t p) ->
          n.successor <- p
      | Some _ | None -> ());
      (* 3. Notify the (possibly new) successor. *)
      if n.successor <> slot then begin
        let succ = get t n.successor in
        incr messages;
        match succ.predecessor with
        | Some p
          when is_member t p && p <> n.successor
               && not (in_open_interval ~a:(id_of t p) ~b:succ.id n.id) ->
            ()
        | Some _ | None -> succ.predecessor <- Some slot
      end;
      (* 4. Refresh the successor list from the successor. *)
      incr messages;
      let succ_list = (get t n.successor).successor_list in
      n.successor_list <-
        (n.successor :: succ_list)
        |> List.filteri (fun i _ -> i < t.successor_list_length)
    end;
    (* 5. Repair one random finger by routing to its target. *)
    let j = Rng.int t.rng Bitkey.width in
    let target = half_add n.id (1 lsl j) in
    (if not (is_member t n.fingers.(j)) then
       match ideal_responsible t target with
       | Some f ->
           messages := !messages + 2;
           n.fingers.(j) <- f
       | None -> ());
    !messages
  end

let stabilize t rng =
  let order = Array.init (Array.length t.slots) Fun.id in
  Pdht_util.Sampling.shuffle rng order;
  Array.fold_left (fun acc slot -> acc + stabilize_node t slot) 0 order

let ring_consistent t =
  if t.count = 0 then true
  else begin
    (* Find any member, walk successors, require a single cycle visiting
       every member with ids in circular order. *)
    let start = ref None in
    Array.iteri (fun i e -> if e <> None && !start = None then start := Some i) t.slots;
    match !start with
    | None -> true
    | Some s ->
        let visited = Hashtbl.create t.count in
        let rec walk current steps =
          if steps > t.count then false
          else begin
            Hashtbl.replace visited current ();
            let n = get t current in
            if not (is_member t n.successor) then false
            else if n.successor = s then Hashtbl.length visited = t.count
            else if Hashtbl.mem visited n.successor then false
            else walk n.successor (steps + 1)
          end
        in
        walk s 1
  end
