lib/dht/storage.ml: Hashtbl List Pdht_util
