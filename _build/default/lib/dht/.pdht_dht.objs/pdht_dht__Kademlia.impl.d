lib/dht/kademlia.ml: Array Fun Hashtbl List Pdht_util
