lib/dht/kademlia.mli: Pdht_util
