lib/dht/pgrid_bootstrap.ml: Array Hashtbl List Pdht_util String
