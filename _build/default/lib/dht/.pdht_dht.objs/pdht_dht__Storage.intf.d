lib/dht/storage.mli: Pdht_util
