lib/dht/dht.mli: Pdht_util
