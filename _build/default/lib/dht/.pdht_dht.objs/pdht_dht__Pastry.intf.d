lib/dht/pastry.mli: Pdht_util
