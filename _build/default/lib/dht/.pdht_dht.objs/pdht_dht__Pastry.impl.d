lib/dht/pastry.ml: Array Fun Hashtbl List Pdht_util
