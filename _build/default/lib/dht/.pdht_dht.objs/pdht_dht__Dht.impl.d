lib/dht/dht.ml: Chord Kademlia Pastry Pgrid
