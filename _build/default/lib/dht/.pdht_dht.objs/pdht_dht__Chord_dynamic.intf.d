lib/dht/chord_dynamic.mli: Pdht_util
