lib/dht/churn.ml: Array List Pdht_sim Pdht_util
