lib/dht/pgrid_bootstrap.mli: Pdht_util
