lib/dht/maintenance.mli: Dht Pdht_sim Pdht_util
