lib/dht/chord.ml: Array Float Fun Hashtbl List Pdht_util
