lib/dht/chord_dynamic.ml: Array Fun Hashtbl List Pdht_util
