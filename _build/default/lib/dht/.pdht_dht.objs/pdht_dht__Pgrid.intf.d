lib/dht/pgrid.mli: Pdht_util
