lib/dht/chord.mli: Pdht_util
