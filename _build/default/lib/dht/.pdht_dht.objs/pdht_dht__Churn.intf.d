lib/dht/churn.mli: Pdht_sim Pdht_util
