lib/dht/maintenance.ml: Dht Float Pdht_sim Pdht_util
