lib/dht/pgrid.ml: Array Fun Hashtbl Pdht_util String
