(** Chord with dynamic membership: joins, leaves and stabilization
    ([StMo01] Section 4 protocol).

    {!Chord} fixes the member set and routes around temporarily offline
    peers — all the paper's model needs.  This module completes the
    substrate with the actual membership protocol: nodes join through
    any existing member, leave (gracefully or by crashing), and a
    periodic {!stabilize} pass repairs successor pointers, successor
    lists and fingers, message-counted like everything else.

    Node identity: this module manages up to [capacity] node slots;
    slots are created by {!join} and recycled after {!leave}/{!crash}.
    All operations cost messages, returned by each call. *)

type t

val create : Pdht_util.Rng.t -> capacity:int -> ?successor_list_length:int -> unit -> t
(** An empty ring with room for [capacity] concurrent nodes.
    [successor_list_length] (default 4) is the fault-tolerance depth of
    each node's successor list.  Requires [capacity >= 1]. *)

val node_count : t -> int
(** Nodes currently in the ring. *)

val is_member : t -> int -> bool
val id_of : t -> int -> Pdht_util.Bitkey.t
(** @raise Invalid_argument for a slot not currently in the ring. *)

val bootstrap : t -> int
(** Create the first node.  @raise Invalid_argument if the ring is not
    empty or capacity is 0. *)

val join : t -> via:int -> (int * int, string) result
(** [join t ~via] creates a node and joins it through existing member
    [via]: the new node looks up its own id to find its successor.
    Returns [(node, messages)] or an error (ring full / via not a
    member). *)

val leave : t -> node:int -> int
(** Graceful departure: the node hands its successor pointer to its
    predecessor (a constant number of messages, returned) and vanishes. *)

val crash : t -> node:int -> unit
(** The node vanishes without telling anyone; other nodes' pointers to
    it dangle until stabilization notices. *)

val stabilize : t -> Pdht_util.Rng.t -> int
(** One global stabilization round: every node (in random order) checks
    its successor (replacing it from the successor list if dead), learns
    its successor's predecessor (the classic notify/rectify step),
    refreshes its successor list and repairs one random finger.  Returns
    messages spent. *)

type outcome = { responsible : int option; messages : int; hops : int }

val lookup : t -> source:int -> key:Pdht_util.Bitkey.t -> outcome
(** Greedy routing over the current (possibly stale) pointers; fails if
    it runs into dead pointers stabilization has not fixed yet. *)

val ring_consistent : t -> bool
(** Do the successor pointers form a single cycle covering every member
    in id order?  The protocol's core invariant after stabilization
    quiesces. *)

val ideal_responsible : t -> Pdht_util.Bitkey.t -> int option
(** The member that should own the key given perfect pointers. *)
