module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng

type t = {
  paths : string array; (* peer -> current path; grows during bootstrap *)
  refs : int list array array; (* peer -> level -> references, newest first *)
  max_depth : int;
  refs_per_level : int;
}

let create ~members ?(max_depth = 20) ?(refs_per_level = 4) () =
  if members < 1 then invalid_arg "Pgrid_bootstrap.create: need >= 1 member";
  if max_depth < 1 || max_depth > Bitkey.width then
    invalid_arg "Pgrid_bootstrap.create: bad max_depth";
  if refs_per_level < 1 then invalid_arg "Pgrid_bootstrap.create: refs_per_level must be >= 1";
  {
    paths = Array.make members "";
    refs = Array.init members (fun _ -> Array.make max_depth []);
    max_depth;
    refs_per_level;
  }

let members t = Array.length t.paths
let path_of t p = t.paths.(p)

let refs_at t ~peer ~level =
  if level < 0 || level >= t.max_depth then invalid_arg "Pgrid_bootstrap.refs_at: bad level";
  Array.of_list t.refs.(peer).(level)

let add_ref t peer ~level target =
  if level < t.max_depth && target <> peer then begin
    let existing = t.refs.(peer).(level) in
    if not (List.mem target existing) then begin
      let trimmed =
        if List.length existing >= t.refs_per_level then
          List.filteri (fun i _ -> i < t.refs_per_level - 1) existing
        else existing
      in
      t.refs.(peer).(level) <- target :: trimmed
    end
  end

let common_prefix_length a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

(* One meeting.  [budget] bounds the recursive introductions so a single
   meeting terminates even in a fully built trie. *)
let rec exchange t rng p q budget =
  if p <> q && budget > 0 then begin
    let pa = t.paths.(p) and qa = t.paths.(q) in
    let l = common_prefix_length pa qa in
    let len_p = String.length pa and len_q = String.length qa in
    if l = len_p && l = len_q then begin
      (* Identical paths: split the region. *)
      if len_p < t.max_depth then begin
        t.paths.(p) <- pa ^ "0";
        t.paths.(q) <- qa ^ "1";
        add_ref t p ~level:l q;
        add_ref t q ~level:l p
      end
    end
    else if l = len_p then begin
      (* pa is a proper prefix of qa: p specializes to the branch
         complementary to q's next bit, keeping both covered. *)
      if len_p < t.max_depth then begin
        let complement = if qa.[len_p] = '0' then "1" else "0" in
        t.paths.(p) <- pa ^ complement;
        add_ref t p ~level:len_p q;
        add_ref t q ~level:len_p p
      end
    end
    else if l = len_q then
      (* Symmetric case. *)
      exchange t rng q p budget
    else begin
      (* Paths diverge at level l: exchange references and propagate the
         meeting into both subtrees through random introductions. *)
      add_ref t p ~level:l q;
      add_ref t q ~level:l p;
      let introduce peer other =
        match t.refs.(peer).(l) with
        | [] -> ()
        | refs ->
            let arr = Array.of_list refs in
            let pick = arr.(Rng.int rng (Array.length arr)) in
            exchange t rng pick other (budget - 1)
      in
      introduce p q;
      introduce q p
    end
  end

let run_exchanges t rng ~meetings =
  let n = members t in
  if n > 1 then
    for _ = 1 to meetings do
      let p = Rng.int rng n in
      let q = Rng.int rng n in
      exchange t rng p q 4
    done

let key_matches_path key path =
  let rec go i = i = String.length path || (Bitkey.bit key i = (path.[i] = '1') && go (i + 1)) in
  go 0

let responsible_peers t key =
  let acc = ref [] in
  for p = members t - 1 downto 0 do
    if key_matches_path key t.paths.(p) then acc := p :: !acc
  done;
  Array.of_list !acc

let match_length key path =
  let n = String.length path in
  let rec go i = if i < n && Bitkey.bit key i = (path.[i] = '1') then go (i + 1) else i in
  go 0

type outcome = { responsible : int option; messages : int; hops : int }

let lookup t rng ~online ~source ~key =
  if source < 0 || source >= members t then invalid_arg "Pgrid_bootstrap.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else begin
    let messages = ref 0 in
    let hops = ref 0 in
    let current = ref source in
    let failed = ref false in
    let arrived = ref (key_matches_path key t.paths.(source)) in
    while (not !arrived) && not !failed do
      let path = t.paths.(!current) in
      let l = match_length key path in
      let candidates =
        if l < t.max_depth then Array.of_list t.refs.(!current).(l) else [||]
      in
      if Array.length candidates = 0 then failed := true
      else begin
        let shuffled = Array.copy candidates in
        Pdht_util.Sampling.shuffle rng shuffled;
        let next = ref None in
        let i = ref 0 in
        while !next = None && !i < Array.length shuffled do
          incr messages;
          if online shuffled.(!i) then next := Some shuffled.(!i);
          incr i
        done;
        match !next with
        | None -> failed := true
        | Some p ->
            incr hops;
            (* The bootstrap trie can hold stale references (to peers
               that have since specialized into the same side as the key
               no longer matching); progress is not guaranteed per hop,
               so also bail out after too many hops. *)
            current := p;
            if key_matches_path key t.paths.(p) then arrived := true
            else if !hops > 4 * t.max_depth then failed := true
      end
    done;
    if !failed then { responsible = None; messages = !messages; hops = !hops }
    else { responsible = Some !current; messages = !messages; hops = !hops }
  end

type stats = {
  mean_path_length : float;
  max_path_length : int;
  min_path_length : int;
  distinct_paths : int;
  mean_refs : float;
}

let stats t =
  let n = members t in
  let total_len = ref 0 in
  let max_len = ref 0 in
  let min_len = ref max_int in
  let total_refs = ref 0 in
  let distinct = Hashtbl.create n in
  for p = 0 to n - 1 do
    let len = String.length t.paths.(p) in
    total_len := !total_len + len;
    if len > !max_len then max_len := len;
    if len < !min_len then min_len := len;
    Hashtbl.replace distinct t.paths.(p) ();
    Array.iter (fun refs -> total_refs := !total_refs + List.length refs) t.refs.(p)
  done;
  {
    mean_path_length = float_of_int !total_len /. float_of_int n;
    max_path_length = !max_len;
    min_path_length = !min_len;
    distinct_paths = Hashtbl.length distinct;
    mean_refs = float_of_int !total_refs /. float_of_int n;
  }

let lookup_success_rate t rng ~trials =
  if trials < 1 then invalid_arg "Pgrid_bootstrap.lookup_success_rate: need >= 1 trial";
  let online _ = true in
  let ok = ref 0 in
  for _ = 1 to trials do
    let key = Bitkey.random rng in
    let source = Rng.int rng (members t) in
    let o = lookup t rng ~online ~source ~key in
    match o.responsible with
    | Some r -> if key_matches_path key t.paths.(r) then incr ok
    | None -> ()
  done;
  float_of_int !ok /. float_of_int trials
