type update = { time : float; article_id : int }

type t = { rng : Pdht_util.Rng.t; articles : int; mean_lifetime : float }

let create rng ~articles ~mean_lifetime =
  if articles < 1 then invalid_arg "Update_gen.create: need >= 1 article";
  if not (mean_lifetime > 0.) then invalid_arg "Update_gen.create: lifetime must be positive";
  { rng; articles; mean_lifetime }

let total_rate t = float_of_int t.articles /. t.mean_lifetime

let next t ~after =
  let gap = Pdht_util.Rng.exponential t.rng ~rate:(total_rate t) in
  { time = after +. gap; article_id = Pdht_util.Rng.int t.rng t.articles }

let stream t ~from ~until =
  let rec continue after () =
    let u = next t ~after in
    if u.time > until then Seq.Nil else Seq.Cons (u, continue u.time)
  in
  continue from

let attach t engine ~until ~handler =
  let rec schedule_next after =
    let u = next t ~after in
    if u.time <= until then
      Pdht_sim.Engine.schedule_at engine ~time:u.time (fun eng ->
          handler eng u;
          schedule_next u.time)
  in
  schedule_next (Pdht_sim.Engine.now engine)

let per_key_update_frequency t ~keys_per_article =
  if keys_per_article < 1 then invalid_arg "Update_gen.per_key_update_frequency";
  1. /. t.mean_lifetime
