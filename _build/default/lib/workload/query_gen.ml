type query = { time : float; peer : int; key_index : int; rank : int }

type t = {
  rng : Pdht_util.Rng.t;
  num_peers : int;
  profile : Rate_profile.t;
  distribution : Pdht_dist.Discrete.t;
  shift : Pdht_dist.Popularity_shift.t;
}

let create rng ~num_peers ~f_qry ?profile ~distribution ~shift () =
  if num_peers < 1 then invalid_arg "Query_gen.create: need >= 1 peer";
  if not (f_qry > 0.) then invalid_arg "Query_gen.create: f_qry must be positive";
  if Pdht_dist.Discrete.n distribution <> Pdht_dist.Popularity_shift.n shift then
    invalid_arg "Query_gen.create: distribution and shift disagree on key count";
  let profile =
    match profile with Some p -> p | None -> Rate_profile.constant f_qry
  in
  { rng; num_peers; profile; distribution; shift }

let expected_rate t = float_of_int t.num_peers *. Rate_profile.max_rate t.profile

(* Non-homogeneous Poisson sampling by thinning: draw candidates at the
   peak aggregate rate, accept each with probability rate(t) / peak. *)
let next t ~after =
  let peak = expected_rate t in
  let rec draw after =
    let gap = Pdht_util.Rng.exponential t.rng ~rate:peak in
    let time = after +. gap in
    let accept_probability =
      float_of_int t.num_peers *. Rate_profile.rate_at t.profile time /. peak
    in
    if Pdht_util.Rng.unit_float t.rng < accept_probability then time else draw time
  in
  let time = draw after in
  let peer = Pdht_util.Rng.int t.rng t.num_peers in
  let rank = Pdht_dist.Discrete.sample t.distribution t.rng in
  let key_index = Pdht_dist.Popularity_shift.key_of_rank t.shift ~time rank in
  { time; peer; key_index; rank }

let stream t ~from ~until =
  let rec continue after () =
    let q = next t ~after in
    if q.time > until then Seq.Nil else Seq.Cons (q, continue q.time)
  in
  continue from

let attach t engine ~until ~handler =
  let rec schedule_next after =
    let q = next t ~after in
    if q.time <= until then
      Pdht_sim.Engine.schedule_at engine ~time:q.time (fun eng ->
          handler eng q;
          schedule_next q.time)
  in
  schedule_next (Pdht_sim.Engine.now engine)
