(** Time-varying query rates.

    "The average query frequency per peer varies from one query every 30
    seconds, in very busy periods of the day, to one every 2 hours, in
    calmer times" (paper Section 4).  A profile maps simulated time to a
    per-peer rate; {!Query_gen} samples the resulting non-homogeneous
    Poisson process by thinning. *)

type t

val constant : float -> t
(** Fixed rate (must be positive). *)

val diurnal : busy:float -> calm:float -> period:float -> busy_fraction:float -> t
(** A repeating day: the first [busy_fraction] of every [period] seconds
    runs at the [busy] per-peer rate, the rest at [calm].  Requires
    positive rates and period, [busy_fraction] in (0, 1). *)

val piecewise : default:float -> (float * float * float) list -> t
(** [(from, until, rate)] intervals (absolute times, no wrap-around)
    evaluated first-match; [default] elsewhere.  Requires positive rates
    and [from < until] per segment. *)

val rate_at : t -> float -> float
(** Per-peer rate at an instant (times before 0 use time 0). *)

val max_rate : t -> float
(** Upper bound over all times — the thinning envelope. *)

val mean_rate : t -> horizon:float -> float
(** Average rate over [\[0, horizon\]] (numeric, 1-second steps). *)
