lib/workload/rate_profile.mli:
