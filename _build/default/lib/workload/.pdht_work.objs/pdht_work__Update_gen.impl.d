lib/workload/update_gen.ml: Pdht_sim Pdht_util Seq
