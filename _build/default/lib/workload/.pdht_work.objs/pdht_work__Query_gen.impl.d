lib/workload/query_gen.ml: Pdht_dist Pdht_sim Pdht_util Rate_profile Seq
