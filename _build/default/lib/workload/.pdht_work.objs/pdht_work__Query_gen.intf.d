lib/workload/query_gen.mli: Pdht_dist Pdht_sim Pdht_util Rate_profile Seq
