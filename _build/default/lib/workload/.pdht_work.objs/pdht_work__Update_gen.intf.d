lib/workload/update_gen.mli: Pdht_sim Pdht_util Seq
