lib/workload/scenario.ml: Format List Pdht_dist Printf Rate_profile String
