lib/workload/scenario.mli: Format Pdht_dist Rate_profile
