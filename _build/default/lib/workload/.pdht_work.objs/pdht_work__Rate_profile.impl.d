lib/workload/rate_profile.ml: Float List
