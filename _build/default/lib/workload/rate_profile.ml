type t =
  | Constant of float
  | Diurnal of { busy : float; calm : float; period : float; busy_fraction : float }
  | Piecewise of { default : float; segments : (float * float * float) list }

let constant rate =
  if not (rate > 0.) then invalid_arg "Rate_profile.constant: rate must be positive";
  Constant rate

let diurnal ~busy ~calm ~period ~busy_fraction =
  if not (busy > 0. && calm > 0.) then invalid_arg "Rate_profile.diurnal: rates must be positive";
  if not (period > 0.) then invalid_arg "Rate_profile.diurnal: period must be positive";
  if not (busy_fraction > 0. && busy_fraction < 1.) then
    invalid_arg "Rate_profile.diurnal: busy_fraction must be in (0,1)";
  Diurnal { busy; calm; period; busy_fraction }

let piecewise ~default segments =
  if not (default > 0.) then invalid_arg "Rate_profile.piecewise: default must be positive";
  List.iter
    (fun (from, until, rate) ->
      if not (from < until) then invalid_arg "Rate_profile.piecewise: empty segment";
      if not (rate > 0.) then invalid_arg "Rate_profile.piecewise: rate must be positive")
    segments;
  Piecewise { default; segments }

let rate_at t time =
  let time = Float.max 0. time in
  match t with
  | Constant rate -> rate
  | Diurnal { busy; calm; period; busy_fraction } ->
      let phase = Float.rem time period /. period in
      if phase < busy_fraction then busy else calm
  | Piecewise { default; segments } ->
      let rec scan = function
        | [] -> default
        | (from, until, rate) :: rest ->
            if time >= from && time < until then rate else scan rest
      in
      scan segments

let max_rate t =
  match t with
  | Constant rate -> rate
  | Diurnal { busy; calm; _ } -> Float.max busy calm
  | Piecewise { default; segments } ->
      List.fold_left (fun acc (_, _, rate) -> Float.max acc rate) default segments

let mean_rate t ~horizon =
  if not (horizon > 0.) then invalid_arg "Rate_profile.mean_rate: horizon must be positive";
  let steps = max 1 (int_of_float horizon) in
  let acc = ref 0. in
  for i = 0 to steps - 1 do
    acc := !acc +. rate_at t (float_of_int i)
  done;
  !acc /. float_of_int steps
