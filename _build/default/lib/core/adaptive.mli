(** Self-tuning keyTtl (the paper's Section 5.1.1 future work,
    implemented here as an extension).

    "The value of keyTtl can be calculated by estimating cSUnstr,
    cSIndx, and cIndKey."  The controller observes exactly those
    quantities from live traffic — average broadcast-search cost,
    average index-search cost (routing + replica flood), and
    maintenance traffic per indexed key — plugs them into Eq. 2
    ([fMin = cIndKey / (cSUnstr - cSIndx)]) and sets
    [keyTtl = 1 / fMin], exponentially smoothed. *)

type t

val create : ?smoothing:float -> ?min_ttl:float -> ?max_ttl:float -> unit -> t
(** [smoothing] is the EMA weight of each new estimate (default 0.3);
    [min_ttl]/[max_ttl] clamp the result (defaults 1. and 1e7). *)

val note_query : t -> Pdht.query_result -> unit
(** Feed every query result into the estimator. *)

val observed_search_costs : t -> (float * float) option
(** [(cSUnstr_hat, cSIndx2_hat)] so far in the current window; [None]
    until both have at least one sample. *)

val retune : t -> Pdht.t -> now:float -> float option
(** Recompute the TTL from the window since the previous [retune] call
    and apply it with {!Pdht.set_key_ttl}.  Returns the new TTL, or
    [None] when the window lacked data (no broadcasts, no index
    searches, or an empty index).  Resets the window either way. *)

val current_ttl_estimate : t -> float option
(** Last TTL this controller computed. *)

val attach :
  t -> Pdht_sim.Engine.t -> Pdht.t -> every:float -> unit
(** Schedule periodic {!retune} on an engine.  Requires [every > 0.]. *)
