(** The three indexing strategies the paper compares.

    [Partial_index] is the paper's contribution (Section 5's selection
    algorithm); the other two are its baselines (Eq. 11 and Eq. 12). *)

type t =
  | Index_all
      (** every key proactively indexed and kept consistent — a
          traditional DHT *)
  | No_index
      (** no DHT; every query broadcast into the unstructured network *)
  | Partial_index of { key_ttl : float }
      (** the query-adaptive PDHT: keys enter the index on demand and
          expire after [key_ttl] seconds without a query *)

val is_partial : t -> bool
val key_ttl : t -> float option
val label : t -> string
val pp : Format.formatter -> t -> unit
