type t =
  | Index_all
  | No_index
  | Partial_index of { key_ttl : float }

let is_partial = function Partial_index _ -> true | Index_all | No_index -> false

let key_ttl = function
  | Partial_index { key_ttl } -> Some key_ttl
  | Index_all | No_index -> None

let label = function
  | Index_all -> "indexAll"
  | No_index -> "noIndex"
  | Partial_index _ -> "partial"

let pp ppf t =
  match t with
  | Partial_index { key_ttl } -> Format.fprintf ppf "partial(keyTtl=%g)" key_ttl
  | Index_all | No_index -> Format.pp_print_string ppf (label t)
