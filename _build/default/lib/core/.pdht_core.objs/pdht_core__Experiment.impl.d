lib/core/experiment.ml: Array Float List Pdht_dht Pdht_model Pdht_overlay Pdht_sim Pdht_util Pdht_work Printf Strategy String System
