lib/core/adaptive.ml: Float Pdht Pdht_sim
