lib/core/pdht.ml: Array Config Hashtbl Pdht_dht Pdht_gossip Pdht_overlay Pdht_sim Pdht_util Strategy
