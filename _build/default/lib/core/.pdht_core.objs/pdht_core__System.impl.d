lib/core/system.ml: Adaptive Array Config Float Format List Logs Pdht Pdht_dht Pdht_model Pdht_sim Pdht_util Pdht_work Strategy
