lib/core/system.mli: Format Pdht_dht Pdht_sim Pdht_work Strategy
