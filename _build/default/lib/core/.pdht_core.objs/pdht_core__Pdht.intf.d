lib/core/pdht.mli: Config Pdht_dht Pdht_sim Pdht_util
