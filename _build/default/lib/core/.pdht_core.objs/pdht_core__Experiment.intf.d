lib/core/experiment.mli: Pdht_work Strategy System
