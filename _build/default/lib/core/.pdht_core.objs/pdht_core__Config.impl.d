lib/core/config.ml: Float Pdht_dht Pdht_overlay Strategy
