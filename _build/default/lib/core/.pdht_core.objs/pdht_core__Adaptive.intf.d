lib/core/adaptive.mli: Pdht Pdht_sim
