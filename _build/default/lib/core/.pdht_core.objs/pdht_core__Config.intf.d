lib/core/config.mli: Pdht_dht Pdht_overlay Strategy
