type t = {
  num_peers : int;
  active_members : int;
  keys : int;
  repl : int;
  stor : int;
  backend : Pdht_dht.Dht.backend;
  strategy : Strategy.t;
  topology_degree : int;
  search : Pdht_overlay.Unstructured_search.strategy;
  replica_chords : int;
  eviction : Pdht_dht.Storage.eviction;
}

let default_search ~num_peers =
  Pdht_overlay.Unstructured_search.Random_walks
    { walkers = 16; max_steps = max 64 (2 * num_peers); check_every = 4 }

let make ?(backend = Pdht_dht.Dht.Pgrid_backend) ?(topology_degree = 4)
    ?(replica_chords = 1) ?search ?(eviction = Pdht_dht.Storage.Evict_soonest_expiry)
    ~num_peers ~active_members ~keys ~repl ~stor ~strategy () =
  if num_peers < 2 then invalid_arg "Config.make: need >= 2 peers";
  if active_members < 2 || active_members > num_peers then
    invalid_arg "Config.make: active_members must be in [2, num_peers]";
  if keys < 1 then invalid_arg "Config.make: need >= 1 key";
  if repl < 1 || repl > num_peers then invalid_arg "Config.make: repl must be in [1, num_peers]";
  if stor < 1 then invalid_arg "Config.make: stor must be >= 1";
  if topology_degree < 1 || topology_degree >= num_peers then
    invalid_arg "Config.make: bad topology_degree";
  if replica_chords < 0 then invalid_arg "Config.make: negative replica_chords";
  let search = match search with Some s -> s | None -> default_search ~num_peers in
  { num_peers; active_members; keys; repl; stor; backend; strategy; topology_degree;
    search; replica_chords; eviction }

let active_members_for ~num_peers ~repl ~stor ~expected_index_size =
  if expected_index_size < 0. then invalid_arg "Config.active_members_for: negative index size";
  let needed =
    int_of_float (Float.ceil (expected_index_size *. float_of_int repl /. float_of_int stor))
  in
  max 2 (max (min repl num_peers) (min needed num_peers))
