(** Configuration of a simulated PDHT deployment. *)

type t = {
  num_peers : int;          (** total population *)
  active_members : int;     (** peers participating in the DHT *)
  keys : int;               (** distinct keys in the workload *)
  repl : int;               (** replication factor, index and content *)
  stor : int;               (** per-peer index cache capacity *)
  backend : Pdht_dht.Dht.backend;
  strategy : Strategy.t;
  topology_degree : int;    (** connections each peer opens in the
                                unstructured overlay *)
  search : Pdht_overlay.Unstructured_search.strategy;
  replica_chords : int;     (** long-range links per replica in the
                                replica subnetworks *)
  eviction : Pdht_dht.Storage.eviction;
                            (** cache victim policy; the paper's TTL
                                semantics imply [Evict_soonest_expiry] *)
}

val default_search : num_peers:int -> Pdht_overlay.Unstructured_search.strategy
(** 16 random walkers checking back every 4 steps, step budget scaled to
    the population — the [LvCa02]-style search the paper assumes. *)

val make :
  ?backend:Pdht_dht.Dht.backend ->
  ?topology_degree:int ->
  ?replica_chords:int ->
  ?search:Pdht_overlay.Unstructured_search.strategy ->
  ?eviction:Pdht_dht.Storage.eviction ->
  num_peers:int ->
  active_members:int ->
  keys:int ->
  repl:int ->
  stor:int ->
  strategy:Strategy.t ->
  unit ->
  t
(** Defaults: P-Grid backend, degree 4, 1 chord, walker search.
    @raise Invalid_argument on inconsistent sizes (e.g.
    [active_members > num_peers] or [repl > num_peers]). *)

val active_members_for :
  num_peers:int -> repl:int -> stor:int -> expected_index_size:float -> int
(** The deployment-sizing rule behind the model's [numActivePeers]:
    enough members to hold the expected index, at least one replica
    group, at most the whole population. *)
