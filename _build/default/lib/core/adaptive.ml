module Metrics = Pdht_sim.Metrics

type t = {
  smoothing : float;
  min_ttl : float;
  max_ttl : float;
  mutable broadcast_count : int;
  mutable broadcast_messages : int;
  mutable index_count : int;
  mutable index_messages : int;
  mutable last_maintenance : int;
  mutable last_time : float;
  mutable estimate : float option;
}

let create ?(smoothing = 0.3) ?(min_ttl = 1.) ?(max_ttl = 1e7) () =
  if smoothing <= 0. || smoothing > 1. then invalid_arg "Adaptive.create: smoothing in (0,1]";
  if not (0. < min_ttl && min_ttl <= max_ttl) then invalid_arg "Adaptive.create: bad TTL clamp";
  {
    smoothing;
    min_ttl;
    max_ttl;
    broadcast_count = 0;
    broadcast_messages = 0;
    index_count = 0;
    index_messages = 0;
    last_maintenance = 0;
    last_time = 0.;
    estimate = None;
  }

let note_query t (r : Pdht.query_result) =
  if r.Pdht.broadcast_messages > 0 then begin
    t.broadcast_count <- t.broadcast_count + 1;
    t.broadcast_messages <- t.broadcast_messages + r.Pdht.broadcast_messages
  end;
  let index_part = r.Pdht.index_messages + r.Pdht.replica_flood_messages in
  if index_part > 0 then begin
    t.index_count <- t.index_count + 1;
    t.index_messages <- t.index_messages + index_part
  end

let observed_search_costs t =
  if t.broadcast_count = 0 || t.index_count = 0 then None
  else
    Some
      ( float_of_int t.broadcast_messages /. float_of_int t.broadcast_count,
        float_of_int t.index_messages /. float_of_int t.index_count )

let current_ttl_estimate t = t.estimate

let reset_window t pdht ~now =
  t.broadcast_count <- 0;
  t.broadcast_messages <- 0;
  t.index_count <- 0;
  t.index_messages <- 0;
  t.last_maintenance <- Metrics.count (Pdht.metrics pdht) Metrics.Maintenance;
  t.last_time <- now

let retune t pdht ~now =
  let result =
    match observed_search_costs t with
    | None -> None
    | Some (c_s_unstr, c_s_indx2) ->
        let elapsed = now -. t.last_time in
        let maintenance =
          Metrics.count (Pdht.metrics pdht) Metrics.Maintenance - t.last_maintenance
        in
        let indexed = Pdht.indexed_key_count pdht ~now in
        if elapsed <= 0. || indexed = 0 then None
        else begin
          let c_rtn =
            float_of_int maintenance /. elapsed /. float_of_int indexed
          in
          let denom = c_s_unstr -. c_s_indx2 in
          if denom <= 0. then None
          else begin
            let f_min = c_rtn /. denom in
            let raw_ttl =
              if f_min <= 0. then t.max_ttl
              else Float.min t.max_ttl (Float.max t.min_ttl (1. /. f_min))
            in
            let smoothed =
              match t.estimate with
              | None -> raw_ttl
              | Some prev -> ((1. -. t.smoothing) *. prev) +. (t.smoothing *. raw_ttl)
            in
            t.estimate <- Some smoothed;
            Pdht.set_key_ttl pdht smoothed;
            Some smoothed
          end
        end
  in
  reset_window t pdht ~now;
  result

let attach t engine pdht ~every =
  if not (every > 0.) then invalid_arg "Adaptive.attach: period must be positive";
  Pdht_sim.Engine.schedule_periodic engine ~first:every ~every (fun eng ->
      ignore (retune t pdht ~now:(Pdht_sim.Engine.now eng)))
