(** Conjunctive metadata queries.

    The paper's introduction motivates partial indexing with metadata
    queries "such as element1 = value1 AND element2 = value2" (after
    [HaHe02]'s complex queries over DHTs).  This module gives those
    queries a small algebra and a planner: a conjunction is answered
    through the single DHT key that covers the most of it (the exact
    conjunction key when the key-generation specs produced one, the most
    selective single-element key otherwise), with the remaining
    predicates checked against the fetched article's metadata. *)

type predicate = { element : Article.element; value : string }

type t = predicate list
(** A conjunction; the empty list matches everything. *)

val conj : (Article.element * string) list -> t
(** Build a conjunction.  @raise Invalid_argument on duplicate
    elements. *)

val to_string : t -> string
(** ["title = \"x\" AND date = \"y\""]-style rendering. *)

val matches : Article.t -> t -> bool
(** Does the article satisfy every predicate? *)

(** How a query can be routed through the index. *)
type plan = {
  access_key : Pdht_util.Bitkey.t; (** the DHT key to look up *)
  covers : predicate list;         (** predicates the key answers *)
  residual : predicate list;       (** predicates to verify post-fetch *)
  description : string;            (** human-readable plan summary *)
}

val plans : ?specs:Keygen.spec list -> t -> plan list
(** All access plans the key-generation specs support, best first: exact
    conjunction keys (empty residual) before single-element keys
    (smaller cover, larger residual).  Empty for the empty query.
    The spec list must match what the corpus was keyed with (default
    {!Keygen.default_specs}). *)

val best_plan : ?specs:Keygen.spec list -> t -> plan option
(** Head of {!plans}. *)

val execute :
  ?specs:Keygen.spec list ->
  lookup:(Pdht_util.Bitkey.t -> Article.t option) ->
  t ->
  (Article.t option * plan) option
(** Run the best plan against a key-lookup function (e.g. a PDHT query
    composed with the corpus): fetch by [access_key], verify the
    residual.  [None] when the query has no plan; [Some (None, plan)]
    when the fetch failed or the residual eliminated the article. *)
