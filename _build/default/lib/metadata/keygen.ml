module Bitkey = Pdht_util.Bitkey
module Hashing = Pdht_util.Hashing

type spec =
  | Single of Article.element
  | Conjunction of Article.element * Article.element
  | Term of Article.element

let default_specs =
  [
    Single Article.Title;
    Single Article.Author;
    Single Article.Date;
    Single Article.Category;
    Single Article.Location;
    Conjunction (Article.Title, Article.Date);
    Conjunction (Article.Category, Article.Date);
    Conjunction (Article.Location, Article.Date);
    Conjunction (Article.Author, Article.Category);
    Term Article.Title;
  ]

let encode_pair element value =
  Hashing.combine [ Article.element_name element; value ]

let canonical_order e1 v1 e2 v2 =
  if Article.element_name e1 <= Article.element_name e2 then (e1, v1, e2, v2)
  else (e2, v2, e1, v1)

let encode_conjunction e1 v1 e2 v2 =
  let e1, v1, e2, v2 = canonical_order e1 v1 e2 v2 in
  Hashing.combine
    [ Article.element_name e1; v1; "AND"; Article.element_name e2; v2 ]

let encode article spec =
  match spec with
  | Single e -> (
      match Article.field article e with
      | None -> []
      | Some v -> [ encode_pair e v ])
  | Conjunction (e1, e2) -> (
      match (Article.field article e1, Article.field article e2) with
      | Some v1, Some v2 -> [ encode_conjunction e1 v1 e2 v2 ]
      | None, _ | _, None -> [])
  | Term e -> (
      match Article.field article e with
      | None -> []
      | Some v ->
          List.map
            (fun term -> Hashing.combine [ Article.element_name e; "TERM"; term ])
            (Stopwords.tokenize v))

let keys_of_article ?(specs = default_specs) article =
  let encodings = List.concat_map (encode article) specs in
  let distinct = List.sort_uniq String.compare encodings in
  List.map Hashing.hash_to_key distinct

let key_of_query element value = Hashing.hash_to_key (encode_pair element value)

let key_of_conjunction e1 v1 e2 v2 =
  Hashing.hash_to_key (encode_conjunction e1 v1 e2 v2)
