(** Synthetic news corpus for the Section-4 scenario.

    2,000 unique articles, each described by realistic element-value
    metadata that yields about 20 DHT keys; articles are replaced every
    24 hours on average.  Everything is generated deterministically from
    an {!Pdht_util.Rng.t}. *)

type t

val generate :
  Pdht_util.Rng.t -> articles:int -> ?keys_per_article:int -> start_time:float -> unit -> t
(** Build a corpus of [articles] articles at [start_time].  Each article
    gets exactly [keys_per_article] keys (default 20): the metadata
    naturally produces about that many, and the list is padded with
    additional term keys or truncated deterministically to hit the
    paper's fixed per-article key budget. *)

val size : t -> int
val article : t -> int -> Article.t
val keys_of : t -> int -> Pdht_util.Bitkey.t array
(** The article's key set (constant length [keys_per_article]). *)

val all_keys : t -> Pdht_util.Bitkey.t array
(** Concatenation over articles; duplicates across articles possible
    (several articles may share e.g. a date key), matching the paper's
    40,000-key budget rather than a deduplicated space. *)

val replace : t -> Pdht_util.Rng.t -> article_id:int -> now:float -> Article.t
(** Replace an article with a fresh one (same id slot, new metadata and
    keys) — the paper's "each article is replaced every 24 hours on
    average".  Returns the new article. *)

val article_of_key : t -> Pdht_util.Bitkey.t -> int option
(** Some article currently carrying this key, if any. *)
