module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng

let title_words =
  [| "weather"; "storm"; "election"; "market"; "crisis"; "festival"; "harvest";
     "summit"; "strike"; "voyage"; "discovery"; "rescue"; "opening"; "closing";
     "record"; "flood"; "drought"; "treaty"; "protest"; "launch"; "verdict";
     "merger"; "outage"; "eclipse"; "regatta"; "marathon"; "auction"; "expo";
     "census"; "reform" |]

let locations =
  [| "Iraklion"; "Lausanne"; "Geneva"; "Athens"; "Zurich"; "Lisbon"; "Oslo";
     "Vienna"; "Prague"; "Dublin"; "Madrid"; "Rome"; "Berlin"; "Paris";
     "Helsinki"; "Warsaw"; "Budapest"; "Brussels"; "Copenhagen"; "Amsterdam" |]

let authors =
  [| "Crete Weather Service"; "Alpine News Agency"; "Lakeside Press";
     "Continental Wire"; "Harbor Dispatch"; "Mountain Courier";
     "Valley Observer"; "Northern Light News"; "Southern Cross Media";
     "Central Bulletin" |]

let categories =
  [| "weather"; "politics"; "economy"; "sports"; "culture"; "science";
     "technology"; "health"; "travel"; "society" |]

let languages = [| "en"; "de"; "fr"; "el"; "it" |]

let date_string days = Printf.sprintf "2004/%02d/%02d" (1 + (days / 28 mod 12)) (1 + (days mod 28))

let fresh_article rng ~id ~now =
  let pick arr = Pdht_util.Sampling.choose rng arr in
  let title_len = Rng.int_in_range rng ~lo:3 ~hi:5 in
  let title =
    String.concat " " (List.init title_len (fun _ -> pick title_words)) ^ " " ^ pick locations
  in
  let days = Rng.int rng 336 in
  Article.create ~id ~published_at:now
    ~fields:
      [
        (Article.Title, title);
        (Article.Author, pick authors);
        (Article.Date, date_string days);
        (Article.Category, pick categories);
        (Article.Location, pick locations);
        (Article.Size, string_of_int (Rng.int_in_range rng ~lo:500 ~hi:9999));
        (Article.Language, pick languages);
      ]

type t = {
  keys_per_article : int;
  articles : Article.t array;
  keys : Bitkey.t array array;
  by_key : (Bitkey.t, int) Hashtbl.t;
}

let pad_or_truncate ~article ~target keys =
  let arr = Array.of_list keys in
  let n = Array.length arr in
  if n >= target then Array.sub arr 0 target
  else begin
    (* Deterministic content-derived filler keys: extra per-article
       terms a richer metadata file would have produced. *)
    let title = Option.value ~default:"" (Article.field article Article.Title) in
    Array.init target (fun i ->
        if i < n then arr.(i)
        else
          Pdht_util.Hashing.hash_to_key
            (Pdht_util.Hashing.combine
               [ "extra-term"; title; string_of_int article.Article.id; string_of_int i ]))
  end

let index_keys by_key keys article_id =
  Array.iter (fun k -> Hashtbl.replace by_key k article_id) keys

let unindex_keys by_key keys article_id =
  Array.iter
    (fun k ->
      match Hashtbl.find_opt by_key k with
      | Some id when id = article_id -> Hashtbl.remove by_key k
      | Some _ | None -> ())
    keys

let generate rng ~articles ?(keys_per_article = 20) ~start_time () =
  if articles < 1 then invalid_arg "Corpus.generate: need >= 1 article";
  if keys_per_article < 1 then invalid_arg "Corpus.generate: need >= 1 key per article";
  let arts = Array.init articles (fun id -> fresh_article rng ~id ~now:start_time) in
  let keys =
    Array.map
      (fun a -> pad_or_truncate ~article:a ~target:keys_per_article (Keygen.keys_of_article a))
      arts
  in
  let by_key = Hashtbl.create (articles * keys_per_article) in
  Array.iteri (fun id ks -> index_keys by_key ks id) keys;
  { keys_per_article; articles = arts; keys; by_key }

let size t = Array.length t.articles

let article t id =
  if id < 0 || id >= size t then invalid_arg "Corpus.article: bad id";
  t.articles.(id)

let keys_of t id =
  if id < 0 || id >= size t then invalid_arg "Corpus.keys_of: bad id";
  t.keys.(id)

let all_keys t = Array.concat (Array.to_list t.keys)

let replace t rng ~article_id ~now =
  if article_id < 0 || article_id >= size t then invalid_arg "Corpus.replace: bad id";
  unindex_keys t.by_key t.keys.(article_id) article_id;
  let fresh = fresh_article rng ~id:article_id ~now in
  let keys =
    pad_or_truncate ~article:fresh ~target:t.keys_per_article (Keygen.keys_of_article fresh)
  in
  t.articles.(article_id) <- fresh;
  t.keys.(article_id) <- keys;
  index_keys t.by_key keys article_id;
  fresh

let article_of_key t key = Hashtbl.find_opt t.by_key key
