lib/metadata/stopwords.mli:
