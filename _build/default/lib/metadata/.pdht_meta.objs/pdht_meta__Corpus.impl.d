lib/metadata/corpus.ml: Array Article Hashtbl Keygen List Option Pdht_util Printf String
