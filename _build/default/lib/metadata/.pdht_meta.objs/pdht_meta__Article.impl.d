lib/metadata/article.ml: Format List
