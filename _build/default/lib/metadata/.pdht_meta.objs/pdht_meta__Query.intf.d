lib/metadata/query.mli: Article Keygen Pdht_util
