lib/metadata/keygen.ml: Article List Pdht_util Stopwords String
