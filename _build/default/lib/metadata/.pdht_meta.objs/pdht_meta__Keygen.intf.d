lib/metadata/keygen.mli: Article Pdht_util
