lib/metadata/corpus.mli: Article Pdht_util
