lib/metadata/query.ml: Article Keygen List Pdht_util Printf String
