lib/metadata/stopwords.ml: Buffer List Set String
