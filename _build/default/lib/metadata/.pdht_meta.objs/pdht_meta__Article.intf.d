lib/metadata/article.mli: Format
