type element = Title | Author | Date | Category | Location | Size | Language

let element_name = function
  | Title -> "title"
  | Author -> "author"
  | Date -> "date"
  | Category -> "category"
  | Location -> "location"
  | Size -> "size"
  | Language -> "language"

let all_elements = [ Title; Author; Date; Category; Location; Size; Language ]

type t = {
  id : int;
  fields : (element * string) list;
  published_at : float;
}

let create ~id ~fields ~published_at =
  if fields = [] then invalid_arg "Article.create: empty metadata";
  let elements = List.map fst fields in
  let distinct = List.sort_uniq compare elements in
  if List.length distinct <> List.length elements then
    invalid_arg "Article.create: duplicate metadata element";
  { id; fields; published_at }

let field t element = List.assoc_opt element t.fields

let pp ppf t =
  Format.fprintf ppf "@[<v>article #%d (t=%.0f)@," t.id t.published_at;
  List.iter
    (fun (e, v) -> Format.fprintf ppf "  %s = %S@," (element_name e) v)
    t.fields;
  Format.fprintf ppf "@]"
