(** DHT key generation from metadata ([FeBi04]; paper Section 1).

    "In case we decide to index a specific metadata attribute we
    generate keys by hashing single or concatenated key-value pairs,
    such as key1 = hash(title = "Weather Iraklion" AND date =
    "2004/03/14")."

    For the Section-4 scenario every article yields 20 keys: single
    element-value pairs, term-level keys from tokenized free-text
    values (stop words removed), and selected element-pair
    conjunctions. *)

type spec =
  | Single of Article.element
      (** hash(element = value) *)
  | Conjunction of Article.element * Article.element
      (** hash(e1 = v1 AND e2 = v2), ordered canonically *)
  | Term of Article.element
      (** one key per indexable token of the value *)

val default_specs : spec list
(** A spec mix that yields about 20 keys per article on realistic
    metadata — the paper's "20 keys from the metadata describing the
    article". *)

val encode : Article.t -> spec -> string list
(** Canonical string encodings (before hashing) this spec derives from
    the article; empty if a referenced element is missing. *)

val keys_of_article : ?specs:spec list -> Article.t -> Pdht_util.Bitkey.t list
(** All DHT keys for an article: encode every spec, drop duplicates,
    hash.  Deterministic in the article contents. *)

val key_of_query : Article.element -> string -> Pdht_util.Bitkey.t
(** Key for a single-predicate query [element = value]. *)

val key_of_conjunction :
  Article.element -> string -> Article.element -> string -> Pdht_util.Bitkey.t
(** Key for [e1 = v1 AND e2 = v2]; canonical element order makes it
    symmetric in its arguments. *)
