(** News articles and their metadata (paper Section 1).

    "Peers generate news articles, which are described by metadata.
    These metadata files consist of element-value pairs, such as title =
    "Weather Iraklion", author = "Crete Weather Service", date =
    "2004/03/14", and size = "2405"." *)

type element = Title | Author | Date | Category | Location | Size | Language

val element_name : element -> string
val all_elements : element list

type t = {
  id : int;                        (** stable article identifier *)
  fields : (element * string) list;(** the metadata file *)
  published_at : float;            (** simulated creation time, seconds *)
}

val create : id:int -> fields:(element * string) list -> published_at:float -> t
(** Fields must be non-empty and element-unique.
    @raise Invalid_argument otherwise. *)

val field : t -> element -> string option
val pp : Format.formatter -> t -> unit
