let words =
  [
    "a"; "about"; "above"; "after"; "again"; "all"; "also"; "am"; "an"; "and";
    "any"; "are"; "as"; "at"; "be"; "because"; "been"; "before"; "being";
    "below"; "between"; "both"; "but"; "by"; "can"; "could"; "did"; "do";
    "does"; "doing"; "down"; "during"; "each"; "few"; "for"; "from";
    "further"; "had"; "has"; "have"; "having"; "he"; "her"; "here"; "hers";
    "him"; "his"; "how"; "i"; "if"; "in"; "into"; "is"; "it"; "its"; "just";
    "me"; "more"; "most"; "my"; "no"; "nor"; "not"; "now"; "of"; "off"; "on";
    "once"; "only"; "or"; "other"; "our"; "ours"; "out"; "over"; "own";
    "same"; "she"; "should"; "so"; "some"; "such"; "than"; "that"; "the";
    "their"; "theirs"; "them"; "then"; "there"; "these"; "they"; "this";
    "those"; "through"; "to"; "too"; "under"; "until"; "up"; "very"; "was";
    "we"; "were"; "what"; "when"; "where"; "which"; "while"; "who"; "whom";
    "why"; "will"; "with"; "would"; "you"; "your"; "yours";
  ]

module String_set = Set.Make (String)

let set = String_set.of_list words
let count = String_set.cardinal set
let is_stop_word w = String_set.mem (String.lowercase_ascii w) set
let filter_terms terms = List.filter (fun t -> not (is_stop_word t)) terms

let tokenize text =
  let lower = String.lowercase_ascii text in
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char buf c
      | _ -> flush ())
    lower;
  flush ();
  filter_terms (List.rev !tokens)
