type predicate = { element : Article.element; value : string }

type t = predicate list

let conj pairs =
  let elements = List.map fst pairs in
  if List.length (List.sort_uniq compare elements) <> List.length elements then
    invalid_arg "Query.conj: duplicate element in conjunction";
  List.map (fun (element, value) -> { element; value }) pairs

let predicate_to_string p = Printf.sprintf "%s = %S" (Article.element_name p.element) p.value

let to_string q =
  match q with
  | [] -> "(true)"
  | _ :: _ -> String.concat " AND " (List.map predicate_to_string q)

let matches article q =
  List.for_all (fun p -> Article.field article p.element = Some p.value) q

type plan = {
  access_key : Pdht_util.Bitkey.t;
  covers : predicate list;
  residual : predicate list;
  description : string;
}

(* Heuristic selectivity for single-element access paths: titles are
   near-unique, sizes and languages shared by many articles. *)
let selectivity_rank = function
  | Article.Title -> 0
  | Article.Author -> 1
  | Article.Date -> 2
  | Article.Location -> 3
  | Article.Category -> 4
  | Article.Size -> 5
  | Article.Language -> 6

let find_predicate q element = List.find_opt (fun p -> p.element = element) q

let without q covered = List.filter (fun p -> not (List.memq p covered)) q

let plans ?(specs = Keygen.default_specs) q =
  match q with
  | [] -> []
  | _ :: _ ->
      let conjunction_plans =
        List.filter_map
          (fun spec ->
            match spec with
            | Keygen.Conjunction (e1, e2) -> (
                match (find_predicate q e1, find_predicate q e2) with
                | Some p1, Some p2 ->
                    let covers = [ p1; p2 ] in
                    Some
                      {
                        access_key = Keygen.key_of_conjunction e1 p1.value e2 p2.value;
                        covers;
                        residual = without q covers;
                        description =
                          Printf.sprintf "conjunction key (%s AND %s)"
                            (Article.element_name e1) (Article.element_name e2);
                      }
                | None, _ | _, None -> None)
            | Keygen.Single _ | Keygen.Term _ -> None)
          specs
      in
      let single_plans =
        List.filter_map
          (fun spec ->
            match spec with
            | Keygen.Single e -> (
                match find_predicate q e with
                | Some p ->
                    Some
                      {
                        access_key = Keygen.key_of_query e p.value;
                        covers = [ p ];
                        residual = without q [ p ];
                        description =
                          Printf.sprintf "single key (%s)" (Article.element_name e);
                      }
                | None -> None)
            | Keygen.Conjunction _ | Keygen.Term _ -> None)
          specs
      in
      let rank plan =
        (* Fewer residual predicates first; ties broken by the access
           element's selectivity. *)
        let sel =
          match plan.covers with
          | p :: _ -> selectivity_rank p.element
          | [] -> max_int
        in
        (List.length plan.residual, sel)
      in
      List.stable_sort (fun a b -> compare (rank a) (rank b))
        (conjunction_plans @ single_plans)

let best_plan ?specs q = match plans ?specs q with [] -> None | p :: _ -> Some p

let execute ?specs ~lookup q =
  match best_plan ?specs q with
  | None -> None
  | Some plan -> (
      match lookup plan.access_key with
      | None -> Some (None, plan)
      | Some article ->
          if matches article plan.residual && matches article plan.covers then
            Some (Some article, plan)
          else Some (None, plan))
