(** Stop words excluded from indexing.

    "It is a standard approach in information retrieval to avoid
    indexing stop words, such as "the", "and", etc.  We assume that the
    set of such stop words is globally known to all peers" (paper
    Section 4). *)

val is_stop_word : string -> bool
(** Case-insensitive membership in the global stop-word list. *)

val count : int
(** Size of the built-in list. *)

val filter_terms : string list -> string list
(** Drop stop words, preserving order. *)

val tokenize : string -> string list
(** Lower-case a free-text value and split it into indexable terms:
    alphanumeric runs, stop words removed. *)
