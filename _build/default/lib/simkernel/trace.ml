type t = {
  capacity : int;
  mutable enabled : bool;
  mutable events : (float * string) list; (* newest first *)
  mutable length : int;
}

let create ?(capacity = 10_000) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { capacity; enabled = false; events = []; length = 0 }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled

let record t ~time msg =
  if t.enabled then begin
    t.events <- (time, msg) :: t.events;
    t.length <- t.length + 1;
    if t.length > t.capacity then begin
      (* Drop the oldest half at once so trimming is amortised O(1). *)
      let keep = t.capacity / 2 in
      t.events <- List.filteri (fun i _ -> i < keep) t.events;
      t.length <- keep
    end
  end

let recordf t ~time fmt =
  if t.enabled then Format.kasprintf (fun msg -> record t ~time msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events t = List.rev t.events
let length t = t.length

let clear t =
  t.events <- [];
  t.length <- 0
