(** Bounded in-memory event trace for debugging simulations.

    Recording is off by default and cheap when disabled; experiments
    enable it selectively (e.g. the quickstart example prints the first
    few trace lines to show what the system is doing). *)

type t

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 10_000) most recent events. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val record : t -> time:float -> string -> unit
(** No-op when disabled. *)

val recordf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the message is only built when enabled. *)

val events : t -> (float * string) list
(** Recorded events, oldest first. *)

val length : t -> int
val clear : t -> unit
