(** Discrete-event simulation engine.

    A thin deterministic scheduler: handlers are closures over whatever
    simulation state the caller owns.  Time is in seconds; the paper's
    "round" is one second (Section 2, footnote 1). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time; 0. before the first event fires. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a handler [delay] seconds from [now].  Requires [delay >= 0.] *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Run a handler at absolute [time] (>= [now]). *)

val schedule_periodic : t -> first:float -> every:float -> (t -> unit) -> unit
(** Starting at absolute time [first], run the handler every [every]
    seconds forever (until the run's time horizon cuts it off).
    Requires [every > 0.]. *)

val run : t -> until:float -> unit
(** Process events in time order until the queue is empty or the next
    event is strictly after [until].  [now] ends at the time of the
    last processed event (or is left unchanged when nothing fired).
    Can be called again to continue a paused simulation. *)

val pending : t -> int
(** Events still scheduled. *)
