lib/simkernel/engine.ml: Event_queue
