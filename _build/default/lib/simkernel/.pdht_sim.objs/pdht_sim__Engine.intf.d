lib/simkernel/engine.mli:
