lib/simkernel/metrics.mli:
