lib/simkernel/event_queue.ml: Array Float
