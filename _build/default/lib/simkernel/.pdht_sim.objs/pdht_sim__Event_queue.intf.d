lib/simkernel/event_queue.mli:
