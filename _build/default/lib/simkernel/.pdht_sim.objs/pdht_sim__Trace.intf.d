lib/simkernel/trace.mli: Format
