lib/simkernel/metrics.ml: Array Float List
