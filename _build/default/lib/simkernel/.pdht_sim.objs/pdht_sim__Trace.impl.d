lib/simkernel/trace.ml: Format List
