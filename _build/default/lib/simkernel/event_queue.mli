(** Priority queue of timed events (binary min-heap on time).

    Ties are broken by insertion order, so simulations are fully
    deterministic: two events scheduled for the same instant fire in the
    order they were scheduled. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** Schedule an event.  @raise Invalid_argument on NaN time. *)

val peek_time : 'a t -> float option
(** Time of the earliest event, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val clear : 'a t -> unit
