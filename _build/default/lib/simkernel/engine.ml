type t = { queue : handler Event_queue.t; mutable now : float }
and handler = t -> unit

let create () = { queue = Event_queue.create (); now = 0. }
let now t = t.now

let schedule_at t ~time handler =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time handler

let schedule t ~delay handler =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) handler

let schedule_periodic t ~first ~every handler =
  if not (every > 0.) then invalid_arg "Engine.schedule_periodic: period must be positive";
  let rec tick engine =
    handler engine;
    schedule engine ~delay:every tick
  in
  schedule_at t ~time:first tick

let run t ~until =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= until -> (
        match Event_queue.pop t.queue with
        | Some (time, handler) ->
            t.now <- time;
            handler t;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ()

let pending t = Event_queue.size t.queue
