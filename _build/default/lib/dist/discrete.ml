type t = {
  probs : float array;
  cumulative : float array;
  sampler : Pdht_util.Sampling.Alias.t;
}

let of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Discrete.of_weights: empty";
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Discrete.of_weights: zero mass";
  let probs = Array.map (fun w -> w /. total) weights in
  let cumulative = Array.make (n + 1) 0. in
  for r = 1 to n do
    cumulative.(r) <- cumulative.(r - 1) +. probs.(r - 1)
  done;
  { probs; cumulative; sampler = Pdht_util.Sampling.Alias.create weights }

let uniform ~n = of_weights (Array.make n 1.)

let zipf ~n ~alpha =
  of_weights (Array.init n (fun i -> float_of_int (i + 1) ** -.alpha))

let hot_cold ~n ~hot ~hot_mass =
  if hot < 1 || hot >= n then invalid_arg "Discrete.hot_cold: need 1 <= hot < n";
  if hot_mass < 0. || hot_mass > 1. then invalid_arg "Discrete.hot_cold: hot_mass outside [0,1]";
  let w_hot = hot_mass /. float_of_int hot in
  let w_cold = (1. -. hot_mass) /. float_of_int (n - hot) in
  of_weights (Array.init n (fun i -> if i < hot then w_hot else w_cold))

let n t = Array.length t.probs

let prob t rank =
  if rank < 1 || rank > n t then invalid_arg "Discrete.prob: rank out of range";
  t.probs.(rank - 1)

let cumulative t rank =
  if rank < 0 || rank > n t then invalid_arg "Discrete.cumulative: rank out of range";
  t.cumulative.(rank)

let sample t rng = 1 + Pdht_util.Sampling.Alias.draw t.sampler rng

let entropy_bits t =
  Array.fold_left
    (fun acc p -> if p <= 0. then acc else acc -. (p *. (Float.log p /. Float.log 2.)))
    0. t.probs
