(** Zipf distribution over ranks [1..n].

    The paper assumes queries are Zipf distributed with parameter
    [alpha] (Eq. 3, after [Srip01], who measured alpha = 1.2 for
    Gnutella queries):

    {m prob(rank) = rank^{-alpha} / sum_{x=1}^{keys} x^{-alpha}}

    This module provides exact probabilities, cumulative mass, and an
    O(1) sampler (via Walker's alias method). *)

type t

val create : n:int -> alpha:float -> t
(** [create ~n ~alpha] over ranks [1..n].  Requires [n >= 1] and
    [alpha >= 0.] ([alpha = 0.] is the uniform distribution). *)

val n : t -> int
val alpha : t -> float

val prob : t -> int -> float
(** [prob t rank] for [rank] in [1..n] — paper Eq. 3.
    @raise Invalid_argument outside that range. *)

val cumulative : t -> int -> float
(** [cumulative t rank] is {m sum_{x=1}^{rank} prob(x)}; [cumulative t 0
    = 0.] and [cumulative t n = 1.] (up to rounding).  O(1): prefix sums
    are precomputed. *)

val mass_of_top : t -> int -> float
(** Alias for [cumulative]: probability that a query hits one of the
    [rank] most popular keys — the numerator of paper Eq. 5. *)

val sample : t -> Pdht_util.Rng.t -> int
(** Draw a rank in [1..n] with Zipf probabilities.  O(1) after the O(n)
    construction. *)

val expected_hit_prob_at_least_once : t -> rank:int -> trials:float -> float
(** Paper Eq. 4: probability that the key at [rank] is queried at least
    once in [trials] independent queries,
    {m 1 - (1 - prob_{rank})^{trials}}.  [trials] is a float because the
    paper instantiates it with [numPeers * fQry], which is fractional at
    low query rates.  Computed via [expm1]/[log1p] for accuracy at tiny
    probabilities. *)
