type t = {
  n : int;
  alpha : float;
  probs : float array; (* probs.(r-1) = prob of rank r *)
  cumulative : float array; (* cumulative.(r) = sum of the top r ranks *)
  sampler : Pdht_util.Sampling.Alias.t;
}

let create ~n ~alpha =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if alpha < 0. then invalid_arg "Zipf.create: alpha must be >= 0";
  let weights = Array.init n (fun i -> float_of_int (i + 1) ** -.alpha) in
  let total = Pdht_util.Stats.harmonic_generalized ~n ~alpha in
  let probs = Array.map (fun w -> w /. total) weights in
  let cumulative = Array.make (n + 1) 0. in
  for r = 1 to n do
    (* Clamp: float summation can land a hair above 1. *)
    cumulative.(r) <- Float.min 1. (cumulative.(r - 1) +. probs.(r - 1))
  done;
  { n; alpha; probs; cumulative; sampler = Pdht_util.Sampling.Alias.create weights }

let n t = t.n
let alpha t = t.alpha

let prob t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf.prob: rank out of range";
  t.probs.(rank - 1)

let cumulative t rank =
  if rank < 0 || rank > t.n then invalid_arg "Zipf.cumulative: rank out of range";
  t.cumulative.(rank)

let mass_of_top = cumulative
let sample t rng = 1 + Pdht_util.Sampling.Alias.draw t.sampler rng

let expected_hit_prob_at_least_once t ~rank ~trials =
  if trials < 0. then invalid_arg "Zipf.expected_hit_prob_at_least_once: negative trials";
  let p = prob t rank in
  if p >= 1. then 1. else -.Float.expm1 (trials *. Float.log1p (-.p))
