(** Time-varying key popularity.

    The paper motivates query-adaptive indexing with key popularity
    that "can change dramatically over time" (Sections 1 and 6) and
    claims the selection algorithm adapts to changing query
    distributions (Section 5.2).  This module maps a rank distribution
    onto concrete key identifiers through a permutation that changes
    over simulated time, so the "most popular key" is a different key
    before and after a shift. *)

type t

val static : n:int -> t
(** Identity mapping forever: rank [r] is always key [r - 1]. *)

val rotate_at : n:int -> shift_times:float list -> offset:int -> t
(** At each time in [shift_times] (ascending), the rank-to-key mapping
    rotates by [offset]: the key that was at rank [r] moves to rank
    [r + offset] (mod n).  Models sudden popularity churn such as
    breaking news. *)

val swap_halves_at : n:int -> time:float -> t
(** A single drastic shift at [time]: the most popular half of the key
    space swaps with the least popular half.  The paper's "changing
    query distribution" stress case. *)

val key_of_rank : t -> time:float -> int -> int
(** [key_of_rank t ~time rank] is the key id (0-based) holding [rank]
    (1-based) at simulated [time]. *)

val rank_of_key : t -> time:float -> int -> int
(** Inverse of {!key_of_rank} at the same [time]. *)

val n : t -> int
