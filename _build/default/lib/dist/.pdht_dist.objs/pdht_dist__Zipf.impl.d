lib/dist/zipf.ml: Array Float Pdht_util
