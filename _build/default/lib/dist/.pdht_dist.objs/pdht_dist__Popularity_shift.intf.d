lib/dist/popularity_shift.mli:
