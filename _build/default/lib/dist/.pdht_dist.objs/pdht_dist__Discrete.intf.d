lib/dist/discrete.mli: Pdht_util
