lib/dist/discrete.ml: Array Float Pdht_util
