lib/dist/popularity_shift.ml: Array Float
