lib/dist/zipf.mli: Pdht_util
