type scheme =
  | Static
  | Rotate of { shift_times : float array; offset : int }
  | Swap_halves of { time : float }

type t = { n : int; scheme : scheme }

let static ~n =
  if n < 1 then invalid_arg "Popularity_shift.static";
  { n; scheme = Static }

let rotate_at ~n ~shift_times ~offset =
  if n < 1 then invalid_arg "Popularity_shift.rotate_at";
  let times = Array.of_list shift_times in
  Array.sort Float.compare times;
  { n; scheme = Rotate { shift_times = times; offset = ((offset mod n) + n) mod n } }

let swap_halves_at ~n ~time =
  if n < 2 then invalid_arg "Popularity_shift.swap_halves_at: need n >= 2";
  { n; scheme = Swap_halves { time } }

let shifts_before times time =
  (* Number of shift instants that have occurred strictly by [time]. *)
  let n = Array.length times in
  let rec count i = if i < n && times.(i) <= time then count (i + 1) else i in
  count 0

let key_of_rank t ~time rank =
  if rank < 1 || rank > t.n then invalid_arg "Popularity_shift.key_of_rank: rank out of range";
  let idx = rank - 1 in
  match t.scheme with
  | Static -> idx
  | Rotate { shift_times; offset } ->
      let k = shifts_before shift_times time in
      (idx + (k * offset)) mod t.n
  | Swap_halves { time = shift } ->
      if time < shift then idx
      else
        let half = t.n / 2 in
        if idx < half then idx + (t.n - half)
        else idx - half

let rank_of_key t ~time key =
  if key < 0 || key >= t.n then invalid_arg "Popularity_shift.rank_of_key: key out of range";
  let idx =
    match t.scheme with
    | Static -> key
    | Rotate { shift_times; offset } ->
        let k = shifts_before shift_times time in
        let shift = k * offset mod t.n in
        ((key - shift) mod t.n + t.n) mod t.n
    | Swap_halves { time = shift } ->
        if time < shift then key
        else
          let half = t.n / 2 in
          let upper = t.n - half in
          if key < upper then key + half else key - upper
  in
  idx + 1

let n t = t.n
