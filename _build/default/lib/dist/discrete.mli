(** Generic finite discrete distributions over ranks [1..n].

    {!Zipf} covers the paper's default workload; this module adds the
    alternatives used in extension experiments (uniform queries, hot-set
    mixtures) behind one interface. *)

type t

val uniform : n:int -> t
(** Every rank equally likely. *)

val zipf : n:int -> alpha:float -> t
(** Wraps {!Zipf}. *)

val hot_cold : n:int -> hot:int -> hot_mass:float -> t
(** [hot_cold ~n ~hot ~hot_mass]: a fraction [hot_mass] of queries is
    uniform over the first [hot] ranks, the rest uniform over all
    remaining ranks.  Requires [1 <= hot < n], [0 <= hot_mass <= 1]. *)

val of_weights : float array -> t
(** Explicit unnormalised weights for ranks [1..Array.length w]. *)

val n : t -> int
val prob : t -> int -> float
val cumulative : t -> int -> float
val sample : t -> Pdht_util.Rng.t -> int

val entropy_bits : t -> float
(** Shannon entropy in bits — used to characterise workloads in
    experiment output. *)
