lib/gossip/update_model.mli:
