lib/gossip/rumor.ml: Array Pdht_util Replica_net
