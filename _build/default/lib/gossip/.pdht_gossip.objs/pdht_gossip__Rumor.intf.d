lib/gossip/rumor.mli: Pdht_util Replica_net
