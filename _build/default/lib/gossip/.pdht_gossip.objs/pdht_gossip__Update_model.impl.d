lib/gossip/update_model.ml:
