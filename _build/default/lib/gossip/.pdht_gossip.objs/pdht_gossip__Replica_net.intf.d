lib/gossip/replica_net.mli: Pdht_util
