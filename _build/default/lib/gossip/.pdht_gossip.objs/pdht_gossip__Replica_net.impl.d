lib/gossip/replica_net.ml: Array Hashtbl Int Pdht_util Queue Set
