(** Analytic update cost (paper Eq. 9).

    Kept next to the gossip machinery it abstracts; the full model lives
    in [Pdht_model]. *)

val cost_per_key_per_second :
  index_search_cost:float -> repl:int -> dup2:float -> update_frequency:float -> float
(** [cUpd = (cSIndx + repl * dup2) * fUpd]: each update pays one index
    search to reach a responsible peer, then floods the replica
    subnetwork. *)
