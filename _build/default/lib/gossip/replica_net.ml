module Int_set = Set.Make (Int)

type t = {
  replicas : int array; (* member position -> global peer index *)
  adj : int array array; (* member position -> member positions *)
  index : (int, int) Hashtbl.t; (* global peer index -> member position *)
}

let build rng ~replicas ~chords =
  let n = Array.length replicas in
  if n = 0 then invalid_arg "Replica_net.build: empty replica set";
  if chords < 0 then invalid_arg "Replica_net.build: negative chords";
  let sets = Array.make n Int_set.empty in
  let connect a b =
    if a <> b then begin
      sets.(a) <- Int_set.add b sets.(a);
      sets.(b) <- Int_set.add a sets.(b)
    end
  in
  if n > 1 then
    for i = 0 to n - 1 do
      connect i ((i + 1) mod n);
      for _ = 1 to chords do
        connect i (Pdht_util.Rng.int rng n)
      done
    done;
  let adj = Array.map (fun s -> Array.of_list (Int_set.elements s)) sets in
  let index = Hashtbl.create n in
  Array.iteri (fun pos peer -> Hashtbl.replace index peer pos) replicas;
  { replicas; adj; index }

let size t = Array.length t.replicas
let replicas t = t.replicas
let neighbors t ~member = Array.map (fun pos -> t.replicas.(pos)) t.adj.(member)
let member_of_peer t peer = Hashtbl.find_opt t.index peer

type flood_result = { reached : int; messages : int }

let flood t ~online ~from_peer =
  match member_of_peer t from_peer with
  | None -> { reached = 0; messages = 0 }
  | Some start ->
      if not (online t.replicas.(start)) then { reached = 0; messages = 0 }
      else begin
        let n = size t in
        let visited = Array.make n false in
        visited.(start) <- true;
        let reached = ref 1 in
        let messages = ref 0 in
        let queue = Queue.create () in
        Queue.add start queue;
        while not (Queue.is_empty queue) do
          let pos = Queue.pop queue in
          Array.iter
            (fun q ->
              if online t.replicas.(q) then begin
                incr messages;
                if not visited.(q) then begin
                  visited.(q) <- true;
                  incr reached;
                  Queue.add q queue
                end
              end)
            t.adj.(pos)
        done;
        { reached = !reached; messages = !messages }
      end

let duplication_factor r =
  if r.reached = 0 then 0. else float_of_int r.messages /. float_of_int r.reached
