type result = {
  rounds : int;
  messages : int;
  informed : int;
  online_members : int;
}

let spread rng ~net ~online ~origin_peer ~push_fanout ~max_rounds =
  if push_fanout < 1 then invalid_arg "Rumor.spread: push_fanout must be >= 1";
  if max_rounds < 1 then invalid_arg "Rumor.spread: max_rounds must be >= 1";
  let n = Replica_net.size net in
  let reps = Replica_net.replicas net in
  let informed = Array.make n false in
  let online_members =
    Array.fold_left (fun acc p -> if online p then acc + 1 else acc) 0 reps
  in
  let informed_count = ref 0 in
  (match Replica_net.member_of_peer net origin_peer with
  | Some pos when online reps.(pos) ->
      informed.(pos) <- true;
      informed_count := 1
  | Some _ | None -> ());
  let messages = ref 0 in
  let rounds = ref 0 in
  let all_informed () = !informed_count >= online_members in
  while (not (all_informed ())) && !informed_count > 0 && !rounds < max_rounds do
    incr rounds;
    let snapshot = Array.copy informed in
    for pos = 0 to n - 1 do
      if online reps.(pos) then
        if snapshot.(pos) then
          (* Push: contact [push_fanout] random other replicas. *)
          for _ = 1 to push_fanout do
            let target = Pdht_util.Rng.int rng n in
            if target <> pos then begin
              incr messages;
              if online reps.(target) && not informed.(target) then begin
                informed.(target) <- true;
                incr informed_count
              end
            end
          done
        else begin
          (* Pull: ask one random replica whether it has news. *)
          let target = Pdht_util.Rng.int rng n in
          if target <> pos then begin
            incr messages;
            if online reps.(target) && snapshot.(target) then begin
              incr messages; (* the response carrying the update *)
              if not informed.(pos) then begin
                informed.(pos) <- true;
                incr informed_count
              end
            end
          end
        end
    done
  done;
  { rounds = !rounds; messages = !messages; informed = !informed_count; online_members }

let pull_missed_updates rng ~net ~online ~rejoining_peer =
  match Replica_net.member_of_peer net rejoining_peer with
  | None -> (None, 0)
  | Some pos ->
      let n = Replica_net.size net in
      let reps = Replica_net.replicas net in
      let messages = ref 0 in
      let answered = ref None in
      let attempts = min 10 (2 * n) in
      let i = ref 0 in
      while !answered = None && !i < attempts do
        incr i;
        let target = Pdht_util.Rng.int rng n in
        if target <> pos then begin
          incr messages;
          if online reps.(target) then begin
            incr messages; (* response *)
            answered := Some reps.(target)
          end
        end
      done;
      (!answered, !messages)
