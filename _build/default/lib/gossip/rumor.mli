(** Hybrid push/pull rumor spreading ([DaHa03]).

    Round-based epidemic dissemination among a key's replicas: informed
    online replicas push to random other replicas; uninformed online
    replicas pull from random other replicas.  Offline replicas neither
    send nor receive.  This is the update-propagation mechanism behind
    the model's [cUpd] (Eq. 9). *)

type result = {
  rounds : int;
  messages : int;        (** pushes + pulls (a pull is one request; a
                             successful pull also costs the response) *)
  informed : int;        (** online replicas informed at the end *)
  online_members : int;  (** online replicas when spreading started *)
}

val spread :
  Pdht_util.Rng.t ->
  net:Replica_net.t ->
  online:(int -> bool) ->
  origin_peer:int ->
  push_fanout:int ->
  max_rounds:int ->
  result
(** Spread a rumor that starts at global peer [origin_peer].  Stops when
    every online replica is informed or after [max_rounds].  Requires
    [push_fanout >= 1], [max_rounds >= 1]. *)

val pull_missed_updates :
  Pdht_util.Rng.t ->
  net:Replica_net.t ->
  online:(int -> bool) ->
  rejoining_peer:int ->
  (int option * int)
(** "Peers that are offline and go online again pull for missed
    updates" ([DaHa03]).  The rejoining replica contacts random online
    fellow replicas until one answers: returns the peer that answered
    (if any) and the messages spent (one per contact attempt plus one
    response from the answering peer). *)
