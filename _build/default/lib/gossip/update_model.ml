let cost_per_key_per_second ~index_search_cost ~repl ~dup2 ~update_frequency =
  if repl < 1 then invalid_arg "Update_model.cost_per_key_per_second: repl must be >= 1";
  if update_frequency < 0. then
    invalid_arg "Update_model.cost_per_key_per_second: negative update frequency";
  (index_search_cost +. (float_of_int repl *. dup2)) *. update_frequency
