(** The unstructured subnetwork among a key's replicas.

    "The replicas in the index maintain an unstructured replica
    subnetwork among each other" (paper Section 3.3.2).  Updates are
    gossiped over it, and with the Section-5 selection algorithm a
    responsible peer that cannot answer a query floods it (Eq. 16's
    [repl * dup2] term).

    Topology: a ring over the replicas (guaranteeing connectivity among
    online members as long as gaps are short) plus [chords] random
    long-range links per replica, mirroring the few open connections a
    Gnutella-style client keeps. *)

type t

val build : Pdht_util.Rng.t -> replicas:int array -> chords:int -> t
(** [replicas] are global peer indices; [chords >= 0].  Requires a
    non-empty replica set. *)

val size : t -> int
val replicas : t -> int array
val neighbors : t -> member:int -> int array
(** Neighbors of a replica, given as global peer indices; [member] is
    the position in [replicas]. *)

val member_of_peer : t -> int -> int option
(** Position of a global peer index in this replica group. *)

type flood_result = {
  reached : int;   (** online replicas the flood reached *)
  messages : int;  (** every transmission, duplicates included *)
}

val flood :
  t -> online:(int -> bool) -> from_peer:int -> flood_result
(** Flood the subnetwork starting from the replica with global index
    [from_peer] (no-op result if it is offline or not a member).  Used
    both for update dissemination and for query forwarding. *)

val duplication_factor : flood_result -> float
(** Empirical [dup2]: messages per online replica reached. *)
