type breakdown = {
  maintenance : float;
  index_search : float;
  broadcast_search : float;
  total : float;
}

let make ~maintenance ~index_search ~broadcast_search =
  { maintenance; index_search; broadcast_search;
    total = maintenance +. index_search +. broadcast_search }

let queries_per_second (p : Params.t) = p.f_qry *. float_of_int p.num_peers

let index_all (p : Params.t) =
  let p = Params.validate_exn p in
  let indexed_keys = float_of_int p.keys in
  let nap = Cost.num_active_peers p ~indexed_keys in
  let c_ind_key = Cost.index_key p ~num_active_peers:nap ~indexed_keys in
  let c_s_indx = Cost.search_index ~num_active_peers:nap in
  make
    ~maintenance:(indexed_keys *. c_ind_key)
    ~index_search:(queries_per_second p *. c_s_indx)
    ~broadcast_search:0.

let no_index (p : Params.t) =
  let p = Params.validate_exn p in
  make ~maintenance:0. ~index_search:0.
    ~broadcast_search:(queries_per_second p *. Cost.search_unstructured p)

let partial_ideal (p : Params.t) (s : Index_policy.solution) =
  let p = Params.validate_exn p in
  if s.Index_policy.max_rank = 0 then no_index p
  else
    let qps = queries_per_second p in
    make
      ~maintenance:(float_of_int s.Index_policy.max_rank *. s.Index_policy.c_ind_key)
      ~index_search:(s.Index_policy.p_indexed *. qps *. s.Index_policy.c_s_indx)
      ~broadcast_search:((1. -. s.Index_policy.p_indexed) *. qps *. s.Index_policy.c_s_unstr)

type ttl_state = {
  key_ttl : float;
  index_size : float;
  p_indexed_ttl : float;
  num_active_peers : int;
  c_s_indx2 : float;
}

let ttl_state (p : Params.t) ~key_ttl =
  let p = Params.validate_exn p in
  if not (key_ttl > 0.) then invalid_arg "Strategies.ttl_state: key_ttl must be positive";
  let zipf = Pdht_dist.Zipf.create ~n:p.keys ~alpha:p.alpha in
  (* A key is in the index iff it was queried at least once in the last
     keyTtl rounds (Eq. 14-15). *)
  let index_size = ref 0. in
  let p_indexed = ref 0. in
  for rank = 1 to p.keys do
    let prob_t = Index_policy.prob_queried_at_least_once p zipf ~rank in
    let in_index = -.Float.expm1 (key_ttl *. Float.log1p (-.prob_t)) in
    index_size := !index_size +. in_index;
    p_indexed := !p_indexed +. (in_index *. Pdht_dist.Zipf.prob zipf rank)
  done;
  let nap = Cost.num_active_peers p ~indexed_keys:!index_size in
  {
    key_ttl;
    index_size = !index_size;
    p_indexed_ttl = !p_indexed;
    num_active_peers = nap;
    c_s_indx2 = Cost.search_index_degraded p ~num_active_peers:nap;
  }

let default_key_ttl (s : Index_policy.solution) =
  if s.Index_policy.f_min <= 0. then infinity else max 1. (1. /. s.Index_policy.f_min)

let partial_selection (p : Params.t) ~key_ttl =
  let p = Params.validate_exn p in
  let st = ttl_state p ~key_ttl in
  let qps = queries_per_second p in
  let c_s_unstr = Cost.search_unstructured p in
  (* Eq. 17.  Proactive updates are gone; maintenance is only cRtn over
     the Eq.-15 index, i.e. the DHT's total probing traffic. *)
  let maintenance =
    if st.index_size <= 0. then 0.
    else Cost.total_maintenance p ~num_active_peers:st.num_active_peers
  in
  let hit_cost = st.p_indexed_ttl *. qps *. st.c_s_indx2 in
  (* A miss pays the failed index search plus the re-insertion. *)
  let miss_index_cost = (1. -. st.p_indexed_ttl) *. qps *. (2. *. st.c_s_indx2) in
  let miss_broadcast_cost = (1. -. st.p_indexed_ttl) *. qps *. c_s_unstr in
  make ~maintenance ~index_search:(hit_cost +. miss_index_cost)
    ~broadcast_search:miss_broadcast_cost

let savings ~cost ~versus = 1. -. (cost /. versus)
