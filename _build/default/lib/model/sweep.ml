type point = {
  f_qry : float;
  index_all : float;
  no_index : float;
  partial_ideal : float;
  partial_selection : float;
  savings_ideal_vs_all : float;
  savings_ideal_vs_none : float;
  savings_selection_vs_all : float;
  savings_selection_vs_none : float;
  index_fraction : float;
  p_indexed : float;
  max_rank : int;
  key_ttl : float;
  ttl_index_fraction : float;
  p_indexed_ttl : float;
}

let point (p : Params.t) =
  let p = Params.validate_exn p in
  let solution = Index_policy.solve p in
  let all = (Strategies.index_all p).Strategies.total in
  let none = (Strategies.no_index p).Strategies.total in
  let ideal = (Strategies.partial_ideal p solution).Strategies.total in
  let key_ttl = Strategies.default_key_ttl solution in
  let ttl = Strategies.ttl_state p ~key_ttl in
  let selection = (Strategies.partial_selection p ~key_ttl).Strategies.total in
  {
    f_qry = p.f_qry;
    index_all = all;
    no_index = none;
    partial_ideal = ideal;
    partial_selection = selection;
    savings_ideal_vs_all = Strategies.savings ~cost:ideal ~versus:all;
    savings_ideal_vs_none = Strategies.savings ~cost:ideal ~versus:none;
    savings_selection_vs_all = Strategies.savings ~cost:selection ~versus:all;
    savings_selection_vs_none = Strategies.savings ~cost:selection ~versus:none;
    index_fraction = float_of_int solution.Index_policy.max_rank /. float_of_int p.keys;
    p_indexed = solution.Index_policy.p_indexed;
    max_rank = solution.Index_policy.max_rank;
    key_ttl;
    ttl_index_fraction = ttl.Strategies.index_size /. float_of_int p.keys;
    p_indexed_ttl = ttl.Strategies.p_indexed_ttl;
  }

let run (p : Params.t) ~frequencies =
  List.map (fun f -> point (Params.with_query_frequency p f)) frequencies

let default_run p = run p ~frequencies:(Params.query_frequency_sweep p)
