(** Sensitivity of the selection algorithm to the keyTtl estimate
    (paper Section 5.1.1).

    "Analytical results show that an estimation error of +-50% of the
    ideal keyTtl decreases the savings only slightly."  This module
    regenerates that claim: it evaluates Eq. 17 with the TTL scaled
    around the 1/fMin baseline and reports how much of the baseline
    savings survive. *)

type row = {
  scale : float;           (** multiplier applied to the ideal keyTtl *)
  key_ttl : float;
  total_cost : float;      (** Eq. 17 at this TTL *)
  savings_vs_all : float;
  savings_vs_none : float;
  savings_drop_vs_ideal_ttl : float;
  (** baseline savings (vs the cheaper baseline strategy) minus this
      row's — positive means the mis-estimated TTL lost savings. *)
}

val run : Params.t -> scales:float list -> row list
(** Rows at each TTL multiplier, baseline = scale 1.0. *)

val default_scales : float list
(** [0.5; 0.75; 1.0; 1.5; 2.0] — the paper's +-50% window plus margin. *)

val best_ttl : Params.t -> candidates:float list -> float
(** The candidate TTL (in seconds) minimising Eq. 17 — used by the
    self-tuning extension in [Pdht_core.Adaptive] as a reference
    point. *)
