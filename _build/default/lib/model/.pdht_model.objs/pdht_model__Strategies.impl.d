lib/model/strategies.ml: Cost Float Index_policy Params Pdht_dist
