lib/model/index_policy.ml: Cost Params Pdht_dist
