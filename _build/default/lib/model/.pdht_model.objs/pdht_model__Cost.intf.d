lib/model/cost.mli: Params
