lib/model/ttl_analysis.ml: Float Index_policy List Params Strategies
