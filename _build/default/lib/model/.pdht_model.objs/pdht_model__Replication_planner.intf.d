lib/model/replication_planner.mli: Params
