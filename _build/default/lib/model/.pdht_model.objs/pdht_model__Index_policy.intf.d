lib/model/index_policy.mli: Params Pdht_dist
