lib/model/replication_planner.ml: Cost Float Index_policy List Params Printf Strategies
