lib/model/strategies.mli: Index_policy Params
