lib/model/kary.ml: Cost Float List Params
