lib/model/ttl_analysis.mli: Params
