lib/model/sweep.mli: Params
