lib/model/params.ml: Format List Printf
