lib/model/kary.mli: Params
