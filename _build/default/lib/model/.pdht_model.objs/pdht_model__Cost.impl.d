lib/model/cost.ml: Float Params
