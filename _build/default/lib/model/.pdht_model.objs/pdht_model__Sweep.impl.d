lib/model/sweep.ml: Index_policy List Params Strategies
