(** Replication planning for availability targets.

    The paper assumes one exists: "We assume that there exists a
    mechanism to determine a proper replication factor for the index and
    content files ... to meet target levels of availability and to avoid
    unnecessary high update cost [VaCh02].  Such mechanisms lie beyond
    this work."  We build the mechanism.

    With independent peers online with probability [availability], an
    item replicated [r] times is reachable with probability
    {m 1 - (1 - a)^r}; the smallest [r] meeting a target follows in
    closed form.  Because the replication factor also sets the
    unstructured-search cost (Eq. 6, inversely) and the replica-update
    cost (Eq. 9, linearly), the planner can additionally pick the
    cost-minimising factor above the availability floor. *)

val item_availability : peer_availability:float -> repl:int -> float
(** {m 1 - (1 - a)^r}.  Requires [0 <= a <= 1], [repl >= 0]. *)

val required_replicas : peer_availability:float -> target:float -> int
(** Smallest [r] with [item_availability >= target].  Requires
    [0 < a <= 1] and [0 <= target < 1].  [0] when the target is already
    met with no replicas (target 0). *)

type plan = {
  repl : int;                   (** chosen factor *)
  floor : int;                  (** availability-imposed minimum *)
  achieved_availability : float;
  partial_cost : float;         (** Eq. 17 cost at this factor *)
}

val plan :
  Params.t -> peer_availability:float -> target:float -> max_repl:int -> plan
(** Scan factors [floor .. max_repl], evaluating the selection
    algorithm's total cost (with keyTtl = 1/fMin re-derived per factor),
    and return the cheapest.  @raise Invalid_argument when even
    [max_repl] cannot reach the target. *)

val cost_curve :
  Params.t -> repls:int list -> (int * float * float) list
(** [(repl, cSUnstr, partial_cost)] rows for the bench table: broadcast
    search gets cheaper as replicas multiply while index maintenance
    grows. *)
