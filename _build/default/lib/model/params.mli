(** Scenario parameters (paper Table 1).

    The defaults are exactly the paper's news-system scenario: 20,000
    peers index 2,000 articles x 20 metadata keys with replication 50,
    Zipf(1.2) queries, one article replacement per day, route
    maintenance constant from [MaCa03] and duplication factors from
    [LvCa02]. *)

type t = {
  num_peers : int;       (** total peers in the network *)
  keys : int;            (** unique keys occurring in the network *)
  stor : int;            (** per-peer index cache capacity (key-value pairs) *)
  repl : int;            (** replication factor (index and content) *)
  alpha : float;         (** Zipf exponent of the query distribution *)
  f_qry : float;         (** queries per peer per second *)
  f_upd : float;         (** updates per key per second *)
  env : float;           (** route-maintenance environment constant *)
  dup : float;           (** message duplication, unstructured search *)
  dup2 : float;          (** message duplication, replica subnetwork *)
}

val default : t
(** Table 1 with the busy-period query rate [f_qry = 1/30]. *)

val with_query_frequency : t -> float -> t

val validate : t -> (t, string) result
(** Check ranges ([num_peers >= repl >= 1], [keys >= 1], positive rates,
    [dup >= 1], ...).  Returns the parameter set unchanged when sane. *)

val validate_exn : t -> t
(** @raise Invalid_argument on the first violated constraint. *)

val query_frequency_sweep : t -> float list
(** The eight per-peer query frequencies of Figs. 1-4:
    1/30, 1/60, 1/120, 1/300, 1/600, 1/1800, 1/3600, 1/7200. *)

val pp : Format.formatter -> t -> unit

val to_rows : t -> (string * string * string) list
(** (description, symbol, value) rows reproducing Table 1. *)
