(** k-ary key-space generalization (paper Section 3.2, footnote 3).

    "For simplicity we assume a binary key space.  However, the analysis
    can also be generalized for a k-ary key space."  This module does
    that generalization: with arity [k] each routing hop resolves one
    base-[k] digit, so a lookup takes [log_k n] hops of which the
    expected fraction resolved "for free" at the source scales as [1/k]:

    {m cSIndx_k = (k - 1) / k * log_k(numActivePeers)}

    At [k = 2] this is exactly Eq. 7's [1/2 * log2 n].  Larger arities
    buy shorter lookups with bigger routing tables — which feeds back
    into the maintenance constant, since probe traffic scales with the
    routing-table size ([(k - 1) * log_k n] entries instead of
    [log2 n]). *)

val search_index : arity:int -> num_active_peers:int -> float
(** Generalized Eq. 7.  Requires [arity >= 2], [num_active_peers >= 2]. *)

val routing_table_entries : arity:int -> num_active_peers:int -> float
(** [(arity - 1) * log_arity n] — the Pastry-style table size the
    maintenance traffic must probe. *)

val routing_maintenance :
  Params.t -> arity:int -> num_active_peers:int -> indexed_keys:float -> float
(** Eq. 8 with the k-ary routing-table size: the [env] constant is
    calibrated per entry, so [cRtn_k = env_entry * entries_k * nap /
    indexed_keys] where [env_entry] is normalised so that [arity = 2]
    reproduces the binary model exactly. *)

type point = {
  arity : int;
  c_s_indx : float;
  table_entries : float;
  c_rtn : float;           (** per key per second, full index *)
  index_all_total : float; (** Eq. 11 with k-ary costs *)
}

val sweep : Params.t -> arities:int list -> point list
(** The design-space table behind the arity ablation bench: how the
    lookup/maintenance trade-off moves as the key space gets wider. *)
