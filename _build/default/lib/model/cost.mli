(** The paper's per-operation cost terms (Section 3), all in messages.

    Everything here is a pure function of {!Params.t} plus the current
    index size; the fixed-point machinery that decides the index size
    lives in {!Index_policy}. *)

val search_unstructured : Params.t -> float
(** Eq. 6: [cSUnstr = numPeers / repl * dup]. *)

val num_active_peers : Params.t -> indexed_keys:float -> int
(** Peers needed to hold [indexed_keys] keys replicated [repl] times
    with per-peer capacity [stor]: [ceil (indexed_keys * repl / stor)],
    capped at [num_peers] and floored at [repl] (fewer peers could not
    hold one full replica set) and at 2 (a ring of one is no DHT). *)

val search_index : num_active_peers:int -> float
(** Eq. 7: [cSIndx = 1/2 * log2 numActivePeers]. *)

val routing_maintenance : Params.t -> num_active_peers:int -> indexed_keys:float -> float
(** Eq. 8: [cRtn = env * log2(numActivePeers) * numActivePeers /
    indexed_keys] — per key per second.
    @raise Invalid_argument when [indexed_keys <= 0]. *)

val update : Params.t -> num_active_peers:int -> float
(** Eq. 9: [cUpd = (cSIndx + repl * dup2) * fUpd] — per key per
    second. *)

val index_key : Params.t -> num_active_peers:int -> indexed_keys:float -> float
(** Eq. 10: [cIndKey = cRtn + cUpd]. *)

val search_index_degraded : Params.t -> num_active_peers:int -> float
(** Eq. 16: [cSIndx2 = cSIndx + repl * dup2] — index search when every
    lookup also floods the replica subnetwork (selection algorithm,
    Section 5.1). *)

val total_maintenance : Params.t -> num_active_peers:int -> float
(** [env * log2(nap) * nap]: the whole DHT's routing-maintenance traffic
    per second ([indexed_keys * cRtn]). *)
