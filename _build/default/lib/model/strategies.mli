(** Total system cost per second for each indexing strategy
    (paper Section 4 and Section 5.1).

    All results are messages per second for the whole network. *)

type breakdown = {
  maintenance : float;   (** index upkeep: routing probes (+ updates where applicable) *)
  index_search : float;  (** queries answered via the DHT *)
  broadcast_search : float; (** queries answered by unstructured search *)
  total : float;
}

val index_all : Params.t -> breakdown
(** Eq. 11: every key is indexed; every query is an index search. *)

val no_index : Params.t -> breakdown
(** Eq. 12: no DHT at all; every query is a broadcast search. *)

val partial_ideal : Params.t -> Index_policy.solution -> breakdown
(** Eq. 13: the [max_rank] best keys are indexed and every peer knows
    (by oracle) whether a key is indexed. *)

(** The realistic TTL-based selection algorithm (Section 5.1). *)

type ttl_state = {
  key_ttl : float;         (** the expiration time in rounds/seconds *)
  index_size : float;      (** expected keys in the index, Eq. 15 *)
  p_indexed_ttl : float;   (** Eq. 14 *)
  num_active_peers : int;
  c_s_indx2 : float;       (** Eq. 16 *)
}

val ttl_state : Params.t -> key_ttl:float -> ttl_state
(** Steady-state index contents when keys expire after [key_ttl] seconds
    without a query. *)

val default_key_ttl : Index_policy.solution -> float
(** The paper's choice [keyTtl = 1 / fMin] (clamped to one round when
    [fMin > 1]). *)

val partial_selection : Params.t -> key_ttl:float -> breakdown
(** Eq. 17: with probability [pIndxd] a query costs one degraded index
    search; otherwise it costs an index search (miss), a broadcast
    search, and a re-insertion into the index.  Maintenance is the
    routing cost of the Eq.-15 index (proactive updates are no longer
    needed — Section 5.1). *)

val savings : cost:float -> versus:float -> float
(** [1 - cost / versus] — the quantity plotted in Figs. 2 and 4. *)
