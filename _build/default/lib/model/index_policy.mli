(** "To index or not to index?" — the paper's Section 2 decision rule.

    A key is worth indexing iff its query frequency amortizes its
    indexing cost (Eq. 1-2).  With Zipf queries this yields [max_rank],
    the number of keys worth indexing, and [p_indexed], the fraction of
    queries the index can answer (Eq. 5).

    The quantities are mutually recursive (the indexing cost per key
    depends on how many peers the index needs, which depends on how many
    keys are indexed), so {!solve} runs a fixed-point iteration on
    [max_rank]; it converges in a handful of steps because the per-key
    maintenance cost is nearly independent of the index size (both
    [numActivePeers] and the key count scale linearly). *)

type solution = {
  max_rank : int;         (** keys worth indexing; 0 = index nothing *)
  f_min : float;          (** minimum per-round query frequency, Eq. 2 *)
  num_active_peers : int; (** peers needed for the partial index *)
  c_s_unstr : float;      (** Eq. 6 *)
  c_s_indx : float;       (** Eq. 7, for the partial index *)
  c_ind_key : float;      (** Eq. 10, per indexed key per second *)
  p_indexed : float;      (** Eq. 5 *)
  iterations : int;       (** fixed-point steps taken *)
}

val prob_queried_at_least_once : Params.t -> Pdht_dist.Zipf.t -> rank:int -> float
(** Eq. 4: probability the key at [rank] receives at least one query in
    one round, given [numPeers * fQry] queries per round. *)

val solve : ?max_iterations:int -> Params.t -> solution
(** Solve the fixed point for the given parameters (Zipf distribution is
    built internally from [keys] and [alpha]).  [max_iterations]
    defaults to 100; on non-convergence the last iterate is returned
    (in practice convergence takes < 10 steps). *)

val p_indexed_for_rank : Pdht_dist.Zipf.t -> max_rank:int -> float
(** Eq. 5 for an arbitrary cut-off: Zipf mass of the top [max_rank]
    ranks. *)

val max_rank_for_threshold : Params.t -> Pdht_dist.Zipf.t -> f_min:float -> int
(** Largest rank whose Eq.-4 probability still clears [f_min]
    (0 when even rank 1 misses it).  Binary search: Eq. 4 is monotone
    decreasing in rank. *)
