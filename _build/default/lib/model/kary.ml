let log_base base x = Float.log x /. Float.log base

let search_index ~arity ~num_active_peers =
  if arity < 2 then invalid_arg "Kary.search_index: arity must be >= 2";
  if num_active_peers < 2 then invalid_arg "Kary.search_index: need >= 2 active peers";
  let k = float_of_int arity in
  (k -. 1.) /. k *. log_base k (float_of_int num_active_peers)

let routing_table_entries ~arity ~num_active_peers =
  if arity < 2 then invalid_arg "Kary.routing_table_entries: arity must be >= 2";
  if num_active_peers < 2 then invalid_arg "Kary.routing_table_entries: need >= 2 active peers";
  let k = float_of_int arity in
  (k -. 1.) *. log_base k (float_of_int num_active_peers)

let routing_maintenance (p : Params.t) ~arity ~num_active_peers ~indexed_keys =
  if indexed_keys <= 0. then invalid_arg "Kary.routing_maintenance: no indexed keys";
  let nap = float_of_int num_active_peers in
  (* The paper's env is probes per routing entry per second (its total,
     env * log2 nap per peer, divides by the binary table's log2 nap
     entries).  Scale the same per-entry rate by the k-ary table size,
     so arity 2 reproduces Eq. 8 exactly. *)
  p.Params.env *. routing_table_entries ~arity ~num_active_peers *. nap /. indexed_keys

type point = {
  arity : int;
  c_s_indx : float;
  table_entries : float;
  c_rtn : float;
  index_all_total : float;
}

let sweep (p : Params.t) ~arities =
  let p = Params.validate_exn p in
  let indexed_keys = float_of_int p.Params.keys in
  let nap = Cost.num_active_peers p ~indexed_keys in
  let queries_per_second = p.Params.f_qry *. float_of_int p.Params.num_peers in
  List.map
    (fun arity ->
      let c_s_indx = search_index ~arity ~num_active_peers:nap in
      let c_rtn = routing_maintenance p ~arity ~num_active_peers:nap ~indexed_keys in
      let c_upd =
        (c_s_indx +. (float_of_int p.Params.repl *. p.Params.dup2)) *. p.Params.f_upd
      in
      {
        arity;
        c_s_indx;
        table_entries = routing_table_entries ~arity ~num_active_peers:nap;
        c_rtn;
        index_all_total =
          (indexed_keys *. (c_rtn +. c_upd)) +. (queries_per_second *. c_s_indx);
      })
    arities
