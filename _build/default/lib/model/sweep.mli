(** Query-frequency sweeps: the series behind Figs. 1-4. *)

type point = {
  f_qry : float;            (** per-peer queries per second (x-axis) *)
  index_all : float;        (** Fig. 1 solid *)
  no_index : float;         (** Fig. 1 dashed stars *)
  partial_ideal : float;    (** Fig. 1 dashed squares *)
  partial_selection : float;(** Fig. 4 input *)
  savings_ideal_vs_all : float;      (** Fig. 2 solid *)
  savings_ideal_vs_none : float;     (** Fig. 2 dashed *)
  savings_selection_vs_all : float;  (** Fig. 4 solid *)
  savings_selection_vs_none : float; (** Fig. 4 dashed *)
  index_fraction : float;   (** Fig. 3 solid: maxRank / keys *)
  p_indexed : float;        (** Fig. 3 dashed: Eq. 5 *)
  max_rank : int;
  key_ttl : float;          (** the 1/fMin TTL used for the selection row *)
  ttl_index_fraction : float; (** Eq. 15 / keys *)
  p_indexed_ttl : float;    (** Eq. 14 *)
}

val point : Params.t -> point
(** Evaluate every strategy at the parameter set's own [f_qry]. *)

val run : Params.t -> frequencies:float list -> point list
(** One {!point} per frequency, everything else held at [Params.t]. *)

val default_run : Params.t -> point list
(** {!run} over the paper's eight frequencies. *)
