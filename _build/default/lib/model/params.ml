type t = {
  num_peers : int;
  keys : int;
  stor : int;
  repl : int;
  alpha : float;
  f_qry : float;
  f_upd : float;
  env : float;
  dup : float;
  dup2 : float;
}

let default =
  {
    num_peers = 20_000;
    keys = 40_000;
    stor = 100;
    repl = 50;
    alpha = 1.2;
    f_qry = 1. /. 30.;
    f_upd = 1. /. (3600. *. 24.);
    env = 1. /. 14.;
    dup = 1.8;
    dup2 = 1.8;
  }

let with_query_frequency t f_qry = { t with f_qry }

let validate t =
  let check cond msg rest = if cond then rest () else Error msg in
  check (t.num_peers >= 1) "num_peers must be >= 1" @@ fun () ->
  check (t.keys >= 1) "keys must be >= 1" @@ fun () ->
  check (t.stor >= 1) "stor must be >= 1" @@ fun () ->
  check (t.repl >= 1) "repl must be >= 1" @@ fun () ->
  check (t.repl <= t.num_peers) "repl must be <= num_peers" @@ fun () ->
  check (t.alpha >= 0.) "alpha must be >= 0" @@ fun () ->
  check (t.f_qry > 0.) "f_qry must be positive" @@ fun () ->
  check (t.f_upd >= 0.) "f_upd must be >= 0" @@ fun () ->
  check (t.env >= 0.) "env must be >= 0" @@ fun () ->
  check (t.dup >= 1.) "dup must be >= 1" @@ fun () ->
  check (t.dup2 >= 1.) "dup2 must be >= 1" @@ fun () -> Ok t

let validate_exn t =
  match validate t with Ok t -> t | Error msg -> invalid_arg ("Params: " ^ msg)

let query_frequency_sweep _t =
  List.map (fun d -> 1. /. d) [ 30.; 60.; 120.; 300.; 600.; 1800.; 3600.; 7200. ]

let to_rows t =
  [
    ("Total number of peers", "numPeers", string_of_int t.num_peers);
    ("Number of unique keys", "keys", string_of_int t.keys);
    ("Storage capacity for indexing per peer", "stor", string_of_int t.stor);
    ("Replication factor", "repl", string_of_int t.repl);
    ("alpha of query Zipf distribution", "alpha", Printf.sprintf "%g" t.alpha);
    ("Frequency of queries per peer per second", "fQry", Printf.sprintf "%g (1/%g s)" t.f_qry (1. /. t.f_qry));
    ("Avg. update freq. per key", "fUpd", Printf.sprintf "%g" t.f_upd);
    ("Route maintenance constant", "env", Printf.sprintf "%g" t.env);
    ("Message duplication (unstructured)", "dup", Printf.sprintf "%g" t.dup);
    ("Message duplication (replica subnet)", "dup2", Printf.sprintf "%g" t.dup2);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (d, s, v) -> Format.fprintf ppf "%-45s %-8s %s@," d s v) (to_rows t);
  Format.fprintf ppf "@]"
