let log2 x = Float.log x /. Float.log 2.

let search_unstructured (p : Params.t) =
  float_of_int p.num_peers /. float_of_int p.repl *. p.dup

let num_active_peers (p : Params.t) ~indexed_keys =
  if indexed_keys <= 0. then max 2 (min p.repl p.num_peers)
  else
    let needed = int_of_float (Float.ceil (indexed_keys *. float_of_int p.repl /. float_of_int p.stor)) in
    max 2 (max (min p.repl p.num_peers) (min needed p.num_peers))

let search_index ~num_active_peers =
  if num_active_peers < 2 then invalid_arg "Cost.search_index: need >= 2 active peers";
  0.5 *. log2 (float_of_int num_active_peers)

let routing_maintenance (p : Params.t) ~num_active_peers ~indexed_keys =
  if indexed_keys <= 0. then invalid_arg "Cost.routing_maintenance: no indexed keys";
  let nap = float_of_int num_active_peers in
  p.env *. log2 nap *. nap /. indexed_keys

let update (p : Params.t) ~num_active_peers =
  (search_index ~num_active_peers +. (float_of_int p.repl *. p.dup2)) *. p.f_upd

let index_key (p : Params.t) ~num_active_peers ~indexed_keys =
  routing_maintenance p ~num_active_peers ~indexed_keys +. update p ~num_active_peers

let search_index_degraded (p : Params.t) ~num_active_peers =
  search_index ~num_active_peers +. (float_of_int p.repl *. p.dup2)

let total_maintenance (p : Params.t) ~num_active_peers =
  let nap = float_of_int num_active_peers in
  p.env *. log2 nap *. nap
