type row = {
  scale : float;
  key_ttl : float;
  total_cost : float;
  savings_vs_all : float;
  savings_vs_none : float;
  savings_drop_vs_ideal_ttl : float;
}

let default_scales = [ 0.5; 0.75; 1.0; 1.5; 2.0 ]

let run (p : Params.t) ~scales =
  let p = Params.validate_exn p in
  let solution = Index_policy.solve p in
  let ideal_ttl = Strategies.default_key_ttl solution in
  let all = (Strategies.index_all p).Strategies.total in
  let none = (Strategies.no_index p).Strategies.total in
  let cheaper_baseline = Float.min all none in
  let cost_at ttl = (Strategies.partial_selection p ~key_ttl:ttl).Strategies.total in
  let baseline_savings =
    Strategies.savings ~cost:(cost_at ideal_ttl) ~versus:cheaper_baseline
  in
  let row scale =
    let key_ttl = max 1. (scale *. ideal_ttl) in
    let total_cost = cost_at key_ttl in
    let savings_here = Strategies.savings ~cost:total_cost ~versus:cheaper_baseline in
    {
      scale;
      key_ttl;
      total_cost;
      savings_vs_all = Strategies.savings ~cost:total_cost ~versus:all;
      savings_vs_none = Strategies.savings ~cost:total_cost ~versus:none;
      savings_drop_vs_ideal_ttl = baseline_savings -. savings_here;
    }
  in
  List.map row scales

let best_ttl (p : Params.t) ~candidates =
  match candidates with
  | [] -> invalid_arg "Ttl_analysis.best_ttl: no candidates"
  | first :: rest ->
      let cost ttl = (Strategies.partial_selection p ~key_ttl:ttl).Strategies.total in
      List.fold_left
        (fun best ttl -> if cost ttl < cost best then ttl else best)
        first rest
