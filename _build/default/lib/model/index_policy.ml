type solution = {
  max_rank : int;
  f_min : float;
  num_active_peers : int;
  c_s_unstr : float;
  c_s_indx : float;
  c_ind_key : float;
  p_indexed : float;
  iterations : int;
}

let prob_queried_at_least_once (p : Params.t) zipf ~rank =
  let trials = float_of_int p.num_peers *. p.f_qry in
  Pdht_dist.Zipf.expected_hit_prob_at_least_once zipf ~rank ~trials

let p_indexed_for_rank zipf ~max_rank = Pdht_dist.Zipf.mass_of_top zipf max_rank

let max_rank_for_threshold (p : Params.t) zipf ~f_min =
  let n = Pdht_dist.Zipf.n zipf in
  let clears rank = prob_queried_at_least_once p zipf ~rank >= f_min in
  if not (clears 1) then 0
  else if clears n then n
  else begin
    (* Invariant: clears !lo, not (clears !hi). *)
    let lo = ref 1 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if clears mid then lo := mid else hi := mid
    done;
    !lo
  end

let solve ?(max_iterations = 100) (p : Params.t) =
  let p = Params.validate_exn p in
  let zipf = Pdht_dist.Zipf.create ~n:p.keys ~alpha:p.alpha in
  let c_s_unstr = Cost.search_unstructured p in
  let evaluate max_rank =
    (* Degenerate empty index: searching is all-broadcast; report the
       threshold that rank 1 failed to clear. *)
    let indexed_keys = float_of_int (max 1 max_rank) in
    let nap = Cost.num_active_peers p ~indexed_keys in
    let c_s_indx = Cost.search_index ~num_active_peers:nap in
    let c_ind_key = Cost.index_key p ~num_active_peers:nap ~indexed_keys in
    let denom = c_s_unstr -. c_s_indx in
    let f_min = if denom <= 0. then infinity else c_ind_key /. denom in
    (nap, c_s_indx, c_ind_key, f_min)
  in
  let rec iterate max_rank steps =
    let nap, c_s_indx, c_ind_key, f_min = evaluate max_rank in
    let next = max_rank_for_threshold p zipf ~f_min in
    if next = max_rank || steps >= max_iterations then
      {
        max_rank = next;
        f_min;
        num_active_peers = nap;
        c_s_unstr;
        c_s_indx;
        c_ind_key;
        p_indexed = p_indexed_for_rank zipf ~max_rank:next;
        iterations = steps;
      }
    else iterate next (steps + 1)
  in
  iterate p.keys 1
