let item_availability ~peer_availability ~repl =
  if peer_availability < 0. || peer_availability > 1. then
    invalid_arg "Replication_planner.item_availability: availability outside [0,1]";
  if repl < 0 then invalid_arg "Replication_planner.item_availability: negative repl";
  -.Float.expm1 (float_of_int repl *. Float.log1p (-.peer_availability))

let required_replicas ~peer_availability ~target =
  if peer_availability <= 0. || peer_availability > 1. then
    invalid_arg "Replication_planner.required_replicas: availability outside (0,1]";
  if target < 0. || target >= 1. then
    invalid_arg "Replication_planner.required_replicas: target outside [0,1)";
  if target = 0. then 0
  else if peer_availability = 1. then 1
  else
    let r = Float.log1p (-.target) /. Float.log1p (-.peer_availability) in
    int_of_float (Float.ceil (r -. 1e-12))

type plan = {
  repl : int;
  floor : int;
  achieved_availability : float;
  partial_cost : float;
}

let selection_cost params ~repl =
  let params = { params with Params.repl } in
  let solution = Index_policy.solve params in
  let key_ttl = Strategies.default_key_ttl solution in
  let key_ttl = if Float.is_finite key_ttl then key_ttl else 86_400. in
  (Strategies.partial_selection params ~key_ttl).Strategies.total

let plan params ~peer_availability ~target ~max_repl =
  let params = Params.validate_exn params in
  let floor = max 1 (required_replicas ~peer_availability ~target) in
  if floor > max_repl then
    invalid_arg
      (Printf.sprintf
         "Replication_planner.plan: need %d replicas for the target but max_repl is %d"
         floor max_repl);
  let candidates = List.init (max_repl - floor + 1) (fun i -> floor + i) in
  let best =
    List.fold_left
      (fun acc repl ->
        let cost = selection_cost params ~repl in
        match acc with
        | None -> Some (repl, cost)
        | Some (_, best_cost) -> if cost < best_cost then Some (repl, cost) else acc)
      None candidates
  in
  match best with
  | None -> assert false (* candidates is non-empty *)
  | Some (repl, partial_cost) ->
      {
        repl;
        floor;
        achieved_availability = item_availability ~peer_availability ~repl;
        partial_cost;
      }

let cost_curve params ~repls =
  let params = Params.validate_exn params in
  List.map
    (fun repl ->
      let c_s_unstr = Cost.search_unstructured { params with Params.repl } in
      (repl, c_s_unstr, selection_cost params ~repl))
    repls
