(** Deterministic string hashing for key generation.

    The news-system scenario derives DHT keys by hashing single or
    concatenated metadata element-value pairs (paper Section 1, after
    [FeBi04]).  We use FNV-1a 64-bit: simple, fast, stable across runs
    and platforms — unlike [Hashtbl.hash], whose value may change
    between compiler versions. *)

val fnv1a64 : string -> int64
(** Raw FNV-1a 64-bit hash. *)

val hash_to_key : string -> Bitkey.t
(** Hash a string into the binary key space. *)

val combine : string list -> string
(** Canonical encoding of a list of fields before hashing.  Uses a
    length-prefixed encoding so that [combine \["ab"; "c"\]] and
    [combine \["a"; "bc"\]] differ. *)
