(** Descriptive statistics and online accumulators used by the
    experiment harness. *)

val mean : float array -> float
(** Arithmetic mean.  0. on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0. for fewer than two
    samples. *)

val stddev : float array -> float

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0,1\]], linear interpolation
    between order statistics.  @raise Invalid_argument on empty input or
    [p] outside [\[0,1\]]. *)

val median : float array -> float

val harmonic_generalized : n:int -> alpha:float -> float
(** [harmonic_generalized ~n ~alpha] is {m H_{n,alpha} = sum_{x=1}^{n}
    x^{-alpha}}, the normaliser of a Zipf distribution (paper Eq. 3
    denominator). *)

(** Welford online mean/variance accumulator. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  (** Smallest added value; [infinity] when empty. *)

  val max : t -> float
  (** Largest added value; [neg_infinity] when empty. *)
end

(** Fixed-bin histogram over a closed value range. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** Requires [lo < hi] and [bins >= 1].  Values outside the range are
      counted in the first/last bin. *)

  val add : t -> float -> unit
  val count : t -> int
  val bin_count : t -> int -> int
  val bins : t -> int
  val to_fractions : t -> float array
  (** Per-bin fraction of all added samples (all zero when empty). *)
end
