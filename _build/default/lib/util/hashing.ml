let fnv1a64 s =
  let open Int64 in
  let prime = 0x100000001B3L in
  let acc = ref 0xCBF29CE484222325L in
  String.iter (fun c -> acc := mul (logxor !acc (of_int (Char.code c))) prime) s;
  !acc

(* FNV's high bits avalanche poorly on short inputs, and Bitkey routing
   is MSB-first, so finalize with the splitmix64 mixer before taking the
   top bits. *)
let finalize z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_to_key s =
  Bitkey.of_int (Int64.to_int (Int64.shift_right_logical (finalize (fnv1a64 s)) 2))

let combine fields =
  let buf = Buffer.create 64 in
  List.iter
    (fun f ->
      Buffer.add_string buf (string_of_int (String.length f));
      Buffer.add_char buf ':';
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf
