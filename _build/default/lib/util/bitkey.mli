(** Fixed-width binary keys.

    The paper assumes a binary key space (Section 3.2, footnote 3): DHT
    routing resolves one bit per hop, so the expected lookup cost is
    [1/2 * log2 n] messages (Eq. 7).  Keys here are 62-bit non-negative
    integers (so they always fit OCaml's 63-bit native int)
    interpreted most-significant-bit first, which is wide
    enough for any simulated population while staying unboxed. *)

type t = private int
(** A key; compares with the standard polymorphic operators. *)

val width : int
(** Number of significant bits (62). *)

val of_int : int -> t
(** Interpret a non-negative [int] as a key.  @raise Invalid_argument on
    negatives. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val random : Rng.t -> t

val bit : t -> int -> bool
(** [bit k i] is bit [i] counting from the most significant ([i = 0]) to
    the least significant ([i = width - 1]). *)

val common_prefix_length : t -> t -> int
(** Number of leading bits shared by the two keys (= [width] iff
    equal). *)

val xor_distance : t -> t -> int
(** Kademlia-style XOR metric, handy for cross-checks. *)

val prefix : t -> len:int -> t
(** [prefix k ~len] zeroes all but the first [len] bits. *)

val matches_prefix : t -> prefix:t -> len:int -> bool
(** Does [k] start with the first [len] bits of [prefix]? *)

val flip_bit : t -> int -> t
(** Flip bit [i] (MSB-first indexing). *)

val to_bits : t -> len:int -> string
(** First [len] bits rendered as a ['0'/'1'] string (for debugging and
    P-Grid paths). *)

val of_bits : string -> t
(** Parse a ['0'/'1'] string as the leading bits of a key, remaining
    bits zero.  @raise Invalid_argument on other characters or strings
    longer than [width]. *)

val pp : Format.formatter -> t -> unit
