type align = Left | Right

type t = { headers : string list; aligns : align list; mutable rows : string list list }

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let add_float_row t ?(precision = 5) row =
  add_row t (List.map (Printf.sprintf "%.*g" precision) row)

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_row cells =
    let padded =
      List.map2 (fun (a, w) c -> pad a w c) (List.combine t.aligns widths) cells
    in
    String.concat "  " padded
  in
  let header = render_row t.headers in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map render_row rows)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (row t.headers :: List.map row (List.rev t.rows))

let print t =
  print_string (render t);
  print_newline ()
