lib/util/sampling.ml: Array Fun Queue Rng Seq
