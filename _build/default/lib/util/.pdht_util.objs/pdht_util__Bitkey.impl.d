lib/util/bitkey.ml: Format Int Int64 Rng String
