lib/util/table.mli:
