lib/util/rng.mli:
