lib/util/hashing.ml: Bitkey Buffer Char Int64 List String
