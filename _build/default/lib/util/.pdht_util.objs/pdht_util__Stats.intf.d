lib/util/stats.mli:
