lib/util/hashing.mli: Bitkey
