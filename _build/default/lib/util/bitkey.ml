type t = int

let width = 62

let of_int i =
  if i < 0 then invalid_arg "Bitkey.of_int: negative";
  i

let to_int k = k
let compare = Int.compare
let equal = Int.equal
let random rng = Int64.to_int (Int64.shift_right_logical (Rng.bits64 rng) 2)

let bit k i =
  if i < 0 || i >= width then invalid_arg "Bitkey.bit: index out of range";
  k lsr (width - 1 - i) land 1 = 1

let common_prefix_length a b =
  let x = a lxor b in
  if x = 0 then width
  else
    (* Position of the highest set bit of the 62-bit difference. *)
    let rec count i = if x lsr (width - 1 - i) land 1 = 1 then i else count (i + 1) in
    count 0

let xor_distance a b = a lxor b

let prefix k ~len =
  if len < 0 || len > width then invalid_arg "Bitkey.prefix: bad length";
  if len = 0 then 0 else k land (lnot 0 lsl (width - len)) land max_int

let matches_prefix k ~prefix:p ~len = common_prefix_length k p >= len || len = 0

let flip_bit k i =
  if i < 0 || i >= width then invalid_arg "Bitkey.flip_bit: index out of range";
  k lxor (1 lsl (width - 1 - i))

let to_bits k ~len =
  if len < 0 || len > width then invalid_arg "Bitkey.to_bits: bad length";
  String.init len (fun i -> if bit k i then '1' else '0')

let of_bits s =
  let n = String.length s in
  if n > width then invalid_arg "Bitkey.of_bits: too long";
  let acc = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '0' -> acc := !acc lsl 1
      | '1' -> acc := (!acc lsl 1) lor 1
      | _ -> invalid_arg "Bitkey.of_bits: expected '0' or '1'")
    s;
  !acc lsl (width - n)

let pp ppf k = Format.fprintf ppf "0x%015x" k
