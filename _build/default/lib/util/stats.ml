let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let percentile xs ~p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs ~p:0.5

let harmonic_generalized ~n ~alpha =
  (* Summing smallest-first keeps the float error negligible even for
     millions of terms. *)
  let acc = ref 0. in
  for x = n downto 1 do
    acc := !acc +. (float_of_int x ** -.alpha)
  done;
  !acc

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
    if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let raw = (x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins in
    let idx = int_of_float (Float.floor raw) in
    let idx = if idx < 0 then 0 else if idx >= bins then bins - 1 else idx in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let bin_count t i = t.counts.(i)
  let bins t = Array.length t.counts

  let to_fractions t =
    if t.total = 0 then Array.make (Array.length t.counts) 0.
    else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts
end
