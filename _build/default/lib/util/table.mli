(** Aligned plain-text tables for experiment output.

    The bench harness prints one table per reproduced figure; this
    module keeps that output readable and diff-stable. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Column headers with their alignment. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_float_row : t -> ?precision:int -> float list -> unit
(** Convenience: format every cell with [%.*g] ([precision] significant
    digits, default 5). *)

val render : t -> string
(** The full table with a header rule, ready for [print_string]. *)

val render_csv : t -> string
(** The same data as RFC-4180-style CSV (header row first; cells
    containing commas, quotes or newlines are quoted). *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
