module Int_set = Set.Make (Int)

type t = {
  total_peers : int;
  mutable by_item : (int, int array) Hashtbl.t;
  mutable at_peer : Int_set.t array;
}

let create ~peers =
  if peers < 1 then invalid_arg "Replication.create: need >= 1 peer";
  { total_peers = peers; by_item = Hashtbl.create 256; at_peer = Array.make peers Int_set.empty }

let peers t = t.total_peers

let remove t ~item =
  match Hashtbl.find_opt t.by_item item with
  | None -> ()
  | Some reps ->
      Array.iter (fun p -> t.at_peer.(p) <- Int_set.remove item t.at_peer.(p)) reps;
      Hashtbl.remove t.by_item item

let place_on t ~item ~replicas =
  Array.iter
    (fun p -> if p < 0 || p >= t.total_peers then invalid_arg "Replication.place_on: bad peer")
    replicas;
  remove t ~item;
  let distinct = Int_set.of_list (Array.to_list replicas) in
  let reps = Array.of_list (Int_set.elements distinct) in
  Hashtbl.replace t.by_item item reps;
  Array.iter (fun p -> t.at_peer.(p) <- Int_set.add item t.at_peer.(p)) reps

let place t rng ~item ~repl =
  if repl < 1 then invalid_arg "Replication.place: repl must be >= 1";
  let k = min repl t.total_peers in
  let replicas = Pdht_util.Sampling.sample_without_replacement rng ~k ~n:t.total_peers in
  place_on t ~item ~replicas

let replicas t ~item =
  match Hashtbl.find_opt t.by_item item with None -> [||] | Some r -> r

let holds t ~peer ~item = Int_set.mem item t.at_peer.(peer)
let items_at t ~peer = Int_set.elements t.at_peer.(peer)
let replication_factor t ~item = Array.length (replicas t ~item)

let availability t ~online ~item =
  let reps = replicas t ~item in
  let total = Array.length reps in
  if total = 0 then 0.
  else
    let up = Array.fold_left (fun acc p -> if online p then acc + 1 else acc) 0 reps in
    float_of_int up /. float_of_int total
