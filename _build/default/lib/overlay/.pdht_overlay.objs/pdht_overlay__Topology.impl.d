lib/overlay/topology.ml: Array Int Pdht_util Queue Set
