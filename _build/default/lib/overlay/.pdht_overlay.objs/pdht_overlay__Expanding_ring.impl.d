lib/overlay/expanding_ring.ml: Flood
