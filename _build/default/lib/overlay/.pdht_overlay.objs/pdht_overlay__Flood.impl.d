lib/overlay/flood.ml: Array List Topology
