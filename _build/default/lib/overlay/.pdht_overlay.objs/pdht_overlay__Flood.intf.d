lib/overlay/flood.mli: Topology
