lib/overlay/unstructured_search.mli: Pdht_util Replication Topology
