lib/overlay/replication.mli: Pdht_util
