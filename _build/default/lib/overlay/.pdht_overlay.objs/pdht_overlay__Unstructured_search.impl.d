lib/overlay/unstructured_search.ml: Expanding_ring Flood Random_walk Replication Topology
