lib/overlay/random_walk.mli: Pdht_util Topology
