lib/overlay/expanding_ring.mli: Topology
