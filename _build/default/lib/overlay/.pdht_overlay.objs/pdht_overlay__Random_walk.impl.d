lib/overlay/random_walk.ml: Array List Pdht_util Topology
