lib/overlay/topology.mli: Pdht_util
