lib/overlay/replication.ml: Array Hashtbl Int Pdht_util Set
