type result = {
  found_at : int option;
  peers_reached : int;
  messages : int;
  hops_to_hit : int option;
}

let search topo ~online ~holds ~source ~ttl =
  if not (online source) then
    { found_at = None; peers_reached = 0; messages = 0; hops_to_hit = None }
  else begin
    let n = Topology.peer_count topo in
    let visited = Array.make n false in
    visited.(source) <- true;
    let frontier = ref [ source ] in
    let reached = ref 1 in
    let messages = ref 0 in
    let found_at = ref (if holds source then Some source else None) in
    let hops_to_hit = ref (if holds source then Some 0 else None) in
    let depth = ref 0 in
    while !frontier <> [] && !depth < ttl do
      incr depth;
      let next = ref [] in
      let forward p =
        let deliver q =
          if online q then begin
            incr messages;
            if not visited.(q) then begin
              visited.(q) <- true;
              incr reached;
              if holds q && !found_at = None then begin
                found_at := Some q;
                hops_to_hit := Some !depth
              end;
              next := q :: !next
            end
          end
        in
        Array.iter deliver (Topology.neighbors topo p)
      in
      List.iter forward !frontier;
      frontier := !next
    done;
    { found_at = !found_at; peers_reached = !reached; messages = !messages;
      hops_to_hit = !hops_to_hit }
  end

let duplication_factor r =
  if r.peers_reached = 0 then 0.
  else float_of_int r.messages /. float_of_int r.peers_reached
