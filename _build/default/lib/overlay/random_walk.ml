type result = {
  found_at : int option;
  steps_taken : int;
  messages : int;
  distinct_visited : int;
}

let search topo rng ~online ~holds ~source ~walkers ~max_steps ~check_every =
  if walkers < 1 then invalid_arg "Random_walk.search: walkers must be >= 1";
  if check_every < 1 then invalid_arg "Random_walk.search: check_every must be >= 1";
  if not (online source) then
    { found_at = None; steps_taken = 0; messages = 0; distinct_visited = 0 }
  else begin
    let n = Topology.peer_count topo in
    let visited = Array.make n false in
    visited.(source) <- true;
    let distinct = ref 1 in
    let found_at = ref (if holds source then Some source else None) in
    let positions = Array.make walkers source in
    let steps = ref 0 in
    let messages = ref 0 in
    let round = ref 0 in
    let stop = ref (!found_at <> None) in
    while (not !stop) && !round < max_steps do
      incr round;
      (* One synchronous step of every walker. *)
      for w = 0 to walkers - 1 do
        let p = positions.(w) in
        let nbrs = Topology.neighbors topo p in
        let online_nbrs = Array.to_list nbrs |> List.filter online in
        match online_nbrs with
        | [] -> () (* stalled walker; retries next round *)
        | _ :: _ ->
            let arr = Array.of_list online_nbrs in
            let q = arr.(Pdht_util.Rng.int rng (Array.length arr)) in
            positions.(w) <- q;
            incr steps;
            incr messages;
            if not visited.(q) then begin
              visited.(q) <- true;
              incr distinct
            end;
            if holds q && !found_at = None then found_at := Some q
      done;
      (* Periodic check-back with the source: one probe per walker. *)
      if !round mod check_every = 0 then begin
        messages := !messages + walkers;
        if !found_at <> None then stop := true
      end
    done;
    { found_at = !found_at; steps_taken = !steps; messages = !messages;
      distinct_visited = !distinct }
  end

let duplication_factor r =
  if r.distinct_visited = 0 then 0.
  else float_of_int r.messages /. float_of_int r.distinct_visited
