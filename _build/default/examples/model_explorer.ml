(* Model explorer: "to index or not to index?" across the design space.

   The paper's analysis (Sections 2-4) answers one question: given a
   query rate, how much of the key space is worth indexing?  This
   example walks the analytical model through three what-if axes beyond
   the Figs. 1-4 sweep:

     - query skew (Zipf alpha): flatter distributions make partial
       indexing less attractive because there is no hot head to cache;
     - replication factor: more content replicas make broadcast search
       cheaper and shrink the index worth keeping;
     - network size at fixed load: bigger networks make broadcast
       brutally expensive and the index more valuable.

   Run with: dune exec examples/model_explorer.exe *)

module Params = Pdht_model.Params
module Index_policy = Pdht_model.Index_policy
module Strategies = Pdht_model.Strategies
module Table = Pdht_util.Table

let row_of params =
  let s = Index_policy.solve params in
  let all = (Strategies.index_all params).Strategies.total in
  let none = (Strategies.no_index params).Strategies.total in
  let partial = (Strategies.partial_ideal params s).Strategies.total in
  let winner =
    (* Tolerance: with a full index, partial and indexAll coincide up to
       rounding of pIndxd. *)
    if partial <= Float.min all none *. 1.0001 then "partial"
    else if all <= none then "indexAll"
    else "noIndex"
  in
  ( Printf.sprintf "%.3f" (float_of_int s.Index_policy.max_rank /. float_of_int params.Params.keys),
    Printf.sprintf "%.3f" s.Index_policy.p_indexed,
    Printf.sprintf "%.0f" partial,
    Printf.sprintf "%.0f" all,
    Printf.sprintf "%.0f" none,
    winner )

let print_axis title header values params_of =
  Printf.printf "\n== %s ==\n" title;
  let t =
    Table.create
      ~columns:
        [ (header, Table.Left); ("idx frac", Table.Right); ("pIndxd", Table.Right);
          ("partial", Table.Right); ("indexAll", Table.Right); ("noIndex", Table.Right);
          ("winner", Table.Left) ]
  in
  List.iter
    (fun v ->
      let label, params = params_of v in
      let frac, p, partial, all, none, winner = row_of params in
      Table.add_row t [ label; frac; p; partial; all; none; winner ])
    values;
  Table.print t

let () =
  Printf.printf "analytical model what-ifs around the Table-1 news scenario\n";
  print_axis "query skew (Zipf alpha)" "alpha"
    [ 0.6; 0.8; 1.0; 1.2; 1.4; 1.6 ]
    (fun alpha -> (Printf.sprintf "%.1f" alpha, { Params.default with Params.alpha }));
  print_axis "replication factor" "repl"
    [ 10; 25; 50; 100; 200 ]
    (fun repl -> (string_of_int repl, { Params.default with Params.repl }));
  print_axis "network size (load per peer fixed)" "peers"
    [ 2_000; 10_000; 20_000; 50_000; 100_000 ]
    (fun num_peers ->
      ( string_of_int num_peers,
        { Params.default with Params.num_peers; keys = num_peers * 2 } ));
  Printf.printf
    "\nReading guide: 'idx frac' is maxRank/keys (how much of the key space is\n\
     worth indexing, Eq. 2-4); 'pIndxd' the fraction of queries the partial\n\
     index answers (Eq. 5).  The partial strategy never loses to noIndex and\n\
     loses to indexAll only when almost every key is hot.\n"
