(* Self-organization: the structured substrates building themselves.

   The paper's platform, P-Grid, is "a self-organizing access structure"
   [Aber01]: the routing trie emerges from random pairwise meetings with
   no coordinator.  Chord [StMo01] likewise grows node by node through
   its join + stabilization protocol.  This example watches both happen
   and then breaks the Chord ring to show stabilization healing it.

   Run with: dune exec examples/self_organization.exe *)

module Bootstrap = Pdht_dht.Pgrid_bootstrap
module CD = Pdht_dht.Chord_dynamic

let () =
  Printf.printf "== P-Grid: a trie from random meetings ==\n\n";
  let rng = Pdht_util.Rng.create ~seed:11 in
  let trie = Bootstrap.create ~members:128 () in
  Printf.printf "%-10s %-12s %-16s %-10s %s\n" "meetings" "mean depth" "distinct paths"
    "refs/peer" "lookup success";
  let total = ref 0 in
  List.iter
    (fun meetings ->
      Bootstrap.run_exchanges trie rng ~meetings;
      total := !total + meetings;
      let s = Bootstrap.stats trie in
      Printf.printf "%-10d %-12.2f %-16d %-10.1f %.3f\n" !total
        s.Bootstrap.mean_path_length s.Bootstrap.distinct_paths s.Bootstrap.mean_refs
        (Bootstrap.lookup_success_rate trie rng ~trials:200))
    [ 64; 128; 256; 512; 1024 ];
  Printf.printf
    "\n(log2 128 = 7: the trie reaches its natural depth and every peer ends\n\
     up with a distinct path — nobody coordinated anything)\n\n";

  (* A few concrete peers. *)
  Printf.printf "sample paths: ";
  List.iter (fun p -> Printf.printf "%s " (Bootstrap.path_of trie p)) [ 0; 1; 2; 3 ];
  Printf.printf "\n\n== Chord: a ring from joins and stabilization ==\n\n";
  let ring = CD.create rng ~capacity:100 () in
  let first = CD.bootstrap ring in
  let members = ref [ first ] in
  List.iter
    (fun target ->
      while CD.node_count ring < target do
        let alive = List.filter (CD.is_member ring) !members in
        let via = List.nth alive (Pdht_util.Rng.int rng (List.length alive)) in
        (match CD.join ring ~via with
        | Ok (node, _) -> members := node :: !members
        | Error _ -> ());
        ignore (CD.stabilize ring rng)
      done;
      for _ = 1 to 10 do
        ignore (CD.stabilize ring rng)
      done;
      Printf.printf "grown to %3d nodes: ring consistent = %b\n" (CD.node_count ring)
        (CD.ring_consistent ring))
    [ 4; 16; 64 ];

  Printf.printf "\ncrashing 16 nodes at once...\n";
  let alive = List.filter (CD.is_member ring) !members in
  List.iteri (fun i m -> if i mod 4 = 0 then CD.crash ring ~node:m) alive;
  Printf.printf "ring consistent right after the crashes: %b\n" (CD.ring_consistent ring);
  let rounds = ref 0 in
  while (not (CD.ring_consistent ring)) && !rounds < 50 do
    incr rounds;
    ignore (CD.stabilize ring rng)
  done;
  Printf.printf "stabilization healed the ring in %d round(s); %d nodes remain\n" !rounds
    (CD.node_count ring);
  Printf.printf
    "\nBoth structures repaired and grew themselves — the property the paper\n\
     leans on when it assumes 'a traditional DHT' simply keeps working\n\
     underneath the query-adaptive index.\n"
