(* Quickstart: the selection algorithm in five minutes.

   Builds a small PDHT deployment, issues queries and shows the three
   phases of the paper's Section-5 algorithm:
     1. a cold query misses the index, broadcast-searches the
        unstructured network and inserts the resolved key;
     2. a repeat query is answered from the index at a fraction of the
        cost;
     3. a key nobody asks about for keyTtl seconds falls out of the
        index again.

   Run with: dune exec examples/quickstart.exe *)

module Pdht = Pdht_core.Pdht
module Config = Pdht_core.Config
module Strategy = Pdht_core.Strategy

let describe label (r : Pdht.query_result) =
  let source =
    match r.Pdht.source with
    | Pdht.From_index -> "answered from the INDEX"
    | Pdht.From_broadcast -> "answered by BROADCAST search"
    | Pdht.Not_found -> "NOT FOUND"
  in
  Printf.printf "%-28s %-30s %4d msgs  (index %d, replica-flood %d, broadcast %d, insert %d)\n"
    label source (Pdht.total_messages r) r.Pdht.index_messages r.Pdht.replica_flood_messages
    r.Pdht.broadcast_messages r.Pdht.insert_messages

let () =
  let key_ttl = 300. in
  (* 500 peers; 100 of them also maintain the structured index.  Every
     key is replicated on 10 random peers as content. *)
  let config =
    Config.make ~num_peers:500 ~active_members:100 ~keys:1_000 ~repl:10 ~stor:100
      ~strategy:(Strategy.Partial_index { key_ttl })
      ()
  in
  let rng = Pdht_util.Rng.create ~seed:7 in
  let pdht = Pdht.create rng config in
  Printf.printf "PDHT with %d peers (%d DHT members), %d keys, keyTtl = %.0f s\n\n"
    500 (Pdht.active_members pdht) 1_000 key_ttl;

  Printf.printf "-- phase 1: cold key --\n";
  describe "t=0    query key 42" (Pdht.query pdht ~now:0. ~peer:3 ~key_index:42);

  Printf.printf "\n-- phase 2: warm key --\n";
  describe "t=10   query key 42 again" (Pdht.query pdht ~now:10. ~peer:77 ~key_index:42);
  describe "t=20   and again" (Pdht.query pdht ~now:20. ~peer:410 ~key_index:42);

  Printf.printf "\n-- phase 3: expiry --\n";
  Printf.printf "key 42 indexed at t=100?  %b   (TTL refreshed by the t=20 query)\n"
    (Pdht.index_hit_probe pdht ~now:100. ~key_index:42);
  Printf.printf "key 42 indexed at t=400?  %b   (no query for > keyTtl seconds)\n"
    (Pdht.index_hit_probe pdht ~now:400. ~key_index:42);
  describe "t=400  query key 42 once more" (Pdht.query pdht ~now:400. ~peer:9 ~key_index:42);

  Printf.printf "\n-- the index is query-adaptive --\n";
  (* Hammer a handful of hot keys, touch a cold one once. *)
  for round = 1 to 20 do
    for key_index = 0 to 4 do
      ignore (Pdht.query pdht ~now:(400. +. float_of_int (round * 10)) ~peer:(round * 7 + key_index)
                ~key_index)
    done
  done;
  ignore (Pdht.query pdht ~now:450. ~peer:11 ~key_index:900);
  Printf.printf "indexed keys right after the burst (t=600):   %d\n"
    (Pdht.indexed_key_count pdht ~now:600.);
  Printf.printf "indexed keys after everything idles (t=1200): %d\n"
    (Pdht.indexed_key_count pdht ~now:1_200.);
  Printf.printf
    "\nOnly keys queried within the last keyTtl seconds stay indexed —\n\
     exactly the behaviour the paper's selection algorithm is built for.\n"
