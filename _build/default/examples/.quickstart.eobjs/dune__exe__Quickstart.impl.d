examples/quickstart.ml: Pdht_core Pdht_util Printf
