examples/model_explorer.ml: Float List Pdht_model Pdht_util Printf
