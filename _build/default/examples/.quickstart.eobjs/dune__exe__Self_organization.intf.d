examples/self_organization.mli:
