examples/news_system.mli:
