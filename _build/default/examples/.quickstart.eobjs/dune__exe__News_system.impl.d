examples/news_system.ml: Array Format Hashtbl Option Pdht_core Pdht_dist Pdht_meta Pdht_util Printf
