examples/self_organization.ml: List Pdht_dht Pdht_util Printf
