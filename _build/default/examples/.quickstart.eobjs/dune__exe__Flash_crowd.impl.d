examples/flash_crowd.ml: List Pdht_core Pdht_work Printf String
