examples/quickstart.mli:
