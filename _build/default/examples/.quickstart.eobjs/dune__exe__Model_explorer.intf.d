examples/model_explorer.mli:
