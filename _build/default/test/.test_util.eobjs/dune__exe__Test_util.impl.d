test/test_util.ml: Alcotest Array Float Fun Gen Hashtbl Int64 List Pdht_util QCheck QCheck_alcotest Seq String Test
