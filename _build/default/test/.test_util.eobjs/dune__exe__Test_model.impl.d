test/test_model.ml: Alcotest Float Gen List Pdht_dist Pdht_model Printf QCheck QCheck_alcotest Test
