test/test_simkernel.ml: Alcotest Array Float List Pdht_sim Pdht_util QCheck QCheck_alcotest Test
