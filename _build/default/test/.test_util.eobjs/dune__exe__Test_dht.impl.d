test/test_dht.ml: Alcotest Array Float List Pdht_dht Pdht_sim Pdht_util Printf QCheck QCheck_alcotest String Test
