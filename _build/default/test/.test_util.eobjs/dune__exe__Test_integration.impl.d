test/test_integration.ml: Alcotest Array Float List Pdht_core Pdht_meta Pdht_model Pdht_sim Pdht_util Pdht_work Printf
