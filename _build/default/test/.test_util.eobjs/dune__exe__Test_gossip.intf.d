test/test_gossip.mli:
