test/test_gossip.ml: Alcotest Array Fun List Pdht_gossip Pdht_util QCheck QCheck_alcotest Test
