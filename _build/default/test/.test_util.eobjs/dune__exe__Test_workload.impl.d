test/test_workload.ml: Alcotest Array Float List Pdht_dist Pdht_sim Pdht_util Pdht_work Printf QCheck QCheck_alcotest Seq String Test
