test/test_overlay.ml: Alcotest Array List Pdht_overlay Pdht_util Printf QCheck QCheck_alcotest Test
