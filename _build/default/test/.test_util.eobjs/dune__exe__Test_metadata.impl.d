test/test_metadata.ml: Alcotest Array List Pdht_meta Pdht_util QCheck QCheck_alcotest String Test
