test/test_core.ml: Alcotest Array Format List Pdht_core Pdht_dht Pdht_sim Pdht_util Pdht_work Printf String
