test/test_dist.ml: Alcotest Array Hashtbl List Pdht_dist Pdht_util Printf QCheck QCheck_alcotest Test
