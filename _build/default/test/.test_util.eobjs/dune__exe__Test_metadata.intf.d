test/test_metadata.mli:
