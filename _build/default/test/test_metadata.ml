(* Tests for Pdht_meta: articles, stop words, key generation, corpus. *)

module Article = Pdht_meta.Article
module Stopwords = Pdht_meta.Stopwords
module Keygen = Pdht_meta.Keygen
module Corpus = Pdht_meta.Corpus
module Bitkey = Pdht_util.Bitkey

let sample_article () =
  Article.create ~id:1 ~published_at:0.
    ~fields:
      [
        (Article.Title, "Weather Iraklion");
        (Article.Author, "Crete Weather Service");
        (Article.Date, "2004/03/14");
        (Article.Category, "weather");
        (Article.Location, "Iraklion");
        (Article.Size, "2405");
      ]

(* ------------------------------------------------------------------ *)
(* Article *)

let test_article_fields () =
  let a = sample_article () in
  Alcotest.(check (option string)) "title" (Some "Weather Iraklion")
    (Article.field a Article.Title);
  Alcotest.(check (option string)) "missing element" None (Article.field a Article.Language)

let test_article_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Article.create: empty metadata")
    (fun () -> ignore (Article.create ~id:0 ~fields:[] ~published_at:0.));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Article.create: duplicate metadata element") (fun () ->
      ignore
        (Article.create ~id:0 ~published_at:0.
           ~fields:[ (Article.Title, "a"); (Article.Title, "b") ]))

let test_article_element_names_distinct () =
  let names = List.map Article.element_name Article.all_elements in
  Alcotest.(check int) "distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Stopwords *)

let test_stopwords_membership () =
  Alcotest.(check bool) "the" true (Stopwords.is_stop_word "the");
  Alcotest.(check bool) "And (case-insensitive)" true (Stopwords.is_stop_word "And");
  Alcotest.(check bool) "weather" false (Stopwords.is_stop_word "weather");
  Alcotest.(check bool) "non-trivial list" true (Stopwords.count > 50)

let test_stopwords_filter () =
  Alcotest.(check (list string)) "filters in order" [ "weather"; "iraklion" ]
    (Stopwords.filter_terms [ "the"; "weather"; "in"; "iraklion" ])

let test_tokenize () =
  Alcotest.(check (list string)) "splits, lowers, filters"
    [ "storm"; "hits"; "coast" ]
    (Stopwords.tokenize "The Storm hits the COAST!");
  Alcotest.(check (list string)) "alphanumeric runs" [ "2004"; "03"; "14" ]
    (Stopwords.tokenize "2004/03/14");
  Alcotest.(check (list string)) "empty input" [] (Stopwords.tokenize "");
  Alcotest.(check (list string)) "only stop words" [] (Stopwords.tokenize "the and of")

(* ------------------------------------------------------------------ *)
(* Keygen *)

let test_keygen_single () =
  let a = sample_article () in
  let keys = Keygen.encode a (Keygen.Single Article.Title) in
  Alcotest.(check int) "one encoding" 1 (List.length keys);
  Alcotest.(check (list string)) "missing element yields none" []
    (Keygen.encode a (Keygen.Single Article.Language))

let test_keygen_conjunction_symmetric () =
  (* hash(title AND date) must equal hash(date AND title). *)
  let k1 = Keygen.key_of_conjunction Article.Title "Weather Iraklion" Article.Date "2004/03/14" in
  let k2 = Keygen.key_of_conjunction Article.Date "2004/03/14" Article.Title "Weather Iraklion" in
  Alcotest.(check bool) "symmetric" true (Bitkey.equal k1 k2)

let test_keygen_term_excludes_stopwords () =
  let a =
    Article.create ~id:2 ~published_at:0.
      ~fields:[ (Article.Title, "The Storm and the Harbor") ]
  in
  let encodings = Keygen.encode a (Keygen.Term Article.Title) in
  Alcotest.(check int) "two term keys (storm, harbor)" 2 (List.length encodings)

let test_keygen_query_key_matches_article_key () =
  (* The key a query computes must equal the key generation produced for
     the same predicate — the whole point of hash-based indexing. *)
  let a = sample_article () in
  let article_keys = Keygen.keys_of_article a in
  let query_key = Keygen.key_of_query Article.Title "Weather Iraklion" in
  Alcotest.(check bool) "query key present" true
    (List.exists (Bitkey.equal query_key) article_keys);
  let conj = Keygen.key_of_conjunction Article.Title "Weather Iraklion" Article.Date "2004/03/14" in
  Alcotest.(check bool) "conjunction key present" true
    (List.exists (Bitkey.equal conj) article_keys)

let test_keygen_no_duplicates () =
  let a = sample_article () in
  let keys = Keygen.keys_of_article a in
  let distinct = List.sort_uniq Bitkey.compare keys in
  Alcotest.(check int) "deduplicated" (List.length distinct) (List.length keys)

let test_keygen_deterministic () =
  let a = sample_article () in
  Alcotest.(check bool) "stable across calls" true
    (List.for_all2 Bitkey.equal (Keygen.keys_of_article a) (Keygen.keys_of_article a))

(* ------------------------------------------------------------------ *)
(* Corpus *)

let test_corpus_generation () =
  let rng = Pdht_util.Rng.create ~seed:1 in
  let c = Corpus.generate rng ~articles:100 ~start_time:0. () in
  Alcotest.(check int) "size" 100 (Corpus.size c);
  for id = 0 to 99 do
    Alcotest.(check int) "exactly 20 keys per article (paper)" 20
      (Array.length (Corpus.keys_of c id))
  done;
  Alcotest.(check int) "40000-key style budget" 2000 (Array.length (Corpus.all_keys c))

let test_corpus_key_lookup () =
  let rng = Pdht_util.Rng.create ~seed:2 in
  let c = Corpus.generate rng ~articles:50 ~start_time:0. () in
  let k = (Corpus.keys_of c 7).(0) in
  match Corpus.article_of_key c k with
  | Some id ->
      Alcotest.(check bool) "key maps to a carrier" true
        (Array.exists (Bitkey.equal k) (Corpus.keys_of c id))
  | None -> Alcotest.fail "key should be registered"

let test_corpus_replace () =
  let rng = Pdht_util.Rng.create ~seed:3 in
  let c = Corpus.generate rng ~articles:20 ~start_time:0. () in
  let old_keys = Array.copy (Corpus.keys_of c 5) in
  let fresh = Corpus.replace c rng ~article_id:5 ~now:100. in
  Alcotest.(check int) "same id slot" 5 fresh.Article.id;
  Alcotest.(check (float 1e-9)) "timestamped" 100. fresh.Article.published_at;
  Alcotest.(check int) "still 20 keys" 20 (Array.length (Corpus.keys_of c 5));
  (* Old keys that no other article carries are no longer resolvable. *)
  Array.iter
    (fun k ->
      match Corpus.article_of_key c k with
      | Some id ->
          Alcotest.(check bool) "stale mapping cleaned" true
            (Array.exists (Bitkey.equal k) (Corpus.keys_of c id))
      | None -> ())
    old_keys

let test_corpus_custom_key_budget () =
  let rng = Pdht_util.Rng.create ~seed:4 in
  let c = Corpus.generate rng ~articles:10 ~keys_per_article:5 ~start_time:0. () in
  for id = 0 to 9 do
    Alcotest.(check int) "5 keys" 5 (Array.length (Corpus.keys_of c id))
  done

let test_corpus_determinism () =
  let c1 = Corpus.generate (Pdht_util.Rng.create ~seed:9) ~articles:10 ~start_time:0. () in
  let c2 = Corpus.generate (Pdht_util.Rng.create ~seed:9) ~articles:10 ~start_time:0. () in
  for id = 0 to 9 do
    Alcotest.(check bool) "same keys from same seed" true
      (Array.for_all2 Bitkey.equal (Corpus.keys_of c1 id) (Corpus.keys_of c2 id))
  done

let test_corpus_validation () =
  let rng = Pdht_util.Rng.create ~seed:5 in
  Alcotest.check_raises "no articles" (Invalid_argument "Corpus.generate: need >= 1 article")
    (fun () -> ignore (Corpus.generate rng ~articles:0 ~start_time:0. ()));
  let c = Corpus.generate rng ~articles:2 ~start_time:0. () in
  Alcotest.check_raises "bad id" (Invalid_argument "Corpus.article: bad id")
    (fun () -> ignore (Corpus.article c 5))

(* ------------------------------------------------------------------ *)
(* Query (conjunctive metadata queries, HaHe02-style) *)

module Query = Pdht_meta.Query

let test_query_matches () =
  let a = sample_article () in
  let q = Query.conj [ (Article.Title, "Weather Iraklion"); (Article.Date, "2004/03/14") ] in
  Alcotest.(check bool) "satisfied" true (Query.matches a q);
  let q2 = Query.conj [ (Article.Title, "Weather Iraklion"); (Article.Date, "1999/01/01") ] in
  Alcotest.(check bool) "wrong date" false (Query.matches a q2);
  Alcotest.(check bool) "empty matches" true (Query.matches a (Query.conj []))

let test_query_conj_validation () =
  Alcotest.check_raises "duplicate element"
    (Invalid_argument "Query.conj: duplicate element in conjunction") (fun () ->
      ignore (Query.conj [ (Article.Title, "a"); (Article.Title, "b") ]))

let test_query_plan_prefers_conjunction_key () =
  (* title AND date has an exact conjunction key in the default specs:
     the best plan must cover both with no residual. *)
  let q = Query.conj [ (Article.Title, "Weather Iraklion"); (Article.Date, "2004/03/14") ] in
  match Query.best_plan q with
  | Some plan ->
      Alcotest.(check int) "covers both" 2 (List.length plan.Query.covers);
      Alcotest.(check int) "no residual" 0 (List.length plan.Query.residual);
      Alcotest.(check bool) "uses the conjunction key" true
        (Bitkey.equal plan.Query.access_key
           (Keygen.key_of_conjunction Article.Title "Weather Iraklion" Article.Date
              "2004/03/14"))
  | None -> Alcotest.fail "expected a plan"

let test_query_plan_falls_back_to_single () =
  (* size AND language has no conjunction spec and no single spec
     either; author AND language covers author only. *)
  let q = Query.conj [ (Article.Author, "X"); (Article.Language, "en") ] in
  match Query.best_plan q with
  | Some plan ->
      Alcotest.(check int) "covers one" 1 (List.length plan.Query.covers);
      Alcotest.(check int) "one residual" 1 (List.length plan.Query.residual)
  | None -> Alcotest.fail "expected a single-key plan"

let test_query_plan_selectivity_order () =
  (* location AND category: both have single specs, no conjunction
     spec for the pair with these defaults... (location,date) and
     (category,date) exist but date is absent.  Location is ranked more
     selective than category. *)
  let q = Query.conj [ (Article.Category, "weather"); (Article.Location, "Oslo") ] in
  match Query.best_plan q with
  | Some plan -> (
      match plan.Query.covers with
      | [ p ] -> Alcotest.(check string) "picks location" "location"
                   (Article.element_name p.Query.element)
      | _ -> Alcotest.fail "expected single cover")
  | None -> Alcotest.fail "expected a plan"

let test_query_no_plan_for_unindexed () =
  let q = Query.conj [ (Article.Language, "en") ] in
  Alcotest.(check bool) "language alone has no access path" true
    (Query.best_plan q = None);
  Alcotest.(check bool) "empty query has no plan" true (Query.best_plan (Query.conj []) = None)

let test_query_execute_verifies_residual () =
  let a = sample_article () in
  let lookup key =
    (* A toy index: answers only the author key, with our article. *)
    if Bitkey.equal key (Keygen.key_of_query Article.Author "Crete Weather Service") then
      Some a
    else None
  in
  (* Residual passes: size matches the article. *)
  let q_ok =
    Query.conj [ (Article.Author, "Crete Weather Service"); (Article.Size, "2405") ]
  in
  (match Query.execute ~lookup q_ok with
  | Some (Some found, plan) ->
      Alcotest.(check int) "article found" a.Article.id found.Article.id;
      Alcotest.(check bool) "had residual work" true (List.length plan.Query.residual = 1)
  | Some (None, _) -> Alcotest.fail "residual should have passed"
  | None -> Alcotest.fail "expected a plan");
  (* Residual fails: wrong size. *)
  let q_bad =
    Query.conj [ (Article.Author, "Crete Weather Service"); (Article.Size, "1") ]
  in
  match Query.execute ~lookup q_bad with
  | Some (None, _) -> ()
  | Some (Some _, _) -> Alcotest.fail "residual must eliminate the article"
  | None -> Alcotest.fail "expected a plan"

let test_query_plans_ordering () =
  let q =
    Query.conj
      [ (Article.Title, "t"); (Article.Date, "d"); (Article.Category, "c") ]
  in
  let plans = Query.plans q in
  Alcotest.(check bool) "several plans" true (List.length plans >= 3);
  (* Residual counts are non-decreasing down the plan list. *)
  let residuals = List.map (fun p -> List.length p.Query.residual) plans in
  Alcotest.(check (list int)) "sorted by residual size"
    (List.sort compare residuals) residuals

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"tokenize emits no stop words" ~count:300 string
      (fun s -> List.for_all (fun t -> not (Stopwords.is_stop_word t)) (Stopwords.tokenize s));
    Test.make ~name:"tokenize emits lowercase alphanumerics" ~count:300 string
      (fun s ->
        List.for_all
          (fun t ->
            String.length t > 0
            && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) t)
          (Stopwords.tokenize s));
    Test.make ~name:"corpus keys always exactly the budget" ~count:30
      (pair (int_range 1 30) (int_range 1 40))
      (fun (articles, budget) ->
        let rng = Pdht_util.Rng.create ~seed:(articles * 100 + budget) in
        let c = Corpus.generate rng ~articles ~keys_per_article:budget ~start_time:0. () in
        let ok = ref true in
        for id = 0 to articles - 1 do
          if Array.length (Corpus.keys_of c id) <> budget then ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "pdht_meta"
    [
      ( "article",
        [
          Alcotest.test_case "fields" `Quick test_article_fields;
          Alcotest.test_case "validation" `Quick test_article_validation;
          Alcotest.test_case "element names distinct" `Quick test_article_element_names_distinct;
        ] );
      ( "stopwords",
        [
          Alcotest.test_case "membership" `Quick test_stopwords_membership;
          Alcotest.test_case "filter" `Quick test_stopwords_filter;
          Alcotest.test_case "tokenize" `Quick test_tokenize;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "single" `Quick test_keygen_single;
          Alcotest.test_case "conjunction symmetric" `Quick test_keygen_conjunction_symmetric;
          Alcotest.test_case "terms skip stopwords" `Quick test_keygen_term_excludes_stopwords;
          Alcotest.test_case "query matches article key" `Quick test_keygen_query_key_matches_article_key;
          Alcotest.test_case "no duplicates" `Quick test_keygen_no_duplicates;
          Alcotest.test_case "deterministic" `Quick test_keygen_deterministic;
        ] );
      ( "query",
        [
          Alcotest.test_case "matches" `Quick test_query_matches;
          Alcotest.test_case "conj validation" `Quick test_query_conj_validation;
          Alcotest.test_case "prefers conjunction key" `Quick test_query_plan_prefers_conjunction_key;
          Alcotest.test_case "falls back to single" `Quick test_query_plan_falls_back_to_single;
          Alcotest.test_case "selectivity order" `Quick test_query_plan_selectivity_order;
          Alcotest.test_case "no plan for unindexed" `Quick test_query_no_plan_for_unindexed;
          Alcotest.test_case "execute verifies residual" `Quick test_query_execute_verifies_residual;
          Alcotest.test_case "plans ordering" `Quick test_query_plans_ordering;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "generation" `Quick test_corpus_generation;
          Alcotest.test_case "key lookup" `Quick test_corpus_key_lookup;
          Alcotest.test_case "replace" `Quick test_corpus_replace;
          Alcotest.test_case "custom key budget" `Quick test_corpus_custom_key_budget;
          Alcotest.test_case "determinism" `Quick test_corpus_determinism;
          Alcotest.test_case "validation" `Quick test_corpus_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
