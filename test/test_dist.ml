(* Tests for Pdht_dist: Zipf distribution (paper Eq. 3-4), generic
   discrete distributions and time-varying popularity. *)

module Rng = Pdht_util.Rng
module Zipf = Pdht_dist.Zipf
module Discrete = Pdht_dist.Discrete
module Shift = Pdht_dist.Popularity_shift
module Session = Pdht_dist.Session

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose msg = Alcotest.(check (float 0.02)) msg

(* ------------------------------------------------------------------ *)
(* Zipf *)

let test_zipf_probs_sum_to_one () =
  let z = Zipf.create ~n:1000 ~alpha:1.2 in
  let total = ref 0. in
  for r = 1 to 1000 do
    total := !total +. Zipf.prob z r
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1. !total

let test_zipf_monotone_decreasing () =
  let z = Zipf.create ~n:100 ~alpha:0.8 in
  for r = 1 to 99 do
    Alcotest.(check bool) "decreasing" true (Zipf.prob z r >= Zipf.prob z (r + 1))
  done

let test_zipf_eq3_exact () =
  (* Eq. 3 checked by hand for n = 3, alpha = 1: probs 1/H, (1/2)/H,
     (1/3)/H with H = 11/6. *)
  let z = Zipf.create ~n:3 ~alpha:1. in
  let h = 11. /. 6. in
  check_float "rank 1" (1. /. h) (Zipf.prob z 1);
  check_float "rank 2" (0.5 /. h) (Zipf.prob z 2);
  check_float "rank 3" (1. /. 3. /. h) (Zipf.prob z 3)

let test_zipf_alpha_zero_uniform () =
  let z = Zipf.create ~n:10 ~alpha:0. in
  for r = 1 to 10 do
    check_float "uniform" 0.1 (Zipf.prob z r)
  done

let test_zipf_cumulative () =
  let z = Zipf.create ~n:50 ~alpha:1.2 in
  check_float "cum 0" 0. (Zipf.cumulative z 0);
  Alcotest.(check (float 1e-9)) "cum n" 1. (Zipf.cumulative z 50);
  check_float "cum 1 = prob 1" (Zipf.prob z 1) (Zipf.cumulative z 1);
  Alcotest.(check bool) "monotone" true (Zipf.cumulative z 10 < Zipf.cumulative z 20);
  check_float "mass_of_top alias" (Zipf.cumulative z 7) (Zipf.mass_of_top z 7)

let test_zipf_sampler_frequencies () =
  let z = Zipf.create ~n:5 ~alpha:1.0 in
  let rng = Rng.create ~seed:50 in
  let counts = Array.make 5 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  for r = 1 to 5 do
    check_float_loose
      (Printf.sprintf "rank %d frequency" r)
      (Zipf.prob z r)
      (float_of_int counts.(r - 1) /. float_of_int n)
  done

let test_zipf_eq4_limits () =
  let z = Zipf.create ~n:100 ~alpha:1.2 in
  check_float "zero trials" 0. (Zipf.expected_hit_prob_at_least_once z ~rank:1 ~trials:0.);
  let p = Zipf.expected_hit_prob_at_least_once z ~rank:1 ~trials:1. in
  Alcotest.(check (float 1e-12)) "one trial = prob" (Zipf.prob z 1) p;
  let many = Zipf.expected_hit_prob_at_least_once z ~rank:1 ~trials:1e6 in
  Alcotest.(check (float 1e-9)) "many trials -> 1" 1. many

let test_zipf_eq4_monotone_in_rank () =
  let z = Zipf.create ~n:1000 ~alpha:1.2 in
  let prev = ref 2. in
  for r = 1 to 1000 do
    let p = Zipf.expected_hit_prob_at_least_once z ~rank:r ~trials:666. in
    Alcotest.(check bool) "decreasing in rank" true (p <= !prev +. 1e-12);
    prev := p
  done

let test_zipf_eq4_matches_naive () =
  (* Against the naive formula where it is numerically safe. *)
  let z = Zipf.create ~n:10 ~alpha:1.0 in
  let naive rank trials = 1. -. ((1. -. Zipf.prob z rank) ** trials) in
  for rank = 1 to 10 do
    Alcotest.(check (float 1e-9)) "matches naive" (naive rank 20.)
      (Zipf.expected_hit_prob_at_least_once z ~rank ~trials:20.)
  done

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be >= 1")
    (fun () -> ignore (Zipf.create ~n:0 ~alpha:1.));
  let z = Zipf.create ~n:5 ~alpha:1. in
  Alcotest.check_raises "rank 0" (Invalid_argument "Zipf.prob: rank out of range")
    (fun () -> ignore (Zipf.prob z 0));
  Alcotest.check_raises "rank > n" (Invalid_argument "Zipf.prob: rank out of range")
    (fun () -> ignore (Zipf.prob z 6))

(* ------------------------------------------------------------------ *)
(* Discrete *)

let test_discrete_uniform () =
  let d = Discrete.uniform ~n:4 in
  for r = 1 to 4 do
    check_float "uniform prob" 0.25 (Discrete.prob d r)
  done;
  check_float "entropy of uniform 4" 2. (Discrete.entropy_bits d)

let test_discrete_zipf_matches_zipf_module () =
  let d = Discrete.zipf ~n:100 ~alpha:1.2 in
  let z = Zipf.create ~n:100 ~alpha:1.2 in
  for r = 1 to 100 do
    Alcotest.(check (float 1e-12)) "same prob" (Zipf.prob z r) (Discrete.prob d r)
  done

let test_discrete_hot_cold () =
  let d = Discrete.hot_cold ~n:100 ~hot:10 ~hot_mass:0.9 in
  check_float "hot mass" 0.9 (Discrete.cumulative d 10);
  Alcotest.(check (float 1e-9)) "total mass" 1. (Discrete.cumulative d 100);
  check_float "hot rank prob" 0.09 (Discrete.prob d 1);
  check_float "cold rank prob" (0.1 /. 90.) (Discrete.prob d 50)

let test_discrete_hot_cold_validation () =
  Alcotest.check_raises "hot >= n"
    (Invalid_argument "Discrete.hot_cold: need 1 <= hot < n") (fun () ->
      ignore (Discrete.hot_cold ~n:5 ~hot:5 ~hot_mass:0.5))

let test_discrete_sample_range () =
  let d = Discrete.hot_cold ~n:20 ~hot:3 ~hot_mass:0.8 in
  let rng = Rng.create ~seed:60 in
  let hot_hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Discrete.sample d rng in
    Alcotest.(check bool) "in range" true (r >= 1 && r <= 20);
    if r <= 3 then incr hot_hits
  done;
  check_float_loose "hot fraction" 0.8 (float_of_int !hot_hits /. float_of_int n)

let test_discrete_entropy_ordering () =
  (* More skew, less entropy. *)
  let uniform = Discrete.uniform ~n:100 in
  let skewed = Discrete.zipf ~n:100 ~alpha:1.5 in
  Alcotest.(check bool) "skew lowers entropy" true
    (Discrete.entropy_bits skewed < Discrete.entropy_bits uniform)

(* ------------------------------------------------------------------ *)
(* Popularity shift *)

let test_shift_static_identity () =
  let s = Shift.static ~n:10 in
  for r = 1 to 10 do
    Alcotest.(check int) "identity" (r - 1) (Shift.key_of_rank s ~time:123. r);
    Alcotest.(check int) "inverse" r (Shift.rank_of_key s ~time:123. (r - 1))
  done

let test_shift_rotate_before_after () =
  let s = Shift.rotate_at ~n:10 ~shift_times:[ 100. ] ~offset:3 in
  Alcotest.(check int) "before shift" 0 (Shift.key_of_rank s ~time:50. 1);
  Alcotest.(check int) "after shift" 3 (Shift.key_of_rank s ~time:150. 1);
  Alcotest.(check int) "wraps" 2 (Shift.key_of_rank s ~time:150. 10)

let test_shift_rotate_cumulative () =
  let s = Shift.rotate_at ~n:10 ~shift_times:[ 100.; 200. ] ~offset:3 in
  Alcotest.(check int) "two shifts compose" 6 (Shift.key_of_rank s ~time:250. 1)

let test_shift_swap_halves () =
  let s = Shift.swap_halves_at ~n:10 ~time:500. in
  Alcotest.(check int) "before: identity" 0 (Shift.key_of_rank s ~time:0. 1);
  let top_key_after = Shift.key_of_rank s ~time:600. 1 in
  Alcotest.(check bool) "top rank maps into former cold half" true (top_key_after >= 5);
  (* The former hottest key is now unpopular. *)
  Alcotest.(check bool) "old hot key demoted" true (Shift.rank_of_key s ~time:600. 0 > 5)

let test_shift_inverse_property () =
  let shifts =
    [
      Shift.static ~n:17;
      Shift.rotate_at ~n:17 ~shift_times:[ 10.; 20.; 30. ] ~offset:5;
      Shift.swap_halves_at ~n:17 ~time:15.;
    ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun time ->
          for r = 1 to 17 do
            let k = Shift.key_of_rank s ~time r in
            Alcotest.(check int) "rank_of_key inverts key_of_rank" r
              (Shift.rank_of_key s ~time k)
          done)
        [ 0.; 12.; 25.; 100. ])
    shifts

let test_shift_permutation_property () =
  (* At any instant the mapping must be a bijection on keys. *)
  let s = Shift.swap_halves_at ~n:11 ~time:5. in
  List.iter
    (fun time ->
      let seen = Hashtbl.create 11 in
      for r = 1 to 11 do
        let k = Shift.key_of_rank s ~time r in
        Alcotest.(check bool) "no duplicate key" false (Hashtbl.mem seen k);
        Hashtbl.replace seen k ()
      done)
    [ 0.; 10. ]

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_parse_defaults () =
  match Session.of_string "exp" with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
      Alcotest.(check bool) "exp legs" true (Session.is_exponential spec);
      check_float "default up" 600. spec.Session.mean_uptime;
      check_float "default down" 400. spec.Session.mean_downtime;
      check_float "default on = stationary availability" 0.6
        spec.Session.initially_online_fraction;
      check_float "availability helper agrees" 0.6 (Session.availability spec)

let test_session_parse_fields () =
  (match Session.of_string "weibull:up=600:down=200:shape=0.6:on=0.5" with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
      (match (spec.Session.up, spec.Session.down) with
      | Session.Weibull { shape = s1 }, Session.Weibull { shape = s2 } ->
          check_float "up shape" 0.6 s1;
          check_float "down shape" 0.6 s2
      | _ -> Alcotest.fail "expected Weibull legs");
      check_float "up" 600. spec.Session.mean_uptime;
      check_float "down" 200. spec.Session.mean_downtime;
      check_float "on" 0.5 spec.Session.initially_online_fraction;
      Alcotest.(check bool) "not exponential" false (Session.is_exponential spec));
  match Session.of_string "lognormal:sigma=2" with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> (
      match spec.Session.up with
      | Session.Lognormal { sigma } -> check_float "sigma" 2. sigma
      | _ -> Alcotest.fail "expected a lognormal up leg")

let test_session_roundtrip () =
  List.iter
    (fun s ->
      match Session.of_string s with
      | Error msg -> Alcotest.failf "%s rejected: %s" s msg
      | Ok spec -> (
          match Session.of_string (Session.to_string spec) with
          | Error msg -> Alcotest.failf "%s reparse rejected: %s" s msg
          | Ok spec' ->
              Alcotest.(check bool) (s ^ " round-trips") true (spec = spec')))
    [
      "exp";
      "exp:up=600:down=200";
      "lognormal:up=300:down=100:sigma=2:on=0.9";
      "weibull:up=600:down=200:shape=0.6";
      "pareto:up=1000:down=500:shape=1.5:on=0.4";
    ]

let test_session_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (Result.is_error (Session.of_string s)))
    [
      "";
      "bogus";
      "bogus:up=1";
      "exp:up=0";
      "exp:down=-3";
      "exp:on=1.5";
      "exp:nonsense=2";
      "weibull:shape=0";
      "pareto:shape=1";   (* infinite mean *)
      "lognormal:sigma=0";
      "exp:up=";
    ]

let test_session_draw_means () =
  (* Every distribution is re-anchored on the requested mean; the
     sample mean must land near it.  (Pareto uses shape 3 here — the
     default 1.5 has infinite variance, so its sample mean converges
     too slowly for a fixed-seed tolerance check.) *)
  let n = 100_000 in
  List.iter
    (fun (label, dist, tol) ->
      let rng = Rng.create ~seed:90 in
      let total = ref 0. in
      for _ = 1 to n do
        let d = Session.draw rng dist ~mean:50. in
        Alcotest.(check bool) (label ^ " draws positive") true (d > 0.);
        total := !total +. d
      done;
      Alcotest.(check (float tol)) (label ^ " mean") 50.
        (!total /. float_of_int n))
    [
      ("exp", Session.Exponential, 1.);
      ("lognormal", Session.Lognormal { sigma = 1.5 }, 3.);
      ("weibull", Session.Weibull { shape = 0.6 }, 1.);
      ("pareto", Session.Pareto { shape = 3. }, 1.);
    ]

let test_session_heavy_tail_shape () =
  (* Weibull k < 1 versus exponential at the same mean: more mass in
     short sessions AND a fatter far tail — the signature that makes
     churn-hardened routing interesting. *)
  let n = 50_000 in
  let count_below ~dist ~cut =
    let rng = Rng.create ~seed:91 in
    let c = ref 0 in
    for _ = 1 to n do
      if Session.draw rng dist ~mean:100. < cut then incr c
    done;
    float_of_int !c /. float_of_int n
  in
  let weib = Session.Weibull { shape = 0.6 } in
  Alcotest.(check bool) "more short sessions than exponential" true
    (count_below ~dist:weib ~cut:20.
    > count_below ~dist:Session.Exponential ~cut:20.);
  Alcotest.(check bool) "fatter far tail than exponential" true
    (1. -. count_below ~dist:weib ~cut:500.
    > 1. -. count_below ~dist:Session.Exponential ~cut:500.)

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"zipf cumulative monotone" ~count:100
      (pair (int_range 1 500) (float_range 0. 2.))
      (fun (n, alpha) ->
        let z = Zipf.create ~n ~alpha in
        let ok = ref true in
        for r = 1 to n do
          if Zipf.cumulative z r < Zipf.cumulative z (r - 1) then ok := false
        done;
        !ok);
    Test.make ~name:"zipf sample in range" ~count:200
      (pair (int_range 1 100) small_int)
      (fun (n, seed) ->
        let z = Zipf.create ~n ~alpha:1.2 in
        let rng = Rng.create ~seed in
        let r = Zipf.sample z rng in
        r >= 1 && r <= n);
    Test.make ~name:"rotate preserves bijection" ~count:100
      (triple (int_range 2 50) (int_range 0 100) (float_range 0. 1000.))
      (fun (n, offset, time) ->
        let s = Shift.rotate_at ~n ~shift_times:[ 100.; 300. ] ~offset in
        let seen = Hashtbl.create n in
        let ok = ref true in
        for r = 1 to n do
          let k = Shift.key_of_rank s ~time r in
          if Hashtbl.mem seen k then ok := false;
          Hashtbl.replace seen k ()
        done;
        !ok && Hashtbl.length seen = n);
    Test.make ~name:"eq4 probability in [0,1]" ~count:300
      (triple (int_range 1 200) (int_range 1 200) (float_range 0. 1e5))
      (fun (n, rank, trials) ->
        let rank = min rank n in
        let z = Zipf.create ~n ~alpha:1.2 in
        let p = Zipf.expected_hit_prob_at_least_once z ~rank ~trials in
        p >= 0. && p <= 1.);
  ]

let () =
  Alcotest.run "pdht_dist"
    [
      ( "zipf",
        [
          Alcotest.test_case "probs sum to 1" `Quick test_zipf_probs_sum_to_one;
          Alcotest.test_case "monotone decreasing" `Quick test_zipf_monotone_decreasing;
          Alcotest.test_case "Eq. 3 exact" `Quick test_zipf_eq3_exact;
          Alcotest.test_case "alpha 0 uniform" `Quick test_zipf_alpha_zero_uniform;
          Alcotest.test_case "cumulative" `Quick test_zipf_cumulative;
          Alcotest.test_case "sampler frequencies" `Quick test_zipf_sampler_frequencies;
          Alcotest.test_case "Eq. 4 limits" `Quick test_zipf_eq4_limits;
          Alcotest.test_case "Eq. 4 monotone" `Quick test_zipf_eq4_monotone_in_rank;
          Alcotest.test_case "Eq. 4 matches naive" `Quick test_zipf_eq4_matches_naive;
          Alcotest.test_case "rejects bad args" `Quick test_zipf_rejects_bad_args;
        ] );
      ( "discrete",
        [
          Alcotest.test_case "uniform" `Quick test_discrete_uniform;
          Alcotest.test_case "zipf variant consistent" `Quick test_discrete_zipf_matches_zipf_module;
          Alcotest.test_case "hot-cold masses" `Quick test_discrete_hot_cold;
          Alcotest.test_case "hot-cold validation" `Quick test_discrete_hot_cold_validation;
          Alcotest.test_case "sampling" `Quick test_discrete_sample_range;
          Alcotest.test_case "entropy ordering" `Quick test_discrete_entropy_ordering;
        ] );
      ( "popularity-shift",
        [
          Alcotest.test_case "static identity" `Quick test_shift_static_identity;
          Alcotest.test_case "rotate before/after" `Quick test_shift_rotate_before_after;
          Alcotest.test_case "rotate cumulative" `Quick test_shift_rotate_cumulative;
          Alcotest.test_case "swap halves" `Quick test_shift_swap_halves;
          Alcotest.test_case "inverse property" `Quick test_shift_inverse_property;
          Alcotest.test_case "permutation property" `Quick test_shift_permutation_property;
        ] );
      ( "session",
        [
          Alcotest.test_case "parse defaults" `Quick test_session_parse_defaults;
          Alcotest.test_case "parse fields" `Quick test_session_parse_fields;
          Alcotest.test_case "round-trip" `Quick test_session_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_session_rejects_garbage;
          Alcotest.test_case "draw means" `Quick test_session_draw_means;
          Alcotest.test_case "heavy-tail shape" `Quick test_session_heavy_tail_shape;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
