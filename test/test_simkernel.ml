(* Tests for Pdht_sim: event queue, engine, metrics, trace. *)

module Event_queue = Pdht_sim.Event_queue
module Engine = Pdht_sim.Engine
module Metrics = Pdht_sim.Metrics
module Trace = Pdht_sim.Trace

(* ------------------------------------------------------------------ *)
(* Event queue *)

let test_queue_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "size 0" 0 (Event_queue.size q);
  Alcotest.(check (option (pair (float 0.) int))) "pop none" None (Event_queue.pop q);
  Alcotest.(check (option (float 0.))) "peek none" None (Event_queue.peek_time q)

let test_queue_orders_by_time () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.add q ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let order = List.init 4 (fun _ -> match Event_queue.pop q with
    | Some (_, v) -> v
    | None -> "?") in
  Alcotest.(check (list string)) "sorted" [ "z"; "a"; "b"; "c" ] order

let test_queue_fifo_on_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.add q ~time:5. i
  done;
  let order = List.init 10 (fun _ -> match Event_queue.pop q with
    | Some (_, v) -> v
    | None -> -1) in
  Alcotest.(check (list int)) "insertion order on equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let test_queue_interleaved_ops () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:10. 10;
  Event_queue.add q ~time:5. 5;
  (match Event_queue.pop q with
  | Some (t, v) ->
      Alcotest.(check (float 0.)) "time" 5. t;
      Alcotest.(check int) "value" 5 v
  | None -> Alcotest.fail "expected event");
  Event_queue.add q ~time:1. 1;
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check int) "later add can come first" 1 v
  | None -> Alcotest.fail "expected event");
  Alcotest.(check int) "one left" 1 (Event_queue.size q)

let test_queue_many_random () =
  let rng = Pdht_util.Rng.create ~seed:70 in
  let q = Event_queue.create () in
  let times = Array.init 5000 (fun _ -> Pdht_util.Rng.float rng 1000.) in
  Array.iteri (fun i t -> Event_queue.add q ~time:t i) times;
  Alcotest.(check int) "size" 5000 (Event_queue.size q);
  let prev = ref neg_infinity in
  for _ = 1 to 5000 do
    match Event_queue.pop q with
    | Some (t, _) ->
        Alcotest.(check bool) "non-decreasing" true (t >= !prev);
        prev := t
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_queue_rejects_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: NaN time")
    (fun () -> Event_queue.add q ~time:Float.nan 0)

let test_queue_clear () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:1. 1;
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_queue_clear_keeps_capacity () =
  let q = Event_queue.create () in
  for i = 1 to 1000 do
    Event_queue.add q ~time:(float_of_int i) i
  done;
  let warm = Event_queue.capacity q in
  Alcotest.(check bool) "grew" true (warm >= 1000);
  Event_queue.clear q;
  Alcotest.(check bool) "empty after clear" true (Event_queue.is_empty q);
  Alcotest.(check int) "capacity retained" warm (Event_queue.capacity q);
  (* Refilling a cleared queue must not grow the backing arrays again. *)
  for i = 1 to 1000 do
    Event_queue.add q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "no regrowth on refill" warm (Event_queue.capacity q)

let test_queue_hot_path_raises_on_empty () =
  let q = Event_queue.create () in
  Alcotest.check_raises "min_time" (Invalid_argument "Event_queue.min_time: empty queue")
    (fun () -> ignore (Event_queue.min_time (q : int Event_queue.t)));
  Alcotest.check_raises "pop_min" (Invalid_argument "Event_queue.pop_min: empty queue")
    (fun () -> ignore (Event_queue.pop_min q));
  (* And again after a fill/drain cycle, not just on a fresh queue. *)
  Event_queue.add q ~time:1. 1;
  ignore (Event_queue.pop_min q);
  Alcotest.check_raises "pop_min after drain" (Invalid_argument "Event_queue.pop_min: empty queue")
    (fun () -> ignore (Event_queue.pop_min q))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_runs_in_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine ~delay:2. (fun _ -> log := 2 :: !log);
  Engine.schedule engine ~delay:1. (fun _ -> log := 1 :: !log);
  Engine.schedule engine ~delay:3. (fun _ -> log := 3 :: !log);
  Engine.run engine ~until:10.;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_until_cutoff () =
  let engine = Engine.create () in
  let fired = ref 0 in
  Engine.schedule engine ~delay:1. (fun _ -> incr fired);
  Engine.schedule engine ~delay:5. (fun _ -> incr fired);
  Engine.run engine ~until:2.;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int) "one pending" 1 (Engine.pending engine);
  Engine.run engine ~until:10.;
  Alcotest.(check int) "second fires on resume" 2 !fired

let test_engine_now_advances () =
  let engine = Engine.create () in
  let seen = ref [] in
  Engine.schedule engine ~delay:1.5 (fun e -> seen := Engine.now e :: !seen);
  Engine.schedule engine ~delay:4. (fun e -> seen := Engine.now e :: !seen);
  Engine.run engine ~until:10.;
  Alcotest.(check (list (float 1e-9))) "handler sees its own time" [ 1.5; 4. ]
    (List.rev !seen)

let test_engine_handlers_can_schedule () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain e =
    incr count;
    if !count < 5 then Engine.schedule e ~delay:1. chain
  in
  Engine.schedule engine ~delay:1. chain;
  Engine.run engine ~until:100.;
  Alcotest.(check int) "chain of 5" 5 !count

let test_engine_periodic () =
  let engine = Engine.create () in
  let fired = ref 0 in
  Engine.schedule_periodic engine ~first:10. ~every:10. (fun _ -> incr fired);
  Engine.run engine ~until:55.;
  Alcotest.(check int) "five ticks in 55s" 5 !fired

let test_engine_periodic_no_drift () =
  (* Tick times must be [first + k * every] exactly, not an accumulated
     [+. every] per tick: with every = 0.1 the accumulated sum drifts by
     ~1e-9 per million ticks, eventually losing or gaining a tick
     against any fixed horizon.  0.1 is not representable in binary, so
     this is the adversarial period. *)
  let engine = Engine.create () in
  let fired = ref 0 in
  let worst = ref 0. in
  Engine.schedule_periodic engine ~first:0.1 ~every:0.1 (fun e ->
      incr fired;
      let expected = float_of_int !fired *. 0.1 in
      worst := Float.max !worst (Float.abs (Engine.now e -. expected)));
  Engine.run engine ~until:100_000.;
  (* 100_000 / 0.1 = exactly 1_000_000 ticks (the tick at t = 100_000
     itself is beyond [until], which is exclusive at equal time only if
     scheduled after the cutoff check — count both acceptable values
     out: the grid guarantees the k-th tick lands on k * 0.1 up to one
     representation error, never an accumulated one). *)
  Alcotest.(check bool) "one million ticks" true (!fired >= 999_999 && !fired <= 1_000_000);
  Alcotest.(check bool)
    (Printf.sprintf "worst grid deviation %.3e is representation-level" !worst)
    true
    (!worst < 1e-7)

let test_engine_rejects_negative_delay () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule engine ~delay:(-1.) (fun _ -> ()))

let test_engine_schedule_at_past_rejected () =
  let engine = Engine.create () in
  Engine.schedule engine ~delay:5. (fun e ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
        (fun () -> Engine.schedule_at e ~time:1. (fun _ -> ())));
  Engine.run engine ~until:10.

let test_engine_handler_failure_context () =
  (* A raising handler escapes [run] as [Handler_failed] carrying the
     simulated time and, when wrapped with [labelled], the handler's
     tag — so a crash deep in a long run is attributable without a
     debugger. *)
  let engine = Engine.create () in
  Engine.schedule_at engine ~time:3.5
    (Engine.labelled "test:boom" (fun _ -> failwith "boom"));
  (try
     Engine.run engine ~until:10.;
     Alcotest.fail "expected Handler_failed"
   with Engine.Handler_failed { time; label; exn } ->
     Alcotest.(check (float 0.)) "time" 3.5 time;
     Alcotest.(check string) "label" "test:boom" label;
     Alcotest.(check bool) "original exn" true (exn = Failure "boom"));
  (* Unlabelled handlers still get the time, under the generic tag. *)
  let engine = Engine.create () in
  Engine.schedule_at engine ~time:1.25 (fun _ -> failwith "anon");
  (try
     Engine.run engine ~until:10.;
     Alcotest.fail "expected Handler_failed"
   with Engine.Handler_failed { time; label; _ } ->
     Alcotest.(check (float 0.)) "anon time" 1.25 time;
     Alcotest.(check string) "anon label" "event" label)

let test_engine_handler_failure_printer () =
  let message =
    try
      let engine = Engine.create () in
      Engine.schedule_at engine ~time:2.
        (Engine.labelled "fault:crash" (fun _ -> failwith "no survivors"));
      Engine.run engine ~until:10.;
      "no exception"
    with exn -> Printexc.to_string exn
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions label" true (contains message "fault:crash");
  Alcotest.(check bool) "mentions time" true (contains message "t=2");
  Alcotest.(check bool) "mentions cause" true (contains message "no survivors")

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_charge_and_count () =
  let m = Metrics.create () in
  Metrics.charge m Metrics.Query_index 5;
  Metrics.charge m Metrics.Query_index 3;
  Metrics.charge m Metrics.Maintenance 7;
  Alcotest.(check int) "query-index" 8 (Metrics.count m Metrics.Query_index);
  Alcotest.(check int) "maintenance" 7 (Metrics.count m Metrics.Maintenance);
  Alcotest.(check int) "untouched" 0 (Metrics.count m Metrics.Update_gossip);
  Alcotest.(check int) "total" 15 (Metrics.total m)

let test_metrics_rejects_negative () =
  let m = Metrics.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Metrics.charge: negative count")
    (fun () -> Metrics.charge m Metrics.Other (-1))

let test_metrics_snapshot_and_diff () =
  let m = Metrics.create () in
  Metrics.charge m Metrics.Query_unstructured 10;
  let before = Metrics.copy m in
  Metrics.charge m Metrics.Query_unstructured 4;
  Metrics.charge m Metrics.Replica_flood 2;
  let diff = Metrics.diff ~before ~after:m in
  Alcotest.(check int) "diff unstructured" 4
    (List.assoc Metrics.Query_unstructured diff);
  Alcotest.(check int) "diff flood" 2 (List.assoc Metrics.Replica_flood diff);
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "snapshot covers all categories"
    (List.length Metrics.all_categories) (List.length snap)

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.charge m Metrics.Other 9;
  Metrics.reset m;
  Alcotest.(check int) "zero after reset" 0 (Metrics.total m)

let test_metrics_labels_distinct () =
  let labels = List.map Metrics.category_label Metrics.all_categories in
  Alcotest.(check int) "distinct labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let test_metrics_series () =
  let s = Metrics.Series.create ~bucket_width:10. in
  Metrics.Series.charge s ~time:0.5 3;
  Metrics.Series.charge s ~time:5. 2;
  Metrics.Series.charge s ~time:25. 7;
  let buckets = Metrics.Series.buckets s in
  Alcotest.(check int) "three buckets (incl. empty middle)" 3 (Array.length buckets);
  let _, b0 = buckets.(0) and _, b1 = buckets.(1) and _, b2 = buckets.(2) in
  Alcotest.(check int) "bucket 0" 5 b0;
  Alcotest.(check int) "bucket 1 empty" 0 b1;
  Alcotest.(check int) "bucket 2" 7 b2

let test_metrics_series_rejects_bad () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Metrics.Series.create: width must be positive") (fun () ->
      ignore (Metrics.Series.create ~bucket_width:0.));
  let s = Metrics.Series.create ~bucket_width:1. in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Metrics.Series.charge: negative time") (fun () ->
      Metrics.Series.charge s ~time:(-1.) 1)

(* ------------------------------------------------------------------ *)
(* Trace *)

let gossip_event ~time detail =
  let module Event = Pdht_obs.Event in
  Event.make ~time ~detail Event.Gossip

let test_trace_disabled_by_default () =
  let tr = Trace.create () in
  Trace.record_event tr (gossip_event ~time:1. "ignored");
  Alcotest.(check int) "nothing recorded" 0 (Trace.length tr)

let test_trace_records_when_enabled () =
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.record_event tr (gossip_event ~time:1. "a");
  Trace.record_event tr (gossip_event ~time:2. "b2");
  Alcotest.(check int) "two events" 2 (Trace.length tr);
  Alcotest.(check (list (float 0.))) "oldest first" [ 1.; 2. ]
    (List.map fst (Trace.events tr))

let test_trace_capacity_trim () =
  let module Event = Pdht_obs.Event in
  let tr = Trace.create ~capacity:10 () in
  Trace.enable tr;
  for i = 1 to 100 do
    Trace.record_event tr (gossip_event ~time:(float_of_int i) (string_of_int i))
  done;
  Alcotest.(check bool) "bounded" true (Trace.length tr <= 10);
  let events = Trace.typed_events tr in
  let last = List.nth events (List.length events - 1) in
  Alcotest.(check string) "latest kept" "100" last.Event.detail

let test_trace_clear () =
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.record_event tr (gossip_event ~time:1. "x");
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let test_trace_record_event_typed () =
  let module Event = Pdht_obs.Event in
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.record_event tr
    (Event.make ~time:3. ~peer:4 ~key_index:9 ~hops:2 ~messages:5 ~span:1
       Event.Dht_lookup);
  (match Trace.typed_events tr with
  | [ typed ] ->
      Alcotest.(check bool) "typed category kept" true
        (typed.Event.category = Event.Dht_lookup);
      Alcotest.(check int) "span kept" 1 typed.Event.span
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  (* Typed events render via Event.to_line. *)
  match Trace.events tr with
  | [ (3., line) ] ->
      Alcotest.(check bool) "rendered line mentions category" true
        (String.length line > 0)
  | _ -> Alcotest.fail "rendered events shape"

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Model-based check of the SoA heap: drive the real queue and a naive
   reference (a sorted association list keyed by (time, insertion seq))
   through the same random Add/Pop/Clear script and demand identical
   observable behaviour at every step — pop results including FIFO
   tie-breaks, sizes, and min_time. *)
type queue_op = Op_add of float | Op_pop | Op_clear

let queue_op_gen =
  QCheck.Gen.(
    frequency
      [
        (* A coarse time grid so equal times (and hence tie-breaks) are
           actually exercised. *)
        (6, map (fun t -> Op_add (float_of_int t)) (int_bound 20));
        (3, return Op_pop);
        (1, return Op_clear);
      ])

let queue_op_print = function
  | Op_add t -> Printf.sprintf "Add %g" t
  | Op_pop -> "Pop"
  | Op_clear -> "Clear"

let queue_model_agrees ops =
  let q = Event_queue.create () in
  let model = ref [] (* (time, seq, payload), sorted by (time, seq) *) in
  let seq = ref 0 in
  List.for_all
    (fun op ->
      match op with
      | Op_add time ->
          Event_queue.add q ~time !seq;
          model :=
            List.merge
              (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
              !model
              [ (time, !seq, !seq) ];
          incr seq;
          Event_queue.size q = List.length !model
      | Op_pop -> (
          match (Event_queue.pop q, !model) with
          | None, [] -> true
          | Some (t, v), (mt, _, mv) :: rest ->
              model := rest;
              t = mt && v = mv
          | Some _, [] | None, _ :: _ -> false)
      | Op_clear ->
          Event_queue.clear q;
          model := [];
          Event_queue.is_empty q)
    ops
  && (* Drain whatever is left and compare the full tail. *)
  List.for_all
    (fun (mt, _, mv) ->
      (not (Event_queue.is_empty q))
      && Event_queue.min_time q = mt
      &&
      let v = Event_queue.pop_min q in
      v = mv)
    !model
  && Event_queue.is_empty q

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"heap agrees with sorted-list model (Add/Pop/Clear)" ~count:500
      (list_of_size Gen.(int_bound 60) (make ~print:queue_op_print queue_op_gen))
      queue_model_agrees;
    Test.make ~name:"event queue is a sorting network" ~count:100
      (small_list (float_bound_inclusive 1000.))
      (fun times ->
        let q = Event_queue.create () in
        List.iteri (fun i t -> Event_queue.add q ~time:t i) times;
        let popped = ref [] in
        let rec drain () =
          match Event_queue.pop q with
          | Some (t, _) ->
              popped := t :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        List.rev !popped = List.sort compare times);
    Test.make ~name:"engine fires everything before the horizon" ~count:100
      (small_list (float_range 0. 100.))
      (fun delays ->
        let engine = Engine.create () in
        let fired = ref 0 in
        List.iter (fun d -> Engine.schedule engine ~delay:d (fun _ -> incr fired)) delays;
        Engine.run engine ~until:100.;
        !fired = List.length delays);
  ]

let () =
  Alcotest.run "pdht_sim"
    [
      ( "event-queue",
        [
          Alcotest.test_case "empty" `Quick test_queue_empty;
          Alcotest.test_case "orders by time" `Quick test_queue_orders_by_time;
          Alcotest.test_case "FIFO on ties" `Quick test_queue_fifo_on_ties;
          Alcotest.test_case "interleaved ops" `Quick test_queue_interleaved_ops;
          Alcotest.test_case "many random events" `Quick test_queue_many_random;
          Alcotest.test_case "rejects NaN" `Quick test_queue_rejects_nan;
          Alcotest.test_case "clear" `Quick test_queue_clear;
          Alcotest.test_case "clear keeps capacity" `Quick test_queue_clear_keeps_capacity;
          Alcotest.test_case "hot path raises on empty" `Quick
            test_queue_hot_path_raises_on_empty;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "until cutoff + resume" `Quick test_engine_until_cutoff;
          Alcotest.test_case "now advances" `Quick test_engine_now_advances;
          Alcotest.test_case "handlers schedule" `Quick test_engine_handlers_can_schedule;
          Alcotest.test_case "periodic" `Quick test_engine_periodic;
          Alcotest.test_case "periodic long-horizon drift" `Quick
            test_engine_periodic_no_drift;
          Alcotest.test_case "rejects negative delay" `Quick test_engine_rejects_negative_delay;
          Alcotest.test_case "rejects past schedule_at" `Quick test_engine_schedule_at_past_rejected;
          Alcotest.test_case "handler failure context" `Quick
            test_engine_handler_failure_context;
          Alcotest.test_case "handler failure printer" `Quick
            test_engine_handler_failure_printer;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "charge and count" `Quick test_metrics_charge_and_count;
          Alcotest.test_case "rejects negative" `Quick test_metrics_rejects_negative;
          Alcotest.test_case "snapshot and diff" `Quick test_metrics_snapshot_and_diff;
          Alcotest.test_case "reset" `Quick test_metrics_reset;
          Alcotest.test_case "labels distinct" `Quick test_metrics_labels_distinct;
          Alcotest.test_case "series buckets" `Quick test_metrics_series;
          Alcotest.test_case "series validation" `Quick test_metrics_series_rejects_bad;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "records when enabled" `Quick test_trace_records_when_enabled;
          Alcotest.test_case "capacity trim" `Quick test_trace_capacity_trim;
          Alcotest.test_case "clear" `Quick test_trace_clear;
          Alcotest.test_case "record_event typed migration" `Quick
            test_trace_record_event_typed;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
