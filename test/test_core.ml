(* Tests for Pdht_core: strategies, config, the PDHT machine itself,
   the adaptive TTL controller and the system runner. *)

module Rng = Pdht_util.Rng
module Strategy = Pdht_core.Strategy
module Config = Pdht_core.Config
module Pdht = Pdht_core.Pdht
module Adaptive = Pdht_core.Adaptive
module System = Pdht_core.System
module Run_spec = Pdht_core.Run_spec
module Run_result = Pdht_core.Run_result
module Runner = Pdht_core.Runner
module Scenario = Pdht_work.Scenario
module Metrics = Pdht_sim.Metrics

let partial ttl = Strategy.Partial_index { key_ttl = ttl }

let small_config ?(strategy = partial 300.) ?(num_peers = 200) ?(active = 60)
    ?(keys = 300) ?(repl = 10) ?(stor = 60) () =
  Config.make ~num_peers ~active_members:active ~keys ~repl ~stor ~strategy ()

let build ?(seed = 1) ?strategy ?num_peers ?active ?keys ?repl ?stor () =
  let rng = Rng.create ~seed in
  (rng, Pdht.create rng (small_config ?strategy ?num_peers ?active ?keys ?repl ?stor ()))

(* ------------------------------------------------------------------ *)
(* Strategy / Config *)

let test_strategy_accessors () =
  Alcotest.(check bool) "partial" true (Strategy.is_partial (partial 10.));
  Alcotest.(check bool) "index_all not partial" false (Strategy.is_partial Strategy.Index_all);
  Alcotest.(check (option (float 1e-9))) "ttl" (Some 10.) (Strategy.key_ttl (partial 10.));
  Alcotest.(check (option (float 1e-9))) "no ttl" None (Strategy.key_ttl Strategy.No_index);
  Alcotest.(check string) "labels" "indexAll" (Strategy.label Strategy.Index_all);
  Alcotest.(check string) "noIndex" "noIndex" (Strategy.label Strategy.No_index);
  Alcotest.(check string) "partial" "partial" (Strategy.label (partial 1.))

let test_config_validation () =
  Alcotest.check_raises "active > peers"
    (Invalid_argument "Config.make: active_members must be in [2, num_peers]") (fun () ->
      ignore
        (Config.make ~num_peers:10 ~active_members:11 ~keys:5 ~repl:2 ~stor:5
           ~strategy:Strategy.No_index ()));
  Alcotest.check_raises "repl > peers"
    (Invalid_argument "Config.make: repl must be in [1, num_peers]") (fun () ->
      ignore
        (Config.make ~num_peers:10 ~active_members:5 ~keys:5 ~repl:20 ~stor:5
           ~strategy:Strategy.No_index ()))

let test_config_active_members_for () =
  (* Paper sizing: 40000 keys * 50 repl / 100 stor = 20000 peers. *)
  Alcotest.(check int) "paper headline" 20_000
    (Config.active_members_for ~num_peers:20_000 ~repl:50 ~stor:100
       ~expected_index_size:40_000.);
  Alcotest.(check int) "floors at repl" 50
    (Config.active_members_for ~num_peers:20_000 ~repl:50 ~stor:100 ~expected_index_size:1.)

(* ------------------------------------------------------------------ *)
(* Pdht: basic mechanics *)

let test_pdht_no_index_broadcasts () =
  let _, p = build ~strategy:Strategy.No_index () in
  (* Query from a peer that does not hold the key itself: a replica
     would answer locally with zero messages, which is correct but not
     the broadcast path this test exercises.  Replica placement is
     random, so pick the peer relative to the actual placement rather
     than hard-coding one. *)
  let replicas = Pdht.content_replicas p ~key_index:3 in
  let peer =
    let rec free p = if Array.exists (( = ) p) replicas then free (p + 1) else p in
    free 0
  in
  let r = Pdht.query p ~now:1. ~peer ~key_index:3 in
  Alcotest.(check bool) "answered by broadcast" true (r.Pdht.source = Pdht.From_broadcast);
  Alcotest.(check int) "no index traffic" 0 r.Pdht.index_messages;
  Alcotest.(check bool) "broadcast messages charged" true (r.Pdht.broadcast_messages > 0);
  Alcotest.(check int) "metrics agree" r.Pdht.broadcast_messages
    (Metrics.count (Pdht.metrics p) Metrics.Query_unstructured)

let test_pdht_index_all_serves_from_index () =
  let _, p = build ~strategy:Strategy.Index_all () in
  for k = 0 to 49 do
    let r = Pdht.query p ~now:1. ~peer:(k mod 200) ~key_index:k in
    Alcotest.(check bool) "from index" true (r.Pdht.source = Pdht.From_index);
    Alcotest.(check int) "no broadcast" 0 r.Pdht.broadcast_messages
  done

let test_pdht_index_all_preloaded () =
  let _, p = build ~strategy:Strategy.Index_all () in
  Alcotest.(check int) "all keys indexed" 300 (Pdht.indexed_key_count p ~now:0.)

let test_pdht_partial_starts_empty () =
  let _, p = build () in
  Alcotest.(check int) "empty index" 0 (Pdht.indexed_key_count p ~now:0.)

let test_pdht_partial_miss_then_hit () =
  let _, p = build () in
  (* First query: miss -> broadcast -> insert. *)
  let r1 = Pdht.query p ~now:1. ~peer:7 ~key_index:42 in
  Alcotest.(check bool) "first from broadcast" true (r1.Pdht.source = Pdht.From_broadcast);
  Alcotest.(check bool) "insert traffic" true (r1.Pdht.insert_messages > 0);
  Alcotest.(check bool) "now indexed" true (Pdht.index_hit_probe p ~now:2. ~key_index:42);
  (* Second query: index hit, no broadcast. *)
  let r2 = Pdht.query p ~now:3. ~peer:8 ~key_index:42 in
  Alcotest.(check bool) "second from index" true (r2.Pdht.source = Pdht.From_index);
  Alcotest.(check int) "no broadcast" 0 r2.Pdht.broadcast_messages

let test_pdht_partial_key_expires () =
  let _, p = build () in
  ignore (Pdht.query p ~now:1. ~peer:7 ~key_index:9);
  Alcotest.(check bool) "indexed" true (Pdht.index_hit_probe p ~now:100. ~key_index:9);
  (* After keyTtl = 300 s with no queries the key is gone. *)
  Alcotest.(check bool) "expired" false (Pdht.index_hit_probe p ~now:302. ~key_index:9)

let test_pdht_query_refreshes_ttl () =
  let _, p = build () in
  ignore (Pdht.query p ~now:1. ~peer:7 ~key_index:9);
  (* Query again at t=200: expiry moves to 500. *)
  ignore (Pdht.query p ~now:200. ~peer:8 ~key_index:9);
  Alcotest.(check bool) "alive past original expiry" true
    (Pdht.index_hit_probe p ~now:400. ~key_index:9);
  Alcotest.(check bool) "gone after refreshed ttl" false
    (Pdht.index_hit_probe p ~now:501. ~key_index:9)

let test_pdht_offline_peer_cannot_query () =
  let _, p = build () in
  Pdht.set_online p (fun peer -> peer <> 7);
  let r = Pdht.query p ~now:1. ~peer:7 ~key_index:0 in
  Alcotest.(check bool) "not found" true (r.Pdht.source = Pdht.Not_found);
  Alcotest.(check int) "free" 0 (Pdht.total_messages r)

let test_pdht_query_result_totals () =
  let _, p = build () in
  let r = Pdht.query p ~now:1. ~peer:3 ~key_index:5 in
  Alcotest.(check int) "total = sum of parts"
    (r.Pdht.index_messages + r.Pdht.replica_flood_messages + r.Pdht.broadcast_messages
   + r.Pdht.insert_messages)
    (Pdht.total_messages r);
  Alcotest.(check int) "metrics total matches" (Pdht.total_messages r)
    (Metrics.total (Pdht.metrics p))

let test_pdht_set_key_ttl () =
  let _, p = build () in
  Pdht.set_key_ttl p 50.;
  Alcotest.(check (float 1e-9)) "ttl updated" 50. (Pdht.key_ttl p);
  ignore (Pdht.query p ~now:1. ~peer:2 ~key_index:1);
  Alcotest.(check bool) "expires with new ttl" false
    (Pdht.index_hit_probe p ~now:52. ~key_index:1);
  Alcotest.check_raises "rejects non-positive"
    (Invalid_argument "Pdht.set_key_ttl: ttl must be positive") (fun () ->
      Pdht.set_key_ttl p 0.)

let test_pdht_update_key_modes () =
  let rng, p_all = build ~strategy:Strategy.Index_all () in
  let m = Pdht.update_key p_all rng ~now:1. ~key_index:3 in
  Alcotest.(check bool) "indexAll updates cost messages" true (m > 0);
  Alcotest.(check int) "charged to update-gossip" m
    (Metrics.count (Pdht.metrics p_all) Metrics.Update_gossip);
  let rng2, p_partial = build () in
  Alcotest.(check int) "partial mode is reactive: no proactive updates" 0
    (Pdht.update_key p_partial rng2 ~now:1. ~key_index:3);
  let rng3, p_none = build ~strategy:Strategy.No_index () in
  Alcotest.(check int) "noIndex has no index to update" 0
    (Pdht.update_key p_none rng3 ~now:1. ~key_index:3)

let test_pdht_rejoin_sync () =
  (* Index_all: a member rejoining after downtime pulls per subnetwork. *)
  let rng, p = build ~strategy:Strategy.Index_all () in
  let offline = ref [] in
  Pdht.set_online p (fun peer -> not (List.mem peer !offline));
  (* Take a member offline and back online; the pull must cost messages
     and be charged to update-gossip. *)
  offline := [ 5 ];
  offline := [];
  let before = Pdht_sim.Metrics.count (Pdht.metrics p) Pdht_sim.Metrics.Update_gossip in
  let cost = Pdht.rejoin_sync p rng ~now:10. ~peer:5 in
  Alcotest.(check bool) "pull costs messages" true (cost > 0);
  Alcotest.(check int) "charged to update-gossip" (before + cost)
    (Pdht_sim.Metrics.count (Pdht.metrics p) Pdht_sim.Metrics.Update_gossip);
  (* Reactive strategies do not pull: entries just expire. *)
  let rng2, p2 = build () in
  Alcotest.(check int) "partial mode: no pull" 0 (Pdht.rejoin_sync p2 rng2 ~now:10. ~peer:5);
  (* Non-members have no subnetworks to sync. *)
  let rng3, p3 = build ~strategy:Strategy.Index_all () in
  Alcotest.(check int) "non-member: no pull" 0 (Pdht.rejoin_sync p3 rng3 ~now:10. ~peer:150)

let test_pdht_key_mapping_deterministic () =
  let _, p1 = build ~seed:5 () in
  let _, p2 = build ~seed:99 () in
  (* Key identities depend on the index only, not on the rng. *)
  for k = 0 to 10 do
    Alcotest.(check bool) "stable key ids" true
      (Pdht_util.Bitkey.equal (Pdht.key_of_index p1 k) (Pdht.key_of_index p2 k))
  done

let test_pdht_content_replicas_placed () =
  let _, p = build ~repl:10 () in
  for k = 0 to 20 do
    Alcotest.(check int) "repl content copies" 10
      (Array.length (Pdht.content_replicas p ~key_index:k))
  done

let test_pdht_popular_keys_stay_indexed () =
  let _, p = build () in
  (* Query key 0 every 100 s; it must remain indexed throughout. *)
  for i = 1 to 20 do
    ignore (Pdht.query p ~now:(float_of_int (i * 100)) ~peer:(i mod 200) ~key_index:0)
  done;
  Alcotest.(check bool) "still indexed" true
    (Pdht.index_hit_probe p ~now:2050. ~key_index:0);
  (* An unpopular key queried once at t=100 has expired by then. *)
  ignore (Pdht.query p ~now:100. ~peer:3 ~key_index:77);
  Alcotest.(check bool) "unpopular expired" false
    (Pdht.index_hit_probe p ~now:2050. ~key_index:77)

let test_pdht_under_churn_still_answers () =
  let _, p = build ~num_peers:300 ~active:100 ~repl:15 () in
  let rng = Rng.create ~seed:77 in
  let offline = Array.init 300 (fun _ -> Rng.unit_float rng < 0.2) in
  Pdht.set_online p (fun peer -> not offline.(peer));
  let answered = ref 0 and asked = ref 0 in
  for k = 0 to 99 do
    let peer = k * 3 in
    if not offline.(peer) then begin
      incr asked;
      let r = Pdht.query p ~now:1. ~peer ~key_index:k in
      if r.Pdht.source <> Pdht.Not_found then incr answered
    end
  done;
  let rate = float_of_int !answered /. float_of_int !asked in
  Alcotest.(check bool) (Printf.sprintf "answer rate %.2f > 0.9 under 20%% churn" rate)
    true (rate > 0.9)

let test_pdht_rejects_bad_key_index () =
  let rng, p = build () in
  Alcotest.check_raises "query" (Invalid_argument "Pdht.query: key_index out of range")
    (fun () -> ignore (Pdht.query p ~now:1. ~peer:0 ~key_index:300));
  Alcotest.check_raises "negative" (Invalid_argument "Pdht.query: key_index out of range")
    (fun () -> ignore (Pdht.query p ~now:1. ~peer:0 ~key_index:(-1)));
  Alcotest.check_raises "update" (Invalid_argument "Pdht.update_key: key_index out of range")
    (fun () -> ignore (Pdht.update_key p rng ~now:1. ~key_index:300));
  Alcotest.check_raises "key_of_index" (Invalid_argument "Pdht.key_of_index: out of range")
    (fun () -> ignore (Pdht.key_of_index p 300))

let test_pdht_eviction_config_respected () =
  let config =
    Config.make ~eviction:Pdht_dht.Storage.Evict_lru ~num_peers:100 ~active_members:20
      ~keys:50 ~repl:5 ~stor:10 ~strategy:(partial 100.) ()
  in
  let p = Pdht.create (Rng.create ~seed:9) config in
  Alcotest.(check bool) "config carries policy" true
    ((Pdht.config p).Config.eviction = Pdht_dht.Storage.Evict_lru)

let test_pdht_online_fn_roundtrip () =
  let _, p = build () in
  Pdht.set_online p (fun peer -> peer mod 2 = 0);
  Alcotest.(check bool) "even online" true (Pdht.online_fn p 4);
  Alcotest.(check bool) "odd offline" false (Pdht.online_fn p 5)

(* ------------------------------------------------------------------ *)
(* Adaptive controller *)

let test_adaptive_needs_data () =
  let ctl = Adaptive.create () in
  let _, p = build () in
  Alcotest.(check (option (float 1e-9))) "no data, no tune" None
    (Adaptive.retune ctl p ~now:10.);
  Alcotest.(check (option (float 1e-9))) "no estimate yet" None
    (Adaptive.current_ttl_estimate ctl)

let test_adaptive_produces_estimate () =
  let ctl = Adaptive.create () in
  let _, p = build () in
  (* Generate traffic: misses (broadcast + insert) and hits. *)
  for k = 0 to 30 do
    let r = Pdht.query p ~now:(float_of_int k) ~peer:k ~key_index:k in
    Adaptive.note_query ctl r
  done;
  for k = 0 to 30 do
    let r = Pdht.query p ~now:(40. +. float_of_int k) ~peer:(k + 50) ~key_index:k in
    Adaptive.note_query ctl r
  done;
  (match Adaptive.observed_search_costs ctl with
  | Some (c_unstr, c_indx2) ->
      Alcotest.(check bool) "broadcast dearer than index search" true (c_unstr > c_indx2)
  | None -> Alcotest.fail "expected both cost observations");
  (* Fake some maintenance traffic so cRtn > 0. *)
  Metrics.charge (Pdht.metrics p) Metrics.Maintenance 500;
  match Adaptive.retune ctl p ~now:100. with
  | Some ttl ->
      Alcotest.(check bool) "positive ttl" true (ttl > 0.);
      Alcotest.(check (float 1e-9)) "applied to pdht" ttl (Pdht.key_ttl p);
      Alcotest.(check (option (float 1e-9))) "estimate stored" (Some ttl)
        (Adaptive.current_ttl_estimate ctl)
  | None -> Alcotest.fail "expected a retune"

let test_adaptive_smoothing_and_clamp () =
  Alcotest.check_raises "bad smoothing"
    (Invalid_argument "Adaptive.create: smoothing in (0,1]") (fun () ->
      ignore (Adaptive.create ~smoothing:0. ()));
  Alcotest.check_raises "bad clamp" (Invalid_argument "Adaptive.create: bad TTL clamp")
    (fun () -> ignore (Adaptive.create ~min_ttl:10. ~max_ttl:1. ()))

(* ------------------------------------------------------------------ *)
(* System runner *)

let tiny_scenario =
  {
    Scenario.news_default with
    Scenario.num_peers = 150;
    keys = 300;
    f_qry = 1. /. 10.;
    duration = 400.;
    seed = 11;
  }

let tiny_options = { System.default_options with System.repl = 10; stor = 60 }

let test_system_run_partial () =
  let ttl = System.derive_key_ttl tiny_scenario tiny_options in
  let r = System.run tiny_scenario (partial ttl) tiny_options in
  Alcotest.(check bool) "queries happened" true (r.System.queries > 1000);
  Alcotest.(check int) "all queries accounted" r.System.queries
    (r.System.answered + r.System.failed);
  Alcotest.(check int) "no failures without churn" 0 r.System.failed;
  Alcotest.(check bool) "index hits dominate under Zipf" true (r.System.hit_rate > 0.5);
  Alcotest.(check bool) "index formed" true (r.System.indexed_keys_final > 0);
  Alcotest.(check bool) "samples recorded" true (List.length r.System.samples > 3)

let test_system_run_deterministic () =
  let ttl = System.derive_key_ttl tiny_scenario tiny_options in
  let r1 = System.run tiny_scenario (partial ttl) tiny_options in
  let r2 = System.run tiny_scenario (partial ttl) tiny_options in
  Alcotest.(check int) "same total messages" r1.System.total_messages r2.System.total_messages;
  Alcotest.(check int) "same query count" r1.System.queries r2.System.queries;
  Alcotest.(check int) "same hits" r1.System.from_index r2.System.from_index

let test_system_seed_changes_run () =
  let ttl = System.derive_key_ttl tiny_scenario tiny_options in
  let r1 = System.run tiny_scenario (partial ttl) tiny_options in
  let r2 =
    System.run { tiny_scenario with Scenario.seed = 12 } (partial ttl) tiny_options
  in
  Alcotest.(check bool) "different seed, different run" true
    (r1.System.total_messages <> r2.System.total_messages)

let test_system_strategy_ordering () =
  (* At a busy query rate, partial must beat noIndex by a wide margin
     (the paper's headline claim at simulation scale). *)
  let ttl = System.derive_key_ttl tiny_scenario tiny_options in
  let partial_run = System.run tiny_scenario (partial ttl) tiny_options in
  let none_run = System.run tiny_scenario Strategy.No_index tiny_options in
  Alcotest.(check bool)
    (Printf.sprintf "partial %.0f < noIndex %.0f msg/s" partial_run.System.messages_per_second
       none_run.System.messages_per_second)
    true
    (partial_run.System.messages_per_second < none_run.System.messages_per_second)

let test_system_index_all_no_broadcast () =
  let r = System.run tiny_scenario Strategy.Index_all tiny_options in
  Alcotest.(check int) "never broadcasts" 0 r.System.from_broadcast;
  Alcotest.(check int) "unstructured traffic zero" 0
    (List.assoc Metrics.Query_unstructured r.System.messages_by_category)

let test_system_no_index_no_dht_traffic () =
  let r = System.run tiny_scenario Strategy.No_index tiny_options in
  Alcotest.(check int) "no index searches" 0
    (List.assoc Metrics.Query_index r.System.messages_by_category);
  Alcotest.(check int) "no maintenance" 0
    (List.assoc Metrics.Maintenance r.System.messages_by_category)

let test_system_with_churn () =
  let scenario =
    {
      tiny_scenario with
      Scenario.churn =
        Scenario.Exponential_sessions
          { mean_uptime = 600.; mean_downtime = 200.; initially_online_fraction = 0.75 };
    }
  in
  let ttl = System.derive_key_ttl scenario tiny_options in
  let r = System.run scenario (partial ttl) tiny_options in
  (* Offline peers skip queries; most online queries still succeed. *)
  let success = float_of_int r.System.answered /. float_of_int (max 1 r.System.queries) in
  Alcotest.(check bool) (Printf.sprintf "success %.2f > 0.85 under churn" success) true
    (success > 0.85)

let test_system_bucket_refresh () =
  (* Live k-buckets with a refresh sweep under heavy-tailed session
     churn: the run completes and still answers; the option is rejected
     outright on any backend without live-table support. *)
  let scenario =
    {
      tiny_scenario with
      Scenario.churn =
        Scenario.Sessions
          {
            Pdht_dist.Session.up = Pdht_dist.Session.Weibull { shape = 0.6 };
            down = Pdht_dist.Session.Weibull { shape = 0.6 };
            mean_uptime = 600.;
            mean_downtime = 200.;
            initially_online_fraction = 0.75;
          };
    }
  in
  let options =
    {
      tiny_options with
      System.backend = Pdht_dht.Dht.Kademlia_backend;
      bucket_refresh = Some 30.;
    }
  in
  let ttl = System.derive_key_ttl scenario options in
  let r = System.run scenario (partial ttl) options in
  let success = float_of_int r.System.answered /. float_of_int (max 1 r.System.queries) in
  Alcotest.(check bool)
    (Printf.sprintf "success %.2f > 0.85 with live buckets" success)
    true (success > 0.85);
  match
    System.run scenario (partial ttl)
      { options with System.backend = Pdht_dht.Dht.Pgrid_backend }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bucket_refresh on a non-Kademlia backend must be rejected"

let test_system_adaptive_option_runs () =
  let options =
    {
      tiny_options with
      System.selection_policy = Pdht_policy.Selector.(Ttl Adaptive);
      sample_every = 20.;
    }
  in
  let ttl = System.derive_key_ttl tiny_scenario options in
  let r = System.run tiny_scenario (partial ttl) options in
  Alcotest.(check bool) "completes and answers" true (r.System.answered > 0)

let test_system_ttl_override () =
  let options =
    System.Options.with_selection_policy
      Pdht_policy.Selector.(Ttl (Fixed 123.))
      tiny_options
  in
  Alcotest.(check (float 1e-9)) "fixed policy wins" 123.
    (System.derive_key_ttl tiny_scenario options);
  (* Adaptive runs start from the same model-derived TTL as the default
     policy; only the in-run controller differs. *)
  Alcotest.(check (float 1e-9)) "adaptive starts model-derived"
    (System.derive_key_ttl tiny_scenario tiny_options)
    (System.derive_key_ttl tiny_scenario
       (System.Options.with_selection_policy
          Pdht_policy.Selector.(Ttl Adaptive)
          tiny_options))

let test_system_options_builders () =
  let o =
    System.Options.make ~repl:7 ~stor:42
      ~selection_policy:Pdht_policy.Selector.(Ttl (Fixed 5.))
      ()
  in
  let fixed5 = Pdht_policy.Selector.(Ttl (Fixed 5.)) in
  Alcotest.(check int) "repl" 7 o.System.repl;
  Alcotest.(check int) "stor" 42 o.System.stor;
  Alcotest.(check bool) "selection policy lands" true
    (Pdht_policy.Selector.equal o.System.selection_policy fixed5);
  Alcotest.(check int) "defaults survive" System.default_options.System.repl
    (System.Options.make ()).System.repl;
  let o2 = System.Options.with_stor 9 (System.Options.with_repl 3 o) in
  Alcotest.(check int) "with_repl" 3 o2.System.repl;
  Alcotest.(check int) "with_stor" 9 o2.System.stor;
  Alcotest.(check bool) "with_* keeps the rest" true
    (Pdht_policy.Selector.equal o2.System.selection_policy fixed5)

let test_system_options_make_defaults () =
  (* [Options.make ()] must be [default_options], field for field: a
     new option axis that forgets to thread its default through [make]
     silently changes every caller that builds options that way. *)
  let o = System.Options.make () in
  let d = System.default_options in
  Alcotest.(check int) "repl" d.System.repl o.System.repl;
  Alcotest.(check int) "stor" d.System.stor o.System.stor;
  Alcotest.(check bool) "selection_policy" true
    (Pdht_policy.Selector.equal d.System.selection_policy o.System.selection_policy);
  Alcotest.(check (float 0.)) "sample_every" d.System.sample_every o.System.sample_every;
  Alcotest.(check (float 0.)) "sizing_slack" d.System.sizing_slack o.System.sizing_slack;
  Alcotest.(check bool) "env" true (d.System.env = o.System.env);
  Alcotest.(check bool) "backend" true (d.System.backend = o.System.backend);
  Alcotest.(check bool) "eviction" true (d.System.eviction = o.System.eviction);
  Alcotest.(check bool) "net" true (d.System.net = o.System.net);
  Alcotest.(check bool) "fault" true (d.System.fault = o.System.fault);
  Alcotest.(check bool) "timeline_window" true
    (d.System.timeline_window = o.System.timeline_window);
  Alcotest.(check bool) "whole record" true (o = d)


let test_adaptive_retune_empty_window () =
  let ctl = Adaptive.create () in
  let _, p = build () in
  for k = 0 to 30 do
    let r = Pdht.query p ~now:(float_of_int k) ~peer:k ~key_index:k in
    Adaptive.note_query ctl r
  done;
  for k = 0 to 30 do
    let r = Pdht.query p ~now:(40. +. float_of_int k) ~peer:(k + 50) ~key_index:k in
    Adaptive.note_query ctl r
  done;
  Metrics.charge (Pdht.metrics p) Metrics.Maintenance 500;
  (match Adaptive.retune ctl p ~now:100. with
  | Some _ -> ()
  | None -> Alcotest.fail "expected the primed retune to produce a TTL");
  (* The retune reset the observation window: with nothing new observed
     the next retune must decline rather than divide by an empty
     window, and the previous estimate must survive. *)
  let before = Adaptive.current_ttl_estimate ctl in
  Alcotest.(check (option (float 1e-9))) "empty window declines" None
    (Adaptive.retune ctl p ~now:200.);
  Alcotest.(check (option (float 1e-9))) "estimate survives" before
    (Adaptive.current_ttl_estimate ctl)

let test_adaptive_retune_no_index () =
  (* Costs observed on a busy instance, but retuned against one whose
     index is empty: cRtn per indexed key is undefined, so no tune. *)
  let ctl = Adaptive.create () in
  let _, busy = build () in
  for k = 0 to 30 do
    let r = Pdht.query busy ~now:(float_of_int k) ~peer:k ~key_index:k in
    Adaptive.note_query ctl r
  done;
  for k = 0 to 30 do
    let r = Pdht.query busy ~now:(40. +. float_of_int k) ~peer:(k + 50) ~key_index:k in
    Adaptive.note_query ctl r
  done;
  let _, empty = build () in
  Metrics.charge (Pdht.metrics empty) Metrics.Maintenance 500;
  Alcotest.(check (option (float 1e-9))) "no indexed keys, no tune" None
    (Adaptive.retune ctl empty ~now:100.)

let test_adaptive_retune_clamps_to_max () =
  let max_ttl = 2.5 in
  let ctl = Adaptive.create ~min_ttl:1. ~max_ttl () in
  let _, p = build () in
  for k = 0 to 30 do
    let r = Pdht.query p ~now:(float_of_int k) ~peer:k ~key_index:k in
    Adaptive.note_query ctl r
  done;
  for k = 0 to 30 do
    let r = Pdht.query p ~now:(40. +. float_of_int k) ~peer:(k + 50) ~key_index:k in
    Adaptive.note_query ctl r
  done;
  (* Almost no maintenance traffic: the raw 1/fMin estimate is huge and
     only the clamp keeps it sane. *)
  Metrics.charge (Pdht.metrics p) Metrics.Maintenance 1;
  match Adaptive.retune ctl p ~now:100. with
  | Some ttl ->
      Alcotest.(check bool)
        (Printf.sprintf "clamped: %g <= %g" ttl max_ttl)
        true (ttl <= max_ttl)
  | None -> Alcotest.fail "expected a retune"

let test_system_query_cost_percentiles () =
  let ttl = System.derive_key_ttl tiny_scenario tiny_options in
  let r = System.run tiny_scenario (partial ttl) tiny_options in
  Alcotest.(check bool) "ordered" true
    (r.System.query_cost_p50 <= r.System.query_cost_p95
    && r.System.query_cost_p95 <= r.System.query_cost_p99);
  (* Under Zipf most queries are index hits: the median is a handful of
     messages while the tail pays for broadcasts. *)
  Alcotest.(check bool) "median is cheap" true (r.System.query_cost_p50 < 20.);
  Alcotest.(check bool) "tail is expensive" true
    (r.System.query_cost_p99 > 3. *. r.System.query_cost_p50)

let test_system_report_printable () =
  let ttl = System.derive_key_ttl tiny_scenario tiny_options in
  let r = System.run tiny_scenario (partial ttl) tiny_options in
  let s = Format.asprintf "%a" System.pp_report r in
  Alcotest.(check bool) "non-empty" true (String.length s > 50)

(* ------------------------------------------------------------------ *)
(* Run specs and the domain pool *)

let runner_scenario =
  { tiny_scenario with Scenario.num_peers = 100; keys = 200; duration = 250. }

let runner_specs () =
  let base = Run_spec.make ~options:tiny_options runner_scenario in
  Run_spec.over_seeds [ 1; 2; 3 ] base
  @ [ Run_spec.with_strategy Strategy.No_index base ]

let test_runner_jobs_parity () =
  (* The determinism contract: any jobs count yields the same reports,
     field by field, because each task's randomness derives from the
     spec alone. *)
  let reports jobs = Run_result.reports_exn (Runner.run_all ~jobs (runner_specs ())) in
  let sequential = reports 1 and parallel = reports 4 in
  Alcotest.(check int) "batch size" (List.length sequential) (List.length parallel);
  List.iter2
    (fun (a : System.report) (b : System.report) ->
      Alcotest.(check string) "scenario" a.System.scenario_name b.System.scenario_name;
      Alcotest.(check int) "queries" a.System.queries b.System.queries;
      Alcotest.(check int) "answered" a.System.answered b.System.answered;
      Alcotest.(check int) "from_index" a.System.from_index b.System.from_index;
      Alcotest.(check int) "total messages" a.System.total_messages b.System.total_messages;
      Alcotest.(check (float 0.)) "messages/s" a.System.messages_per_second
        b.System.messages_per_second;
      Alcotest.(check (float 0.)) "hit rate" a.System.hit_rate b.System.hit_rate;
      Alcotest.(check (float 0.)) "p99" a.System.query_cost_p99 b.System.query_cost_p99;
      Alcotest.(check int) "indexed keys" a.System.indexed_keys_final
        b.System.indexed_keys_final;
      Alcotest.(check int) "samples" (List.length a.System.samples)
        (List.length b.System.samples);
      Alcotest.(check int) "histograms" (List.length a.System.histograms)
        (List.length b.System.histograms);
      (* ... and every remaining field, via structural equality. *)
      Alcotest.(check bool) "whole report" true (a = b))
    sequential parallel

let test_runner_error_capture () =
  (* One poisoned spec becomes a labelled error; the rest of the batch
     still runs. *)
  let good = Run_spec.make ~options:tiny_options runner_scenario in
  let bad =
    Run_spec.with_tag "poisoned"
      (Run_spec.with_options { tiny_options with System.repl = 0 } good)
  in
  let results = Runner.run_all ~jobs:2 [ good; bad; good ] in
  (match results with
  | [ (_, Ok _); (spec, Error e); (_, Ok _) ] ->
      Alcotest.(check string) "error carries the tag" "poisoned" e.Run_result.tag;
      Alcotest.(check string) "spec preserved" "poisoned" spec.Run_spec.tag;
      Alcotest.(check bool) "message non-empty" true (String.length e.Run_result.message > 0)
  | _ -> Alcotest.fail "expected [Ok; Error; Ok]");
  Alcotest.(check int) "failures lists only the poisoned spec" 1
    (List.length (Run_result.failures results));
  Alcotest.check_raises "reports_exn surfaces the failure"
    (Run_result.Task_failed
       { Run_result.tag = "poisoned";
         message =
           (match results with
           | [ _; (_, Error e); _ ] -> e.Run_result.message
           | _ -> "") })
    (fun () -> ignore (Run_result.reports_exn results))

let test_run_spec_seeding () =
  let spec = Run_spec.make ~options:tiny_options runner_scenario in
  Alcotest.(check bool) "derived seed differs from the raw seed" true
    (Run_spec.run_seed spec <> runner_scenario.Scenario.seed);
  Alcotest.(check bool) "task_id splits the stream" true
    (Run_spec.run_seed spec <> Run_spec.run_seed (Run_spec.with_task_id 1 spec));
  Alcotest.(check int) "run_seed is a pure function of the spec"
    (Run_spec.run_seed spec) (Run_spec.run_seed spec);
  let tags = List.map (fun s -> s.Run_spec.tag) (Run_spec.over_seeds [ 7; 8 ] spec) in
  Alcotest.(check (list string)) "over_seeds tags"
    [ spec.Run_spec.tag ^ " seed=7"; spec.Run_spec.tag ^ " seed=8" ] tags;
  Alcotest.(check string) "with_strategy refreshes a defaulted tag"
    (runner_scenario.Scenario.name ^ "/" ^ Strategy.label Strategy.No_index)
    (Run_spec.with_strategy Strategy.No_index spec).Run_spec.tag;
  Alcotest.(check string) "with_strategy keeps a custom tag" "mine"
    (Run_spec.with_strategy Strategy.No_index (Run_spec.with_tag "mine" spec)).Run_spec.tag

let test_pool_map_preserves_order () =
  let squares =
    Pdht_runner.Pool.map ~jobs:4 ~f:(fun i x -> (i, x * x)) (Array.init 40 (fun i -> i + 1))
  in
  Array.iteri
    (fun i (j, sq) ->
      Alcotest.(check int) "index" i j;
      Alcotest.(check int) "value" ((i + 1) * (i + 1)) sq)
    squares;
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.try_map: jobs must be >= 1") (fun () ->
      ignore (Pdht_runner.Pool.map ~jobs:0 ~f:(fun _ x -> x) [| 1 |]))

(* Regression: the effective worker count is clamped to the batch size,
   so a 1-task batch runs inline on the caller's domain no matter how
   large [jobs] is — spawning 7 idle domains for one task would be pure
   stop-the-world GC overhead. *)
let test_pool_small_batch_runs_inline () =
  let caller = Domain.self () in
  let ran_on =
    Pdht_runner.Pool.map ~jobs:8 ~f:(fun _ () -> Domain.self ()) [| () |]
  in
  Alcotest.(check bool) "single task stays on the calling domain" true
    (ran_on.(0) = caller);
  (* Two tasks at -j 8 still need at most two domains: the caller works
     too, so at most one domain is spawned. *)
  let domains =
    Pdht_runner.Pool.map ~jobs:8 ~f:(fun _ () -> Domain.self ()) (Array.init 2 (fun _ -> ()))
  in
  let distinct =
    Array.fold_left
      (fun acc d -> if List.exists (fun d' -> d' = d) acc then acc else d :: acc)
      [] domains
  in
  Alcotest.(check bool) "two tasks use at most two domains" true
    (List.length distinct <= 2)

let () =
  Alcotest.run "pdht_core"
    [
      ( "strategy-config",
        [
          Alcotest.test_case "strategy accessors" `Quick test_strategy_accessors;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "active_members_for" `Quick test_config_active_members_for;
        ] );
      ( "pdht",
        [
          Alcotest.test_case "noIndex broadcasts" `Quick test_pdht_no_index_broadcasts;
          Alcotest.test_case "indexAll serves from index" `Quick test_pdht_index_all_serves_from_index;
          Alcotest.test_case "indexAll preloaded" `Quick test_pdht_index_all_preloaded;
          Alcotest.test_case "partial starts empty" `Quick test_pdht_partial_starts_empty;
          Alcotest.test_case "miss then hit" `Quick test_pdht_partial_miss_then_hit;
          Alcotest.test_case "key expires" `Quick test_pdht_partial_key_expires;
          Alcotest.test_case "query refreshes ttl" `Quick test_pdht_query_refreshes_ttl;
          Alcotest.test_case "offline peer" `Quick test_pdht_offline_peer_cannot_query;
          Alcotest.test_case "result totals" `Quick test_pdht_query_result_totals;
          Alcotest.test_case "set_key_ttl" `Quick test_pdht_set_key_ttl;
          Alcotest.test_case "update modes" `Quick test_pdht_update_key_modes;
          Alcotest.test_case "rejoin sync" `Quick test_pdht_rejoin_sync;
          Alcotest.test_case "key mapping deterministic" `Quick test_pdht_key_mapping_deterministic;
          Alcotest.test_case "content replicas" `Quick test_pdht_content_replicas_placed;
          Alcotest.test_case "popular keys persist" `Quick test_pdht_popular_keys_stay_indexed;
          Alcotest.test_case "answers under churn" `Quick test_pdht_under_churn_still_answers;
          Alcotest.test_case "rejects bad key index" `Quick test_pdht_rejects_bad_key_index;
          Alcotest.test_case "eviction config" `Quick test_pdht_eviction_config_respected;
          Alcotest.test_case "online fn roundtrip" `Quick test_pdht_online_fn_roundtrip;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "needs data" `Quick test_adaptive_needs_data;
          Alcotest.test_case "produces estimate" `Quick test_adaptive_produces_estimate;
          Alcotest.test_case "validation" `Quick test_adaptive_smoothing_and_clamp;
          Alcotest.test_case "empty window declines" `Quick test_adaptive_retune_empty_window;
          Alcotest.test_case "no index declines" `Quick test_adaptive_retune_no_index;
          Alcotest.test_case "clamps to max" `Quick test_adaptive_retune_clamps_to_max;
        ] );
      ( "system",
        [
          Alcotest.test_case "run partial" `Quick test_system_run_partial;
          Alcotest.test_case "deterministic" `Quick test_system_run_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_system_seed_changes_run;
          Alcotest.test_case "partial beats noIndex" `Quick test_system_strategy_ordering;
          Alcotest.test_case "indexAll never broadcasts" `Quick test_system_index_all_no_broadcast;
          Alcotest.test_case "noIndex has no DHT traffic" `Quick test_system_no_index_no_dht_traffic;
          Alcotest.test_case "with churn" `Quick test_system_with_churn;
          Alcotest.test_case "bucket refresh" `Quick test_system_bucket_refresh;
          Alcotest.test_case "adaptive option" `Quick test_system_adaptive_option_runs;
          Alcotest.test_case "ttl override" `Quick test_system_ttl_override;
          Alcotest.test_case "options builders" `Quick test_system_options_builders;
          Alcotest.test_case "make defaults" `Quick test_system_options_make_defaults;
          Alcotest.test_case "query cost percentiles" `Quick test_system_query_cost_percentiles;
          Alcotest.test_case "report printable" `Quick test_system_report_printable;
        ] );
      ( "runner",
        [
          Alcotest.test_case "jobs parity" `Quick test_runner_jobs_parity;
          Alcotest.test_case "error capture" `Quick test_runner_error_capture;
          Alcotest.test_case "run_spec seeding" `Quick test_run_spec_seeding;
          Alcotest.test_case "pool order" `Quick test_pool_map_preserves_order;
          Alcotest.test_case "pool inlines small batches" `Quick
            test_pool_small_batch_runs_inline;
        ] );
    ]
