(* Test helper for the cluster worker-death regression: behaves like a
   worker just long enough to handshake (Hello, then read one frame —
   the Setup) and then dies with a recognisable exit status.  The
   conductor must detect the death and fail fast, naming this node. *)

let () =
  let port = ref 0 and node_id = ref 0 in
  Arg.parse
    [
      ("--connect", Arg.Set_int port, "conductor port");
      ("--node-id", Arg.Set_int node_id, "worker id");
      ("--obs-out", Arg.String (fun _ -> ()), "ignored");
    ]
    (fun _positional -> ())
    "crash_worker";
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, !port));
  let conn = Pdht_proc.Frame_io.of_fd fd in
  Pdht_proc.Frame_io.send conn (Pdht_wire.Wire.Hello { node_id = !node_id });
  (match Pdht_proc.Frame_io.recv ~deadline:(Unix.gettimeofday () +. 10.) conn with
  | Ok _ | Error _ -> ());
  exit 3
