(* Unit tests for the pure protocol cores in [lib/proto].

   Each machine is exercised as plain data: feed events, assert the
   exact action sequence.  The drivers (simulator engine, process
   event loop) are deliberately absent — that is the point of the
   extraction — so these tests pin the protocol semantics that both
   drivers must share. *)

module M = Pdht_proto.Rpc_machine
module Q = Pdht_proto.Query_plan
module U = Pdht_proto.Update_plan
module Sel = Pdht_proto.Selection
module Rr = Pdht_proto.Repair_rules
module B = Pdht_proto.Bucket_rules

let feq = Alcotest.(check (float 1e-9))

(* ---------------------------------------------------------------- *)
(* Rpc_machine                                                       *)
(* ---------------------------------------------------------------- *)

let test_rpc_backoff_schedule () =
  let config = { M.timeout = 0.5; retries = 4; backoff = 2.0 } in
  List.iter
    (fun (attempt, want) ->
      feq (Printf.sprintf "timeout for attempt %d" attempt) want
        (M.timeout_for config ~attempt))
    [ (0, 0.5); (1, 1.0); (2, 2.0); (3, 4.0); (4, 8.0) ]

let test_rpc_matches_net_config () =
  (* The machine's schedule must agree with the network model's
     published [timeout_for_attempt] — the process driver leans on the
     former, the simulator documents the latter. *)
  let net = { Pdht_net.Config.default with rpc_timeout = 0.3; rpc_retries = 5; backoff = 1.7 } in
  let config = { M.timeout = 0.3; retries = 5; backoff = 1.7 } in
  for attempt = 0 to 5 do
    feq
      (Printf.sprintf "net/proto agree on attempt %d" attempt)
      (Pdht_net.Config.timeout_for_attempt net ~attempt)
      (M.timeout_for config ~attempt)
  done

let test_rpc_retry_then_give_up () =
  let m = M.create ~timeout:1.0 ~retries:2 ~backoff:2.0 in
  Alcotest.(check int) "starts at attempt 0" 0 (M.attempt m);
  feq "initial deadline" 1.0 (M.current_timeout m);
  let m, a = M.step m M.Attempt_timeout in
  (match a with
  | M.Retry { attempt = 1; timeout } -> feq "first retry waits 2x" 2.0 timeout
  | _ -> Alcotest.fail "expected first Retry");
  let m, a = M.step m M.Attempt_timeout in
  (match a with
  | M.Retry { attempt = 2; timeout } -> feq "second retry waits 4x" 4.0 timeout
  | _ -> Alcotest.fail "expected second Retry");
  Alcotest.(check bool) "not settled while retrying" false (M.settled m);
  let m, a = M.step m M.Attempt_timeout in
  (match a with
  | M.Give_up -> ()
  | _ -> Alcotest.fail "expected Give_up after retry budget");
  Alcotest.(check bool) "settled after give-up" true (M.settled m);
  (* Every event after settling is a stale no-op. *)
  let _, a = M.step m M.Reply_received in
  (match a with M.Ignore -> () | _ -> Alcotest.fail "reply after give-up must Ignore");
  let _, a = M.step m M.Attempt_timeout in
  match a with M.Ignore -> () | _ -> Alcotest.fail "timeout after give-up must Ignore"

let test_rpc_reply_settles_once () =
  let m = M.create ~timeout:1.0 ~retries:3 ~backoff:2.0 in
  let m, a = M.step m M.Reply_received in
  (match a with
  | M.Deliver_reply -> ()
  | _ -> Alcotest.fail "expected Deliver_reply");
  Alcotest.(check bool) "settled after reply" true (M.settled m);
  let _, a = M.step m M.Reply_received in
  (match a with M.Ignore -> () | _ -> Alcotest.fail "duplicate reply must Ignore");
  let _, a = M.step m M.Attempt_timeout in
  match a with M.Ignore -> () | _ -> Alcotest.fail "late timeout must Ignore"

let test_rpc_zero_retries_one_shot () =
  let m = M.create ~timeout:0.25 ~retries:0 ~backoff:3.0 in
  let _, a = M.step m M.Attempt_timeout in
  match a with
  | M.Give_up -> ()
  | _ -> Alcotest.fail "zero retries: first timeout is final"

(* ---------------------------------------------------------------- *)
(* Query_plan                                                        *)
(* ---------------------------------------------------------------- *)

let check_finish name (a : Q.action) ~source ~provider =
  match a with
  | Q.Finish o ->
      Alcotest.(check bool) (name ^ ": source") true (o.Q.source = source);
      Alcotest.(check (option int)) (name ^ ": provider") provider o.Q.provider
  | _ -> Alcotest.fail (name ^ ": expected Finish")

let test_query_no_index_paths () =
  let t, a = Q.start Q.No_index in
  (match a with
  | Q.Search_broadcast -> ()
  | _ -> Alcotest.fail "No_index starts by broadcasting");
  let _, a = Q.step t (Q.Broadcast_found { provider = 7 }) in
  check_finish "no-index hit" a ~source:Q.From_broadcast ~provider:(Some 7);
  let t, _ = Q.start Q.No_index in
  let _, a = Q.step t Q.Broadcast_failed in
  check_finish "no-index miss" a ~source:Q.Not_found ~provider:None

let test_query_index_all_paths () =
  let t, a = Q.start Q.Index_all in
  (match a with
  | Q.Reach_entry -> ()
  | _ -> Alcotest.fail "Index_all starts at the entry point");
  (* Entry failure is final: there is no broadcast fallback. *)
  let _, a = Q.step t Q.Entry_failed in
  check_finish "index-all entry failure" a ~source:Q.Not_found ~provider:None;
  let t, a = Q.step t Q.Entry_reached in
  (match a with
  | Q.Search_index -> ()
  | _ -> Alcotest.fail "Index_all searches the index after contact");
  let _, a = Q.step t (Q.Index_hit { provider = 3 }) in
  check_finish "index-all hit" a ~source:Q.From_index ~provider:(Some 3);
  let _, a = Q.step t Q.Index_miss in
  check_finish "index-all miss is final" a ~source:Q.Not_found ~provider:None

let test_query_partial_hit () =
  let t, a = Q.start Q.Partial in
  (match a with Q.Reach_entry -> () | _ -> Alcotest.fail "Partial starts at entry");
  let t, a = Q.step t Q.Entry_reached in
  (match a with Q.Search_index -> () | _ -> Alcotest.fail "then searches the index");
  let _, a = Q.step t (Q.Index_hit { provider = 11 }) in
  check_finish "partial index hit" a ~source:Q.From_index ~provider:(Some 11)

let test_query_partial_miss_broadcast_insert () =
  let t, _ = Q.start Q.Partial in
  let t, _ = Q.step t Q.Entry_reached in
  let t, a = Q.step t Q.Index_miss in
  (match a with
  | Q.Search_broadcast -> ()
  | _ -> Alcotest.fail "index miss falls back to broadcast");
  let t, a = Q.step t (Q.Broadcast_found { provider = 5 }) in
  (match a with
  | Q.Insert_key { provider = 5 } -> ()
  | _ -> Alcotest.fail "broadcast hit after a miss re-inserts");
  let _, a = Q.step t Q.Insert_done in
  check_finish "resolved via broadcast" a ~source:Q.From_broadcast ~provider:(Some 5)

let test_query_partial_entry_failure_degrades () =
  (* No reachable index: broadcast still runs, but a find must NOT
     trigger re-insertion (nowhere to insert). *)
  let t, _ = Q.start Q.Partial in
  let t, a = Q.step t Q.Entry_failed in
  (match a with
  | Q.Search_broadcast -> ()
  | _ -> Alcotest.fail "entry failure degrades to broadcast");
  let _, a = Q.step t (Q.Broadcast_found { provider = 9 }) in
  check_finish "degraded hit skips insertion" a ~source:Q.From_broadcast
    ~provider:(Some 9);
  let t, _ = Q.start Q.Partial in
  let t, _ = Q.step t Q.Entry_failed in
  let _, a = Q.step t Q.Broadcast_failed in
  check_finish "degraded miss" a ~source:Q.Not_found ~provider:None

let test_query_rejects_out_of_phase_events () =
  let t, _ = Q.start Q.Partial in
  Alcotest.check_raises "broadcast result while contacting"
    (Invalid_argument "Query_plan.step: broadcast-found event in contacting phase")
    (fun () -> ignore (Q.step t (Q.Broadcast_found { provider = 1 })))

(* ---------------------------------------------------------------- *)
(* Update_plan                                                       *)
(* ---------------------------------------------------------------- *)

let test_update_only_index_all_runs () =
  (match U.start Q.No_index with
  | _, U.Finish { delivered = false } -> ()
  | _ -> Alcotest.fail "No_index updates are dropped");
  match U.start Q.Partial with
  | _, U.Finish { delivered = false } -> ()
  | _ -> Alcotest.fail "Partial drops proactive updates (Section 5.1)"

let test_update_full_path () =
  let t, a = U.start Q.Index_all in
  (match a with U.Reach_entry -> () | _ -> Alcotest.fail "update starts at entry");
  let t, a = U.step t U.Entry_reached in
  (match a with U.Route -> () | _ -> Alcotest.fail "then routes");
  let t, a = U.step t U.Route_ok in
  (match a with U.Spread -> () | _ -> Alcotest.fail "then spreads");
  match U.step t U.Spread_done with
  | _, U.Finish { delivered = true } -> ()
  | _ -> Alcotest.fail "spread completes the update"

let test_update_failures_end_undelivered () =
  let t, _ = U.start Q.Index_all in
  (match U.step t U.Entry_failed with
  | _, U.Finish { delivered = false } -> ()
  | _ -> Alcotest.fail "entry failure ends the update");
  let t, _ = U.start Q.Index_all in
  let t, _ = U.step t U.Entry_reached in
  match U.step t U.Route_failed with
  | _, U.Finish { delivered = false } -> ()
  | _ -> Alcotest.fail "routing failure ends the update"

(* ---------------------------------------------------------------- *)
(* Selection                                                         *)
(* ---------------------------------------------------------------- *)

let test_selection_defaults () =
  feq "no policy leases the default TTL" 42.0
    (Sel.lease None ~default_ttl:42.0 ~now:10.0 ~key_index:3);
  Alcotest.(check bool) "no policy admits everything" true
    (Sel.admits None ~now:10.0 ~key_index:3)

let test_selection_policy_consulted () =
  let policy =
    { Sel.admit = (fun ~now:_ ~key_index -> key_index mod 2 = 0);
      ttl_for = (fun ~now ~key_index -> now +. float_of_int key_index) }
  in
  feq "policy lease wins over default" 12.0
    (Sel.lease (Some policy) ~default_ttl:99.0 ~now:10.0 ~key_index:2);
  Alcotest.(check bool) "policy admit: even" true
    (Sel.admits (Some policy) ~now:0.0 ~key_index:4);
  Alcotest.(check bool) "policy admit: odd" false
    (Sel.admits (Some policy) ~now:0.0 ~key_index:5)

(* ---------------------------------------------------------------- *)
(* Repair_rules                                                      *)
(* ---------------------------------------------------------------- *)

let test_repair_threshold_and_topup () =
  Alcotest.(check int) "ceil(0.5 * 5)" 3
    (Rr.content_threshold ~min_fraction:0.5 ~repl:5);
  Alcotest.(check int) "exact fraction stays exact" 2
    (Rr.content_threshold ~min_fraction:0.5 ~repl:4);
  Alcotest.(check bool) "below threshold needs top-up" true
    (Rr.needs_topup ~live:2 ~threshold:3);
  Alcotest.(check bool) "at threshold is healthy" false
    (Rr.needs_topup ~live:3 ~threshold:3);
  Alcotest.(check bool) "extinct items are unrecoverable" false
    (Rr.needs_topup ~live:0 ~threshold:3);
  Alcotest.(check int) "want tops back to repl" 3 (Rr.topup_want ~repl:5 ~live:2);
  Alcotest.(check int) "probe budget scales with want" (20 * 3 + 50)
    (Rr.topup_attempts ~want:3);
  Alcotest.(check int) "two messages per fresh copy" 8 (Rr.copy_messages ~fresh:4)

let test_repair_remaining_ttl () =
  (match Rr.remaining_ttl ~expiry:15.0 ~now:10.0 with
  | Some r -> feq "live entry keeps its remainder" 5.0 r
  | None -> Alcotest.fail "expected Some remaining");
  (match Rr.remaining_ttl ~expiry:10.0 ~now:10.0 with
  | None -> ()
  | Some _ -> Alcotest.fail "expiry boundary is dead");
  match Rr.remaining_ttl ~expiry:3.0 ~now:10.0 with
  | None -> ()
  | Some _ -> Alcotest.fail "past expiry is dead"

(* ---------------------------------------------------------------- *)
(* Bucket_rules                                                      *)
(* ---------------------------------------------------------------- *)

let test_bucket_contact_decisions () =
  let view ~occupancy ~present = { B.occupancy; capacity = 8; present } in
  (match B.on_contact (view ~occupancy:5 ~present:true) with
  | B.Promote -> ()
  | _ -> Alcotest.fail "a known entry is promoted");
  (match B.on_contact (view ~occupancy:8 ~present:true) with
  | B.Promote -> ()
  | _ -> Alcotest.fail "promotion also applies to a full bucket");
  (match B.on_contact (view ~occupancy:5 ~present:false) with
  | B.Insert -> ()
  | _ -> Alcotest.fail "a newcomer enters a bucket with room");
  (match B.on_contact (view ~occupancy:0 ~present:false) with
  | B.Insert -> ()
  | _ -> Alcotest.fail "an empty bucket admits");
  match B.on_contact (view ~occupancy:8 ~present:false) with
  | B.Probe_lrs -> ()
  | _ -> Alcotest.fail "a full bucket probes its LRS entry"

let test_bucket_contact_rejects_malformed_view () =
  List.iter
    (fun (label, view) ->
      match B.on_contact view with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (label ^ " accepted"))
    [
      ("overfull", { B.occupancy = 9; capacity = 8; present = false });
      ("negative occupancy", { B.occupancy = -1; capacity = 8; present = false });
      ("zero capacity", { B.occupancy = 0; capacity = 0; present = false });
      ("present in empty bucket", { B.occupancy = 0; capacity = 8; present = true });
    ]

let test_bucket_probe_outcomes () =
  (* The Kademlia eviction rule: an entry that answers its liveness
     probe is never displaced; only a confirmed-dead one makes room. *)
  (match B.on_probe B.Lrs_alive with
  | B.Keep_old_cache_new -> ()
  | _ -> Alcotest.fail "alive LRS is kept, newcomer cached");
  match B.on_probe B.Lrs_dead with
  | B.Evict_insert_new -> ()
  | _ -> Alcotest.fail "dead LRS is evicted for the newcomer"

let test_bucket_probe_messages () =
  Alcotest.(check int) "alive answers the first attempt" 1
    (B.probe_messages ~retries:3 ~alive:true);
  Alcotest.(check int) "dead eats the whole ladder" 4
    (B.probe_messages ~retries:3 ~alive:false);
  Alcotest.(check int) "no-retry ladder" 1 (B.probe_messages ~retries:0 ~alive:false)

let test_bucket_refresh_due () =
  Alcotest.(check bool) "stale bucket is due" true
    (B.refresh_due ~last_touched:0. ~now:100. ~interval:30.);
  Alcotest.(check bool) "fresh bucket is not" false
    (B.refresh_due ~last_touched:90. ~now:100. ~interval:30.);
  Alcotest.(check bool) "exact boundary is due" true
    (B.refresh_due ~last_touched:70. ~now:100. ~interval:30.);
  match B.refresh_due ~last_touched:0. ~now:1. ~interval:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero interval accepted"

let () =
  Alcotest.run "pdht_proto"
    [
      ( "rpc_machine",
        [
          Alcotest.test_case "backoff schedule" `Quick test_rpc_backoff_schedule;
          Alcotest.test_case "matches net config" `Quick test_rpc_matches_net_config;
          Alcotest.test_case "retry then give up" `Quick test_rpc_retry_then_give_up;
          Alcotest.test_case "reply settles once" `Quick test_rpc_reply_settles_once;
          Alcotest.test_case "zero retries one shot" `Quick test_rpc_zero_retries_one_shot;
        ] );
      ( "query_plan",
        [
          Alcotest.test_case "no-index paths" `Quick test_query_no_index_paths;
          Alcotest.test_case "index-all paths" `Quick test_query_index_all_paths;
          Alcotest.test_case "partial hit" `Quick test_query_partial_hit;
          Alcotest.test_case "partial miss broadcast insert" `Quick
            test_query_partial_miss_broadcast_insert;
          Alcotest.test_case "partial entry failure degrades" `Quick
            test_query_partial_entry_failure_degrades;
          Alcotest.test_case "rejects out-of-phase events" `Quick
            test_query_rejects_out_of_phase_events;
        ] );
      ( "update_plan",
        [
          Alcotest.test_case "only index-all runs" `Quick test_update_only_index_all_runs;
          Alcotest.test_case "full path" `Quick test_update_full_path;
          Alcotest.test_case "failures end undelivered" `Quick
            test_update_failures_end_undelivered;
        ] );
      ( "selection",
        [
          Alcotest.test_case "defaults" `Quick test_selection_defaults;
          Alcotest.test_case "policy consulted" `Quick test_selection_policy_consulted;
        ] );
      ( "repair_rules",
        [
          Alcotest.test_case "threshold and topup" `Quick test_repair_threshold_and_topup;
          Alcotest.test_case "remaining ttl" `Quick test_repair_remaining_ttl;
        ] );
      ( "bucket_rules",
        [
          Alcotest.test_case "contact decisions" `Quick test_bucket_contact_decisions;
          Alcotest.test_case "rejects malformed views" `Quick
            test_bucket_contact_rejects_malformed_view;
          Alcotest.test_case "probe outcomes" `Quick test_bucket_probe_outcomes;
          Alcotest.test_case "probe messages" `Quick test_bucket_probe_messages;
          Alcotest.test_case "refresh due" `Quick test_bucket_refresh_due;
        ] );
    ]
