(* Tests for Pdht_dht: churn model, TTL storage, Chord, P-Grid, the
   facade, and routing-table maintenance. *)

module Rng = Pdht_util.Rng
module Bitkey = Pdht_util.Bitkey
module Churn = Pdht_dht.Churn
module Storage = Pdht_dht.Storage
module Chord = Pdht_dht.Chord
module Pgrid = Pdht_dht.Pgrid
module Dht = Pdht_dht.Dht
module Maintenance = Pdht_dht.Maintenance

let all_online _ = true

(* ------------------------------------------------------------------ *)
(* Churn *)

let test_churn_static () =
  let c = Churn.always_online ~peers:10 in
  Alcotest.(check int) "all online" 10 (Churn.online_count c);
  Alcotest.(check (float 1e-9)) "availability 1" 1. (Churn.availability c);
  let engine = Pdht_sim.Engine.create () in
  Churn.attach c engine;
  Pdht_sim.Engine.run engine ~until:1000.;
  Alcotest.(check int) "no transitions" 0 (Churn.session_changes c)

let test_churn_stationary_fraction () =
  let rng = Rng.create ~seed:80 in
  let c =
    Churn.create rng ~peers:2000 ~mean_uptime:300. ~mean_downtime:100.
      ~initially_online_fraction:0.75
  in
  let engine = Pdht_sim.Engine.create () in
  Churn.attach c engine;
  Pdht_sim.Engine.run engine ~until:2000.;
  let frac = float_of_int (Churn.online_count c) /. 2000. in
  Alcotest.(check (float 0.05)) "stationary fraction = availability"
    (Churn.availability c) frac;
  Alcotest.(check bool) "transitions happened" true (Churn.session_changes c > 1000)

let test_churn_callbacks () =
  let rng = Rng.create ~seed:81 in
  let c =
    Churn.create rng ~peers:5 ~mean_uptime:10. ~mean_downtime:10.
      ~initially_online_fraction:1.
  in
  let events = ref 0 in
  let consistent = ref true in
  Churn.on_toggle c (fun ~peer ~now_online ~time:_ ->
      incr events;
      if Churn.online c peer <> now_online then consistent := false);
  let engine = Pdht_sim.Engine.create () in
  Churn.attach c engine;
  Pdht_sim.Engine.run engine ~until:100.;
  Alcotest.(check bool) "callbacks fired" true (!events > 0);
  Alcotest.(check int) "callback count matches" (Churn.session_changes c) !events;
  Alcotest.(check bool) "state consistent inside callback" true !consistent

let test_churn_validation () =
  let rng = Rng.create ~seed:82 in
  Alcotest.check_raises "bad uptime"
    (Invalid_argument "Churn.create: durations must be positive") (fun () ->
      ignore
        (Churn.create rng ~peers:2 ~mean_uptime:0. ~mean_downtime:1.
           ~initially_online_fraction:1.))

let test_churn_callback_registration_order () =
  (* Thousands of registrations (the per-peer rejoin-hook pattern) must
     fire in exact registration order on every toggle. *)
  let rng = Rng.create ~seed:83 in
  let c =
    Churn.create rng ~peers:3 ~mean_uptime:10. ~mean_downtime:10.
      ~initially_online_fraction:1.
  in
  let n = 5_000 in
  let order = ref [] in
  for i = 0 to n - 1 do
    Churn.on_toggle c (fun ~peer:_ ~now_online:_ ~time:_ -> order := i :: !order)
  done;
  Churn.toggle c 0 1.0;
  let got = List.rev !order in
  Alcotest.(check int) "every callback fired once" n (List.length got);
  List.iteri
    (fun slot i ->
      if slot <> i then
        Alcotest.failf "callback %d fired in slot %d (registration order broken)"
          i slot)
    got;
  (* A second toggle replays the same order, appended. *)
  Churn.toggle c 1 2.0;
  Alcotest.(check int) "second toggle fired them all again" (2 * n)
    (List.length !order)

let session_spec up down ~mean_uptime ~mean_downtime ~on =
  {
    Pdht_dist.Session.up;
    down;
    mean_uptime;
    mean_downtime;
    initially_online_fraction = on;
  }

let churn_trajectory c ~until =
  let engine = Pdht_sim.Engine.create () in
  Churn.attach c engine;
  Pdht_sim.Engine.run engine ~until;
  (Churn.session_changes c, List.init (Churn.peers c) (Churn.online c))

let test_churn_spec_exponential_equivalence () =
  (* An all-exponential spec must reproduce the classic constructor
     draw for draw: same seed, same trajectory. *)
  let classic =
    Churn.create (Rng.create ~seed:84) ~peers:200 ~mean_uptime:300.
      ~mean_downtime:100. ~initially_online_fraction:0.75
  in
  let spec =
    session_spec Pdht_dist.Session.Exponential Pdht_dist.Session.Exponential
      ~mean_uptime:300. ~mean_downtime:100. ~on:0.75
  in
  let via_spec = Churn.create_spec (Rng.create ~seed:84) ~peers:200 spec in
  let changes_a, states_a = churn_trajectory classic ~until:1000. in
  let changes_b, states_b = churn_trajectory via_spec ~until:1000. in
  Alcotest.(check int) "same transition count" changes_a changes_b;
  Alcotest.(check (list bool)) "same end states" states_a states_b

let test_churn_spec_heavy_tailed () =
  let spec =
    session_spec
      (Pdht_dist.Session.Weibull { shape = 0.6 })
      (Pdht_dist.Session.Weibull { shape = 0.6 })
      ~mean_uptime:300. ~mean_downtime:150. ~on:(2. /. 3.)
  in
  let c = Churn.create_spec (Rng.create ~seed:85) ~peers:1000 spec in
  Alcotest.(check (float 1e-9)) "availability from the spec means" (2. /. 3.)
    (Churn.availability c);
  let changes, states = churn_trajectory c ~until:3000. in
  Alcotest.(check bool) "transitions happened" true (changes > 1000);
  let frac =
    float_of_int (List.length (List.filter Fun.id states)) /. 1000.
  in
  Alcotest.(check (float 0.08)) "hovers near stationary availability" (2. /. 3.)
    frac

let test_churn_spec_validates () =
  let bad =
    session_spec Pdht_dist.Session.Exponential Pdht_dist.Session.Exponential
      ~mean_uptime:300. ~mean_downtime:100. ~on:1.5
  in
  match Churn.create_spec (Rng.create ~seed:86) ~peers:10 bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted an out-of-range online fraction"

(* ------------------------------------------------------------------ *)
(* Storage *)

let key i = Pdht_util.Hashing.hash_to_key (string_of_int i)

let test_storage_put_get () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:"a" ~now:0. ~ttl:10.;
  Alcotest.(check (option string)) "hit" (Some "a") (Storage.get s ~key:(key 1) ~now:5.);
  Alcotest.(check (option string)) "miss other key" None (Storage.get s ~key:(key 2) ~now:5.)

let test_storage_expiry () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:10.;
  Alcotest.(check (option int)) "live before ttl" (Some 1) (Storage.get s ~key:(key 1) ~now:9.9);
  Alcotest.(check (option int)) "expired at ttl" None (Storage.get s ~key:(key 1) ~now:10.)

let test_storage_get_does_not_refresh () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:10.;
  ignore (Storage.get s ~key:(key 1) ~now:9.);
  Alcotest.(check (option int)) "expired despite get" None (Storage.get s ~key:(key 1) ~now:11.)

let test_storage_refresh_extends () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:10.;
  ignore (Storage.get_and_refresh s ~key:(key 1) ~now:9. ~ttl:10.);
  Alcotest.(check (option int)) "alive past original expiry" (Some 1)
    (Storage.get s ~key:(key 1) ~now:15.);
  Alcotest.(check (option int)) "new expiry is 19" None (Storage.get s ~key:(key 1) ~now:19.)

let test_storage_overwrite_updates_value_and_ttl () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:"old" ~now:0. ~ttl:5.;
  Storage.put s ~key:(key 1) ~value:"new" ~now:4. ~ttl:5.;
  Alcotest.(check (option string)) "new value" (Some "new") (Storage.get s ~key:(key 1) ~now:8.)

let test_storage_capacity_eviction () =
  let s = Storage.create ~capacity:3 () in
  (* Keys with staggered expiries; inserting a 4th evicts the one
     closest to expiry. *)
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:5.;
  Storage.put s ~key:(key 2) ~value:2 ~now:0. ~ttl:50.;
  Storage.put s ~key:(key 3) ~value:3 ~now:0. ~ttl:500.;
  Storage.put s ~key:(key 4) ~value:4 ~now:1. ~ttl:100.;
  Alcotest.(check (option int)) "soonest evicted" None (Storage.get s ~key:(key 1) ~now:1.);
  Alcotest.(check (option int)) "others kept (2)" (Some 2) (Storage.get s ~key:(key 2) ~now:1.);
  Alcotest.(check (option int)) "others kept (3)" (Some 3) (Storage.get s ~key:(key 3) ~now:1.);
  Alcotest.(check (option int)) "new key stored" (Some 4) (Storage.get s ~key:(key 4) ~now:1.)

let test_storage_prefers_purging_expired () =
  let s = Storage.create ~capacity:2 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:1.;
  Storage.put s ~key:(key 2) ~value:2 ~now:0. ~ttl:100.;
  (* Key 1 has expired by now = 2; the insert purges it rather than
     evicting the live key 2. *)
  Storage.put s ~key:(key 3) ~value:3 ~now:2. ~ttl:100.;
  Alcotest.(check (option int)) "live key survives" (Some 2) (Storage.get s ~key:(key 2) ~now:2.);
  Alcotest.(check (option int)) "new key present" (Some 3) (Storage.get s ~key:(key 3) ~now:2.)

let test_storage_live_count_and_fold () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:5.;
  Storage.put s ~key:(key 2) ~value:2 ~now:0. ~ttl:50.;
  Alcotest.(check int) "two live" 2 (Storage.live_count s ~now:1.);
  Alcotest.(check int) "one live after expiry" 1 (Storage.live_count s ~now:10.);
  let sum = Storage.fold_live s ~now:10. ~init:0 ~f:(fun acc _ v -> acc + v) in
  Alcotest.(check int) "fold sees survivors" 2 sum

let test_storage_remove_and_expire () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:5.;
  Storage.put s ~key:(key 2) ~value:2 ~now:0. ~ttl:5.;
  Storage.remove s ~key:(key 1);
  Alcotest.(check (option int)) "removed" None (Storage.get s ~key:(key 1) ~now:0.);
  Alcotest.(check int) "expire purges the rest" 1 (Storage.expire s ~now:100.)

let test_storage_expiry_inspection () =
  let s = Storage.create ~capacity:10 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:2. ~ttl:5.;
  Alcotest.(check (option (float 1e-9))) "expiry instant" (Some 7.)
    (Storage.expiry s ~key:(key 1))

let test_storage_lru_eviction () =
  let s = Storage.create ~eviction:Storage.Evict_lru ~capacity:3 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:1000.;
  Storage.put s ~key:(key 2) ~value:2 ~now:1. ~ttl:1000.;
  Storage.put s ~key:(key 3) ~value:3 ~now:2. ~ttl:1000.;
  (* Touch key 1 so key 2 becomes the least recently used. *)
  ignore (Storage.get s ~key:(key 1) ~now:3.);
  Storage.put s ~key:(key 4) ~value:4 ~now:4. ~ttl:1000.;
  Alcotest.(check (option int)) "LRU victim gone" None (Storage.get s ~key:(key 2) ~now:4.);
  Alcotest.(check (option int)) "recently used kept" (Some 1) (Storage.get s ~key:(key 1) ~now:4.)

let test_storage_random_eviction_bounded_and_deterministic () =
  let run () =
    let s = Storage.create ~eviction:Storage.Evict_random ~seed:9 ~capacity:5 () in
    for i = 0 to 19 do
      Storage.put s ~key:(key i) ~value:i ~now:(float_of_int i) ~ttl:1000.
    done;
    Storage.fold_live s ~now:20. ~init:[] ~f:(fun acc k _ -> k :: acc)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "capacity respected" 5 (List.length a);
  Alcotest.(check bool) "deterministic in seed" true (a = b)

let live_keys s ~now =
  List.sort compare (Storage.fold_live s ~now ~init:[] ~f:(fun acc _ v -> v :: acc))

let test_storage_full_of_expired_purges_without_eviction () =
  (* A full store whose entries are ALL expired: the insert makes room
     purely by purging — the eviction policy must not run.  Evict_random
     exposes a policy call as an RNG draw, so a store that went through
     the all-expired insert must make the same later random choices as
     one that never held the expired entries at all. *)
  let fill_live s =
    Storage.put s ~key:(key 10) ~value:10 ~now:10. ~ttl:1000.;
    Storage.put s ~key:(key 11) ~value:11 ~now:10. ~ttl:1000.;
    Storage.put s ~key:(key 12) ~value:12 ~now:10. ~ttl:1000.;
    (* Overflow: the first genuine random eviction. *)
    Storage.put s ~key:(key 13) ~value:13 ~now:10. ~ttl:1000.
  in
  let a = Storage.create ~eviction:Storage.Evict_random ~seed:9 ~capacity:3 () in
  for i = 0 to 2 do
    Storage.put a ~key:(key i) ~value:i ~now:0. ~ttl:1.
  done;
  (* t = 10: everything above is expired; this put must succeed by
     purging alone. *)
  Storage.put a ~key:(key 10) ~value:10 ~now:10. ~ttl:1000.;
  Alcotest.(check (list int)) "only the new key survives" [ 10 ] (live_keys a ~now:10.);
  Storage.put a ~key:(key 11) ~value:11 ~now:10. ~ttl:1000.;
  Storage.put a ~key:(key 12) ~value:12 ~now:10. ~ttl:1000.;
  Storage.put a ~key:(key 13) ~value:13 ~now:10. ~ttl:1000.;
  let b = Storage.create ~eviction:Storage.Evict_random ~seed:9 ~capacity:3 () in
  fill_live b;
  Alcotest.(check (list int)) "purge did not consume the eviction RNG"
    (live_keys b ~now:10.) (live_keys a ~now:10.)

let test_storage_random_eviction_same_seed_stores_agree () =
  (* Two stores built with the same seed replay identical eviction
     choices under an identical operation sequence. *)
  let build () =
    let s = Storage.create ~eviction:Storage.Evict_random ~seed:41 ~capacity:4 () in
    for i = 0 to 29 do
      Storage.put s ~key:(key i) ~value:i ~now:(float_of_int i) ~ttl:1000.
    done;
    s
  in
  let a = build () and b = build () in
  Alcotest.(check (list int)) "same victims, same survivors"
    (live_keys b ~now:30.) (live_keys a ~now:30.);
  Alcotest.(check int) "bounded" 4 (List.length (live_keys a ~now:30.))

let test_storage_mem_does_not_touch () =
  let s = Storage.create ~eviction:Storage.Evict_lru ~capacity:2 () in
  Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:1000.;
  Storage.put s ~key:(key 2) ~value:2 ~now:1. ~ttl:1000.;
  (* A read-only probe of key 1 must not save it from LRU eviction. *)
  ignore (Storage.mem s ~key:(key 1) ~now:2.);
  Storage.put s ~key:(key 3) ~value:3 ~now:3. ~ttl:1000.;
  Alcotest.(check (option int)) "probe did not refresh recency" None
    (Storage.get s ~key:(key 1) ~now:3.)

let test_storage_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Storage.create: capacity must be >= 1")
    (fun () -> ignore (Storage.create ~capacity:0 () : int Storage.t));
  let s = Storage.create ~capacity:1 () in
  Alcotest.check_raises "ttl" (Invalid_argument "Storage.put: ttl must be positive")
    (fun () -> Storage.put s ~key:(key 1) ~value:1 ~now:0. ~ttl:0.)

(* ------------------------------------------------------------------ *)
(* Chord *)

let test_chord_successor_ordering () =
  let rng = Rng.create ~seed:90 in
  let c = Chord.create rng ~members:200 in
  (* The successor of any key has the smallest id >= key (or wraps). *)
  for _ = 1 to 100 do
    let k = Bitkey.random rng in
    let succ = Chord.successor_member c k in
    let id = Chord.id_of c succ in
    for m = 0 to 199 do
      let idm = Chord.id_of c m in
      if Bitkey.compare idm k >= 0 && Bitkey.compare id k >= 0 then
        Alcotest.(check bool) "no closer successor" true (Bitkey.compare id idm <= 0)
    done
  done

let test_chord_lookup_reaches_responsible () =
  let rng = Rng.create ~seed:91 in
  let c = Chord.create rng ~members:300 in
  for _ = 1 to 200 do
    let k = Bitkey.random rng in
    let source = Rng.int rng 300 in
    let o = Chord.lookup c ~online:all_online ~source ~key:k in
    Alcotest.(check (option int)) "reaches successor"
      (Some (Chord.successor_member c k)) o.Chord.responsible
  done

let test_chord_lookup_logarithmic () =
  let rng = Rng.create ~seed:92 in
  let c = Chord.create rng ~members:1024 in
  let total_hops = ref 0 in
  let trials = 300 in
  for _ = 1 to trials do
    let k = Bitkey.random rng in
    let o = Chord.lookup c ~online:all_online ~source:(Rng.int rng 1024) ~key:k in
    total_hops := !total_hops + o.Chord.hops
  done;
  let mean = float_of_int !total_hops /. float_of_int trials in
  (* Eq. 7 expectation: 0.5 * log2 1024 = 5 hops. *)
  Alcotest.(check bool) (Printf.sprintf "mean hops %.2f within [3,8]" mean) true
    (mean >= 3. && mean <= 8.)

let test_chord_lookup_self_responsible () =
  let rng = Rng.create ~seed:93 in
  let c = Chord.create rng ~members:50 in
  let m = 7 in
  let o = Chord.lookup c ~online:all_online ~source:m ~key:(Chord.id_of c m) in
  Alcotest.(check (option int)) "own id" (Some m) o.Chord.responsible;
  Alcotest.(check int) "zero messages" 0 o.Chord.messages

let test_chord_lookup_under_churn () =
  let rng = Rng.create ~seed:94 in
  let c = Chord.create rng ~members:300 in
  let offline = Array.init 300 (fun _ -> Rng.unit_float rng < 0.3) in
  let online p = not offline.(p) in
  let successes = ref 0 in
  let attempts = ref 0 in
  for _ = 1 to 200 do
    let source = Rng.int rng 300 in
    if online source then begin
      incr attempts;
      let k = Bitkey.random rng in
      let o = Chord.lookup c ~online ~source ~key:k in
      match o.Chord.responsible with
      | Some r ->
          Alcotest.(check bool) "responsible is online" true (online r);
          incr successes
      | None -> ()
    end
  done;
  Alcotest.(check bool) "lookups survive 30% churn" true (!successes = !attempts)

let test_chord_successors () =
  let rng = Rng.create ~seed:95 in
  let c = Chord.create rng ~members:50 in
  let k = Bitkey.random rng in
  let succ = Chord.successors c k ~k:5 in
  Alcotest.(check int) "five successors" 5 (Array.length succ);
  Alcotest.(check int) "first is the owner" (Chord.successor_member c k) succ.(0);
  let distinct = Array.to_list succ |> List.sort_uniq compare in
  Alcotest.(check int) "distinct" 5 (List.length distinct);
  Alcotest.(check int) "capped at members" 50 (Array.length (Chord.successors c k ~k:100))

let test_chord_probe_repairs_fingers () =
  let rng = Rng.create ~seed:96 in
  let c = Chord.create rng ~members:200 in
  let offline = Array.make 200 false in
  (* Knock out a third of members, then probe heavily. *)
  for m = 0 to 199 do
    if m mod 3 = 0 then offline.(m) <- true
  done;
  let online p = not offline.(p) in
  for m = 0 to 199 do
    if online m then ignore (Chord.probe_and_repair c rng ~online ~peer:m ~probes:400)
  done;
  (* After heavy probing most finger entries of online peers are online. *)
  let stale = ref 0 and total = ref 0 in
  for m = 0 to 199 do
    if online m then
      Array.iter
        (fun f ->
          incr total;
          if not (online f) then incr stale)
        (Chord.finger_targets c m)
  done;
  let stale_frac = float_of_int !stale /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "stale fraction %.3f < 0.05" stale_frac)
    true (stale_frac < 0.05)

let test_chord_expected_lookup_messages () =
  Alcotest.(check (float 1e-9)) "Eq. 7 at 1024" 5.
    (Chord.expected_lookup_messages ~members:1024)

let test_chord_single_member () =
  let rng = Rng.create ~seed:97 in
  let c = Chord.create rng ~members:1 in
  let o = Chord.lookup c ~online:all_online ~source:0 ~key:(Bitkey.random rng) in
  Alcotest.(check (option int)) "self" (Some 0) o.Chord.responsible

(* ------------------------------------------------------------------ *)
(* P-Grid *)

let test_pgrid_paths_partition_keyspace () =
  let rng = Rng.create ~seed:100 in
  let g = Pgrid.build rng ~members:64 ~leaf_size:1 ~refs_per_level:3 in
  (* Every key has exactly one responsible leaf. *)
  for _ = 1 to 200 do
    let k = Bitkey.random rng in
    let peers = Pgrid.responsible_peers g k in
    Alcotest.(check int) "singleton leaf" 1 (Array.length peers);
    Alcotest.(check bool) "path prefixes key" true
      (let path = Pgrid.path_of g peers.(0) in
       let rec check i =
         i >= String.length path || (Bitkey.bit k i = (path.[i] = '1') && check (i + 1))
       in
       check 0)
  done

let test_pgrid_balanced_depth () =
  let rng = Rng.create ~seed:101 in
  let g = Pgrid.build rng ~members:128 ~leaf_size:1 ~refs_per_level:3 in
  for m = 0 to 127 do
    Alcotest.(check int) "balanced tree depth" 7 (Pgrid.path_length g m)
  done;
  Alcotest.(check int) "max depth" 7 (Pgrid.max_path_length g)

let test_pgrid_leaf_groups_replicate () =
  let rng = Rng.create ~seed:102 in
  let g = Pgrid.build rng ~members:100 ~leaf_size:10 ~refs_per_level:3 in
  let k = Bitkey.random rng in
  let group = Pgrid.responsible_peers g k in
  Alcotest.(check bool) "group within leaf_size bound" true
    (Array.length group >= 1 && Array.length group <= 10);
  (* All group members share the same path. *)
  let path = Pgrid.path_of g group.(0) in
  Array.iter
    (fun m -> Alcotest.(check string) "same path" path (Pgrid.path_of g m))
    group

let test_pgrid_lookup_reaches_leaf () =
  let rng = Rng.create ~seed:103 in
  let g = Pgrid.build rng ~members:256 ~leaf_size:1 ~refs_per_level:3 in
  for _ = 1 to 200 do
    let k = Bitkey.random rng in
    let source = Rng.int rng 256 in
    let o = Pgrid.lookup g rng ~online:all_online ~source ~key:k in
    match o.Pgrid.responsible with
    | Some r ->
        let expected = Pgrid.responsible_peers g k in
        Alcotest.(check bool) "landed in responsible leaf" true
          (Array.exists (fun m -> m = r) expected)
    | None -> Alcotest.fail "lookup failed with everyone online"
  done

let test_pgrid_lookup_hop_bound () =
  let rng = Rng.create ~seed:104 in
  let g = Pgrid.build rng ~members:256 ~leaf_size:1 ~refs_per_level:3 in
  for _ = 1 to 100 do
    let k = Bitkey.random rng in
    let o = Pgrid.lookup g rng ~online:all_online ~source:(Rng.int rng 256) ~key:k in
    Alcotest.(check bool) "hops <= max path length" true
      (o.Pgrid.hops <= Pgrid.max_path_length g)
  done

let test_pgrid_lookup_under_churn () =
  let rng = Rng.create ~seed:105 in
  let g = Pgrid.build rng ~members:256 ~leaf_size:4 ~refs_per_level:5 in
  let offline = Array.init 256 (fun _ -> Rng.unit_float rng < 0.25) in
  let online p = not offline.(p) in
  let ok = ref 0 and attempts = ref 0 in
  for _ = 1 to 300 do
    let source = Rng.int rng 256 in
    if online source then begin
      incr attempts;
      let k = Bitkey.random rng in
      let o = Pgrid.lookup g rng ~online ~source ~key:k in
      match o.Pgrid.responsible with
      | Some r -> if online r then incr ok
      | None -> ()
    end
  done;
  (* With 5 refs per level and 25% churn, the vast majority of lookups
     must still succeed. *)
  let rate = float_of_int !ok /. float_of_int !attempts in
  Alcotest.(check bool) (Printf.sprintf "success rate %.2f > 0.9" rate) true (rate > 0.9)

let test_pgrid_refs_point_to_complement () =
  let rng = Rng.create ~seed:106 in
  let g = Pgrid.build rng ~members:64 ~leaf_size:2 ~refs_per_level:3 in
  for m = 0 to 63 do
    let path = Pgrid.path_of g m in
    for l = 0 to String.length path - 1 do
      Array.iter
        (fun r ->
          let rpath = Pgrid.path_of g r in
          Alcotest.(check string) "agrees on prefix" (String.sub path 0 l)
            (String.sub rpath 0 l);
          Alcotest.(check bool) "differs at level bit" true (rpath.[l] <> path.[l]))
        (Pgrid.refs_at g ~peer:m ~level:l)
    done
  done

let test_pgrid_probe_repair () =
  let rng = Rng.create ~seed:107 in
  let g = Pgrid.build rng ~members:128 ~leaf_size:2 ~refs_per_level:4 in
  let offline = Array.init 128 (fun i -> i mod 4 = 0) in
  let online p = not offline.(p) in
  for m = 0 to 127 do
    if online m then ignore (Pgrid.probe_and_repair g rng ~online ~peer:m ~probes:300)
  done;
  let stale = ref 0 and total = ref 0 in
  for m = 0 to 127 do
    if online m then
      for l = 0 to Pgrid.path_length g m - 1 do
        Array.iter
          (fun r ->
            incr total;
            if not (online r) then incr stale)
          (Pgrid.refs_at g ~peer:m ~level:l)
      done
  done;
  let frac = float_of_int !stale /. float_of_int !total in
  Alcotest.(check bool) (Printf.sprintf "stale %.3f < 0.08" frac) true (frac < 0.08)

let test_pgrid_single_member () =
  let rng = Rng.create ~seed:108 in
  let g = Pgrid.build rng ~members:1 ~leaf_size:1 ~refs_per_level:1 in
  Alcotest.(check string) "empty path" "" (Pgrid.path_of g 0);
  let o = Pgrid.lookup g rng ~online:all_online ~source:0 ~key:(Bitkey.random rng) in
  Alcotest.(check (option int)) "self-lookup" (Some 0) o.Pgrid.responsible

(* ------------------------------------------------------------------ *)
(* Dynamic Chord (joins, leaves, stabilization) *)

module Chord_dynamic = Pdht_dht.Chord_dynamic

let grow_ring rng t ~target =
  let first = Chord_dynamic.bootstrap t in
  let members = ref [ first ] in
  while Chord_dynamic.node_count t < target do
    let alive = List.filter (Chord_dynamic.is_member t) !members in
    let via = List.nth alive (Rng.int rng (List.length alive)) in
    (match Chord_dynamic.join t ~via with
    | Ok (node, _) -> members := node :: !members
    | Error _ -> ());
    ignore (Chord_dynamic.stabilize t rng)
  done;
  for _ = 1 to 15 do
    ignore (Chord_dynamic.stabilize t rng)
  done;
  !members

let correct_lookup_count rng t members ~trials =
  let alive = List.filter (Chord_dynamic.is_member t) members in
  let ok = ref 0 in
  for _ = 1 to trials do
    let key = Bitkey.random rng in
    let src = List.nth alive (Rng.int rng (List.length alive)) in
    let o = Chord_dynamic.lookup t ~source:src ~key in
    if o.Chord_dynamic.responsible = Chord_dynamic.ideal_responsible t key then incr ok
  done;
  !ok

let test_dynamic_bootstrap_and_join () =
  let rng = Rng.create ~seed:150 in
  let t = Chord_dynamic.create rng ~capacity:50 () in
  let members = grow_ring rng t ~target:30 in
  Alcotest.(check int) "thirty nodes" 30 (Chord_dynamic.node_count t);
  Alcotest.(check bool) "ring consistent after growth" true (Chord_dynamic.ring_consistent t);
  Alcotest.(check int) "all lookups correct" 100 (correct_lookup_count rng t members ~trials:100)

let test_dynamic_graceful_leave () =
  let rng = Rng.create ~seed:151 in
  let t = Chord_dynamic.create rng ~capacity:40 () in
  let members = grow_ring rng t ~target:25 in
  let alive = List.filter (Chord_dynamic.is_member t) members in
  List.iteri (fun i m -> if i mod 5 = 0 then ignore (Chord_dynamic.leave t ~node:m)) alive;
  for _ = 1 to 10 do
    ignore (Chord_dynamic.stabilize t rng)
  done;
  Alcotest.(check int) "five departed" 20 (Chord_dynamic.node_count t);
  Alcotest.(check bool) "still consistent" true (Chord_dynamic.ring_consistent t);
  Alcotest.(check int) "lookups stay correct" 100 (correct_lookup_count rng t members ~trials:100)

let test_dynamic_crash_recovery () =
  let rng = Rng.create ~seed:152 in
  let t = Chord_dynamic.create rng ~capacity:120 () in
  let members = grow_ring rng t ~target:80 in
  let alive = List.filter (Chord_dynamic.is_member t) members in
  List.iteri (fun i m -> if i mod 4 = 0 then Chord_dynamic.crash t ~node:m) alive;
  Alcotest.(check bool) "broken right after crashes" false (Chord_dynamic.ring_consistent t);
  for _ = 1 to 25 do
    ignore (Chord_dynamic.stabilize t rng)
  done;
  Alcotest.(check bool) "stabilization heals the ring" true (Chord_dynamic.ring_consistent t);
  Alcotest.(check int) "lookups correct after healing" 100
    (correct_lookup_count rng t members ~trials:100)

let test_dynamic_join_via_dead_rejected () =
  let rng = Rng.create ~seed:153 in
  let t = Chord_dynamic.create rng ~capacity:10 () in
  let first = Chord_dynamic.bootstrap t in
  Chord_dynamic.crash t ~node:first;
  match Chord_dynamic.join t ~via:first with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "joining via a dead node must fail"

let test_dynamic_capacity_limit () =
  let rng = Rng.create ~seed:154 in
  let t = Chord_dynamic.create rng ~capacity:2 () in
  let first = Chord_dynamic.bootstrap t in
  (match Chord_dynamic.join t ~via:first with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  for _ = 1 to 5 do
    ignore (Chord_dynamic.stabilize t rng)
  done;
  match Chord_dynamic.join t ~via:first with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ring beyond capacity"

(* ------------------------------------------------------------------ *)
(* P-Grid bootstrap *)

module Bootstrap = Pdht_dht.Pgrid_bootstrap

let converged_bootstrap ~seed ~members ~meetings =
  let rng = Rng.create ~seed in
  let t = Bootstrap.create ~members () in
  Bootstrap.run_exchanges t rng ~meetings;
  (rng, t)

let test_bootstrap_initial_state () =
  let t = Bootstrap.create ~members:10 () in
  for p = 0 to 9 do
    Alcotest.(check string) "empty path" "" (Bootstrap.path_of t p)
  done;
  (* With empty paths, everyone is responsible for everything. *)
  let rng = Rng.create ~seed:140 in
  Alcotest.(check int) "all responsible" 10
    (Array.length (Bootstrap.responsible_peers t (Bitkey.random rng)))

let test_bootstrap_coverage_invariant () =
  (* At every stage of the bootstrap every key keeps a responsible
     peer — splits and specializations never abandon a region. *)
  let rng = Rng.create ~seed:141 in
  let t = Bootstrap.create ~members:64 () in
  for _ = 1 to 20 do
    Bootstrap.run_exchanges t rng ~meetings:50;
    for _ = 1 to 50 do
      let key = Bitkey.random rng in
      Alcotest.(check bool) "some peer responsible" true
        (Array.length (Bootstrap.responsible_peers t key) > 0)
    done
  done

let test_bootstrap_converges_to_log_depth () =
  let _, t = converged_bootstrap ~seed:142 ~members:256 ~meetings:4_000 in
  let s = Bootstrap.stats t in
  (* log2 256 = 8; allow a generous band for the unbalanced basic
     protocol. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean depth %.2f in [6,11]" s.Bootstrap.mean_path_length)
    true
    (s.Bootstrap.mean_path_length >= 6. && s.Bootstrap.mean_path_length <= 11.);
  Alcotest.(check bool) "most paths distinct" true (s.Bootstrap.distinct_paths >= 240)

let test_bootstrap_lookups_succeed () =
  let rng, t = converged_bootstrap ~seed:143 ~members:256 ~meetings:4_000 in
  let rate = Bootstrap.lookup_success_rate t rng ~trials:300 in
  Alcotest.(check bool) (Printf.sprintf "success %.3f > 0.95" rate) true (rate > 0.95)

let test_bootstrap_lookups_succeed_early () =
  (* Even a half-built trie routes: coverage holds throughout. *)
  let rng, t = converged_bootstrap ~seed:144 ~members:256 ~meetings:600 in
  let rate = Bootstrap.lookup_success_rate t rng ~trials:300 in
  Alcotest.(check bool) (Printf.sprintf "early success %.3f > 0.8" rate) true (rate > 0.8)

let test_bootstrap_refs_point_across () =
  let _, t = converged_bootstrap ~seed:145 ~members:128 ~meetings:3_000 in
  (* A reference recorded at level l was on the complementary side at
     exchange time; after further specialization it must still agree on
     the first l bits or have moved deeper only. *)
  for p = 0 to 127 do
    let path = Bootstrap.path_of t p in
    for l = 0 to min (String.length path - 1) 5 do
      Array.iter
        (fun r ->
          let rpath = Bootstrap.path_of t r in
          Alcotest.(check bool) "ref still shares the level prefix" true
            (String.length rpath >= l
            && String.equal (String.sub rpath 0 l) (String.sub path 0 l)))
        (Bootstrap.refs_at t ~peer:p ~level:l)
    done
  done

let test_bootstrap_single_member () =
  let rng = Rng.create ~seed:146 in
  let t = Bootstrap.create ~members:1 () in
  Bootstrap.run_exchanges t rng ~meetings:100;
  Alcotest.(check string) "alone, never splits" "" (Bootstrap.path_of t 0)

(* ------------------------------------------------------------------ *)
(* Kademlia *)

module Kademlia = Pdht_dht.Kademlia

let test_kademlia_closest_members_ordering () =
  let rng = Rng.create ~seed:120 in
  let k = Kademlia.create rng ~members:100 () in
  let key = Bitkey.random rng in
  let closest = Kademlia.closest_members k key ~k:10 in
  Alcotest.(check int) "ten members" 10 (Array.length closest);
  (* Nearest-first in XOR distance, and truly the global minimum. *)
  for i = 0 to 8 do
    Alcotest.(check bool) "sorted by xor distance" true
      (Bitkey.xor_distance key (Kademlia.id_of k closest.(i))
       <= Bitkey.xor_distance key (Kademlia.id_of k closest.(i + 1)))
  done;
  for m = 0 to 99 do
    if not (Array.exists (fun c -> c = m) closest) then
      Alcotest.(check bool) "no outsider is closer" true
        (Bitkey.xor_distance key (Kademlia.id_of k m)
         >= Bitkey.xor_distance key (Kademlia.id_of k closest.(9)))
  done

let test_kademlia_lookup_reaches_closest () =
  let rng = Rng.create ~seed:121 in
  let k = Kademlia.create rng ~members:300 () in
  let ok = ref 0 in
  for _ = 1 to 200 do
    let key = Bitkey.random rng in
    let source = Rng.int rng 300 in
    let o = Kademlia.lookup k rng ~online:all_online ~source ~key in
    let expected = (Kademlia.closest_members k key ~k:1).(0) in
    if o.Kademlia.responsible = Some expected then incr ok
  done;
  Alcotest.(check int) "always converges to the XOR-closest member" 200 !ok

let test_kademlia_lookup_logarithmic_rounds () =
  let rng = Rng.create ~seed:122 in
  let k = Kademlia.create rng ~members:1024 () in
  let rounds = ref 0 in
  for _ = 1 to 100 do
    let key = Bitkey.random rng in
    let o = Kademlia.lookup k rng ~online:all_online ~source:(Rng.int rng 1024) ~key in
    rounds := !rounds + o.Kademlia.hops
  done;
  let mean = float_of_int !rounds /. 100. in
  Alcotest.(check bool) (Printf.sprintf "mean rounds %.2f within [1,7]" mean) true
    (mean >= 1. && mean <= 7.)

let test_kademlia_lookup_under_churn () =
  let rng = Rng.create ~seed:123 in
  let k = Kademlia.create rng ~members:256 () in
  let offline = Array.init 256 (fun _ -> Rng.unit_float rng < 0.2) in
  let online p = not offline.(p) in
  let ok = ref 0 and attempts = ref 0 in
  for _ = 1 to 200 do
    let source = Rng.int rng 256 in
    if online source then begin
      incr attempts;
      let key = Bitkey.random rng in
      let o = Kademlia.lookup k rng ~online ~source ~key in
      if o.Kademlia.responsible <> None then incr ok
    end
  done;
  let rate = float_of_int !ok /. float_of_int !attempts in
  Alcotest.(check bool) (Printf.sprintf "success %.2f > 0.95 at 20%% churn" rate) true
    (rate > 0.95)

let test_kademlia_routing_table_bounded () =
  let rng = Rng.create ~seed:124 in
  let k = Kademlia.create rng ~members:200 ~bucket_size:5 () in
  for m = 0 to 199 do
    Alcotest.(check bool) "buckets bounded" true
      (Kademlia.routing_table_size k m <= 5 * Bitkey.width);
    Alcotest.(check bool) "has some buckets" true (Kademlia.bucket_count k m > 0)
  done

let test_kademlia_probe_repair () =
  let rng = Rng.create ~seed:125 in
  let k = Kademlia.create rng ~members:128 ~bucket_size:4 () in
  let offline = Array.init 128 (fun i -> i mod 4 = 0) in
  let online p = not offline.(p) in
  for m = 0 to 127 do
    if online m then ignore (Kademlia.probe_and_repair k rng ~online ~peer:m ~probes:200)
  done;
  (* Probing must have repaired most of the stale entries it can find a
     same-bucket replacement for. *)
  let o = Kademlia.lookup k rng ~online ~source:1 ~key:(Bitkey.random rng) in
  Alcotest.(check bool) "lookup still works after repair" true
    (o.Kademlia.responsible <> None)

(* ------------------------------------------------------------------ *)
(* Kademlia live routing tables *)

let test_kademlia_live_enable_consumes_no_rng () =
  let rng_a = Rng.create ~seed:220 and rng_b = Rng.create ~seed:220 in
  let _frozen = Kademlia.create rng_a ~members:64 () in
  let live = Kademlia.create rng_b ~members:64 () in
  Kademlia.enable_live_routing live;
  Alcotest.(check bool) "live mode on" true (Kademlia.live_routing live);
  (* Both streams must sit at exactly the same position. *)
  Alcotest.(check int) "enabling drew nothing" (Rng.int rng_a 1_000_000)
    (Rng.int rng_b 1_000_000);
  Kademlia.enable_live_routing live;
  Alcotest.(check bool) "idempotent" true (Kademlia.live_routing live)

let test_kademlia_live_contacts_maintain_buckets () =
  let rng = Rng.create ~seed:221 in
  let k = Kademlia.create rng ~members:128 ~bucket_size:4 () in
  Kademlia.enable_live_routing k;
  for _ = 1 to 200 do
    ignore
      (Kademlia.lookup k rng ~online:all_online ~source:(Rng.int rng 128)
         ~key:(Bitkey.random rng))
  done;
  match Kademlia.live_stats k with
  | None -> Alcotest.fail "live stats missing in live mode"
  | Some s ->
      Alcotest.(check bool) "contacts promoted entries" true
        (s.Kademlia.promotions > 0);
      Alcotest.(check int) "nobody dead, nobody evicted" 0 s.Kademlia.evictions;
      (* Full buckets probed their LRS entries; everyone answered, so
         each probe cost exactly one message. *)
      Alcotest.(check int) "alive probes cost one message each"
        s.Kademlia.probes s.Kademlia.probe_messages;
      Alcotest.(check int) "probe cost drains once" s.Kademlia.probe_messages
        (Kademlia.drain_probe_cost k);
      Alcotest.(check int) "second drain is empty" 0 (Kademlia.drain_probe_cost k)

let test_kademlia_live_dead_entries_churned_out () =
  let rng = Rng.create ~seed:222 in
  let members = 256 in
  let k = Kademlia.create rng ~members ~bucket_size:4 () in
  Kademlia.enable_live_routing ~probe_retries:2 k;
  let offline = Array.init members (fun _ -> Rng.unit_float rng < 0.3) in
  let online p = not offline.(p) in
  (* Lookups route around dead contacts and record them. *)
  for _ = 1 to 150 do
    let source = Rng.int rng members in
    if online source then
      ignore (Kademlia.lookup k rng ~online ~source ~key:(Bitkey.random rng))
  done;
  let contacts0, dead0 = Kademlia.contact_stats k in
  Alcotest.(check bool) "lookups saw stale routes" true
    (contacts0 > 0 && dead0 > 0);
  (* Maintenance probing then churns the dead entries out... *)
  for _ = 1 to 3 do
    for m = 0 to members - 1 do
      if online m then
        ignore (Kademlia.probe_and_repair k rng ~online ~peer:m ~probes:4)
    done
  done;
  (match Kademlia.live_stats k with
  | None -> Alcotest.fail "live stats missing"
  | Some s ->
      Alcotest.(check bool) "dead entries evicted" true (s.Kademlia.evictions > 0);
      Alcotest.(check bool) "dead probes cost the 3-attempt ladder" true
        (s.Kademlia.probe_messages > s.Kademlia.probes));
  (* ...so fresh lookups hit fewer of them. *)
  for _ = 1 to 150 do
    let source = Rng.int rng members in
    if online source then
      ignore (Kademlia.lookup k rng ~online ~source ~key:(Bitkey.random rng))
  done;
  let contacts1, dead1 = Kademlia.contact_stats k in
  let rate0 = float_of_int dead0 /. float_of_int contacts0 in
  let rate1 =
    float_of_int (dead1 - dead0) /. float_of_int (contacts1 - contacts0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "stale-route rate dropped (%.3f -> %.3f)" rate0 rate1)
    true (rate1 < rate0)

let test_kademlia_live_tables_survive_and_recover () =
  (* Two-phase churn discipline.  Phase 1: lookups alone never shrink a
     table — a lookup timeout demotes the entry to least-recently-seen
     instead of dropping it (weak evidence), and a contact-driven probe
     only ever *replaces* a dead LRS with the newcomer.  Phase 2:
     maintenance probes may evict confirmed-dead entries outright
     (shrinking sparse buckets while their range is offline), but once
     churn heals, contact inserts and refresh sweeps grow every table
     back to at least its original size. *)
  let rng = Rng.create ~seed:223 in
  let members = 128 in
  let k = Kademlia.create rng ~members ~bucket_size:4 () in
  Kademlia.enable_live_routing k;
  let before = Array.init members (Kademlia.routing_table_size k) in
  let offline = Array.init members (fun _ -> Rng.unit_float rng < 0.6) in
  let online p = not offline.(p) in
  (* Phase 1: lookup traffic only. *)
  for _ = 1 to 3 do
    for m = 0 to members - 1 do
      if online m then
        ignore (Kademlia.lookup k rng ~online ~source:m ~key:(Bitkey.random rng))
    done
  done;
  for m = 0 to members - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "member %d kept its entries under lookups" m)
      true
      (Kademlia.routing_table_size k m >= before.(m))
  done;
  (* Phase 2: maintenance probes under churn, then the churn heals. *)
  for _ = 1 to 5 do
    for m = 0 to members - 1 do
      if online m then begin
        ignore (Kademlia.lookup k rng ~online ~source:m ~key:(Bitkey.random rng));
        ignore (Kademlia.probe_and_repair k rng ~online ~peer:m ~probes:8)
      end
    done
  done;
  (* Sweep until every table is back to size (the first sweep only
     resets the touched flags; later ones back-fill each still-untouched
     range by bounded sampling, so a sparse range can need several
     passes before the sampler hits its lone member). *)
  let recovered () =
    let ok = ref true in
    for m = 0 to members - 1 do
      if Kademlia.routing_table_size k m < before.(m) then ok := false
    done;
    !ok
  in
  let sweeps = ref 0 in
  while (not (recovered ())) && !sweeps < 50 do
    incr sweeps;
    ignore (Kademlia.refresh_sweep k rng ~online:all_online)
  done;
  for m = 0 to members - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "member %d table recovered after churn" m)
      true
      (Kademlia.routing_table_size k m >= before.(m))
  done

let test_kademlia_refresh_sweep () =
  let rng = Rng.create ~seed:224 in
  let frozen = Kademlia.create rng ~members:64 () in
  Alcotest.(check int) "frozen mode never refreshes" 0
    (Kademlia.refresh_sweep frozen rng ~online:all_online);
  let k = Kademlia.create rng ~members:64 ~bucket_size:4 () in
  Kademlia.enable_live_routing k;
  (* Enabling marks nothing touched, so the first sweep refreshes every
     non-empty range. *)
  let cost = Kademlia.refresh_sweep k rng ~online:all_online in
  Alcotest.(check bool) "stale ranges refreshed" true (cost > 0);
  match Kademlia.live_stats k with
  | None -> Alcotest.fail "live stats missing"
  | Some s -> Alcotest.(check int) "cost accounted" cost s.Kademlia.refresh_messages

(* ------------------------------------------------------------------ *)
(* Pastry *)

module Pastry = Pdht_dht.Pastry

let test_pastry_numerically_closest () =
  let rng = Rng.create ~seed:130 in
  let p = Pastry.create rng ~members:200 () in
  for _ = 1 to 100 do
    let key = Bitkey.random rng in
    let owner = Pastry.numerically_closest p key in
    let group = Pastry.replica_group p key ~k:1 in
    Alcotest.(check int) "replica_group head = owner" owner group.(0)
  done

let test_pastry_lookup_reaches_owner () =
  let rng = Rng.create ~seed:131 in
  let p = Pastry.create rng ~members:300 () in
  let ok = ref 0 in
  for _ = 1 to 200 do
    let key = Bitkey.random rng in
    let source = Rng.int rng 300 in
    let o = Pastry.lookup p rng ~online:all_online ~source ~key in
    if o.Pastry.responsible = Some (Pastry.numerically_closest p key) then incr ok
  done;
  Alcotest.(check int) "always reaches the numerically closest" 200 !ok

let test_pastry_lookup_prefix_speed () =
  let rng = Rng.create ~seed:132 in
  let p = Pastry.create rng ~members:1024 () in
  let hops = ref 0 in
  for _ = 1 to 100 do
    let key = Bitkey.random rng in
    let o = Pastry.lookup p rng ~online:all_online ~source:(Rng.int rng 1024) ~key in
    hops := !hops + o.Pastry.hops
  done;
  let mean = float_of_int !hops /. 100. in
  (* Base-4 digits: ~log4(1024) = 5 hops; allow generous slack. *)
  Alcotest.(check bool) (Printf.sprintf "mean hops %.2f within [2,8]" mean) true
    (mean >= 2. && mean <= 8.)

let test_pastry_leaf_set_shape () =
  let rng = Rng.create ~seed:133 in
  let p = Pastry.create rng ~members:100 ~leaf_set_size:4 () in
  for m = 0 to 99 do
    let ls = Pastry.leaf_set p m in
    Alcotest.(check bool) "bounded" true (Array.length ls <= 8);
    Alcotest.(check bool) "non-empty" true (Array.length ls > 0);
    Array.iter (fun x -> Alcotest.(check bool) "no self" true (x <> m)) ls
  done

let test_pastry_lookup_under_churn () =
  let rng = Rng.create ~seed:134 in
  let p = Pastry.create rng ~members:256 () in
  let offline = Array.init 256 (fun _ -> Rng.unit_float rng < 0.2) in
  let online q = not offline.(q) in
  let ok = ref 0 and attempts = ref 0 in
  for _ = 1 to 200 do
    let source = Rng.int rng 256 in
    if online source then begin
      incr attempts;
      let key = Bitkey.random rng in
      let o = Pastry.lookup p rng ~online ~source ~key in
      if o.Pastry.responsible <> None then incr ok
    end
  done;
  let rate = float_of_int !ok /. float_of_int !attempts in
  Alcotest.(check bool) (Printf.sprintf "success %.2f > 0.9 at 20%% churn" rate) true
    (rate > 0.9)

let test_pastry_replica_group_distinct () =
  let rng = Rng.create ~seed:135 in
  let p = Pastry.create rng ~members:64 () in
  let key = Bitkey.random rng in
  let group = Pastry.replica_group p key ~k:10 in
  let distinct = Array.to_list group |> List.sort_uniq compare in
  Alcotest.(check int) "distinct members" 10 (List.length distinct)

(* ------------------------------------------------------------------ *)
(* Facade + maintenance *)

let test_dht_facade_backends_agree_on_interface () =
  List.iter
    (fun backend ->
      let rng = Rng.create ~seed:110 in
      let dht = Dht.create rng ~backend ~members:64 ~leaf_size:4 () in
      Alcotest.(check int) "members" 64 (Dht.members dht);
      let k = Bitkey.random rng in
      let o = Dht.lookup dht rng ~online:all_online ~source:0 ~key:k in
      Alcotest.(check bool) "lookup succeeds" true (o.Dht.responsible <> None);
      let group = Dht.replica_group dht ~repl:4 k in
      Alcotest.(check bool) "replica group non-empty" true (Array.length group >= 1);
      Alcotest.(check bool) "routing table non-empty" true (Dht.routing_table_size dht 0 > 0);
      (* The lookup's answer must belong to the key's replica group (for
         Chord under no churn it IS the head of the group). *)
      match o.Dht.responsible with
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: responsible inside replica group" (Dht.backend_label backend))
            true
            (Array.exists (fun m -> m = r) (Dht.replica_group dht ~repl:8 k))
      | None -> ())
    [ Dht.Chord_backend; Dht.Pgrid_backend; Dht.Kademlia_backend; Dht.Pastry_backend ]

let test_dht_tiny_populations () =
  (* Every backend must behave with 1, 2 and 3 members. *)
  List.iter
    (fun backend ->
      List.iter
        (fun members ->
          let rng = Rng.create ~seed:(160 + members) in
          let dht = Dht.create rng ~backend ~members ~leaf_size:1 () in
          let key = Bitkey.random rng in
          let o = Dht.lookup dht rng ~online:all_online ~source:0 ~key in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d lookup resolves" (Dht.backend_label backend) members)
            true (o.Dht.responsible <> None);
          Alcotest.(check bool) "group non-empty" true
            (Array.length (Dht.replica_group dht ~repl:2 key) >= 1))
        [ 1; 2; 3 ])
    [ Dht.Chord_backend; Dht.Pgrid_backend; Dht.Kademlia_backend; Dht.Pastry_backend ]

let test_dht_backend_labels () =
  Alcotest.(check (list string)) "labels"
    [ "chord"; "p-grid"; "kademlia"; "pastry" ]
    (List.map Dht.backend_label
       [ Dht.Chord_backend; Dht.Pgrid_backend; Dht.Kademlia_backend; Dht.Pastry_backend ])

let test_dht_expected_lookup_messages () =
  let rng = Rng.create ~seed:161 in
  let dht = Dht.create rng ~backend:Dht.Chord_backend ~members:1024 () in
  Alcotest.(check (float 1e-9)) "Eq. 7 through the facade" 5.
    (Dht.expected_lookup_messages dht)

let test_pgrid_leaf_size_exceeds_members () =
  (* leaf_size larger than the population: a single leaf holding
     everyone, empty paths, every lookup is a local hit. *)
  let rng = Rng.create ~seed:162 in
  let g = Pgrid.build rng ~members:5 ~leaf_size:50 ~refs_per_level:3 in
  Alcotest.(check int) "single leaf" 5 (Array.length (Pgrid.responsible_peers g (Bitkey.random rng)));
  let o = Pgrid.lookup g rng ~online:all_online ~source:2 ~key:(Bitkey.random rng) in
  Alcotest.(check (option int)) "self-answer" (Some 2) o.Pgrid.responsible;
  Alcotest.(check int) "zero messages" 0 o.Pgrid.messages

let test_dht_chord_replica_group_size () =
  let rng = Rng.create ~seed:111 in
  let dht = Dht.create rng ~backend:Dht.Chord_backend ~members:64 () in
  let k = Bitkey.random rng in
  Alcotest.(check int) "exactly repl successors" 8
    (Array.length (Dht.replica_group dht ~repl:8 k))

let test_maintenance_rates () =
  Alcotest.(check (float 1e-9)) "env from 17000-peer trace"
    (1. /. (Float.log 17000. /. Float.log 2.))
    (Maintenance.env_from_trace ~maintenance_rate:1.0 ~members:17_000);
  let env = Maintenance.env_from_trace ~maintenance_rate:1.0 ~members:17_000 in
  Alcotest.(check (float 1e-6)) "round trip: 1 msg/peer/s" 1.0
    (Maintenance.probes_per_peer_per_second ~env ~members:17_000)

let test_maintenance_cost_eq8 () =
  (* Paper scenario: env = 1/14, 20000 active peers, 40000 keys. *)
  let c =
    Maintenance.cost_per_key_per_second ~env:(1. /. 14.) ~members:20_000
      ~indexed_keys:40_000
  in
  Alcotest.(check (float 0.01)) "cRtn ~ 0.51 msg/key/s" 0.511 c

let test_maintenance_attach_charges_messages () =
  let rng = Rng.create ~seed:112 in
  let dht = Dht.create rng ~backend:Dht.Pgrid_backend ~members:64 ~leaf_size:2 () in
  let metrics = Pdht_sim.Metrics.create () in
  let engine = Pdht_sim.Engine.create () in
  Maintenance.attach engine ~dht ~rng ~online:all_online ~metrics ~env:(1. /. 6.)
    ~interval:10.;
  Pdht_sim.Engine.run engine ~until:100.;
  let expected =
    Maintenance.probes_per_peer_per_second ~env:(1. /. 6.) ~members:64 *. 64. *. 100.
  in
  let measured = float_of_int (Pdht_sim.Metrics.count metrics Pdht_sim.Metrics.Maintenance) in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f within 20%% of expected %.0f" measured expected)
    true
    (Float.abs (measured -. expected) /. expected < 0.2)

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"chord lookup always reaches the successor" ~count:60
      (pair (int_range 2 128) small_int)
      (fun (members, seed) ->
        let rng = Rng.create ~seed in
        let c = Chord.create rng ~members in
        let k = Bitkey.random rng in
        let o = Chord.lookup c ~online:all_online ~source:(Rng.int rng members) ~key:k in
        o.Chord.responsible = Some (Chord.successor_member c k));
    Test.make ~name:"pgrid leaf paths are prefix-free" ~count:40
      (pair (int_range 1 100) small_int)
      (fun (members, seed) ->
        let rng = Rng.create ~seed in
        let g = Pgrid.build rng ~members ~leaf_size:3 ~refs_per_level:2 in
        let paths = List.init members (Pgrid.path_of g) |> List.sort_uniq compare in
        (* No distinct path may prefix another (they would both claim
           responsibility for the same keys). *)
        List.for_all
          (fun p ->
            List.for_all
              (fun q ->
                p = q
                || String.length p > String.length q
                || not (String.equal (String.sub q 0 (String.length p)) p))
              paths)
          paths);
    Test.make ~name:"kademlia closest_members head is the global minimum" ~count:40
      (pair (int_range 2 80) small_int)
      (fun (members, seed) ->
        let rng = Rng.create ~seed in
        let k = Kademlia.create rng ~members () in
        let key = Bitkey.random rng in
        let head = (Kademlia.closest_members k key ~k:1).(0) in
        let ok = ref true in
        for m = 0 to members - 1 do
          if
            Bitkey.xor_distance key (Kademlia.id_of k m)
            < Bitkey.xor_distance key (Kademlia.id_of k head)
          then ok := false
        done;
        !ok);
    Test.make ~name:"pastry replica group sorted by circular distance" ~count:40
      (pair (int_range 2 60) small_int)
      (fun (members, seed) ->
        let rng = Rng.create ~seed in
        let p = Pastry.create rng ~members () in
        let key = Bitkey.random rng in
        let group = Pastry.replica_group p key ~k:(min 8 members) in
        (* The head must be the numerically closest member. *)
        group.(0) = Pastry.numerically_closest p key);
    Test.make ~name:"bootstrap coverage survives any meeting count" ~count:25
      (pair (int_range 1 60) (int_range 0 800))
      (fun (members, meetings) ->
        let rng = Rng.create ~seed:(members + meetings) in
        let b = Pdht_dht.Pgrid_bootstrap.create ~members () in
        Pdht_dht.Pgrid_bootstrap.run_exchanges b rng ~meetings;
        let ok = ref true in
        for _ = 1 to 20 do
          if
            Array.length
              (Pdht_dht.Pgrid_bootstrap.responsible_peers b (Bitkey.random rng))
            = 0
          then ok := false
        done;
        !ok);
    Test.make ~name:"pastry lookup terminates and reaches the owner" ~count:40
      (pair (int_range 2 100) small_int)
      (fun (members, seed) ->
        let rng = Rng.create ~seed in
        let p = Pastry.create rng ~members () in
        let key = Bitkey.random rng in
        let o = Pastry.lookup p rng ~online:all_online ~source:(Rng.int rng members) ~key in
        o.Pastry.responsible = Some (Pastry.numerically_closest p key));
    Test.make ~name:"dynamic chord ideal owner is id-closest successor" ~count:30
      (pair (int_range 2 30) small_int)
      (fun (nodes, seed) ->
        let rng = Rng.create ~seed in
        let t = Chord_dynamic.create rng ~capacity:(nodes + 2) () in
        let members = ref [ Chord_dynamic.bootstrap t ] in
        while Chord_dynamic.node_count t < nodes do
          let alive = List.filter (Chord_dynamic.is_member t) !members in
          let via = List.nth alive (Rng.int rng (List.length alive)) in
          (match Chord_dynamic.join t ~via with
          | Ok (node, _) -> members := node :: !members
          | Error _ -> ());
          ignore (Chord_dynamic.stabilize t rng)
        done;
        let key = Bitkey.random rng in
        match Chord_dynamic.ideal_responsible t key with
        | None -> false
        | Some owner ->
            (* No member's id lies strictly between the key and the
               owner's id going clockwise. *)
            List.for_all
              (fun m ->
                (not (Chord_dynamic.is_member t m))
                || m = owner
                ||
                let mid = Chord_dynamic.id_of t m in
                let oid = Chord_dynamic.id_of t owner in
                (* if m's id >= key then owner's id must be <= m's id
                   (in the circular >= key region) *)
                if Bitkey.compare oid key >= 0 then
                  Bitkey.compare mid key < 0 || Bitkey.compare mid oid >= 0
                else Bitkey.compare mid key < 0 && Bitkey.compare mid oid >= 0)
              !members);
    Test.make ~name:"storage never exceeds capacity" ~count:60
      (pair (int_range 1 20) (small_list (pair small_int (float_range 0.1 100.))))
      (fun (capacity, inserts) ->
        let s = Storage.create ~capacity () in
        List.iteri
          (fun i (k, ttl) -> Storage.put s ~key:(key k) ~value:i ~now:(float_of_int i) ~ttl)
          inserts;
        Storage.live_count s ~now:0. <= capacity);
  ]

let () =
  Alcotest.run "pdht_dht"
    [
      ( "churn",
        [
          Alcotest.test_case "static" `Quick test_churn_static;
          Alcotest.test_case "stationary fraction" `Quick test_churn_stationary_fraction;
          Alcotest.test_case "callbacks" `Quick test_churn_callbacks;
          Alcotest.test_case "validation" `Quick test_churn_validation;
          Alcotest.test_case "callback registration order" `Quick
            test_churn_callback_registration_order;
          Alcotest.test_case "spec: exponential equivalence" `Quick
            test_churn_spec_exponential_equivalence;
          Alcotest.test_case "spec: heavy-tailed sessions" `Quick
            test_churn_spec_heavy_tailed;
          Alcotest.test_case "spec: validates" `Quick test_churn_spec_validates;
        ] );
      ( "storage",
        [
          Alcotest.test_case "put/get" `Quick test_storage_put_get;
          Alcotest.test_case "expiry" `Quick test_storage_expiry;
          Alcotest.test_case "get does not refresh" `Quick test_storage_get_does_not_refresh;
          Alcotest.test_case "refresh extends" `Quick test_storage_refresh_extends;
          Alcotest.test_case "overwrite" `Quick test_storage_overwrite_updates_value_and_ttl;
          Alcotest.test_case "capacity eviction" `Quick test_storage_capacity_eviction;
          Alcotest.test_case "purges expired first" `Quick test_storage_prefers_purging_expired;
          Alcotest.test_case "live count and fold" `Quick test_storage_live_count_and_fold;
          Alcotest.test_case "remove and expire" `Quick test_storage_remove_and_expire;
          Alcotest.test_case "expiry inspection" `Quick test_storage_expiry_inspection;
          Alcotest.test_case "LRU eviction" `Quick test_storage_lru_eviction;
          Alcotest.test_case "random eviction" `Quick test_storage_random_eviction_bounded_and_deterministic;
          Alcotest.test_case "all-expired purge skips eviction policy" `Quick
            test_storage_full_of_expired_purges_without_eviction;
          Alcotest.test_case "same-seed stores evict identically" `Quick
            test_storage_random_eviction_same_seed_stores_agree;
          Alcotest.test_case "mem does not touch" `Quick test_storage_mem_does_not_touch;
          Alcotest.test_case "validation" `Quick test_storage_validation;
        ] );
      ( "chord",
        [
          Alcotest.test_case "successor ordering" `Quick test_chord_successor_ordering;
          Alcotest.test_case "lookup reaches responsible" `Quick test_chord_lookup_reaches_responsible;
          Alcotest.test_case "logarithmic hops" `Quick test_chord_lookup_logarithmic;
          Alcotest.test_case "self responsible" `Quick test_chord_lookup_self_responsible;
          Alcotest.test_case "lookup under churn" `Quick test_chord_lookup_under_churn;
          Alcotest.test_case "successor lists" `Quick test_chord_successors;
          Alcotest.test_case "probe repairs fingers" `Quick test_chord_probe_repairs_fingers;
          Alcotest.test_case "Eq. 7 value" `Quick test_chord_expected_lookup_messages;
          Alcotest.test_case "single member" `Quick test_chord_single_member;
        ] );
      ( "pgrid",
        [
          Alcotest.test_case "paths partition keyspace" `Quick test_pgrid_paths_partition_keyspace;
          Alcotest.test_case "balanced depth" `Quick test_pgrid_balanced_depth;
          Alcotest.test_case "leaf groups replicate" `Quick test_pgrid_leaf_groups_replicate;
          Alcotest.test_case "lookup reaches leaf" `Quick test_pgrid_lookup_reaches_leaf;
          Alcotest.test_case "hop bound" `Quick test_pgrid_lookup_hop_bound;
          Alcotest.test_case "lookup under churn" `Quick test_pgrid_lookup_under_churn;
          Alcotest.test_case "refs point to complement" `Quick test_pgrid_refs_point_to_complement;
          Alcotest.test_case "probe repair" `Quick test_pgrid_probe_repair;
          Alcotest.test_case "single member" `Quick test_pgrid_single_member;
        ] );
      ( "chord-dynamic",
        [
          Alcotest.test_case "bootstrap and join" `Quick test_dynamic_bootstrap_and_join;
          Alcotest.test_case "graceful leave" `Quick test_dynamic_graceful_leave;
          Alcotest.test_case "crash recovery" `Quick test_dynamic_crash_recovery;
          Alcotest.test_case "join via dead" `Quick test_dynamic_join_via_dead_rejected;
          Alcotest.test_case "capacity limit" `Quick test_dynamic_capacity_limit;
        ] );
      ( "pgrid-bootstrap",
        [
          Alcotest.test_case "initial state" `Quick test_bootstrap_initial_state;
          Alcotest.test_case "coverage invariant" `Quick test_bootstrap_coverage_invariant;
          Alcotest.test_case "log depth" `Quick test_bootstrap_converges_to_log_depth;
          Alcotest.test_case "lookups succeed" `Quick test_bootstrap_lookups_succeed;
          Alcotest.test_case "early lookups" `Quick test_bootstrap_lookups_succeed_early;
          Alcotest.test_case "refs share prefix" `Quick test_bootstrap_refs_point_across;
          Alcotest.test_case "single member" `Quick test_bootstrap_single_member;
        ] );
      ( "kademlia",
        [
          Alcotest.test_case "closest members ordering" `Quick test_kademlia_closest_members_ordering;
          Alcotest.test_case "lookup reaches closest" `Quick test_kademlia_lookup_reaches_closest;
          Alcotest.test_case "logarithmic rounds" `Quick test_kademlia_lookup_logarithmic_rounds;
          Alcotest.test_case "lookup under churn" `Quick test_kademlia_lookup_under_churn;
          Alcotest.test_case "live: enable consumes no rng" `Quick
            test_kademlia_live_enable_consumes_no_rng;
          Alcotest.test_case "live: contacts maintain buckets" `Quick
            test_kademlia_live_contacts_maintain_buckets;
          Alcotest.test_case "live: dead entries churned out" `Quick
            test_kademlia_live_dead_entries_churned_out;
          Alcotest.test_case "live: tables survive and recover" `Quick
            test_kademlia_live_tables_survive_and_recover;
          Alcotest.test_case "live: refresh sweep" `Quick test_kademlia_refresh_sweep;
          Alcotest.test_case "routing table bounded" `Quick test_kademlia_routing_table_bounded;
          Alcotest.test_case "probe repair" `Quick test_kademlia_probe_repair;
        ] );
      ( "pastry",
        [
          Alcotest.test_case "numerically closest" `Quick test_pastry_numerically_closest;
          Alcotest.test_case "lookup reaches owner" `Quick test_pastry_lookup_reaches_owner;
          Alcotest.test_case "prefix-speed hops" `Quick test_pastry_lookup_prefix_speed;
          Alcotest.test_case "leaf set shape" `Quick test_pastry_leaf_set_shape;
          Alcotest.test_case "lookup under churn" `Quick test_pastry_lookup_under_churn;
          Alcotest.test_case "replica group distinct" `Quick test_pastry_replica_group_distinct;
        ] );
      ( "facade-maintenance",
        [
          Alcotest.test_case "backends share interface" `Quick test_dht_facade_backends_agree_on_interface;
          Alcotest.test_case "tiny populations" `Quick test_dht_tiny_populations;
          Alcotest.test_case "backend labels" `Quick test_dht_backend_labels;
          Alcotest.test_case "facade Eq. 7" `Quick test_dht_expected_lookup_messages;
          Alcotest.test_case "pgrid oversize leaf" `Quick test_pgrid_leaf_size_exceeds_members;
          Alcotest.test_case "chord replica group" `Quick test_dht_chord_replica_group_size;
          Alcotest.test_case "maintenance rates" `Quick test_maintenance_rates;
          Alcotest.test_case "Eq. 8 value" `Quick test_maintenance_cost_eq8;
          Alcotest.test_case "attach charges messages" `Quick test_maintenance_attach_charges_messages;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
