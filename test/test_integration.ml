(* Cross-module integration tests: the paper's claims exercised through
   the whole stack (model + simulator together). *)

module Scenario = Pdht_work.Scenario
module Strategy = Pdht_core.Strategy
module System = Pdht_core.System
module Experiment = Pdht_core.Experiment
module Metrics = Pdht_sim.Metrics

let options = { System.default_options with System.repl = 10; stor = 60 }

let scenario =
  {
    Scenario.news_default with
    Scenario.num_peers = 150;
    keys = 300;
    f_qry = 1. /. 10.;
    duration = 400.;
    seed = 21;
  }

(* E7 shape: the simulated strategies must reproduce the model's
   ordering at both ends of the frequency sweep. *)
let test_face_off_shape () =
  let rows =
    Experiment.face_off ~options ~scenario ~frequencies:[ 1. /. 10.; 1. /. 200. ] ()
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Experiment.face_off_row) ->
      (* Simulated partial must beat simulated noIndex at busy rates,
         mirroring model_partial < model_no_index. *)
      if r.Experiment.model_partial < r.Experiment.model_no_index then
        Alcotest.(check bool)
          (Printf.sprintf "sim agrees with model at f=%g (partial %.0f vs none %.0f)"
             r.Experiment.f_qry r.Experiment.sim_partial r.Experiment.sim_no_index)
          true
          (r.Experiment.sim_partial < r.Experiment.sim_no_index);
      Alcotest.(check bool) "hit rate sane" true
        (r.Experiment.sim_hit_rate >= 0. && r.Experiment.sim_hit_rate <= 1.))
    rows

(* E6: after a drastic popularity shift the index re-learns the hot set
   (paper Section 5.2 / 6: the scheme "adapts to changing query
   frequencies and distributions"). *)
let test_adaptivity_recovers () =
  let shifted =
    {
      scenario with
      Scenario.duration = 1200.;
      shift = Scenario.Swap_halves_at 600.;
      seed = 22;
    }
  in
  let result = Experiment.adaptivity ~options ~scenario:shifted () in
  Alcotest.(check bool) "warmed up before shift" true
    (result.Experiment.before_hit_rate > 0.5);
  Alcotest.(check bool) "recovers after shift" true
    (result.Experiment.after_hit_rate > 0.8 *. result.Experiment.before_hit_rate);
  match result.Experiment.recovery_seconds with
  | Some s -> Alcotest.(check bool) "recovery within run" true (s < 600.)
  | None -> Alcotest.fail "hit rate never recovered after the shift"

(* E8a: random walks must be far cheaper than flooding while still
   succeeding — the paper's reason for assuming [LvCa02]-style search. *)
let test_search_ablation () =
  let rows = Experiment.search_ablation ~seed:3 ~peers:400 ~repl:20 ~trials:60 () in
  let find m = List.find (fun (r : Experiment.search_ablation_row) -> r.Experiment.mechanism = m) rows in
  let flood = find "flooding" and walks = find "random-walks" in
  Alcotest.(check bool) "flooding succeeds" true (flood.Experiment.success_rate > 0.95);
  Alcotest.(check bool) "walks succeed" true (walks.Experiment.success_rate > 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "walks (%.0f msg) cheaper than flooding (%.0f msg)"
       walks.Experiment.mean_messages flood.Experiment.mean_messages)
    true
    (walks.Experiment.mean_messages < flood.Experiment.mean_messages /. 2.)

(* E8b: both DHT backends give O(log n) lookups near the Eq. 7
   expectation, with and without churn. *)
let test_backend_ablation () =
  let check_rows offline_fraction =
    let rows =
      Experiment.backend_ablation ~seed:4 ~members:512 ~trials:300 ~offline_fraction ()
    in
    List.iter
      (fun (r : Experiment.backend_ablation_row) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s success %.2f" r.Experiment.backend r.Experiment.success_rate)
          true
          (r.Experiment.success_rate > 0.9);
        Alcotest.(check bool)
          (Printf.sprintf "%s hops %.1f within 4x of Eq.7 (%.1f)" r.Experiment.backend
             r.Experiment.mean_hops r.Experiment.model_expectation)
          true
          (r.Experiment.mean_hops < 4. *. r.Experiment.model_expectation))
      rows
  in
  check_rows 0.;
  check_rows 0.15

(* E19: the selection algorithm is backend-agnostic — identical hit and
   answer rates on every structured substrate. *)
let test_backend_face_off_agnostic () =
  let rows = Experiment.backend_face_off ~options ~scenario () in
  Alcotest.(check int) "four backends" 4 (List.length rows);
  let hit_rates =
    List.map (fun (r : Experiment.backend_system_row) -> r.Experiment.hit_rate) rows
  in
  let min_hit = List.fold_left Float.min 1. hit_rates in
  let max_hit = List.fold_left Float.max 0. hit_rates in
  Alcotest.(check bool)
    (Printf.sprintf "hit rates within 3 points (%.3f..%.3f)" min_hit max_hit)
    true
    (max_hit -. min_hit < 0.03);
  List.iter
    (fun (r : Experiment.backend_system_row) ->
      Alcotest.(check bool)
        (r.Experiment.backend_name ^ " answers everything")
        true
        (r.Experiment.answer_rate > 0.99))
    rows

(* Extension: the adaptive TTL controller must land in the same cost
   regime as the best fixed TTL. *)
let test_ttl_tuning_competitive () =
  let rows = Experiment.ttl_tuning ~options ~scenario ~fixed_ttls:[ 60.; 300.; 1500. ] () in
  Alcotest.(check int) "three fixed + adaptive" 4 (List.length rows);
  let adaptive = List.nth rows 3 in
  let best_fixed =
    List.fold_left
      (fun acc (r : Experiment.ttl_tuning_row) -> Float.min acc r.Experiment.messages_per_second)
      infinity
      (List.filteri (fun i _ -> i < 3) rows)
  in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.0f within 2x of best fixed %.0f"
       adaptive.Experiment.messages_per_second best_fixed)
    true
    (adaptive.Experiment.messages_per_second < 2. *. best_fixed)

(* E12: the selection algorithm degrades gracefully with churn. *)
let test_churn_sensitivity_graceful () =
  let rows =
    Experiment.churn_sensitivity ~options ~scenario ~availabilities:[ 1.0; 0.6 ] ()
  in
  match rows with
  | [ full; churny ] ->
      Alcotest.(check bool) "answers stay near-perfect" true
        (churny.Experiment.answer_rate > 0.97);
      Alcotest.(check bool) "hit rate degrades but survives" true
        (churny.Experiment.hit_rate > 0.6
        && churny.Experiment.hit_rate <= full.Experiment.hit_rate +. 0.02)
  | _ -> Alcotest.fail "expected two rows"

(* E13: flatter workloads index more keys. *)
let test_workload_mix_shape () =
  let rows = Experiment.workload_mix ~options ~scenario () in
  let find w =
    List.find (fun (r : Experiment.workload_row) -> r.Experiment.workload = w) rows
  in
  let uniform = find "uniform" and zipf = find "zipf(1.2)" in
  Alcotest.(check bool) "uniform indexes more of the key space" true
    (uniform.Experiment.indexed_fraction > zipf.Experiment.indexed_fraction);
  Alcotest.(check bool) "uniform costs more" true
    (uniform.Experiment.messages_per_second > zipf.Experiment.messages_per_second)

(* Seed replication: estimates are stable across seeds. *)
let test_replicate_seeds_stable () =
  let key_ttl = System.derive_key_ttl scenario options in
  let stats =
    Experiment.replicate_seeds ~options ~scenario
      ~strategy:(Strategy.Partial_index { key_ttl })
      ~seeds:[ 1; 2; 3 ] ()
  in
  Alcotest.(check int) "three runs" 3 stats.Experiment.runs;
  Alcotest.(check bool) "relative sd of msg/s under 10%" true
    (stats.Experiment.sd_messages_per_second
     /. stats.Experiment.mean_messages_per_second
    < 0.1);
  Alcotest.(check bool) "hit rate sd tiny" true (stats.Experiment.sd_hit_rate < 0.05)

(* Message conservation: the per-category counters must sum to the
   total, and categories must match what each strategy can generate. *)
let test_message_accounting_conserved () =
  let ttl = System.derive_key_ttl scenario options in
  List.iter
    (fun strategy ->
      let r = System.run scenario strategy options in
      let sum = List.fold_left (fun acc (_, n) -> acc + n) 0 r.System.messages_by_category in
      Alcotest.(check int) "category sum = total" r.System.total_messages sum)
    [ Strategy.Index_all; Strategy.No_index; Strategy.Partial_index { key_ttl = ttl } ]

(* Empirical Eq. 15: the steady-state index size of the simulation must
   land in the regime the TTL model predicts. *)
let test_empirical_index_size_vs_model () =
  let ttl = System.derive_key_ttl scenario options in
  let r = System.run scenario (Strategy.Partial_index { key_ttl = ttl }) options in
  (* Model prediction at simulation scale. *)
  let params =
    {
      Pdht_model.Params.num_peers = scenario.Scenario.num_peers;
      keys = scenario.Scenario.keys;
      stor = options.System.stor;
      repl = options.System.repl;
      alpha = 1.2;
      f_qry = scenario.Scenario.f_qry;
      f_upd = 0.;
      env = 1. /. 14.;
      dup = 1.8;
      dup2 = 1.8;
    }
  in
  let st = Pdht_model.Strategies.ttl_state params ~key_ttl:ttl in
  let predicted = st.Pdht_model.Strategies.index_size in
  let measured = float_of_int r.System.indexed_keys_final in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f within [0.5, 1.5]x of Eq.15 prediction %.0f" measured
       predicted)
    true
    (measured > 0.5 *. predicted && measured < 1.5 *. predicted)

(* The full news pipeline: metadata keys flow through the PDHT. *)
let test_news_pipeline_end_to_end () =
  let rng = Pdht_util.Rng.create ~seed:33 in
  let corpus = Pdht_meta.Corpus.generate rng ~articles:30 ~start_time:0. () in
  (* Map every corpus key to a workload index via its position. *)
  let keys = Pdht_meta.Corpus.all_keys corpus in
  Alcotest.(check int) "600 keys" 600 (Array.length keys);
  let config =
    Pdht_core.Config.make ~num_peers:200 ~active_members:80
      ~keys:(Array.length keys) ~repl:10 ~stor:60
      ~strategy:(Strategy.Partial_index { key_ttl = 400. })
      ()
  in
  let pdht = Pdht_core.Pdht.create rng config in
  (* Query a title key for article 0 through its workload index. *)
  let r = Pdht_core.Pdht.query pdht ~now:1. ~peer:5 ~key_index:0 in
  Alcotest.(check bool) "query answered" true (r.Pdht_core.Pdht.source <> Pdht_core.Pdht.Not_found);
  let r2 = Pdht_core.Pdht.query pdht ~now:2. ~peer:6 ~key_index:0 in
  Alcotest.(check bool) "second hit from index" true
    (r2.Pdht_core.Pdht.source = Pdht_core.Pdht.From_index)

let () =
  Alcotest.run "pdht_integration"
    [
      ( "experiments",
        [
          Alcotest.test_case "E7 face-off shape" `Slow test_face_off_shape;
          Alcotest.test_case "E6 adaptivity" `Slow test_adaptivity_recovers;
          Alcotest.test_case "E8a search ablation" `Quick test_search_ablation;
          Alcotest.test_case "E8b backend ablation" `Quick test_backend_ablation;
          Alcotest.test_case "ttl tuning" `Slow test_ttl_tuning_competitive;
          Alcotest.test_case "E19 backend agnostic" `Slow test_backend_face_off_agnostic;
          Alcotest.test_case "E12 churn sensitivity" `Slow test_churn_sensitivity_graceful;
          Alcotest.test_case "E13 workload mix" `Slow test_workload_mix_shape;
          Alcotest.test_case "seed replication" `Slow test_replicate_seeds_stable;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "message accounting" `Slow test_message_accounting_conserved;
          Alcotest.test_case "empirical Eq. 15" `Slow test_empirical_index_size_vs_model;
          Alcotest.test_case "news pipeline" `Quick test_news_pipeline_end_to_end;
        ] );
    ]
