(* Tests for Pdht_overlay: topologies, flooding, random walks,
   replication, and the unified unstructured search. *)

module Rng = Pdht_util.Rng
module Topology = Pdht_overlay.Topology
module Flood = Pdht_overlay.Flood
module Random_walk = Pdht_overlay.Random_walk
module Replication = Pdht_overlay.Replication
module Search = Pdht_overlay.Unstructured_search

let all_online _ = true

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_random_graph_shape () =
  let rng = Rng.create ~seed:1 in
  let t = Topology.random_regularish rng ~peers:200 ~degree:4 in
  Alcotest.(check int) "peer count" 200 (Topology.peer_count t);
  Alcotest.(check bool) "mean degree ~ 2x opened" true
    (Topology.mean_degree t >= 6. && Topology.mean_degree t <= 9.);
  for p = 0 to 199 do
    let nbrs = Topology.neighbors t p in
    Array.iter (fun q -> Alcotest.(check bool) "no self loop" true (q <> p)) nbrs;
    let distinct = Array.to_list nbrs |> List.sort_uniq compare in
    Alcotest.(check int) "no duplicate edges" (Array.length nbrs) (List.length distinct)
  done

let test_random_graph_symmetric () =
  let rng = Rng.create ~seed:2 in
  let t = Topology.random_regularish rng ~peers:100 ~degree:3 in
  for p = 0 to 99 do
    Array.iter
      (fun q ->
        let back = Array.exists (fun r -> r = p) (Topology.neighbors t q) in
        Alcotest.(check bool) "undirected" true back)
      (Topology.neighbors t p)
  done

let test_random_graph_connected () =
  let rng = Rng.create ~seed:3 in
  let t = Topology.random_regularish rng ~peers:500 ~degree:4 in
  Alcotest.(check bool) "connected" true (Topology.is_connected t)

let test_barabasi_albert_power_law_head () =
  let rng = Rng.create ~seed:4 in
  let t = Topology.barabasi_albert rng ~peers:500 ~attach:3 in
  Alcotest.(check int) "peer count" 500 (Topology.peer_count t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  (* Preferential attachment produces hubs: max degree far above mean. *)
  let max_deg = ref 0 in
  for p = 0 to 499 do
    max_deg := max !max_deg (Topology.degree t p)
  done;
  Alcotest.(check bool) "has hubs" true
    (float_of_int !max_deg > 3. *. Topology.mean_degree t)

let test_ring_lattice () =
  let t = Topology.ring_lattice ~peers:10 ~k:2 in
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  for p = 0 to 9 do
    Alcotest.(check int) "regular degree 2k" 4 (Topology.degree t p)
  done;
  Alcotest.(check int) "edges = n*k" 20 (Topology.edge_count t)

let test_topology_validation () =
  let rng = Rng.create ~seed:5 in
  Alcotest.check_raises "1 peer" (Invalid_argument "Topology.random_regularish: need >= 2 peers")
    (fun () -> ignore (Topology.random_regularish rng ~peers:1 ~degree:1));
  Alcotest.check_raises "bad attach"
    (Invalid_argument "Topology.barabasi_albert: need peers > attach >= 1") (fun () ->
      ignore (Topology.barabasi_albert rng ~peers:3 ~attach:3))

let test_connected_fraction_with_offline () =
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  (* Cutting two opposite peers splits a plain ring in half. *)
  let online p = p <> 0 && p <> 5 in
  let frac = Topology.connected_fraction_from t ~online 1 in
  Alcotest.(check (float 1e-9)) "half reachable" 0.5 frac;
  Alcotest.(check (float 1e-9)) "offline start" 0.
    (Topology.connected_fraction_from t ~online 0)

let test_watts_strogatz_regimes () =
  let rng = Rng.create ~seed:30 in
  let lattice = Topology.watts_strogatz rng ~peers:100 ~k:2 ~beta:0. in
  (* beta 0 is exactly the ring lattice. *)
  for p = 0 to 99 do
    Alcotest.(check int) "lattice degree" 4 (Topology.degree lattice p)
  done;
  let small_world = Topology.watts_strogatz rng ~peers:200 ~k:3 ~beta:0.1 in
  Alcotest.(check int) "peer count" 200 (Topology.peer_count small_world);
  Alcotest.(check bool) "edges conserved by rewiring" true
    (Topology.edge_count small_world <= 600);
  (* Rewiring shortens paths: a TTL-5 flood reaches further than on the
     pure lattice of the same size. *)
  let reach t =
    (Flood.search t ~online:all_online ~holds:(fun _ -> false) ~source:0 ~ttl:5)
      .Flood.peers_reached
  in
  let lattice200 = Topology.ring_lattice ~peers:200 ~k:3 in
  Alcotest.(check bool) "small world floods further" true
    (reach small_world > reach lattice200)

let test_watts_strogatz_validation () =
  let rng = Rng.create ~seed:31 in
  Alcotest.check_raises "beta range"
    (Invalid_argument "Topology.watts_strogatz: beta outside [0,1]") (fun () ->
      ignore (Topology.watts_strogatz rng ~peers:10 ~k:2 ~beta:1.5))

(* ------------------------------------------------------------------ *)
(* Expanding ring *)

module Expanding_ring = Pdht_overlay.Expanding_ring

let test_expanding_ring_finds_close_items_cheaply () =
  let t = Topology.ring_lattice ~peers:100 ~k:2 in
  (* Item two hops away: found in the first or second ring, far cheaper
     than the full flood. *)
  let r =
    Expanding_ring.search t ~online:all_online ~holds:(fun p -> p = 4) ~source:0
      ~initial_ttl:1 ~growth:1 ~max_ttl:50
  in
  Alcotest.(check (option int)) "found" (Some 4) r.Expanding_ring.found_at;
  Alcotest.(check bool) "few rings" true (r.Expanding_ring.rings <= 2);
  let full = Flood.search t ~online:all_online ~holds:(fun _ -> false) ~source:0 ~ttl:50 in
  Alcotest.(check bool) "cheaper than full flood" true
    (r.Expanding_ring.messages < full.Flood.messages)

let test_expanding_ring_gives_up_at_max_ttl () =
  let t = Topology.ring_lattice ~peers:50 ~k:1 in
  let r =
    Expanding_ring.search t ~online:all_online ~holds:(fun _ -> false) ~source:0
      ~initial_ttl:1 ~growth:2 ~max_ttl:5
  in
  Alcotest.(check (option int)) "not found" None r.Expanding_ring.found_at;
  Alcotest.(check int) "stopped at max ttl" 5 r.Expanding_ring.final_ttl

let test_expanding_ring_stops_when_component_covered () =
  (* 10-peer ring fully covered by TTL 5; growth must stop early even
     though max_ttl is huge. *)
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  let r =
    Expanding_ring.search t ~online:all_online ~holds:(fun _ -> false) ~source:0
      ~initial_ttl:4 ~growth:1 ~max_ttl:1000
  in
  Alcotest.(check bool) "stopped long before max_ttl" true (r.Expanding_ring.final_ttl < 10)

let test_expanding_ring_validation () =
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  Alcotest.check_raises "ttl order"
    (Invalid_argument "Expanding_ring.search: max_ttl < initial_ttl") (fun () ->
      ignore
        (Expanding_ring.search t ~online:all_online ~holds:(fun _ -> false) ~source:0
           ~initial_ttl:5 ~growth:1 ~max_ttl:2))

(* ------------------------------------------------------------------ *)
(* Flood *)

let test_flood_reaches_connected_component () =
  let rng = Rng.create ~seed:6 in
  let t = Topology.random_regularish rng ~peers:100 ~degree:4 in
  let r = Flood.search t ~online:all_online ~holds:(fun _ -> false) ~source:0 ~ttl:100 in
  Alcotest.(check int) "reaches everyone" 100 r.Flood.peers_reached;
  Alcotest.(check (option int)) "no holder found" None r.Flood.found_at

let test_flood_finds_holder () =
  let t = Topology.ring_lattice ~peers:20 ~k:1 in
  let r = Flood.search t ~online:all_online ~holds:(fun p -> p = 5) ~source:0 ~ttl:100 in
  Alcotest.(check (option int)) "found" (Some 5) r.Flood.found_at;
  Alcotest.(check (option int)) "at BFS depth 5" (Some 5) r.Flood.hops_to_hit

let test_flood_ttl_limits_reach () =
  let t = Topology.ring_lattice ~peers:20 ~k:1 in
  let r = Flood.search t ~online:all_online ~holds:(fun _ -> false) ~source:0 ~ttl:3 in
  (* Ring: ttl 3 reaches 3 peers in each direction plus the source. *)
  Alcotest.(check int) "bounded reach" 7 r.Flood.peers_reached

let test_flood_message_count_ring () =
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  let r = Flood.search t ~online:all_online ~holds:(fun _ -> false) ~source:0 ~ttl:100 in
  (* Every peer forwards to both neighbors except where the message
     came from; total = 2 * edges = 20 messages on a full ring flood. *)
  Alcotest.(check int) "2E messages" 20 r.Flood.messages;
  Alcotest.(check (float 1e-9)) "dup factor" 2. (Flood.duplication_factor r)

let test_flood_offline_source () =
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  let r = Flood.search t ~online:(fun p -> p <> 0) ~holds:(fun _ -> true) ~source:0 ~ttl:5 in
  Alcotest.(check int) "nothing happens" 0 r.Flood.messages;
  Alcotest.(check (option int)) "no result" None r.Flood.found_at

let test_flood_routes_around_offline () =
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  (* Peer 1 offline: the flood must go the other way around. *)
  let online p = p <> 1 in
  let r = Flood.search t ~online ~holds:(fun p -> p = 2) ~source:0 ~ttl:100 in
  Alcotest.(check (option int)) "found the long way" (Some 2) r.Flood.found_at;
  Alcotest.(check (option int)) "depth 8 around the ring" (Some 8) r.Flood.hops_to_hit

(* ------------------------------------------------------------------ *)
(* Random walks *)

let test_walk_finds_common_item () =
  let rng = Rng.create ~seed:7 in
  let t = Topology.random_regularish rng ~peers:200 ~degree:4 in
  (* 10% of peers hold the item: walks find it fast. *)
  let holds p = p mod 10 = 0 in
  let r =
    Random_walk.search t rng ~online:all_online ~holds ~source:1 ~walkers:8
      ~max_steps:1000 ~check_every:4
  in
  Alcotest.(check bool) "found" true (r.Random_walk.found_at <> None);
  Alcotest.(check bool) "cheaper than flooding" true (r.Random_walk.messages < 800)

let test_walk_gives_up () =
  let rng = Rng.create ~seed:8 in
  let t = Topology.random_regularish rng ~peers:50 ~degree:3 in
  let r =
    Random_walk.search t rng ~online:all_online ~holds:(fun _ -> false) ~source:0
      ~walkers:4 ~max_steps:20 ~check_every:4
  in
  Alcotest.(check (option int)) "not found" None r.Random_walk.found_at;
  Alcotest.(check bool) "bounded work" true (r.Random_walk.steps_taken <= 4 * 20)

let test_walk_source_holds () =
  let rng = Rng.create ~seed:9 in
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  let r =
    Random_walk.search t rng ~online:all_online ~holds:(fun p -> p = 3) ~source:3
      ~walkers:4 ~max_steps:100 ~check_every:4
  in
  Alcotest.(check (option int)) "immediate hit" (Some 3) r.Random_walk.found_at;
  Alcotest.(check int) "free" 0 r.Random_walk.messages

let test_walk_offline_source () =
  let rng = Rng.create ~seed:10 in
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  let r =
    Random_walk.search t rng ~online:(fun p -> p <> 0) ~holds:(fun _ -> true) ~source:0
      ~walkers:4 ~max_steps:100 ~check_every:4
  in
  Alcotest.(check int) "no work" 0 r.Random_walk.messages

let test_walk_validation () =
  let rng = Rng.create ~seed:11 in
  let t = Topology.ring_lattice ~peers:10 ~k:1 in
  Alcotest.check_raises "walkers" (Invalid_argument "Random_walk.search: walkers must be >= 1")
    (fun () ->
      ignore
        (Random_walk.search t rng ~online:all_online ~holds:(fun _ -> false) ~source:0
           ~walkers:0 ~max_steps:10 ~check_every:4))

let test_walk_respects_offline_peers () =
  let rng = Rng.create ~seed:12 in
  let t = Topology.ring_lattice ~peers:20 ~k:2 in
  let offline p = p >= 10 in
  let visited_offline = ref false in
  let holds p =
    if offline p then visited_offline := true;
    false
  in
  ignore
    (Random_walk.search t rng ~online:(fun p -> not (offline p)) ~holds ~source:0
       ~walkers:4 ~max_steps:50 ~check_every:4);
  Alcotest.(check bool) "never steps onto offline peers" false !visited_offline

(* ------------------------------------------------------------------ *)
(* Replication *)

let test_replication_place_and_hold () =
  let rng = Rng.create ~seed:13 in
  let r = Replication.create ~peers:100 in
  Replication.place r rng ~item:7 ~repl:10;
  let reps = Replication.replicas r ~item:7 in
  Alcotest.(check int) "10 replicas" 10 (Array.length reps);
  Array.iter
    (fun p -> Alcotest.(check bool) "holds" true (Replication.holds r ~peer:p ~item:7))
    reps;
  Alcotest.(check int) "factor" 10 (Replication.replication_factor r ~item:7)

let test_replication_replaces_previous () =
  let rng = Rng.create ~seed:14 in
  let r = Replication.create ~peers:50 in
  Replication.place r rng ~item:1 ~repl:5;
  Replication.place r rng ~item:1 ~repl:5;
  Alcotest.(check int) "still 5" 5 (Array.length (Replication.replicas r ~item:1));
  (* Old placement fully removed: total holders is exactly 5. *)
  let holders = ref 0 in
  for p = 0 to 49 do
    if Replication.holds r ~peer:p ~item:1 then incr holders
  done;
  Alcotest.(check int) "no stale holders" 5 !holders

let test_replication_remove () =
  let rng = Rng.create ~seed:15 in
  let r = Replication.create ~peers:50 in
  Replication.place r rng ~item:2 ~repl:5;
  Replication.remove r ~item:2;
  Alcotest.(check int) "gone" 0 (Array.length (Replication.replicas r ~item:2))

let test_replication_repl_capped_at_peers () =
  let rng = Rng.create ~seed:16 in
  let r = Replication.create ~peers:5 in
  Replication.place r rng ~item:0 ~repl:50;
  Alcotest.(check int) "capped" 5 (Array.length (Replication.replicas r ~item:0))

let test_replication_items_at () =
  let r = Replication.create ~peers:10 in
  Replication.place_on r ~item:1 ~replicas:[| 3; 4 |];
  Replication.place_on r ~item:2 ~replicas:[| 3 |];
  Alcotest.(check (list int)) "items at 3" [ 1; 2 ] (Replication.items_at r ~peer:3);
  Alcotest.(check (list int)) "items at 4" [ 1 ] (Replication.items_at r ~peer:4)

let test_replication_availability () =
  let r = Replication.create ~peers:10 in
  Replication.place_on r ~item:1 ~replicas:[| 0; 1; 2; 3 |];
  let online p = p < 2 in
  Alcotest.(check (float 1e-9)) "half online" 0.5
    (Replication.availability r ~online ~item:1);
  Alcotest.(check (float 1e-9)) "unplaced item" 0.
    (Replication.availability r ~online ~item:99)

(* ------------------------------------------------------------------ *)
(* Unified search *)

let build_search ~seed ~peers ~repl ~strategy =
  let rng = Rng.create ~seed in
  let topology = Topology.random_regularish rng ~peers ~degree:4 in
  let replication = Replication.create ~peers in
  for item = 0 to 19 do
    Replication.place replication rng ~item ~repl
  done;
  (rng, Search.create ~topology ~replication ~strategy)

let test_search_flooding_finds () =
  let rng, s = build_search ~seed:17 ~peers:100 ~repl:10 ~strategy:(Search.Flooding { ttl = 10 }) in
  let o = Search.search s rng ~online:all_online ~source:0 ~item:3 in
  Alcotest.(check bool) "found" true o.Search.found;
  Alcotest.(check bool) "messages > 0" true (o.Search.messages > 0);
  match o.Search.provider with
  | Some p ->
      Alcotest.(check bool) "provider holds item" true
        (Replication.holds (Search.replication s) ~peer:p ~item:3)
  | None -> Alcotest.fail "expected provider"

let test_search_walks_find () =
  let rng, s =
    build_search ~seed:18 ~peers:200 ~repl:20
      ~strategy:(Search.Random_walks { walkers = 8; max_steps = 400; check_every = 4 })
  in
  let found = ref 0 in
  for item = 0 to 19 do
    let o = Search.search s rng ~online:all_online ~source:(item * 3) ~item in
    if o.Search.found then incr found
  done;
  Alcotest.(check int) "all found" 20 !found

let test_search_cost_scales_with_replication () =
  (* More replicas, cheaper unstructured search (Eq. 6 intuition). *)
  let cost ~repl ~seed =
    let rng, s =
      build_search ~seed ~peers:300 ~repl
        ~strategy:(Search.Random_walks { walkers = 8; max_steps = 1000; check_every = 4 })
    in
    let total = ref 0 in
    for item = 0 to 19 do
      let o = Search.search s rng ~online:all_online ~source:item ~item in
      total := !total + o.Search.messages
    done;
    float_of_int !total /. 20.
  in
  let sparse = cost ~repl:3 ~seed:19 in
  let dense = cost ~repl:60 ~seed:19 in
  Alcotest.(check bool)
    (Printf.sprintf "dense (%.0f) cheaper than sparse (%.0f)" dense sparse)
    true (dense < sparse)

let test_search_strategy_expanding_ring () =
  let rng, s =
    build_search ~seed:32 ~peers:150 ~repl:15
      ~strategy:(Search.Expanding_ring { initial_ttl = 1; growth = 2; max_ttl = 12 })
  in
  let o = Search.search s rng ~online:all_online ~source:0 ~item:5 in
  Alcotest.(check bool) "found" true o.Search.found

let test_search_model_cost () =
  Alcotest.(check (float 1e-9)) "Eq. 6" 720.
    (Search.expected_cost_model ~peers:20_000 ~repl:50 ~dup:1.8)

let test_search_mismatched_sizes_rejected () =
  let topology = Topology.ring_lattice ~peers:10 ~k:1 in
  let replication = Replication.create ~peers:11 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument
       "Unstructured_search.create: topology and replication disagree on peer count")
    (fun () ->
      ignore (Search.create ~topology ~replication ~strategy:(Search.Flooding { ttl = 2 })))

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"flood never exceeds 2E messages" ~count:50
      (pair (int_range 10 80) small_int)
      (fun (peers, seed) ->
        let rng = Rng.create ~seed in
        let t = Topology.random_regularish rng ~peers ~degree:3 in
        let r = Flood.search t ~online:all_online ~holds:(fun _ -> false) ~source:0 ~ttl:peers in
        r.Flood.messages <= 2 * Topology.edge_count t);
    Test.make ~name:"flood reach monotone in ttl" ~count:50
      (pair (int_range 10 60) small_int)
      (fun (peers, seed) ->
        let rng = Rng.create ~seed in
        let t = Topology.random_regularish rng ~peers ~degree:3 in
        let reach ttl =
          (Flood.search t ~online:all_online ~holds:(fun _ -> false) ~source:0 ~ttl)
            .Flood.peers_reached
        in
        reach 1 <= reach 2 && reach 2 <= reach 4 && reach 4 <= reach peers);
    Test.make ~name:"replication places exactly min(repl,peers) distinct" ~count:100
      (triple (int_range 1 50) (int_range 1 80) small_int)
      (fun (repl, peers, seed) ->
        let rng = Rng.create ~seed in
        let r = Replication.create ~peers in
        Replication.place r rng ~item:0 ~repl;
        Array.length (Replication.replicas r ~item:0) = min repl peers);
    (* Scratch reuse must be observationally invisible: a single scratch
       threaded through a whole sequence of searches (so it carries
       stamps, frontier contents and walker positions from previous
       calls) returns exactly what fresh per-call allocation returns.
       Holds/online predicates vary per query to exercise stale state. *)
    Test.make ~name:"flood: shared scratch == fresh allocation" ~count:50
      (triple (int_range 10 80) (int_range 1 10) small_int)
      (fun (peers, ttl, seed) ->
        let rng = Rng.create ~seed in
        let t = Topology.random_regularish rng ~peers ~degree:3 in
        let online p = (p * 7) mod 13 <> seed mod 13 in
        let scratch = Pdht_overlay.Scratch.create () in
        List.for_all
          (fun q ->
            let holds p = p mod (q + 2) = 0 in
            let source = q * 3 mod peers in
            Flood.search ~scratch t ~online ~holds ~source ~ttl
            = Flood.search t ~online ~holds ~source ~ttl)
          [ 0; 1; 2; 3; 4 ]);
    Test.make ~name:"expanding ring: shared scratch == fresh allocation" ~count:50
      (triple (int_range 10 60) (int_range 2 8) small_int)
      (fun (peers, max_ttl, seed) ->
        let rng = Rng.create ~seed in
        let t = Topology.random_regularish rng ~peers ~degree:3 in
        let online p = (p * 5) mod 11 <> seed mod 11 in
        let scratch = Pdht_overlay.Scratch.create () in
        List.for_all
          (fun q ->
            let holds p = p mod (q + 3) = 1 in
            let source = q * 5 mod peers in
            Expanding_ring.search ~scratch t ~online ~holds ~source ~initial_ttl:1
              ~growth:1 ~max_ttl
            = Expanding_ring.search t ~online ~holds ~source ~initial_ttl:1 ~growth:1
                ~max_ttl)
          [ 0; 1; 2; 3; 4 ]);
    Test.make ~name:"random walk: shared scratch == fresh (same RNG stream)" ~count:50
      (triple (int_range 10 60) (int_range 1 8) small_int)
      (fun (peers, walkers, seed) ->
        let rng = Rng.create ~seed in
        let t = Topology.random_regularish rng ~peers ~degree:3 in
        let online p = (p * 3) mod 7 <> seed mod 7 in
        let scratch = Pdht_overlay.Scratch.create () in
        List.for_all
          (fun q ->
            let holds p = p mod (q + 4) = 2 in
            let source = q * 7 mod peers in
            (* Identical RNG state for both runs: equality covers the
               draw sequence, not just the aggregate result. *)
            let r1 = Rng.copy rng in
            let r2 = Rng.copy rng in
            ignore (Rng.bits64 rng);
            Random_walk.search ~scratch t r1 ~online ~holds ~source ~walkers
              ~max_steps:50 ~check_every:4
            = Random_walk.search t r2 ~online ~holds ~source ~walkers ~max_steps:50
                ~check_every:4
            && Rng.bits64 r1 = Rng.bits64 r2)
          [ 0; 1; 2; 3; 4 ]);
  ]

let () =
  Alcotest.run "pdht_overlay"
    [
      ( "topology",
        [
          Alcotest.test_case "random graph shape" `Quick test_random_graph_shape;
          Alcotest.test_case "symmetric adjacency" `Quick test_random_graph_symmetric;
          Alcotest.test_case "connected" `Quick test_random_graph_connected;
          Alcotest.test_case "barabasi-albert hubs" `Quick test_barabasi_albert_power_law_head;
          Alcotest.test_case "ring lattice" `Quick test_ring_lattice;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "connected fraction offline" `Quick test_connected_fraction_with_offline;
          Alcotest.test_case "watts-strogatz regimes" `Quick test_watts_strogatz_regimes;
          Alcotest.test_case "watts-strogatz validation" `Quick test_watts_strogatz_validation;
        ] );
      ( "expanding-ring",
        [
          Alcotest.test_case "close items cheap" `Quick test_expanding_ring_finds_close_items_cheaply;
          Alcotest.test_case "gives up at max ttl" `Quick test_expanding_ring_gives_up_at_max_ttl;
          Alcotest.test_case "stops when covered" `Quick test_expanding_ring_stops_when_component_covered;
          Alcotest.test_case "validation" `Quick test_expanding_ring_validation;
        ] );
      ( "flood",
        [
          Alcotest.test_case "reaches component" `Quick test_flood_reaches_connected_component;
          Alcotest.test_case "finds holder" `Quick test_flood_finds_holder;
          Alcotest.test_case "ttl limits reach" `Quick test_flood_ttl_limits_reach;
          Alcotest.test_case "message count on ring" `Quick test_flood_message_count_ring;
          Alcotest.test_case "offline source" `Quick test_flood_offline_source;
          Alcotest.test_case "routes around offline" `Quick test_flood_routes_around_offline;
        ] );
      ( "random-walk",
        [
          Alcotest.test_case "finds common item" `Quick test_walk_finds_common_item;
          Alcotest.test_case "gives up at budget" `Quick test_walk_gives_up;
          Alcotest.test_case "source holds" `Quick test_walk_source_holds;
          Alcotest.test_case "offline source" `Quick test_walk_offline_source;
          Alcotest.test_case "validation" `Quick test_walk_validation;
          Alcotest.test_case "respects offline" `Quick test_walk_respects_offline_peers;
        ] );
      ( "replication",
        [
          Alcotest.test_case "place and hold" `Quick test_replication_place_and_hold;
          Alcotest.test_case "replaces previous" `Quick test_replication_replaces_previous;
          Alcotest.test_case "remove" `Quick test_replication_remove;
          Alcotest.test_case "repl capped" `Quick test_replication_repl_capped_at_peers;
          Alcotest.test_case "items_at" `Quick test_replication_items_at;
          Alcotest.test_case "availability" `Quick test_replication_availability;
        ] );
      ( "search",
        [
          Alcotest.test_case "flooding finds" `Quick test_search_flooding_finds;
          Alcotest.test_case "walks find" `Quick test_search_walks_find;
          Alcotest.test_case "expanding ring strategy" `Quick test_search_strategy_expanding_ring;
          Alcotest.test_case "cost vs replication" `Quick test_search_cost_scales_with_replication;
          Alcotest.test_case "Eq. 6 value" `Quick test_search_model_cost;
          Alcotest.test_case "size mismatch rejected" `Quick test_search_mismatched_sizes_rejected;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
