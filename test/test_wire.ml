(* Wire codec tests: qcheck encode/decode round-trip over every message
   kind, plus adversarial decodes (truncation, garbage, wrong version,
   corrupt bodies) asserting structured errors and no exceptions. *)

module Wire = Pdht_wire.Wire

let msg = Alcotest.testable Wire.pp Wire.equal

let decode_ok bytes =
  match Wire.decode bytes ~pos:0 ~len:(Bytes.length bytes) with
  | Ok (m, consumed) -> (m, consumed)
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)

let roundtrip m =
  let bytes = Wire.encode_bytes m in
  let m', consumed = decode_ok bytes in
  Alcotest.check msg "round-trip" m m';
  Alcotest.(check int) "consumed whole frame" (Bytes.length bytes) consumed

(* ------------------------------------------------------------------ *)
(* Deterministic round-trips: one representative per constructor, with
   awkward scalar values (negative ints, infinities, NaN, zero-length
   and non-ASCII strings). *)

let sample_msgs : Wire.msg list =
  [
    Hello { node_id = 0 };
    Hello { node_id = max_int };
    Setup { nodes = 8; members = 1000; keys = 300; stor = 50; eviction = 2; seed = 42 };
    Lookup { rid = 1; span = -1; src = 17; dst = 988; key = 299 };
    Insert { rid = 2; peer = 3; key = 7; value = 11; now = 120.5; ttl = 1e15 };
    Gossip { span = 9; src = 0; dst = 999; key = 0 };
    Repair { rid = 3; peer = 4; key = 8; value = 12; now = 0.; ttl = 0.25 };
    Get { rid = 4; peer = 5; key = 9; refresh = true; now = 1.5; ttl = 30. };
    Get { rid = 5; peer = 6; key = 10; refresh = false; now = nan; ttl = infinity };
    Probe { rid = 6; op = Mem; peer = 7; key = 11; now = 3. };
    Probe { rid = 7; op = Expiry; peer = 8; key = 12; now = 4. };
    Probe { rid = 8; op = Live_count; peer = 9; key = 0; now = 5. };
    Probe { rid = 9; op = Clear; peer = 10; key = 0; now = 6. };
    Ack { rid = 10; ok = true; value = -1 };
    Ack { rid = 11; ok = false; value = min_int };
    Ack_float { rid = 12; ok = true; value = neg_infinity };
    Snapshot { rid = 13 };
    Counters { rid = 14; node_id = 3; counters = [] };
    Counters
      {
        rid = 15;
        node_id = 0;
        counters = [ ("proc.frames_in", 12); ("", 0); ("utf8 n\xc3\xb8de", -7) ];
      };
    Bye;
  ]

let test_samples_roundtrip () = List.iter roundtrip sample_msgs

let test_stream_of_frames () =
  (* Several frames back to back in one buffer decode in sequence. *)
  let b = Buffer.create 256 in
  List.iter (Wire.encode b) sample_msgs;
  let bytes = Buffer.to_bytes b in
  let pos = ref 0 in
  List.iter
    (fun expect ->
      match Wire.decode bytes ~pos:!pos ~len:(Bytes.length bytes - !pos) with
      | Ok (m, consumed) ->
          Alcotest.check msg "stream frame" expect m;
          pos := !pos + consumed
      | Error e -> Alcotest.failf "stream decode failed: %s" (Wire.error_to_string e))
    sample_msgs;
  Alcotest.(check int) "stream fully consumed" (Bytes.length bytes) !pos

(* ------------------------------------------------------------------ *)
(* Adversarial decodes.  Contract: every byte string yields Ok or a
   structured Error — never an exception — and the error kind
   distinguishes "wait for more bytes" from "drop the connection". *)

let test_truncation_every_prefix () =
  let bytes = Wire.encode_bytes (Wire.Lookup { rid = 1; span = 2; src = 3; dst = 4; key = 5 }) in
  let total = Bytes.length bytes in
  for len = 0 to total - 1 do
    match Wire.decode bytes ~pos:0 ~len with
    | Error (Wire.Truncated { need; have }) ->
        Alcotest.(check int) "have = len" len have;
        let expected_need = if len < 4 then 4 else total in
        Alcotest.(check int) "need" expected_need need
    | Ok _ -> Alcotest.failf "truncated frame (len=%d) decoded" len
    | Error e ->
        Alcotest.failf "truncated frame (len=%d) misreported: %s" len
          (Wire.error_to_string e)
  done

let test_bad_version () =
  let bytes = Wire.encode_bytes Wire.Bye in
  Bytes.set bytes 4 '\x63';
  match Wire.decode bytes ~pos:0 ~len:(Bytes.length bytes) with
  | Error (Wire.Bad_version 0x63) -> ()
  | Ok _ -> Alcotest.fail "bad version accepted"
  | Error e -> Alcotest.failf "bad version misreported: %s" (Wire.error_to_string e)

let test_unknown_kind () =
  let bytes = Wire.encode_bytes Wire.Bye in
  Bytes.set bytes 5 '\xfe';
  match Wire.decode bytes ~pos:0 ~len:(Bytes.length bytes) with
  | Error (Wire.Unknown_kind 0xfe) -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error e -> Alcotest.failf "unknown kind misreported: %s" (Wire.error_to_string e)

let test_frame_too_large () =
  let bytes = Bytes.make 8 '\xff' in
  match Wire.decode bytes ~pos:0 ~len:8 with
  | Error (Wire.Frame_too_large { limit; _ }) ->
      Alcotest.(check int) "limit advertised" Wire.max_payload limit
  | Ok _ -> Alcotest.fail "absurd length prefix accepted"
  | Error e -> Alcotest.failf "oversize misreported: %s" (Wire.error_to_string e)

let malformed label bytes =
  match Wire.decode bytes ~pos:0 ~len:(Bytes.length bytes) with
  | Error (Wire.Malformed _) -> ()
  | Ok _ -> Alcotest.failf "%s: accepted" label
  | Error e -> Alcotest.failf "%s: misreported: %s" label (Wire.error_to_string e)

let frame_of_payload payload =
  let n = String.length payload in
  let b = Buffer.create (4 + n) in
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_string b payload;
  Buffer.to_bytes b

let test_malformed_bodies () =
  (* Complete frames whose payloads are garbage in various ways. *)
  malformed "empty payload rejected" (frame_of_payload "");
  malformed "version-only payload" (frame_of_payload "\x01");
  (* Hello with a short body: kind 1 but no 8-byte node id. *)
  malformed "short body" (frame_of_payload "\x01\x01\x00\x00");
  (* Bye with trailing junk after the (empty) body. *)
  malformed "trailing bytes" (frame_of_payload "\x01\x0d\x00");
  (* Ack whose boolean byte is 7. *)
  (let bytes = Wire.encode_bytes (Wire.Ack { rid = 0; ok = false; value = 0 }) in
   Bytes.set bytes (4 + 2 + 8) '\x07';
   malformed "bad boolean" bytes);
  (* Probe whose op code is out of range. *)
  (let bytes = Wire.encode_bytes (Wire.Probe { rid = 0; op = Mem; peer = 0; key = 0; now = 0. }) in
   Bytes.set bytes (4 + 2 + 8) '\x2a';
   malformed "bad probe op" bytes);
  (* Counters whose list count claims far more entries than the body holds. *)
  (let payload = "\x01\x0c" ^ String.make 16 '\x00' ^ "\x00\x00\xff\xff" in
   malformed "oversized list count" (frame_of_payload payload));
  (* Out-of-range pos/len must be a structured error, not a crash. *)
  malformed "negative len" (Bytes.create 0 |> fun b ->
    match Wire.decode b ~pos:0 ~len:(-1) with
    | Error (Wire.Malformed _) -> frame_of_payload "\x00"  (* re-checked below *)
    | _ -> Alcotest.fail "negative len accepted");
  match Wire.decode (Bytes.create 4) ~pos:3 ~len:4 with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "pos+len beyond buffer accepted"

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_msg : Wire.msg QCheck.Gen.t =
  let open QCheck.Gen in
  let id = frequency [ (8, small_nat); (1, int) ] in
  let fl =
    frequency
      [ (8, float); (1, oneofl [ 0.; -0.; infinity; neg_infinity; nan; 1e15 ]) ]
  in
  let op = oneofl [ Wire.Mem; Wire.Expiry; Wire.Live_count; Wire.Clear ] in
  let name = string_size ~gen:printable (int_bound 40) in
  oneof
    [
      map (fun node_id -> Wire.Hello { node_id }) id;
      map3
        (fun (nodes, members) (keys, stor) (eviction, seed) ->
          Wire.Setup { nodes; members; keys; stor; eviction; seed })
        (pair id id) (pair id id) (pair id id);
      map3
        (fun rid (span, src) (dst, key) -> Wire.Lookup { rid; span; src; dst; key })
        id (pair id id) (pair id id);
      map3
        (fun (rid, peer) (key, value) (now, ttl) ->
          Wire.Insert { rid; peer; key; value; now; ttl })
        (pair id id) (pair id id) (pair fl fl);
      map3 (fun span src (dst, key) -> Wire.Gossip { span; src; dst; key }) id id (pair id id);
      map3
        (fun (rid, peer) (key, value) (now, ttl) ->
          Wire.Repair { rid; peer; key; value; now; ttl })
        (pair id id) (pair id id) (pair fl fl);
      map3
        (fun (rid, peer) (key, refresh) (now, ttl) ->
          Wire.Get { rid; peer; key; refresh; now; ttl })
        (pair id id) (pair id bool) (pair fl fl);
      map3
        (fun (rid, op) (peer, key) now -> Wire.Probe { rid; op; peer; key; now })
        (pair id op) (pair id id) fl;
      map3 (fun rid ok value -> Wire.Ack { rid; ok; value }) id bool id;
      map3 (fun rid ok value -> Wire.Ack_float { rid; ok; value }) id bool fl;
      map (fun rid -> Wire.Snapshot { rid }) id;
      map3
        (fun rid node_id counters -> Wire.Counters { rid; node_id; counters })
        id id
        (list_size (int_bound 12) (pair name id));
      return Wire.Bye;
    ]

let arb_msg = QCheck.make ~print:(Format.asprintf "%a" Wire.pp) gen_msg

let prop_roundtrip =
  QCheck.Test.make ~name:"wire round-trip all kinds" ~count:2000 arb_msg (fun m ->
      let bytes = Wire.encode_bytes m in
      match Wire.decode bytes ~pos:0 ~len:(Bytes.length bytes) with
      | Ok (m', consumed) -> Wire.equal m m' && consumed = Bytes.length bytes
      | Error _ -> false)

let prop_garbage_total =
  (* Decoding arbitrary bytes never raises; every outcome is Ok or a
     structured error. *)
  QCheck.Test.make ~name:"wire decode total on garbage" ~count:2000
    QCheck.(string_of_size Gen.(int_bound 64))
    (fun s ->
      let bytes = Bytes.of_string s in
      match Wire.decode bytes ~pos:0 ~len:(Bytes.length bytes) with
      | Ok _ | Error _ -> true)

let prop_corrupted_frame_total =
  (* Flipping one byte of a valid frame never raises either. *)
  QCheck.Test.make ~name:"wire decode total on corrupted frames" ~count:2000
    QCheck.(pair arb_msg (pair small_nat (int_bound 255)))
    (fun (m, (at, v)) ->
      let bytes = Wire.encode_bytes m in
      let at = at mod Bytes.length bytes in
      Bytes.set bytes at (Char.chr v);
      match Wire.decode bytes ~pos:0 ~len:(Bytes.length bytes) with
      | Ok _ | Error _ -> true)

let qcheck_tests = [ prop_roundtrip; prop_garbage_total; prop_corrupted_frame_total ]

let () =
  Alcotest.run "pdht_wire"
    [
      ( "codec",
        [
          Alcotest.test_case "sample round-trips" `Quick test_samples_roundtrip;
          Alcotest.test_case "frame stream" `Quick test_stream_of_frames;
          Alcotest.test_case "truncation at every prefix" `Quick test_truncation_every_prefix;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "unknown kind" `Quick test_unknown_kind;
          Alcotest.test_case "frame too large" `Quick test_frame_too_large;
          Alcotest.test_case "malformed bodies" `Quick test_malformed_bodies;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
