(* Tests for Pdht_work: query and update streams, scenarios. *)

module Rng = Pdht_util.Rng
module Query_gen = Pdht_work.Query_gen
module Update_gen = Pdht_work.Update_gen
module Scenario = Pdht_work.Scenario

let make_gen ?(num_peers = 100) ?(f_qry = 1.) ?(keys = 50) ?(seed = 1) () =
  let rng = Rng.create ~seed in
  Query_gen.create rng ~num_peers ~f_qry
    ~distribution:(Pdht_dist.Discrete.zipf ~n:keys ~alpha:1.2)
    ~shift:(Pdht_dist.Popularity_shift.static ~n:keys)
    ()

(* ------------------------------------------------------------------ *)
(* Query generation *)

let test_query_fields_in_range () =
  let g = make_gen () in
  let t = ref 0. in
  for _ = 1 to 1000 do
    let q = Query_gen.next g ~after:!t in
    Alcotest.(check bool) "time advances" true (q.Query_gen.time > !t);
    Alcotest.(check bool) "peer in range" true
      (q.Query_gen.peer >= 0 && q.Query_gen.peer < 100);
    Alcotest.(check bool) "key in range" true
      (q.Query_gen.key_index >= 0 && q.Query_gen.key_index < 50);
    Alcotest.(check bool) "rank in range" true
      (q.Query_gen.rank >= 1 && q.Query_gen.rank <= 50);
    t := q.Query_gen.time
  done

let test_query_rate () =
  let g = make_gen ~num_peers:200 ~f_qry:0.5 () in
  Alcotest.(check (float 1e-9)) "expected rate" 100. (Query_gen.expected_rate g);
  (* Empirically: count queries in [0, 100] — expect ~10000 ± 5%. *)
  let count = Seq.length (Query_gen.stream g ~from:0. ~until:100.) in
  Alcotest.(check bool)
    (Printf.sprintf "%d queries close to 10000" count)
    true
    (count > 9_300 && count < 10_700)

let test_query_zipf_popularity () =
  let g = make_gen ~keys:100 ~f_qry:2. () in
  let counts = Array.make 100 0 in
  Seq.iter
    (fun q -> counts.(q.Query_gen.rank - 1) <- counts.(q.Query_gen.rank - 1) + 1)
    (Query_gen.stream g ~from:0. ~until:200.);
  Alcotest.(check bool) "rank 1 much more popular than rank 50" true
    (counts.(0) > 5 * counts.(49))

let test_query_shift_changes_keys () =
  let rng = Rng.create ~seed:2 in
  let shift = Pdht_dist.Popularity_shift.swap_halves_at ~n:100 ~time:500. in
  let g =
    Query_gen.create rng ~num_peers:100 ~f_qry:1.
      ~distribution:(Pdht_dist.Discrete.zipf ~n:100 ~alpha:1.2)
      ~shift ()
  in
  (* Before the shift, rank 1 maps to key 0; after, to a high key. *)
  let before = ref None and after = ref None in
  Seq.iter
    (fun q ->
      if q.Query_gen.rank = 1 then
        if q.Query_gen.time < 500. then before := Some q.Query_gen.key_index
        else after := Some q.Query_gen.key_index)
    (Query_gen.stream g ~from:0. ~until:1000.);
  match (!before, !after) with
  | Some b, Some a ->
      Alcotest.(check int) "before: identity" 0 b;
      Alcotest.(check bool) "after: moved" true (a >= 50)
  | _ -> Alcotest.fail "expected rank-1 queries on both sides of the shift"

let test_query_attach_to_engine () =
  let g = make_gen ~f_qry:0.5 () in
  let engine = Pdht_sim.Engine.create () in
  let seen = ref 0 in
  let monotone = ref true in
  let last = ref 0. in
  Query_gen.attach g engine ~until:50. ~handler:(fun eng ~peer ~key_index ~rank ->
      incr seen;
      if peer < 0 || peer >= 100 then monotone := false;
      if key_index < 0 || rank < 0 then monotone := false;
      (* handlers fire at the query's scheduled time, so engine time is
         the event time and must advance monotonically *)
      if Pdht_sim.Engine.now eng < !last then monotone := false;
      last := Pdht_sim.Engine.now eng);
  Pdht_sim.Engine.run engine ~until:50.;
  Alcotest.(check bool) "queries fired" true (!seen > 0);
  Alcotest.(check bool) "times consistent with engine" true !monotone

let test_query_validation () =
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "mismatched sizes"
    (Invalid_argument "Query_gen.create: distribution and shift disagree on key count")
    (fun () ->
      ignore
        (Query_gen.create rng ~num_peers:10 ~f_qry:1.
           ~distribution:(Pdht_dist.Discrete.uniform ~n:5)
           ~shift:(Pdht_dist.Popularity_shift.static ~n:6) ()))

(* ------------------------------------------------------------------ *)
(* Rate profiles *)

module Rate_profile = Pdht_work.Rate_profile

let test_profile_constant () =
  let p = Rate_profile.constant 0.5 in
  Alcotest.(check (float 1e-12)) "rate" 0.5 (Rate_profile.rate_at p 100.);
  Alcotest.(check (float 1e-12)) "max" 0.5 (Rate_profile.max_rate p);
  Alcotest.(check (float 1e-9)) "mean" 0.5 (Rate_profile.mean_rate p ~horizon:100.)

let test_profile_diurnal_phases () =
  let p = Rate_profile.diurnal ~busy:1. ~calm:0.1 ~period:100. ~busy_fraction:0.3 in
  Alcotest.(check (float 1e-12)) "busy at start" 1. (Rate_profile.rate_at p 0.);
  Alcotest.(check (float 1e-12)) "busy before boundary" 1. (Rate_profile.rate_at p 29.);
  Alcotest.(check (float 1e-12)) "calm after boundary" 0.1 (Rate_profile.rate_at p 30.);
  Alcotest.(check (float 1e-12)) "wraps" 1. (Rate_profile.rate_at p 105.);
  Alcotest.(check (float 1e-12)) "max is busy" 1. (Rate_profile.max_rate p);
  (* Mean over whole periods: 0.3*1 + 0.7*0.1 = 0.37. *)
  Alcotest.(check (float 0.01)) "mean" 0.37 (Rate_profile.mean_rate p ~horizon:1000.)

let test_profile_piecewise () =
  let p = Rate_profile.piecewise ~default:0.2 [ (10., 20., 2.); (30., 40., 5.) ] in
  Alcotest.(check (float 1e-12)) "default" 0.2 (Rate_profile.rate_at p 5.);
  Alcotest.(check (float 1e-12)) "segment 1" 2. (Rate_profile.rate_at p 15.);
  Alcotest.(check (float 1e-12)) "segment 2" 5. (Rate_profile.rate_at p 35.);
  Alcotest.(check (float 1e-12)) "after segments" 0.2 (Rate_profile.rate_at p 50.);
  Alcotest.(check (float 1e-12)) "max" 5. (Rate_profile.max_rate p)

let test_profile_validation () =
  Alcotest.check_raises "constant" (Invalid_argument "Rate_profile.constant: rate must be positive")
    (fun () -> ignore (Rate_profile.constant 0.));
  Alcotest.check_raises "fraction"
    (Invalid_argument "Rate_profile.diurnal: busy_fraction must be in (0,1)") (fun () ->
      ignore (Rate_profile.diurnal ~busy:1. ~calm:0.5 ~period:10. ~busy_fraction:1.))

let test_query_gen_thinning_rate () =
  (* A 50/50 busy/calm profile must produce close to the mean rate. *)
  let rng = Rng.create ~seed:9 in
  let profile = Rate_profile.diurnal ~busy:1. ~calm:0.2 ~period:100. ~busy_fraction:0.5 in
  let g =
    Query_gen.create rng ~num_peers:50 ~f_qry:1. ~profile
      ~distribution:(Pdht_dist.Discrete.uniform ~n:10)
      ~shift:(Pdht_dist.Popularity_shift.static ~n:10)
      ()
  in
  (* Expected: 50 peers * 0.6 mean = 30/s over whole periods. *)
  let count = Seq.length (Query_gen.stream g ~from:0. ~until:1000.) in
  Alcotest.(check bool) (Printf.sprintf "%d near 30000" count) true
    (count > 28_000 && count < 32_000);
  (* Busy windows see ~5x the calm-window traffic. *)
  let busy = ref 0 and calm = ref 0 in
  Seq.iter
    (fun q ->
      if Float.rem q.Query_gen.time 100. < 50. then incr busy else incr calm)
    (Query_gen.stream g ~from:0. ~until:500.);
  Alcotest.(check bool)
    (Printf.sprintf "busy %d >> calm %d" !busy !calm)
    true
    (float_of_int !busy > 3. *. float_of_int !calm)

(* ------------------------------------------------------------------ *)
(* Update generation *)

let test_update_rate () =
  let rng = Rng.create ~seed:4 in
  let g = Update_gen.create rng ~articles:100 ~mean_lifetime:50. in
  (* Rate = 100/50 = 2/s; in 500 s expect ~1000 events. *)
  let count = Seq.length (Update_gen.stream g ~from:0. ~until:500.) in
  Alcotest.(check bool) (Printf.sprintf "%d near 1000" count) true
    (count > 850 && count < 1150)

let test_update_ids_in_range () =
  let rng = Rng.create ~seed:5 in
  let g = Update_gen.create rng ~articles:30 ~mean_lifetime:10. in
  Seq.iter
    (fun u ->
      Alcotest.(check bool) "article id" true
        (u.Update_gen.article_id >= 0 && u.Update_gen.article_id < 30))
    (Update_gen.stream g ~from:0. ~until:100.)

let test_update_per_key_frequency () =
  let rng = Rng.create ~seed:6 in
  let g = Update_gen.create rng ~articles:2000 ~mean_lifetime:86_400. in
  Alcotest.(check (float 1e-12)) "fUpd = 1/lifetime" (1. /. 86_400.)
    (Update_gen.per_key_update_frequency g ~keys_per_article:20)

let test_update_attach () =
  let rng = Rng.create ~seed:7 in
  let g = Update_gen.create rng ~articles:10 ~mean_lifetime:5. in
  let engine = Pdht_sim.Engine.create () in
  let seen = ref 0 in
  Update_gen.attach g engine ~until:20. ~handler:(fun _ ~article_id:_ -> incr seen);
  Pdht_sim.Engine.run engine ~until:20.;
  Alcotest.(check bool) "updates fired" true (!seen > 10)

let test_update_validation () =
  let rng = Rng.create ~seed:8 in
  Alcotest.check_raises "lifetime"
    (Invalid_argument "Update_gen.create: lifetime must be positive") (fun () ->
      ignore (Update_gen.create rng ~articles:5 ~mean_lifetime:0.))

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_scenario_default_valid () =
  match Scenario.validate Scenario.news_default with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_scenario_materialisation () =
  let s = Scenario.news_default in
  let d = Scenario.distribution s in
  Alcotest.(check int) "distribution size" s.Scenario.keys (Pdht_dist.Discrete.n d);
  let shift = Scenario.popularity_shift s in
  Alcotest.(check int) "shift size" s.Scenario.keys (Pdht_dist.Popularity_shift.n shift)

let test_scenario_rates () =
  let s = Scenario.news_default in
  Alcotest.(check (float 1e-9)) "total rate"
    (float_of_int s.Scenario.num_peers *. s.Scenario.f_qry)
    (Scenario.total_query_rate s);
  Alcotest.(check (float 1e-6)) "expected queries"
    (Scenario.total_query_rate s *. s.Scenario.duration)
    (Scenario.expected_queries s)

let test_scenario_with_scale () =
  let s = Scenario.with_scale Scenario.news_default ~peers:500 ~keys:999 in
  Alcotest.(check int) "peers" 500 s.Scenario.num_peers;
  Alcotest.(check int) "keys" 999 s.Scenario.keys

let test_scenario_rejects_bad () =
  let bad = { Scenario.news_default with Scenario.f_qry = 0. } in
  (match Scenario.validate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero f_qry must fail");
  let bad_churn =
    {
      Scenario.news_default with
      Scenario.churn =
        Scenario.Exponential_sessions
          { mean_uptime = -1.; mean_downtime = 1.; initially_online_fraction = 0.5 };
    }
  in
  match Scenario.validate bad_churn with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative uptime must fail"

let test_scenario_presets_valid () =
  Alcotest.(check bool) "several presets" true (List.length Scenario.presets >= 5);
  List.iter
    (fun (name, description, s) ->
      Alcotest.(check string) "name matches scenario" name s.Scenario.name;
      Alcotest.(check bool) "described" true (String.length description > 0);
      (match Scenario.validate s with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg));
      match Scenario.preset name with
      | Some found -> Alcotest.(check string) "lookup finds it" name found.Scenario.name
      | None -> Alcotest.fail ("preset lookup failed for " ^ name))
    Scenario.presets;
  Alcotest.(check bool) "unknown preset" true (Scenario.preset "no-such" = None)

let test_scenario_variants_materialise () =
  let base = Scenario.news_default in
  let variants =
    [
      { base with Scenario.distribution = Scenario.Uniform };
      { base with Scenario.distribution = Scenario.Hot_cold { hot = 10; hot_mass = 0.9 } };
      { base with Scenario.shift = Scenario.Swap_halves_at 100. };
      { base with Scenario.shift = Scenario.Rotate { times = [ 10.; 20. ]; offset = 7 } };
    ]
  in
  List.iter
    (fun s ->
      ignore (Scenario.distribution s);
      ignore (Scenario.popularity_shift s);
      match Scenario.validate s with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg)
    variants

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"query stream strictly increasing times" ~count:50
      (pair small_int (int_range 1 100))
      (fun (seed, peers) ->
        let rng = Rng.create ~seed in
        let g =
          Query_gen.create rng ~num_peers:peers ~f_qry:1.
            ~distribution:(Pdht_dist.Discrete.uniform ~n:10)
            ~shift:(Pdht_dist.Popularity_shift.static ~n:10) ()
        in
        let ok = ref true in
        let prev = ref 0. in
        Seq.iter
          (fun q ->
            if q.Query_gen.time <= !prev then ok := false;
            prev := q.Query_gen.time)
          (Query_gen.stream g ~from:0. ~until:50.);
        !ok);
    Test.make ~name:"stream respects until bound" ~count:50
      (pair small_int (float_range 1. 100.))
      (fun (seed, until) ->
        let rng = Rng.create ~seed in
        let g =
          Query_gen.create rng ~num_peers:10 ~f_qry:2.
            ~distribution:(Pdht_dist.Discrete.uniform ~n:5)
            ~shift:(Pdht_dist.Popularity_shift.static ~n:5) ()
        in
        Seq.for_all (fun q -> q.Query_gen.time <= until) (Query_gen.stream g ~from:0. ~until));
  ]

let () =
  Alcotest.run "pdht_work"
    [
      ( "query-gen",
        [
          Alcotest.test_case "fields in range" `Quick test_query_fields_in_range;
          Alcotest.test_case "rate" `Quick test_query_rate;
          Alcotest.test_case "zipf popularity" `Quick test_query_zipf_popularity;
          Alcotest.test_case "shift changes keys" `Quick test_query_shift_changes_keys;
          Alcotest.test_case "attach to engine" `Quick test_query_attach_to_engine;
          Alcotest.test_case "validation" `Quick test_query_validation;
        ] );
      ( "rate-profile",
        [
          Alcotest.test_case "constant" `Quick test_profile_constant;
          Alcotest.test_case "diurnal phases" `Quick test_profile_diurnal_phases;
          Alcotest.test_case "piecewise" `Quick test_profile_piecewise;
          Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "thinning rate" `Quick test_query_gen_thinning_rate;
        ] );
      ( "update-gen",
        [
          Alcotest.test_case "rate" `Quick test_update_rate;
          Alcotest.test_case "ids in range" `Quick test_update_ids_in_range;
          Alcotest.test_case "per-key frequency" `Quick test_update_per_key_frequency;
          Alcotest.test_case "attach" `Quick test_update_attach;
          Alcotest.test_case "validation" `Quick test_update_validation;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "default valid" `Quick test_scenario_default_valid;
          Alcotest.test_case "materialisation" `Quick test_scenario_materialisation;
          Alcotest.test_case "rates" `Quick test_scenario_rates;
          Alcotest.test_case "with_scale" `Quick test_scenario_with_scale;
          Alcotest.test_case "rejects bad" `Quick test_scenario_rejects_bad;
          Alcotest.test_case "variants materialise" `Quick test_scenario_variants_materialise;
          Alcotest.test_case "presets valid" `Quick test_scenario_presets_valid;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
