(* Tests for the network subsystem (Pdht_net): config parsing and
   validation, link-model sampling and partitions, engine-scheduled
   transport delivery, RPC timeout/retry/backoff semantics, the
   synchronous query-path hook, and the system-level contracts — a
   zero-cost net reproduces the no-net report field for field, and
   net-enabled runs are byte-identical for any worker count (including
   under popularity shifts and diurnal rate profiles). *)

module Rng = Pdht_util.Rng
module Engine = Pdht_sim.Engine
module Config = Pdht_net.Config
module Link_model = Pdht_net.Link_model
module Transport = Pdht_net.Transport
module Rpc = Pdht_net.Rpc
module Hook = Pdht_net.Hook
module Registry = Pdht_obs.Registry
module Histogram = Pdht_obs.Histogram
module Scenario = Pdht_work.Scenario
module System = Pdht_core.System
module Strategy = Pdht_core.Strategy
module Runner = Pdht_core.Runner
module Run_spec = Pdht_core.Run_spec
module Run_result = Pdht_core.Run_result

let counter obs name =
  match Registry.counter_value_by_name (Pdht_obs.Context.registry obs) name with
  | Some v -> v
  | None -> 0

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_validate () =
  let ok c = Result.is_ok (Config.validate c) in
  Alcotest.(check bool) "default valid" true (ok Config.default);
  Alcotest.(check bool) "zero_cost valid" true (ok Config.zero_cost);
  let bad label c =
    Alcotest.(check bool) label false (ok c)
  in
  bad "loss > 1" { Config.default with Config.loss = 1.5 };
  bad "loss < 0" { Config.default with Config.loss = -0.1 };
  bad "negative constant latency"
    { Config.default with Config.latency = Config.Constant (-1.) };
  bad "uniform lo > hi"
    { Config.default with Config.latency = Config.Uniform { lo = 2.; hi = 1. } };
  bad "lognormal sigma < 0"
    { Config.default with Config.latency = Config.Lognormal { mu = 0.; sigma = -1. } };
  bad "zero timeout" { Config.default with Config.rpc_timeout = 0. };
  bad "negative retries" { Config.default with Config.rpc_retries = -1 };
  bad "backoff < 1" { Config.default with Config.backoff = 0.5 };
  bad "partition window reversed"
    {
      Config.default with
      Config.partitions =
        [ { Config.group_a = [| 0 |]; group_b = [| 1 |];
            from_time = 10.; until_time = 5. } ];
    };
  bad "partition negative peer"
    {
      Config.default with
      Config.partitions =
        [ { Config.group_a = [| -3 |]; group_b = [| 1 |];
            from_time = 0.; until_time = 5. } ];
    }

let test_latency_parse () =
  let check_ok spec expected =
    match Config.latency_of_string spec with
    | Ok l -> Alcotest.(check bool) spec true (l = expected)
    | Error msg -> Alcotest.failf "%s rejected: %s" spec msg
  in
  check_ok "0.05" (Config.Constant 0.05);
  check_ok "constant:0.1" (Config.Constant 0.1);
  check_ok "uniform:0.01:0.05" (Config.Uniform { lo = 0.01; hi = 0.05 });
  check_ok "lognormal:-3.0:0.5" (Config.Lognormal { mu = -3.0; sigma = 0.5 });
  List.iter
    (fun l ->
      match Config.latency_of_string (Config.latency_to_string l) with
      | Ok l' -> Alcotest.(check bool) "round trip" true (l = l')
      | Error msg -> Alcotest.failf "round trip rejected: %s" msg)
    [ Config.Constant 0.25; Config.Uniform { lo = 0.; hi = 1.5 };
      Config.Lognormal { mu = -3.; sigma = 0.6 } ];
  List.iter
    (fun spec ->
      Alcotest.(check bool) (spec ^ " rejected") true
        (Result.is_error (Config.latency_of_string spec)))
    [ "bogus"; "uniform:1"; "lognormal:0.1"; "constant:x"; "" ]

let test_timeout_backoff () =
  let c = { Config.default with Config.rpc_timeout = 1.0; backoff = 2.0 } in
  Alcotest.check feq "attempt 0" 1. (Config.timeout_for_attempt c ~attempt:0);
  Alcotest.check feq "attempt 1" 2. (Config.timeout_for_attempt c ~attempt:1);
  Alcotest.check feq "attempt 2" 4. (Config.timeout_for_attempt c ~attempt:2)

(* ------------------------------------------------------------------ *)
(* Link model *)

let test_constant_zero_loss_draws_nothing () =
  (* The stream-economy contract behind zero-cost equivalence: constant
     latency and zero loss must leave the RNG untouched. *)
  let lm =
    Link_model.create
      { Config.default with Config.latency = Config.Constant 0.05; loss = 0. }
  in
  let rng = Rng.create ~seed:1 in
  let probe = Rng.copy rng in
  Alcotest.check feq "constant sample" 0.05 (Link_model.sample_latency lm rng);
  Alcotest.(check bool) "no drop" false (Link_model.drops lm rng ~src:0 ~dst:1 ~now:0.);
  Alcotest.(check bool) "rng untouched" true (Rng.bits64 rng = Rng.bits64 probe)

let test_uniform_bounds () =
  let lo = 0.01 and hi = 0.05 in
  let lm =
    Link_model.create
      { Config.default with Config.latency = Config.Uniform { lo; hi } }
  in
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 200 do
    let s = Link_model.sample_latency lm rng in
    if s < lo || s >= hi then Alcotest.failf "uniform sample %g outside [%g,%g)" s lo hi
  done

let test_lognormal_positive () =
  let lm =
    Link_model.create
      { Config.default with
        Config.latency = Config.Lognormal { mu = -3.; sigma = 0.6 } }
  in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 200 do
    let s = Link_model.sample_latency lm rng in
    if not (Float.is_finite s && s > 0.) then
      Alcotest.failf "lognormal sample %g not finite-positive" s
  done

let test_loss_one_drops_all () =
  let lm = Link_model.create { Config.default with Config.loss = 1.0 } in
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "dropped" true (Link_model.drops lm rng ~src:0 ~dst:1 ~now:0.)
  done

let test_partition_window () =
  let cfg =
    {
      Config.default with
      Config.loss = 0.;
      partitions =
        [ { Config.group_a = [| 0; 1 |]; group_b = [| 5; 6 |];
            from_time = 10.; until_time = 20. } ];
    }
  in
  let lm = Link_model.create cfg in
  let part ~src ~dst ~now = Link_model.partitioned lm ~src ~dst ~now in
  Alcotest.(check bool) "inside window" true (part ~src:0 ~dst:5 ~now:15.);
  Alcotest.(check bool) "window start inclusive" true (part ~src:1 ~dst:6 ~now:10.);
  Alcotest.(check bool) "symmetric" true (part ~src:6 ~dst:1 ~now:15.);
  Alcotest.(check bool) "before window" false (part ~src:0 ~dst:5 ~now:9.9);
  Alcotest.(check bool) "window end exclusive" false (part ~src:0 ~dst:5 ~now:20.);
  Alcotest.(check bool) "uninvolved peer" false (part ~src:0 ~dst:3 ~now:15.);
  Alcotest.(check bool) "same side" false (part ~src:0 ~dst:1 ~now:15.);
  (* A partition drop is deterministic: no RNG draw even at loss 0. *)
  let rng = Rng.create ~seed:5 in
  let probe = Rng.copy rng in
  Alcotest.(check bool) "partition drops" true
    (Link_model.drops lm rng ~src:0 ~dst:5 ~now:15.);
  Alcotest.(check bool) "no draw for partition drop" true
    (Rng.bits64 rng = Rng.bits64 probe)

(* ------------------------------------------------------------------ *)
(* Transport *)

let transport_with ?(seed = 7) cfg =
  let obs = Pdht_obs.Context.create () in
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let t = Transport.create ~obs ~engine ~rng (Link_model.create cfg) in
  (obs, engine, t)

let test_transport_delivery () =
  let obs, engine, t =
    transport_with { Config.default with Config.latency = Config.Constant 0.25; loss = 0. }
  in
  let arrived = ref nan in
  let accepted =
    Transport.send t ~src:1 ~dst:2 (fun e -> arrived := Engine.now e)
  in
  Alcotest.(check bool) "send accepted" true accepted;
  Alcotest.(check bool) "not delivered before run" true (Float.is_nan !arrived);
  Engine.run engine ~until:10.;
  Alcotest.check feq "delivered after one latency" 0.25 !arrived;
  Alcotest.(check int) "sent" 1 (counter obs "net.messages_sent");
  Alcotest.(check int) "dropped" 0 (counter obs "net.messages_dropped")

let test_transport_drop () =
  let obs, engine, t = transport_with { Config.default with Config.loss = 1.0 } in
  let delivered = ref false in
  let accepted = Transport.send t ~src:1 ~dst:2 (fun _ -> delivered := true) in
  Alcotest.(check bool) "send refused" false accepted;
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "never delivered" false !delivered;
  Alcotest.(check int) "sent" 1 (counter obs "net.messages_sent");
  Alcotest.(check int) "dropped" 1 (counter obs "net.messages_dropped")

(* ------------------------------------------------------------------ *)
(* Rpc *)

let test_rpc_success () =
  let obs, engine, t =
    transport_with
      { Config.default with
        Config.latency = Config.Constant 0.25; loss = 0.;
        rpc_timeout = 1.0; rpc_retries = 3; backoff = 2.0 }
  in
  let rpc = Rpc.create t in
  let handler_at = ref nan and reply = ref None in
  Rpc.call rpc ~src:1 ~dst:2
    ~handler:(fun () -> handler_at := Engine.now (Transport.engine t); true)
    ~on_reply:(fun ~ok e -> reply := Some (ok, Engine.now e));
  Engine.run engine ~until:60.;
  Alcotest.check feq "request arrives after one leg" 0.25 !handler_at;
  (match !reply with
  | Some (true, at) -> Alcotest.check feq "reply after the round trip" 0.5 at
  | Some (false, _) -> Alcotest.fail "rpc failed on a loss-free link"
  | None -> Alcotest.fail "rpc never settled");
  Alcotest.(check int) "request + response" 2 (counter obs "net.messages_sent");
  Alcotest.(check int) "no retries" 0 (counter obs "net.messages_retried");
  Alcotest.(check int) "no timeouts" 0 (counter obs "net.messages_timed_out")

let test_rpc_all_lost () =
  let obs, engine, t =
    transport_with
      { Config.default with
        Config.loss = 1.0; rpc_timeout = 1.0; rpc_retries = 2; backoff = 2.0 }
  in
  let rpc = Rpc.create t in
  let reply = ref None in
  Rpc.call rpc ~src:1 ~dst:2
    ~handler:(fun () -> true)
    ~on_reply:(fun ~ok e -> reply := Some (ok, Engine.now e));
  Engine.run engine ~until:60.;
  (match !reply with
  | Some (false, at) ->
      (* Attempt timeouts 1 + 2 + 4 elapse before the caller gives up. *)
      Alcotest.check feq "gives up after the backoff ladder" 7.0 at
  | Some (true, _) -> Alcotest.fail "rpc succeeded on a fully lossy link"
  | None -> Alcotest.fail "rpc never settled");
  Alcotest.(check int) "one request per attempt" 3 (counter obs "net.messages_sent");
  Alcotest.(check int) "retried" 2 (counter obs "net.messages_retried");
  Alcotest.(check int) "timed out" 1 (counter obs "net.messages_timed_out")

let test_rpc_handler_refuses () =
  let obs, engine, t =
    transport_with
      { Config.default with
        Config.latency = Config.Constant 0.1; loss = 0.;
        rpc_timeout = 1.0; rpc_retries = 1; backoff = 2.0 }
  in
  let rpc = Rpc.create t in
  let handler_calls = ref 0 and reply = ref None in
  Rpc.call rpc ~src:1 ~dst:2
    ~handler:(fun () -> incr handler_calls; false)
    ~on_reply:(fun ~ok e -> reply := Some (ok, Engine.now e));
  Engine.run engine ~until:60.;
  Alcotest.(check int) "handler ran on every delivered attempt" 2 !handler_calls;
  (match !reply with
  | Some (false, at) -> Alcotest.check feq "settled by the final timeout" 3.0 at
  | Some (true, _) -> Alcotest.fail "a refusing peer produced a success"
  | None -> Alcotest.fail "rpc never settled");
  Alcotest.(check int) "requests only, no responses" 2 (counter obs "net.messages_sent");
  Alcotest.(check int) "timed out" 1 (counter obs "net.messages_timed_out")

(* ------------------------------------------------------------------ *)
(* Hook *)

let hook_with ?(seed = 9) cfg =
  let obs = Pdht_obs.Context.create () in
  (obs, Hook.create ~obs ~rng:(Rng.create ~seed) cfg)

let test_hook_clock () =
  let obs, h =
    hook_with
      { Config.default with Config.latency = Config.Constant 0.05; loss = 0. }
  in
  Hook.begin_op h ~now:100.;
  Alcotest.check feq "clock starts at zero" 0. (Hook.elapsed h);
  Alcotest.(check bool) "rpc succeeds" true (Hook.rpc h ~src:0 ~dst:1);
  Alcotest.check feq "round trip charged" 0.1 (Hook.elapsed h);
  Alcotest.(check bool) "cast succeeds" true (Hook.cast h ~src:0 ~dst:1);
  Alcotest.check feq "cast does not touch the clock" 0.1 (Hook.elapsed h);
  Hook.advance_rounds h 3;
  Alcotest.check feq "one latency per wave" 0.25 (Hook.elapsed h);
  Alcotest.(check int) "sent: 2 rpc legs + 1 cast" 3 (counter obs "net.messages_sent");
  (* A later operation resets the clock. *)
  Hook.begin_op h ~now:200.;
  Alcotest.check feq "fresh operation" 0. (Hook.elapsed h)

let test_hook_rpc_exhausts_budget () =
  let obs, h =
    hook_with
      { Config.default with
        Config.loss = 1.0; rpc_timeout = 1.0; rpc_retries = 3; backoff = 2.0 }
  in
  Hook.begin_op h ~now:0.;
  Alcotest.(check bool) "rpc fails" false (Hook.rpc h ~src:0 ~dst:1);
  Alcotest.check feq "every timeout charged (1+2+4+8)" 15. (Hook.elapsed h);
  Alcotest.(check int) "retried" 3 (counter obs "net.messages_retried");
  Alcotest.(check int) "timed out" 1 (counter obs "net.messages_timed_out")

let test_hook_partition_blocks () =
  let _obs, h =
    hook_with
      {
        Config.default with
        Config.loss = 0.;
        rpc_retries = 0;
        partitions =
          [ { Config.group_a = [| 0 |]; group_b = [| 1 |];
              from_time = 0.; until_time = 1000. } ];
      }
  in
  Hook.begin_op h ~now:10.;
  Alcotest.(check bool) "partitioned pair fails" false (Hook.rpc h ~src:0 ~dst:1);
  Alcotest.(check bool) "unaffected pair succeeds" true (Hook.rpc h ~src:0 ~dst:2);
  (* After the window heals, the same pair talks again. *)
  Hook.begin_op h ~now:2000.;
  Alcotest.(check bool) "healed" true (Hook.rpc h ~src:0 ~dst:1)

let test_hook_latency_histogram_ms () =
  let obs, h =
    hook_with
      { Config.default with Config.latency = Config.Constant 0.05; loss = 0. }
  in
  Hook.begin_op h ~now:0.;
  ignore (Hook.rpc h ~src:0 ~dst:1);
  Hook.record_latency h;
  match
    Registry.find_histogram (Pdht_obs.Context.registry obs) "net.query_latency_ms"
  with
  | None -> Alcotest.fail "net.query_latency_ms not registered"
  | Some hist ->
      Alcotest.(check int) "one observation" 1 (Histogram.count hist);
      let p50 = Histogram.quantile hist 0.5 in
      (* 0.1 s recorded as 100 ms, resolved to within one ~9% bucket. *)
      if p50 < 90. || p50 > 110. then
        Alcotest.failf "p50 = %g ms, expected ~100 ms" p50

(* ------------------------------------------------------------------ *)
(* System-level contracts *)

let sim_scenario =
  {
    Scenario.news_default with
    Scenario.num_peers = 300;
    keys = 600;
    duration = 300.;
    seed = 11;
    churn =
      Scenario.Exponential_sessions
        { mean_uptime = 300.; mean_downtime = 100.;
          initially_online_fraction = 0.8 };
  }

let strip_net (r : System.report) =
  {
    r with
    System.net = None;
    histograms =
      List.filter
        (fun (name, _) ->
          not (String.length name >= 4 && String.sub name 0 4 = "net."))
        r.System.histograms;
  }

let test_zero_cost_net_equivalence () =
  (* Satellite contract: enabling the model with zero latency and zero
     loss must reproduce the no-net report field for field once its own
     net.* additions are set aside — proof that the hook draws from its
     private stream only and perturbs nothing. *)
  let options = System.Options.make ~repl:20 ~stor:100 () in
  let strategy =
    Strategy.Partial_index { key_ttl = System.derive_key_ttl sim_scenario options }
  in
  let plain = System.run sim_scenario strategy options in
  let netted =
    System.run sim_scenario strategy (System.Options.with_net Config.zero_cost options)
  in
  (match netted.System.net with
  | None -> Alcotest.fail "net-enabled report lacks its net summary"
  | Some n ->
      Alcotest.(check bool) "query path sent messages" true (n.System.messages_sent > 0);
      Alcotest.(check int) "nothing dropped" 0 n.System.messages_dropped;
      Alcotest.(check int) "nothing retried" 0 n.System.messages_retried;
      Alcotest.(check int) "nothing timed out" 0 n.System.messages_timed_out);
  let stripped = strip_net netted in
  (* Spot-check headline fields first for a readable failure... *)
  Alcotest.(check int) "queries" plain.System.queries stripped.System.queries;
  Alcotest.(check int) "answered" plain.System.answered stripped.System.answered;
  Alcotest.(check int) "total messages" plain.System.total_messages
    stripped.System.total_messages;
  Alcotest.check feq "hit rate" plain.System.hit_rate stripped.System.hit_rate;
  Alcotest.(check int) "indexed keys" plain.System.indexed_keys_final
    stripped.System.indexed_keys_final;
  (* ...then demand the whole record agrees, samples and histograms
     included. *)
  Alcotest.(check bool) "entire report identical" true (stripped = plain)

let test_net_enabled_determinism_across_jobs () =
  (* Byte-identical reports for -j 1 vs -j 4 with net-enabled specs. *)
  let cfg =
    { Config.default with
      Config.latency = Config.Uniform { lo = 0.01; hi = 0.05 };
      loss = 0.1; rpc_timeout = 0.3; rpc_retries = 2 }
  in
  let options = System.Options.make ~repl:20 ~stor:100 ~net:cfg () in
  let scenario = { sim_scenario with Scenario.duration = 150. } in
  let specs =
    List.concat_map
      (fun seed ->
        [ Run_spec.make ~options { scenario with Scenario.seed };
          Run_spec.make ~options
            ~strategy:Strategy.Index_all
            { scenario with Scenario.seed } ])
      [ 1; 2 ]
  in
  let reports jobs = Run_result.reports_exn (Runner.run_all ~jobs specs) in
  Alcotest.(check bool) "-j 1 == -j 4" true (reports 1 = reports 4)

(* ------------------------------------------------------------------ *)
(* Determinism properties: Popularity_shift / Rate_profile scenarios
   under Runner.run_all with a net-enabled spec (satellite task). *)

let net_options =
  System.Options.make ~repl:20 ~stor:100
    ~net:
      { Config.default with
        Config.latency = Config.Uniform { lo = 0.005; hi = 0.03 };
        loss = 0.05; rpc_timeout = 0.2; rpc_retries = 1 }
    ()

let prop_scenario ~seed ~shift ~rate =
  {
    Scenario.news_default with
    Scenario.num_peers = 120;
    keys = 240;
    f_qry = 1. /. 10.;
    duration = 120.;
    seed;
    shift;
    rate;
  }

let jobs_agree scenario =
  let specs = [ Run_spec.make ~options:net_options scenario ] in
  let reports jobs = Run_result.reports_exn (Runner.run_all ~jobs specs) in
  reports 1 = reports 4

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"popularity-shift runs identical for -j 1 vs -j 4 (net on)"
      ~count:3
      (pair (int_bound 10_000) (int_bound 100))
      (fun (seed, offset) ->
        let shift =
          if offset mod 2 = 0 then Scenario.Swap_halves_at 60.
          else Scenario.Rotate { times = [ 40.; 80. ]; offset = 1 + offset }
        in
        jobs_agree (prop_scenario ~seed ~shift ~rate:Scenario.Steady));
    Test.make ~name:"rate-profile runs identical for -j 1 vs -j 4 (net on)"
      ~count:3
      (pair (int_bound 10_000) (int_bound 1))
      (fun (seed, which) ->
        let rate =
          if which = 0 then
            Scenario.Diurnal
              { calm_f_qry = 1. /. 60.; period = 60.; busy_fraction = 0.5 }
          else Scenario.Steady
        in
        jobs_agree
          (prop_scenario ~seed ~shift:(Scenario.Swap_halves_at 60.) ~rate));
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pdht_net"
    [
      ( "config",
        [
          Alcotest.test_case "validate" `Quick test_config_validate;
          Alcotest.test_case "latency parse" `Quick test_latency_parse;
          Alcotest.test_case "timeout backoff" `Quick test_timeout_backoff;
        ] );
      ( "link-model",
        [
          Alcotest.test_case "constant + zero loss draw nothing" `Quick
            test_constant_zero_loss_draws_nothing;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
          Alcotest.test_case "loss 1 drops all" `Quick test_loss_one_drops_all;
          Alcotest.test_case "partition window" `Quick test_partition_window;
        ] );
      ( "transport",
        [
          Alcotest.test_case "engine-scheduled delivery" `Quick test_transport_delivery;
          Alcotest.test_case "drop" `Quick test_transport_drop;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "success" `Quick test_rpc_success;
          Alcotest.test_case "all attempts lost" `Quick test_rpc_all_lost;
          Alcotest.test_case "handler refuses" `Quick test_rpc_handler_refuses;
        ] );
      ( "hook",
        [
          Alcotest.test_case "virtual clock" `Quick test_hook_clock;
          Alcotest.test_case "rpc exhausts budget" `Quick test_hook_rpc_exhausts_budget;
          Alcotest.test_case "partition blocks" `Quick test_hook_partition_blocks;
          Alcotest.test_case "latency histogram in ms" `Quick
            test_hook_latency_histogram_ms;
        ] );
      ( "system",
        [
          Alcotest.test_case "zero-cost net == no net" `Slow
            test_zero_cost_net_equivalence;
          Alcotest.test_case "net-enabled batch identical across jobs" `Slow
            test_net_enabled_determinism_across_jobs;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
