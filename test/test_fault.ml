(* Tests for the fault subsystem (Pdht_fault) and its system wiring:
   plan grammar and validation, injector transition semantics, the
   no-fault equivalence contract (an empty plan perturbs nothing), the
   E21 crash-dip-recover shape, repair counters gated on the repair
   knob, deterministic fault-enabled batches across worker counts, and
   the scheduled-abort path carrying engine context (time + handler
   label) into the experiment runner's failure rows. *)

module Rng = Pdht_util.Rng
module Engine = Pdht_sim.Engine
module Plan = Pdht_fault.Plan
module Injector = Pdht_fault.Injector
module Registry = Pdht_obs.Registry
module Scenario = Pdht_work.Scenario
module System = Pdht_core.System
module Strategy = Pdht_core.Strategy
module Runner = Pdht_core.Runner
module Run_spec = Pdht_core.Run_spec
module Run_result = Pdht_core.Run_result

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Plan *)

(* A parsed-and-validated session spec, for building expected values. *)
let session s =
  match Pdht_dist.Session.of_string s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "session spec %s rejected: %s" s msg

let test_plan_parse () =
  let ok spec expected =
    match Plan.of_string spec with
    | Ok plan -> Alcotest.(check bool) spec true (plan.Plan.events = expected)
    | Error msg -> Alcotest.failf "%s rejected: %s" spec msg
  in
  ok "crash:0.3@600" [ Plan.Crash { peer_fraction = 0.3; at = 600. } ];
  ok "crash:0.3@600+120"
    [ Plan.Crash_recover { peer_fraction = 0.3; at = 600.; after = 120. } ];
  ok "flap:0.1@100+30x4"
    [ Plan.Flap { peer_fraction = 0.1; at = 100.; period = 30.; cycles = 4 } ];
  ok "rack:0.2-0.4@50"
    [ Plan.Correlated { lo = 0.2; hi = 0.4; at = 50.; after = None } ];
  ok "rack:0.2-0.4@50+25"
    [ Plan.Correlated { lo = 0.2; hi = 0.4; at = 50.; after = Some 25. } ];
  ok "abort@42" [ Plan.Abort { at = 42. } ];
  ok "crash:0.5@10,abort@99"
    [ Plan.Crash { peer_fraction = 0.5; at = 10. }; Plan.Abort { at = 99. } ];
  (* The churn clause embeds the full Session grammar (':'-separated,
     so it nests inside the comma-separated event list). *)
  ok "churn:exp@50" [ Plan.Churn { spec = session "exp"; at = 50.; until = None } ];
  ok "churn:weibull:up=600:shape=0.6@100+300"
    [ Plan.Churn
        { spec = session "weibull:up=600:shape=0.6"; at = 100.; until = Some 400. } ];
  ok "crash:0.2@10,churn:lognormal:sigma=2@20+80"
    [ Plan.Crash { peer_fraction = 0.2; at = 10. };
      Plan.Churn { spec = session "lognormal:sigma=2"; at = 20.; until = Some 100. } ]

let test_plan_roundtrip () =
  List.iter
    (fun spec ->
      match Plan.of_string spec with
      | Error msg -> Alcotest.failf "%s rejected: %s" spec msg
      | Ok plan -> (
          match Plan.of_string (Plan.to_string plan) with
          | Error msg -> Alcotest.failf "%s reparse rejected: %s" spec msg
          | Ok plan' ->
              Alcotest.(check bool) (spec ^ " round-trips") true (plan = plan')))
    [ "crash:0.3@600"; "crash:0.25@600+120"; "flap:0.1@100+30x4";
      "rack:0.2-0.4@50+25"; "abort@42"; "crash:0.1@5,flap:0.2@50+10x2,abort@500";
      "churn:exp@50"; "churn:weibull:up=600:down=200:shape=0.6@100+300";
      "crash:0.2@10,churn:pareto:shape=2:on=0.5@20" ]

let test_plan_validate () =
  let bad label plan =
    Alcotest.(check bool) label true (Result.is_error (Plan.validate plan))
  in
  let crash f at = { Plan.default with Plan.events = [ Plan.Crash { peer_fraction = f; at } ] } in
  Alcotest.(check bool) "default valid" true (Result.is_ok (Plan.validate Plan.default));
  bad "fraction > 1" (crash 1.5 10.);
  bad "fraction < 0" (crash (-0.1) 10.);
  bad "negative time" (crash 0.3 (-5.));
  bad "nan time" (crash 0.3 Float.nan);
  bad "zero recovery delay"
    { Plan.default with
      Plan.events = [ Plan.Crash_recover { peer_fraction = 0.3; at = 10.; after = 0. } ] };
  bad "flap zero cycles"
    { Plan.default with
      Plan.events =
        [ Plan.Flap { peer_fraction = 0.3; at = 10.; period = 5.; cycles = 0 } ] };
  bad "rack empty range"
    { Plan.default with
      Plan.events = [ Plan.Correlated { lo = 0.5; hi = 0.5; at = 10.; after = None } ] };
  (* Rack ranges are half-open [lo, hi): overlapping ranges would fight
     over the same victims and are rejected; merely touching ranges
     share no peer and remain legal. *)
  let racks rs =
    { Plan.default with
      Plan.events =
        List.map (fun (lo, hi) -> Plan.Correlated { lo; hi; at = 10.; after = None }) rs }
  in
  bad "overlapping rack ranges" (racks [ (0.2, 0.5); (0.4, 0.7) ]);
  bad "nested rack ranges" (racks [ (0.1, 0.9); (0.3, 0.4) ]);
  Alcotest.(check bool) "touching rack ranges valid" true
    (Result.is_ok (Plan.validate (racks [ (0.0, 0.3); (0.3, 0.6) ])));
  Alcotest.(check bool) "disjoint rack ranges valid" true
    (Result.is_ok (Plan.validate (racks [ (0.0, 0.2); (0.5, 0.7) ])));
  bad "churn bad spec"
    { Plan.default with
      Plan.events =
        [ Plan.Churn
            { spec = { (session "exp") with Pdht_dist.Session.initially_online_fraction = 1.5 };
              at = 10.; until = None } ] };
  bad "churn window ends before it starts"
    { Plan.default with
      Plan.events = [ Plan.Churn { spec = session "exp"; at = 10.; until = Some 5. } ] };
  bad "repair zero period"
    { Plan.default with Plan.repair = Some { Plan.every = 0.; min_fraction = 0.5 } };
  bad "repair threshold zero"
    { Plan.default with Plan.repair = Some { Plan.every = 10.; min_fraction = 0. } };
  bad "repair threshold > 1"
    { Plan.default with Plan.repair = Some { Plan.every = 10.; min_fraction = 1.5 } };
  bad "check zero period" { Plan.default with Plan.check_invariants = true; check_every = 0. }

let test_plan_rejects_garbage () =
  List.iter
    (fun spec ->
      Alcotest.(check bool) (spec ^ " rejected") true
        (Result.is_error (Plan.of_string spec)))
    [ ""; "bogus"; "crash@10"; "crash:0.3"; "crash:x@10"; "flap:0.3@10+5";
      "rack:0.4@10"; "abort@-1"; "churn:bogus@5"; "churn:exp"; "churn:exp@10+0";
      "churn:exp:shape=2@10" ]

let test_plan_first_fault_time () =
  let plan events = { Plan.default with Plan.events } in
  Alcotest.(check (option (float 0.))) "empty" None (Plan.first_fault_time Plan.default);
  Alcotest.(check (option (float 0.))) "abort excluded" None
    (Plan.first_fault_time (plan [ Plan.Abort { at = 5. } ]));
  Alcotest.(check (option (float 0.))) "earliest crash"
    (Some 20.)
    (Plan.first_fault_time
       (plan
          [ Plan.Abort { at = 5. };
            Plan.Crash { peer_fraction = 0.1; at = 50. };
            Plan.Flap { peer_fraction = 0.1; at = 20.; period = 5.; cycles = 2 } ]));
  Alcotest.(check (option (float 0.))) "churn counts as a fault"
    (Some 15.)
    (Plan.first_fault_time
       (plan
          [ Plan.Crash { peer_fraction = 0.1; at = 50. };
            Plan.Churn { spec = session "exp"; at = 15.; until = None } ]))

(* ------------------------------------------------------------------ *)
(* Injector *)

let run_injector ?registry plan ~peers ~until =
  let engine = Engine.create () in
  let inj = Injector.create ?registry ~rng:(Rng.create ~seed:7) ~peers plan in
  let log = ref [] in
  let actions =
    {
      Injector.crash = (fun ~peer ~now -> log := (`Crash, peer, now) :: !log);
      recover = (fun ~peer ~now -> log := (`Recover, peer, now) :: !log);
      repair = (fun ~span:_ ~now -> log := (`Repair, -1, now) :: !log);
      check = (fun ~now -> log := (`Check, -1, now) :: !log);
    }
  in
  Injector.attach inj engine actions;
  Engine.run engine ~until;
  (inj, List.rev !log)

let test_injector_crash_recover () =
  let plan =
    { Plan.default with
      Plan.events = [ Plan.Crash_recover { peer_fraction = 0.5; at = 10.; after = 20. } ] }
  in
  let registry = Registry.create () in
  let inj, log = run_injector ~registry plan ~peers:40 ~until:100. in
  let count k = List.length (List.filter (fun (k', _, _) -> k' = k) log) in
  Alcotest.(check int) "20 crashes" 20 (count `Crash);
  Alcotest.(check int) "20 recoveries" 20 (count `Recover);
  Alcotest.(check int) "all back up" 0 (Injector.crashed_count inj);
  List.iter
    (fun (kind, _, now) ->
      match kind with
      | `Crash -> Alcotest.(check (float 0.)) "crash at 10" 10. now
      | `Recover -> Alcotest.(check (float 0.)) "recover at 30" 30. now
      | _ -> Alcotest.fail "unexpected action")
    log;
  let c name =
    match Registry.counter_value_by_name registry name with Some v -> v | None -> -1
  in
  Alcotest.(check int) "fault.crashes" 20 (c "fault.crashes");
  Alcotest.(check int) "fault.recoveries" 20 (c "fault.recoveries")

let test_injector_crash_is_sticky () =
  let plan =
    { Plan.default with Plan.events = [ Plan.Crash { peer_fraction = 0.25; at = 5. } ] }
  in
  let inj, log = run_injector plan ~peers:80 ~until:50. in
  Alcotest.(check int) "20 crashed" 20 (Injector.crashed_count inj);
  Alcotest.(check int) "no recoveries" 0
    (List.length (List.filter (fun (k, _, _) -> k = `Recover) log));
  let crashed_peers = List.filter_map (fun (k, p, _) -> if k = `Crash then Some p else None) log in
  List.iter
    (fun p -> Alcotest.(check bool) "predicate agrees" true (Injector.crashed inj p))
    crashed_peers

let test_injector_flap_ends_recovered () =
  let plan =
    { Plan.default with
      Plan.events =
        [ Plan.Flap { peer_fraction = 0.2; at = 10.; period = 5.; cycles = 3 } ] }
  in
  let inj, log = run_injector plan ~peers:50 ~until:200. in
  let count k = List.length (List.filter (fun (k', _, _) -> k' = k) log) in
  Alcotest.(check int) "3 cycles of 10 crashes" 30 (count `Crash);
  Alcotest.(check int) "3 cycles of 10 recoveries" 30 (count `Recover);
  Alcotest.(check int) "ends recovered" 0 (Injector.crashed_count inj)

let test_injector_correlated_range () =
  let plan =
    { Plan.default with
      Plan.events = [ Plan.Correlated { lo = 0.25; hi = 0.5; at = 5.; after = None } ] }
  in
  let inj, _ = run_injector plan ~peers:100 ~until:50. in
  for p = 0 to 99 do
    Alcotest.(check bool)
      (Printf.sprintf "peer %d" p)
      (p >= 25 && p < 50) (Injector.crashed inj p)
  done

let test_injector_churn_regime () =
  (* A bounded churn window: during it some peers are plan-offline
     (crashed stays false — churned peers keep their state); the
     closing sweep forces everyone back online; transitions land on the
     lazily-registered [fault.churn_transitions] counter. *)
  let spec = session "weibull:up=40:down=20:shape=0.6:on=0.5" in
  let plan =
    { Plan.default with
      Plan.events = [ Plan.Churn { spec; at = 10.; until = Some 200. } ] }
  in
  let peers = 60 in
  let engine = Engine.create () in
  let registry = Registry.create () in
  let inj = Injector.create ~registry ~rng:(Rng.create ~seed:7) ~peers plan in
  let actions =
    {
      Injector.crash = (fun ~peer:_ ~now:_ -> Alcotest.fail "churn must not crash");
      recover = (fun ~peer:_ ~now:_ -> Alcotest.fail "churn must not recover");
      repair = (fun ~span:_ ~now:_ -> ());
      check = (fun ~now:_ -> ());
    }
  in
  Injector.attach inj engine actions;
  let mid_offline = ref (-1) in
  Engine.schedule_at engine ~time:100. (fun _ ->
      mid_offline := Injector.churned_count inj;
      let recount = ref 0 in
      for p = 0 to peers - 1 do
        if Injector.plan_offline inj p then incr recount;
        Alcotest.(check bool) "churn is not a crash" false (Injector.crashed inj p)
      done;
      Alcotest.(check int) "churned_count matches the flags" !recount
        (Injector.churned_count inj));
  Engine.run engine ~until:300.;
  Alcotest.(check bool) "some peers offline mid-window" true (!mid_offline > 0);
  Alcotest.(check int) "window closes all-online" 0 (Injector.churned_count inj);
  for p = 0 to peers - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "peer %d back online" p)
      false (Injector.plan_offline inj p)
  done;
  match Registry.counter_value_by_name registry "fault.churn_transitions" with
  | None -> Alcotest.fail "fault.churn_transitions not registered"
  | Some v -> Alcotest.(check bool) "transitions counted" true (v > 0)

let test_injector_repair_schedule () =
  let plan =
    { Plan.default with Plan.repair = Some { Plan.every = 10.; min_fraction = 0.5 } }
  in
  let _, log = run_injector plan ~peers:10 ~until:55. in
  Alcotest.(check int) "5 passes in 55s" 5
    (List.length (List.filter (fun (k, _, _) -> k = `Repair) log))

let test_injector_rejects_invalid_plan () =
  let plan =
    { Plan.default with Plan.events = [ Plan.Crash { peer_fraction = 2.0; at = 1. } ] }
  in
  match Injector.create ~rng:(Rng.create ~seed:1) ~peers:10 plan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* System-level contracts *)

let sim_scenario =
  {
    Scenario.news_default with
    Scenario.num_peers = 300;
    keys = 600;
    duration = 600.;
    seed = 17;
  }

let options = System.Options.make ~repl:20 ~stor:100 ()

let partial scenario options =
  Strategy.Partial_index { key_ttl = System.derive_key_ttl scenario options }

let run_with_fault ?(scenario = sim_scenario) plan =
  let options =
    match plan with
    | None -> System.Options.without_fault options
    | Some p -> System.Options.with_fault p options
  in
  System.run scenario (partial scenario options) options

let test_empty_plan_equivalence () =
  (* Tentpole contract: enabling the machinery with an empty plan must
     reproduce the no-fault report field for field once its own [fault]
     summary is set aside — proof that the injector draws from its
     private stream only and perturbs nothing. *)
  let plain = run_with_fault None in
  let faulted = run_with_fault (Some Plan.default) in
  (match faulted.System.fault with
  | None -> Alcotest.fail "fault-enabled report lacks its fault summary"
  | Some f ->
      Alcotest.(check int) "no crashes" 0 f.System.crashes;
      Alcotest.(check int) "no repair passes" 0 f.System.repair_passes);
  let stripped = { faulted with System.fault = None } in
  Alcotest.(check int) "queries" plain.System.queries stripped.System.queries;
  Alcotest.(check int) "total messages" plain.System.total_messages
    stripped.System.total_messages;
  Alcotest.(check bool) "entire report identical" true (stripped = plain)

let e21_plan ~repair =
  {
    Plan.default with
    Plan.events = [ Plan.Crash { peer_fraction = 0.3; at = 300. } ];
    repair = (if repair then Some { Plan.every = 30.; min_fraction = 0.5 } else None);
  }

let test_mass_crash_dip_and_recovery () =
  (* E21 in miniature: a 30% mass crash at steady state damages the
     index (entries and content replicas lost), dips the service rate,
     and the run recovers to within 5% of the pre-fault baseline. *)
  let report = run_with_fault (Some (e21_plan ~repair:true)) in
  match report.System.fault with
  | None -> Alcotest.fail "missing fault summary"
  | Some f ->
      Alcotest.(check int) "30% of 300 crashed" 90 f.System.crashes;
      Alcotest.(check bool) "index entries lost" true (f.System.entries_lost > 0);
      Alcotest.(check bool) "content replicas lost" true (f.System.content_lost > 0);
      Alcotest.(check bool) "dip below baseline" true
        (f.System.dip_rate < f.System.pre_fault_rate);
      (match f.System.time_to_recover with
      | None -> Alcotest.fail "never recovered"
      | Some t ->
          Alcotest.(check bool) "recovery time positive and in-run" true
            (t > 0. && t <= sim_scenario.Scenario.duration))

let test_repair_counters_gated () =
  (* Repair counters are non-zero exactly when repair is enabled; the
     crash-side counters fire either way. *)
  let without = run_with_fault (Some (e21_plan ~repair:false)) in
  let with_repair = run_with_fault (Some (e21_plan ~repair:true)) in
  match (without.System.fault, with_repair.System.fault) with
  | Some off, Some on ->
      Alcotest.(check int) "no passes when disabled" 0 off.System.repair_passes;
      Alcotest.(check int) "no repair traffic when disabled" 0 off.System.repair_messages;
      Alcotest.(check int) "nothing re-replicated when disabled" 0
        (off.System.repaired_items + off.System.repaired_entries);
      Alcotest.(check bool) "passes when enabled" true (on.System.repair_passes > 0);
      Alcotest.(check bool) "repair traffic when enabled" true
        (on.System.repair_messages > 0);
      Alcotest.(check int) "crashes identical" off.System.crashes on.System.crashes
  | _ -> Alcotest.fail "missing fault summary"

let test_crash_differs_from_no_fault () =
  (* A non-empty plan must actually change the run — guard against the
     injector silently becoming a no-op. *)
  let plain = run_with_fault None in
  let crashed = run_with_fault (Some (e21_plan ~repair:false)) in
  Alcotest.(check bool) "reports differ" true
    ({ crashed with System.fault = None } <> plain)

let test_abort_carries_context_to_runner () =
  (* Satellite: a scheduled abort raises through the engine's labelled
     wrapper, and Runner.run_all records the failure with the simulated
     time and the "fault:abort" stage attached. *)
  let plan = { Plan.default with Plan.events = [ Plan.Abort { at = 120. } ] } in
  let scenario = { sim_scenario with Scenario.duration = 300. } in
  let spec =
    Run_spec.make ~options:(System.Options.with_fault plan options) scenario
  in
  let results = Runner.run_all ~jobs:1 [ spec ] in
  match Run_result.failures results with
  | [ (_, message) ] ->
      Alcotest.(check bool) "mentions stage" true (contains message "fault:abort");
      Alcotest.(check bool) "mentions time" true (contains message "t=120")
  | [] -> Alcotest.fail "abort did not fail the run"
  | _ -> Alcotest.fail "expected exactly one failure"

(* ------------------------------------------------------------------ *)
(* Determinism: fault-enabled batches across worker counts *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"fault-enabled runs identical for -j 1 vs -j 4" ~count:3
      (pair (int_bound 10_000) (int_bound 2))
      (fun (seed, which) ->
        let events =
          match which with
          | 0 -> [ Plan.Crash { peer_fraction = 0.3; at = 80. } ]
          | 1 -> [ Plan.Crash_recover { peer_fraction = 0.4; at = 60.; after = 40. } ]
          | _ -> [ Plan.Flap { peer_fraction = 0.2; at = 40.; period = 15.; cycles = 2 } ]
        in
        let plan =
          { Plan.default with
            Plan.events;
            repair = Some { Plan.every = 20.; min_fraction = 0.5 } }
        in
        let scenario =
          { sim_scenario with Scenario.num_peers = 150; keys = 300;
            duration = 200.; seed }
        in
        let spec =
          Run_spec.make ~options:(System.Options.with_fault plan options) scenario
        in
        let reports jobs =
          Run_result.reports_exn (Runner.run_all ~jobs [ spec; spec ])
        in
        reports 1 = reports 4);
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pdht_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "parse" `Quick test_plan_parse;
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "validate" `Quick test_plan_validate;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
          Alcotest.test_case "first fault time" `Quick test_plan_first_fault_time;
        ] );
      ( "injector",
        [
          Alcotest.test_case "crash + recover" `Quick test_injector_crash_recover;
          Alcotest.test_case "crash is sticky" `Quick test_injector_crash_is_sticky;
          Alcotest.test_case "flap ends recovered" `Quick test_injector_flap_ends_recovered;
          Alcotest.test_case "correlated range" `Quick test_injector_correlated_range;
          Alcotest.test_case "churn regime" `Quick test_injector_churn_regime;
          Alcotest.test_case "repair schedule" `Quick test_injector_repair_schedule;
          Alcotest.test_case "rejects invalid plan" `Quick
            test_injector_rejects_invalid_plan;
        ] );
      ( "system",
        [
          Alcotest.test_case "empty plan == no fault" `Slow test_empty_plan_equivalence;
          Alcotest.test_case "mass crash dips then recovers" `Slow
            test_mass_crash_dip_and_recovery;
          Alcotest.test_case "repair counters gated on repair" `Slow
            test_repair_counters_gated;
          Alcotest.test_case "crash perturbs the run" `Slow
            test_crash_differs_from_no_fault;
          Alcotest.test_case "abort carries context to runner" `Quick
            test_abort_carries_context_to_runner;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
