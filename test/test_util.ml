(* Unit and property tests for Pdht_util: PRNG, sampling, statistics,
   bit keys, hashing and table rendering. *)

module Rng = Pdht_util.Rng
module Sampling = Pdht_util.Sampling
module Stats = Pdht_util.Stats
module Bitkey = Pdht_util.Bitkey
module Hashing = Pdht_util.Hashing
module Table = Pdht_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose msg = Alcotest.(check (float 0.05)) msg

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:3 in
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy replays" xa xb;
  (* Advancing the copy must not disturb the original. *)
  ignore (Rng.bits64 b);
  ignore (Rng.bits64 b);
  let a' = Rng.bits64 a and b' = Rng.bits64 b in
  Alcotest.(check bool) "diverged" true (not (Int64.equal a' b'))

let test_rng_split_independent () =
  let parent = Rng.create ~seed:11 in
  let child = Rng.split parent in
  let overlap = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 parent) (Rng.bits64 child) then incr overlap
  done;
  Alcotest.(check bool) "split stream is distinct" true (!overlap < 4)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for bound = 1 to 50 do
    for _ = 1 to 100 do
      let v = Rng.int rng bound in
      Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
    done
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in_range () =
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 200 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Rng.int_in_range rng ~lo:3 ~hi:3)

let test_rng_derive_seed_deterministic () =
  Alcotest.(check int) "same pair, same seed"
    (Rng.derive_seed ~seed:42 ~stream:3)
    (Rng.derive_seed ~seed:42 ~stream:3);
  Alcotest.(check bool) "non-negative" true (Rng.derive_seed ~seed:(-9) ~stream:0 >= 0);
  (* Stateless: deriving is not affected by other derivations. *)
  let a = Rng.derive_seed ~seed:1 ~stream:5 in
  ignore (Rng.derive_seed ~seed:99 ~stream:7);
  Alcotest.(check int) "stateless" a (Rng.derive_seed ~seed:1 ~stream:5)

let test_rng_derive_seed_separates_streams () =
  (* Distinct streams (and distinct root seeds) must not collide over a
     modest range, and the derived generators must not share a stream. *)
  let seen = Hashtbl.create 512 in
  for seed = 0 to 15 do
    for stream = 0 to 15 do
      let s = Rng.derive_seed ~seed ~stream in
      Alcotest.(check bool)
        (Printf.sprintf "no collision at (%d,%d)" seed stream)
        false (Hashtbl.mem seen s);
      Hashtbl.replace seen s ()
    done
  done;
  let a = Rng.of_stream ~seed:7 ~stream:0 in
  let b = Rng.of_stream ~seed:7 ~stream:1 in
  let overlap = ref 0 in
  for _ = 1 to 200 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr overlap
  done;
  Alcotest.(check int) "streams do not track each other" 0 !overlap

let test_rng_unit_float_range () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let u = Rng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_rng_uniformity () =
  let rng = Rng.create ~seed:9 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check_float_loose "bucket ~10%" 0.1 frac)
    buckets

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:10 in
  Alcotest.(check bool) "p=0" false (Rng.bernoulli rng ~p:0.);
  Alcotest.(check bool) "p=1" true (Rng.bernoulli rng ~p:1.);
  Alcotest.(check bool) "p<0 clamps" false (Rng.bernoulli rng ~p:(-0.5));
  Alcotest.(check bool) "p>1 clamps" true (Rng.bernoulli rng ~p:1.5)

let test_rng_bernoulli_mean () =
  let rng = Rng.create ~seed:12 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  check_float_loose "mean ~ p" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:13 in
  let acc = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~rate:2.
  done;
  check_float_loose "mean = 1/rate" 0.5 (!acc /. float_of_int n)

let test_rng_exponential_positive () =
  let rng = Rng.create ~seed:14 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng ~rate:0.1 > 0.)
  done;
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng ~rate:0.))

let test_rng_geometric () =
  let rng = Rng.create ~seed:15 in
  Alcotest.(check int) "p=1 is 0" 0 (Rng.geometric rng ~p:1.);
  let acc = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc + Rng.geometric rng ~p:0.5
  done;
  (* mean of failures-before-success = (1-p)/p = 1 *)
  check_float_loose "mean" 1.0 (float_of_int !acc /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Sampling *)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:20 in
  let arr = Array.init 50 Fun.id in
  Sampling.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_actually_shuffles () =
  let rng = Rng.create ~seed:21 in
  let arr = Array.init 100 Fun.id in
  Sampling.shuffle rng arr;
  Alcotest.(check bool) "not identity" true (arr <> Array.init 100 Fun.id)

let test_choose_singleton () =
  let rng = Rng.create ~seed:22 in
  Alcotest.(check int) "only element" 42 (Sampling.choose rng [| 42 |])

let test_choose_empty_raises () =
  let rng = Rng.create ~seed:22 in
  Alcotest.check_raises "empty" (Invalid_argument "Sampling.choose: empty array")
    (fun () -> ignore (Sampling.choose rng ([||] : int array)))

let test_sample_without_replacement_distinct () =
  let rng = Rng.create ~seed:23 in
  for _ = 1 to 50 do
    let s = Sampling.sample_without_replacement rng ~k:10 ~n:30 in
    Alcotest.(check int) "k elements" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    let distinct = Array.to_list sorted |> List.sort_uniq compare in
    Alcotest.(check int) "all distinct" 10 (List.length distinct);
    Array.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 30)) s
  done

let test_sample_without_replacement_full () =
  let rng = Rng.create ~seed:24 in
  let s = Sampling.sample_without_replacement rng ~k:5 ~n:5 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "whole population" [| 0; 1; 2; 3; 4 |] sorted

let test_reservoir_short_input () =
  let rng = Rng.create ~seed:25 in
  let out = Sampling.reservoir rng ~k:10 (List.to_seq [ 1; 2; 3 ]) in
  let sorted = Array.copy out in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "keeps everything" [| 1; 2; 3 |] sorted

let test_reservoir_size () =
  let rng = Rng.create ~seed:26 in
  let out = Sampling.reservoir rng ~k:5 (Seq.init 100 Fun.id) in
  Alcotest.(check int) "k elements" 5 (Array.length out)

let test_weighted_index () =
  let rng = Rng.create ~seed:27 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Sampling.weighted_index rng [| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_float_loose "w0" 0.1 (float_of_int counts.(0) /. 30_000.);
  check_float_loose "w1" 0.2 (float_of_int counts.(1) /. 30_000.);
  check_float_loose "w2" 0.7 (float_of_int counts.(2) /. 30_000.)

let test_alias_matches_weights () =
  let rng = Rng.create ~seed:28 in
  let sampler = Sampling.Alias.create [| 3.; 1.; 6. |] in
  Alcotest.(check int) "size" 3 (Sampling.Alias.size sampler);
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let i = Sampling.Alias.draw sampler rng in
    counts.(i) <- counts.(i) + 1
  done;
  check_float_loose "w0" 0.3 (float_of_int counts.(0) /. float_of_int n);
  check_float_loose "w1" 0.1 (float_of_int counts.(1) /. float_of_int n);
  check_float_loose "w2" 0.6 (float_of_int counts.(2) /. float_of_int n)

let test_alias_rejects_bad_weights () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.create: empty weights")
    (fun () -> ignore (Sampling.Alias.create [||]));
  Alcotest.check_raises "zero mass" (Invalid_argument "Alias.create: weights sum to zero")
    (fun () -> ignore (Sampling.Alias.create [| 0.; 0. |]));
  Alcotest.check_raises "negative" (Invalid_argument "Alias.create: negative weight")
    (fun () -> ignore (Sampling.Alias.create [| 1.; -1.; 3. |]))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_mean_variance () =
  check_float "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  check_float "variance" 1. (Stats.variance [| 1.; 2.; 3. |]);
  check_float "stddev" 1. (Stats.stddev [| 1.; 2.; 3. |]);
  check_float "empty mean" 0. (Stats.mean [||]);
  check_float "single variance" 0. (Stats.variance [| 5. |])

let test_percentiles () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.median xs);
  check_float "p0" 1. (Stats.percentile xs ~p:0.);
  check_float "p100" 5. (Stats.percentile xs ~p:1.);
  check_float "p25 interpolates" 2. (Stats.percentile xs ~p:0.25);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] ~p:0.5))

let test_harmonic () =
  check_float "H_1" 1. (Stats.harmonic_generalized ~n:1 ~alpha:1.2);
  check_float "H_3 alpha=1" (1. +. 0.5 +. (1. /. 3.))
    (Stats.harmonic_generalized ~n:3 ~alpha:1.);
  check_float "alpha=0 counts" 5. (Stats.harmonic_generalized ~n:5 ~alpha:0.)

let test_online_matches_batch () =
  let rng = Rng.create ~seed:30 in
  let xs = Array.init 1000 (fun _ -> Rng.float rng 100.) in
  let online = Stats.Online.create () in
  Array.iter (Stats.Online.add online) xs;
  Alcotest.(check int) "count" 1000 (Stats.Online.count online);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean xs) (Stats.Online.mean online);
  Alcotest.(check (float 1e-4)) "variance" (Stats.variance xs) (Stats.Online.variance online);
  let mn = Array.fold_left Float.min infinity xs in
  let mx = Array.fold_left Float.max neg_infinity xs in
  check_float "min" mn (Stats.Online.min online);
  check_float "max" mx (Stats.Online.max online)

let test_online_empty () =
  let online = Stats.Online.create () in
  check_float "mean" 0. (Stats.Online.mean online);
  check_float "variance" 0. (Stats.Online.variance online)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 3.; 9.9; -4.; 15. ];
  Alcotest.(check int) "count" 6 (Stats.Histogram.count h);
  Alcotest.(check int) "underflow clamps to first" 3 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "overflow clamps to last" 2 (Stats.Histogram.bin_count h 4);
  Alcotest.(check int) "bins" 5 (Stats.Histogram.bins h);
  let fr = Stats.Histogram.to_fractions h in
  check_float "fraction sums to 1" 1. (Array.fold_left ( +. ) 0. fr)

let test_histogram_rejects_bad_args () =
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create: lo must be < hi")
    (fun () -> ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~bins:3))

(* ------------------------------------------------------------------ *)
(* Bitkey *)

let test_bitkey_roundtrip () =
  let k = Bitkey.of_int 12345 in
  Alcotest.(check int) "roundtrip" 12345 (Bitkey.to_int k);
  Alcotest.check_raises "negative" (Invalid_argument "Bitkey.of_int: negative")
    (fun () -> ignore (Bitkey.of_int (-1)))

let test_bitkey_bits () =
  (* Key 1 has only its least significant bit set. *)
  let k = Bitkey.of_int 1 in
  Alcotest.(check bool) "last bit" true (Bitkey.bit k (Bitkey.width - 1));
  Alcotest.(check bool) "first bit" false (Bitkey.bit k 0)

let test_bitkey_common_prefix () =
  let a = Bitkey.of_int 0 in
  Alcotest.(check int) "equal keys" Bitkey.width (Bitkey.common_prefix_length a a);
  let b = Bitkey.flip_bit a 0 in
  Alcotest.(check int) "first bit differs" 0 (Bitkey.common_prefix_length a b);
  let c = Bitkey.flip_bit a 10 in
  Alcotest.(check int) "bit 10 differs" 10 (Bitkey.common_prefix_length a c)

let test_bitkey_flip_involutive () =
  let rng = Rng.create ~seed:40 in
  for _ = 1 to 100 do
    let k = Bitkey.random rng in
    let i = Rng.int rng Bitkey.width in
    Alcotest.(check bool) "flip twice is identity" true
      (Bitkey.equal k (Bitkey.flip_bit (Bitkey.flip_bit k i) i))
  done

let test_bitkey_bits_string_roundtrip () =
  let rng = Rng.create ~seed:41 in
  for _ = 1 to 50 do
    let k = Bitkey.random rng in
    let s = Bitkey.to_bits k ~len:Bitkey.width in
    Alcotest.(check bool) "roundtrip" true (Bitkey.equal k (Bitkey.of_bits s))
  done

let test_bitkey_of_bits_prefix () =
  let k = Bitkey.of_bits "101" in
  Alcotest.(check string) "prefix preserved" "101" (Bitkey.to_bits k ~len:3);
  Alcotest.(check string) "rest zero" "1010000" (Bitkey.to_bits k ~len:7);
  Alcotest.check_raises "bad char" (Invalid_argument "Bitkey.of_bits: expected '0' or '1'")
    (fun () -> ignore (Bitkey.of_bits "10x"))

let test_bitkey_prefix_matching () =
  let k = Bitkey.of_bits "110101" in
  let p = Bitkey.of_bits "1101" in
  Alcotest.(check bool) "matches own prefix" true (Bitkey.matches_prefix k ~prefix:p ~len:4);
  let q = Bitkey.of_bits "1110" in
  Alcotest.(check bool) "mismatch detected" false (Bitkey.matches_prefix k ~prefix:q ~len:4);
  Alcotest.(check bool) "len 0 always matches" true (Bitkey.matches_prefix k ~prefix:q ~len:0)

let test_bitkey_xor_distance () =
  let a = Bitkey.of_int 12 and b = Bitkey.of_int 10 in
  Alcotest.(check int) "xor" (12 lxor 10) (Bitkey.xor_distance a b);
  Alcotest.(check int) "self distance" 0 (Bitkey.xor_distance a a)

let test_bitkey_random_nonnegative () =
  let rng = Rng.create ~seed:42 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "non-negative" true (Bitkey.to_int (Bitkey.random rng) >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Hashing *)

let test_hash_deterministic () =
  Alcotest.(check bool) "same input same key" true
    (Bitkey.equal (Hashing.hash_to_key "abc") (Hashing.hash_to_key "abc"));
  Alcotest.(check bool) "different inputs differ" true
    (not (Bitkey.equal (Hashing.hash_to_key "abc") (Hashing.hash_to_key "abd")))

let test_combine_unambiguous () =
  Alcotest.(check bool) "field boundaries matter" true
    (Hashing.combine [ "ab"; "c" ] <> Hashing.combine [ "a"; "bc" ]);
  Alcotest.(check string) "empty list" "" (Hashing.combine [])

let test_hash_spread () =
  (* Keys from sequential inputs should spread across the MSB space:
     the top 4 bits should take many values (this guards against the
     FNV high-bit weakness that once skewed replica groups). *)
  let seen = Hashtbl.create 16 in
  for i = 0 to 799 do
    let k = Hashing.hash_to_key (Hashing.combine [ "key"; string_of_int i ]) in
    let top4 = Bitkey.to_int k lsr (Bitkey.width - 4) in
    Hashtbl.replace seen top4 ()
  done;
  Alcotest.(check bool) "top bits spread" true (Hashtbl.length seen >= 14)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (match lines with
  | _ :: rule :: _ ->
      Alcotest.(check bool) "rule is dashes" true
        (String.for_all (fun c -> c = '-') rule)
  | _ -> Alcotest.fail "missing rule");
  Alcotest.(check bool) "right aligned value" true
    (match lines with
    | header :: _ -> String.length header > 0
    | [] -> false)

let test_table_row_width_check () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_float_rows () =
  let t = Table.create ~columns:[ ("v", Table.Right) ] in
  Table.add_float_row t [ 3.14159 ];
  Alcotest.(check bool) "formatted" true
    (String.length (Table.render t) > 0)

let test_table_csv () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "say \"hi\"" ];
  let csv = Table.render_csv t in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header first" "a,b" (List.hd lines);
  Alcotest.(check string) "row order preserved" "plain,1" (List.nth lines 1);
  Alcotest.(check string) "quoting" "\"with,comma\",\"say \"\"hi\"\"\"" (List.nth lines 2)

(* ------------------------------------------------------------------ *)
(* Flags *)

let test_flags_no_conflict () =
  Alcotest.(check (option string)) "nothing present" None
    (Pdht_util.Flags.conflicts ~dominant:"--policy"
       ~subsumed:[ ("--key-ttl", false); ("--adaptive", false) ]);
  Alcotest.(check (option string)) "empty subsumed list" None
    (Pdht_util.Flags.conflicts ~dominant:"--policy" ~subsumed:[])

let test_flags_single_conflict () =
  Alcotest.(check (option string)) "one flag named"
    (Some "--policy subsumes --adaptive")
    (Pdht_util.Flags.conflicts ~dominant:"--policy"
       ~subsumed:[ ("--key-ttl", false); ("--adaptive", true) ])

let test_flags_reports_every_conflict () =
  (* The point of the helper: passing several subsumed flags yields ONE
     error naming them all, so one fix clears the whole conflict. *)
  Alcotest.(check (option string)) "both flags named"
    (Some "--policy subsumes --key-ttl and --adaptive")
    (Pdht_util.Flags.conflicts ~dominant:"--policy"
       ~subsumed:[ ("--key-ttl", true); ("--adaptive", true) ]);
  Alcotest.(check (option string)) "three flags: comma list then and"
    (Some "--a subsumes --x, --y and --z")
    (Pdht_util.Flags.conflicts ~dominant:"--a"
       ~subsumed:[ ("--x", true); ("--y", true); ("--z", true) ])

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rng int always within bound" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create ~seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"shuffle preserves multiset" ~count:200
      (pair small_int (list small_int))
      (fun (seed, xs) ->
        let rng = Rng.create ~seed in
        let arr = Array.of_list xs in
        Sampling.shuffle rng arr;
        List.sort compare (Array.to_list arr) = List.sort compare xs);
    Test.make ~name:"percentile within data range" ~count:200
      (pair (list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.))
         (float_bound_inclusive 1.))
      (fun (xs, p) ->
        let arr = Array.of_list xs in
        let v = Stats.percentile arr ~p in
        let mn = Array.fold_left Float.min infinity arr in
        let mx = Array.fold_left Float.max neg_infinity arr in
        v >= mn -. 1e-9 && v <= mx +. 1e-9);
    Test.make ~name:"common_prefix_length symmetric" ~count:500
      (pair small_int small_int)
      (fun (a, b) ->
        let ka = Bitkey.of_int (abs a) and kb = Bitkey.of_int (abs b) in
        Bitkey.common_prefix_length ka kb = Bitkey.common_prefix_length kb ka);
    Test.make ~name:"prefix of key matches key" ~count:500
      (pair small_int (int_range 0 62))
      (fun (a, len) ->
        let k = Bitkey.of_int (abs a) in
        let p = Bitkey.prefix k ~len in
        Bitkey.matches_prefix k ~prefix:p ~len);
    Test.make ~name:"combine injective on list structure" ~count:300
      (pair (small_list small_string) (small_list small_string))
      (fun (xs, ys) ->
        if xs = ys then Hashing.combine xs = Hashing.combine ys
        else Hashing.combine xs <> Hashing.combine ys);
    Test.make ~name:"online mean within min..max" ~count:200
      (list_of_size (Gen.int_range 1 60) (float_bound_inclusive 500.))
      (fun xs ->
        let online = Stats.Online.create () in
        List.iter (Stats.Online.add online) xs;
        let m = Stats.Online.mean online in
        m >= Stats.Online.min online -. 1e-9 && m <= Stats.Online.max online +. 1e-9);
  ]

let () =
  Alcotest.run "pdht_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects nonpositive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
          Alcotest.test_case "derive_seed deterministic" `Quick test_rng_derive_seed_deterministic;
          Alcotest.test_case "derive_seed separates streams" `Quick test_rng_derive_seed_separates_streams;
          Alcotest.test_case "unit_float range" `Quick test_rng_unit_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Quick test_rng_bernoulli_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle shuffles" `Quick test_shuffle_actually_shuffles;
          Alcotest.test_case "choose singleton" `Quick test_choose_singleton;
          Alcotest.test_case "choose empty raises" `Quick test_choose_empty_raises;
          Alcotest.test_case "swr distinct" `Quick test_sample_without_replacement_distinct;
          Alcotest.test_case "swr full population" `Quick test_sample_without_replacement_full;
          Alcotest.test_case "reservoir short input" `Quick test_reservoir_short_input;
          Alcotest.test_case "reservoir size" `Quick test_reservoir_size;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
          Alcotest.test_case "alias matches weights" `Quick test_alias_matches_weights;
          Alcotest.test_case "alias rejects bad weights" `Quick test_alias_rejects_bad_weights;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "harmonic numbers" `Quick test_harmonic;
          Alcotest.test_case "online matches batch" `Quick test_online_matches_batch;
          Alcotest.test_case "online empty" `Quick test_online_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram bad args" `Quick test_histogram_rejects_bad_args;
        ] );
      ( "bitkey",
        [
          Alcotest.test_case "roundtrip" `Quick test_bitkey_roundtrip;
          Alcotest.test_case "bit indexing" `Quick test_bitkey_bits;
          Alcotest.test_case "common prefix" `Quick test_bitkey_common_prefix;
          Alcotest.test_case "flip involutive" `Quick test_bitkey_flip_involutive;
          Alcotest.test_case "bits string roundtrip" `Quick test_bitkey_bits_string_roundtrip;
          Alcotest.test_case "of_bits prefix" `Quick test_bitkey_of_bits_prefix;
          Alcotest.test_case "prefix matching" `Quick test_bitkey_prefix_matching;
          Alcotest.test_case "xor distance" `Quick test_bitkey_xor_distance;
          Alcotest.test_case "random nonnegative" `Quick test_bitkey_random_nonnegative;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "combine unambiguous" `Quick test_combine_unambiguous;
          Alcotest.test_case "MSB spread" `Quick test_hash_spread;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row width check" `Quick test_table_row_width_check;
          Alcotest.test_case "float rows" `Quick test_table_float_rows;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "flags",
        [
          Alcotest.test_case "no conflict" `Quick test_flags_no_conflict;
          Alcotest.test_case "single conflict" `Quick test_flags_single_conflict;
          Alcotest.test_case "reports every conflict" `Quick
            test_flags_reports_every_conflict;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
