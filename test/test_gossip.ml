(* Tests for Pdht_gossip: replica subnetworks, rumor spreading, and the
   Eq. 9 update-cost formula. *)

module Rng = Pdht_util.Rng
module Replica_net = Pdht_gossip.Replica_net
module Rumor = Pdht_gossip.Rumor
module Update_model = Pdht_gossip.Update_model

let all_online _ = true

let build ~seed ~replicas ~chords =
  let rng = Rng.create ~seed in
  (rng, Replica_net.build rng ~replicas ~chords)

(* ------------------------------------------------------------------ *)
(* Replica_net *)

let test_net_membership () =
  let replicas = [| 10; 20; 30; 40; 50 |] in
  let _, net = build ~seed:1 ~replicas ~chords:1 in
  Alcotest.(check int) "size" 5 (Replica_net.size net);
  Alcotest.(check (array int)) "replicas kept" replicas (Replica_net.replicas net);
  Alcotest.(check (option int)) "member lookup" (Some 2) (Replica_net.member_of_peer net 30);
  Alcotest.(check (option int)) "non-member" None (Replica_net.member_of_peer net 99)

let test_net_ring_connectivity () =
  (* Even with zero chords the ring makes the subnet connected. *)
  let replicas = Array.init 20 (fun i -> 100 + i) in
  let _, net = build ~seed:2 ~replicas ~chords:0 in
  let r = Replica_net.flood net ~online:all_online ~from_peer:100 in
  Alcotest.(check int) "flood reaches all" 20 r.Replica_net.reached

let test_net_neighbors_are_members () =
  let replicas = Array.init 10 (fun i -> i * 7 ) in
  let _, net = build ~seed:3 ~replicas ~chords:2 in
  let member_set = Array.to_list replicas in
  for m = 0 to 9 do
    Array.iter
      (fun peer ->
        Alcotest.(check bool) "neighbor is a replica" true (List.mem peer member_set))
      (Replica_net.neighbors net ~member:m)
  done

let test_net_flood_counts_duplicates () =
  let replicas = Array.init 10 Fun.id in
  let _, net = build ~seed:4 ~replicas ~chords:0 in
  let r = Replica_net.flood net ~online:all_online ~from_peer:0 in
  (* Plain ring: 2 messages per member. *)
  Alcotest.(check int) "2E messages" 20 r.Replica_net.messages;
  Alcotest.(check (float 1e-9)) "dup2 = 2 on a ring" 2.
    (Replica_net.duplication_factor r)

let test_net_flood_offline_members () =
  let replicas = Array.init 10 Fun.id in
  let _, net = build ~seed:5 ~replicas ~chords:0 in
  (* Two opposite offline members split the ring. *)
  let online p = p <> 3 && p <> 8 in
  let r = Replica_net.flood net ~online ~from_peer:0 in
  Alcotest.(check bool) "partial reach" true (r.Replica_net.reached < 8);
  Alcotest.(check bool) "still reaches some" true (r.Replica_net.reached > 1)

let reference_bfs net ~online ~from_peer =
  (* Independent connectivity oracle: breadth-first search over the
     subnetwork restricted to online members. *)
  match Replica_net.member_of_peer net from_peer with
  | None -> 0
  | Some _ when not (online from_peer) -> 0
  | Some source ->
      let n = Replica_net.size net in
      let visited = Array.make n false in
      visited.(source) <- true;
      let queue = Queue.create () in
      Queue.add source queue;
      let reached = ref 1 in
      while not (Queue.is_empty queue) do
        let m = Queue.pop queue in
        Array.iter
          (fun peer ->
            match Replica_net.member_of_peer net peer with
            | Some m' when (not visited.(m')) && online peer ->
                visited.(m') <- true;
                incr reached;
                Queue.add m' queue
            | _ -> ())
          (Replica_net.neighbors net ~member:m)
      done;
      !reached

let test_net_flood_majority_offline_matches_bfs () =
  (* Fault-tolerance degradation contract: with a majority of the ring
     offline in long runs, ring connectivity breaks and [reached] must
     equal what an independent BFS over online members computes — on a
     bare ring (where the source is trapped in its own online segment)
     and with chords (whose long-range links partially save reach). *)
  let replicas = Array.init 30 (fun i -> 200 + i) in
  (* Offline in runs of three out of every five members: 60% down. *)
  let online p = (p - 200) mod 5 >= 3 in
  let check ~chords =
    let _, net = build ~seed:11 ~replicas ~chords in
    let r = Replica_net.flood net ~online ~from_peer:203 in
    let expected = reference_bfs net ~online ~from_peer:203 in
    Alcotest.(check int)
      (Printf.sprintf "reached matches BFS (chords=%d)" chords)
      expected r.Replica_net.reached;
    expected
  in
  let ring_only = check ~chords:0 in
  let with_chords = check ~chords:3 in
  (* The bare ring strands the source with its sole online segment
     neighbour; chords must reach at least as far. *)
  Alcotest.(check int) "ring segment of two" 2 ring_only;
  Alcotest.(check bool) "chords save reach" true (with_chords >= ring_only);
  (* Sanity: nobody ever exceeds the online population. *)
  let online_total = Array.fold_left (fun a p -> if online p then a + 1 else a) 0 replicas in
  Alcotest.(check bool) "bounded by online members" true (with_chords <= online_total)

let test_net_flood_from_nonmember () =
  let replicas = [| 1; 2; 3 |] in
  let _, net = build ~seed:6 ~replicas ~chords:0 in
  let r = Replica_net.flood net ~online:all_online ~from_peer:77 in
  Alcotest.(check int) "no-op" 0 r.Replica_net.messages

let test_net_singleton () =
  let _, net = build ~seed:7 ~replicas:[| 42 |] ~chords:3 in
  let r = Replica_net.flood net ~online:all_online ~from_peer:42 in
  Alcotest.(check int) "reaches itself" 1 r.Replica_net.reached;
  Alcotest.(check int) "no messages" 0 r.Replica_net.messages

let test_net_validation () =
  let rng = Rng.create ~seed:8 in
  Alcotest.check_raises "empty" (Invalid_argument "Replica_net.build: empty replica set")
    (fun () -> ignore (Replica_net.build rng ~replicas:[||] ~chords:0))

(* ------------------------------------------------------------------ *)
(* Rumor *)

let test_rumor_reaches_all_online () =
  let replicas = Array.init 30 Fun.id in
  let rng, net = build ~seed:10 ~replicas ~chords:1 in
  let r = Rumor.spread rng ~net ~online:all_online ~origin_peer:0 ~push_fanout:2 ~max_rounds:50 in
  Alcotest.(check int) "everyone informed" 30 r.Rumor.informed;
  Alcotest.(check int) "online count" 30 r.Rumor.online_members;
  Alcotest.(check bool) "few rounds (epidemic)" true (r.Rumor.rounds <= 12)

let test_rumor_skips_offline () =
  let replicas = Array.init 20 Fun.id in
  let rng, net = build ~seed:11 ~replicas ~chords:1 in
  let online p = p < 10 in
  let r = Rumor.spread rng ~net ~online ~origin_peer:0 ~push_fanout:2 ~max_rounds:50 in
  Alcotest.(check int) "only online informed" 10 r.Rumor.informed;
  Alcotest.(check int) "online members" 10 r.Rumor.online_members

let test_rumor_offline_origin () =
  let replicas = Array.init 10 Fun.id in
  let rng, net = build ~seed:12 ~replicas ~chords:1 in
  let online p = p <> 0 in
  let r = Rumor.spread rng ~net ~online ~origin_peer:0 ~push_fanout:2 ~max_rounds:50 in
  Alcotest.(check int) "nothing spreads" 0 r.Rumor.informed;
  Alcotest.(check int) "no messages" 0 r.Rumor.messages

let test_rumor_message_cost_scales () =
  (* Eq. 9 shape: messages grow roughly linearly with the replica count. *)
  let cost n seed =
    let replicas = Array.init n Fun.id in
    let rng, net = build ~seed ~replicas ~chords:1 in
    let r = Rumor.spread rng ~net ~online:all_online ~origin_peer:0 ~push_fanout:2 ~max_rounds:100 in
    r.Rumor.messages
  in
  let small = cost 10 13 in
  let large = cost 80 13 in
  Alcotest.(check bool) "larger nets cost more" true (large > small);
  Alcotest.(check bool) "sub-quadratic" true (large < 64 * small)

let test_rumor_max_rounds_cutoff () =
  let replicas = Array.init 50 Fun.id in
  let rng, net = build ~seed:14 ~replicas ~chords:1 in
  let r = Rumor.spread rng ~net ~online:all_online ~origin_peer:0 ~push_fanout:1 ~max_rounds:1 in
  Alcotest.(check int) "stopped at round 1" 1 r.Rumor.rounds;
  Alcotest.(check bool) "not everyone informed yet" true (r.Rumor.informed < 50)

let test_rumor_validation () =
  let replicas = [| 0; 1 |] in
  let rng, net = build ~seed:15 ~replicas ~chords:0 in
  Alcotest.check_raises "fanout" (Invalid_argument "Rumor.spread: push_fanout must be >= 1")
    (fun () ->
      ignore (Rumor.spread rng ~net ~online:all_online ~origin_peer:0 ~push_fanout:0 ~max_rounds:5))

let test_pull_missed_updates () =
  let replicas = Array.init 10 Fun.id in
  let rng, net = build ~seed:16 ~replicas ~chords:1 in
  let answered, messages = Rumor.pull_missed_updates rng ~net ~online:all_online ~rejoining_peer:3 in
  (match answered with
  | Some p -> Alcotest.(check bool) "answered by another replica" true (p <> 3)
  | None -> Alcotest.fail "expected an answer with everyone online");
  Alcotest.(check bool) "cheap" true (messages <= 4)

let test_pull_alone_offline () =
  let replicas = Array.init 5 Fun.id in
  let rng, net = build ~seed:17 ~replicas ~chords:1 in
  let online p = p = 3 in
  let answered, messages = Rumor.pull_missed_updates rng ~net ~online ~rejoining_peer:3 in
  Alcotest.(check (option int)) "nobody answers" None answered;
  Alcotest.(check bool) "bounded attempts" true (messages <= 10)

let test_pull_nonmember () =
  let replicas = [| 1; 2 |] in
  let rng, net = build ~seed:18 ~replicas ~chords:0 in
  let answered, messages = Rumor.pull_missed_updates rng ~net ~online:all_online ~rejoining_peer:9 in
  Alcotest.(check (option int)) "no-op" None answered;
  Alcotest.(check int) "free" 0 messages

(* ------------------------------------------------------------------ *)
(* Update model (Eq. 9) *)

let test_update_model_paper_value () =
  (* Paper scenario: cSIndx ~ 7.14, repl 50, dup2 1.8, fUpd = 1/86400. *)
  let c =
    Update_model.cost_per_key_per_second ~index_search_cost:7.14 ~repl:50 ~dup2:1.8
      ~update_frequency:(1. /. 86_400.)
  in
  Alcotest.(check (float 1e-5)) "cUpd ~ 0.00112" 0.001123 c

let test_update_model_zero_frequency () =
  Alcotest.(check (float 1e-12)) "no updates, no cost" 0.
    (Update_model.cost_per_key_per_second ~index_search_cost:5. ~repl:10 ~dup2:2.
       ~update_frequency:0.)

let test_update_model_validation () =
  Alcotest.check_raises "repl"
    (Invalid_argument "Update_model.cost_per_key_per_second: repl must be >= 1")
    (fun () ->
      ignore
        (Update_model.cost_per_key_per_second ~index_search_cost:5. ~repl:0 ~dup2:2.
           ~update_frequency:1.))

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"flood reach bounded by online members" ~count:60
      (triple (int_range 1 60) (int_range 0 3) small_int)
      (fun (n, chords, seed) ->
        let replicas = Array.init n Fun.id in
        let rng = Rng.create ~seed in
        let net = Replica_net.build rng ~replicas ~chords in
        let online p = p mod 2 = 0 in
        let r = Replica_net.flood net ~online ~from_peer:0 in
        let online_total = (n + 1) / 2 in
        r.Replica_net.reached <= online_total);
    Test.make ~name:"rumor informed never exceeds online members" ~count:60
      (pair (int_range 1 50) small_int)
      (fun (n, seed) ->
        let replicas = Array.init n Fun.id in
        let rng = Rng.create ~seed in
        let net = Replica_net.build rng ~replicas ~chords:1 in
        let online p = p mod 3 <> 0 in
        let r = Rumor.spread rng ~net ~online ~origin_peer:1 ~push_fanout:2 ~max_rounds:30 in
        r.Rumor.informed <= r.Rumor.online_members);
  ]

let () =
  Alcotest.run "pdht_gossip"
    [
      ( "replica-net",
        [
          Alcotest.test_case "membership" `Quick test_net_membership;
          Alcotest.test_case "ring connectivity" `Quick test_net_ring_connectivity;
          Alcotest.test_case "neighbors are members" `Quick test_net_neighbors_are_members;
          Alcotest.test_case "flood counts duplicates" `Quick test_net_flood_counts_duplicates;
          Alcotest.test_case "flood with offline" `Quick test_net_flood_offline_members;
          Alcotest.test_case "majority offline matches reference BFS" `Quick
            test_net_flood_majority_offline_matches_bfs;
          Alcotest.test_case "flood from non-member" `Quick test_net_flood_from_nonmember;
          Alcotest.test_case "singleton" `Quick test_net_singleton;
          Alcotest.test_case "validation" `Quick test_net_validation;
        ] );
      ( "rumor",
        [
          Alcotest.test_case "reaches all online" `Quick test_rumor_reaches_all_online;
          Alcotest.test_case "skips offline" `Quick test_rumor_skips_offline;
          Alcotest.test_case "offline origin" `Quick test_rumor_offline_origin;
          Alcotest.test_case "cost scales" `Quick test_rumor_message_cost_scales;
          Alcotest.test_case "max rounds cutoff" `Quick test_rumor_max_rounds_cutoff;
          Alcotest.test_case "validation" `Quick test_rumor_validation;
          Alcotest.test_case "pull missed updates" `Quick test_pull_missed_updates;
          Alcotest.test_case "pull alone" `Quick test_pull_alone_offline;
          Alcotest.test_case "pull non-member" `Quick test_pull_nonmember;
        ] );
      ( "update-model",
        [
          Alcotest.test_case "paper value" `Quick test_update_model_paper_value;
          Alcotest.test_case "zero frequency" `Quick test_update_model_zero_frequency;
          Alcotest.test_case "validation" `Quick test_update_model_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
