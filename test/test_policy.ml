(* Selection-policy tests: the spec grammar (exact round-trips plus
   qcheck properties), the per-key frequency estimator, and the
   admission behaviour of the three adaptive selectors. *)

module Sel = Pdht_policy.Selector
module Freq = Pdht_policy.Freq

let spec = Alcotest.testable (Fmt.of_to_string Sel.to_string) Sel.equal

let params =
  {
    Pdht_model.Params.num_peers = 500;
    keys = 1000;
    stor = 100;
    repl = 20;
    alpha = 1.0;
    f_qry = 0.001;
    f_upd = 0.;
    env = 1. /. 14.;
    dup = 1.8;
    dup2 = 1.8;
  }

(* --- grammar ------------------------------------------------------- *)

let test_grammar_round_trip () =
  List.iter
    (fun (s, expected) ->
      match Sel.of_string s with
      | Ok parsed ->
          Alcotest.check spec (Printf.sprintf "parse %S" s) expected parsed;
          Alcotest.(check string)
            (Printf.sprintf "print %S" s)
            (Sel.to_string expected) (Sel.to_string parsed)
      | Error msg -> Alcotest.failf "of_string %S: %s" s msg)
    [
      ("ttl", Sel.Ttl Sel.Model_derived);
      ("ttl:300", Sel.Ttl (Sel.Fixed 300.));
      ("ttl:0.5", Sel.Ttl (Sel.Fixed 0.5));
      ("ttl:adaptive", Sel.Ttl Sel.Adaptive);
      ("TTL:Adaptive", Sel.Ttl Sel.Adaptive);
      ("cost", Sel.Cost_optimal);
      ("learned", Sel.Learned);
      ("cache:500", Sel.Cache_budget 500);
      ("  cache:1 ", Sel.Cache_budget 1);
    ]

let test_grammar_rejects () =
  List.iter
    (fun s ->
      match Sel.of_string s with
      | Ok parsed -> Alcotest.failf "of_string %S accepted as %s" s (Sel.to_string parsed)
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error mentions input" s)
            true
            (String.length msg > 0))
    [ ""; "ttl:"; "ttl:-5"; "ttl:0"; "ttl:nan"; "cache"; "cache:0"; "cache:-3";
      "cache:many"; "cost:5"; "learned:0.9"; "lru"; "ttl:adaptive:fast" ]

let spec_gen =
  QCheck.Gen.(
    oneof
      [
        return (Sel.Ttl Sel.Model_derived);
        return (Sel.Ttl Sel.Adaptive);
        map (fun ttl -> Sel.Ttl (Sel.Fixed ttl)) (map float_of_int (int_range 1 100000));
        return Sel.Cost_optimal;
        return Sel.Learned;
        map (fun b -> Sel.Cache_budget b) (int_range 1 100000);
      ])

let arbitrary_spec = QCheck.make ~print:Sel.to_string spec_gen

let prop_print_parse_round_trip =
  QCheck.Test.make ~name:"to_string |> of_string round-trips" ~count:500 arbitrary_spec
    (fun s ->
      match Sel.of_string (Sel.to_string s) with
      | Ok parsed -> Sel.equal s parsed
      | Error _ -> false)

let prop_parse_print_idempotent =
  QCheck.Test.make ~name:"of_string output reprints canonically" ~count:500 arbitrary_spec
    (fun s ->
      (* Any accepted string prints to a canonical form that parses to
         the same spec — parsing is idempotent through printing. *)
      match Sel.of_string (Sel.to_string s) with
      | Error _ -> false
      | Ok parsed -> (
          match Sel.of_string (Sel.to_string parsed) with
          | Ok again -> Sel.equal parsed again && Sel.to_string parsed = Sel.to_string again
          | Error _ -> false))

let prop_validate_accepts_generated =
  QCheck.Test.make ~name:"generated specs validate" ~count:200 arbitrary_spec (fun s ->
      match Sel.validate s with Ok v -> Sel.equal s v | Error _ -> false)

(* --- frequency estimator ------------------------------------------- *)

let test_freq_fold_and_rank () =
  let f = Freq.create ~keys:4 () in
  (* Window 1 (10s): key 0 queried 10 times, key 1 once. *)
  for _ = 1 to 10 do
    Freq.note f ~key_index:0
  done;
  Freq.note f ~key_index:1;
  Freq.fold f ~now:10.;
  Alcotest.(check (float 1e-9)) "seeded rate" 1.0 (Freq.rate f ~key_index:0);
  Alcotest.(check (float 1e-9)) "seeded rate key1" 0.1 (Freq.rate f ~key_index:1);
  Alcotest.(check (float 1e-9)) "cold key" 0. (Freq.rate f ~key_index:3);
  (let ranked = Freq.ranked f in
   if Array.length ranked < 2 then Alcotest.fail "ranked returned too few keys";
   Alcotest.(check int) "hottest first" 0 ranked.(0);
   Alcotest.(check int) "second" 1 ranked.(1));
  (* Window 2 (10s): key 0 silent — EMA halves toward 0 at default
     smoothing 0.5; key 2 bursts. *)
  for _ = 1 to 20 do
    Freq.note f ~key_index:2
  done;
  Freq.fold f ~now:20.;
  Alcotest.(check (float 1e-9)) "decayed" 0.5 (Freq.rate f ~key_index:0);
  (* Only the estimator's first fold seeds directly; a key first seen
     later climbs through the EMA: 0.5*0 + 0.5*2.0. *)
  Alcotest.(check (float 1e-9)) "burst climbs via EMA" 1.0 (Freq.rate f ~key_index:2);
  Alcotest.(check int) "two folds" 2 (Freq.folds f)

let test_freq_live_rate () =
  let f = Freq.create ~keys:2 () in
  for _ = 1 to 10 do
    Freq.note f ~key_index:0
  done;
  Freq.fold f ~now:10.;
  (* Open window: key 1 suddenly hot; live_rate sees it before any fold. *)
  for _ = 1 to 30 do
    Freq.note f ~key_index:1
  done;
  Alcotest.(check bool) "live beats stale EMA" true
    (Freq.live_rate f ~now:15. ~key_index:1 > Freq.rate f ~key_index:1);
  Alcotest.(check (float 1e-9)) "live is count/elapsed" 6.0
    (Freq.live_rate f ~now:15. ~key_index:1)

(* --- selectors ----------------------------------------------------- *)

let feed_queries sel ~now ~key_index ~n =
  for _ = 1 to n do
    Sel.observe sel ~now ~key_index (Sel.Queried { hit = false })
  done

let test_cost_optimal_thresholds () =
  let packed = Sel.instantiate Sel.Cost_optimal ~params ~base_ttl:600. ~retune_every:300. in
  (* Before any retune the selector is permissive (no fit yet). *)
  Alcotest.(check bool) "warm-up admits" true (Sel.admit packed ~now:10. ~key_index:42);
  (* Hot key: far above any plausible fMin; cold key: never queried. *)
  feed_queries packed ~now:100. ~key_index:0 ~n:2000;
  feed_queries packed ~now:100. ~key_index:1 ~n:1;
  Sel.retune packed ~now:300.;
  let s = Sel.summary packed in
  Alcotest.(check bool) "threshold fitted" true (s.Sel.threshold > 0.);
  Alcotest.(check bool) "hot admitted" true (Sel.admit packed ~now:310. ~key_index:0);
  Alcotest.(check bool) "cold rejected" false (Sel.admit packed ~now:310. ~key_index:5);
  Alcotest.(check bool) "hot lease longer than cold" true
    (Sel.ttl_for packed ~now:310. ~key_index:0 > Sel.ttl_for packed ~now:310. ~key_index:5)

let test_learned_coverage () =
  let packed = Sel.instantiate Sel.Learned ~params ~base_ttl:600. ~retune_every:300. in
  (* 90% of the mass on key 0; key 2 carries ~1%. *)
  feed_queries packed ~now:100. ~key_index:0 ~n:900;
  feed_queries packed ~now:100. ~key_index:1 ~n:90;
  feed_queries packed ~now:100. ~key_index:2 ~n:10;
  Sel.retune packed ~now:300.;
  let s = Sel.summary packed in
  Alcotest.(check bool) "placement is a strict subset" true
    (s.Sel.target_keys >= 1 && s.Sel.target_keys < params.Pdht_model.Params.keys);
  Alcotest.(check bool) "head admitted" true (Sel.admit packed ~now:310. ~key_index:0);
  Alcotest.(check bool) "tail rejected" false (Sel.admit packed ~now:310. ~key_index:2)

let test_cache_budget_respects_budget () =
  let packed =
    Sel.instantiate (Sel.Cache_budget 2) ~params ~base_ttl:600. ~retune_every:300.
  in
  List.iter
    (fun (k, n) -> feed_queries packed ~now:100. ~key_index:k ~n)
    [ (0, 500); (1, 400); (2, 300); (3, 200) ];
  Sel.retune packed ~now:300.;
  let s = Sel.summary packed in
  Alcotest.(check int) "placement capped at budget" 2 s.Sel.target_keys;
  Alcotest.(check bool) "top-1 in" true (Sel.admit packed ~now:310. ~key_index:0);
  Alcotest.(check bool) "top-2 in" true (Sel.admit packed ~now:310. ~key_index:1);
  Alcotest.(check bool) "rank-3 out" false (Sel.admit packed ~now:310. ~key_index:2);
  Alcotest.(check bool) "rank-4 out" false (Sel.admit packed ~now:310. ~key_index:3)

let test_ttl_selector_is_transparent () =
  let ttl = ref 321. in
  let packed =
    Sel.instantiate (Sel.Ttl Sel.Adaptive) ~ttl_now:(fun () -> !ttl) ~params ~base_ttl:600.
      ~retune_every:300.
  in
  Alcotest.(check bool) "always admits" true (Sel.admit packed ~now:5. ~key_index:9);
  Alcotest.(check (float 1e-9)) "delegates ttl" 321. (Sel.ttl_for packed ~now:5. ~key_index:9);
  ttl := 42.;
  Alcotest.(check (float 1e-9)) "tracks controller" 42.
    (Sel.ttl_for packed ~now:6. ~key_index:9)

let test_instantiate_validates () =
  Alcotest.check_raises "bad base_ttl"
    (Invalid_argument "Selector.instantiate: base_ttl must be finite and positive")
    (fun () ->
      ignore (Sel.instantiate Sel.Cost_optimal ~params ~base_ttl:0. ~retune_every:300.));
  Alcotest.check_raises "bad retune_every"
    (Invalid_argument "Selector.instantiate: retune_every must be positive") (fun () ->
      ignore (Sel.instantiate Sel.Cost_optimal ~params ~base_ttl:600. ~retune_every:0.));
  Alcotest.check_raises "bad spec"
    (Invalid_argument "Selector.instantiate: cache budget 0 must be >= 1") (fun () ->
      ignore (Sel.instantiate (Sel.Cache_budget 0) ~params ~base_ttl:600. ~retune_every:300.))

let test_summary_counters () =
  let packed = Sel.instantiate Sel.Learned ~params ~base_ttl:600. ~retune_every:300. in
  feed_queries packed ~now:50. ~key_index:0 ~n:7;
  Sel.observe packed ~now:50. ~key_index:0 Sel.Inserted;
  Sel.observe packed ~now:50. ~key_index:1 Sel.Rejected;
  Sel.retune packed ~now:300.;
  Sel.retune packed ~now:600.;
  let s = Sel.summary packed in
  Alcotest.(check string) "label" "learned" s.Sel.policy;
  Alcotest.(check int) "observed" 7 s.Sel.observed_queries;
  Alcotest.(check int) "admitted" 1 s.Sel.admitted_inserts;
  Alcotest.(check int) "rejected" 1 s.Sel.rejected_inserts;
  Alcotest.(check int) "retunes" 2 s.Sel.retunes

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_round_trip; prop_parse_print_idempotent;
      prop_validate_accepts_generated ]

let () =
  Alcotest.run "pdht_policy"
    [
      ( "grammar",
        [
          Alcotest.test_case "round trips" `Quick test_grammar_round_trip;
          Alcotest.test_case "rejects junk" `Quick test_grammar_rejects;
        ]
        @ qsuite );
      ( "freq",
        [
          Alcotest.test_case "fold and rank" `Quick test_freq_fold_and_rank;
          Alcotest.test_case "live rate" `Quick test_freq_live_rate;
        ] );
      ( "selectors",
        [
          Alcotest.test_case "cost-optimal thresholds" `Quick test_cost_optimal_thresholds;
          Alcotest.test_case "learned coverage" `Quick test_learned_coverage;
          Alcotest.test_case "cache budget" `Quick test_cache_budget_respects_budget;
          Alcotest.test_case "ttl transparent" `Quick test_ttl_selector_is_transparent;
          Alcotest.test_case "instantiate validates" `Quick test_instantiate_validates;
          Alcotest.test_case "summary counters" `Quick test_summary_counters;
        ] );
    ]
