(* Scale-representation tests: the flat/SoA refactors (open-addressed
   storage, trie-walking Kademlia, CSR topology, compact replication,
   streaming workloads) must be invisible in behaviour.  Three angles:

   - the representation battery (ten simulated arms across backends,
     strategies, churn and eviction policies) is pinned byte-for-byte
     against a golden rendering generated before the refactors;
   - the battery is byte-identical across runner -j values;
   - the rewritten substrates match brute-force reference models on
     random operation sequences. *)

module Rng = Pdht_util.Rng
module Bitkey = Pdht_util.Bitkey
module Storage = Pdht_dht.Storage
module Kademlia = Pdht_dht.Kademlia
module Experiment = Pdht_core.Experiment

(* Under [dune runtest] the cwd is the test directory (the golden file
   arrives via the dune deps glob); a bare [dune exec test/test_scale.exe]
   runs from the project root. *)
let golden_path =
  if Sys.file_exists "golden/representation_reports.txt" then
    "golden/representation_reports.txt"
  else "test/golden/representation_reports.txt"

(* Render once; the golden diff and the -j equality both read it. *)
let battery_j1 = lazy (Experiment.render_reports (Experiment.representation_battery ~jobs:1 ()))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_battery_matches_golden () =
  let golden = read_file golden_path in
  let current = Lazy.force battery_j1 in
  if not (String.equal golden current) then (
    (* A full diff of two ~200-line reports is unreadable in a test
       failure; point at the first divergent line instead. *)
    let gl = String.split_on_char '\n' golden in
    let cl = String.split_on_char '\n' current in
    let rec first_diff i = function
      | g :: gs, c :: cs -> if String.equal g c then first_diff (i + 1) (gs, cs) else Some (i, g, c)
      | [], [] -> None
      | g :: _, [] -> Some (i, g, "<missing>")
      | [], c :: _ -> Some (i, "<missing>", c)
    in
    match first_diff 1 (gl, cl) with
    | None -> Alcotest.fail "length mismatch"
    | Some (line, g, c) ->
        Alcotest.failf
          "battery diverges from %s at line %d:\n  golden:  %s\n  current: %s"
          golden_path line g c)

let test_battery_jobs_invariant () =
  let j4 = Experiment.render_reports (Experiment.representation_battery ~jobs:4 ()) in
  Alcotest.(check bool) "-j1 == -j4 battery rendering" true
    (String.equal (Lazy.force battery_j1) j4)

(* ------------------------------------------------------------------ *)
(* Storage vs a reference model.

   The model is an association list mirroring the documented semantics:
   expiry instants, LRU touches, purge-on-read.  Capacity is kept above
   the live key count so no eviction fires — victim identity is pinned
   by the battery arms above; here we check the bookkeeping the
   open-addressed table must get right (probe sequences, backward-shift
   deletion, in-place expiry). *)

(* Each timed op carries a clock *increment*: simulated time is
   monotone, and the lazy purge only matches an eager model under a
   monotone clock (a physically present but expired entry must never be
   observed again at an earlier time). *)
type op =
  | Put of int * float * float (* key, dt, ttl *)
  | Get of int * float
  | Refresh of int * float * float
  | Mem of int * float
  | Remove of int
  | Expire of float
  | Live_count of float
  | Clear

let op_gen =
  let open QCheck.Gen in
  let key = int_bound 40 in
  let dt = map (fun t -> float_of_int t /. 4.) (int_bound 40) in
  let ttl = map (fun t -> 1. +. (float_of_int t /. 8.)) (int_bound 200) in
  frequency
    [
      (6, map3 (fun k n t -> Put (k, n, t)) key dt ttl);
      (4, map2 (fun k n -> Get (k, n)) key dt);
      (2, map3 (fun k n t -> Refresh (k, n, t)) key dt ttl);
      (2, map2 (fun k n -> Mem (k, n)) key dt);
      (2, map (fun k -> Remove k) key);
      (2, map (fun n -> Expire n) dt);
      (1, map (fun n -> Live_count n) dt);
      (1, return Clear);
    ]

let op_print = function
  | Put (k, n, t) -> Printf.sprintf "Put(%d,+%g,%g)" k n t
  | Get (k, n) -> Printf.sprintf "Get(%d,+%g)" k n
  | Refresh (k, n, t) -> Printf.sprintf "Refresh(%d,+%g,%g)" k n t
  | Mem (k, n) -> Printf.sprintf "Mem(%d,+%g)" k n
  | Remove k -> Printf.sprintf "Remove(%d)" k
  | Expire n -> Printf.sprintf "Expire(+%g)" n
  | Live_count n -> Printf.sprintf "LiveCount(+%g)" n
  | Clear -> "Clear"

(* model: (key, (value, expiry)) assoc, insertion order irrelevant.
   It mirrors the store's *physical* contents: per-key reads purge only
   the probed key (the store is lazy), while [expire]/[live_count]
   sweep everything. *)
let model_purge model now = List.filter (fun (_, (_, e)) -> e > now) model

let model_drop_expired model k now =
  match List.assoc_opt k model with
  | Some (_, e) when e <= now -> List.remove_assoc k model
  | _ -> model

let storage_model_test =
  QCheck.Test.make ~name:"storage matches reference model" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 120) (make ~print:op_print op_gen))
    (fun ops ->
      let store = Storage.create ~capacity:64 () in
      let model = ref [] in
      let clock = ref 0. in
      let ok = ref true in
      let check b = if not b then ok := false in
      let tick dt =
        clock := !clock +. dt;
        !clock
      in
      List.iter
        (fun op ->
          match op with
          | Put (k, dt, ttl) ->
              let now = tick dt in
              Storage.put store ~key:(Bitkey.of_int k) ~value:k ~now ~ttl;
              model := (k, (k, now +. ttl)) :: List.remove_assoc k !model
          | Get (k, dt) ->
              let now = tick dt in
              let got = Storage.get store ~key:(Bitkey.of_int k) ~now in
              model := model_drop_expired !model k now;
              let want = Option.map fst (List.assoc_opt k !model) in
              check (got = want)
          | Refresh (k, dt, ttl) -> (
              let now = tick dt in
              let got = Storage.get_and_refresh store ~key:(Bitkey.of_int k) ~now ~ttl in
              model := model_drop_expired !model k now;
              match List.assoc_opt k !model with
              | Some (v, _) ->
                  model := (k, (v, now +. ttl)) :: List.remove_assoc k !model;
                  check (got = Some v)
              | None -> check (got = None))
          | Mem (k, dt) ->
              let now = tick dt in
              let got = Storage.mem store ~key:(Bitkey.of_int k) ~now in
              model := model_drop_expired !model k now;
              check (got = List.mem_assoc k !model)
          | Remove k ->
              Storage.remove store ~key:(Bitkey.of_int k);
              model := List.remove_assoc k !model
          | Expire dt ->
              let now = tick dt in
              let evicted = Storage.expire store ~now in
              let purged = model_purge !model now in
              check (evicted = List.length !model - List.length purged);
              model := purged
          | Live_count dt ->
              let now = tick dt in
              let got = Storage.live_count store ~now in
              model := model_purge !model now;
              check (got = List.length !model)
          | Clear ->
              let n = Storage.clear store in
              check (n = List.length !model);
              model := [])
        ops;
      (* Final sweep at the current clock: fold_live must agree with the
         surviving model. *)
      let final =
        Storage.fold_live store ~now:!clock ~init:[] ~f:(fun acc k v ->
            (Bitkey.to_int k, v) :: acc)
      in
      model := model_purge !model !clock;
      check (List.length final = List.length !model);
      List.iter
        (fun (k, v) -> check (Option.map fst (List.assoc_opt k !model) = Some v))
        final;
      !ok)

let storage_capacity_test =
  QCheck.Test.make ~name:"storage never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_range 1 200) small_nat))
    (fun (capacity, keys) ->
      let store = Storage.create ~capacity () in
      List.iteri
        (fun i k -> Storage.put store ~key:(Bitkey.of_int k) ~value:i ~now:0. ~ttl:1_000.)
        keys;
      Storage.live_count store ~now:0. <= capacity)

(* ------------------------------------------------------------------ *)
(* Kademlia's trie walk vs brute force over the id space. *)

let kademlia_closest_test =
  QCheck.Test.make ~name:"kademlia closest_members = sorted brute force" ~count:100
    QCheck.(triple (int_range 1 200) (int_range 0 16) small_nat)
    (fun (members, k, seed) ->
      let rng = Rng.create ~seed in
      let t = Kademlia.create rng ~members () in
      let key = Bitkey.random rng in
      let got = Kademlia.closest_members t key ~k in
      let brute = Array.init members Fun.id in
      let dist m = Bitkey.xor_distance (Kademlia.id_of t m) key in
      Array.sort (fun a b -> compare (dist a) (dist b)) brute;
      let want = Array.sub brute 0 (min k members) in
      got = want)

let kademlia_responsible_test =
  QCheck.Test.make ~name:"kademlia responsible = closest online" ~count:100
    QCheck.(triple (int_range 1 100) (int_range 0 99) small_nat)
    (fun (members, offline_mod, seed) ->
      let rng = Rng.create ~seed in
      let t = Kademlia.create rng ~members () in
      let key = Bitkey.random rng in
      let online m = offline_mod = 0 || m mod (offline_mod + 1) <> 0 in
      let got = Kademlia.responsible t ~online key in
      let dist m = Bitkey.xor_distance (Kademlia.id_of t m) key in
      let want =
        let best = ref None in
        for m = 0 to members - 1 do
          if online m then
            match !best with
            | Some b when dist b <= dist m -> ()
            | _ -> best := Some m
        done;
        !best
      in
      got = want)

let qcheck_tests =
  [ storage_model_test; storage_capacity_test; kademlia_closest_test; kademlia_responsible_test ]

let () =
  Alcotest.run "pdht_scale"
    [
      ( "battery",
        [
          Alcotest.test_case "matches golden" `Slow test_battery_matches_golden;
          Alcotest.test_case "-j invariant" `Slow test_battery_jobs_invariant;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
