(* Tests for Pdht_obs: JSON round-trips, streaming histogram accuracy,
   registry snapshots, tracer plumbing, exporters, and the integration
   with the simulator's metrics and the full system run. *)

module Json = Pdht_obs.Json
module Histogram = Pdht_obs.Histogram
module Registry = Pdht_obs.Registry
module Event = Pdht_obs.Event
module Sink = Pdht_obs.Sink
module Tracer = Pdht_obs.Tracer
module Export = Pdht_obs.Export
module Context = Pdht_obs.Context
module Span = Pdht_obs.Span
module Timeline = Pdht_obs.Timeline

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let value =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 1.5);
        ("c", Json.String "hi \"there\"\n");
        ("d", Json.List [ Json.Bool true; Json.Null; Json.Int (-7) ]);
        ("nested", Json.Obj [ ("x", Json.Float 1e-9) ]);
      ]
  in
  match Json.of_string (Json.to_string value) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok parsed ->
      Alcotest.(check string) "stable print" (Json.to_string value)
        (Json.to_string parsed)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Histogram *)

let exact_percentile values p =
  let sorted = List.sort compare values in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

(* The log-bucketed quantile must land within one bucket of the exact
   nearest-rank percentile: [exact / gamma <= estimate <= exact * gamma]. *)
let check_quantile_accuracy values =
  let h = Histogram.create () in
  List.iter (Histogram.record h) values;
  let gamma = Histogram.gamma h in
  List.iter
    (fun p ->
      let exact = exact_percentile values p in
      let est = Histogram.quantile h p in
      let lo = exact /. gamma and hi = exact *. gamma in
      if not (est >= lo -. 1e-9 && est <= hi +. 1e-9) then
        Alcotest.failf "p%.0f: estimate %g outside [%g, %g] (exact %g)" (100. *. p)
          est lo hi exact)
    [ 0.5; 0.9; 0.95; 0.99 ]

let test_histogram_quantiles_uniform () =
  let rng = Pdht_util.Rng.create ~seed:11 in
  check_quantile_accuracy
    (List.init 5_000 (fun _ -> 1_000. *. Pdht_util.Rng.unit_float rng))

let test_histogram_quantiles_heavy_tail () =
  let rng = Pdht_util.Rng.create ~seed:12 in
  check_quantile_accuracy
    (List.init 5_000 (fun _ ->
         let u = Pdht_util.Rng.unit_float rng in
         1. /. (1e-4 +. (u *. u))))

let test_histogram_small_counts () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Histogram.quantile h 0.5);
  Histogram.record h 7.;
  Alcotest.(check (float 0.)) "single value p50" 7. (Histogram.quantile h 0.5);
  Alcotest.(check (float 0.)) "single value p99" 7. (Histogram.quantile h 0.99);
  Alcotest.(check int) "count" 1 (Histogram.count h)

let test_histogram_rejects_bad_input () =
  let h = Histogram.create () in
  List.iter
    (fun v ->
      match Histogram.record h v with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "accepted %g" v)
    [ -1.; Float.nan; Float.infinity ];
  Alcotest.(check int) "invalid samples rejected" 0 (Histogram.count h);
  Histogram.record h 0.;
  Alcotest.(check int) "zero accepted" 1 (Histogram.count h)

let test_histogram_summary_and_reset () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1.; 2.; 3.; 4. ];
  let s = Histogram.summary h in
  Alcotest.(check int) "count" 4 s.Histogram.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Histogram.mean;
  Alcotest.(check (float 1e-9)) "max" 4. s.Histogram.max;
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "reset quantile" 0. (Histogram.quantile h 0.9)

(* ------------------------------------------------------------------ *)
(* Events *)

let sample_events =
  [
    Event.make ~time:1.5 ~peer:3 ~key_index:17 ~hops:4 ~messages:9
      ~outcome:Event.Found ~detail:"chord" Event.Dht_lookup;
    Event.make ~time:0. Event.Engine;
    Event.make ~time:2.25 ~peer:8 ~outcome:Event.Miss Event.Query;
    Event.make ~time:3. ~detail:"with \"quotes\" and\nnewline" Event.Gossip;
    Event.make ~time:4. ~peer:1 ~key_index:5 ~messages:7 ~outcome:Event.Found
      ~span:12 Event.Query;
    Event.make ~time:4.5 ~peer:1 ~key_index:5 ~hops:3 ~messages:2 ~span:13
      ~parent:12 Event.Dht_lookup;
    Event.make ~time:4.6 ~peer:2 ~key_index:5 ~messages:19 ~span:14 ~parent:12
      Event.Replica_flood;
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      let line = Json.to_string (Event.to_json ev) in
      match Json.of_string line with
      | Error msg -> Alcotest.failf "parse %S: %s" line msg
      | Ok json -> (
          match Event.of_json json with
          | Error msg -> Alcotest.failf "of_json %S: %s" line msg
          | Ok ev' ->
              Alcotest.(check string) "round-trip" (Event.to_line ev)
                (Event.to_line ev');
              Alcotest.(check bool) "equal" true (ev = ev')))
    sample_events

let test_event_labels_bijective () =
  List.iter
    (fun cat ->
      match Event.category_of_label (Event.category_label cat) with
      | Some cat' -> Alcotest.(check bool) "category" true (cat = cat')
      | None -> Alcotest.fail "category label not parseable")
    Event.all_categories

(* ------------------------------------------------------------------ *)
(* Tracer + sinks *)

let test_tracer_filter_and_ring () =
  let tracer = Tracer.create ~enabled:true () in
  let ring = Sink.Ring.create ~capacity:3 in
  Tracer.add_sink tracer (Sink.Ring.sink ring);
  Tracer.set_filter tracer (Some [ Event.Query ]);
  Alcotest.(check bool) "query active" true (Tracer.active tracer Event.Query);
  Alcotest.(check bool) "gossip filtered" false (Tracer.active tracer Event.Gossip);
  for i = 0 to 4 do
    Tracer.emit tracer (Event.make ~time:(float_of_int i) Event.Query)
  done;
  Alcotest.(check int) "emitted" 5 (Tracer.events_emitted tracer);
  let times = List.map (fun e -> e.Event.time) (Sink.Ring.contents ring) in
  Alcotest.(check (list (float 0.))) "ring keeps latest, oldest first"
    [ 2.; 3.; 4. ] times;
  Tracer.disable tracer;
  Alcotest.(check bool) "disabled" false (Tracer.active tracer Event.Query)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_snapshot_diff_reset () =
  let r = Registry.create () in
  let c = Registry.counter r "queries" in
  let g = Registry.gauge r "depth" in
  let h = Registry.histogram r "cost" in
  Registry.incr c 5;
  Registry.set_gauge g 2.5;
  Histogram.record h 10.;
  let before = Registry.snapshot r in
  Registry.incr c 3;
  Registry.set_gauge g 4.;
  Histogram.record h 20.;
  let after = Registry.snapshot r in
  let d = Registry.diff ~before ~after in
  (match List.assoc "queries" d with
  | Registry.Counter_v n -> Alcotest.(check int) "counter delta" 3 n
  | _ -> Alcotest.fail "queries not a counter");
  (match List.assoc "depth" d with
  | Registry.Gauge_v v -> Alcotest.(check (float 0.)) "gauge takes after" 4. v
  | _ -> Alcotest.fail "depth not a gauge");
  Alcotest.(check bool) "find-or-create returns same instrument" true
    (Registry.counter r "queries" == c);
  (match Registry.counter r "depth" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch not rejected");
  Registry.reset r;
  Alcotest.(check (option int)) "counter reset" (Some 0)
    (Registry.counter_value_by_name r "queries");
  Alcotest.(check int) "histogram reset" 0 (Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Merging (the parallel runner folds per-task registries together) *)

let record_all h vs = List.iter (Histogram.record h) vs

let test_histogram_merge_equals_concat () =
  let a = [ 0.2; 3.; 17.; 17.5; 400.; 0.9 ] in
  let b = [ 1.; 2.; 1_000_000.; 0.; 17. ] in
  let ha = Histogram.create () and hb = Histogram.create () in
  let hc = Histogram.create () in
  record_all ha a;
  record_all hb b;
  record_all hc (a @ b);
  Histogram.merge ~into:ha hb;
  Alcotest.(check int) "count" (Histogram.count hc) (Histogram.count ha);
  Alcotest.(check (float 1e-9)) "min" (Histogram.min_value hc) (Histogram.min_value ha);
  Alcotest.(check (float 1e-9)) "max" (Histogram.max_value hc) (Histogram.max_value ha);
  Alcotest.(check (float 1e-6)) "sum" (Histogram.sum hc) (Histogram.sum ha);
  let buckets h =
    List.map (fun (lo, _, n) -> (lo, n)) (Histogram.nonzero_buckets h)
  in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bucket-for-bucket" (buckets hc) (buckets ha);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "quantile %g" p)
        (Histogram.quantile hc p) (Histogram.quantile ha p))
    [ 0.5; 0.9; 0.99 ];
  (* hb untouched *)
  Alcotest.(check int) "src untouched" (List.length b) (Histogram.count hb)

let test_histogram_merge_empty_cases () =
  let full = Histogram.create () in
  record_all full [ 1.; 2.; 3. ];
  let empty = Histogram.create () in
  Histogram.merge ~into:full empty;
  Alcotest.(check int) "merging empty is a no-op" 3 (Histogram.count full);
  let target = Histogram.create () in
  Histogram.merge ~into:target full;
  Alcotest.(check int) "merge into empty copies counts" 3 (Histogram.count target);
  Alcotest.(check (float 1e-9)) "mean" (Histogram.mean full) (Histogram.mean target)

let test_histogram_merge_rejects_mismatch () =
  let a = Histogram.create ~gamma:1.1 () in
  let b = Histogram.create ~gamma:1.2 () in
  (match Histogram.merge ~into:a b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "gamma mismatch not rejected");
  match Histogram.merge ~into:a a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "self-merge not rejected"

let test_registry_merge_into () =
  let src = Registry.create () and dst = Registry.create () in
  Registry.incr (Registry.counter dst "messages") 10;
  Registry.incr (Registry.counter src "messages") 5;
  Registry.incr (Registry.counter src "only_in_src") 2;
  Registry.set_gauge (Registry.gauge dst "depth") 1.;
  Registry.set_gauge (Registry.gauge src "depth") 9.;
  Histogram.record (Registry.histogram dst "cost") 4.;
  Histogram.record (Registry.histogram src "cost") 8.;
  Registry.merge_into src ~into:dst;
  Alcotest.(check (option int)) "counters add" (Some 15)
    (Registry.counter_value_by_name dst "messages");
  Alcotest.(check (option int)) "missing counters created" (Some 2)
    (Registry.counter_value_by_name dst "only_in_src");
  Alcotest.(check (option (float 0.))) "gauge last-wins" (Some 9.)
    (Registry.gauge_value_by_name dst "depth");
  (match Registry.find_histogram dst "cost" with
  | Some h -> Alcotest.(check int) "histograms merge" 2 (Histogram.count h)
  | None -> Alcotest.fail "cost histogram lost");
  (* src untouched by the merge *)
  Alcotest.(check (option int)) "src counter untouched" (Some 5)
    (Registry.counter_value_by_name src "messages")

let test_registry_merge_kind_mismatch () =
  let src = Registry.create () and dst = Registry.create () in
  Registry.incr (Registry.counter src "x") 1;
  Registry.set_gauge (Registry.gauge dst "x") 2.;
  (match Registry.merge_into src ~into:dst with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "counter-into-gauge not rejected");
  let src2 = Registry.create () and dst2 = Registry.create () in
  Histogram.record (Registry.histogram src2 "y") 1.;
  Registry.incr (Registry.counter dst2 "y") 1;
  (match Registry.merge_into src2 ~into:dst2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "histogram-into-counter not rejected");
  match Registry.merge_into src ~into:src with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "self-merge not rejected"

(* ------------------------------------------------------------------ *)
(* Export *)

let test_export_jsonl_and_csv () =
  let r = Registry.create () in
  Registry.incr (Registry.counter r "messages.total") 12;
  Registry.set_gauge (Registry.gauge r "engine.queue_depth") 3.;
  Histogram.record (Registry.histogram r "query.cost") 42.;
  let snap = Registry.snapshot r in
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error msg -> Alcotest.failf "bad JSONL %S: %s" line msg
      | Ok json ->
          Alcotest.(check bool) "has name" true (Json.member "name" json <> None);
          Alcotest.(check (option string)) "run label" (Some "r1")
            (Option.bind (Json.member "run" json) Json.to_string_opt))
    (Export.jsonl_lines ~run:"r1" snap);
  let csv = Export.csv snap in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per instrument" 4 (List.length lines)

let test_export_validate_file () =
  let path = Filename.temp_file "pdht_obs" ".jsonl" in
  let r = Registry.create () in
  Registry.incr (Registry.counter r "a") 1;
  Histogram.record (Registry.histogram r "b") 2.;
  Export.to_file ~run:"t" ~time:9. ~path (Registry.snapshot r);
  (match Export.validate_jsonl_file ~path with
  | Ok n -> Alcotest.(check int) "lines" 2 n
  | Error msg -> Alcotest.failf "validate: %s" msg);
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{broken\n";
  close_out oc;
  (match Export.validate_jsonl_file ~path with
  | Ok _ -> Alcotest.fail "accepted broken line"
  | Error _ -> ());
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Metrics tee: registry counters must agree with Metrics.total *)

let test_metrics_tee_agrees () =
  let module Metrics = Pdht_sim.Metrics in
  let m = Metrics.create () in
  Metrics.charge m Metrics.Query_index 7;
  let r = Registry.create () in
  Metrics.attach_registry m r;
  Metrics.charge m Metrics.Query_index 5;
  Metrics.charge m Metrics.Maintenance 11;
  let teed =
    List.fold_left
      (fun acc (cat, _) ->
        match Registry.counter_value_by_name r (Metrics.counter_name cat) with
        | Some n -> acc + n
        | None -> acc)
      0 (Metrics.snapshot m)
  in
  Alcotest.(check int) "registry total = Metrics.total" (Metrics.total m) teed;
  Alcotest.(check int) "pre-attach counts carried over" 23 teed

(* ------------------------------------------------------------------ *)
(* Integration: a short partial-index run fills the hop histograms *)

let test_system_run_populates_histograms () =
  let scenario =
    {
      Pdht_work.Scenario.news_default with
      Pdht_work.Scenario.num_peers = 200;
      keys = 300;
      duration = 200.;
      seed = 99;
    }
  in
  let options =
    { Pdht_core.System.default_options with Pdht_core.System.repl = 10; stor = 50 }
  in
  let key_ttl = Pdht_core.System.derive_key_ttl scenario options in
  let obs = Context.create () in
  let report =
    Pdht_core.System.run ~obs scenario
      (Pdht_core.Strategy.Partial_index { key_ttl })
      options
  in
  let backend = Pdht_dht.Dht.backend_label options.Pdht_core.System.backend in
  let hops_name = "dht.hops." ^ backend in
  (match Registry.find_histogram (Context.registry obs) hops_name with
  | None -> Alcotest.failf "%s not registered" hops_name
  | Some h ->
      Alcotest.(check bool) "hop histogram nonzero" true (Histogram.count h > 0));
  Alcotest.(check bool) "report carries histograms" true
    (List.mem_assoc hops_name report.Pdht_core.System.histograms);
  Alcotest.(check bool) "query.cost in report" true
    (List.mem_assoc "query.cost" report.Pdht_core.System.histograms);
  (* The teed per-category counters must sum to the run's total. *)
  let total_teed =
    Registry.fold (Context.registry obs) ~init:0 ~f:(fun acc name v ->
        match v with
        | Registry.Counter_v n
          when String.length name > 9 && String.sub name 0 9 = "messages." ->
            acc + n
        | _ -> acc)
  in
  Alcotest.(check int) "messages.* counters sum to total_messages"
    report.Pdht_core.System.total_messages total_teed

(* ------------------------------------------------------------------ *)
(* Spans + sampling *)

let test_span_allocator () =
  let a = Span.allocator () in
  let r = Span.root a in
  Alcotest.(check int) "first root id" 0 (Span.id r);
  Alcotest.(check int) "root parent" Span.none (Span.parent r);
  let c = Span.issue a ~parent:(Span.id r) in
  Alcotest.(check int) "sequential ids" 1 (Span.id c);
  Alcotest.(check int) "child parent" 0 (Span.parent c);
  Alcotest.(check int) "next id peek" 2 (Span.next_id a);
  Span.reset a;
  Alcotest.(check int) "reset restarts at 0" 0 (Span.id (Span.root a));
  Alcotest.(check bool) "is_none" true (Span.is_none Span.none);
  Alcotest.(check bool) "0 is a real span" false (Span.is_none 0)

let test_tracer_sampling () =
  let tracer = Tracer.create ~enabled:true () in
  (* Sink-less tracer: tracing is off, so no root and no counter tick. *)
  Alcotest.(check bool) "sink-less -> None" true (Tracer.sample_root tracer = None);
  Tracer.add_sink tracer (Sink.callback ignore);
  Tracer.set_sampling tracer 3;
  Alcotest.(check int) "sampling getter" 3 (Tracer.sampling tracer);
  let picks = List.init 7 (fun _ -> Tracer.sample_root tracer <> None) in
  Alcotest.(check (list bool)) "1-in-3 pattern, first op sampled"
    [ true; false; false; true; false; false; true ]
    picks;
  (* Unsampled roots (maintenance/fault) ignore the sampling counter. *)
  Alcotest.(check bool) "root_span always traced" true
    (Tracer.root_span tracer <> None);
  Tracer.disable tracer;
  Alcotest.(check bool) "disabled -> None" true (Tracer.sample_root tracer = None);
  Alcotest.(check bool) "disabled root_span -> None" true
    (Tracer.root_span tracer = None);
  Alcotest.check_raises "every < 1 rejected"
    (Invalid_argument "Tracer.set_sampling: every must be >= 1") (fun () ->
      Tracer.set_sampling tracer 0)

let test_tracer_flushers () =
  let tracer = Tracer.create () in
  Alcotest.(check bool) "no flushers initially" false (Tracer.has_flushers tracer);
  let log = ref [] in
  Tracer.add_flusher tracer (fun () -> log := "a" :: !log);
  Tracer.add_flusher tracer (fun () -> log := "b" :: !log);
  Alcotest.(check bool) "has flushers" true (Tracer.has_flushers tracer);
  Tracer.flush tracer;
  Alcotest.(check (list string)) "registration order" [ "b"; "a" ] !log

(* ------------------------------------------------------------------ *)
(* Timeline *)

let test_timeline_basic () =
  let tl = Timeline.create ~width:10. ~series:[ "queries"; "messages" ] in
  let s_q = Timeline.series_id tl "queries" in
  let s_m = Timeline.series_id tl "messages" in
  Timeline.add tl ~now:1. s_q 1.;
  Timeline.add tl ~now:9.9 s_q 1.;
  Timeline.add tl ~now:25. s_m 40.;
  Timeline.set tl ~now:25. s_q 7.;
  Timeline.set tl ~now:26. s_q 8.;
  (* gauge: last write wins *)
  let s = Timeline.summary tl in
  Alcotest.(check (float 0.)) "width" 10. s.Timeline.width;
  Alcotest.(check (list string)) "series" [ "queries"; "messages" ] s.Timeline.series;
  (* Window 1 was never touched: only materialized windows appear. *)
  Alcotest.(check (list int)) "touched windows only" [ 0; 2 ]
    (List.map (fun w -> w.Timeline.index) s.Timeline.windows);
  (match s.Timeline.windows with
  | [ w0; w2 ] ->
      Alcotest.(check (float 0.)) "w0 t0" 0. w0.Timeline.t0;
      Alcotest.(check (float 0.)) "w0 t1" 10. w0.Timeline.t1;
      Alcotest.(check (float 0.)) "w0 queries" 2. w0.Timeline.values.(s_q);
      Alcotest.(check (float 0.)) "w2 queries gauge" 8. w2.Timeline.values.(s_q);
      Alcotest.(check (float 0.)) "w2 messages" 40. w2.Timeline.values.(s_m)
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws));
  (* JSONL lines parse back and carry the series as members. *)
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error msg -> Alcotest.failf "timeline line %S: %s" line msg
      | Ok json ->
          Alcotest.(check bool) "has tl" true (Json.member "tl" json <> None);
          Alcotest.(check bool) "validates" true
            (Export.validate_line json = Ok ()))
    (Timeline.jsonl_lines s)

let test_timeline_rejects_bad_input () =
  let bad name f = Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true) in
  bad "non-positive width" (fun () -> Timeline.create ~width:0. ~series:[ "a" ]);
  bad "empty series" (fun () -> Timeline.create ~width:1. ~series:[]);
  bad "duplicate series" (fun () -> Timeline.create ~width:1. ~series:[ "a"; "a" ]);
  let tl = Timeline.create ~width:1. ~series:[ "a" ] in
  bad "unknown series" (fun () -> Timeline.series_id tl "b")

(* ------------------------------------------------------------------ *)
(* validate_line: span/parent sanity and timeline schema *)

let test_validate_rejects_bad_lines () =
  let reject name line =
    let path = Filename.temp_file "pdht_obs" ".jsonl" in
    let oc = open_out path in
    output_string oc (line ^ "\n");
    close_out oc;
    (match Export.validate_jsonl_file ~path with
    | Ok _ -> Alcotest.failf "%s: accepted %S" name line
    | Error _ -> ());
    Sys.remove path
  in
  reject "span < -1" {|{"t":1.0,"cat":"query","span":-2}|};
  reject "parent < -1" {|{"t":1.0,"cat":"query","span":0,"parent":-7}|};
  reject "parent without span" {|{"t":1.0,"cat":"query","parent":3}|};
  reject "negative window index" {|{"tl":-1,"t0":0,"t1":10}|};
  reject "t1 <= t0" {|{"tl":0,"t0":10,"t1":10}|};
  reject "missing t1" {|{"tl":0,"t0":0}|};
  reject "non-numeric series" {|{"tl":0,"t0":0,"t1":10,"queries":"many"}|};
  (* And the happy path still passes through the same entry point. *)
  let path = Filename.temp_file "pdht_obs" ".jsonl" in
  let oc = open_out path in
  output_string oc
    ({|{"t":1.0,"cat":"query","span":0,"msgs":3}|} ^ "\n"
   ^ {|{"t":1.2,"cat":"dht-lookup","span":1,"parent":0,"msgs":3}|} ^ "\n"
   ^ {|{"tl":0,"t0":0,"t1":10,"queries":4}|} ^ "\n");
  close_out oc;
  (match Export.validate_jsonl_file ~path with
  | Ok n -> Alcotest.(check int) "valid lines" 3 n
  | Error msg -> Alcotest.failf "rejected good lines: %s" msg);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Traced system run: causal completeness + leaf-sum identity *)

(* Mirrors tools/trace_stats --check: every span-carrying event must
   reach a root, and an operation root's message total must equal the
   sum of its message-bearing leaves. *)
let check_causal_completeness events =
  let spanned = List.filter (fun (e : Event.t) -> e.Event.span >= 0) events in
  let by_span = Hashtbl.create 256 in
  List.iter (fun (e : Event.t) -> Hashtbl.replace by_span e.Event.span e) spanned;
  let rec root_of (e : Event.t) =
    if e.Event.parent < 0 then Some e
    else
      match Hashtbl.find_opt by_span e.Event.parent with
      | Some p -> root_of p
      | None -> None
  in
  let orphans = ref 0 in
  let trees = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      match root_of e with
      | None -> incr orphans
      | Some r ->
          let members =
            Option.value ~default:[] (Hashtbl.find_opt trees r.Event.span)
          in
          Hashtbl.replace trees r.Event.span (e :: members))
    spanned;
  let is_leaf (e : Event.t) =
    e.Event.parent >= 0
    &&
    match e.Event.category with
    | Event.Dht_lookup | Event.Replica_flood | Event.Broadcast | Event.Gossip ->
        true
    | _ -> false
  in
  let mismatches = ref 0 in
  let roots = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      if e.Event.parent < 0 then Hashtbl.replace roots e.Event.span e)
    spanned;
  let query_roots = ref 0 and gossip_roots = ref 0 in
  Hashtbl.iter
    (fun span (root : Event.t) ->
      match root.Event.category with
      | Event.Query | Event.Gossip ->
          (match root.Event.category with
          | Event.Query -> incr query_roots
          | _ -> incr gossip_roots);
          let members = Option.value ~default:[] (Hashtbl.find_opt trees span) in
          let leaf_sum =
            List.fold_left
              (fun acc e -> if is_leaf e then acc + e.Event.messages else acc)
              0 members
          in
          if leaf_sum <> root.Event.messages then incr mismatches
      | _ -> ())
    roots;
  (!orphans, !mismatches, !query_roots, !gossip_roots)

let traced_scenario seed =
  {
    Pdht_work.Scenario.news_default with
    Pdht_work.Scenario.num_peers = 150;
    keys = 200;
    duration = 150.;
    seed;
    (* short article lifetime so the run exercises Gossip update trees *)
    update_mean_lifetime = Some 400.;
  }

let traced_options () =
  Pdht_core.System.Options.make ~repl:10 ~stor:50
    ~net:
      {
        Pdht_net.Config.default with
        Pdht_net.Config.latency = Pdht_net.Config.Constant 0.02;
        loss = 0.05;
        rpc_timeout = 0.5;
        rpc_retries = 2;
      }
    ()

let traced_run scenario strategy =
  let options = traced_options () in
  let events = ref [] in
  let tracer = Tracer.create ~enabled:true () in
  Tracer.add_sink tracer (Sink.callback (fun e -> events := e :: !events));
  let obs = Context.create ~tracer () in
  let _report = Pdht_core.System.run ~obs scenario strategy options in
  check_causal_completeness (List.rev !events)

let test_traced_run_causal_completeness () =
  let scenario = traced_scenario 21 in
  let key_ttl = Pdht_core.System.derive_key_ttl scenario (traced_options ()) in
  let orphans, mismatches, query_roots, _ =
    traced_run scenario (Pdht_core.Strategy.Partial_index { key_ttl })
  in
  Alcotest.(check int) "partial: no orphan spans" 0 orphans;
  Alcotest.(check int) "partial: leaf sums match roots" 0 mismatches;
  Alcotest.(check bool) "partial: query trees present" true (query_roots > 0);
  (* Updates only cost (and trace) under Index_all: replica groups must
     be kept consistent, so each update gossips through its subnetwork. *)
  let orphans, mismatches, query_roots, gossip_roots =
    traced_run scenario Pdht_core.Strategy.Index_all
  in
  Alcotest.(check int) "index-all: no orphan spans" 0 orphans;
  Alcotest.(check int) "index-all: leaf sums match roots" 0 mismatches;
  Alcotest.(check bool) "index-all: query trees present" true (query_roots > 0);
  Alcotest.(check bool) "index-all: gossip trees present" true (gossip_roots > 0)

let test_system_timeline_report () =
  let scenario = traced_scenario 22 in
  let base = Pdht_core.System.Options.make ~repl:10 ~stor:50 () in
  let key_ttl = Pdht_core.System.derive_key_ttl scenario base in
  let strategy = Pdht_core.Strategy.Partial_index { key_ttl } in
  let plain = Pdht_core.System.run scenario strategy base in
  Alcotest.(check bool) "no timeline by default" true
    (plain.Pdht_core.System.timeline = None);
  let with_tl =
    Pdht_core.System.run scenario strategy
      (Pdht_core.System.Options.with_timeline_window 30. base)
  in
  match with_tl.Pdht_core.System.timeline with
  | None -> Alcotest.fail "timeline missing from report"
  | Some s ->
      Alcotest.(check (float 0.)) "window width" 30. s.Timeline.width;
      Alcotest.(check (list string)) "series"
        [ "queries"; "hits"; "answered"; "messages"; "latency_ms"; "indexed_keys" ]
        s.Timeline.series;
      Alcotest.(check bool) "windows populated" true (s.Timeline.windows <> []);
      let total_queries =
        List.fold_left
          (fun acc w -> acc +. w.Timeline.values.(0))
          0. s.Timeline.windows
      in
      Alcotest.(check (float 0.)) "windowed queries sum to report total"
        (float_of_int with_tl.Pdht_core.System.queries)
        total_queries;
      (* Enabling the timeline must not perturb the simulation. *)
      Alcotest.(check int) "same total messages"
        plain.Pdht_core.System.total_messages
        with_tl.Pdht_core.System.total_messages

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  let sample = float_range 0. 1e6 in
  [
    Test.make ~name:"histogram merge = observing the concatenated stream" ~count:200
      (pair (list_of_size Gen.(int_range 0 60) sample)
         (list_of_size Gen.(int_range 0 60) sample))
      (fun (a, b) ->
        let ha = Histogram.create () and hb = Histogram.create () in
        let hc = Histogram.create () in
        record_all ha a;
        record_all hb b;
        record_all hc (a @ b);
        Histogram.merge ~into:ha hb;
        Histogram.count ha = Histogram.count hc
        && Histogram.nonzero_buckets ha = Histogram.nonzero_buckets hc
        && Histogram.min_value ha = Histogram.min_value hc
        && Histogram.max_value ha = Histogram.max_value hc
        && Float.abs (Histogram.sum ha -. Histogram.sum hc)
           <= 1e-9 *. Float.max 1. (Histogram.sum hc));
    Test.make ~name:"registry merge adds counters" ~count:100
      (pair (int_range 0 1000) (int_range 0 1000))
      (fun (x, y) ->
        let src = Registry.create () and dst = Registry.create () in
        Registry.incr (Registry.counter src "c") x;
        Registry.incr (Registry.counter dst "c") y;
        Registry.merge_into src ~into:dst;
        Registry.counter_value_by_name dst "c" = Some (x + y));
    (* Every category x outcome, all fields including span/parent, must
       survive the JSONL codec byte-for-byte. *)
    Test.make ~name:"event codec round-trips every category and outcome" ~count:400
      (let gen =
         let base =
           Gen.pair
             (Gen.pair (Gen.oneofl Event.all_categories)
                (Gen.oneofl
                   [
                     Event.Hit;
                     Event.Miss;
                     Event.Found;
                     Event.Not_found;
                     Event.Completed;
                     Event.Dropped;
                   ]))
             (Gen.pair (Gen.int_range (-1) 500) (Gen.int_range (-1) 500))
         in
         let rest =
           Gen.pair
             (Gen.pair (Gen.int_range 0 64) (Gen.int_range 0 100_000))
             (Gen.pair (Gen.int_range (-1) 10_000) (Gen.int_range (-1) 10_000))
         in
         Gen.map
           (fun (((cat, out), (peer, key_index)), ((hops, messages), (span, parent))) ->
             let parent = if span < 0 then -1 else parent in
             Event.make
               ~time:(float_of_int (37 * (hops + messages)) /. 16.)
               ~peer ~key_index ~hops ~messages ~outcome:out
               ~detail:(if messages mod 3 = 0 then "x\"y\nz" else "")
               ~span ~parent cat)
           (Gen.pair base rest)
       in
       make ~print:Event.to_line gen)
      (fun ev ->
        match Json.of_string (Json.to_string (Event.to_json ev)) with
        | Error _ -> false
        | Ok json -> (
            match Event.of_json json with
            | Error _ -> false
            | Ok ev' -> ev = ev' && Event.to_line ev = Event.to_line ev'));
    (* Sampled traces are part of the determinism contract: the same
       single-spec batch must produce byte-identical trace files no
       matter how many worker domains the runner was given. *)
    Test.make ~name:"sampled traces byte-identical at -j1 vs -j4" ~count:2
      (int_range 0 10_000)
      (fun seed ->
        let scenario =
          {
            (traced_scenario seed) with
            Pdht_work.Scenario.num_peers = 100;
            keys = 150;
            duration = 100.;
          }
        in
        let spec =
          Pdht_core.Run_spec.make ~options:(traced_options ()) scenario
        in
        let trace jobs =
          let buf = Buffer.create 8192 in
          let tracer = Tracer.create ~enabled:true () in
          Tracer.set_sampling tracer 4;
          Tracer.add_sink tracer
            (Sink.callback (fun e ->
                 Buffer.add_string buf (Event.to_line e);
                 Buffer.add_char buf '\n'));
          let obs = Context.create ~tracer () in
          let results = Pdht_core.Runner.run_all ~jobs ~obs [ spec ] in
          ignore (Pdht_core.Run_result.reports_exn results);
          Buffer.contents buf
        in
        let t1 = trace 1 in
        String.length t1 > 0 && t1 = trace 4);
  ]

let () =
  Alcotest.run "pdht_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles uniform" `Quick test_histogram_quantiles_uniform;
          Alcotest.test_case "quantiles heavy tail" `Quick
            test_histogram_quantiles_heavy_tail;
          Alcotest.test_case "small counts" `Quick test_histogram_small_counts;
          Alcotest.test_case "rejects bad input" `Quick test_histogram_rejects_bad_input;
          Alcotest.test_case "summary and reset" `Quick test_histogram_summary_and_reset;
          Alcotest.test_case "merge equals concat" `Quick test_histogram_merge_equals_concat;
          Alcotest.test_case "merge empty cases" `Quick test_histogram_merge_empty_cases;
          Alcotest.test_case "merge rejects mismatch" `Quick
            test_histogram_merge_rejects_mismatch;
        ] );
      ( "event",
        [
          Alcotest.test_case "json roundtrip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "labels bijective" `Quick test_event_labels_bijective;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "filter and ring" `Quick test_tracer_filter_and_ring;
          Alcotest.test_case "sampling" `Quick test_tracer_sampling;
          Alcotest.test_case "flushers" `Quick test_tracer_flushers;
        ] );
      ( "span",
        [ Alcotest.test_case "allocator" `Quick test_span_allocator ] );
      ( "timeline",
        [
          Alcotest.test_case "windows, counters, gauges" `Quick test_timeline_basic;
          Alcotest.test_case "rejects bad input" `Quick
            test_timeline_rejects_bad_input;
        ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot diff reset" `Quick
            test_registry_snapshot_diff_reset;
          Alcotest.test_case "merge_into" `Quick test_registry_merge_into;
          Alcotest.test_case "merge kind mismatch" `Quick test_registry_merge_kind_mismatch;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl and csv" `Quick test_export_jsonl_and_csv;
          Alcotest.test_case "validate file" `Quick test_export_validate_file;
          Alcotest.test_case "validate rejects bad span/timeline lines" `Quick
            test_validate_rejects_bad_lines;
        ] );
      ( "metrics-tee",
        [ Alcotest.test_case "registry agrees with total" `Quick test_metrics_tee_agrees ]
      );
      ( "system",
        [
          Alcotest.test_case "run populates histograms" `Quick
            test_system_run_populates_histograms;
          Alcotest.test_case "traced run is causally complete" `Quick
            test_traced_run_causal_completeness;
          Alcotest.test_case "timeline lands in the report" `Quick
            test_system_timeline_report;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
