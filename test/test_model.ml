(* Tests for Pdht_model — the paper's analytical model, Eq. 1-17.
   Numeric expectations marked "paper" are hand-derived from the Table-1
   scenario and cross-checked against the published figures. *)

module Params = Pdht_model.Params
module Cost = Pdht_model.Cost
module Index_policy = Pdht_model.Index_policy
module Strategies = Pdht_model.Strategies
module Sweep = Pdht_model.Sweep
module Ttl_analysis = Pdht_model.Ttl_analysis

let p0 = Params.default

(* ------------------------------------------------------------------ *)
(* Params *)

let test_default_is_table1 () =
  Alcotest.(check int) "numPeers" 20_000 p0.Params.num_peers;
  Alcotest.(check int) "keys" 40_000 p0.Params.keys;
  Alcotest.(check int) "stor" 100 p0.Params.stor;
  Alcotest.(check int) "repl" 50 p0.Params.repl;
  Alcotest.(check (float 1e-9)) "alpha" 1.2 p0.Params.alpha;
  Alcotest.(check (float 1e-9)) "fQry busy" (1. /. 30.) p0.Params.f_qry;
  Alcotest.(check (float 1e-12)) "fUpd daily" (1. /. 86_400.) p0.Params.f_upd;
  Alcotest.(check (float 1e-9)) "env" (1. /. 14.) p0.Params.env;
  Alcotest.(check (float 1e-9)) "dup" 1.8 p0.Params.dup;
  Alcotest.(check (float 1e-9)) "dup2" 1.8 p0.Params.dup2

let test_validate_catches_errors () =
  let bad = { p0 with Params.repl = 0 } in
  (match Params.validate bad with
  | Error msg -> Alcotest.(check string) "message" "repl must be >= 1" msg
  | Ok _ -> Alcotest.fail "expected error");
  (match Params.validate { p0 with Params.repl = 30_000 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repl > num_peers must fail");
  match Params.validate p0 with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_sweep_frequencies () =
  let fs = Params.query_frequency_sweep p0 in
  Alcotest.(check int) "eight points" 8 (List.length fs);
  Alcotest.(check (float 1e-12)) "first" (1. /. 30.) (List.hd fs);
  Alcotest.(check (float 1e-12)) "last" (1. /. 7200.) (List.nth fs 7)

let test_table1_rows () =
  Alcotest.(check int) "ten parameter rows" 10 (List.length (Params.to_rows p0))

(* ------------------------------------------------------------------ *)
(* Cost terms *)

let test_eq6_cSUnstr () =
  (* 20000 / 50 * 1.8 = 720 *)
  Alcotest.(check (float 1e-9)) "paper value" 720. (Cost.search_unstructured p0)

let test_num_active_peers () =
  (* Full index: 40000 * 50 / 100 = 20000 peers — the paper's headline. *)
  Alcotest.(check int) "full index needs everyone" 20_000
    (Cost.num_active_peers p0 ~indexed_keys:40_000.);
  Alcotest.(check int) "half index" 10_000 (Cost.num_active_peers p0 ~indexed_keys:20_000.);
  Alcotest.(check int) "tiny index floors at repl" 50
    (Cost.num_active_peers p0 ~indexed_keys:1.);
  Alcotest.(check int) "capped at population" 20_000
    (Cost.num_active_peers p0 ~indexed_keys:1e9)

let test_eq7_cSIndx () =
  (* 0.5 * log2 20000 ~ 7.14 *)
  Alcotest.(check (float 0.01)) "paper value" 7.14
    (Cost.search_index ~num_active_peers:20_000);
  Alcotest.(check (float 1e-9)) "1024 peers" 5. (Cost.search_index ~num_active_peers:1024)

let test_eq8_cRtn () =
  (* env * log2(20000) * 20000 / 40000 ~ 0.51 msg/key/s *)
  Alcotest.(check (float 0.01)) "paper value" 0.511
    (Cost.routing_maintenance p0 ~num_active_peers:20_000 ~indexed_keys:40_000.);
  Alcotest.check_raises "no keys" (Invalid_argument "Cost.routing_maintenance: no indexed keys")
    (fun () -> ignore (Cost.routing_maintenance p0 ~num_active_peers:100 ~indexed_keys:0.))

let test_eq9_cUpd () =
  (* (7.14 + 90) / 86400 ~ 0.00112 *)
  Alcotest.(check (float 1e-5)) "paper value" 0.001124
    (Cost.update p0 ~num_active_peers:20_000)

let test_eq10_cIndKey () =
  let c = Cost.index_key p0 ~num_active_peers:20_000 ~indexed_keys:40_000. in
  let expected =
    Cost.routing_maintenance p0 ~num_active_peers:20_000 ~indexed_keys:40_000.
    +. Cost.update p0 ~num_active_peers:20_000
  in
  Alcotest.(check (float 1e-12)) "sum of parts" expected c;
  (* In this scenario maintenance dominates updates (paper Section 4). *)
  Alcotest.(check bool) "cRtn >> cUpd" true
    (Cost.routing_maintenance p0 ~num_active_peers:20_000 ~indexed_keys:40_000.
     > 100. *. Cost.update p0 ~num_active_peers:20_000)

let test_eq16_cSIndx2 () =
  let c = Cost.search_index_degraded p0 ~num_active_peers:20_000 in
  Alcotest.(check (float 0.01)) "cSIndx + repl*dup2" (7.14 +. 90.) c

let test_total_maintenance_consistency () =
  let nap = 20_000 in
  let total = Cost.total_maintenance p0 ~num_active_peers:nap in
  let per_key = Cost.routing_maintenance p0 ~num_active_peers:nap ~indexed_keys:40_000. in
  Alcotest.(check (float 1e-6)) "total = keys * per-key" total (40_000. *. per_key)

(* ------------------------------------------------------------------ *)
(* Index policy (Eq. 2-5) *)

let test_eq4_prob_queried () =
  let zipf = Pdht_dist.Zipf.create ~n:p0.Params.keys ~alpha:p0.Params.alpha in
  let p1 = Index_policy.prob_queried_at_least_once p0 zipf ~rank:1 in
  (* Rank 1 gets ~18% of 667 queries/round: essentially certain. *)
  Alcotest.(check bool) "rank 1 near-certain" true (p1 > 0.999);
  let p_last = Index_policy.prob_queried_at_least_once p0 zipf ~rank:40_000 in
  Alcotest.(check bool) "rank 40000 rare" true (p_last < 0.001)

let test_solve_converges () =
  let s = Index_policy.solve p0 in
  Alcotest.(check bool) "few iterations" true (s.Index_policy.iterations < 20);
  Alcotest.(check bool) "maxRank in range" true
    (s.Index_policy.max_rank > 0 && s.Index_policy.max_rank <= 40_000)

let test_solve_iteration_cap_returns_last_iterate () =
  (* A starved iteration budget is not an error: [solve] stops at the
     cap and returns the last iterate, which must still be a sane
     (if unconverged) solution. *)
  let s1 = Index_policy.solve ~max_iterations:1 p0 in
  Alcotest.(check int) "stopped at the cap" 1 s1.Index_policy.iterations;
  Alcotest.(check bool) "maxRank still in range" true
    (s1.Index_policy.max_rank >= 0 && s1.Index_policy.max_rank <= 40_000);
  Alcotest.(check bool) "pIndxd still a probability" true
    (s1.Index_policy.p_indexed >= 0. && s1.Index_policy.p_indexed <= 1.);
  (* Granting exactly as many steps as convergence takes reproduces the
     unconstrained answer — the cap only ever truncates. *)
  let full = Index_policy.solve p0 in
  let capped = Index_policy.solve ~max_iterations:full.Index_policy.iterations p0 in
  Alcotest.(check int) "same maxRank at the exact budget"
    full.Index_policy.max_rank capped.Index_policy.max_rank;
  Alcotest.(check (float 1e-12)) "same fMin at the exact budget"
    full.Index_policy.f_min capped.Index_policy.f_min

let test_solve_busy_period_matches_fig3 () =
  (* At fQry = 1/30 the paper's Fig. 3 shows ~60% of keys indexed and
     pIndxd near 1. *)
  let s = Index_policy.solve p0 in
  let frac = float_of_int s.Index_policy.max_rank /. 40_000. in
  Alcotest.(check bool) (Printf.sprintf "index fraction %.2f in [0.5,0.75]" frac) true
    (frac >= 0.5 && frac <= 0.75);
  Alcotest.(check bool) "pIndxd > 0.95" true (s.Index_policy.p_indexed > 0.95)

let test_solve_quiet_period_matches_fig3 () =
  (* At fQry = 1/7200 Fig. 3 shows a tiny index that still answers most
     queries. *)
  let s = Index_policy.solve (Params.with_query_frequency p0 (1. /. 7200.)) in
  let frac = float_of_int s.Index_policy.max_rank /. 40_000. in
  Alcotest.(check bool) (Printf.sprintf "index fraction %.3f < 0.05" frac) true (frac < 0.05);
  Alcotest.(check bool) "pIndxd still > 0.7" true (s.Index_policy.p_indexed > 0.7)

let test_max_rank_monotone_in_frequency () =
  let prev = ref max_int in
  List.iter
    (fun f ->
      let s = Index_policy.solve (Params.with_query_frequency p0 f) in
      Alcotest.(check bool) "maxRank shrinks with query rate" true
        (s.Index_policy.max_rank <= !prev);
      prev := s.Index_policy.max_rank)
    (Params.query_frequency_sweep p0)

let test_max_rank_threshold_edges () =
  let zipf = Pdht_dist.Zipf.create ~n:100 ~alpha:1.2 in
  let small = { p0 with Params.keys = 100 } in
  Alcotest.(check int) "zero threshold indexes everything" 100
    (Index_policy.max_rank_for_threshold small zipf ~f_min:0.);
  Alcotest.(check int) "infinite threshold indexes nothing" 0
    (Index_policy.max_rank_for_threshold small zipf ~f_min:2.)

let test_p_indexed_for_rank () =
  let zipf = Pdht_dist.Zipf.create ~n:1000 ~alpha:1.2 in
  Alcotest.(check (float 1e-12)) "zero keys" 0. (Index_policy.p_indexed_for_rank zipf ~max_rank:0);
  Alcotest.(check (float 1e-9)) "all keys" 1. (Index_policy.p_indexed_for_rank zipf ~max_rank:1000)

(* ------------------------------------------------------------------ *)
(* Strategies (Eq. 11-17) *)

let test_eq11_index_all_paper_value () =
  (* Hand-computed for fQry = 1/30: ~25,200 msg/s; Fig. 1 shows the
     indexAll curve flat around 20-25k. *)
  let b = Strategies.index_all p0 in
  Alcotest.(check bool)
    (Printf.sprintf "total %.0f in [24000, 26500]" b.Strategies.total)
    true
    (b.Strategies.total >= 24_000. && b.Strategies.total <= 26_500.);
  Alcotest.(check (float 1e-9)) "no broadcast term" 0. b.Strategies.broadcast_search

let test_eq12_no_index_paper_value () =
  (* fQry*numPeers*cSUnstr = 666.7 * 720 = 480,000 msg/s at 1/30. *)
  let b = Strategies.no_index p0 in
  Alcotest.(check (float 1.)) "paper value" 480_000. b.Strategies.total;
  Alcotest.(check (float 1e-9)) "no index terms" 0.
    (b.Strategies.maintenance +. b.Strategies.index_search)

let test_eq13_partial_beats_both_baselines () =
  (* Fig. 1: ideal partial is below both curves at every frequency. *)
  List.iter
    (fun f ->
      let p = Params.with_query_frequency p0 f in
      let s = Index_policy.solve p in
      let partial = (Strategies.partial_ideal p s).Strategies.total in
      let all = (Strategies.index_all p).Strategies.total in
      let none = (Strategies.no_index p).Strategies.total in
      Alcotest.(check bool)
        (Printf.sprintf "partial %.0f <= min(all %.0f, none %.0f) at f=%.5f" partial all none f)
        true
        (partial <= all +. 1e-6 && partial <= none +. 1e-6))
    (Params.query_frequency_sweep p0)

let test_partial_ideal_degenerates_to_no_index () =
  (* If no key is worth indexing the partial strategy is pure broadcast. *)
  let quiet = Params.with_query_frequency p0 1e-9 in
  let s = Index_policy.solve quiet in
  if s.Index_policy.max_rank = 0 then begin
    let partial = Strategies.partial_ideal quiet s in
    let none = Strategies.no_index quiet in
    Alcotest.(check (float 1e-6)) "same cost" none.Strategies.total partial.Strategies.total
  end
  else
    (* Even at absurdly low rates Zipf rank 1 may stay indexed; accept
       either as long as cost <= noIndex. *)
    Alcotest.(check bool) "still no worse" true
      ((Strategies.partial_ideal quiet s).Strategies.total
       <= (Strategies.no_index quiet).Strategies.total +. 1e-6)

let test_eq14_15_ttl_state () =
  let s = Index_policy.solve p0 in
  let key_ttl = Strategies.default_key_ttl s in
  let st = Strategies.ttl_state p0 ~key_ttl in
  Alcotest.(check bool) "index size in (0, keys)" true
    (st.Strategies.index_size > 0. && st.Strategies.index_size < 40_000.);
  Alcotest.(check bool) "pIndxd in (0,1)" true
    (st.Strategies.p_indexed_ttl > 0. && st.Strategies.p_indexed_ttl < 1.);
  (* The TTL index holds popular keys, so its hit rate must beat the
     blind fraction indexSize/keys. *)
  Alcotest.(check bool) "index concentrates on popular keys" true
    (st.Strategies.p_indexed_ttl > st.Strategies.index_size /. 40_000.)

let test_ttl_state_monotone_in_ttl () =
  let st1 = Strategies.ttl_state p0 ~key_ttl:100. in
  let st2 = Strategies.ttl_state p0 ~key_ttl:1000. in
  Alcotest.(check bool) "longer TTL, bigger index" true
    (st2.Strategies.index_size > st1.Strategies.index_size);
  Alcotest.(check bool) "longer TTL, higher hit rate" true
    (st2.Strategies.p_indexed_ttl > st1.Strategies.p_indexed_ttl)

let test_eq17_selection_overhead () =
  (* Fig. 4 vs Fig. 2: the realistic algorithm always costs more than
     the ideal one. *)
  List.iter
    (fun f ->
      let p = Params.with_query_frequency p0 f in
      let s = Index_policy.solve p in
      let ttl = Strategies.default_key_ttl s in
      let ideal = (Strategies.partial_ideal p s).Strategies.total in
      let selection = (Strategies.partial_selection p ~key_ttl:ttl).Strategies.total in
      Alcotest.(check bool)
        (Printf.sprintf "selection %.0f >= ideal %.0f at f=%.5f" selection ideal f)
        true (selection >= ideal))
    (Params.query_frequency_sweep p0)

let test_fig4_shape () =
  (* Selection savings vs noIndex decrease with rarity; savings vs
     indexAll increase; selection loses to indexAll only at high query
     frequencies. *)
  let points = Sweep.default_run p0 in
  let first = List.hd points in
  let last = List.nth points 7 in
  Alcotest.(check bool) "vs-noIndex savings decrease" true
    (first.Sweep.savings_selection_vs_none > last.Sweep.savings_selection_vs_none);
  Alcotest.(check bool) "vs-indexAll savings increase" true
    (first.Sweep.savings_selection_vs_all < last.Sweep.savings_selection_vs_all);
  Alcotest.(check bool) "loses to indexAll at 1/30" true
    (first.Sweep.savings_selection_vs_all < 0.);
  Alcotest.(check bool) "wins vs indexAll at 1/7200" true
    (last.Sweep.savings_selection_vs_all > 0.8);
  Alcotest.(check bool) "substantial savings vs noIndex at 1/30" true
    (first.Sweep.savings_selection_vs_none > 0.7)

let test_fig2_shape () =
  let points = Sweep.default_run p0 in
  let first = List.hd points in
  let last = List.nth points 7 in
  Alcotest.(check bool) "ideal vs indexAll grows toward 1" true
    (last.Sweep.savings_ideal_vs_all > 0.9);
  Alcotest.(check bool) "ideal vs noIndex high at busy times" true
    (first.Sweep.savings_ideal_vs_none > 0.9);
  (* All ideal savings are non-negative (Fig. 2 stays above 0). *)
  List.iter
    (fun pt ->
      Alcotest.(check bool) "ideal saves vs both" true
        (pt.Sweep.savings_ideal_vs_all >= 0. && pt.Sweep.savings_ideal_vs_none >= 0.))
    points

let test_fig1_ordering_and_magnitudes () =
  let points = Sweep.default_run p0 in
  List.iter
    (fun pt ->
      Alcotest.(check bool) "noIndex linear in f" true
        (Float.abs (pt.Sweep.no_index -. (pt.Sweep.f_qry *. 20_000. *. 720.)) < 1.);
      Alcotest.(check bool) "indexAll roughly flat (dominated by maintenance)" true
        (pt.Sweep.index_all > 20_000. && pt.Sweep.index_all < 26_500.))
    points

let test_savings_helper () =
  Alcotest.(check (float 1e-12)) "half" 0.5 (Strategies.savings ~cost:50. ~versus:100.);
  Alcotest.(check (float 1e-12)) "negative when worse" (-1.)
    (Strategies.savings ~cost:200. ~versus:100.)

(* ------------------------------------------------------------------ *)
(* TTL sensitivity (Section 5.1.1) *)

let test_ttl_sensitivity_slight () =
  (* The paper: +-50% estimation error decreases savings only slightly.
     We check the savings drop stays under 10 percentage points across
     the paper's window at the default busy frequency. *)
  let rows = Ttl_analysis.run p0 ~scales:Ttl_analysis.default_scales in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun r ->
      if r.Ttl_analysis.scale >= 0.5 && r.Ttl_analysis.scale <= 2.0 then
        Alcotest.(check bool)
          (Printf.sprintf "drop %.4f at scale %.2f < 0.1" r.Ttl_analysis.savings_drop_vs_ideal_ttl
             r.Ttl_analysis.scale)
          true
          (r.Ttl_analysis.savings_drop_vs_ideal_ttl < 0.1))
    rows

let test_ttl_baseline_row_zero_drop () =
  let rows = Ttl_analysis.run p0 ~scales:[ 1.0 ] in
  match rows with
  | [ r ] ->
      Alcotest.(check (float 1e-9)) "baseline drop is zero" 0.
        r.Ttl_analysis.savings_drop_vs_ideal_ttl
  | _ -> Alcotest.fail "expected one row"

let test_best_ttl_picks_minimum () =
  let best = Ttl_analysis.best_ttl p0 ~candidates:[ 10.; 100.; 1000.; 10_000. ] in
  let cost ttl = (Strategies.partial_selection p0 ~key_ttl:ttl).Strategies.total in
  List.iter
    (fun ttl -> Alcotest.(check bool) "no candidate beats best" true (cost best <= cost ttl))
    [ 10.; 100.; 1000.; 10_000. ]

(* ------------------------------------------------------------------ *)
(* k-ary generalization (footnote 3) *)

module Kary = Pdht_model.Kary

let test_kary_binary_matches_eq7 () =
  Alcotest.(check (float 1e-9)) "arity 2 = Eq. 7"
    (Cost.search_index ~num_active_peers:20_000)
    (Kary.search_index ~arity:2 ~num_active_peers:20_000)

let test_kary_binary_matches_eq8 () =
  Alcotest.(check (float 1e-9)) "arity 2 = Eq. 8"
    (Cost.routing_maintenance p0 ~num_active_peers:20_000 ~indexed_keys:40_000.)
    (Kary.routing_maintenance p0 ~arity:2 ~num_active_peers:20_000 ~indexed_keys:40_000.)

let test_kary_lookup_shrinks_with_arity () =
  let prev = ref infinity in
  List.iter
    (fun arity ->
      let c = Kary.search_index ~arity ~num_active_peers:20_000 in
      Alcotest.(check bool) "fewer hops with wider digits" true (c <= !prev);
      prev := c)
    [ 2; 4; 8; 16 ]

let test_kary_table_grows_with_arity () =
  let prev = ref 0. in
  List.iter
    (fun arity ->
      let e = Kary.routing_table_entries ~arity ~num_active_peers:20_000 in
      Alcotest.(check bool) "bigger tables with wider digits" true (e >= !prev);
      prev := e)
    [ 2; 4; 8; 16 ]

let test_kary_validation () =
  Alcotest.check_raises "arity 1" (Invalid_argument "Kary.search_index: arity must be >= 2")
    (fun () -> ignore (Kary.search_index ~arity:1 ~num_active_peers:100));
  Alcotest.check_raises "one peer"
    (Invalid_argument "Kary.search_index: need >= 2 active peers") (fun () ->
      ignore (Kary.search_index ~arity:2 ~num_active_peers:1));
  Alcotest.check_raises "no keys" (Invalid_argument "Kary.routing_maintenance: no indexed keys")
    (fun () -> ignore (Kary.routing_maintenance p0 ~arity:2 ~num_active_peers:100 ~indexed_keys:0.))

let test_kary_sweep_tradeoff () =
  (* The arity trade-off: lookup gets cheaper, maintenance dearer; the
     indexAll total reflects both. *)
  let points = Kary.sweep p0 ~arities:[ 2; 4; 16 ] in
  Alcotest.(check int) "three points" 3 (List.length points);
  let p2 = List.nth points 0 and p16 = List.nth points 2 in
  Alcotest.(check bool) "lookup cheaper at 16" true (p16.Kary.c_s_indx < p2.Kary.c_s_indx);
  Alcotest.(check bool) "maintenance dearer at 16" true (p16.Kary.c_rtn > p2.Kary.c_rtn)

(* ------------------------------------------------------------------ *)
(* Replication planner ([VaCh02] substitute) *)

module Planner = Pdht_model.Replication_planner

let test_planner_item_availability () =
  Alcotest.(check (float 1e-9)) "no replicas" 0.
    (Planner.item_availability ~peer_availability:0.5 ~repl:0);
  Alcotest.(check (float 1e-9)) "one replica" 0.5
    (Planner.item_availability ~peer_availability:0.5 ~repl:1);
  Alcotest.(check (float 1e-9)) "two replicas" 0.75
    (Planner.item_availability ~peer_availability:0.5 ~repl:2)

let test_planner_required_replicas () =
  (* 1 - 0.5^r >= 0.99  =>  r >= log(0.01)/log(0.5) = 6.64 => 7. *)
  Alcotest.(check int) "99% at half availability" 7
    (Planner.required_replicas ~peer_availability:0.5 ~target:0.99);
  Alcotest.(check int) "trivial target" 0
    (Planner.required_replicas ~peer_availability:0.5 ~target:0.);
  Alcotest.(check int) "perfect peers" 1
    (Planner.required_replicas ~peer_availability:1. ~target:0.9);
  (* The returned count actually achieves the target. *)
  List.iter
    (fun (a, target) ->
      let r = Planner.required_replicas ~peer_availability:a ~target in
      Alcotest.(check bool) "achieves target" true
        (Planner.item_availability ~peer_availability:a ~repl:r >= target -. 1e-12);
      if r > 0 then
        Alcotest.(check bool) "minimal" true
          (Planner.item_availability ~peer_availability:a ~repl:(r - 1) < target))
    [ (0.3, 0.999); (0.75, 0.9); (0.1, 0.5) ]

let test_planner_plan_respects_floor () =
  let small = { p0 with Params.num_peers = 2_000; keys = 4_000 } in
  let plan = Planner.plan small ~peer_availability:0.5 ~target:0.99 ~max_repl:60 in
  Alcotest.(check int) "floor is 7" 7 plan.Planner.floor;
  Alcotest.(check bool) "chosen at or above floor" true (plan.Planner.repl >= 7);
  Alcotest.(check bool) "achieves the target" true
    (plan.Planner.achieved_availability >= 0.99);
  Alcotest.(check bool) "cost positive" true (plan.Planner.partial_cost > 0.)

let test_planner_plan_unreachable_target () =
  Alcotest.(check bool) "raises when max_repl too small" true
    (try
       ignore (Planner.plan p0 ~peer_availability:0.1 ~target:0.9999 ~max_repl:3);
       false
     with Invalid_argument _ -> true)

let test_planner_validation () =
  Alcotest.check_raises "availability 0"
    (Invalid_argument "Replication_planner.required_replicas: availability outside (0,1]")
    (fun () -> ignore (Planner.required_replicas ~peer_availability:0. ~target:0.5));
  Alcotest.check_raises "target 1"
    (Invalid_argument "Replication_planner.required_replicas: target outside [0,1)")
    (fun () -> ignore (Planner.required_replicas ~peer_availability:0.5 ~target:1.));
  Alcotest.check_raises "negative repl"
    (Invalid_argument "Replication_planner.item_availability: negative repl") (fun () ->
      ignore (Planner.item_availability ~peer_availability:0.5 ~repl:(-1)))

let test_planner_cost_curve_shape () =
  let rows = Planner.cost_curve p0 ~repls:[ 10; 50; 200 ] in
  (* cSUnstr = numPeers/repl * dup strictly falls with replication. *)
  match rows with
  | [ (_, c10, _); (_, c50, _); (_, c200, _) ] ->
      Alcotest.(check bool) "broadcast cost falls" true (c10 > c50 && c50 > c200)
  | _ -> Alcotest.fail "expected three rows"

(* ------------------------------------------------------------------ *)
(* Sweep plumbing *)

let test_sweep_point_consistency () =
  let pt = Sweep.point p0 in
  Alcotest.(check (float 1e-12)) "f_qry preserved" (1. /. 30.) pt.Sweep.f_qry;
  Alcotest.(check bool) "ttl index no larger than ideal policy would ever index" true
    (pt.Sweep.ttl_index_fraction > 0.);
  Alcotest.(check (float 1e-9)) "savings recomputable"
    (Strategies.savings ~cost:pt.Sweep.partial_ideal ~versus:pt.Sweep.index_all)
    pt.Sweep.savings_ideal_vs_all

let test_sweep_runs_all_frequencies () =
  let points = Sweep.default_run p0 in
  Alcotest.(check int) "eight points" 8 (List.length points);
  let fs = List.map (fun pt -> pt.Sweep.f_qry) points in
  Alcotest.(check bool) "descending frequencies" true
    (fs = List.sort (fun a b -> compare b a) fs)

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  let arb_params =
    let gen =
      Gen.map2
        (fun (peers, keys, stor) (repl, alpha, f_qry) ->
          {
            Params.num_peers = peers;
            keys;
            stor;
            repl = min repl peers;
            alpha;
            f_qry;
            f_upd = 1. /. 86_400.;
            env = 1. /. 14.;
            dup = 1.8;
            dup2 = 1.8;
          })
        (Gen.triple (Gen.int_range 100 5000) (Gen.int_range 100 10_000) (Gen.int_range 10 200))
        (Gen.triple (Gen.int_range 1 50) (Gen.float_range 0.5 1.5) (Gen.float_range 1e-4 0.1))
    in
    make gen
  in
  [
    (* Note: partial <= indexAll is NOT universal — the paper's fMin
       rule uses P(>= 1 query/round) (Eq. 4), which saturates at 1 for
       hot keys and so under-indexes when nearly every key is hot (small
       populations at high query rates).  The dominance over noIndex,
       however, holds everywhere: a key only enters the index when its
       estimated saving clears its cost, and Eq. 4 underestimates that
       saving. *)
    Test.make ~name:"ideal partial never beaten by noIndex" ~count:60 arb_params
      (fun p ->
        let s = Index_policy.solve p in
        let partial = (Strategies.partial_ideal p s).Strategies.total in
        partial <= (Strategies.no_index p).Strategies.total +. 1e-6);
    Test.make ~name:"solve produces consistent pIndxd" ~count:60 arb_params
      (fun p ->
        let s = Index_policy.solve p in
        s.Index_policy.p_indexed >= 0. && s.Index_policy.p_indexed <= 1.);
    Test.make ~name:"ttl_state index size within [0, keys]" ~count:60
      (pair arb_params (float_range 1. 1e5))
      (fun (p, ttl) ->
        let st = Strategies.ttl_state p ~key_ttl:ttl in
        st.Strategies.index_size >= 0.
        && st.Strategies.index_size <= float_of_int p.Params.keys +. 1e-6);
    Test.make ~name:"all strategy costs are positive" ~count:60 arb_params
      (fun p ->
        (Strategies.index_all p).Strategies.total > 0.
        && (Strategies.no_index p).Strategies.total > 0.);
  ]

let () =
  Alcotest.run "pdht_model"
    [
      ( "params",
        [
          Alcotest.test_case "default is Table 1" `Quick test_default_is_table1;
          Alcotest.test_case "validation" `Quick test_validate_catches_errors;
          Alcotest.test_case "frequency sweep" `Quick test_sweep_frequencies;
          Alcotest.test_case "Table 1 rows" `Quick test_table1_rows;
        ] );
      ( "cost-terms",
        [
          Alcotest.test_case "Eq. 6 cSUnstr" `Quick test_eq6_cSUnstr;
          Alcotest.test_case "numActivePeers" `Quick test_num_active_peers;
          Alcotest.test_case "Eq. 7 cSIndx" `Quick test_eq7_cSIndx;
          Alcotest.test_case "Eq. 8 cRtn" `Quick test_eq8_cRtn;
          Alcotest.test_case "Eq. 9 cUpd" `Quick test_eq9_cUpd;
          Alcotest.test_case "Eq. 10 cIndKey" `Quick test_eq10_cIndKey;
          Alcotest.test_case "Eq. 16 cSIndx2" `Quick test_eq16_cSIndx2;
          Alcotest.test_case "total maintenance" `Quick test_total_maintenance_consistency;
        ] );
      ( "index-policy",
        [
          Alcotest.test_case "Eq. 4 extremes" `Quick test_eq4_prob_queried;
          Alcotest.test_case "solve converges" `Quick test_solve_converges;
          Alcotest.test_case "iteration cap returns last iterate" `Quick
            test_solve_iteration_cap_returns_last_iterate;
          Alcotest.test_case "busy period vs Fig. 3" `Quick test_solve_busy_period_matches_fig3;
          Alcotest.test_case "quiet period vs Fig. 3" `Quick test_solve_quiet_period_matches_fig3;
          Alcotest.test_case "maxRank monotone" `Quick test_max_rank_monotone_in_frequency;
          Alcotest.test_case "threshold edges" `Quick test_max_rank_threshold_edges;
          Alcotest.test_case "p_indexed_for_rank" `Quick test_p_indexed_for_rank;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "Eq. 11 indexAll" `Quick test_eq11_index_all_paper_value;
          Alcotest.test_case "Eq. 12 noIndex" `Quick test_eq12_no_index_paper_value;
          Alcotest.test_case "Eq. 13 dominance (Fig. 1)" `Quick test_eq13_partial_beats_both_baselines;
          Alcotest.test_case "degenerate partial" `Quick test_partial_ideal_degenerates_to_no_index;
          Alcotest.test_case "Eq. 14-15 ttl state" `Quick test_eq14_15_ttl_state;
          Alcotest.test_case "ttl monotone" `Quick test_ttl_state_monotone_in_ttl;
          Alcotest.test_case "Eq. 17 overhead" `Quick test_eq17_selection_overhead;
          Alcotest.test_case "Fig. 4 shape" `Quick test_fig4_shape;
          Alcotest.test_case "Fig. 2 shape" `Quick test_fig2_shape;
          Alcotest.test_case "Fig. 1 ordering" `Quick test_fig1_ordering_and_magnitudes;
          Alcotest.test_case "savings helper" `Quick test_savings_helper;
        ] );
      ( "kary",
        [
          Alcotest.test_case "binary = Eq. 7" `Quick test_kary_binary_matches_eq7;
          Alcotest.test_case "binary = Eq. 8" `Quick test_kary_binary_matches_eq8;
          Alcotest.test_case "validation" `Quick test_kary_validation;
          Alcotest.test_case "lookup shrinks" `Quick test_kary_lookup_shrinks_with_arity;
          Alcotest.test_case "table grows" `Quick test_kary_table_grows_with_arity;
          Alcotest.test_case "sweep tradeoff" `Quick test_kary_sweep_tradeoff;
        ] );
      ( "replication-planner",
        [
          Alcotest.test_case "item availability" `Quick test_planner_item_availability;
          Alcotest.test_case "required replicas" `Quick test_planner_required_replicas;
          Alcotest.test_case "plan respects floor" `Quick test_planner_plan_respects_floor;
          Alcotest.test_case "unreachable target" `Quick test_planner_plan_unreachable_target;
          Alcotest.test_case "validation" `Quick test_planner_validation;
          Alcotest.test_case "cost curve shape" `Quick test_planner_cost_curve_shape;
        ] );
      ( "ttl-analysis",
        [
          Alcotest.test_case "±50% slight (5.1.1)" `Quick test_ttl_sensitivity_slight;
          Alcotest.test_case "baseline zero drop" `Quick test_ttl_baseline_row_zero_drop;
          Alcotest.test_case "best_ttl" `Quick test_best_ttl_picks_minimum;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "point consistency" `Quick test_sweep_point_consistency;
          Alcotest.test_case "runs all frequencies" `Quick test_sweep_runs_all_frequencies;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
