(* Tests for the process-driver plumbing: the wall-clock timer wheel,
   framed socket I/O, and the worker-node protocol driven end-to-end
   over a socketpair (the worker answers frames buffered by the kernel,
   so no second process or thread is needed). *)

module Wire = Pdht_wire.Wire
module Timer_wheel = Pdht_proc.Timer_wheel
module Frame_io = Pdht_proc.Frame_io
module Node = Pdht_proc.Node
module Storage = Pdht_dht.Storage

(* ---------------------------------------------------------------- *)
(* Timer_wheel                                                       *)
(* ---------------------------------------------------------------- *)

let test_wheel_fires_in_deadline_order () =
  let w = Timer_wheel.create () in
  let fired = ref [] in
  let note tag () = fired := tag :: !fired in
  ignore (Timer_wheel.schedule w ~at:3.0 (note "late"));
  ignore (Timer_wheel.schedule w ~at:1.0 (note "early"));
  ignore (Timer_wheel.schedule w ~at:2.0 (note "middle"));
  Alcotest.(check (option (float 0.))) "earliest deadline" (Some 1.0)
    (Timer_wheel.next_due w);
  Alcotest.(check int) "two due at t=2" 2 (Timer_wheel.run_due w ~now:2.0);
  Alcotest.(check (list string)) "fired earliest first" [ "early"; "middle" ]
    (List.rev !fired);
  Alcotest.(check int) "one pending" 1 (Timer_wheel.pending w);
  Alcotest.(check int) "remainder fires" 1 (Timer_wheel.run_due w ~now:10.0);
  Alcotest.(check (option (float 0.))) "empty wheel" None (Timer_wheel.next_due w)

let test_wheel_ties_fire_in_creation_order () =
  let w = Timer_wheel.create () in
  let fired = ref [] in
  ignore (Timer_wheel.schedule w ~at:1.0 (fun () -> fired := "first" :: !fired));
  ignore (Timer_wheel.schedule w ~at:1.0 (fun () -> fired := "second" :: !fired));
  ignore (Timer_wheel.run_due w ~now:1.0);
  Alcotest.(check (list string)) "creation order" [ "first"; "second" ]
    (List.rev !fired)

let test_wheel_cancel () =
  let w = Timer_wheel.create () in
  let fired = ref 0 in
  let id = Timer_wheel.schedule w ~at:1.0 (fun () -> incr fired) in
  ignore (Timer_wheel.schedule w ~at:2.0 (fun () -> incr fired));
  Timer_wheel.cancel w id;
  Timer_wheel.cancel w 9999;
  Alcotest.(check int) "only survivor fires" 1 (Timer_wheel.run_due w ~now:5.0);
  Alcotest.(check int) "cancelled callback never ran" 1 !fired

let test_wheel_callback_can_reschedule () =
  let w = Timer_wheel.create () in
  let fired = ref [] in
  ignore
    (Timer_wheel.schedule w ~at:1.0 (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Timer_wheel.schedule w ~at:1.5 (fun () -> fired := "inner" :: !fired))));
  Alcotest.(check int) "due chain runs in one call" 2 (Timer_wheel.run_due w ~now:2.0);
  Alcotest.(check (list string)) "chained order" [ "outer"; "inner" ] (List.rev !fired)

let test_wheel_zero_delay_from_callback () =
  (* A callback arming a timer at the very instant being processed (a
     zero-delay retry) must fire within the same [run_due] call, not
     linger as due-but-unfired — and a chain of such timers must
     terminate rather than re-entering the firing entry. *)
  let w = Timer_wheel.create () in
  let fired = ref [] in
  ignore
    (Timer_wheel.schedule w ~at:1.0 (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Timer_wheel.schedule w ~at:1.0 (fun () ->
                fired := "inner" :: !fired;
                ignore
                  (Timer_wheel.schedule w ~at:1.0 (fun () ->
                       fired := "innermost" :: !fired))))));
  Alcotest.(check int) "whole zero-delay chain fires at once" 3
    (Timer_wheel.run_due w ~now:1.0);
  Alcotest.(check (list string)) "nesting order preserved"
    [ "outer"; "inner"; "innermost" ]
    (List.rev !fired);
  Alcotest.(check int) "nothing left pending" 0 (Timer_wheel.pending w)

(* ---------------------------------------------------------------- *)
(* Frame_io                                                          *)
(* ---------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = Frame_io.of_fd a and cb = Frame_io.of_fd b in
  Fun.protect
    ~finally:(fun () ->
      Frame_io.close ca;
      Frame_io.close cb)
    (fun () -> f ca cb)

let recv_exn conn =
  match Frame_io.recv ~deadline:(Unix.gettimeofday () +. 5.0) conn with
  | Ok msg -> msg
  | Error e -> Alcotest.fail (Frame_io.recv_error_to_string e)

let check_msg name want got =
  Alcotest.(check bool)
    (Format.asprintf "%s: %a" name Wire.pp want)
    true (Wire.equal want got)

let test_frame_io_roundtrip_preserves_order () =
  with_socketpair @@ fun ca cb ->
  let msgs =
    [ Wire.Hello { node_id = 3 };
      Wire.Get { rid = 1; peer = 7; key = 2; refresh = true; now = 1.5; ttl = 30. };
      Wire.Bye ]
  in
  List.iter (Frame_io.send ca) msgs;
  List.iter (fun want -> check_msg "in order" want (recv_exn cb)) msgs

let test_frame_io_reassembles_split_frames () =
  with_socketpair @@ fun ca cb ->
  let frame =
    Wire.encode_bytes (Wire.Counters { rid = 9; node_id = 1; counters = [ ("a", 2) ] })
  in
  let n = Bytes.length frame in
  ignore (Unix.write (Frame_io.fd ca) frame 0 3);
  (* Only a prefix is readable: a bounded recv must time out, not fail. *)
  (match Frame_io.recv ~deadline:(Unix.gettimeofday () +. 0.05) cb with
  | Error Frame_io.Timeout -> ()
  | Ok _ -> Alcotest.fail "decoded a message from a partial frame"
  | Error e -> Alcotest.fail (Frame_io.recv_error_to_string e));
  ignore (Unix.write (Frame_io.fd ca) frame 3 (n - 3));
  check_msg "reassembled"
    (Wire.Counters { rid = 9; node_id = 1; counters = [ ("a", 2) ] })
    (recv_exn cb)

let test_frame_io_reports_closed () =
  with_socketpair @@ fun ca cb ->
  Frame_io.send ca Wire.Bye;
  Unix.shutdown (Frame_io.fd ca) Unix.SHUTDOWN_SEND;
  check_msg "buffered frame still delivered" Wire.Bye (recv_exn cb);
  match Frame_io.recv ~deadline:(Unix.gettimeofday () +. 5.0) cb with
  | Error Frame_io.Closed -> ()
  | Ok _ -> Alcotest.fail "message after EOF"
  | Error e -> Alcotest.fail (Frame_io.recv_error_to_string e)

let test_frame_io_surfaces_codec_errors () =
  with_socketpair @@ fun ca cb ->
  (* A frame with a bogus version byte: complete, but corrupt. *)
  let raw = Bytes.of_string "\x00\x00\x00\x02\x63\x01" in
  ignore (Unix.write (Frame_io.fd ca) raw 0 (Bytes.length raw));
  match Frame_io.recv ~deadline:(Unix.gettimeofday () +. 5.0) cb with
  | Error (Frame_io.Wire (Wire.Bad_version 0x63)) -> ()
  | Ok _ -> Alcotest.fail "decoded garbage"
  | Error e -> Alcotest.fail ("wrong error: " ^ Frame_io.recv_error_to_string e)

(* ---------------------------------------------------------------- *)
(* Node protocol                                                     *)
(* ---------------------------------------------------------------- *)

let test_eviction_codes_roundtrip () =
  List.iter
    (fun ev ->
      match Node.eviction_of_code (Node.eviction_code ev) with
      | Ok ev' -> Alcotest.(check bool) "roundtrip" true (ev = ev')
      | Error msg -> Alcotest.fail msg)
    [ Storage.Evict_soonest_expiry; Storage.Evict_lru; Storage.Evict_random ];
  match Node.eviction_of_code 42 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown eviction code"

(* Script a whole worker session through the kernel socket buffer:
   write every conductor frame, run [serve] (which drains them and
   buffers its replies), then read the replies back. *)
let run_node_session ?obs_out script =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conductor = Frame_io.of_fd a and worker = Frame_io.of_fd b in
  Fun.protect
    ~finally:(fun () ->
      Frame_io.close conductor;
      Frame_io.close worker)
    (fun () ->
      List.iter (Frame_io.send conductor) script;
      Node.serve ?obs_out ~node_id:1 worker;
      let rec drain acc =
        match Frame_io.recv ~deadline:(Unix.gettimeofday () +. 1.0) conductor with
        | Ok msg -> drain (msg :: acc)
        | Error Frame_io.Timeout | Error Frame_io.Closed -> List.rev acc
        | Error e -> Alcotest.fail (Frame_io.recv_error_to_string e)
      in
      drain [])

(* node_id 1 of 2 nodes owns the odd members. *)
let setup = Wire.Setup { nodes = 2; members = 6; keys = 4; stor = 8; eviction = 0; seed = 7 }

let test_node_serves_store_ops () =
  let replies =
    run_node_session
      [ setup;
        Wire.Insert { rid = 1; peer = 3; key = 2; value = 55; now = 10.0; ttl = 30.0 };
        Wire.Get { rid = 2; peer = 3; key = 2; refresh = true; now = 20.0; ttl = 30.0 };
        Wire.Probe { rid = 3; op = Wire.Mem; peer = 3; key = 2; now = 45.0 };
        (* The refresh at t=20 moved expiry to t=50, so t=45 still hits. *)
        Wire.Get { rid = 4; peer = 3; key = 1; refresh = false; now = 20.0; ttl = 0.0 };
        Wire.Probe { rid = 5; op = Wire.Live_count; peer = 3; key = -1; now = 20.0 };
        Wire.Probe { rid = 6; op = Wire.Clear; peer = 3; key = -1; now = 0.0 };
        Wire.Lookup { rid = 7; span = -1; src = 0; dst = 5; key = -1 };
        Wire.Gossip { span = -1; src = 0; dst = 1; key = -1 };
        Wire.Bye ]
  in
  match replies with
  | [ Wire.Hello { node_id = 1 };
      Wire.Ack { rid = 1; ok = true; _ };
      Wire.Ack { rid = 2; ok = true; value = 55 };
      Wire.Ack { rid = 3; ok = true; _ };
      Wire.Ack { rid = 4; ok = false; _ };
      Wire.Ack { rid = 5; ok = true; value = 1 };
      Wire.Ack { rid = 6; ok = true; value = 1 };
      Wire.Ack { rid = 7; ok = true; _ } ] ->
      ()
  | replies ->
      Alcotest.fail
        (Format.asprintf "unexpected session transcript:@ %a"
           (Format.pp_print_list Wire.pp) replies)

let test_node_snapshot_counts_traffic () =
  let replies =
    run_node_session
      [ setup;
        Wire.Insert { rid = 1; peer = 1; key = 0; value = 9; now = 0.0; ttl = 10.0 };
        Wire.Gossip { span = -1; src = 0; dst = 1; key = -1 };
        Wire.Snapshot { rid = 2 };
        Wire.Bye ]
  in
  match replies with
  | [ Wire.Hello _; Wire.Ack { rid = 1; _ };
      Wire.Counters { rid = 2; node_id = 1; counters } ] ->
      let count name =
        match List.assoc_opt name counters with Some n -> n | None -> 0
      in
      Alcotest.(check int) "one put" 1 (count "proc.puts");
      Alcotest.(check int) "one cast" 1 (count "proc.casts");
      (* Setup + Insert + Gossip + Snapshot received before the reply. *)
      Alcotest.(check int) "frames in" 4 (count "proc.frames_in")
  | replies ->
      Alcotest.fail
        (Format.asprintf "unexpected session transcript:@ %a"
           (Format.pp_print_list Wire.pp) replies)

let test_node_rejects_unowned_member () =
  match
    run_node_session
      [ setup;
        (* Member 2 belongs to node 0, not node 1. *)
        Wire.Get { rid = 1; peer = 2; key = 0; refresh = false; now = 0.0; ttl = 0.0 } ]
  with
  | exception Failure msg ->
      let contains sub =
        let n = String.length sub and m = String.length msg in
        let rec at i = i + n <= m && (String.sub msg i n = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "names the member" true (contains "member 2")
  | _ -> Alcotest.fail "expected a protocol failure"

let test_node_obs_out_validates () =
  let path = Filename.temp_file "pdht_node" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore
        (run_node_session ~obs_out:path
           [ setup;
             Wire.Insert { rid = 1; peer = 1; key = 0; value = 1; now = 0.0; ttl = 5.0 };
             Wire.Bye ]);
      match Pdht_obs.Export.validate_jsonl_file ~path with
      | Ok lines -> Alcotest.(check bool) "wrote node-stamped lines" true (lines > 0)
      | Error msg -> Alcotest.fail msg)

(* ---------------------------------------------------------------- *)
(* Cluster worker death                                              *)

let test_cluster_worker_death_fails_fast () =
  (* [crash_worker.exe] handshakes like a real worker and then exits
     with status 3; the conductor must detect the death and fail with
     the node id, exit status and last frame kind — not grind the RPC
     retry ladder against a dead process. *)
  let exe =
    (* dune runtest runs us in the build dir next to the helper; under
       dune exec the cwd is elsewhere, so fall back to our own dir. *)
    let candidates =
      [
        Filename.concat (Sys.getcwd ()) "crash_worker.exe";
        Filename.concat (Filename.dirname Sys.executable_name) "crash_worker.exe";
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some exe -> exe
    | None -> Alcotest.fail "crash_worker.exe not found beside the test"
  in
  let scenario =
    {
      Pdht_work.Scenario.news_default with
      Pdht_work.Scenario.num_peers = 60;
      keys = 100;
      duration = 60.;
      seed = 5;
    }
  in
  let module System = Pdht_core.System in
  let options = System.Options.make ~repl:5 ~stor:20 () in
  let strategy =
    Pdht_core.Strategy.Partial_index
      { key_ttl = System.derive_key_ttl scenario options }
  in
  let config = Pdht_proc.Cluster.default_config ~nodes:1 ~exe in
  let started = Unix.gettimeofday () in
  (* A death during the run surfaces through the engine's context
     wrapper; one during setup/teardown comes out as the bare Failure. *)
  match Pdht_proc.Cluster.run config scenario strategy options with
  | _ -> Alcotest.fail "conductor returned a report from a dead worker"
  | exception
      ( Failure msg
      | Pdht_sim.Engine.Handler_failed { exn = Failure msg; _ } ) ->
      let contains sub =
        let n = String.length sub and m = String.length msg in
        let rec at i = i + n <= m && (String.sub msg i n = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) ("names the node: " ^ msg) true (contains "node 0");
      Alcotest.(check bool) ("names the exit status: " ^ msg) true
        (contains "exited with status 3");
      Alcotest.(check bool) ("names the last frame: " ^ msg) true
        (contains "last frame sent:");
      (* Fail-fast: well under the 2s-timeout x 4-attempt retry ladder. *)
      Alcotest.(check bool) "failed promptly" true
        (Unix.gettimeofday () -. started < 5.0)

let () =
  Alcotest.run "pdht_proc"
    [
      ( "timer_wheel",
        [
          Alcotest.test_case "fires in deadline order" `Quick
            test_wheel_fires_in_deadline_order;
          Alcotest.test_case "ties fire in creation order" `Quick
            test_wheel_ties_fire_in_creation_order;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "callback can reschedule" `Quick
            test_wheel_callback_can_reschedule;
          Alcotest.test_case "zero-delay timer from a callback" `Quick
            test_wheel_zero_delay_from_callback;
        ] );
      ( "frame_io",
        [
          Alcotest.test_case "roundtrip preserves order" `Quick
            test_frame_io_roundtrip_preserves_order;
          Alcotest.test_case "reassembles split frames" `Quick
            test_frame_io_reassembles_split_frames;
          Alcotest.test_case "reports closed" `Quick test_frame_io_reports_closed;
          Alcotest.test_case "surfaces codec errors" `Quick
            test_frame_io_surfaces_codec_errors;
        ] );
      ( "node",
        [
          Alcotest.test_case "eviction codes roundtrip" `Quick
            test_eviction_codes_roundtrip;
          Alcotest.test_case "serves store ops" `Quick test_node_serves_store_ops;
          Alcotest.test_case "snapshot counts traffic" `Quick
            test_node_snapshot_counts_traffic;
          Alcotest.test_case "rejects unowned member" `Quick
            test_node_rejects_unowned_member;
          Alcotest.test_case "obs-out validates" `Quick test_node_obs_out_validates;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "worker death fails fast" `Quick
            test_cluster_worker_death_fails_fast;
        ] );
    ]
