(* Validate JSON-Lines telemetry files: every non-empty line must parse
   with the same parser the library and tests use.  Exit 1 on the first
   malformed file; used by tools/ci.sh. *)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: validate_jsonl FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match Pdht_obs.Export.validate_jsonl_file ~path with
      | Ok n -> Printf.printf "%s: %d valid JSON lines\n" path n
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          failed := true
      | exception Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          failed := true)
    files;
  if !failed then exit 1
