(* Regenerates the representation-equivalence golden file:

     dune exec tools/report_fixture.exe > test/golden/representation_reports.txt

   Run it only when a PR deliberately changes observable behaviour;
   purely representational PRs must leave the output byte-identical
   (test_scale diffs the battery against the committed file). *)
let () =
  print_string
    (Pdht_core.Experiment.render_reports
       (Pdht_core.Experiment.representation_battery ~jobs:1 ()))
