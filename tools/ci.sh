#!/bin/sh
# Tier-1 CI: build, test suite, bench smoke, and a telemetry smoke run
# whose emitted JSONL is validated with the library's own parser.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== bench smoke =="
dune exec bench/main.exe -- table1 perf > /dev/null
test -f BENCH_pdht.json
dune exec tools/validate_jsonl.exe -- BENCH_pdht.json

echo "== parallel determinism =="
# The runner's contract: any --jobs value yields byte-identical output.
par=$(mktemp -d)
trap 'rm -rf "$par"' EXIT INT TERM
dune exec bench/main.exe -- -j 1 seeds > "$par/seeds-j1.txt"
dune exec bench/main.exe -- -j 4 seeds > "$par/seeds-j4.txt"
diff "$par/seeds-j1.txt" "$par/seeds-j4.txt"

echo "== telemetry smoke =="
out=$(mktemp -d)
trap 'rm -rf "$par" "$out"' EXIT INT TERM
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 120 \
  --metrics-out "$out/metrics.jsonl" --trace-out "$out/trace.jsonl" > /dev/null
dune exec tools/validate_jsonl.exe -- "$out/metrics.jsonl" "$out/trace.jsonl"

echo "CI OK"
