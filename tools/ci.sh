#!/bin/sh
# Tier-1 CI: build, test suite, bench smoke, and a telemetry smoke run
# whose emitted JSONL is validated with the library's own parser.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== docs =="
# Documentation must at least assemble.  With no public library names
# and no odoc in the container the alias is currently empty (and so
# trivially green), but the gate keeps doc rules from rotting silently
# once either appears.
dune build @doc

echo "== bench smoke =="
dune exec bench/main.exe -- table1 perf > /dev/null
test -f BENCH_pdht.json
dune exec tools/validate_jsonl.exe -- BENCH_pdht.json

echo "== perf guardrail =="
# The perf section just ran as part of the bench smoke; hold its output
# to the runner's two contracts.  (1) Batch output must be identical
# across --jobs values.  (2) The parallel batch must never be
# meaningfully slower than the sequential one: on multi-core machines it
# should win, and on a single core the hardware clamp makes it run
# inline, so a large regression here means the clamp broke and domains
# are thrashing the stop-the-world GC.  The 1.5x factor is generous on
# purpose — this is a smoke test on shared CI boxes, not a benchmark.
grep -q '"identical_reports": *true' BENCH_pdht.json

echo "== network model =="
# The perf section also ran the network-model contracts: a zero-cost
# net (zero latency, zero loss) must reproduce the no-net report field
# for field, and the 0 -> 20% loss sweep must have completed without an
# unhandled exception (its rows land in the same JSON).
grep -q '"zero_cost_net_equivalent": *true' BENCH_pdht.json
grep -q '"loss_sweep"' BENCH_pdht.json
wall_single=$(grep -o '"wall_single_s": *[0-9.eE+-]*' BENCH_pdht.json | awk -F: '{print $2}')
wall_parallel=$(grep -o '"wall_parallel_s": *[0-9.eE+-]*' BENCH_pdht.json | awk -F: '{print $2}')
echo "wall_single_s=$wall_single wall_parallel_s=$wall_parallel"
awk -v s="$wall_single" -v p="$wall_parallel" \
  'BEGIN { if (!(s > 0) || !(p > 0)) exit 1; exit (p <= 1.5 * s) ? 0 : 1 }'

echo "== fault gate =="
# The perf section also ran the fault contracts (in the same JSON):
# an empty fault plan must reproduce the no-fault report field for
# field, the 0 -> 50% crash sweep must have completed, and E21-small
# (30% mass crash with anti-entropy repair) must have recovered —
# finite time-to-recover, i.e. some post-fault bucket back within 5%
# of the pre-fault service rate.  The -j 1 vs -j 4 byte-identity of
# fault-enabled runs is a qcheck property in test_fault (runs under
# "dune runtest" above).
grep -q '"no_fault_equivalent": *true' BENCH_pdht.json
grep -q '"crash_sweep"' BENCH_pdht.json
grep -q '"fault_recovered": *true' BENCH_pdht.json

echo "== selection policy gate =="
# The perf section raced the selection policies (same JSON).  Two
# contracts: (1) the default [Ttl Model_derived] policy must be
# indistinguishable from the pre-policy system — the deprecated
# ttl_policy alias reproduces it field for field and installs no
# selector — and (2) in the E23 flash-crowd race at least one adaptive
# policy must beat the static model-derived TTL on post-shift cost.
grep -q '"policy_default_equivalent": *true' BENCH_pdht.json
grep -q '"policy_adaptive_beats_static": *true' BENCH_pdht.json
grep -q '"policy_race"' BENCH_pdht.json
# Byte-level anchor for the same contract: the default-policy CLI report
# is pinned against a golden file committed before the policy axis
# existed.  Any drift here means the selection_policy redesign perturbed
# the default code path.
pol=$(mktemp -d)
trap 'rm -rf "$pol"' EXIT INT TERM
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 240 \
  > "$pol/default-report.txt"
diff "$pol/default-report.txt" test/golden/default_policy_report.txt
# An explicit --policy ttl spells the same default and must also match.
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 240 \
  --policy ttl > "$pol/ttl-report.txt"
diff "$pol/ttl-report.txt" test/golden/default_policy_report.txt
# And an adaptive spec must actually install its selector: the report
# grows the policy summary line (run long enough for one retune).
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 400 \
  --policy cost > "$pol/cost-report.txt"
grep -q 'policy: cost' "$pol/cost-report.txt"

echo "== parallel determinism =="
# The runner's contract: any --jobs value yields byte-identical output.
par=$(mktemp -d)
trap 'rm -rf "$pol" "$par"' EXIT INT TERM
dune exec bench/main.exe -- -j 1 seeds > "$par/seeds-j1.txt"
dune exec bench/main.exe -- -j 4 seeds > "$par/seeds-j4.txt"
diff "$par/seeds-j1.txt" "$par/seeds-j4.txt"

echo "== telemetry smoke =="
out=$(mktemp -d)
trap 'rm -rf "$pol" "$par" "$out"' EXIT INT TERM
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 120 \
  --metrics-out "$out/metrics.jsonl" --trace-out "$out/trace.jsonl" > /dev/null
dune exec tools/validate_jsonl.exe -- "$out/metrics.jsonl" "$out/trace.jsonl"
# Same smoke with the network model on: the net.* trace events must be
# well-formed JSONL and actually present, and the report must carry the
# net summary line.
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 120 \
  --latency 0.02 --loss 0.1 --rpc-timeout 0.5 --rpc-retries 2 \
  --metrics-out "$out/net-metrics.jsonl" --trace-out "$out/net-trace.jsonl" \
  > "$out/net-report.txt"
dune exec tools/validate_jsonl.exe -- "$out/net-metrics.jsonl" "$out/net-trace.jsonl"
grep -q '"cat":"net"' "$out/net-trace.jsonl"
grep -q 'net: sent=' "$out/net-report.txt"
# And with fault injection on: the fault trace events must be present
# and well-formed, the report must carry the fault block, and the
# repair counters must be live.
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 240 \
  --fault 'crash:0.3@120+60' --fault-repair 30 --fault-check \
  --metrics-out "$out/fault-metrics.jsonl" --trace-out "$out/fault-trace.jsonl" \
  > "$out/fault-report.txt"
dune exec tools/validate_jsonl.exe -- "$out/fault-metrics.jsonl" "$out/fault-trace.jsonl"
grep -q '"cat":"fault"' "$out/fault-trace.jsonl"
grep -q 'fault: crashes=' "$out/fault-report.txt"
grep -q 'repair: passes=' "$out/fault-report.txt"

echo "== causal tracing gate =="
# Every sampled query in an unfiltered trace must reconstruct as a
# rooted span tree: zero orphan spans, and each root's message count
# equal to the sum over its message-bearing leaves.  trace_stats
# --check turns both invariants (plus "at least one tree") into an
# exit code.  The timeline JSONL must pass the same validator the
# tests use.
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 120 \
  --latency 0.02 --loss 0.1 --rpc-timeout 0.5 --rpc-retries 2 \
  --trace-out "$out/causal-trace.jsonl" --trace-sample 1 \
  --timeline-out "$out/timeline.jsonl" --timeline-window 30 \
  > "$out/causal-report.txt"
dune exec tools/trace_stats.exe -- --check "$out/causal-trace.jsonl"
dune exec tools/validate_jsonl.exe -- "$out/causal-trace.jsonl" "$out/timeline.jsonl"
grep -q '"tl":0' "$out/timeline.jsonl"
grep -q 'timeline: windows=' "$out/causal-report.txt"

echo "== tracing overhead gate =="
# The perf section measures the cost of the tracing plumbing with the
# tracer disabled (the default for every run that doesn't pass
# --trace-out): it must stay within 2% of the pre-instrumentation
# baseline, re-measured in the same process to cancel host noise.
grep -q '"tracing_disabled_within_2pct": *true' BENCH_pdht.json
frac=$(grep -o '"disabled_overhead_frac": *[0-9.eE+-]*' BENCH_pdht.json | awk -F: '{print $2}')
echo "disabled_overhead_frac=$frac"
awk -v f="$frac" 'BEGIN { exit (f <= 0.02) ? 0 : 1 }'

echo "== scale smoke gate =="
# Flat-representation contract at a tenth of the full sweep: the decade
# sweep up to 10^5 peers must finish inside a 10-minute wall budget and
# a 2 GB high-water RSS, bytes/peer must not regress by more than 10%
# decade-over-decade (the bench folds that rule into
# bytes_per_peer_flat), hops must track log N, and the in-place expiry
# sweep must still be allocation-free.  The scale section splices its
# block into the BENCH_pdht.json the perf section wrote above; the
# merged file must still be valid JSON.
scale_t0=$(date +%s)
dune exec bench/main.exe -- scale --scale-max 100000 > /dev/null
scale_t1=$(date +%s)
scale_wall=$((scale_t1 - scale_t0))
echo "scale --scale-max 100000 wall=${scale_wall}s"
test "$scale_wall" -le 600
dune exec tools/validate_jsonl.exe -- BENCH_pdht.json
grep -q '"bytes_per_peer_flat": *true' BENCH_pdht.json
grep -q '"hops_track_log_n": *true' BENCH_pdht.json
grep -q '"storage_expire_alloc_free": *true' BENCH_pdht.json
scale_rss=$(grep -o '"peak_rss_mb": *[0-9.eE+-]*' BENCH_pdht.json | awk -F: '{print $2}')
echo "scale peak_rss_mb=$scale_rss"
awk -v r="$scale_rss" 'BEGIN { exit (r > 0 && r <= 2048) ? 0 : 1 }'

echo "== cluster smoke gate =="
# Simulator-vs-processes equivalence (DESIGN §14, E25): an 8-process
# loopback cluster run must print the same-seed simulator report byte
# for byte, every per-node JSONL file must pass the schema validator
# (including the node_id stamp), and the merged registry must carry the
# workers' proc.* traffic counters.
clu=$(mktemp -d)
trap 'rm -rf "$pol" "$par" "$out" "$clu"' EXIT INT TERM
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 120 \
  > "$clu/sim-report.txt"
dune exec bin/pdht_cli.exe -- cluster --nodes 8 --peers 200 --keys 300 \
  --duration 120 --obs-dir "$clu/obs" > "$clu/cluster-report.txt"
diff "$clu/sim-report.txt" "$clu/cluster-report.txt"
test "$(ls "$clu"/obs/node-*.jsonl | wc -l)" -eq 8
dune exec tools/validate_jsonl.exe -- "$clu"/obs/node-*.jsonl "$clu/obs/merged.jsonl"
grep -q '"name":"proc.frames_in"' "$clu/obs/merged.jsonl"
grep -q '"node_id":0' "$clu/obs/node-0.jsonl"
# Flag-conflict reporting: --policy combined with BOTH legacy TTL flags
# must name both in one usage error (exit 124 = cmdliner usage error).
if dune exec bin/pdht_cli.exe -- simulate --policy ttl --key-ttl 30 --adaptive \
  > /dev/null 2> "$clu/conflict.txt"; then
  echo "conflicting flags were accepted" >&2; exit 1
fi
grep -q -- '--policy subsumes --key-ttl and --adaptive' "$clu/conflict.txt"
# Multi-node causal traces: the analyzer must merge per-node files by
# (node_id, span) — two differently-stamped copies of one trace are
# 2x the trees with zero duplicate-span collisions.
sed 's/^{/{"node_id":0,/' "$out/causal-trace.jsonl" > "$clu/trace-n0.jsonl"
sed 's/^{/{"node_id":1,/' "$out/causal-trace.jsonl" > "$clu/trace-n1.jsonl"
dune exec tools/validate_jsonl.exe -- "$clu/trace-n0.jsonl" "$clu/trace-n1.jsonl"
dune exec tools/trace_stats.exe -- --check "$clu/trace-n0.jsonl" "$clu/trace-n1.jsonl" \
  > "$clu/trace-merged.txt"
grep -q 'duplicate span ids: 0' "$clu/trace-merged.txt"

echo "== churn routing gate =="
# E26 (DESIGN §15): per decade of mean session length the living
# k-buckets must beat the frozen tables on the stale-route rate while
# spending the exact same measured maintenance budget, and stay within
# 5% of the no-churn success ceiling.  The section computes the three
# contracts over its own rows and splices them as booleans; churn runs
# must also be byte-identical across --jobs values.
chu=$(mktemp -d)
trap 'rm -rf "$pol" "$par" "$out" "$clu" "$chu"' EXIT INT TERM
dune exec bench/main.exe -- -j 1 churn_routing > "$chu/churn-j1.txt"
dune exec bench/main.exe -- -j 4 churn_routing > "$chu/churn-j4.txt"
diff "$chu/churn-j1.txt" "$chu/churn-j4.txt"
dune exec tools/validate_jsonl.exe -- BENCH_pdht.json
grep -q '"churn"' BENCH_pdht.json
grep -q '"live_beats_frozen_stale_route": *true' BENCH_pdht.json
grep -q '"live_within_success_floor": *true' BENCH_pdht.json
grep -q '"equal_maintenance_budget": *true' BENCH_pdht.json
# The heavy-tailed session axis end to end: a live-table CLI run with a
# Weibull spec must complete and report the live-routing block, and the
# same spec must parse inside a fault-plan churn clause.
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 120 \
  --churn weibull:up=600:down=200:shape=0.6 --bucket-refresh 30 \
  > "$chu/live-report.txt"
grep -q 'churn' "$chu/live-report.txt"
dune exec bin/pdht_cli.exe -- simulate --peers 200 --keys 300 --duration 240 \
  --fault 'churn:weibull:up=60:down=30:shape=0.6@60+120' \
  > "$chu/fault-churn-report.txt"
grep -q 'fault:' "$chu/fault-churn-report.txt"

echo "CI OK"
