(* Offline causal-trace analyzer: reconstruct span trees from one or
   more trace JSONL files (written by `pdht simulate --trace-out`, or
   one per node by the process driver), verify causal completeness, and
   attribute messages and virtual latency to subsystems.

   Multi-node traces: each emitting process allocates span ids from its
   own sequential counter, so ids are only unique per node.  Lines may
   carry a "node_id" member (see Pdht_obs.Export); spans are keyed by
   (node_id, span) — with node_id defaulting to -1 for single-process
   traces — and remapped into one global id space before analysis, so
   merged per-node files never alias each other's trees.

   Checks:
     - every span-carrying event with a parent can reach a root
       (orphans = 0 on an unfiltered trace);
     - per tree, the message-bearing leaves sum exactly to the root's
       message total (the simulator's per-query accounting identity).

   Attribution buckets mirror the paper's cost decomposition:
     index-routing   DHT routing + replica floods (cSIndx's world)
     unstructured    broadcast waves (cSUnstr's world)
     update          gossip spread (cUpd's world)
     repair          maintenance / anti-entropy passes
     net-retry       network attempts beyond the first, drops, timeouts

   Latency is attributed by time deltas inside each tree: events are
   sorted by timestamp and each gap is charged to the subsystem of the
   event that closes it (a completed first-attempt network event counts
   toward its parent's subsystem; retries, drops and timeouts toward
   net-retry).  Exit 1 under --check when causal completeness or the
   leaf-sum identity fails. *)

module Event = Pdht_obs.Event
module Json = Pdht_obs.Json

type tree = {
  root : Event.t;
  mutable events : Event.t list; (* root included *)
}

type totals = {
  mutable index_routing : float;
  mutable unstructured : float;
  mutable update : float;
  mutable repair : float;
  mutable net_retry : float;
  mutable other : float;
}

let zero_totals () =
  { index_routing = 0.; unstructured = 0.; update = 0.; repair = 0.; net_retry = 0.;
    other = 0. }

let bucket_add t bucket v =
  match bucket with
  | `Index -> t.index_routing <- t.index_routing +. v
  | `Unstructured -> t.unstructured <- t.unstructured +. v
  | `Update -> t.update <- t.update +. v
  | `Repair -> t.repair <- t.repair +. v
  | `Net -> t.net_retry <- t.net_retry +. v
  | `Other -> t.other <- t.other +. v

let totals_sum t =
  t.index_routing +. t.unstructured +. t.update +. t.repair +. t.net_retry +. t.other

(* Message-bearing leaf categories: the only nodes whose [messages]
   field enters the leaf-sum identity.  Interior nodes (Query, Gossip
   roots, Index_insert) carry aggregates of their own leaves. *)
let is_message_leaf (e : Event.t) =
  e.Event.parent >= 0
  &&
  match e.Event.category with
  | Event.Dht_lookup | Event.Replica_flood | Event.Broadcast | Event.Gossip -> true
  | _ -> false

let message_bucket (e : Event.t) =
  match e.Event.category with
  | Event.Dht_lookup | Event.Replica_flood -> `Index
  | Event.Broadcast -> `Unstructured
  | Event.Gossip -> `Update
  | Event.Maintenance -> `Repair
  | _ -> `Other

(* Latency bucket; [parent_category] resolves a delivered first-attempt
   network event to the subsystem doing the waiting. *)
let latency_bucket ~parent_category (e : Event.t) =
  match e.Event.category with
  | Event.Net ->
      if
        e.Event.outcome = Event.Dropped
        || e.Event.detail = "timeout"
        || e.Event.hops > 0 (* attempt number: > 0 means a retry *)
      then `Net
      else (
        match parent_category e with
        | Some (Event.Dht_lookup | Event.Replica_flood | Event.Index_insert) -> `Index
        | Some Event.Broadcast -> `Unstructured
        | Some Event.Gossip -> `Update
        | Some (Event.Maintenance | Event.Fault) -> `Repair
        | _ -> `Net)
  | Event.Dht_lookup | Event.Replica_flood | Event.Index_insert | Event.Ttl_reset ->
      `Index
  | Event.Broadcast -> `Unstructured
  | Event.Gossip -> `Update
  | Event.Maintenance | Event.Fault -> `Repair
  | Event.Query | Event.Engine | Event.Churn -> `Other

(* (node_id, per-node span id) -> global span id, allocated on first
   sight in either a "span" or a "parent" position so parent links
   resolve regardless of line order across files. *)
let make_span_remap () =
  let table = Hashtbl.create 1024 in
  let next = ref 0 in
  fun ~node span ->
    if span < 0 then span
    else
      match Hashtbl.find_opt table (node, span) with
      | Some g -> g
      | None ->
          let g = !next in
          incr next;
          Hashtbl.add table (node, span) g;
          g

let read_events ~remap path =
  let ic = open_in path in
  let events = ref [] in
  let bad = ref None in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if trimmed <> "" then
         match Json.of_string trimmed with
         | Error msg ->
             if !bad = None then bad := Some (!lineno, "bad JSON: " ^ msg)
         | Ok json -> (
             (* Only event lines ("cat" member) are trace records; skip
                metrics / timeline lines so mixed files still analyze. *)
             match Json.member "cat" json with
             | None -> ()
             | Some _ -> (
                 match Event.of_json json with
                 | Ok e ->
                     let node =
                       match
                         Option.bind (Json.member "node_id" json) Json.to_int_opt
                       with
                       | Some k -> k
                       | None -> -1
                     in
                     let e =
                       { e with
                         Event.span = remap ~node e.Event.span;
                         parent = remap ~node e.Event.parent }
                     in
                     events := e :: !events
                 | Error msg ->
                     if !bad = None then bad := Some (!lineno, msg)))
     done
   with End_of_file -> ());
  close_in ic;
  match !bad with
  | Some (n, msg) -> Error (Printf.sprintf "%s:%d: %s" path n msg)
  | None -> Ok (List.rev !events)

let () =
  let check = ref false in
  let top = ref 5 in
  let paths = ref [] in
  let usage = "usage: trace_stats [--check] [--top N] TRACE.jsonl [MORE.jsonl ...]" in
  let rec parse = function
    | [] -> ()
    | "--check" :: rest ->
        check := true;
        parse rest
    | "--top" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 0 -> top := v
        | _ ->
            prerr_endline "--top expects a non-negative integer";
            exit 2);
        parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        paths := arg :: !paths;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unexpected argument %S\n%s\n" arg usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with
    | [] ->
        prerr_endline usage;
        exit 2
    | paths -> paths
  in
  let remap = make_span_remap () in
  let events =
    List.concat_map
      (fun path ->
        match read_events ~remap path with
        | Ok evs -> evs
        | Error msg ->
            prerr_endline msg;
            exit 1
        | exception Sys_error msg ->
            prerr_endline msg;
            exit 1)
      paths
  in
  let path = String.concat ", " paths in
  let spanned = List.filter (fun (e : Event.t) -> e.Event.span >= 0) events in
  (* Span id -> event.  Ids are unique by construction (sequential
     allocator); a duplicate would be a codec or producer bug. *)
  let by_span = Hashtbl.create (List.length spanned) in
  let duplicates = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      if Hashtbl.mem by_span e.Event.span then incr duplicates
      else Hashtbl.add by_span e.Event.span e)
    spanned;
  let parent_category (e : Event.t) =
    if e.Event.parent < 0 then None
    else
      Option.map
        (fun (p : Event.t) -> p.Event.category)
        (Hashtbl.find_opt by_span e.Event.parent)
  in
  (* Climb to each event's root; orphans are events whose parent chain
     dangles (possible only on filtered traces). *)
  let orphans = ref 0 in
  let root_of (e : Event.t) =
    let rec climb (e : Event.t) depth =
      if depth > 1_000_000 then None (* cycle guard; cannot happen with a
                                        monotone allocator *)
      else if e.Event.parent < 0 then Some e
      else
        match Hashtbl.find_opt by_span e.Event.parent with
        | Some p -> climb p (depth + 1)
        | None -> None
    in
    climb e 0
  in
  let trees = Hashtbl.create 256 in
  (* root span id -> tree *)
  List.iter
    (fun (e : Event.t) ->
      match root_of e with
      | None -> incr orphans
      | Some root -> (
          match Hashtbl.find_opt trees root.Event.span with
          | Some t -> if e.Event.span <> root.Event.span then t.events <- e :: t.events
          | None -> Hashtbl.add trees root.Event.span { root; events = [ e ] }))
    spanned;
  (* Normalize: make sure each tree's event list contains the root
     exactly once (the root registered itself when first visited). *)
  Hashtbl.iter
    (fun _ t ->
      if not (List.memq t.root t.events) then t.events <- t.root :: t.events)
    trees;
  let tree_list = Hashtbl.fold (fun _ t acc -> t :: acc) trees [] in
  let query_trees =
    List.filter (fun t -> t.root.Event.category = Event.Query) tree_list
  in
  let update_trees =
    List.filter (fun t -> t.root.Event.category = Event.Gossip) tree_list
  in
  (* Leaf-sum identity per operation tree. *)
  let mismatches = ref 0 in
  let check_tree t =
    let leaf_sum =
      List.fold_left
        (fun acc e -> if is_message_leaf e then acc + e.Event.messages else acc)
        0 t.events
    in
    if leaf_sum <> t.root.Event.messages then begin
      incr mismatches;
      if !mismatches <= 5 then
        Printf.printf
          "MISMATCH span %d (%s t=%.3f): leaves sum to %d, root says %d\n"
          t.root.Event.span
          (Event.category_label t.root.Event.category)
          t.root.Event.time leaf_sum t.root.Event.messages
    end
  in
  List.iter check_tree query_trees;
  List.iter check_tree update_trees;
  (* Message attribution (leaves only, plus repair passes). *)
  let msg_totals = zero_totals () in
  List.iter
    (fun (e : Event.t) ->
      if is_message_leaf e then
        bucket_add msg_totals (message_bucket e) (float_of_int e.Event.messages)
      else if e.Event.category = Event.Maintenance && e.Event.parent >= 0 then
        bucket_add msg_totals `Repair (float_of_int e.Event.messages))
    spanned;
  let root_messages =
    List.fold_left
      (fun acc t -> acc + t.root.Event.messages)
      0 (query_trees @ update_trees)
  in
  (* Latency attribution: per tree, charge each inter-event gap to the
     subsystem of the event that closes it.  Root timestamps are the
     operation start, so the earliest gap is measured from the root. *)
  let lat_totals = zero_totals () in
  let tree_duration t =
    let sorted =
      List.sort
        (fun (a : Event.t) (b : Event.t) -> compare a.Event.time b.Event.time)
        (List.filter (fun (e : Event.t) -> e.Event.span <> t.root.Event.span) t.events)
    in
    let last =
      List.fold_left
        (fun prev (e : Event.t) ->
          let d = e.Event.time -. prev in
          if d > 0. then bucket_add lat_totals (latency_bucket ~parent_category e) d;
          Float.max prev e.Event.time)
        t.root.Event.time sorted
    in
    last -. t.root.Event.time
  in
  let with_duration = List.map (fun t -> (tree_duration t, t)) query_trees in
  let _update_durations = List.map tree_duration update_trees in
  (* Critical path of a tree: walk up from its latest event. *)
  let critical_path t =
    match
      List.fold_left
        (fun acc (e : Event.t) ->
          match acc with
          | None -> Some e
          | Some (m : Event.t) -> if e.Event.time > m.Event.time then Some e else acc)
        None t.events
    with
    | None -> ""
    | Some last ->
        let rec climb (e : Event.t) acc =
          let acc = Event.category_label e.Event.category :: acc in
          if e.Event.parent < 0 then acc
          else
            match Hashtbl.find_opt by_span e.Event.parent with
            | Some p -> climb p acc
            | None -> acc
        in
        String.concat " > " (climb last [])
  in
  (* ---- report ---- *)
  Printf.printf "%s: %d events, %d span-correlated\n" path (List.length events)
    (List.length spanned);
  Printf.printf
    "trees: %d queries, %d updates, %d other roots; orphans: %d; duplicate span ids: \
     %d\n"
    (List.length query_trees) (List.length update_trees)
    (List.length tree_list - List.length query_trees - List.length update_trees)
    !orphans !duplicates;
  Printf.printf "leaf-sum identity: %d mismatches over %d operation trees\n" !mismatches
    (List.length query_trees + List.length update_trees);
  Printf.printf "\nmessages by subsystem (operation trees sum to %d):\n" root_messages;
  let msum = Float.max 1. (totals_sum msg_totals) in
  let row label v = Printf.printf "  %-14s %10.0f  (%5.1f%%)\n" label v (100. *. v /. msum) in
  row "index-routing" msg_totals.index_routing;
  row "unstructured" msg_totals.unstructured;
  row "update" msg_totals.update;
  row "repair" msg_totals.repair;
  Printf.printf "\nvirtual latency by subsystem [s]:\n";
  let lrow label v = Printf.printf "  %-14s %10.3f\n" label v in
  lrow "index-routing" lat_totals.index_routing;
  lrow "unstructured" lat_totals.unstructured;
  lrow "update" lat_totals.update;
  lrow "repair" lat_totals.repair;
  lrow "net-retry" lat_totals.net_retry;
  if lat_totals.other > 0. then lrow "other" lat_totals.other;
  if !top > 0 && with_duration <> [] then begin
    Printf.printf "\ntop %d slow queries:\n" !top;
    let sorted =
      List.sort (fun (a, _) (b, _) -> compare b a) with_duration
    in
    List.iteri
      (fun i (d, t) ->
        if i < !top then
          Printf.printf "  t=%8.2f span=%-6d key=%-5d msgs=%-5d %8.4fs  %s\n"
            t.root.Event.time t.root.Event.span t.root.Event.key_index
            t.root.Event.messages d (critical_path t))
      sorted
  end;
  if !check then begin
    let failed = ref false in
    if query_trees = [] && update_trees = [] then begin
      prerr_endline "CHECK FAILED: no span-rooted operation trees in the trace";
      failed := true
    end;
    if !orphans > 0 then begin
      Printf.eprintf "CHECK FAILED: %d orphan span events\n" !orphans;
      failed := true
    end;
    if !duplicates > 0 then begin
      Printf.eprintf "CHECK FAILED: %d duplicate span ids\n" !duplicates;
      failed := true
    end;
    if !mismatches > 0 then begin
      Printf.eprintf "CHECK FAILED: %d leaf-sum mismatches\n" !mismatches;
      failed := true
    end;
    if !failed then exit 1;
    Printf.printf "\ncausal completeness: OK (every span reaches a root, leaf sums \
                   match)\n"
  end
