(* Flash crowd: the paper's "changing query frequencies and
   distributions" claim (Sections 5.2 and 6), live.

   A news system hums along with a stable Zipf workload.  At t = 1200 s
   breaking news inverts popularity: the cold half of the key space
   becomes the hot half (Popularity_shift.swap_halves).  The partial
   index must evict yesterday's news and index today's — watch the hit
   rate dip and recover, with no coordination whatsoever.

   Run with: dune exec examples/flash_crowd.exe *)

module Scenario = Pdht_work.Scenario
module System = Pdht_core.System
module Strategy = Pdht_core.Strategy
module Experiment = Pdht_core.Experiment

let bar width fraction =
  let n = int_of_float (fraction *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

let () =
  let scenario =
    {
      Scenario.news_default with
      Scenario.num_peers = 800;
      keys = 1_600;
      f_qry = 1. /. 30.;
      duration = 2_400.;
      shift = Scenario.Swap_halves_at 1_200.;
      seed = 99;
    }
  in
  let options = System.Options.make ~repl:20 ~stor:100 ~sample_every:60. () in
  Printf.printf "scenario: %d peers, %d keys, Zipf(1.2) queries at 1/30 per peer per second\n"
    scenario.Scenario.num_peers scenario.Scenario.keys;
  Printf.printf "breaking news at t = 1200 s swaps the hot and cold key-space halves\n\n";
  let result = Experiment.adaptivity ~options ~scenario () in
  Printf.printf "%-7s %-10s %-13s hit rate\n" "t [s]" "hit rate" "indexed keys";
  List.iter
    (fun (s : System.sample) ->
      let marker = if s.System.time = 1_200. then "  << popularity shift" else "" in
      Printf.printf "%6.0f  %8.3f  %12d  |%s%s\n" s.System.time s.System.hit_rate
        s.System.indexed_keys (bar 40 s.System.hit_rate) marker)
    result.Experiment.series;
  Printf.printf "\nsteady hit rate before the shift : %.3f\n" result.Experiment.before_hit_rate;
  Printf.printf "worst bucket after the shift     : %.3f\n" result.Experiment.dip_hit_rate;
  Printf.printf "steady hit rate at the end       : %.3f\n" result.Experiment.after_hit_rate;
  (match result.Experiment.recovery_seconds with
  | Some s -> Printf.printf "recovered to 80%% of the old rate within %.0f s\n" s
  | None -> Printf.printf "did not recover within the run\n");
  Printf.printf
    "\nNo peer was told the distribution changed: misses on the new hot keys\n\
     re-inserted them, and the old hot keys timed out after keyTtl seconds.\n"
