module Rng = Pdht_util.Rng
module Bitkey = Pdht_util.Bitkey
module Metrics = Pdht_sim.Metrics
module Obs = Pdht_obs.Context
module Registry = Pdht_obs.Registry
module Histogram = Pdht_obs.Histogram
module Tracer = Pdht_obs.Tracer
module Event = Pdht_obs.Event
module Span = Pdht_obs.Span
module Topology = Pdht_overlay.Topology
module Replication = Pdht_overlay.Replication
module Unstructured_search = Pdht_overlay.Unstructured_search
module Dht = Pdht_dht.Dht
module Storage = Pdht_dht.Storage
module Replica_net = Pdht_gossip.Replica_net
module Rumor = Pdht_gossip.Rumor
module Net_hook = Pdht_net.Hook
module Query_plan = Pdht_proto.Query_plan
module Update_plan = Pdht_proto.Update_plan
module Selection = Pdht_proto.Selection

(* TTL standing in for "never expires" in the baseline index; large but
   far from Float.max_float so [now +. ttl] stays finite. *)
let forever = 1e15

(* Index-store access, keyed by workload key index rather than raw
   bitkey so a remote implementation can rebuild keys from the key
   count alone.  The default (built by {!create} when no [?store] is
   passed) reads and writes the in-process [Storage.t] array; the
   multi-process driver substitutes closures that cross the wire to
   whichever worker owns [peer]'s shard.  [repair_put] is the
   anti-entropy copy — same write, but carrying a remaining (not
   renewed) TTL, kept separate so drivers can account it apart. *)
type store_ops = {
  get_and_refresh : peer:int -> key_index:int -> now:float -> ttl:float -> int option;
  put : peer:int -> key_index:int -> value:int -> now:float -> ttl:float -> unit;
  repair_put : peer:int -> key_index:int -> value:int -> now:float -> ttl:float -> unit;
  mem : peer:int -> key_index:int -> now:float -> bool;
  get : peer:int -> key_index:int -> now:float -> int option;
  expiry : peer:int -> key_index:int -> float option;
  clear : peer:int -> int;
  live_count : peer:int -> now:float -> int;
}

(* Pre-resolved observability instruments: hot paths must not pay a
   registry hash lookup per query. *)
type instruments = {
  backend_label : string;
  hops_hist : Histogram.t;          (* dht.hops.<backend> *)
  lookup_msgs_hist : Histogram.t;   (* dht.lookup_messages.<backend> *)
  query_cost_hist : Histogram.t;    (* query.cost *)
  index_cost_hist : Histogram.t;    (* index.search_cost *)
  broadcast_hist : Histogram.t;     (* broadcast.reach *)
  gossip_rounds_hist : Histogram.t; (* gossip.rounds *)
  c_lookup_failed : Registry.counter;
  c_index_hit : Registry.counter;
  c_index_miss : Registry.counter;
  c_ttl_reset : Registry.counter;
  c_index_insert : Registry.counter;
  c_broadcast : Registry.counter;
  c_broadcast_found : Registry.counter;
  c_gossip_spreads : Registry.counter;
}

type t = {
  rng : Rng.t;
  config : Config.t;
  bitkeys : Bitkey.t array; (* key_index -> DHT key *)
  dht : Dht.t;
  topology : Topology.t;
  content : Replication.t;
  unstructured : Unstructured_search.t;
  stores : int Storage.t array; (* per active member; value = provider peer *)
  store : store_ops; (* how the index stores are reached (local/remote) *)
  replica_nets : (int, Replica_net.t) Hashtbl.t; (* key_index -> subnet *)
  metrics : Metrics.t;
  obs : Obs.t;
  ins : instruments;
  (* Delivery hooks, if any.  Built once (no per-query allocation) and
     passed as the [?deliver] hooks: [net_rpc] per DHT forward hop and
     entry contact, [net_cast] per broadcast message.  Two sources:
     the simulator's network model ([net] set, hooks derived from it at
     creation) or a real transport installed by {!set_transport}
     ([net] stays [None]; each hook materialises one wire frame). *)
  net : Net_hook.t option;
  mutable net_rpc : (span:int option -> src:int -> dst:int -> bool) option;
  mutable net_cast : (span:int option -> src:int -> dst:int -> bool) option;
  mutable online : int -> bool;
  mutable key_ttl : float;
  (* Selection-policy hook.  [None] (the default, and the paper's
     behaviour) admits every resolved key and leases [key_ttl] — the
     exact pre-policy code path, so TTL-policy runs are bit-identical
     to builds that predate the hook. *)
  mutable policy : policy option;
}

and policy = Selection.policy = {
  admit : now:float -> key_index:int -> bool;
  ttl_for : now:float -> key_index:int -> float;
}

let key_of_index t i =
  if i < 0 || i >= t.config.Config.keys then invalid_arg "Pdht.key_of_index: out of range";
  t.bitkeys.(i)

let config t = t.config
let metrics t = t.metrics
let obs t = t.obs
let set_online t f = t.online <- f
let active_members t = t.config.Config.active_members
let key_ttl t = t.key_ttl

let set_key_ttl t ttl =
  if not (ttl > 0.) then invalid_arg "Pdht.set_key_ttl: ttl must be positive";
  t.key_ttl <- ttl

let set_policy t policy = t.policy <- Some policy
let clear_policy t = t.policy <- None

(* Expiration lease for an insertion or query-hit refresh of a key. *)
let lease t ~now ~key_index =
  Selection.lease t.policy ~default_ttl:t.key_ttl ~now ~key_index

let set_transport t ~rpc ~cast =
  if t.net <> None then
    invalid_arg "Pdht.set_transport: incompatible with the simulated network model";
  t.net_rpc <- Some rpc;
  t.net_cast <- Some cast

let replica_net t key_index =
  match Hashtbl.find_opt t.replica_nets key_index with
  | Some net -> net
  | None ->
      let group =
        Dht.replica_group t.dht ~repl:t.config.Config.repl t.bitkeys.(key_index)
      in
      let net = Replica_net.build t.rng ~replicas:group ~chords:t.config.Config.replica_chords in
      Hashtbl.replace t.replica_nets key_index net;
      net

let content_replicas t ~key_index =
  Replication.replicas t.content ~item:key_index

let dht t = t.dht
let online_fn t p = t.online p

let initial_ttl config =
  match config.Config.strategy with
  | Strategy.Partial_index { key_ttl } ->
      if not (key_ttl > 0.) then invalid_arg "Pdht.create: key_ttl must be positive";
      key_ttl
  | Strategy.Index_all | Strategy.No_index -> forever

let make_instruments (obs : Obs.t) ~backend =
  let r = obs.Obs.registry in
  let backend_label = Dht.backend_label backend in
  {
    backend_label;
    hops_hist = Registry.histogram r ("dht.hops." ^ backend_label);
    lookup_msgs_hist = Registry.histogram r ("dht.lookup_messages." ^ backend_label);
    query_cost_hist = Registry.histogram r "query.cost";
    index_cost_hist = Registry.histogram r "index.search_cost";
    broadcast_hist = Registry.histogram r "broadcast.reach";
    gossip_rounds_hist = Registry.histogram r "gossip.rounds";
    c_lookup_failed = Registry.counter r "dht.lookup_failures";
    c_index_hit = Registry.counter r "index.hit";
    c_index_miss = Registry.counter r "index.miss";
    c_ttl_reset = Registry.counter r "index.ttl_reset";
    c_index_insert = Registry.counter r "index.insert";
    c_broadcast = Registry.counter r "broadcast.searches";
    c_broadcast_found = Registry.counter r "broadcast.found";
    c_gossip_spreads = Registry.counter r "gossip.spreads";
  }

(* Default store implementation: the in-process [Storage.t] array the
   simulator owns.  Built over the arrays directly (not [t]) so it can
   be assembled before the record. *)
let local_store_ops ~stores ~(bitkeys : Bitkey.t array) =
  {
    get_and_refresh =
      (fun ~peer ~key_index ~now ~ttl ->
        Storage.get_and_refresh stores.(peer) ~key:bitkeys.(key_index) ~now ~ttl);
    put =
      (fun ~peer ~key_index ~value ~now ~ttl ->
        Storage.put stores.(peer) ~key:bitkeys.(key_index) ~value ~now ~ttl);
    repair_put =
      (fun ~peer ~key_index ~value ~now ~ttl ->
        Storage.put stores.(peer) ~key:bitkeys.(key_index) ~value ~now ~ttl);
    mem = (fun ~peer ~key_index ~now -> Storage.mem stores.(peer) ~key:bitkeys.(key_index) ~now);
    get = (fun ~peer ~key_index ~now -> Storage.get stores.(peer) ~key:bitkeys.(key_index) ~now);
    expiry = (fun ~peer ~key_index -> Storage.expiry stores.(peer) ~key:bitkeys.(key_index));
    clear = (fun ~peer -> Storage.clear stores.(peer));
    live_count = (fun ~peer ~now -> Storage.live_count stores.(peer) ~now);
  }

let create ?obs ?net ?store rng config =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let keys = config.Config.keys in
  let bitkeys =
    Array.init keys (fun i ->
        Pdht_util.Hashing.hash_to_key (Pdht_util.Hashing.combine [ "key"; string_of_int i ]))
  in
  let dht =
    Dht.create rng ~backend:config.Config.backend ~members:config.Config.active_members
      ~leaf_size:config.Config.repl ()
  in
  let topology =
    Topology.random_regularish rng ~peers:config.Config.num_peers
      ~degree:config.Config.topology_degree
  in
  let content = Replication.create ~peers:config.Config.num_peers in
  for key_index = 0 to keys - 1 do
    Replication.place content rng ~item:key_index ~repl:config.Config.repl
  done;
  let unstructured =
    Unstructured_search.create ~topology ~replication:content ~strategy:config.Config.search
  in
  let stores =
    Array.init config.Config.active_members (fun _ ->
        Storage.create ~eviction:config.Config.eviction ~capacity:config.Config.stor ())
  in
  let store =
    match store with Some ops -> ops | None -> local_store_ops ~stores ~bitkeys
  in
  let t =
    {
      rng;
      config;
      bitkeys;
      dht;
      topology;
      content;
      unstructured;
      stores;
      store;
      replica_nets = Hashtbl.create (min keys 4096);
      metrics = Metrics.create ();
      obs;
      ins = make_instruments obs ~backend:config.Config.backend;
      net;
      net_rpc =
        (match net with
        | None -> None
        | Some h -> Some (fun ~span ~src ~dst -> Net_hook.rpc ?span h ~src ~dst));
      net_cast =
        (match net with
        | None -> None
        | Some h -> Some (fun ~span ~src ~dst -> Net_hook.cast ?span h ~src ~dst));
      online = (fun _ -> true);
      key_ttl = initial_ttl config;
      policy = None;
    }
  in
  (* Tee per-category message counts into the registry so exported
     counters always agree with [Metrics.total]. *)
  Metrics.attach_registry t.metrics obs.Obs.registry;
  (* The index-everything baseline starts with the full index in place:
     every key on every member of its replica group. *)
  (match config.Config.strategy with
  | Strategy.Index_all ->
      for key_index = 0 to keys - 1 do
        (* Materialise the replica subnetwork up front: the baseline
           gossips updates and anti-entropy over it from the start. *)
        let net = replica_net t key_index in
        let group = Replica_net.replicas net in
        let provider =
          match content_replicas t ~key_index with
          | [||] -> 0
          | reps -> reps.(0)
        in
        Array.iter
          (fun member ->
            t.store.put ~peer:member ~key_index ~value:provider ~now:0. ~ttl:forever)
          group
      done
  | Strategy.No_index | Strategy.Partial_index _ -> ());
  t

type answer_source = From_index | From_broadcast | Not_found

type query_result = {
  source : answer_source;
  provider : int option;
  index_messages : int;
  replica_flood_messages : int;
  broadcast_messages : int;
  insert_messages : int;
}

let total_messages r =
  r.index_messages + r.replica_flood_messages + r.broadcast_messages + r.insert_messages

let empty_result = {
  source = Not_found;
  provider = None;
  index_messages = 0;
  replica_flood_messages = 0;
  broadcast_messages = 0;
  insert_messages = 0;
}

(* Causal-span plumbing for the per-operation event tree.  Span ids are
   plain ints (-1 = none): [child_id] allocates a fresh child of
   [parent] only when the enclosing operation was sampled, so untraced
   operations pay a single comparison.  [child_time] is the timestamp
   child events carry: under the network model the operation's virtual
   clock has advanced past the engine's [now] by the time the step
   completes. *)
let child_id t ~parent =
  if parent < 0 then -1 else Span.id (Tracer.child_span t.obs.Obs.tracer ~parent)

let opt_span span = if span < 0 then None else Some span

let child_time t ~now =
  match t.net with Some h -> Net_hook.now h | None -> now

(* Pick a DHT entry point for a peer: itself when it is an online
   member, otherwise a random online member it knows (one contact
   message).  Returns the entry member, or [-1] when none is reachable;
   unboxed so the per-query path builds no option/tuple.  The contact
   cost is recoverable as [entry_contact]: zero exactly when the peer is
   its own entry (a drawn candidate is always online while the peer in
   that branch is offline or not a member, so they never collide). *)
let entry_point t peer =
  let members = t.config.Config.active_members in
  if peer < members && t.online peer then peer
  else begin
    let attempts = min 32 (2 * members) in
    let rec pick i =
      if i = attempts then -1
      else
        let cand = Rng.int t.rng members in
        if t.online cand then cand else pick (i + 1)
    in
    pick 0
  end

let entry_contact ~peer entry = if entry = peer then 0 else 1

(* Under the network model the contact message to a remote entry point
   is itself an RPC: when its retry budget fails, the peer cannot reach
   the index at all this query and the caller sees [-1], degrading
   exactly like "no online member found".  The contact is a traced step
   of its own — a [Dht_lookup] child with [detail = "contact"] whose
   message count (1, or 0 on failure) matches the [entry_contact]
   charge; the RPC's per-attempt events parent under it. *)
let reach_entry t ~now ~parent ~peer entry =
  if entry < 0 || entry = peer then entry
  else begin
    let span = child_id t ~parent in
    let ok =
      match t.net_rpc with
      | None -> true
      | Some rpc -> rpc ~span:(opt_span span) ~src:peer ~dst:entry
    in
    let tracer = t.obs.Obs.tracer in
    if span >= 0 && Tracer.active tracer Event.Dht_lookup then
      Tracer.emit tracer
        (Event.make ~time:(child_time t ~now) ~peer
           ~messages:(if ok then 1 else 0)
           ~outcome:(if ok then Event.Found else Event.Not_found)
           ~detail:"contact" ~span ~parent Event.Dht_lookup);
    if ok then entry else -1
  end

(* Per-backend lookup telemetry: hop/message histograms feed the
   measured-vs-model cSIndx comparison in {!System.report}.  [span] is
   the lookup's own pre-allocated span id (the routing RPCs already
   parented under it), [parent] its enclosing operation node. *)
let record_lookup t ~now ~peer ~key_index ~span ~parent lookup =
  Histogram.record_int t.ins.hops_hist lookup.Dht.hops;
  Histogram.record_int t.ins.lookup_msgs_hist lookup.Dht.messages;
  (match lookup.Dht.responsible with
  | None -> Registry.incr t.ins.c_lookup_failed 1
  | Some _ -> ());
  let tracer = t.obs.Obs.tracer in
  if span >= 0 && Tracer.active tracer Event.Dht_lookup then
    Tracer.emit tracer
      (Event.make ~time:now ~peer ~key_index ~hops:lookup.Dht.hops
         ~messages:lookup.Dht.messages
         ~outcome:
           (if lookup.Dht.responsible = None then Event.Not_found else Event.Found)
         ~detail:t.ins.backend_label ~span ~parent Event.Dht_lookup)

let record_ttl_reset t ~now ~peer ~key_index ~parent =
  Registry.incr t.ins.c_ttl_reset 1;
  let tracer = t.obs.Obs.tracer in
  if parent >= 0 && Tracer.active tracer Event.Ttl_reset then
    Tracer.emit tracer
      (Event.make ~time:now ~peer ~key_index ~span:(child_id t ~parent) ~parent
         Event.Ttl_reset)

(* Search the index for a key: DHT routing to a responsible peer, local
   cache check there, replica-subnetwork flood on a local miss
   (Section 5.1 / Eq. 16).  TTL refresh on hits is the selection
   algorithm's "reset on query".  Returns
   (provider option, index_messages, flood_messages). *)
let index_search t ~now ~entry ~key_index ~parent =
  let key = t.bitkeys.(key_index) in
  let lookup_span = child_id t ~parent in
  let lookup =
    Dht.lookup ?span:(opt_span lookup_span) ?deliver:t.net_rpc t.dht t.rng
      ~online:t.online ~source:entry ~key
  in
  record_lookup t ~now:(child_time t ~now) ~peer:entry ~key_index ~span:lookup_span
    ~parent lookup;
  let index_messages = lookup.Dht.messages in
  let result =
    match lookup.Dht.responsible with
    | None -> (None, index_messages, 0)
    | Some responsible -> (
        match
          t.store.get_and_refresh ~peer:responsible ~key_index ~now
            ~ttl:(lease t ~now ~key_index)
        with
        | Some provider ->
            record_ttl_reset t ~now:(child_time t ~now) ~peer:responsible ~key_index
              ~parent;
            (Some provider, index_messages, 0)
        | None ->
            (* Local miss: ask the other replicas.  Plain loop with an
               int sentinel — an [option ref] compared with [=] would
               cost a polymorphic-equality call per member. *)
            let net = replica_net t key_index in
            let flood = Replica_net.flood net ~online:t.online ~from_peer:responsible in
            let flood_messages = flood.Replica_net.messages in
            let tracer = t.obs.Obs.tracer in
            if parent >= 0 && Tracer.active tracer Event.Replica_flood then
              Tracer.emit tracer
                (Event.make ~time:(child_time t ~now) ~peer:responsible ~key_index
                   ~messages:flood_messages ~span:(child_id t ~parent) ~parent
                   Event.Replica_flood);
            let members = Replica_net.replicas net in
            let found = ref (-1) in
            let i = ref 0 in
            let len = Array.length members in
            while !found < 0 && !i < len do
              let member = members.(!i) in
              incr i;
              if member <> responsible && t.online member then
                match
                  t.store.get_and_refresh ~peer:member ~key_index ~now
                    ~ttl:(lease t ~now ~key_index)
                with
                | Some provider ->
                    record_ttl_reset t ~now:(child_time t ~now) ~peer:member ~key_index
                      ~parent;
                    found := provider
                | None -> ()
            done;
            ((if !found < 0 then None else Some !found), index_messages, flood_messages))
  in
  let provider, index_messages, flood_messages = result in
  Histogram.record_int t.ins.index_cost_hist (index_messages + flood_messages);
  Registry.incr
    (match provider with None -> t.ins.c_index_miss | Some _ -> t.ins.c_index_hit)
    1;
  result

(* Install a freshly resolved key on every online member of its replica
   group: one DHT routing to reach the group, then dissemination inside
   the subnetwork (counted as flood traffic).  In the trace the insert
   is an interior [Index_insert] node under [parent]: its message count
   is the sum of its own [Dht_lookup] / [Replica_flood] leaves, so
   per-tree leaf sums stay exact. *)
let index_insert_admitted t ~now ~entry ~key_index ~provider ~parent =
  let key = t.bitkeys.(key_index) in
  let insert_span = child_id t ~parent in
  let lookup_span = child_id t ~parent:insert_span in
  let lookup =
    Dht.lookup ?span:(opt_span lookup_span) ?deliver:t.net_rpc t.dht t.rng
      ~online:t.online ~source:entry ~key
  in
  record_lookup t ~now:(child_time t ~now) ~peer:entry ~key_index ~span:lookup_span
    ~parent:insert_span lookup;
  Registry.incr t.ins.c_index_insert 1;
  let tracer = t.obs.Obs.tracer in
  let messages =
    match lookup.Dht.responsible with
    | None -> lookup.Dht.messages
    | Some responsible ->
        let net = replica_net t key_index in
        let flood = Replica_net.flood net ~online:t.online ~from_peer:responsible in
        if insert_span >= 0 && Tracer.active tracer Event.Replica_flood then
          Tracer.emit tracer
            (Event.make ~time:(child_time t ~now) ~peer:responsible ~key_index
               ~messages:flood.Replica_net.messages
               ~span:(child_id t ~parent:insert_span) ~parent:insert_span
               Event.Replica_flood);
        Array.iter
          (fun member ->
            if t.online member then
              t.store.put ~peer:member ~key_index ~value:provider ~now
                ~ttl:(lease t ~now ~key_index))
          (Replica_net.replicas net);
        lookup.Dht.messages + flood.Replica_net.messages
  in
  if insert_span >= 0 && Tracer.active tracer Event.Index_insert then
    Tracer.emit tracer
      (Event.make ~time:(child_time t ~now) ~peer:entry ~key_index ~messages
         ~span:insert_span ~parent Event.Index_insert);
  messages

let index_insert t ~now ~entry ~key_index ~provider ~parent =
  if not (Selection.admits t.policy ~now ~key_index) then
    (* The selection policy declines the key: no routing, no flood,
       no insertion.  The query's answer already came from the
       broadcast, so rejection costs nothing now and saves the whole
       insert (and its maintenance tail) for keys judged not worth
       indexing. *)
    0
  else index_insert_admitted t ~now ~entry ~key_index ~provider ~parent

let broadcast_search t ~now ~peer ~key_index ~parent =
  let bcast_span = child_id t ~parent in
  let outcome =
    Unstructured_search.search ?span:(opt_span bcast_span) ?deliver:t.net_cast
      t.unstructured t.rng ~online:t.online ~source:peer ~item:key_index
  in
  (* A broadcast advances in synchronous waves; its wall-clock cost is
     one per-hop latency per wave, not per message. *)
  (match t.net with
  | Some h -> Net_hook.advance_rounds h outcome.Unstructured_search.rounds
  | None -> ());
  let provider = outcome.Unstructured_search.provider in
  let messages = outcome.Unstructured_search.messages in
  Histogram.record_int t.ins.broadcast_hist messages;
  Registry.incr t.ins.c_broadcast 1;
  (match provider with
  | Some _ -> Registry.incr t.ins.c_broadcast_found 1
  | None -> ());
  let tracer = t.obs.Obs.tracer in
  if bcast_span >= 0 && Tracer.active tracer Event.Broadcast then
    Tracer.emit tracer
      (Event.make ~time:(child_time t ~now) ~peer ~key_index ~messages
         ~outcome:(if provider = None then Event.Not_found else Event.Found)
         ~span:bcast_span ~parent Event.Broadcast);
  (provider, messages)

let charge t result =
  Metrics.charge t.metrics Metrics.Query_index result.index_messages;
  Metrics.charge t.metrics Metrics.Replica_flood result.replica_flood_messages;
  Metrics.charge t.metrics Metrics.Query_unstructured result.broadcast_messages;
  Metrics.charge t.metrics Metrics.Index_insert result.insert_messages

let query t ~now ~peer ~key_index =
  if key_index < 0 || key_index >= t.config.Config.keys then
    invalid_arg "Pdht.query: key_index out of range";
  if not (t.online peer) then empty_result
  else begin
    (match t.net with Some h -> Net_hook.begin_op h ~now | None -> ());
    (* Root span for the query's causal tree, or -1 when this query is
       sampled out (or tracing is off): every traced step below parents
       under it, directly or through an interior node. *)
    let root =
      match Tracer.sample_root t.obs.Obs.tracer with
      | Some s -> Span.id s
      | None -> -1
    in
    (* Drive the pure {!Query_plan} machine: it decides the next step,
       this loop executes each step against the substrates (through the
       pluggable store / delivery hooks) and feeds the outcome back.
       Message accounting stays here — the machine is driver-agnostic
       and counts nothing. *)
    let strategy =
      match t.config.Config.strategy with
      | Strategy.No_index -> Query_plan.No_index
      | Strategy.Index_all -> Query_plan.Index_all
      | Strategy.Partial_index _ -> Query_plan.Partial
    in
    let entry = ref (-1) in
    let contact = ref 0 in
    let acc_index = ref 0 in
    let acc_flood = ref 0 in
    let acc_broadcast = ref 0 in
    let acc_insert = ref 0 in
    let rec drive plan action =
      match action with
      | Query_plan.Finish outcome -> outcome
      | Query_plan.Reach_entry ->
          let e = reach_entry t ~now ~parent:root ~peer (entry_point t peer) in
          if e < 0 then feed plan Query_plan.Entry_failed
          else begin
            entry := e;
            contact := entry_contact ~peer e;
            feed plan Query_plan.Entry_reached
          end
      | Query_plan.Search_index ->
          let provider, index_messages, flood_messages =
            index_search t ~now ~entry:!entry ~key_index ~parent:root
          in
          acc_index := index_messages + !contact;
          acc_flood := flood_messages;
          feed plan
            (match provider with
            | Some provider -> Query_plan.Index_hit { provider }
            | None -> Query_plan.Index_miss)
      | Query_plan.Search_broadcast ->
          let provider, messages = broadcast_search t ~now ~peer ~key_index ~parent:root in
          acc_broadcast := messages;
          feed plan
            (match provider with
            | Some provider -> Query_plan.Broadcast_found { provider }
            | None -> Query_plan.Broadcast_failed)
      | Query_plan.Insert_key { provider } ->
          acc_insert := index_insert t ~now ~entry:!entry ~key_index ~provider ~parent:root;
          feed plan Query_plan.Insert_done
    and feed plan event =
      let plan, action = Query_plan.step plan event in
      drive plan action
    in
    let outcome =
      let plan, action = Query_plan.start strategy in
      drive plan action
    in
    let result =
      {
        source =
          (match outcome.Query_plan.source with
          | Query_plan.From_index -> From_index
          | Query_plan.From_broadcast -> From_broadcast
          | Query_plan.Not_found -> Not_found);
        provider = outcome.Query_plan.provider;
        index_messages = !acc_index;
        replica_flood_messages = !acc_flood;
        broadcast_messages = !acc_broadcast;
        insert_messages = !acc_insert;
      }
    in
    charge t result;
    (match t.net with Some h -> Net_hook.record_latency h | None -> ());
    Histogram.record_int t.ins.query_cost_hist (total_messages result);
    let tracer = t.obs.Obs.tracer in
    if root >= 0 && Tracer.active tracer Event.Query then
      Tracer.emit tracer
        (Event.make ~time:now ~peer ~key_index ~messages:(total_messages result)
           ~outcome:
             (match result.source with
             | From_index -> Event.Hit
             | From_broadcast -> Event.Found
             | Not_found -> Event.Not_found)
           ~span:root Event.Query);
    result
  end

let update_key t rng ~now ~key_index =
  if key_index < 0 || key_index >= t.config.Config.keys then
    invalid_arg "Pdht.update_key: key_index out of range";
  match t.config.Config.strategy with
  | Strategy.No_index | Strategy.Partial_index _ -> 0
  | Strategy.Index_all -> (
      (* Route the new value to a responsible peer, then rumor-spread it
         through the replica subnetwork (Eq. 9's push/pull gossip).  In
         the trace an update is its own rooted tree: a [Gossip] root
         whose message count is the whole update's cost, with the
         contact, the routing lookup and a [detail = "spread"] gossip
         leaf as children. *)
      let issuer = Rng.int rng t.config.Config.num_peers in
      (match t.net with Some h -> Net_hook.begin_op h ~now | None -> ());
      let tracer = t.obs.Obs.tracer in
      let root =
        match Tracer.sample_root tracer with Some s -> Span.id s | None -> -1
      in
      let emit_root ~peer ~messages ~outcome =
        if root >= 0 && Tracer.active tracer Event.Gossip then
          Tracer.emit tracer
            (Event.make ~time:now ~peer ~key_index ~messages ~outcome ~span:root
               Event.Gossip)
      in
      (* Drive the pure {!Update_plan} machine; same driver/core split
         as [query].  [acc] collects the contact, routing and gossip
         traffic; entry failure is the one exit that never charges
         (nothing was sent). *)
      let entry = ref (-1) in
      let contact = ref 0 in
      let resp = ref (-1) in
      let acc = ref 0 in
      let rec drive plan action =
        match action with
        | Update_plan.Finish { delivered } ->
            if delivered then begin
              Metrics.charge t.metrics Metrics.Update_gossip !acc;
              emit_root ~peer:!resp ~messages:!acc ~outcome:Event.Found;
              !acc
            end
            else if !entry < 0 then begin
              emit_root ~peer:issuer ~messages:0 ~outcome:Event.Not_found;
              0
            end
            else begin
              Metrics.charge t.metrics Metrics.Update_gossip !acc;
              emit_root ~peer:issuer ~messages:!acc ~outcome:Event.Not_found;
              !acc
            end
        | Update_plan.Reach_entry ->
            let e = reach_entry t ~now ~parent:root ~peer:issuer (entry_point t issuer) in
            if e < 0 then feed plan Update_plan.Entry_failed
            else begin
              entry := e;
              contact := entry_contact ~peer:issuer e;
              feed plan Update_plan.Entry_reached
            end
        | Update_plan.Route ->
            let key = t.bitkeys.(key_index) in
            let lookup_span = child_id t ~parent:root in
            let lookup =
              Dht.lookup ?span:(opt_span lookup_span) ?deliver:t.net_rpc t.dht t.rng
                ~online:t.online ~source:!entry ~key
            in
            record_lookup t ~now:(child_time t ~now) ~peer:!entry ~key_index
              ~span:lookup_span ~parent:root lookup;
            acc := !contact + lookup.Dht.messages;
            (match lookup.Dht.responsible with
            | None -> feed plan Update_plan.Route_failed
            | Some responsible ->
                resp := responsible;
                feed plan Update_plan.Route_ok)
        | Update_plan.Spread ->
            let provider =
              match content_replicas t ~key_index with
              | [||] -> 0
              | reps -> reps.(0)
            in
            let net = replica_net t key_index in
            let spread =
              Rumor.spread rng ~net ~online:t.online ~origin_peer:!resp
                ~push_fanout:2 ~max_rounds:32
            in
            Array.iter
              (fun member ->
                if t.online member then
                  t.store.put ~peer:member ~key_index ~value:provider ~now ~ttl:forever)
              (Replica_net.replicas net);
            Histogram.record_int t.ins.gossip_rounds_hist spread.Rumor.rounds;
            Registry.incr t.ins.c_gossip_spreads 1;
            if root >= 0 && Tracer.active tracer Event.Gossip then
              Tracer.emit tracer
                (Event.make ~time:(child_time t ~now) ~peer:!resp ~key_index
                   ~hops:spread.Rumor.rounds ~messages:spread.Rumor.messages
                   ~detail:"spread" ~span:(child_id t ~parent:root) ~parent:root
                   Event.Gossip);
            acc := !acc + spread.Rumor.messages;
            feed plan Update_plan.Spread_done
      and feed plan event =
        let plan, action = Update_plan.step plan event in
        drive plan action
      in
      let plan, action = Update_plan.start Query_plan.Index_all in
      drive plan action)

let rejoin_sync t rng ~now ~peer =
  match t.config.Config.strategy with
  | Strategy.No_index | Strategy.Partial_index _ -> 0
  | Strategy.Index_all ->
      if peer >= t.config.Config.active_members || not (t.online peer) then 0
      else begin
        ignore now;
        (* One pull per replica subnetwork this member participates in:
           contact a random fellow replica for missed updates. *)
        let messages = ref 0 in
        Hashtbl.iter
          (fun _key_index net ->
            if Replica_net.member_of_peer net peer <> None then begin
              let _answered, cost =
                Rumor.pull_missed_updates rng ~net ~online:t.online ~rejoining_peer:peer
              in
              messages := !messages + cost
            end)
          t.replica_nets;
        Metrics.charge t.metrics Metrics.Update_gossip !messages;
        !messages
      end

let indexed_key_count t ~now =
  let count = ref 0 in
  for key_index = 0 to t.config.Config.keys - 1 do
    let key = t.bitkeys.(key_index) in
    let group = Dht.replica_group t.dht ~repl:t.config.Config.repl key in
    if Array.exists (fun member -> t.store.mem ~peer:member ~key_index ~now) group then
      incr count
  done;
  !count

(* Crash-stop consequences inside the PDHT state.  The caller (the
   fault injector's actions, wired by {!System}) owns the liveness
   predicate; this only destroys state.  Returns
   (index entries lost, content items lost). *)
let crash_peer t ~peer =
  if peer < 0 || peer >= t.config.Config.num_peers then
    invalid_arg "Pdht.crash_peer: bad peer";
  let entries_lost =
    if peer < t.config.Config.active_members then begin
      Dht.forget_routes t.dht ~peer;
      t.store.clear ~peer
    end
    else 0
  in
  let content_lost = Replication.remove_peer t.content ~peer in
  (entries_lost, content_lost)

(* Rejoin-empty: a member rebuilds routing state via its backend's join
   protocol (charged to maintenance); its index cache stays empty until
   repair or organic re-insertion refills it.  Non-members carry no
   routing or index state, so their recovery is free. *)
let recover_peer t rng ~peer =
  if peer < 0 || peer >= t.config.Config.num_peers then
    invalid_arg "Pdht.recover_peer: bad peer";
  if peer < t.config.Config.active_members then begin
    let messages = Dht.rebuild_routes t.dht rng ~online:t.online ~peer in
    Metrics.charge t.metrics Metrics.Maintenance messages;
    messages
  end
  else 0

(* One anti-entropy pass (the scheduled half of self-healing; the
   organic half is [index_insert] on the query path).

   Content: any item whose online replica count fell below
   [ceil (min_fraction * repl)] is topped back up to [repl] online
   holders, copying from a surviving replica (2 messages per new copy:
   request + data).  Needs at least one online source.

   Index: for every key whose replica subnetwork is materialised, if
   some online group member still caches the key, copy it (with its
   remaining TTL — repair must not extend a key's life, or it would
   fight the paper's selection algorithm) to the online members that
   lost it.  One probe message per member scanned, one per copy.

   Returns (messages, content items repaired, index entries copied);
   messages are charged to [Maintenance].  [span] is the repair root
   span id from the fault injector (when tracing): the pass's summary
   [Maintenance] event parents under it. *)
let repair_pass ?span t rng ~now ~min_fraction =
  if not (min_fraction > 0. && min_fraction <= 1.) then
    invalid_arg "Pdht.repair_pass: min_fraction must be in (0, 1]";
  let repl = t.config.Config.repl in
  let num_peers = t.config.Config.num_peers in
  let threshold = Pdht_proto.Repair_rules.content_threshold ~min_fraction ~repl in
  let messages = ref 0 in
  let repaired_items = ref 0 in
  let repaired_entries = ref 0 in
  for key_index = 0 to t.config.Config.keys - 1 do
    let reps = Replication.replicas t.content ~item:key_index in
    let live = Array.fold_left (fun n p -> if t.online p then n + 1 else n) 0 reps in
    if Pdht_proto.Repair_rules.needs_topup ~live ~threshold then begin
      let want = Pdht_proto.Repair_rules.topup_want ~repl ~live in
      let fresh = ref [] in
      let found = ref 0 in
      let attempts = ref (Pdht_proto.Repair_rules.topup_attempts ~want) in
      while !found < want && !attempts > 0 do
        decr attempts;
        let cand = Rng.int rng num_peers in
        if
          t.online cand
          && (not (Replication.holds t.content ~peer:cand ~item:key_index))
          && not (List.mem cand !fresh)
        then begin
          fresh := cand :: !fresh;
          incr found
        end
      done;
      match !fresh with
      | [] -> ()
      | fresh ->
          let merged = Array.append reps (Array.of_list fresh) in
          Replication.place_on t.content ~item:key_index ~replicas:merged;
          messages :=
            !messages + Pdht_proto.Repair_rules.copy_messages ~fresh:(List.length fresh);
          incr repaired_items
    end
  done;
  (match t.config.Config.strategy with
  | Strategy.No_index -> ()
  | Strategy.Index_all | Strategy.Partial_index _ ->
      for key_index = 0 to t.config.Config.keys - 1 do
        match Hashtbl.find_opt t.replica_nets key_index with
        | None -> () (* never queried: nothing to repair *)
        | Some net ->
            let group = Replica_net.replicas net in
            (* Find a surviving online holder; every probe is a
               message. *)
            let holder = ref (-1) in
            let i = ref 0 in
            while !holder < 0 && !i < Array.length group do
              let member = group.(!i) in
              incr i;
              if t.online member then begin
                incr messages;
                if t.store.mem ~peer:member ~key_index ~now then holder := member
              end
            done;
            if !holder >= 0 then begin
              match (t.store.expiry ~peer:!holder ~key_index, t.store.get ~peer:!holder ~key_index ~now) with
              | Some expiry, Some provider -> (
                  match Pdht_proto.Repair_rules.remaining_ttl ~expiry ~now with
                  | None -> ()
                  | Some remaining ->
                      Array.iter
                        (fun member ->
                          if
                            member <> !holder && t.online member
                            && not (t.store.mem ~peer:member ~key_index ~now)
                          then begin
                            t.store.repair_put ~peer:member ~key_index ~value:provider
                              ~now ~ttl:remaining;
                            incr messages;
                            incr repaired_entries
                          end)
                        group)
              | _ -> ()
            end
      done);
  Metrics.charge t.metrics Metrics.Maintenance !messages;
  let tracer = t.obs.Obs.tracer in
  if Tracer.active tracer Event.Maintenance then begin
    let parent = match span with Some s -> s | None -> -1 in
    Tracer.emit tracer
      (Event.make ~time:now ~messages:!messages ~detail:"repair"
         ~span:(child_id t ~parent) ~parent Event.Maintenance)
  end;
  (!messages, !repaired_items, !repaired_entries)

let store_live_count t ~now ~peer =
  if peer < 0 || peer >= t.config.Config.active_members then
    invalid_arg "Pdht.store_live_count: not a member";
  t.store.live_count ~peer ~now

let index_hit_probe t ~now ~key_index =
  let key = t.bitkeys.(key_index) in
  match Dht.responsible t.dht ~online:t.online key with
  | None -> false
  | Some responsible ->
      let group = Dht.replica_group t.dht ~repl:t.config.Config.repl key in
      t.store.mem ~peer:responsible ~key_index ~now
      || Array.exists
           (fun member -> t.online member && t.store.mem ~peer:member ~key_index ~now)
           group
