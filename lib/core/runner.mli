(** Executes batches of {!Run_spec.t} on a Domain worker pool.

    Every experiment in {!Experiment} is implemented as
    [specs |> Runner.run_all ?jobs]; the bench harness and CLI expose
    the [?jobs] knob as [--jobs]/[-j].

    {b Determinism.}  Results are byte-identical across [jobs] values:
    each task's randomness is rooted in {!Run_spec.run_seed} (a pure
    function of the spec), each task records into its own fresh
    {!Pdht_obs.Context.t}, results are returned in batch order, and the
    per-task registries are folded into the caller's registry in batch
    order too ({!Pdht_obs.Registry.merge_into}). *)

val default_jobs : unit -> int
(** {!Pdht_runner.Pool.default_jobs}:
    [Domain.recommended_domain_count () - 1], at least 1. *)

val run_all :
  ?jobs:int ->
  ?obs:Pdht_obs.Context.t ->
  Run_spec.t list ->
  (Run_spec.t * Run_result.t) list
(** Run every spec (its scenario re-seeded to {!Run_spec.run_seed})
    and pair it with its outcome, in batch order.  A raising task
    becomes an [Error] carrying the spec's tag; the rest of the batch
    still runs.

    [jobs] defaults to {!default_jobs}; [1] executes inline on the
    calling domain.

    [obs]: the registries of all {e successful} tasks are merged into
    it in batch order.  Trace events cannot be multiplexed across
    domains, so an enabled tracer in [obs] only captures events when
    the batch has exactly one spec (which then runs directly against
    [obs], preserving the single-run tracing path).
    @raise Invalid_argument when [jobs < 1]. *)
