module Scenario = Pdht_work.Scenario

type t = {
  tag : string;
  scenario : Scenario.t;
  strategy : Strategy.t;
  options : System.options;
  task_id : int;
}

let default_strategy = Strategy.Partial_index { key_ttl = Float.nan }

let default_tag scenario strategy =
  scenario.Scenario.name ^ "/" ^ Strategy.label strategy

let make ?tag ?(strategy = default_strategy) ?(options = System.default_options)
    ?(task_id = 0) scenario =
  let tag = match tag with Some t -> t | None -> default_tag scenario strategy in
  { tag; scenario; strategy; options; task_id }

let run_seed t =
  Pdht_util.Rng.derive_seed ~seed:t.scenario.Scenario.seed ~stream:t.task_id

let with_tag tag t = { t with tag }
let with_seed seed t = { t with scenario = { t.scenario with Scenario.seed } }

let with_strategy strategy t =
  let tag =
    if t.tag = default_tag t.scenario t.strategy then default_tag t.scenario strategy
    else t.tag
  in
  { t with strategy; tag }

let with_options options t = { t with options }
let with_task_id task_id t = { t with task_id }
let map_scenario f t = { t with scenario = f t.scenario }

let over_seeds seeds t =
  List.map (fun seed -> with_tag (Printf.sprintf "%s seed=%d" t.tag seed) (with_seed seed t)) seeds
