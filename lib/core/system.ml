module Rng = Pdht_util.Rng
module Metrics = Pdht_sim.Metrics
module Engine = Pdht_sim.Engine
module Scenario = Pdht_work.Scenario
module Obs = Pdht_obs.Context
module Registry = Pdht_obs.Registry
module Histogram = Pdht_obs.Histogram

let log_src = Logs.Src.create "pdht.system" ~doc:"PDHT simulation runner"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Psel = Pdht_policy.Selector

type options = {
  repl : int;
  stor : int;
  backend : Pdht_dht.Dht.backend;
  env : float option;
  selection_policy : Psel.spec;
  sample_every : float;
  sizing_slack : float;
  eviction : Pdht_dht.Storage.eviction;
  net : Pdht_net.Config.t option;
  fault : Pdht_fault.Plan.t option;
  timeline_window : float option;
  bucket_refresh : float option;
}

let default_options =
  {
    repl = 20;
    stor = 100;
    backend = Pdht_dht.Dht.Pgrid_backend;
    env = None;
    selection_policy = Psel.default;
    sample_every = 60.;
    sizing_slack = 1.5;
    eviction = Pdht_dht.Storage.Evict_soonest_expiry;
    net = None;
    fault = None;
    timeline_window = None;
    bucket_refresh = None;
  }

module Options = struct
  let make ?repl ?stor ?backend ?env ?selection_policy ?sample_every
      ?sizing_slack ?eviction ?net ?fault ?timeline_window ?bucket_refresh () =
    let d = default_options in
    let value default = function Some v -> v | None -> default in
    {
      repl = value d.repl repl;
      stor = value d.stor stor;
      backend = value d.backend backend;
      env = (match env with Some _ -> env | None -> d.env);
      selection_policy = value d.selection_policy selection_policy;
      sample_every = value d.sample_every sample_every;
      sizing_slack = value d.sizing_slack sizing_slack;
      eviction = value d.eviction eviction;
      net = (match net with Some _ -> net | None -> d.net);
      fault = (match fault with Some _ -> fault | None -> d.fault);
      timeline_window =
        (match timeline_window with Some _ -> timeline_window | None -> d.timeline_window);
      bucket_refresh =
        (match bucket_refresh with Some _ -> bucket_refresh | None -> d.bucket_refresh);
    }

  let with_repl repl options = { options with repl }
  let with_stor stor options = { options with stor }
  let with_backend backend options = { options with backend }
  let with_selection_policy selection_policy options = { options with selection_policy }
  let with_sample_every sample_every options = { options with sample_every }
  let with_eviction eviction options = { options with eviction }
  let with_net net options = { options with net = Some net }
  let without_net options = { options with net = None }
  let with_fault fault options = { options with fault = Some fault }
  let without_fault options = { options with fault = None }
  let with_timeline_window w options = { options with timeline_window = Some w }
  let without_timeline options = { options with timeline_window = None }
  let with_bucket_refresh r options = { options with bucket_refresh = Some r }
  let without_bucket_refresh options = { options with bucket_refresh = None }
end

type sample = {
  time : float;
  hit_rate : float;
  messages : int;
  indexed_keys : int;
  key_ttl : float;
  queries : int;
  answer_rate : float;
}

(* Network-model outcome of a run: the [net.*] registry instruments
   folded into report form.  [None] exactly when [options.net] was
   [None], so pre-network reports are structurally unchanged. *)
type net_summary = {
  messages_sent : int;
  messages_dropped : int;
  messages_retried : int;
  messages_timed_out : int;
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
}

(* Fault-injection outcome of a run, folded from the [fault.*]
   instruments and the answer-rate time series.  [None] exactly when
   [options.fault] was [None], mirroring [net_summary]. *)
type fault_summary = {
  crashes : int;
  recoveries : int;
  entries_lost : int;
  content_lost : int;
  repair_passes : int;
  repair_messages : int;
  repaired_items : int;
  repaired_entries : int;
  pre_fault_rate : float;
  dip_rate : float;
  time_to_recover : float option;
}

type report = {
  scenario_name : string;
  strategy : Strategy.t;
  duration : float;
  active_members : int;
  key_ttl : float;
  queries : int;
  answered : int;
  from_index : int;
  from_broadcast : int;
  failed : int;
  total_messages : int;
  messages_by_category : (Metrics.category * int) list;
  messages_per_second : float;
  avg_messages_per_query : float;
  hit_rate : float;
  indexed_keys_final : int;
  query_cost_p50 : float;
  query_cost_p95 : float;
  query_cost_p99 : float;
  c_s_indx_model : float;
  c_s_indx_measured : float;
  c_s_unstr_model : float;
  c_s_unstr_measured : float;
  histograms : (string * Histogram.summary) list;
  net : net_summary option;
  fault : fault_summary option;
  policy : Psel.summary option;
  timeline : Pdht_obs.Timeline.summary option;
  samples : sample list;
}

(* Map a scenario onto the analytical model's parameter record so runs
   can be sized and TTLs derived the way the paper does.  Non-Zipf
   distributions have no alpha; 1.0 is a neutral stand-in that only
   affects sizing heuristics, never the simulated behaviour itself. *)
let model_params (scenario : Scenario.t) (options : options) =
  let alpha =
    match scenario.Scenario.distribution with
    | Scenario.Zipf a -> a
    | Scenario.Uniform | Scenario.Hot_cold _ -> 1.0
  in
  let f_upd =
    match scenario.Scenario.update_mean_lifetime with
    | None -> 0.
    | Some lifetime -> 1. /. lifetime
  in
  {
    Pdht_model.Params.num_peers = scenario.Scenario.num_peers;
    keys = scenario.Scenario.keys;
    stor = options.stor;
    repl = options.repl;
    alpha;
    f_qry = scenario.Scenario.f_qry;
    f_upd;
    env = (match options.env with Some e -> e | None -> 1. /. 14.);
    dup = 1.8;
    dup2 = 1.8;
  }

let derive_key_ttl scenario options =
  match options.selection_policy with
  | Psel.Ttl (Psel.Fixed ttl) -> ttl
  | Psel.Ttl Psel.Model_derived | Psel.Ttl Psel.Adaptive
  | Psel.Cost_optimal | Psel.Learned | Psel.Cache_budget _ ->
      let params = model_params scenario options in
      let solution = Pdht_model.Index_policy.solve params in
      let ttl = Pdht_model.Strategies.default_key_ttl solution in
      if Float.is_finite ttl then ttl else scenario.Scenario.duration

let plan_active_members scenario options strategy =
  let params = model_params scenario options in
  let sized expected_index_size =
    Config.active_members_for ~num_peers:scenario.Scenario.num_peers ~repl:options.repl
      ~stor:options.stor
      ~expected_index_size:(options.sizing_slack *. expected_index_size)
  in
  match strategy with
  | Strategy.No_index -> 2
  | Strategy.Index_all -> sized (float_of_int scenario.Scenario.keys)
  | Strategy.Partial_index { key_ttl } ->
      let state = Pdht_model.Strategies.ttl_state params ~key_ttl in
      sized state.Pdht_model.Strategies.index_size

let build_churn scenario rng =
  match scenario.Scenario.churn with
  | Scenario.No_churn -> Pdht_dht.Churn.always_online ~peers:scenario.Scenario.num_peers
  | Scenario.Exponential_sessions { mean_uptime; mean_downtime; initially_online_fraction }
    ->
      Pdht_dht.Churn.create rng ~peers:scenario.Scenario.num_peers ~mean_uptime
        ~mean_downtime ~initially_online_fraction
  | Scenario.Sessions spec ->
      Pdht_dht.Churn.create_spec rng ~peers:scenario.Scenario.num_peers spec

(* External execution driver: substitutes the protocol's store access
   (e.g. with wire-crossing closures to worker processes) and gets the
   built [Pdht.t] back once, before any event runs, to install
   transport hooks via {!Pdht.set_transport}.  With no driver the exact
   pre-existing creation path runs. *)
type driver = { store : Pdht.store_ops; attach : Pdht.t -> unit }

(* Mutable run-time counters, folded into the report at the end. *)
type counters = {
  mutable queries : int;
  mutable from_index : int;
  mutable from_broadcast : int;
  mutable failed : int;
  mutable bucket_queries : int;
  mutable bucket_hits : int;
  mutable bucket_answered : int;
  mutable last_total_messages : int;
  mutable samples_rev : sample list;
}

let run ?obs ?driver scenario strategy options =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let scenario =
    match Scenario.validate scenario with
    | Ok s -> s
    | Error msg -> invalid_arg ("System.run: " ^ msg)
  in
  let strategy =
    (* Resolve a model-derived TTL once so the whole run (and the
       report) sees a concrete number. *)
    match strategy with
    | Strategy.Partial_index { key_ttl } when not (Float.is_finite key_ttl && key_ttl > 0.)
      ->
        Strategy.Partial_index { key_ttl = derive_key_ttl scenario options }
    | s -> s
  in
  let rng = Rng.create ~seed:scenario.Scenario.seed in
  let build_rng = Rng.split rng in
  let workload_rng = Rng.split rng in
  let churn_rng = Rng.split rng in
  let maintenance_rng = Rng.split rng in
  let update_rng = Rng.split rng in
  (* The network model gets its own stream, split only when enabled:
     the five streams above were derived before this point and the
     parent generator is never drawn from again, so [net = None] runs
     are bit-identical to the pre-network code and enabling a zero-cost
     net perturbs no other stream. *)
  let net_hook =
    match options.net with
    | None -> None
    | Some cfg ->
        let net_rng = Rng.split rng in
        Some (Pdht_net.Hook.create ~obs ~rng:net_rng cfg)
  in
  (* Same discipline for the fault subsystem: one dedicated stream,
     split only when a plan is present (and after the conditional net
     split, so enabling faults perturbs neither the base streams nor the
     network model).  The stream covers victim sampling, routing-table
     rebuilds on recovery, and anti-entropy peer choice — all
     fault-only randomness. *)
  let injector =
    match options.fault with
    | None -> None
    | Some plan ->
        let fault_rng = Rng.split rng in
        let inj =
          Pdht_fault.Injector.create ~tracer:obs.Obs.tracer ~registry:obs.Obs.registry
            ~rng:fault_rng ~peers:scenario.Scenario.num_peers plan
        in
        Some (inj, fault_rng, plan)
  in
  let active_members = plan_active_members scenario options strategy in
  Log.info (fun m ->
      m "run %s/%s: %d peers (%d members), %d keys, fQry=%g, %.0fs" scenario.Scenario.name
        (Strategy.label strategy) scenario.Scenario.num_peers active_members
        scenario.Scenario.keys scenario.Scenario.f_qry scenario.Scenario.duration);
  let config =
    Config.make ~backend:options.backend ~eviction:options.eviction
      ~num_peers:scenario.Scenario.num_peers ~active_members
      ~keys:scenario.Scenario.keys ~repl:options.repl ~stor:options.stor ~strategy ()
  in
  let pdht =
    match driver with
    | None -> Pdht.create ~obs ?net:net_hook build_rng config
    | Some d ->
        (* A real transport and the simulated network model are mutually
           exclusive delivery paths. *)
        (match options.net with
        | Some _ -> invalid_arg "System.run: driver and net model are mutually exclusive"
        | None -> ());
        let p = Pdht.create ~obs ~store:d.store build_rng config in
        d.attach p;
        p
  in
  (* Live routing tables (opt-in, Kademlia only): self-healing k-buckets
     plus a periodic bucket-refresh sweep.  Enabling consumes no RNG, so
     [bucket_refresh = None] runs stay byte-identical to the frozen
     tables. *)
  (match options.bucket_refresh with
  | None -> ()
  | Some r ->
      if options.backend <> Pdht_dht.Dht.Kademlia_backend then
        invalid_arg "System.run: bucket_refresh requires the Kademlia backend";
      if not (r > 0.) then invalid_arg "System.run: bucket_refresh must be positive";
      let probe_retries =
        Pdht_net.Config.attempts
          (match options.net with Some cfg -> cfg | None -> Pdht_net.Config.default)
        - 1
      in
      Pdht_dht.Dht.enable_live_routing ~probe_retries (Pdht.dht pdht));
  let engine = Engine.create () in
  Engine.instrument engine obs.Obs.registry;
  (* Snapshots also drive the tracer's registered flushers, so schedule
     them whenever either consumer exists. *)
  if
    Pdht_obs.Tracer.enabled obs.Obs.tracer
    || Pdht_obs.Tracer.has_flushers obs.Obs.tracer
  then Engine.emit_snapshots engine ~every:options.sample_every ~tracer:obs.Obs.tracer;
  let churn = build_churn scenario churn_rng in
  Pdht_dht.Churn.instrument churn obs;
  Pdht_dht.Churn.attach churn engine;
  (* Liveness = churn AND not crashed.  The [None] arm keeps the exact
     pre-fault closure (a partial application of [Churn.online]), so
     fault-free runs execute the same code path as before the fault
     subsystem existed. *)
  let online_peer =
    match injector with
    | None -> Pdht_dht.Churn.online churn
    | Some (inj, _, _) ->
        fun p ->
          Pdht_dht.Churn.online churn p
          && not (Pdht_fault.Injector.crashed inj p)
          && not (Pdht_fault.Injector.plan_offline inj p)
  in
  Pdht.set_online pdht online_peer;
  (* Anti-entropy: under the index-everything baseline, a DHT member
     returning from an offline session pulls missed updates from its
     replica subnetworks ([DaHa03]). *)
  (match strategy with
  | Strategy.Index_all ->
      Pdht_dht.Churn.on_toggle churn (fun ~peer ~now_online ~time ->
          if now_online && peer < active_members then
            ignore (Pdht.rejoin_sync pdht churn_rng ~now:time ~peer))
  | Strategy.No_index | Strategy.Partial_index _ -> ());
  let online_member p = p < active_members && online_peer p in
  let uses_dht =
    match strategy with Strategy.No_index -> false | Strategy.Index_all | Strategy.Partial_index _ -> true
  in
  if uses_dht then begin
    let env =
      match options.env with
      | Some e -> e
      | None ->
          Pdht_dht.Maintenance.env_from_trace ~maintenance_rate:1.0
            ~members:(max 2 active_members)
    in
    Pdht_dht.Maintenance.attach ~obs ?refresh_every:options.bucket_refresh engine
      ~dht:(Pdht.dht pdht) ~rng:maintenance_rng ~online:online_member
      ~metrics:(Pdht.metrics pdht) ~env ~interval:10.
  end;
  (* Adaptive TTL controller (extension). *)
  let adaptive =
    if
      Psel.equal options.selection_policy (Psel.Ttl Psel.Adaptive)
      && Strategy.is_partial strategy
    then begin
      let controller = Adaptive.create () in
      Adaptive.attach controller engine pdht ~every:(10. *. options.sample_every);
      Some controller
    end
    else None
  in
  (* Pluggable selection policy (extension): only the adaptive policies
     instantiate a selector; [Ttl _] runs install no hook and keep the
     exact pre-policy code path, so their reports stay byte-identical.
     Selectors draw no randomness, preserving the determinism contract. *)
  let selector =
    if Psel.uses_selector options.selection_policy && Strategy.is_partial strategy
    then begin
      let retune_every = 5. *. options.sample_every in
      let sel =
        Psel.instantiate options.selection_policy
          ~params:(model_params scenario options)
          ~base_ttl:(Pdht.key_ttl pdht) ~retune_every
      in
      Pdht.set_policy pdht
        {
          Pdht.admit =
            (fun ~now ~key_index ->
              let ok = Psel.admit sel ~now ~key_index in
              Psel.observe sel ~now ~key_index
                (if ok then Psel.Inserted else Psel.Rejected);
              ok);
          ttl_for = (fun ~now ~key_index -> Psel.ttl_for sel ~now ~key_index);
        };
      Engine.schedule_periodic engine ~first:retune_every ~every:retune_every
        (fun eng -> Psel.retune sel ~now:(Engine.now eng));
      Some sel
    end
    else None
  in
  let counters =
    {
      queries = 0;
      from_index = 0;
      from_broadcast = 0;
      failed = 0;
      bucket_queries = 0;
      bucket_hits = 0;
      bucket_answered = 0;
      last_total_messages = 0;
      samples_rev = [];
    }
  in
  (* Optional windowed timeline: per-window workload counters plus an
     indexed-keys gauge.  Slots are pre-resolved once — the per-query
     feed must not pay a string lookup. *)
  let timeline =
    match options.timeline_window with
    | None -> None
    | Some width ->
        let tl =
          Pdht_obs.Timeline.create ~width
            ~series:
              [ "queries"; "hits"; "answered"; "messages"; "latency_ms";
                "indexed_keys" ]
        in
        let id = Pdht_obs.Timeline.series_id tl in
        Some
          ( tl,
            ( id "queries", id "hits", id "answered", id "messages",
              id "latency_ms", id "indexed_keys" ) )
  in
  (* Query workload. *)
  let query_gen =
    Pdht_work.Query_gen.create workload_rng ~num_peers:scenario.Scenario.num_peers
      ~f_qry:scenario.Scenario.f_qry
      ~profile:(Scenario.rate_profile scenario)
      ~distribution:(Scenario.distribution scenario)
      ~shift:(Scenario.popularity_shift scenario)
      ()
  in
  Pdht_work.Query_gen.attach query_gen engine ~until:scenario.Scenario.duration
    ~handler:(fun eng ~peer ~key_index ~rank:_ ->
      (* An offline peer issues no queries: the per-peer rate is an
         online activity, so drop the event rather than counting a
         phantom failure. *)
      if online_peer peer then begin
      let now = Engine.now eng in
      let result = Pdht.query pdht ~now ~peer ~key_index in
      counters.queries <- counters.queries + 1;
      counters.bucket_queries <- counters.bucket_queries + 1;
      (match result.Pdht.source with
      | Pdht.From_index ->
          counters.from_index <- counters.from_index + 1;
          counters.bucket_hits <- counters.bucket_hits + 1;
          counters.bucket_answered <- counters.bucket_answered + 1
      | Pdht.From_broadcast ->
          counters.from_broadcast <- counters.from_broadcast + 1;
          counters.bucket_answered <- counters.bucket_answered + 1
      | Pdht.Not_found -> counters.failed <- counters.failed + 1);
      (match timeline with
      | None -> ()
      | Some (tl, (s_q, s_h, s_a, s_m, s_l, _)) ->
          Pdht_obs.Timeline.add tl ~now s_q 1.;
          (match result.Pdht.source with
          | Pdht.From_index ->
              Pdht_obs.Timeline.add tl ~now s_h 1.;
              Pdht_obs.Timeline.add tl ~now s_a 1.
          | Pdht.From_broadcast -> Pdht_obs.Timeline.add tl ~now s_a 1.
          | Pdht.Not_found -> ());
          Pdht_obs.Timeline.add tl ~now s_m
            (float_of_int (Pdht.total_messages result));
          (match net_hook with
          | Some h ->
              Pdht_obs.Timeline.add tl ~now s_l (1000. *. Pdht_net.Hook.elapsed h)
          | None -> ()));
      (match adaptive with
      | Some controller -> Adaptive.note_query controller result
      | None -> ());
      match selector with
      | Some sel ->
          Psel.observe sel ~now ~key_index
            (Psel.Queried { hit = result.Pdht.source = Pdht.From_index })
      | None -> ()
      end);
  (* Update workload (article replacements). *)
  (match scenario.Scenario.update_mean_lifetime with
  | None -> ()
  | Some mean_lifetime ->
      let update_gen =
        Pdht_work.Update_gen.create update_rng ~articles:scenario.Scenario.keys
          ~mean_lifetime
      in
      Pdht_work.Update_gen.attach update_gen engine ~until:scenario.Scenario.duration
        ~handler:(fun eng ~article_id ->
          let now = Engine.now eng in
          ignore (Pdht.update_key pdht update_rng ~now ~key_index:article_id)));
  (* Periodic sampling of hit rate, traffic and index size. *)
  Engine.schedule_periodic engine ~first:options.sample_every ~every:options.sample_every
    (fun eng ->
      let now = Engine.now eng in
      let total = Metrics.total (Pdht.metrics pdht) in
      let bucket_messages = total - counters.last_total_messages in
      counters.last_total_messages <- total;
      let hit_rate =
        if counters.bucket_queries = 0 then 0.
        else float_of_int counters.bucket_hits /. float_of_int counters.bucket_queries
      in
      let indexed_keys = if uses_dht then Pdht.indexed_key_count pdht ~now else 0 in
      (match timeline with
      | None -> ()
      | Some (tl, (_, _, _, _, _, s_ik)) ->
          Pdht_obs.Timeline.set tl ~now s_ik (float_of_int indexed_keys));
      let answer_rate =
        if counters.bucket_queries = 0 then 0.
        else float_of_int counters.bucket_answered /. float_of_int counters.bucket_queries
      in
      counters.samples_rev <-
        { time = now; hit_rate; messages = bucket_messages; indexed_keys;
          key_ttl = Pdht.key_ttl pdht; queries = counters.bucket_queries; answer_rate }
        :: counters.samples_rev;
      counters.bucket_queries <- 0;
      counters.bucket_hits <- 0;
      counters.bucket_answered <- 0);
  (* Fault injection: wire the plan's consequences to the PDHT state and
     schedule everything on the engine.  The invariant sweep fails fast
     through [Engine.Handler_failed], carrying the simulated time and
     the ["fault:check"] label to the experiment runner. *)
  (match injector with
  | None -> ()
  | Some (inj, fault_rng, plan) ->
      let registry = obs.Obs.registry in
      let c_entries_lost = Registry.counter registry "fault.entries_lost" in
      let c_content_lost = Registry.counter registry "fault.content_lost" in
      let c_repair_messages = Registry.counter registry "fault.repair_messages" in
      let c_repaired_items = Registry.counter registry "fault.repaired_items" in
      let c_repaired_entries = Registry.counter registry "fault.repaired_entries" in
      let min_fraction =
        match plan.Pdht_fault.Plan.repair with
        | Some r -> r.Pdht_fault.Plan.min_fraction
        | None -> 0.5 (* unused: repair is only scheduled when enabled *)
      in
      let check ~now =
        let fail fmt =
          Printf.ksprintf (fun msg -> failwith ("fault invariant violated: " ^ msg)) fmt
        in
        for p = 0 to active_members - 1 do
          let live = Pdht.store_live_count pdht ~now ~peer:p in
          if live > options.stor then
            fail "member %d holds %d live entries, over stor=%d" p live options.stor;
          if Pdht_fault.Injector.crashed inj p then begin
            if live > 0 then fail "crashed member %d still holds %d index entries" p live;
            if online_peer p then fail "crashed peer %d passes the online predicate" p
          end
        done;
        for key_index = 0 to scenario.Scenario.keys - 1 do
          Array.iter
            (fun peer ->
              if Pdht_fault.Injector.crashed inj peer then
                fail "crashed peer %d still replicates key %d" peer key_index)
            (Pdht.content_replicas pdht ~key_index)
        done
      in
      let actions =
        {
          Pdht_fault.Injector.crash =
            (fun ~peer ~now:_ ->
              let entries, content = Pdht.crash_peer pdht ~peer in
              Registry.incr c_entries_lost entries;
              Registry.incr c_content_lost content);
          recover = (fun ~peer ~now:_ -> ignore (Pdht.recover_peer pdht fault_rng ~peer));
          repair =
            (fun ~span ~now ->
              let messages, items, entries =
                Pdht.repair_pass ?span pdht fault_rng ~now ~min_fraction
              in
              Registry.incr c_repair_messages messages;
              Registry.incr c_repaired_items items;
              Registry.incr c_repaired_entries entries);
          check = (fun ~now -> check ~now);
        }
      in
      Pdht_fault.Injector.attach inj engine actions);
  Engine.run engine ~until:scenario.Scenario.duration;
  Log.info (fun m ->
      m "done %s/%s: %d queries, %d total messages" scenario.Scenario.name
        (Strategy.label strategy) counters.queries
        (Metrics.total (Pdht.metrics pdht)));
  let now = scenario.Scenario.duration in
  let metrics = Pdht.metrics pdht in
  let total_messages = Metrics.total metrics in
  let answered = counters.from_index + counters.from_broadcast in
  let registry = obs.Obs.registry in
  (* Per-query cost quantiles come from the streaming histogram Pdht
     fills — O(1) memory instead of the old per-query cost list. *)
  let cost_percentile =
    match Registry.find_histogram registry "query.cost" with
    | Some h when Histogram.count h > 0 -> fun p -> Histogram.quantile h p
    | _ -> fun _ -> 0.
  in
  let hist_mean name =
    match Registry.find_histogram registry name with
    | Some h when Histogram.count h > 0 -> Histogram.mean h
    | _ -> 0.
  in
  let solution = Pdht_model.Index_policy.solve (model_params scenario options) in
  (* The engine's wall-clock throughput histogram measures the host, not
     the simulation: it is the one registry instrument that legitimately
     varies between runs (and between jobs counts).  Keeping it out of
     the report preserves the contract that reports are a pure function
     of (scenario, strategy, options); it stays in the registry for
     telemetry export. *)
  let histograms =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Registry.Histogram_v s
          when s.Histogram.count > 0 && name <> "engine.sim_seconds_per_wall_second" ->
            Some (name, s)
        | _ -> None)
      (Registry.snapshot registry)
  in
  let net_summary =
    match net_hook with
    | None -> None
    | Some _ ->
        let c name =
          match Registry.counter_value_by_name registry name with Some v -> v | None -> 0
        in
        let latency_q p =
          (* The histogram records milliseconds (sub-second values
             would collapse into the sketch's [0,1) bucket); the
             summary reports seconds. *)
          match Registry.find_histogram registry "net.query_latency_ms" with
          | Some h when Histogram.count h > 0 -> Histogram.quantile h p /. 1000.
          | _ -> 0.
        in
        Some
          {
            messages_sent = c "net.messages_sent";
            messages_dropped = c "net.messages_dropped";
            messages_retried = c "net.messages_retried";
            messages_timed_out = c "net.messages_timed_out";
            latency_p50 = latency_q 0.5;
            latency_p95 = latency_q 0.95;
            latency_p99 = latency_q 0.99;
          }
  in
  let fault_summary =
    match injector with
    | None -> None
    | Some (inj, _, _) ->
        let c name =
          match Registry.counter_value_by_name registry name with Some v -> v | None -> 0
        in
        (* Recovery is read off a per-bucket service-rate time series:
           the mean rate before the first fault is the baseline, the
           post-fault minimum is the dip, and the system has recovered
           at the first post-fault sample back within 5% of the
           baseline.  For index strategies the rate is the bucket
           hit rate — the empirical pIndxd, which is what a crash
           actually damages (the broadcast fallback masks moderate
           crashes in the plain answer rate); under [No_index] the
           answer rate is the only signal.  Only buckets that saw
           queries vote — an idle bucket's 0/0 is not an outage. *)
        let rate =
          match strategy with
          | Strategy.No_index -> fun (s : sample) -> s.answer_rate
          | Strategy.Partial_index _ | Strategy.Index_all ->
              fun (s : sample) -> s.hit_rate
        in
        let samples = List.rev counters.samples_rev in
        let voting = List.filter (fun (s : sample) -> s.queries > 0) samples in
        let mean = function
          | [] -> 1.
          | l ->
              List.fold_left (fun acc s -> acc +. rate s) 0. l
              /. float_of_int (List.length l)
        in
        let pre, dip, time_to_recover =
          match Pdht_fault.Injector.first_fault_time inj with
          | None ->
              let pre = mean voting in
              (pre, pre, Some 0.)
          | Some fault_time ->
              let before = List.filter (fun s -> s.time <= fault_time) voting in
              let after = List.filter (fun s -> s.time > fault_time) voting in
              (* Steady state, not whole history: the index starts empty,
                 so early buckets would drag the baseline below what the
                 fault actually disrupts.  Use the later half of the
                 pre-fault buckets. *)
              let before =
                let n = List.length before in
                List.filteri (fun i _ -> i >= n / 2) before
              in
              let pre = if before = [] then 1. else mean before in
              let dip =
                List.fold_left (fun acc s -> Float.min acc (rate s))
                  (if after = [] then pre else Float.infinity)
                  after
              in
              let rec recovered_at = function
                | [] -> None
                | s :: rest ->
                    if rate s >= 0.95 *. pre then Some (s.time -. fault_time)
                    else recovered_at rest
              in
              (pre, dip, recovered_at after)
        in
        Some
          {
            crashes = c "fault.crashes";
            recoveries = c "fault.recoveries";
            entries_lost = c "fault.entries_lost";
            content_lost = c "fault.content_lost";
            repair_passes = c "fault.repair_passes";
            repair_messages = c "fault.repair_messages";
            repaired_items = c "fault.repaired_items";
            repaired_entries = c "fault.repaired_entries";
            pre_fault_rate = pre;
            dip_rate = dip;
            time_to_recover;
          }
  in
  {
    scenario_name = scenario.Scenario.name;
    strategy;
    duration = scenario.Scenario.duration;
    active_members;
    key_ttl = Pdht.key_ttl pdht;
    queries = counters.queries;
    answered;
    from_index = counters.from_index;
    from_broadcast = counters.from_broadcast;
    failed = counters.failed;
    total_messages;
    messages_by_category = Metrics.snapshot metrics;
    messages_per_second = float_of_int total_messages /. scenario.Scenario.duration;
    avg_messages_per_query =
      (if counters.queries = 0 then 0.
       else float_of_int total_messages /. float_of_int counters.queries);
    hit_rate =
      (if counters.queries = 0 then 0.
       else float_of_int counters.from_index /. float_of_int counters.queries);
    indexed_keys_final = (if uses_dht then Pdht.indexed_key_count pdht ~now else 0);
    query_cost_p50 = cost_percentile 0.5;
    query_cost_p95 = cost_percentile 0.95;
    query_cost_p99 = cost_percentile 0.99;
    c_s_indx_model = solution.Pdht_model.Index_policy.c_s_indx;
    c_s_indx_measured = hist_mean "index.search_cost";
    c_s_unstr_model = solution.Pdht_model.Index_policy.c_s_unstr;
    c_s_unstr_measured = hist_mean "broadcast.reach";
    histograms;
    net = net_summary;
    fault = fault_summary;
    policy = Option.map Psel.summary selector;
    timeline = Option.map (fun (tl, _) -> Pdht_obs.Timeline.summary tl) timeline;
    samples = List.rev counters.samples_rev;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s / %s: %d queries in %.0fs, %d answered (%.1f%% index, %.1f%% broadcast, %d \
     failed)@,members=%d keyTtl=%g indexed=%d@,messages: total=%d (%.1f/s, %.1f/query)@,"
    r.scenario_name (Strategy.label r.strategy) r.queries r.duration r.answered
    (100. *. float_of_int r.from_index /. float_of_int (max 1 r.queries))
    (100. *. float_of_int r.from_broadcast /. float_of_int (max 1 r.queries))
    r.failed r.active_members r.key_ttl r.indexed_keys_final r.total_messages
    r.messages_per_second r.avg_messages_per_query;
  Format.fprintf ppf "  per-query cost p50/p95/p99: %.0f / %.0f / %.0f@," r.query_cost_p50
    r.query_cost_p95 r.query_cost_p99;
  (* Measured-vs-model search costs: Eq. 7 (cSIndx) and Eq. 6 (cSUnstr). *)
  Format.fprintf ppf
    "  cSIndx  measured %.1f vs model %.1f@,  cSUnstr measured %.1f vs model %.1f@,"
    r.c_s_indx_measured r.c_s_indx_model r.c_s_unstr_measured r.c_s_unstr_model;
  (match r.net with
  | None -> ()
  | Some n ->
      Format.fprintf ppf
        "  net: sent=%d dropped=%d retried=%d timed_out=%d latency p50/p95/p99 = \
         %.4f / %.4f / %.4f s@,"
        n.messages_sent n.messages_dropped n.messages_retried n.messages_timed_out
        n.latency_p50 n.latency_p95 n.latency_p99);
  (match r.fault with
  | None -> ()
  | Some f ->
      Format.fprintf ppf
        "  fault: crashes=%d recoveries=%d entries_lost=%d content_lost=%d@,  repair: \
         passes=%d messages=%d items=%d entries=%d@,  service rate: pre-fault %.3f, dip \
         %.3f, recovered %s@,"
        f.crashes f.recoveries f.entries_lost f.content_lost f.repair_passes
        f.repair_messages f.repaired_items f.repaired_entries f.pre_fault_rate
        f.dip_rate
        (match f.time_to_recover with
        | Some t -> Printf.sprintf "after %.0fs" t
        | None -> "never"));
  (match r.policy with
  | None -> ()
  | Some p ->
      Format.fprintf ppf
        "  policy: %s retunes=%d observed=%d admitted=%d rejected=%d target=%s \
         estFQry=%g threshold=%g@,"
        p.Psel.policy p.Psel.retunes p.Psel.observed_queries p.Psel.admitted_inserts
        p.Psel.rejected_inserts
        (if p.Psel.target_keys < 0 then "all" else string_of_int p.Psel.target_keys)
        p.Psel.est_f_qry p.Psel.threshold);
  (match r.timeline with
  | None -> ()
  | Some tl -> Format.fprintf ppf "  %a@," Pdht_obs.Timeline.pp tl);
  List.iter
    (fun (cat, n) ->
      if n > 0 then Format.fprintf ppf "  %-20s %d@," (Metrics.category_label cat) n)
    r.messages_by_category;
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "  %-28s %a@," name Histogram.pp_summary s)
    r.histograms;
  Format.fprintf ppf "@]"
