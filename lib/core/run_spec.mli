(** One fully-described simulation run: scenario + strategy + options +
    a human-readable tag.

    The spec is the unit of work {!Runner.run_all} schedules.  It
    replaces the per-experiment plumbing of seeds and option records:
    every experiment builds a [Run_spec.t list] and hands it to the
    runner, whether it executes on one domain or eight.

    {b Seeding.}  The seed a run actually uses is {!run_seed}: a
    splitmix64 derivation from [(scenario.seed, task_id)] (see
    {!Pdht_util.Rng.derive_seed}).  It depends only on the spec itself —
    never on batch position or worker count — which is what makes
    parallel and sequential execution byte-identical.  Specs sharing a
    [(seed, task_id)] pair see identical randomness: experiments that
    compare strategies or backends on a common workload (common random
    numbers) deliberately leave [task_id] at its default [0], while
    batches that want decorrelated replicas of one scenario give each
    spec its own [task_id] instead of inventing seed arithmetic. *)

type t = {
  tag : string;          (** label for reports, errors and logs *)
  scenario : Pdht_work.Scenario.t;
  strategy : Strategy.t;
  options : System.options;
  task_id : int;         (** RNG stream selector, see {!run_seed} *)
}

val default_strategy : Strategy.t
(** [Partial_index] with a NaN TTL: {!System.run} resolves any
    non-finite TTL to the model-derived one, so the default spec runs
    the paper's partial strategy without the caller pre-computing a
    TTL. *)

val make :
  ?tag:string ->
  ?strategy:Strategy.t ->
  ?options:System.options ->
  ?task_id:int ->
  Pdht_work.Scenario.t ->
  t
(** [tag] defaults to ["<scenario name>/<strategy label>"]; [strategy]
    to {!default_strategy}; [options] to {!System.default_options};
    [task_id] to [0]. *)

val run_seed : t -> int
(** The seed {!Runner} substitutes into the scenario before running:
    [Rng.derive_seed ~seed:scenario.seed ~stream:task_id]. *)

val with_tag : string -> t -> t
val with_seed : int -> t -> t
(** Replaces [scenario.seed]. *)

val with_strategy : Strategy.t -> t -> t
(** Also refreshes a defaulted tag. *)

val with_options : System.options -> t -> t
val with_task_id : int -> t -> t

val map_scenario : (Pdht_work.Scenario.t -> Pdht_work.Scenario.t) -> t -> t

val over_seeds : int list -> t -> t list
(** One spec per seed, tagged ["<tag> seed=<n>"] — the replication
    batch shape. *)
