module Pool = Pdht_runner.Pool
module Obs = Pdht_obs.Context
module Registry = Pdht_obs.Registry
module Scenario = Pdht_work.Scenario

let default_jobs = Pool.default_jobs

let run_all ?jobs ?obs specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  (* Per-task contexts keep domains from racing on one registry and,
     merged back in batch order, make the final registry independent of
     scheduling.  A single-spec batch runs straight against the
     caller's context so its tracer (if any) still sees events. *)
  let contexts =
    match obs with
    | Some ctx when n = 1 -> [| ctx |]
    | Some _ | None -> Array.init n (fun _ -> Obs.create ())
  in
  let outcomes =
    Pool.try_map ?jobs specs ~f:(fun i (spec : Run_spec.t) ->
        let scenario =
          { spec.Run_spec.scenario with Scenario.seed = Run_spec.run_seed spec }
        in
        System.run ~obs:contexts.(i) scenario spec.Run_spec.strategy
          spec.Run_spec.options)
  in
  (match obs with
  | Some into when n > 1 ->
      Array.iteri
        (fun i ctx ->
          match outcomes.(i) with
          | Ok _ -> Registry.merge_into (Obs.registry ctx) ~into:(Obs.registry into)
          | Error _ -> ())
        contexts
  | Some _ | None -> ());
  Array.to_list
    (Array.mapi
       (fun i outcome ->
         let spec = specs.(i) in
         match outcome with
         | Ok report -> (spec, Ok report)
         | Error exn ->
             ( spec,
               Error
                 { Run_result.tag = spec.Run_spec.tag;
                   message = Printexc.to_string exn } ))
       outcomes)
