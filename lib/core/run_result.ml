type error = { tag : string; message : string }

type t = (System.report, error) result

exception Task_failed of error

let report_exn = function Ok report -> report | Error e -> raise (Task_failed e)

let reports_exn results = List.map (fun (_, outcome) -> report_exn outcome) results

let failures results =
  List.filter_map
    (fun ((_ : Run_spec.t), outcome) ->
      match outcome with Ok _ -> None | Error e -> Some (e.tag, e.message))
    results
