(** What one {!Run_spec.t} produced: its report, or a labelled error.

    {!Runner.run_all} never lets one raising task abort its batch —
    every spec comes back paired with an outcome, and the caller
    decides whether a failure is fatal ({!reports_exn}) or just a row
    to report ({!failures}). *)

type error = { tag : string; message : string }

type t = (System.report, error) result

exception Task_failed of error

val report_exn : t -> System.report
(** @raise Task_failed on an [Error] outcome. *)

val reports_exn : (Run_spec.t * t) list -> System.report list
(** All reports, in batch order.
    @raise Task_failed on the first failed outcome. *)

val failures : (Run_spec.t * t) list -> (string * string) list
(** The [(tag, message)] of every failed outcome, in batch order. *)
