(** Whole-system simulation: a {!Pdht_work.Scenario} driven against one
    {!Strategy} with full message accounting.

    Assembles everything: population + unstructured overlay + DHT +
    churn + routing maintenance + query/update workloads, runs the
    discrete-event engine for the scenario's duration, and reports the
    counters the paper's evaluation cares about. *)

type options = {
  repl : int;                  (** replication factor (default 20) *)
  stor : int;                  (** per-peer index cache (default 100) *)
  backend : Pdht_dht.Dht.backend;
  env : float option;          (** maintenance constant; [None] derives
                                   it from a 1 msg/peer/s trace rate *)
  adaptive_ttl : bool;         (** enable the self-tuning controller *)
  sample_every : float;        (** time-series bucket width, seconds *)
  key_ttl_override : float option;
      (** force a TTL instead of the model-derived [1/fMin] *)
  sizing_slack : float;
      (** headroom multiplier on the model's [numActivePeers]: replica
          groups and key loads are hash-balanced only in expectation, so
          deployments over-provision (default 1.5) *)
  eviction : Pdht_dht.Storage.eviction;
      (** index-cache victim policy (default [Evict_soonest_expiry]) *)
}

val default_options : options

type sample = {
  time : float;
  hit_rate : float;          (** fraction of queries answered from the
                                 index in this bucket *)
  messages : int;            (** all messages in this bucket *)
  indexed_keys : int;        (** empirical Eq. 15 at the sample instant *)
  key_ttl : float;           (** TTL in force (changes when adaptive) *)
}

type report = {
  scenario_name : string;
  strategy : Strategy.t;
  duration : float;
  active_members : int;
  key_ttl : float;            (** TTL at the end of the run *)
  queries : int;
  answered : int;
  from_index : int;
  from_broadcast : int;
  failed : int;
  total_messages : int;
  messages_by_category : (Pdht_sim.Metrics.category * int) list;
  messages_per_second : float;
  avg_messages_per_query : float;
  hit_rate : float;           (** from_index / queries *)
  indexed_keys_final : int;
  query_cost_p50 : float;     (** median messages per query *)
  query_cost_p95 : float;
  query_cost_p99 : float;
  c_s_indx_model : float;     (** Eq. 7 from the analytical model *)
  c_s_indx_measured : float;  (** mean [index.search_cost] (0 if unused) *)
  c_s_unstr_model : float;    (** Eq. 6 from the analytical model *)
  c_s_unstr_measured : float; (** mean [broadcast.reach] (0 if unused) *)
  histograms : (string * Pdht_obs.Histogram.summary) list;
      (** every registry histogram with at least one observation,
          name-sorted *)
  samples : sample list;      (** chronological *)
}

val derive_key_ttl : Pdht_work.Scenario.t -> options -> float
(** The TTL a run will use: the override if given, else [1/fMin] from
    the analytical model instantiated with the scenario's parameters
    (Zipf alpha approximated as 1.0 for non-Zipf distributions). *)

val plan_active_members : Pdht_work.Scenario.t -> options -> Strategy.t -> int
(** DHT size for a run: enough members for the full index under
    [Index_all], the model's Eq.-15 expectation under [Partial_index],
    and a minimal 2-member ring under [No_index] (no DHT traffic is
    generated there). *)

val run :
  ?obs:Pdht_obs.Context.t -> Pdht_work.Scenario.t -> Strategy.t -> options -> report
(** Execute the simulation.  Deterministic in [scenario.seed].

    [obs] (default: fresh, tracer disabled) collects the run's metrics
    and trace events: everything {!Pdht.create} registers, plus engine
    instrumentation ([engine.*]), churn telemetry ([churn.*]) and
    maintenance telemetry ([maintenance.*]).  Pass a context with an
    enabled tracer to capture typed events; periodic [Engine] snapshot
    events are emitted every [options.sample_every] sim-seconds. *)

val pp_report : Format.formatter -> report -> unit
