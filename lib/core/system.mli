(** Whole-system simulation: a {!Pdht_work.Scenario} driven against one
    {!Strategy} with full message accounting.

    Assembles everything: population + unstructured overlay + DHT +
    churn + routing maintenance + query/update workloads, runs the
    discrete-event engine for the scenario's duration, and reports the
    counters the paper's evaluation cares about. *)

type options = {
  repl : int;                  (** replication factor (default 20) *)
  stor : int;                  (** per-peer index cache (default 100) *)
  backend : Pdht_dht.Dht.backend;
  env : float option;          (** maintenance constant; [None] derives
                                   it from a 1 msg/peer/s trace rate *)
  selection_policy : Pdht_policy.Selector.spec;
      (** what drives index selection (default [Ttl Model_derived] —
          the paper's behaviour).  [Ttl _] specs run the original
          global-TTL code path with no selector installed, so their
          reports are byte-identical to the pre-policy system; the
          adaptive specs ([Cost_optimal], [Learned], [Cache_budget])
          install a {!Pdht_policy.Selector} that gates insertions and
          sets per-key leases, and the report gains its [policy]
          summary.  Only active under [Partial_index]. *)
  sample_every : float;        (** time-series bucket width, seconds *)
  sizing_slack : float;
      (** headroom multiplier on the model's [numActivePeers]: replica
          groups and key loads are hash-balanced only in expectation, so
          deployments over-provision (default 1.5) *)
  eviction : Pdht_dht.Storage.eviction;
      (** index-cache victim policy (default [Evict_soonest_expiry]) *)
  net : Pdht_net.Config.t option;
      (** network model for the query path (default [None] =
          instantaneous, reliable messages — bit-identical to the
          pre-network behaviour).  When set, per-hop latency, loss,
          partitions and RPC timeout/retry semantics apply, and the
          report gains its [net] summary. *)
  fault : Pdht_fault.Plan.t option;
      (** crash-fault schedule (default [None] = no fault machinery at
          all — bit-identical to the pre-fault behaviour, same
          dedicated-RNG-split discipline as [net]).  When set, the plan
          is driven against the run: crash-stop peers lose their index
          cache, content replicas and routing state; optional
          anti-entropy repair and invariant checking run periodically;
          and the report gains its [fault] summary. *)
  timeline_window : float option;
      (** windowed-timeline width in simulated seconds (default [None]
          = no timeline, report structurally unchanged).  When set, the
          run feeds per-window query/hit/answer counts, message costs
          and latency sums (plus an indexed-keys gauge at sample ticks)
          into a {!Pdht_obs.Timeline}, and the report gains its
          [timeline] summary. *)
  bucket_refresh : float option;
      (** live Kademlia routing tables (default [None] = the frozen
          build-time snapshot — byte-identical to the historical
          behaviour).  When set to a period in seconds, the Kademlia
          backend's k-buckets become mutable and self-healing
          (replacement caches, liveness probing on contact, eviction of
          confirmed-dead entries) and the maintenance process runs a
          bucket-refresh sweep over stale ranges every period.  Probe
          ladders cost [Pdht_net.Config.attempts] messages per dead
          peer (the default config's when [net] is off); everything is
          charged to the [Maintenance] account.  [Invalid_argument]
          with any other backend. *)
}

val default_options : options

(** Builders for {!options}, so call sites name only what they change
    and survive future field additions. *)
module Options : sig
  val make :
    ?repl:int ->
    ?stor:int ->
    ?backend:Pdht_dht.Dht.backend ->
    ?env:float ->
    ?selection_policy:Pdht_policy.Selector.spec ->
    ?sample_every:float ->
    ?sizing_slack:float ->
    ?eviction:Pdht_dht.Storage.eviction ->
    ?net:Pdht_net.Config.t ->
    ?fault:Pdht_fault.Plan.t ->
    ?timeline_window:float ->
    ?bucket_refresh:float ->
    unit ->
    options
  (** Unnamed arguments take their {!default_options} value. *)

  val with_repl : int -> options -> options
  val with_stor : int -> options -> options
  val with_backend : Pdht_dht.Dht.backend -> options -> options
  val with_selection_policy : Pdht_policy.Selector.spec -> options -> options
  val with_sample_every : float -> options -> options
  val with_eviction : Pdht_dht.Storage.eviction -> options -> options
  val with_net : Pdht_net.Config.t -> options -> options
  val without_net : options -> options
  val with_fault : Pdht_fault.Plan.t -> options -> options
  val without_fault : options -> options
  val with_timeline_window : float -> options -> options
  val without_timeline : options -> options
  val with_bucket_refresh : float -> options -> options
  val without_bucket_refresh : options -> options
end

type sample = {
  time : float;
  hit_rate : float;          (** fraction of queries answered from the
                                 index in this bucket *)
  messages : int;            (** all messages in this bucket *)
  indexed_keys : int;        (** empirical Eq. 15 at the sample instant *)
  key_ttl : float;           (** TTL in force (changes when adaptive) *)
  queries : int;             (** queries issued in this bucket *)
  answer_rate : float;       (** answered (index or broadcast) / queries
                                 in this bucket; 0. for an idle bucket *)
}

(** The [net.*] instruments in report form; present exactly when
    [options.net] was set.  Latency quantiles come from the
    [net.query_latency_ms] histogram (recorded in milliseconds,
    reported here in end-to-end virtual seconds per query); the
    counters are whole-run totals. *)
type net_summary = {
  messages_sent : int;
  messages_dropped : int;
  messages_retried : int;
  messages_timed_out : int;
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
}

(** Fault-injection outcome, present exactly when [options.fault] was
    set.  Counter fields are whole-run totals from the [fault.*]
    instruments; the recovery triple is read off a per-bucket service
    rate — the bucket hit rate (empirical pIndxd) for index strategies,
    since crashes damage the index while the broadcast fallback masks
    them in the plain answer rate, or the answer rate under [No_index].
    [pre_fault_rate] is the mean over the later half of the
    query-carrying buckets up to the first fault — the steady state,
    skipping index warm-up (1.0 when no such bucket exists), [dip_rate]
    the post-fault minimum, and [time_to_recover] the seconds from the
    first fault until the first bucket whose rate is back within 5% of
    the baseline ([None] = never recovered within the run). *)
type fault_summary = {
  crashes : int;
  recoveries : int;
  entries_lost : int;        (** index entries destroyed by crashes *)
  content_lost : int;        (** content replicas dropped by crashes *)
  repair_passes : int;
  repair_messages : int;
  repaired_items : int;      (** content items re-replicated *)
  repaired_entries : int;    (** index entries re-copied *)
  pre_fault_rate : float;
  dip_rate : float;
  time_to_recover : float option;
}

type report = {
  scenario_name : string;
  strategy : Strategy.t;
  duration : float;
  active_members : int;
  key_ttl : float;            (** TTL at the end of the run *)
  queries : int;
  answered : int;
  from_index : int;
  from_broadcast : int;
  failed : int;
  total_messages : int;
  messages_by_category : (Pdht_sim.Metrics.category * int) list;
  messages_per_second : float;
  avg_messages_per_query : float;
  hit_rate : float;           (** from_index / queries *)
  indexed_keys_final : int;
  query_cost_p50 : float;     (** median messages per query *)
  query_cost_p95 : float;
  query_cost_p99 : float;
  c_s_indx_model : float;     (** Eq. 7 from the analytical model *)
  c_s_indx_measured : float;  (** mean [index.search_cost] (0 if unused) *)
  c_s_unstr_model : float;    (** Eq. 6 from the analytical model *)
  c_s_unstr_measured : float; (** mean [broadcast.reach] (0 if unused) *)
  histograms : (string * Pdht_obs.Histogram.summary) list;
      (** every registry histogram with at least one observation,
          name-sorted — except [engine.sim_seconds_per_wall_second],
          which measures host speed rather than the simulation and
          would break the determinism contract below *)
  net : net_summary option;   (** see {!net_summary} *)
  fault : fault_summary option; (** see {!fault_summary} *)
  policy : Pdht_policy.Selector.summary option;
      (** selection-policy snapshot; present exactly when the run
          installed a selector (an adaptive [selection_policy] under
          [Partial_index]), [None] for [Ttl _] runs *)
  timeline : Pdht_obs.Timeline.summary option;
      (** windowed time series; present exactly when
          [options.timeline_window] was set *)
  samples : sample list;      (** chronological *)
}

val derive_key_ttl : Pdht_work.Scenario.t -> options -> float
(** The TTL a run starts with: [Ttl (Fixed ttl)] verbatim, otherwise
    (every other policy) [1/fMin] from the analytical model
    instantiated with the scenario's parameters (Zipf alpha
    approximated as 1.0 for non-Zipf distributions). *)

val plan_active_members : Pdht_work.Scenario.t -> options -> Strategy.t -> int
(** DHT size for a run: enough members for the full index under
    [Index_all], the model's Eq.-15 expectation under [Partial_index],
    and a minimal 2-member ring under [No_index] (no DHT traffic is
    generated there). *)

(** External execution driver for the protocol's state-bearing side
    effects: [store] replaces {!Pdht}'s in-process index-store access
    (the multi-process conductor passes closures that cross the wire to
    the worker owning each member's shard), and [attach] receives the
    built {!Pdht.t} once — before any event runs — to install real
    transport hooks via {!Pdht.set_transport}.  Mutually exclusive with
    [options.net]: the simulated network model and a real transport are
    two implementations of the same delivery seam. *)
type driver = { store : Pdht.store_ops; attach : Pdht.t -> unit }

val run :
  ?obs:Pdht_obs.Context.t ->
  ?driver:driver ->
  Pdht_work.Scenario.t ->
  Strategy.t ->
  options ->
  report
(** Execute the simulation.  Deterministic in [scenario.seed].
    Without [?driver] the exact in-process creation path runs —
    byte-identical reports to builds that predate the driver seam.

    [obs] (default: fresh, tracer disabled) collects the run's metrics
    and trace events: everything {!Pdht.create} registers, plus engine
    instrumentation ([engine.*]), churn telemetry ([churn.*]) and
    maintenance telemetry ([maintenance.*]).  Pass a context with an
    enabled tracer to capture typed events; periodic [Engine] snapshot
    events are emitted every [options.sample_every] sim-seconds (and
    the tracer's registered flushers run on the same schedule, also
    when only flushers are registered).  Sampled operations carry
    causal span ids — see {!Pdht.create} and {!Pdht_obs.Span}. *)

val pp_report : Format.formatter -> report -> unit
