(** The query-adaptive partial distributed hash table.

    This is the paper's system (Section 5) assembled from the
    substrates: a population of peers connected by an unstructured
    Gnutella-like overlay, of which [active_members] also maintain a
    structured DHT used as a partial index.  Query handling follows the
    selection algorithm exactly:

    + search the index: route to a responsible peer; if its cache
      misses, flood the key's replica subnetwork (Eq. 16);
    + on an index miss, broadcast-search the unstructured network;
    + insert the resolved key-value pair into the index with expiration
      time [key_ttl], reset whenever a stored key is queried — so keys
      that are not queried for [key_ttl] seconds fall out of the index.

    The same machine also runs the two baselines ({!Strategy.Index_all},
    {!Strategy.No_index}) so that strategies can be compared on
    identical workloads with identical message accounting. *)

type t

(** Pluggable index-store access, keyed by workload key index.  The
    default implementation (no [?store] at {!create}) operates on the
    in-process per-member [Storage.t] array; the multi-process driver
    substitutes closures that reach whichever worker process owns
    [peer]'s shard over the wire.  All reads and writes the protocol
    performs against member caches flow through this record, so a
    remote store is authoritative — including LRU/expiry side effects.
    [repair_put] is the anti-entropy copy (same write as [put], but
    carrying a remaining rather than renewed TTL), kept separate so
    drivers can account repair traffic apart. *)
type store_ops = {
  get_and_refresh : peer:int -> key_index:int -> now:float -> ttl:float -> int option;
  put : peer:int -> key_index:int -> value:int -> now:float -> ttl:float -> unit;
  repair_put : peer:int -> key_index:int -> value:int -> now:float -> ttl:float -> unit;
  mem : peer:int -> key_index:int -> now:float -> bool;
  get : peer:int -> key_index:int -> now:float -> int option;
  expiry : peer:int -> key_index:int -> float option;
  clear : peer:int -> int;
  live_count : peer:int -> now:float -> int;
}

val create :
  ?obs:Pdht_obs.Context.t ->
  ?net:Pdht_net.Hook.t ->
  ?store:store_ops ->
  Pdht_util.Rng.t ->
  Config.t ->
  t
(** Build topology, DHT, content placement and (for [Index_all]) the
    pre-loaded index.  Deterministic in the generator state.

    [obs] (default: a fresh disabled context) receives all telemetry:
    per-backend lookup histograms [dht.hops.<backend>] and
    [dht.lookup_messages.<backend>], the [query.cost],
    [broadcast.reach] and [gossip.rounds] histograms, counters
    [index.hit]/[index.miss]/[index.ttl_reset]/[index.insert]/
    [dht.lookup_failures]/[broadcast.searches]/[broadcast.found]/
    [gossip.spreads], the per-category [messages.*] counters teed from
    {!Pdht_sim.Metrics}, and — when the tracer is enabled — typed
    [Query]/[Dht_lookup]/[Replica_flood]/[Broadcast]/[Index_insert]/
    [Ttl_reset]/[Gossip] events.  Operations the tracer samples (see
    {!Pdht_obs.Tracer.set_sampling}) additionally carry causal span
    ids: the [Query] (or [Gossip], for updates) event is the root and
    every step — entry contact, DHT routing, replica flood,
    unstructured wave, re-insertion, per-attempt network events —
    parents under it, forming a tree whose leaf message counts sum to
    the root's total.

    [net] (default: none — reliable, instantaneous messages, bit-for-bit
    the pre-network-model behaviour) applies the network model to the
    query path: every DHT forward hop and the entry-point contact become
    RPCs with timeout/retry/backoff, broadcast messages face the loss
    coin, sequential hop and wave latencies accumulate into a per-query
    virtual clock recorded as [net.query_latency_ms], and delivery failures
    degrade a lookup to the unstructured miss path instead of raising.
    The hook draws only from its own RNG stream, so all other
    randomness is unperturbed.  Replica-subnetwork floods, gossip and
    maintenance probes stay instantaneous (documented simplification —
    they are background traffic, not query-path latency). *)

val config : t -> Config.t
val metrics : t -> Pdht_sim.Metrics.t

(** The observability context telemetry is recorded into. *)
val obs : t -> Pdht_obs.Context.t
val key_of_index : t -> int -> Pdht_util.Bitkey.t
(** The DHT key for workload key [i] (0-based, [< keys]). *)

val set_online : t -> (int -> bool) -> unit
(** Wire a churn model in; default: everyone always online. *)

val set_transport : t -> rpc:(span:int option -> src:int -> dst:int -> bool) ->
  cast:(span:int option -> src:int -> dst:int -> bool) -> unit
(** Install real-transport delivery hooks: [rpc] fires once per DHT
    forward hop and entry contact (its return deciding delivery, as
    with the simulated network model), [cast] once per broadcast
    message.  For the multi-process driver these materialise the hop as
    a wire frame to the owning worker.  @raise Invalid_argument when a
    simulated network model is already attached — the two delivery
    paths are mutually exclusive. *)

val set_key_ttl : t -> float -> unit
(** Change the TTL used for subsequent insertions and refreshes (the
    self-tuning extension's knob).  Only meaningful under
    [Partial_index].  @raise Invalid_argument for non-positive TTLs. *)

val key_ttl : t -> float

(** Selection-policy hook: gates index insertions and sets per-key
    expiration leases.  [admit] is consulted once per would-be
    re-insertion (after a successful broadcast); a rejected key costs
    zero messages.  [ttl_for] supplies the lease used both when
    inserting and when a query hit refreshes a stored key. *)
type policy = Pdht_proto.Selection.policy = {
  admit : now:float -> key_index:int -> bool;
  ttl_for : now:float -> key_index:int -> float;
}

val set_policy : t -> policy -> unit
(** Install a selection policy.  Without one (the default), every key
    is admitted with lease {!key_ttl} — the paper's behaviour, on the
    exact pre-policy code path. *)

val clear_policy : t -> unit

type answer_source = From_index | From_broadcast | Not_found

type query_result = {
  source : answer_source;
  provider : int option;       (** peer that supplied the value *)
  index_messages : int;        (** DHT routing traffic this query *)
  replica_flood_messages : int;(** replica-subnetwork traffic *)
  broadcast_messages : int;    (** unstructured-search traffic *)
  insert_messages : int;       (** traffic spent re-inserting the key *)
}

val total_messages : query_result -> int

val query : t -> now:float -> peer:int -> key_index:int -> query_result
(** Execute one query per the configured strategy.  An offline [peer]
    yields [Not_found] with zero cost (it cannot ask). *)

val update_key : t -> Pdht_util.Rng.t -> now:float -> key_index:int -> int
(** Proactively update one key in the index (insert at a responsible
    peer, gossip among replicas — Eq. 9's operation).  Returns messages
    spent and charges them to [Update_gossip].  No-op (0) under
    [No_index]; under [Partial_index] the paper drops proactive updates
    (Section 5.1), so it is a no-op there too. *)

val rejoin_sync : t -> Pdht_util.Rng.t -> now:float -> peer:int -> int
(** Anti-entropy on rejoin ([DaHa03]: "Peers that are offline and go
    online again pull for missed updates").  Under [Index_all], a DHT
    member coming back online pulls once per replica subnetwork it
    participates in — one request plus one response per key it stores —
    charged to [Update_gossip].  Returns the messages spent; 0 for
    non-members, for reactive strategies (whose entries simply expire),
    and for [No_index]. *)

val indexed_key_count : t -> now:float -> int
(** Number of workload keys currently live in at least one replica's
    index cache — the empirical Eq. 15. *)

val crash_peer : t -> peer:int -> int * int
(** Crash-stop state destruction for one peer: a DHT member loses its
    whole index cache and routing state; every peer loses its content
    replicas (dropped from the replication table).  Returns
    (index entries lost, content items lost).  Does not touch the
    liveness predicate — the caller owns that. *)

val recover_peer : t -> Pdht_util.Rng.t -> peer:int -> int
(** Rejoin *empty*: a member rebuilds its routing table via its
    backend's join protocol (messages returned and charged to
    [Maintenance]); the index cache stays empty until repair or organic
    re-insertion.  Free for non-members. *)

val repair_pass :
  ?span:int -> t -> Pdht_util.Rng.t -> now:float -> min_fraction:float -> int * int * int
(** One anti-entropy self-healing pass: top content items whose online
    replica count fell below [ceil (min_fraction *. repl)] back up to
    [repl] (copying from a surviving online replica), and re-copy index
    entries — with their *remaining* TTL, so repair never extends a
    key's life — from surviving group members to online members that
    lost them.  Returns (messages, content items repaired, index
    entries copied); messages are charged to [Maintenance].  [span] is
    the repair root span id (from the fault injector's trace event):
    when tracing, the pass emits a summary [Maintenance] event
    ([detail = "repair"]) parented under it.
    @raise Invalid_argument unless [min_fraction] is in (0, 1]. *)

val store_live_count : t -> now:float -> peer:int -> int
(** Live index-cache entries of a DHT member (invariant checking).
    @raise Invalid_argument for non-members. *)

val index_hit_probe : t -> now:float -> key_index:int -> bool
(** Would an index search for this key succeed right now?  (Read-only:
    no TTL refresh, no message charges.)  Used by experiments to measure
    the empirical Eq. 14 without perturbing the system. *)

val active_members : t -> int
val content_replicas : t -> key_index:int -> int array

val dht : t -> Pdht_dht.Dht.t
(** The underlying structured overlay — exposed for routing-table
    maintenance wiring and ablation experiments. *)

val online_fn : t -> int -> bool
(** The current liveness predicate (identity of {!set_online}'s last
    argument). *)
