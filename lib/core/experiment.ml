module Scenario = Pdht_work.Scenario
module Pool = Pdht_runner.Pool

(* Every System-level experiment below is one [Run_spec.t list] handed
   to [Runner.run_all ?jobs]; the row builders only reshape reports.
   Experiments whose rows need every report to exist treat a failed
   task as fatal ([Run_result.reports_exn]); [replicate_seeds] instead
   reports failures per spec. *)
let run_specs ?jobs specs = Run_result.reports_exn (Runner.run_all ?jobs specs)

type face_off_row = {
  f_qry : float;
  sim_index_all : float;
  sim_no_index : float;
  sim_partial : float;
  model_index_all : float;
  model_no_index : float;
  model_partial : float;
  sim_hit_rate : float;
  model_p_indexed_ttl : float;
}

let model_params_of scenario (options : System.options) =
  let alpha =
    match scenario.Scenario.distribution with
    | Scenario.Zipf a -> a
    | Scenario.Uniform | Scenario.Hot_cold _ -> 1.0
  in
  {
    Pdht_model.Params.num_peers = scenario.Scenario.num_peers;
    keys = scenario.Scenario.keys;
    stor = options.System.stor;
    repl = options.System.repl;
    alpha;
    f_qry = scenario.Scenario.f_qry;
    f_upd =
      (match scenario.Scenario.update_mean_lifetime with
      | None -> 0.
      | Some l -> 1. /. l);
    env = (match options.System.env with Some e -> e | None -> 1. /. 14.);
    dup = 1.8;
    dup2 = 1.8;
  }

let face_off ?jobs ?(options = System.default_options) ~scenario ~frequencies () =
  let specs =
    List.concat_map
      (fun f_qry ->
        let scenario = { scenario with Scenario.f_qry } in
        let key_ttl = System.derive_key_ttl scenario options in
        let spec = Run_spec.make ~options scenario in
        (* All three strategies share the spec's (seed, task_id), so
           each frequency is a paired comparison on one workload. *)
        [ Run_spec.with_strategy Strategy.Index_all spec;
          Run_spec.with_strategy Strategy.No_index spec;
          Run_spec.with_strategy (Strategy.Partial_index { key_ttl }) spec ])
      frequencies
  in
  let reports = run_specs ?jobs specs in
  let rec rows frequencies reports =
    match (frequencies, reports) with
    | [], [] -> []
    | f_qry :: frequencies, all :: none :: partial :: reports ->
        let scenario = { scenario with Scenario.f_qry } in
        let params = model_params_of scenario options in
        let key_ttl = System.derive_key_ttl scenario options in
        let ttl_state = Pdht_model.Strategies.ttl_state params ~key_ttl in
        {
          f_qry;
          sim_index_all = all.System.messages_per_second;
          sim_no_index = none.System.messages_per_second;
          sim_partial = partial.System.messages_per_second;
          model_index_all =
            (Pdht_model.Strategies.index_all params).Pdht_model.Strategies.total;
          model_no_index =
            (Pdht_model.Strategies.no_index params).Pdht_model.Strategies.total;
          model_partial =
            (Pdht_model.Strategies.partial_selection params ~key_ttl)
              .Pdht_model.Strategies.total;
          sim_hit_rate = partial.System.hit_rate;
          model_p_indexed_ttl = ttl_state.Pdht_model.Strategies.p_indexed_ttl;
        }
        :: rows frequencies reports
    | _ -> assert false
  in
  rows frequencies reports

type adaptivity_result = {
  shift_time : float;
  before_hit_rate : float;
  dip_hit_rate : float;
  after_hit_rate : float;
  recovery_seconds : float option;
  series : System.sample list;
}

let mean_hit_rate (samples : System.sample list) =
  match samples with
  | [] -> 0.
  | _ ->
      List.fold_left (fun acc (s : System.sample) -> acc +. s.System.hit_rate) 0. samples
      /. float_of_int (List.length samples)

let adaptivity ?jobs ?(options = System.default_options) ~scenario () =
  let shift_time =
    match scenario.Scenario.shift with
    | Scenario.Swap_halves_at t -> t
    | Scenario.Rotate { times = t :: _; _ } -> t
    | Scenario.Rotate { times = []; _ } | Scenario.No_shift ->
        invalid_arg "Experiment.adaptivity: scenario has no popularity shift"
  in
  let report =
    match run_specs ?jobs [ Run_spec.make ~options scenario ] with
    | [ r ] -> r
    | _ -> assert false
  in
  let samples = report.System.samples in
  let before = List.filter (fun s -> s.System.time <= shift_time) samples in
  let after = List.filter (fun s -> s.System.time > shift_time) samples in
  let before_hit_rate = mean_hit_rate before in
  (* Steady state after: the last quarter of the run. *)
  let tail_start = scenario.Scenario.duration -. (scenario.Scenario.duration -. shift_time) /. 4. in
  let after_hit_rate =
    mean_hit_rate (List.filter (fun s -> s.System.time >= tail_start) samples)
  in
  let dip_hit_rate =
    List.fold_left (fun acc (s : System.sample) -> Float.min acc s.System.hit_rate) 1. after
  in
  let recovery_threshold = 0.8 *. before_hit_rate in
  let recovery_seconds =
    let rec scan (samples : System.sample list) =
      match samples with
      | [] -> None
      | s :: rest ->
          if s.System.hit_rate >= recovery_threshold then
            Some (s.System.time -. shift_time)
          else scan rest
    in
    scan after
  in
  { shift_time; before_hit_rate; dip_hit_rate; after_hit_rate; recovery_seconds;
    series = samples }

type search_ablation_row = {
  mechanism : string;
  mean_messages : float;
  success_rate : float;
  empirical_dup : float;
}

let search_ablation ?jobs ~seed ~peers ~repl ~trials () =
  if trials < 1 then invalid_arg "Experiment.search_ablation: need >= 1 trial";
  (* Shared, read-only fixture: topology and placement come from the
     base seed so every mechanism searches the same network. *)
  let rng = Pdht_util.Rng.create ~seed in
  let topology = Pdht_overlay.Topology.random_regularish rng ~peers ~degree:4 in
  let replication = Pdht_overlay.Replication.create ~peers in
  let items = 100 in
  for item = 0 to items - 1 do
    Pdht_overlay.Replication.place replication rng ~item ~repl
  done;
  let online _ = true in
  let run_mechanism task_id mechanism =
    (* Each mechanism draws its trials from its own derived stream, so
       the tasks are order- and domain-independent. *)
    let rng = Pdht_util.Rng.of_stream ~seed ~stream:task_id in
    let messages = ref 0 in
    let successes = ref 0 in
    let reached = ref 0 in
    for _ = 1 to trials do
      let item = Pdht_util.Rng.int rng items in
      let source = Pdht_util.Rng.int rng peers in
      let holds p = Pdht_overlay.Replication.holds replication ~peer:p ~item in
      match mechanism with
      | "flooding" ->
          let r = Pdht_overlay.Flood.search topology ~online ~holds ~source ~ttl:8 in
          messages := !messages + r.Pdht_overlay.Flood.messages;
          reached := !reached + r.Pdht_overlay.Flood.peers_reached;
          if r.Pdht_overlay.Flood.found_at <> None then incr successes
      | "expanding-ring" ->
          let r =
            Pdht_overlay.Expanding_ring.search topology ~online ~holds ~source
              ~initial_ttl:1 ~growth:2 ~max_ttl:8
          in
          messages := !messages + r.Pdht_overlay.Expanding_ring.messages;
          (* Rings revisit inner peers; count the final coverage as a
             flood of the last TTL would reach. *)
          reached := !reached + 1;
          if r.Pdht_overlay.Expanding_ring.found_at <> None then incr successes
      | _ ->
          let r =
            Pdht_overlay.Random_walk.search topology rng ~online ~holds ~source ~walkers:16
              ~max_steps:(2 * peers) ~check_every:4
          in
          messages := !messages + r.Pdht_overlay.Random_walk.messages;
          reached := !reached + r.Pdht_overlay.Random_walk.distinct_visited;
          if r.Pdht_overlay.Random_walk.found_at <> None then incr successes
    done;
    {
      mechanism;
      mean_messages = float_of_int !messages /. float_of_int trials;
      success_rate = float_of_int !successes /. float_of_int trials;
      empirical_dup =
        (if !reached = 0 || String.equal mechanism "expanding-ring" then Float.nan
         else float_of_int !messages /. float_of_int !reached);
    }
  in
  Pool.map_list ?jobs ~f:run_mechanism [ "flooding"; "expanding-ring"; "random-walks" ]

type backend_ablation_row = {
  backend : string;
  mean_lookup_messages : float;
  mean_hops : float;
  model_expectation : float;
  success_rate : float;
}

let backend_ablation ?jobs ~seed ~members ~trials ~offline_fraction () =
  if trials < 1 then invalid_arg "Experiment.backend_ablation: need >= 1 trial";
  if offline_fraction < 0. || offline_fraction >= 1. then
    invalid_arg "Experiment.backend_ablation: offline_fraction in [0,1)";
  let run backend label =
    (* Every backend re-creates the RNG from the same seed: a paired
       comparison on identical outage patterns and key draws. *)
    let rng = Pdht_util.Rng.create ~seed in
    (* leaf_size 4 gives P-Grid its natural replica groups; singleton
       leaves cannot survive churn (Chord has no equivalent knob — its
       fault tolerance comes from successor responsibility). *)
    let dht = Pdht_dht.Dht.create rng ~backend ~members ~leaf_size:4 () in
    let offline = Array.init members (fun _ -> Pdht_util.Rng.unit_float rng < offline_fraction) in
    let online p = not offline.(p) in
    let messages = ref 0 in
    let hops = ref 0 in
    let successes = ref 0 in
    let attempted = ref 0 in
    for _ = 1 to trials do
      let source = Pdht_util.Rng.int rng members in
      if online source then begin
        incr attempted;
        let key = Pdht_util.Bitkey.random rng in
        let o = Pdht_dht.Dht.lookup dht rng ~online ~source ~key in
        messages := !messages + o.Pdht_dht.Dht.messages;
        hops := !hops + o.Pdht_dht.Dht.hops;
        if o.Pdht_dht.Dht.responsible <> None then incr successes
      end
    done;
    let attempted_f = float_of_int (max 1 !attempted) in
    {
      backend = label;
      mean_lookup_messages = float_of_int !messages /. attempted_f;
      mean_hops = float_of_int !hops /. attempted_f;
      model_expectation = Pdht_dht.Chord.expected_lookup_messages ~members;
      success_rate = float_of_int !successes /. attempted_f;
    }
  in
  Pool.map_list ?jobs
    ~f:(fun _ backend -> run backend (Pdht_dht.Dht.backend_label backend))
    [ Pdht_dht.Dht.Chord_backend; Pdht_dht.Dht.Pgrid_backend;
      Pdht_dht.Dht.Kademlia_backend; Pdht_dht.Dht.Pastry_backend ]

type churn_row = {
  availability : float;
  hit_rate : float;
  answer_rate : float;
  messages_per_second : float;
  indexed_keys : int;
}

let churn_sensitivity ?jobs ?(options = System.default_options) ~scenario ~availabilities
    () =
  let spec_of availability =
    if availability <= 0. || availability > 1. then
      invalid_arg "Experiment.churn_sensitivity: availability outside (0,1]";
    let scenario =
      {
        scenario with
        Scenario.churn =
          (if availability >= 1. then Scenario.No_churn
           else
             let mean_uptime = 600. in
             (* availability = up / (up + down)  =>  down = up (1-a)/a *)
             let mean_downtime = mean_uptime *. (1. -. availability) /. availability in
             Scenario.Exponential_sessions
               { mean_uptime; mean_downtime; initially_online_fraction = availability });
      }
    in
    let key_ttl = System.derive_key_ttl scenario options in
    Run_spec.make ~options
      ~tag:(Printf.sprintf "%s avail=%g" scenario.Scenario.name availability)
      ~strategy:(Strategy.Partial_index { key_ttl })
      scenario
  in
  let reports = run_specs ?jobs (List.map spec_of availabilities) in
  List.map2
    (fun availability report ->
      {
        availability;
        hit_rate = report.System.hit_rate;
        answer_rate =
          float_of_int report.System.answered /. float_of_int (max 1 report.System.queries);
        messages_per_second = report.System.messages_per_second;
        indexed_keys = report.System.indexed_keys_final;
      })
    availabilities reports

type churn_routing_row = {
  mean_session : float;
  arm : string;
  attempted : int;
  success_rate : float;
  mean_hops : float;
  stale_route_rate : float;
  maintenance_messages : int;
  crtn : float;
}

(* E26: sustained-churn routing race — living vs frozen k-buckets.

   A raw-Kademlia experiment in the style of [backend_ablation]: no
   PDHT layer, so routing quality is isolated from index behaviour.
   Per decade of mean session length, three arms replay the same
   paired-seed table build, churn trajectory and workload:

   - [baseline]: no churn, frozen tables — the success ceiling;
   - [live]: heavy-tailed (Weibull shape 0.6) session churn against
     living k-buckets, maintained at the paper's one probe per peer
     per second plus a periodic bucket-refresh sweep; every probe
     ladder is counted;
   - [frozen]: the same churn against the static tables, with a probe
     budget allotted tick by tick from the live arm's *measured* total
     — equal maintenance spend, so the race compares disciplines, not
     budgets.

   Maintenance totals divided by (members x duration) give the
   per-peer-per-second routing upkeep rate — the empirical cRtn the
   analytical model only assumes (paper Section 3.3.1). *)
let churn_routing ?jobs ~seed ~members ~duration ~mean_sessions () =
  if members < 8 then invalid_arg "Experiment.churn_routing: need >= 8 members";
  if not (duration > 0. && Float.is_finite duration) then
    invalid_arg "Experiment.churn_routing: duration must be positive";
  let module K = Pdht_dht.Kademlia in
  let module S = Pdht_dist.Session in
  let ticks = int_of_float (Float.ceil duration) in
  let lookups_per_tick = max 1 (members / 50) in
  let refresh_every = 30 in
  let session_spec mean_session =
    {
      S.up = S.Weibull { shape = 0.6 };
      down = S.Weibull { shape = 0.6 };
      mean_uptime = mean_session;
      mean_downtime = mean_session /. 2.;
      initially_online_fraction = 2. /. 3.;
    }
  in
  let run_decade idx mean_session =
    if not (mean_session > 0. && Float.is_finite mean_session) then
      invalid_arg "Experiment.churn_routing: mean sessions must be positive";
    let spec = session_spec mean_session in
    (* Per-decade deterministic sub-seeds: every arm rebuilds the same
       table and replays the same churn trajectory and query stream. *)
    let sub role = Pdht_util.Rng.derive_seed ~seed ~stream:((idx * 8) + role) in
    (* [churned = false] -> the no-churn baseline (no maintenance);
       [budget = None]  -> living tables at 1 probe/peer/s;
       [budget = Some total] -> frozen tables on that equalised spend. *)
    let run_arm ~arm ~churned ~budget =
      let build_rng = Pdht_util.Rng.create ~seed:(sub 0) in
      let churn_rng = Pdht_util.Rng.create ~seed:(sub 1) in
      (* Sources and keys come from [work_rng] only; the lookup's own
         internal draws use a separate stream, so arms that disagree on
         routing state still replay the identical query sequence. *)
      let work_rng = Pdht_util.Rng.create ~seed:(sub 2) in
      let maint_rng = Pdht_util.Rng.create ~seed:(sub 3) in
      let route_rng = Pdht_util.Rng.create ~seed:(sub 4) in
      let dht = K.create build_rng ~members ~bucket_size:8 () in
      if churned && budget = None then K.enable_live_routing dht;
      let online_now = Array.make members true in
      let next_toggle = Array.make members Float.infinity in
      let draw_session p =
        if online_now.(p) then S.draw churn_rng spec.S.up ~mean:spec.S.mean_uptime
        else S.draw churn_rng spec.S.down ~mean:spec.S.mean_downtime
      in
      if churned then
        for p = 0 to members - 1 do
          online_now.(p) <-
            Pdht_util.Rng.bernoulli churn_rng ~p:spec.S.initially_online_fraction;
          next_toggle.(p) <- draw_session p
        done;
      let online p = online_now.(p) in
      let attempted = ref 0 and successes = ref 0 and hops = ref 0 in
      let maintenance = ref 0 in
      for tick = 0 to ticks - 1 do
        let now = float_of_int (tick + 1) in
        if churned then
          for p = 0 to members - 1 do
            while next_toggle.(p) <= now do
              let due = next_toggle.(p) in
              online_now.(p) <- not online_now.(p);
              next_toggle.(p) <- due +. draw_session p
            done
          done;
        (match budget with
        | None ->
            if churned then begin
              for p = 0 to members - 1 do
                if online_now.(p) then
                  maintenance :=
                    !maintenance + K.probe_and_repair dht maint_rng ~online ~peer:p ~probes:1
              done;
              if (tick + 1) mod refresh_every = 0 then
                maintenance := !maintenance + K.refresh_sweep dht maint_rng ~online
            end
        | Some total ->
            (* Spend the equalised total linearly: by the end of tick k
               the arm has sent (k+1)/ticks of it, one probe at a time
               round-robin over the online members. *)
            let due = total * (tick + 1) / ticks in
            let owed = ref (due - !maintenance) in
            let p = ref 0 and scanned = ref 0 in
            while !owed > 0 && !scanned < 4 * members do
              if online_now.(!p) then begin
                let sent = K.probe_and_repair dht maint_rng ~online ~peer:!p ~probes:1 in
                maintenance := !maintenance + sent;
                owed := !owed - sent
              end;
              incr scanned;
              p := (!p + 1) mod members
            done);
        for _ = 1 to lookups_per_tick do
          let source = Pdht_util.Rng.int work_rng members in
          let key = Pdht_util.Bitkey.random work_rng in
          if online_now.(source) then begin
            incr attempted;
            let o = K.lookup dht route_rng ~online ~source ~key in
            hops := !hops + o.K.hops;
            if o.K.responsible <> None then incr successes
          end
        done
      done;
      let contacts, dead = K.contact_stats dht in
      let attempted_f = float_of_int (max 1 !attempted) in
      {
        mean_session;
        arm;
        attempted = !attempted;
        success_rate = float_of_int !successes /. attempted_f;
        mean_hops = float_of_int !hops /. attempted_f;
        stale_route_rate = float_of_int dead /. float_of_int (max 1 contacts);
        maintenance_messages = !maintenance;
        crtn = float_of_int !maintenance /. (float_of_int members *. duration);
      }
    in
    let baseline = run_arm ~arm:"baseline" ~churned:false ~budget:None in
    let live = run_arm ~arm:"live" ~churned:true ~budget:None in
    let frozen =
      run_arm ~arm:"frozen" ~churned:true ~budget:(Some live.maintenance_messages)
    in
    [ baseline; live; frozen ]
  in
  List.concat (Pool.map_list ?jobs ~f:run_decade mean_sessions)

type workload_row = {
  workload : string;
  hit_rate : float;
  messages_per_second : float;
  indexed_fraction : float;
}

let workload_mix ?jobs ?(options = System.default_options) ~scenario () =
  let keys = scenario.Scenario.keys in
  let variants =
    [
      ("uniform", Scenario.Uniform);
      ("zipf(0.8)", Scenario.Zipf 0.8);
      ("zipf(1.2)", Scenario.Zipf 1.2);
      ( "hot-cold(5%,90%)",
        Scenario.Hot_cold { hot = max 1 (keys / 20); hot_mass = 0.9 } );
    ]
  in
  let spec_of (workload, distribution) =
    let scenario = { scenario with Scenario.distribution } in
    let key_ttl = System.derive_key_ttl scenario options in
    Run_spec.make ~options
      ~tag:(scenario.Scenario.name ^ "/" ^ workload)
      ~strategy:(Strategy.Partial_index { key_ttl })
      scenario
  in
  let reports = run_specs ?jobs (List.map spec_of variants) in
  List.map2
    (fun (workload, _) report ->
      {
        workload;
        hit_rate = report.System.hit_rate;
        messages_per_second = report.System.messages_per_second;
        indexed_fraction =
          float_of_int report.System.indexed_keys_final /. float_of_int keys;
      })
    variants reports

type replication_stats = {
  runs : int;
  mean_messages_per_second : float;
  sd_messages_per_second : float;
  mean_hit_rate : float;
  sd_hit_rate : float;
  failures : (string * string) list;
}

let replicate_seeds ?jobs ?(options = System.default_options) ~scenario ~strategy ~seeds
    () =
  if seeds = [] then invalid_arg "Experiment.replicate_seeds: no seeds";
  let specs =
    Run_spec.over_seeds seeds (Run_spec.make ~options ~strategy scenario)
  in
  let results = Runner.run_all ?jobs specs in
  let reports =
    List.filter_map (fun (_, outcome) -> Result.to_option outcome) results
  in
  let msgs = Array.of_list (List.map (fun r -> r.System.messages_per_second) reports) in
  let hits = Array.of_list (List.map (fun r -> r.System.hit_rate) reports) in
  {
    runs = List.length reports;
    mean_messages_per_second = Pdht_util.Stats.mean msgs;
    sd_messages_per_second = Pdht_util.Stats.stddev msgs;
    mean_hit_rate = Pdht_util.Stats.mean hits;
    sd_hit_rate = Pdht_util.Stats.stddev hits;
    failures = Run_result.failures results;
  }

type backend_system_row = {
  backend_name : string;
  hit_rate : float;
  messages_per_second : float;
  answer_rate : float;
  index_messages : int;
  replica_flood_messages : int;
}

let backend_face_off ?jobs ?(options = System.default_options) ~scenario () =
  let backends =
    [ Pdht_dht.Dht.Chord_backend; Pdht_dht.Dht.Pgrid_backend;
      Pdht_dht.Dht.Kademlia_backend; Pdht_dht.Dht.Pastry_backend ]
  in
  let spec_of backend =
    let options = System.Options.with_backend backend options in
    let key_ttl = System.derive_key_ttl scenario options in
    Run_spec.make ~options
      ~tag:(scenario.Scenario.name ^ "/" ^ Pdht_dht.Dht.backend_label backend)
      ~strategy:(Strategy.Partial_index { key_ttl })
      scenario
  in
  let reports = run_specs ?jobs (List.map spec_of backends) in
  List.map2
    (fun backend report ->
      {
        backend_name = Pdht_dht.Dht.backend_label backend;
        hit_rate = report.System.hit_rate;
        messages_per_second = report.System.messages_per_second;
        answer_rate =
          float_of_int report.System.answered /. float_of_int (max 1 report.System.queries);
        index_messages =
          List.assoc Pdht_sim.Metrics.Query_index report.System.messages_by_category;
        replica_flood_messages =
          List.assoc Pdht_sim.Metrics.Replica_flood report.System.messages_by_category;
      })
    backends reports

type diurnal_result = {
  busy_indexed_mean : float;
  calm_indexed_mean : float;
  busy_hit_rate : float;
  calm_hit_rate : float;
  series : System.sample list;
}

let diurnal ?jobs ?(options = System.default_options) ~scenario ~calm_f_qry ~period () =
  let scenario =
    {
      scenario with
      Scenario.rate = Scenario.Diurnal { calm_f_qry; period; busy_fraction = 0.5 };
    }
  in
  (* Derive the TTL from the geometric mean of the two rates so neither
     phase dominates the choice. *)
  let mid_rate = sqrt (scenario.Scenario.f_qry *. calm_f_qry) in
  let ttl_scenario = { scenario with Scenario.f_qry = mid_rate; rate = Scenario.Steady } in
  let key_ttl = System.derive_key_ttl ttl_scenario options in
  let report =
    match
      run_specs ?jobs
        [ Run_spec.make ~options ~strategy:(Strategy.Partial_index { key_ttl }) scenario ]
    with
    | [ r ] -> r
    | _ -> assert false
  in
  let phase_of (s : System.sample) =
    let p = Float.rem s.System.time period /. period in
    if p < 0.5 then `Busy else `Calm
  in
  (* Skip the first period as warm-up. *)
  let steady =
    List.filter (fun (s : System.sample) -> s.System.time > period) report.System.samples
  in
  let busy = List.filter (fun s -> phase_of s = `Busy) steady in
  let calm = List.filter (fun s -> phase_of s = `Calm) steady in
  let mean f xs =
    match xs with
    | [] -> 0.
    | _ -> List.fold_left (fun acc x -> acc +. f x) 0. xs /. float_of_int (List.length xs)
  in
  {
    busy_indexed_mean = mean (fun (s : System.sample) -> float_of_int s.System.indexed_keys) busy;
    calm_indexed_mean = mean (fun (s : System.sample) -> float_of_int s.System.indexed_keys) calm;
    busy_hit_rate = mean (fun (s : System.sample) -> s.System.hit_rate) busy;
    calm_hit_rate = mean (fun (s : System.sample) -> s.System.hit_rate) calm;
    series = report.System.samples;
  }

type eviction_row = {
  policy : string;
  hit_rate : float;
  messages_per_second : float;
}

let eviction_ablation ?jobs ?(options = System.default_options) ~scenario ~stor () =
  let policies =
    [
      ("soonest-expiry", Pdht_dht.Storage.Evict_soonest_expiry);
      ("lru", Pdht_dht.Storage.Evict_lru);
      ("random", Pdht_dht.Storage.Evict_random);
    ]
  in
  let spec_of (policy, eviction) =
    (* Starve the caches: shrink them AND under-provision the DHT so
       the sizing rule cannot compensate with more members. *)
    let options = { options with System.stor; eviction; sizing_slack = 0.4 } in
    let key_ttl = System.derive_key_ttl scenario options in
    Run_spec.make ~options
      ~tag:(scenario.Scenario.name ^ "/evict-" ^ policy)
      ~strategy:(Strategy.Partial_index { key_ttl })
      scenario
  in
  let reports = run_specs ?jobs (List.map spec_of policies) in
  List.map2
    (fun (policy, _) report ->
      {
        policy;
        hit_rate = report.System.hit_rate;
        messages_per_second = report.System.messages_per_second;
      })
    policies reports

type policy_race_row = {
  policy_label : string;
  hit_rate : float;
  messages_per_second : float;
  post_shift_cost : float;
  post_shift_hit_rate : float;
  rejected_inserts : int;
  indexed_keys_final : int;
}

(* E23: race selection policies on one workload.  Every policy gets the
   same (scenario, seed), so the comparison is paired; the post-shift
   window isolates how fast each policy re-learns the new demand.  The
   per-second message total over that window is the empirical analogue
   of the paper's Eq. 17 total cost (maintenance + index search +
   broadcast search), which is exactly what the selection policy is
   trying to minimise. *)
let policy_race ?jobs ?(options = System.default_options) ~scenario ~policies () =
  if policies = [] then invalid_arg "Experiment.policy_race: no policies";
  let shift_time =
    match scenario.Scenario.shift with
    | Scenario.Swap_halves_at t -> t
    | Scenario.Rotate { times = t :: _; _ } -> t
    | Scenario.Rotate { times = []; _ } | Scenario.No_shift -> 0.
  in
  let spec_of policy =
    let options = System.Options.with_selection_policy policy options in
    let key_ttl = System.derive_key_ttl scenario options in
    Run_spec.make ~options
      ~tag:(scenario.Scenario.name ^ "/policy-" ^ Pdht_policy.Selector.label policy)
      ~strategy:(Strategy.Partial_index { key_ttl })
      scenario
  in
  let reports = run_specs ?jobs (List.map spec_of policies) in
  List.map2
    (fun policy report ->
      let post =
        List.filter (fun (s : System.sample) -> s.System.time > shift_time)
          report.System.samples
      in
      let post_seconds =
        match post with
        | [] -> 0.
        | _ -> scenario.Scenario.duration -. shift_time
      in
      let post_messages =
        List.fold_left (fun acc (s : System.sample) -> acc + s.System.messages) 0 post
      in
      (* Query-weighted hit rate: idle buckets should not vote. *)
      let post_queries =
        List.fold_left (fun acc (s : System.sample) -> acc + s.System.queries) 0 post
      in
      let post_hits =
        List.fold_left
          (fun acc (s : System.sample) ->
            acc +. (s.System.hit_rate *. float_of_int s.System.queries))
          0. post
      in
      {
        policy_label = Pdht_policy.Selector.label policy;
        hit_rate = report.System.hit_rate;
        messages_per_second = report.System.messages_per_second;
        post_shift_cost =
          (if post_seconds > 0. then float_of_int post_messages /. post_seconds else 0.);
        post_shift_hit_rate =
          (if post_queries > 0 then post_hits /. float_of_int post_queries else 0.);
        rejected_inserts =
          (match report.System.policy with
          | Some s -> s.Pdht_policy.Selector.rejected_inserts
          | None -> 0);
        indexed_keys_final = report.System.indexed_keys_final;
      })
    policies reports

type ttl_tuning_row = {
  label : string;
  key_ttl_final : float;
  messages_per_second : float;
  hit_rate : float;
}

let ttl_tuning ?jobs ?(options = System.default_options) ~scenario ~fixed_ttls () =
  let fixed_spec ttl =
    Run_spec.make ~options
      ~tag:(Printf.sprintf "%s keyTtl=%g" scenario.Scenario.name ttl)
      ~strategy:(Strategy.Partial_index { key_ttl = ttl })
      scenario
  in
  let adaptive_spec =
    let options =
      System.Options.with_selection_policy
        (Pdht_policy.Selector.Ttl Pdht_policy.Selector.Adaptive) options
    in
    let key_ttl = System.derive_key_ttl scenario options in
    Run_spec.make ~options
      ~tag:(scenario.Scenario.name ^ "/adaptive-ttl")
      ~strategy:(Strategy.Partial_index { key_ttl })
      scenario
  in
  let labels =
    List.map (fun ttl -> Printf.sprintf "fixed keyTtl=%g" ttl) fixed_ttls
    @ [ "adaptive" ]
  in
  let reports =
    run_specs ?jobs (List.map fixed_spec fixed_ttls @ [ adaptive_spec ])
  in
  List.map2
    (fun label report ->
      {
        label;
        key_ttl_final = report.System.key_ttl;
        messages_per_second = report.System.messages_per_second;
        hit_rate = report.System.hit_rate;
      })
    labels reports

(* Representation-equivalence battery (scale discipline, DESIGN.md
   sect. 13).  A fixed set of small same-seed runs chosen so that every
   flat/SoA data-structure path introduced by the million-peer refactor
   is on some arm's hot path: all four DHT backends (Kademlia's trie
   k-NN and scratch lookup, P-Grid/Chord/Pastry over the shared
   storage), churn (routing forget/rebuild, replication remove_peer,
   storage expiry under pressure), both non-default eviction policies
   (slot-order victim scans, the Evict_random RNG draw), the pure
   broadcast path (CSR topology walks/floods) and the Index_all path
   (forever-TTL storage).  The rendered reports are pinned as a golden
   file before any representation changes; byte-identity of the battery
   is the proof that a refactor was purely representational. *)
let representation_battery ?jobs () =
  let base =
    {
      (Scenario.with_scale Scenario.news_default ~peers:200 ~keys:300) with
      Scenario.duration = 240.;
    }
  in
  let churny name =
    {
      base with
      Scenario.name;
      churn =
        Scenario.Exponential_sessions
          {
            mean_uptime = 600.;
            mean_downtime = 120.;
            initially_online_fraction = 0.9;
          };
    }
  in
  let backend b = System.Options.with_backend b System.default_options in
  let small_cache eviction = System.Options.make ~stor:10 ~eviction () in
  let specs =
    [
      Run_spec.make ~tag:"pgrid-partial" base;
      Run_spec.make ~tag:"chord-partial"
        ~options:(backend Pdht_dht.Dht.Chord_backend)
        base;
      Run_spec.make ~tag:"kademlia-partial"
        ~options:(backend Pdht_dht.Dht.Kademlia_backend)
        base;
      Run_spec.make ~tag:"pastry-partial"
        ~options:(backend Pdht_dht.Dht.Pastry_backend)
        base;
      Run_spec.make ~tag:"pgrid-index-all" ~strategy:Strategy.Index_all base;
      Run_spec.make ~tag:"pgrid-no-index" ~strategy:Strategy.No_index base;
      Run_spec.make ~tag:"pgrid-churn" (churny "news-churn");
      Run_spec.make ~tag:"kademlia-churn"
        ~options:(backend Pdht_dht.Dht.Kademlia_backend)
        (churny "news-churn");
      Run_spec.make ~tag:"pgrid-evict-random"
        ~options:(small_cache Pdht_dht.Storage.Evict_random)
        base;
      Run_spec.make ~tag:"pgrid-evict-lru"
        ~options:(small_cache Pdht_dht.Storage.Evict_lru)
        base;
    ]
  in
  let reports = run_specs ?jobs specs in
  List.map2 (fun spec report -> (spec.Run_spec.tag, report)) specs reports

let render_reports rows =
  let buf = Buffer.create (1 lsl 16) in
  List.iter
    (fun (tag, report) ->
      Buffer.add_string buf ("=== " ^ tag ^ " ===\n");
      Buffer.add_string buf (Format.asprintf "%a@." System.pp_report report))
    rows;
  Buffer.contents buf
