(** Named experiments: each function returns the data behind one table
    or figure of EXPERIMENTS.md.  Pure of I/O — rendering lives in the
    bench harness.

    Every system-level experiment is a {!Run_spec.t} batch executed by
    {!Runner.run_all}: [?jobs] spreads the independent runs over that
    many domains, and any value of [jobs] returns identical rows
    (see {!Runner} for the determinism contract).  The two
    micro-ablations ([search_ablation], [backend_ablation]) sit below
    the {!System} layer but parallelize on the same pool, one derived
    RNG stream per task. *)

(** E7: simulated strategies vs the analytical model across the query
    frequency sweep. *)
type face_off_row = {
  f_qry : float;
  sim_index_all : float;       (** measured msg/s *)
  sim_no_index : float;
  sim_partial : float;
  model_index_all : float;     (** Eq. 11 at simulation scale *)
  model_no_index : float;      (** Eq. 12 *)
  model_partial : float;       (** Eq. 17 *)
  sim_hit_rate : float;        (** partial run's index hit rate *)
  model_p_indexed_ttl : float; (** Eq. 14 *)
}

val face_off :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  frequencies:float list ->
  unit ->
  face_off_row list
(** Run all three strategies at each frequency on otherwise identical
    scenarios; model columns use the same (scaled) parameters. *)

(** E6: adaptivity to a changing query distribution. *)
type adaptivity_result = {
  shift_time : float;
  before_hit_rate : float;   (** steady state before the shift *)
  dip_hit_rate : float;      (** worst bucket within the recovery window *)
  after_hit_rate : float;    (** steady state at the end *)
  recovery_seconds : float option;
      (** time from the shift until the hit rate is back within 80% of
          its pre-shift level; [None] if it never recovers in-run *)
  series : System.sample list;
}

val adaptivity :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  unit ->
  adaptivity_result
(** The scenario must contain a [Swap_halves_at] shift; queries continue
    across it and the partial index must re-learn the popular set.
    @raise Invalid_argument if the scenario has no shift. *)

(** E8a: unstructured-search mechanism ablation. *)
type search_ablation_row = {
  mechanism : string;
  mean_messages : float;
  success_rate : float;
  empirical_dup : float;
}

val search_ablation :
  ?jobs:int ->
  seed:int -> peers:int -> repl:int -> trials:int -> unit -> search_ablation_row list
(** Flooding vs expanding-ring vs k-random-walks on the same topology
    and replica placement ([LvCa02]'s three mechanisms).
    [empirical_dup] is NaN for expanding ring, whose repeated inner-ring
    coverage makes a per-peer duplication factor meaningless. *)

(** E8b: DHT backend ablation. *)
type backend_ablation_row = {
  backend : string;
  mean_lookup_messages : float;
  mean_hops : float;
  model_expectation : float;   (** Eq. 7 *)
  success_rate : float;
}

val backend_ablation :
  ?jobs:int ->
  seed:int ->
  members:int ->
  trials:int ->
  offline_fraction:float ->
  unit ->
  backend_ablation_row list
(** Lookup cost across all four structured substrates (Chord, P-Grid,
    Kademlia, Pastry), with a fraction of members knocked offline to
    exercise fault routing. *)

(** E12: robustness of the selection algorithm to churn intensity. *)
type churn_row = {
  availability : float;       (** stationary fraction of peers online *)
  hit_rate : float;
  answer_rate : float;        (** answered / queries issued by online peers *)
  messages_per_second : float;
  indexed_keys : int;
}

val churn_sensitivity :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  availabilities:float list ->
  unit ->
  churn_row list
(** One partial-strategy run per availability level (1.0 = no churn;
    others use exponential sessions with 10-minute mean uptime). *)

(** E26: sustained-churn routing race — living vs frozen k-buckets on a
    raw Kademlia substrate, one triple of rows per decade of mean
    session length. *)
type churn_routing_row = {
  mean_session : float;     (** mean online-session length, seconds *)
  arm : string;             (** "baseline" / "live" / "frozen" *)
  attempted : int;          (** lookups issued by online sources *)
  success_rate : float;
  mean_hops : float;
  stale_route_rate : float; (** dead contacts / contacts *)
  maintenance_messages : int;
  crtn : float;             (** maintenance msgs / (members x seconds) —
                                the measured per-peer upkeep rate *)
}

val churn_routing :
  ?jobs:int ->
  seed:int ->
  members:int ->
  duration:float ->
  mean_sessions:float list ->
  unit ->
  churn_routing_row list
(** Per mean session length, three paired-seed arms over an identical
    query stream: a no-churn frozen [baseline]; [live] self-healing
    k-buckets under heavy-tailed (Weibull shape 0.6, availability 2/3)
    churn, maintained at 1 probe/peer/s plus periodic bucket refresh,
    with every liveness-probe ladder counted; and [frozen] static
    tables under the same churn given the live arm's measured
    maintenance total as an equalised probe budget.  Requires
    [members >= 8] and positive [duration] / session means. *)

(** E13: how the index responds to workload shape. *)
type workload_row = {
  workload : string;
  hit_rate : float;
  messages_per_second : float;
  indexed_fraction : float;   (** indexed keys / key space at run end *)
}

val workload_mix :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  unit ->
  workload_row list
(** The same scenario under uniform, Zipf(0.8), Zipf(1.2) and hot-cold
    query distributions: flatter workloads index more keys for a lower
    hit rate — the regime where the paper says partial indexing matters
    most is the skewed one. *)

(** Statistical confidence: the same experiment across independent
    seeds. *)
type replication_stats = {
  runs : int;                  (** successful runs, <= seeds given *)
  mean_messages_per_second : float;
  sd_messages_per_second : float;
  mean_hit_rate : float;
  sd_hit_rate : float;
  failures : (string * string) list;
      (** [(tag, message)] of every run that raised; failed runs are
          excluded from the statistics instead of aborting the batch *)
}

val replicate_seeds :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  strategy:Strategy.t ->
  seeds:int list ->
  unit ->
  replication_stats
(** Mean and sample standard deviation of the headline metrics across
    seeds.  Requires a non-empty seed list.  A run that raises becomes
    an entry in [failures] rather than an exception. *)

(** E19: the whole PDHT on each structured substrate.  The paper claims
    the scheme "can be used for any of the DHT based systems"; this runs
    the full selection algorithm end-to-end over every backend. *)
type backend_system_row = {
  backend_name : string;
  hit_rate : float;
  messages_per_second : float;
  answer_rate : float;
  index_messages : int;        (** DHT routing traffic *)
  replica_flood_messages : int;(** replica-subnetwork traffic — backends
                                   trade routing cost against replica-group
                                   shape, so totals can coincide while the
                                   composition differs sharply *)
}

val backend_face_off :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  unit ->
  backend_system_row list
(** One partial-strategy run per backend on identical workloads. *)

(** E15: adaptation to changing query *frequency* (the paper's
    busy/calm day, Section 4; complements E6's distribution shift). *)
type diurnal_result = {
  busy_indexed_mean : float;  (** mean indexed keys across busy-phase samples *)
  calm_indexed_mean : float;  (** ... and across calm-phase samples *)
  busy_hit_rate : float;
  calm_hit_rate : float;
  series : System.sample list;
}

val diurnal :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  calm_f_qry:float ->
  period:float ->
  unit ->
  diurnal_result
(** Run the partial strategy under a half-busy/half-calm repeating day:
    the index must grow during busy phases and drain during calm ones —
    the time-domain analogue of Fig. 3.  The scenario's [f_qry] is the
    busy rate. *)

(** E14: cache-eviction policy under pressure. *)
type eviction_row = {
  policy : string;
  hit_rate : float;
  messages_per_second : float;
}

val eviction_ablation :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  stor:int ->
  unit ->
  eviction_row list
(** Run the partial strategy with a deliberately small per-peer cache
    ([stor]) under each eviction policy.  The paper's TTL semantics
    imply evict-soonest-expiry; the ablation measures what LRU or random
    eviction would cost instead. *)

(** E23: index-selection policy race.  One partial-strategy run per
    {!Pdht_policy.Selector.spec} on identical workloads; the post-shift
    window (everything after the scenario's first popularity shift, or
    the whole run when it has none) measures how fast each policy
    re-learns the new demand.  [post_shift_cost] is the empirical
    Eq.-17 analogue — all messages per second over that window. *)
type policy_race_row = {
  policy_label : string;       (** {!Pdht_policy.Selector.label} *)
  hit_rate : float;            (** whole-run index hit rate *)
  messages_per_second : float; (** whole-run total cost *)
  post_shift_cost : float;     (** msg/s after the first shift *)
  post_shift_hit_rate : float; (** query-weighted, after the shift *)
  rejected_inserts : int;      (** insertions the policy declined; 0 for
                                   [Ttl _] runs (no selector) *)
  indexed_keys_final : int;
}

val policy_race :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  policies:Pdht_policy.Selector.spec list ->
  unit ->
  policy_race_row list
(** Rows in [policies] order.  @raise Invalid_argument on an empty
    policy list. *)

(** Extension: adaptive-TTL controller vs fixed TTLs. *)
type ttl_tuning_row = {
  label : string;
  key_ttl_final : float;
  messages_per_second : float;
  hit_rate : float;
}

val ttl_tuning :
  ?jobs:int ->
  ?options:System.options ->
  scenario:Pdht_work.Scenario.t ->
  fixed_ttls:float list ->
  unit ->
  ttl_tuning_row list
(** One run per fixed TTL plus one adaptive run, identical workloads. *)

(** Representation-equivalence battery: a fixed set of small same-seed
    runs covering every flat/SoA data-structure path of the
    million-peer refactor (all four backends, churn, both non-default
    eviction policies, pure broadcast, [Index_all]).  Rendered with
    {!render_reports} and pinned as
    [test/golden/representation_reports.txt]; any purely
    representational change must keep the rendering byte-identical. *)
val representation_battery : ?jobs:int -> unit -> (string * System.report) list

val render_reports : (string * System.report) list -> string
(** Concatenate ["=== <tag> ===\n" ^ pp_report] per row — the exact
    bytes of the golden file. *)
