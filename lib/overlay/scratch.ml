(* Reusable per-topology search scratch.

   The visited set is a generation-stamped int array: a peer is
   "visited" when its stamp equals the current generation, so starting a
   new search is a single increment instead of an O(n) [Array.make]
   (or worse, a fresh allocation) per broadcast.  Frontier, candidate
   and walker-position buffers are preallocated flat int arrays that the
   search algorithms index directly.

   A scratch belongs to exactly one search call at a time — the searches
   in this library are synchronous, so holding one scratch per
   [Unstructured_search.t] (one per simulated system, one per domain) is
   safe.  Never share a scratch between domains. *)

type t = {
  mutable stamp : int array;
  mutable generation : int;
  mutable frontier : int array;
  mutable next_frontier : int array;
  mutable candidates : int array;
  mutable positions : int array;
}

let create () =
  {
    stamp = [||];
    generation = 0;
    frontier = [||];
    next_frontier = [||];
    candidates = [||];
    positions = [||];
  }

let ensure_peers t n =
  if Array.length t.stamp < n then begin
    t.stamp <- Array.make n 0;
    t.generation <- 0;
    t.frontier <- Array.make n 0;
    t.next_frontier <- Array.make n 0;
    t.candidates <- Array.make n 0
  end

let ensure_walkers t n =
  if Array.length t.positions < n then t.positions <- Array.make n 0

(* Start a new search: everything stamped in previous generations reads
   as unvisited.  On the (practically unreachable) generation overflow,
   wipe the stamps and restart from 1. *)
let next_generation t =
  if t.generation = max_int then begin
    Array.fill t.stamp 0 (Array.length t.stamp) 0;
    t.generation <- 0
  end;
  t.generation <- t.generation + 1;
  t.generation
