(** Expanding-ring search: iterative-deepening flooding.

    The third classic unstructured mechanism ([LvCa02] evaluates it
    beside flooding and random walks): flood with TTL 1, and if the item
    is not found, re-flood with a larger TTL, growing until a hit or the
    depth budget runs out.  Early rings are cheap and usually suffice
    for well-replicated items; the cost of re-covering inner rings on
    each restart is the mechanism's known weakness for rare items. *)

type result = {
  found_at : int option;
  rings : int;        (** flood attempts performed *)
  final_ttl : int;    (** TTL of the last attempt *)
  messages : int;     (** total across every attempt *)
  depth : int;        (** BFS levels summed over all rings — rings run
                          sequentially, so this is the search's duration
                          in per-hop latencies *)
}

val search :
  ?scratch:Scratch.t ->
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  Topology.t ->
  online:(int -> bool) ->
  holds:(int -> bool) ->
  source:int ->
  initial_ttl:int ->
  growth:int ->
  max_ttl:int ->
  result
(** Start at [initial_ttl], adding [growth] per round up to [max_ttl].
    Requires [initial_ttl >= 1], [growth >= 1], [max_ttl >=
    initial_ttl].  [scratch], [span] and [deliver] are threaded through
    to the underlying {!Flood.search} rings. *)
