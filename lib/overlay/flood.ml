type result = {
  found_at : int option;
  peers_reached : int;
  messages : int;
  hops_to_hit : int option;
  depth : int;
}

(* BFS over the topology using the scratch's generation-stamped visited
   set and preallocated frontier buffers.  The only allocations per
   search are the result record itself (and a fresh scratch when the
   caller did not supply one), so the per-broadcast cost no longer
   scales an [Array.make n false] with the network size. *)
let search ?scratch ?span ?deliver topo ~online ~holds ~source ~ttl =
  if not (online source) then
    { found_at = None; peers_reached = 0; messages = 0; hops_to_hit = None; depth = 0 }
  else begin
    let scratch = match scratch with Some s -> s | None -> Scratch.create () in
    let n = Topology.peer_count topo in
    Scratch.ensure_peers scratch n;
    let gen = Scratch.next_generation scratch in
    let stamp = scratch.Scratch.stamp in
    let frontier = ref scratch.Scratch.frontier in
    let next = ref scratch.Scratch.next_frontier in
    stamp.(source) <- gen;
    !frontier.(0) <- source;
    let frontier_len = ref 1 in
    let reached = ref 1 in
    let messages = ref 0 in
    let found_at = ref (if holds source then source else -1) in
    let hops_to_hit = ref (if !found_at >= 0 then 0 else -1) in
    let depth = ref 0 in
    while !frontier_len > 0 && !depth < ttl do
      incr depth;
      let next_len = ref 0 in
      let fr = !frontier and nx = !next in
      for i = 0 to !frontier_len - 1 do
        let p = fr.(i) in
        let deg = Topology.degree topo p in
        for k = 0 to deg - 1 do
          let q = Topology.neighbor topo p k in
          if online q then begin
            incr messages;
            (* The drop decision is per message: duplicates flip the
               coin too (they are real traffic), but only a delivered
               first reception forwards the query onward. *)
            let delivered =
              match deliver with None -> true | Some d -> d ~span ~src:p ~dst:q
            in
            if delivered && stamp.(q) <> gen then begin
              stamp.(q) <- gen;
              incr reached;
              if holds q && !found_at < 0 then begin
                found_at := q;
                hops_to_hit := !depth
              end;
              nx.(!next_len) <- q;
              incr next_len
            end
          end
        done
      done;
      frontier := nx;
      next := fr;
      frontier_len := !next_len
    done;
    {
      found_at = (if !found_at < 0 then None else Some !found_at);
      peers_reached = !reached;
      messages = !messages;
      hops_to_hit = (if !hops_to_hit < 0 then None else Some !hops_to_hit);
      depth = !depth;
    }
  end

let duplication_factor r =
  if r.peers_reached = 0 then 0.
  else float_of_int r.messages /. float_of_int r.peers_reached
