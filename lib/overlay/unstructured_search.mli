(** Unified unstructured-search front end.

    Bundles a topology, a replication table and a search strategy into
    the single operation the PDHT core needs: "find this item in the
    unstructured network and tell me what it cost".  The measured cost
    is the empirical counterpart of the model's [cSUnstr =
    numPeers / repl * dup] (Eq. 6). *)

type strategy =
  | Flooding of { ttl : int }
  | Random_walks of { walkers : int; max_steps : int; check_every : int }
  | Expanding_ring of { initial_ttl : int; growth : int; max_ttl : int }

type t

val create :
  topology:Topology.t ->
  replication:Replication.t ->
  strategy:strategy ->
  t

val topology : t -> Topology.t
val replication : t -> Replication.t
val strategy : t -> strategy

type outcome = {
  found : bool;
  messages : int;
  provider : int option;
  rounds : int;  (** sequential message waves the mechanism executed —
                     flood levels, walk rounds, or ring levels summed;
                     the search's duration in per-hop latencies *)
}

val search :
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  t ->
  Pdht_util.Rng.t ->
  online:(int -> bool) ->
  source:int ->
  item:int ->
  outcome
(** Search for [item] starting at [source].  Counts every message of the
    underlying mechanism.  [deliver] threads the network model's
    per-message loss decision into the mechanism (omitted = reliable);
    [span] is the wave's causal span id, forwarded to [deliver]. *)

val expected_cost_model : peers:int -> repl:int -> dup:float -> float
(** The analytic Eq. 6 for comparison against measured outcomes. *)
