(** Random replication of content across peers (paper Section 3.1).

    Each stored item (news article, and by extension each of its keys)
    is placed on [repl] uniformly random peers, matching the paper's
    "we replicate keys with a certain factor at random peers".  The
    table answers [holds] queries for unstructured search and exposes
    the replica set for the gossip subnetwork. *)

type t

val create : peers:int -> t
(** Empty table over a population of [peers]. *)

val peers : t -> int

val place : t -> Pdht_util.Rng.t -> item:int -> repl:int -> unit
(** (Re)place [item] on [min repl peers] distinct random peers,
    replacing any previous placement. *)

val place_on : t -> item:int -> replicas:int array -> unit
(** Explicit placement (deterministic tests, custom policies). *)

val remove : t -> item:int -> unit

val remove_peer : t -> peer:int -> int
(** Drop [peer] from the replica set of every item it holds (the
    crash-stop "content lost" operation) and return how many items it
    held.  Items whose last replica goes become unplaced. *)

val replicas : t -> item:int -> int array
(** Peers currently holding [item] (empty if never placed). *)

val holds : t -> peer:int -> item:int -> bool
val items_at : t -> peer:int -> int list
val replication_factor : t -> item:int -> int

val availability : t -> online:(int -> bool) -> item:int -> float
(** Fraction of [item]'s replicas currently online (0. when the item is
    not placed). *)
