type result = {
  found_at : int option;
  steps_taken : int;
  messages : int;
  distinct_visited : int;
  rounds : int;
}

let search ?scratch ?span ?deliver topo rng ~online ~holds ~source ~walkers
    ~max_steps ~check_every =
  if walkers < 1 then invalid_arg "Random_walk.search: walkers must be >= 1";
  if check_every < 1 then invalid_arg "Random_walk.search: check_every must be >= 1";
  if not (online source) then
    { found_at = None; steps_taken = 0; messages = 0; distinct_visited = 0; rounds = 0 }
  else begin
    let scratch = match scratch with Some s -> s | None -> Scratch.create () in
    let n = Topology.peer_count topo in
    Scratch.ensure_peers scratch n;
    Scratch.ensure_walkers scratch walkers;
    let gen = Scratch.next_generation scratch in
    let stamp = scratch.Scratch.stamp in
    (* Staging buffer for a step's online neighbors: filled in place so
       no per-step list/array is built.  One RNG draw per non-stalled
       step, exactly as a fresh-allocation implementation would make. *)
    let candidates = scratch.Scratch.candidates in
    let positions = scratch.Scratch.positions in
    stamp.(source) <- gen;
    let distinct = ref 1 in
    let found_at = ref (if holds source then source else -1) in
    Array.fill positions 0 walkers source;
    let steps = ref 0 in
    let messages = ref 0 in
    let round = ref 0 in
    let stop = ref (!found_at >= 0) in
    while (not !stop) && !round < max_steps do
      incr round;
      (* One synchronous step of every walker. *)
      for w = 0 to walkers - 1 do
        let p = positions.(w) in
        let deg = Topology.degree topo p in
        (* Uniform draw over the *online* neighbors.  Rejection sampling
           (draw a neighbor, retry while offline) has exactly that
           conditional distribution and usually succeeds in one or two
           draws, so the common case never scans the whole neighbor
           list through the [online] closure.  After a few misses —
           most neighbors offline — fall back to the exact
           filter-then-draw, which is also uniform, so the overall
           distribution is unchanged either way. *)
        let q =
          if deg = 0 then -1
          else begin
            let attempts = ref 4 in
            let picked = ref (-1) in
            while !picked < 0 && !attempts > 0 do
              decr attempts;
              let c = Topology.neighbor topo p (Pdht_util.Rng.int rng deg) in
              if online c then picked := c
            done;
            if !picked >= 0 then !picked
            else begin
              let online_count = ref 0 in
              for k = 0 to deg - 1 do
                let c = Topology.neighbor topo p k in
                if online c then begin
                  candidates.(!online_count) <- c;
                  incr online_count
                end
              done;
              if !online_count = 0 then -1
              else candidates.(Pdht_util.Rng.int rng !online_count)
            end
          end
        in
        if q >= 0 then begin
          incr steps;
          incr messages;
          (* A lost step message (network model) leaves the walker where
             it was: the step is paid for but the next peer never hears
             the query, exactly like a stalled walker for one round. *)
          let delivered =
            match deliver with None -> true | Some d -> d ~span ~src:p ~dst:q
          in
          if delivered then begin
            positions.(w) <- q;
            if stamp.(q) <> gen then begin
              stamp.(q) <- gen;
              incr distinct
            end;
            if holds q && !found_at < 0 then found_at := q
          end
        end
        (* else: stalled walker; retries next round *)
      done;
      (* Periodic check-back with the source: one probe per walker. *)
      if !round mod check_every = 0 then begin
        messages := !messages + walkers;
        if !found_at >= 0 then stop := true
      end
    done;
    {
      found_at = (if !found_at < 0 then None else Some !found_at);
      steps_taken = !steps;
      messages = !messages;
      distinct_visited = !distinct;
      rounds = !round;
    }
  end

let duplication_factor r =
  if r.distinct_visited = 0 then 0.
  else float_of_int r.messages /. float_of_int r.distinct_visited
