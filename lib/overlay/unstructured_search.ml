type strategy =
  | Flooding of { ttl : int }
  | Random_walks of { walkers : int; max_steps : int; check_every : int }
  | Expanding_ring of { initial_ttl : int; growth : int; max_ttl : int }

type t = {
  topology : Topology.t;
  replication : Replication.t;
  strategy : strategy;
  (* One scratch per search front end: searches through [t] are
     sequential (one simulated system per domain), so the visited set
     and frontier buffers are reused across every query instead of
     reallocated per broadcast. *)
  scratch : Scratch.t;
}

let create ~topology ~replication ~strategy =
  if Topology.peer_count topology <> Replication.peers replication then
    invalid_arg "Unstructured_search.create: topology and replication disagree on peer count";
  { topology; replication; strategy; scratch = Scratch.create () }

let topology t = t.topology
let replication t = t.replication
let strategy t = t.strategy

type outcome = { found : bool; messages : int; provider : int option; rounds : int }

let search ?span ?deliver t rng ~online ~source ~item =
  let holds p = online p && Replication.holds t.replication ~peer:p ~item in
  match t.strategy with
  | Flooding { ttl } ->
      let r =
        Flood.search ~scratch:t.scratch ?span ?deliver t.topology ~online ~holds
          ~source ~ttl
      in
      { found = r.Flood.found_at <> None; messages = r.Flood.messages;
        provider = r.Flood.found_at; rounds = r.Flood.depth }
  | Random_walks { walkers; max_steps; check_every } ->
      let r =
        Random_walk.search ~scratch:t.scratch ?span ?deliver t.topology rng ~online
          ~holds ~source ~walkers ~max_steps ~check_every
      in
      { found = r.Random_walk.found_at <> None; messages = r.Random_walk.messages;
        provider = r.Random_walk.found_at; rounds = r.Random_walk.rounds }
  | Expanding_ring { initial_ttl; growth; max_ttl } ->
      let r =
        Expanding_ring.search ~scratch:t.scratch ?span ?deliver t.topology ~online
          ~holds ~source ~initial_ttl ~growth ~max_ttl
      in
      { found = r.Expanding_ring.found_at <> None; messages = r.Expanding_ring.messages;
        provider = r.Expanding_ring.found_at; rounds = r.Expanding_ring.depth }

let expected_cost_model ~peers ~repl ~dup =
  float_of_int peers /. float_of_int repl *. dup
