module Int_set = Set.Make (Int)

(* CSR adjacency: [neighbors.(offsets.(p) .. offsets.(p+1) - 1)] are
   peer [p]'s neighbors in ascending order — two flat int arrays for
   the whole graph instead of a boxed array per peer, so a million-peer
   topology is ~2 words per directed edge with no per-peer headers.
   Topologies are build-once static; the Int_set accumulation below is
   construction-only scaffolding (its membership gating also fixes the
   RNG draw sequence, so it must not change shape). *)
type t = { offsets : int array; neighbors : int array; edges : int }

let peer_count t = Array.length t.offsets - 1
let degree t p = t.offsets.(p + 1) - t.offsets.(p)
let neighbor t p i = t.neighbors.(t.offsets.(p) + i)

let iter_neighbors t p ~f =
  for i = t.offsets.(p) to t.offsets.(p + 1) - 1 do
    f t.neighbors.(i)
  done

let neighbors t p = Array.sub t.neighbors t.offsets.(p) (degree t p)
let edge_count t = t.edges

let of_edge_sets sets =
  let peers = Array.length sets in
  let offsets = Array.make (peers + 1) 0 in
  for p = 0 to peers - 1 do
    offsets.(p + 1) <- offsets.(p) + Int_set.cardinal sets.(p)
  done;
  let neighbors = Array.make (max 1 offsets.(peers)) 0 in
  for p = 0 to peers - 1 do
    let i = ref offsets.(p) in
    (* Int_set.iter is ascending, matching the sorted per-peer arrays
       this layout replaced. *)
    Int_set.iter
      (fun q ->
        neighbors.(!i) <- q;
        incr i)
      sets.(p)
  done;
  { offsets; neighbors; edges = offsets.(peers) / 2 }

let random_regularish rng ~peers ~degree =
  if peers < 2 then invalid_arg "Topology.random_regularish: need >= 2 peers";
  if degree < 1 || degree >= peers then invalid_arg "Topology.random_regularish: bad degree";
  let sets = Array.make peers Int_set.empty in
  let connect a b =
    sets.(a) <- Int_set.add b sets.(a);
    sets.(b) <- Int_set.add a sets.(b)
  in
  for p = 0 to peers - 1 do
    let opened = ref 0 in
    let attempts = ref 0 in
    (* A peer may fail to open all connections in a tiny network where
       every other peer is already a neighbor; cap the retries. *)
    while !opened < degree && !attempts < 20 * degree do
      incr attempts;
      let q = Pdht_util.Rng.int rng peers in
      if q <> p && not (Int_set.mem q sets.(p)) then begin
        connect p q;
        incr opened
      end
    done
  done;
  of_edge_sets sets

let barabasi_albert rng ~peers ~attach =
  if attach < 1 || peers <= attach then invalid_arg "Topology.barabasi_albert: need peers > attach >= 1";
  let sets = Array.make peers Int_set.empty in
  let connect a b =
    sets.(a) <- Int_set.add b sets.(a);
    sets.(b) <- Int_set.add a sets.(b)
  in
  (* Endpoint multiset: picking a uniform element is picking a node with
     probability proportional to its degree.  Stored in a growable array
     so sampling stays O(1) as the graph grows. *)
  let capacity = 2 * ((attach * peers) + (attach * attach)) in
  let endpoints = Array.make capacity 0 in
  let endpoint_count = ref 0 in
  let push p =
    endpoints.(!endpoint_count) <- p;
    incr endpoint_count
  in
  (* Seed: a small clique over the first attach+1 peers. *)
  for a = 0 to attach do
    for b = a + 1 to attach do
      connect a b;
      push a;
      push b
    done
  done;
  for p = attach + 1 to peers - 1 do
    let chosen = ref Int_set.empty in
    let tries = ref 0 in
    while Int_set.cardinal !chosen < attach && !tries < 50 * attach do
      incr tries;
      let target = endpoints.(Pdht_util.Rng.int rng !endpoint_count) in
      if target <> p then chosen := Int_set.add target !chosen
    done;
    Int_set.iter
      (fun q ->
        connect p q;
        push p;
        push q)
      !chosen
  done;
  of_edge_sets sets

let ring_lattice ~peers ~k =
  if peers < 3 then invalid_arg "Topology.ring_lattice: need >= 3 peers";
  if k < 1 || 2 * k >= peers then invalid_arg "Topology.ring_lattice: bad k";
  let sets = Array.make peers Int_set.empty in
  for p = 0 to peers - 1 do
    for d = 1 to k do
      let q = (p + d) mod peers in
      sets.(p) <- Int_set.add q sets.(p);
      sets.(q) <- Int_set.add p sets.(q)
    done
  done;
  of_edge_sets sets

let watts_strogatz rng ~peers ~k ~beta =
  if peers < 3 then invalid_arg "Topology.watts_strogatz: need >= 3 peers";
  if k < 1 || 2 * k >= peers then invalid_arg "Topology.watts_strogatz: bad k";
  if beta < 0. || beta > 1. then invalid_arg "Topology.watts_strogatz: beta outside [0,1]";
  let sets = Array.make peers Int_set.empty in
  let connect a b =
    sets.(a) <- Int_set.add b sets.(a);
    sets.(b) <- Int_set.add a sets.(b)
  in
  for p = 0 to peers - 1 do
    for d = 1 to k do
      let q = (p + d) mod peers in
      if Pdht_util.Rng.bernoulli rng ~p:beta then begin
        (* Rewire the lattice edge (p, q) to a random endpoint that
           creates neither a self-loop nor a duplicate. *)
        let rec fresh tries =
          if tries = 0 then q (* dense corner: keep the lattice edge *)
          else
            let r = Pdht_util.Rng.int rng peers in
            if r = p || Int_set.mem r sets.(p) then fresh (tries - 1) else r
        in
        connect p (fresh 20)
      end
      else connect p q
    done
  done;
  of_edge_sets sets

let bfs_reach t ~online start =
  let n = peer_count t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  if online start then begin
    visited.(start) <- true;
    Queue.add start queue
  end;
  let reached = ref 0 in
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    incr reached;
    iter_neighbors t p ~f:(fun q ->
        if (not visited.(q)) && online q then begin
          visited.(q) <- true;
          Queue.add q queue
        end)
  done;
  !reached

let is_connected t =
  let n = peer_count t in
  n = 0 || bfs_reach t ~online:(fun _ -> true) 0 = n

let connected_fraction_from t ~online start =
  let online_total =
    let acc = ref 0 in
    for p = 0 to peer_count t - 1 do
      if online p then incr acc
    done;
    !acc
  in
  if online_total = 0 then 0.
  else float_of_int (bfs_reach t ~online start) /. float_of_int online_total

let mean_degree t =
  if peer_count t = 0 then 0.
  else 2. *. float_of_int t.edges /. float_of_int (peer_count t)

let duplication_factor t = mean_degree t
