(** Multiple parallel random walks ([LvCa02]).

    The paper assumes unstructured search uses "multiple random walks"
    rather than flooding because they consume far less traffic.
    [walkers] walkers step simultaneously from the source; every
    [check_every] steps each walker checks back with the source whether
    another walker has already succeeded (modelled as in [LvCa02]: the
    walk terminates within [check_every] steps of a hit, and checking
    costs one message per probe). *)

type result = {
  found_at : int option;
  steps_taken : int;    (** total walker steps across all walkers *)
  messages : int;       (** steps + termination-check probes *)
  distinct_visited : int;
  rounds : int;         (** synchronous rounds executed; the walk's
                            sequential duration in per-hop latencies *)
}

val search :
  ?scratch:Scratch.t ->
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  Topology.t ->
  Pdht_util.Rng.t ->
  online:(int -> bool) ->
  holds:(int -> bool) ->
  source:int ->
  walkers:int ->
  max_steps:int ->
  check_every:int ->
  result
(** [max_steps] bounds the per-walker walk length; [walkers >= 1],
    [check_every >= 1].  Walkers step to a uniform online neighbor
    (stalling costs nothing when a peer has no online neighbor).

    [scratch] reuses the visited set, candidate buffer and walker
    positions across calls; results (including the RNG draw sequence)
    are identical with or without it.

    [deliver] applies the network model to step messages: a lost step
    is counted but the walker stays put for that round (termination
    check-backs stay reliable — they model [LvCa02]'s bounded-overrun
    abstraction, not a concrete message exchange).  Omitted = reliable
    delivery, unchanged semantics.

    [span] is forwarded to every [deliver] call (see {!Flood.search}). *)

val duplication_factor : result -> float
(** [messages / distinct_visited]; the empirical analogue of the
    paper's [dup ≈ 1.8]. *)
