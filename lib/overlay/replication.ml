module Int_set = Set.Make (Int)

(* [by_item] is indexed directly by the item id (items are small dense
   ints in practice — key indices), holding each item's replica set as a
   sorted array.  [holds] is the hot operation: unstructured search
   calls it once per walk step / flood visit, so it must not chase an
   [Int_set] tree — a binary search over a short sorted int array stays
   in one cache line.  [at_peer] keeps the per-peer view for the cold
   enumeration queries. *)
type t = {
  total_peers : int;
  mutable by_item : int array array; (* item -> sorted replicas; [||] = absent *)
  mutable at_peer : Int_set.t array;
}

let no_replicas : int array = [||]

let create ~peers =
  if peers < 1 then invalid_arg "Replication.create: need >= 1 peer";
  {
    total_peers = peers;
    by_item = Array.make 64 no_replicas;
    at_peer = Array.make peers Int_set.empty;
  }

let peers t = t.total_peers

let ensure_item t item =
  if item < 0 then invalid_arg "Replication: negative item";
  let n = Array.length t.by_item in
  if item >= n then begin
    let grown = Array.make (max (item + 1) (2 * n)) no_replicas in
    Array.blit t.by_item 0 grown 0 n;
    t.by_item <- grown
  end

let replicas_of t item =
  if item < 0 || item >= Array.length t.by_item then no_replicas else t.by_item.(item)

let remove t ~item =
  let reps = replicas_of t item in
  if Array.length reps > 0 then begin
    Array.iter (fun p -> t.at_peer.(p) <- Int_set.remove item t.at_peer.(p)) reps;
    t.by_item.(item) <- no_replicas
  end

let place_on t ~item ~replicas =
  Array.iter
    (fun p -> if p < 0 || p >= t.total_peers then invalid_arg "Replication.place_on: bad peer")
    replicas;
  ensure_item t item;
  remove t ~item;
  let distinct = Int_set.of_list (Array.to_list replicas) in
  let reps = Array.of_list (Int_set.elements distinct) in
  t.by_item.(item) <- reps;
  Array.iter (fun p -> t.at_peer.(p) <- Int_set.add item t.at_peer.(p)) reps

let remove_peer t ~peer =
  if peer < 0 || peer >= t.total_peers then invalid_arg "Replication.remove_peer: bad peer";
  let items = t.at_peer.(peer) in
  let n = Int_set.cardinal items in
  Int_set.iter
    (fun item ->
      let reps = t.by_item.(item) in
      let kept = Array.make (Array.length reps - 1) 0 in
      let j = ref 0 in
      Array.iter
        (fun p ->
          if p <> peer then begin
            kept.(!j) <- p;
            incr j
          end)
        reps;
      (* [reps] was sorted and held [peer] exactly once, so [kept] is
         full and still sorted. *)
      t.by_item.(item) <- (if Array.length kept = 0 then no_replicas else kept))
    items;
  t.at_peer.(peer) <- Int_set.empty;
  n

let place t rng ~item ~repl =
  if repl < 1 then invalid_arg "Replication.place: repl must be >= 1";
  let k = min repl t.total_peers in
  let replicas = Pdht_util.Sampling.sample_without_replacement rng ~k ~n:t.total_peers in
  place_on t ~item ~replicas

let replicas t ~item = replicas_of t item

let holds t ~peer ~item =
  let reps = replicas_of t item in
  (* Binary search in the sorted replica array. *)
  let lo = ref 0 and hi = ref (Array.length reps - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = Array.unsafe_get reps mid in
    if v = peer then found := true
    else if v < peer then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let items_at t ~peer = Int_set.elements t.at_peer.(peer)
let replication_factor t ~item = Array.length (replicas t ~item)

let availability t ~online ~item =
  let reps = replicas t ~item in
  let total = Array.length reps in
  if total = 0 then 0.
  else
    let up = Array.fold_left (fun acc p -> if online p then acc + 1 else acc) 0 reps in
    float_of_int up /. float_of_int total
