(* [by_item] is indexed directly by the item id (items are small dense
   ints in practice — key indices), holding each item's replica set as a
   sorted array.  [holds] is the hot operation: unstructured search
   calls it once per walk step / flood visit, so it must not chase a
   tree — a binary search over a short sorted int array stays in one
   cache line.  The per-peer inverse view is the compact growable
   variant of the same idea: one sorted int array per peer
   ([peer_items] prefix of length [peer_len], doubling capacity), ~2
   words per holding instead of a balanced-tree node, so a million-peer
   placement is dominated by the ids themselves. *)
type t = {
  total_peers : int;
  mutable by_item : int array array; (* item -> sorted replicas; [||] = absent *)
  peer_items : int array array; (* peer -> sorted items, prefix of peer_len *)
  peer_len : int array;
}

let no_replicas : int array = [||]

let create ~peers =
  if peers < 1 then invalid_arg "Replication.create: need >= 1 peer";
  {
    total_peers = peers;
    by_item = Array.make 64 no_replicas;
    peer_items = Array.make peers no_replicas;
    peer_len = Array.make peers 0;
  }

let peers t = t.total_peers

let ensure_item t item =
  if item < 0 then invalid_arg "Replication: negative item";
  let n = Array.length t.by_item in
  if item >= n then begin
    let grown = Array.make (max (item + 1) (2 * n)) no_replicas in
    Array.blit t.by_item 0 grown 0 n;
    t.by_item <- grown
  end

let replicas_of t item =
  if item < 0 || item >= Array.length t.by_item then no_replicas else t.by_item.(item)

(* Position of [item] in [peer]'s sorted holdings, or the insertion
   point encoded as [-(pos + 1)] when absent. *)
let peer_find t peer item =
  let arr = t.peer_items.(peer) in
  let lo = ref 0 and hi = ref (t.peer_len.(peer) - 1) in
  let res = ref min_int in
  while !res = min_int && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = Array.unsafe_get arr mid in
    if v = item then res := mid
    else if v < item then lo := mid + 1
    else hi := mid - 1
  done;
  if !res = min_int then -(!lo + 1) else !res

let peer_add t peer item =
  let pos = peer_find t peer item in
  if pos < 0 then begin
    let at = -pos - 1 in
    let len = t.peer_len.(peer) in
    let arr = t.peer_items.(peer) in
    let arr =
      if len = Array.length arr then begin
        let grown = Array.make (max 4 (2 * len)) 0 in
        Array.blit arr 0 grown 0 len;
        t.peer_items.(peer) <- grown;
        grown
      end
      else arr
    in
    Array.blit arr at arr (at + 1) (len - at);
    arr.(at) <- item;
    t.peer_len.(peer) <- len + 1
  end

let peer_remove t peer item =
  let pos = peer_find t peer item in
  if pos >= 0 then begin
    let len = t.peer_len.(peer) in
    let arr = t.peer_items.(peer) in
    Array.blit arr (pos + 1) arr pos (len - pos - 1);
    t.peer_len.(peer) <- len - 1
  end

let remove t ~item =
  let reps = replicas_of t item in
  if Array.length reps > 0 then begin
    Array.iter (fun p -> peer_remove t p item) reps;
    t.by_item.(item) <- no_replicas
  end

let place_on t ~item ~replicas =
  Array.iter
    (fun p -> if p < 0 || p >= t.total_peers then invalid_arg "Replication.place_on: bad peer")
    replicas;
  ensure_item t item;
  remove t ~item;
  (* Sort a copy and drop duplicates in place — same sorted distinct
     set the old Int_set round-trip produced. *)
  let reps =
    let sorted = Array.copy replicas in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let distinct = ref 0 in
    for i = 0 to n - 1 do
      if i = 0 || sorted.(i) <> sorted.(i - 1) then begin
        sorted.(!distinct) <- sorted.(i);
        incr distinct
      end
    done;
    if !distinct = n then sorted else Array.sub sorted 0 !distinct
  in
  t.by_item.(item) <- reps;
  Array.iter (fun p -> peer_add t p item) reps

let remove_peer t ~peer =
  if peer < 0 || peer >= t.total_peers then invalid_arg "Replication.remove_peer: bad peer";
  let items = t.peer_items.(peer) in
  let n = t.peer_len.(peer) in
  for i = 0 to n - 1 do
    let item = items.(i) in
    let reps = t.by_item.(item) in
    let kept = Array.make (Array.length reps - 1) 0 in
    let j = ref 0 in
    Array.iter
      (fun p ->
        if p <> peer then begin
          kept.(!j) <- p;
          incr j
        end)
      reps;
    (* [reps] was sorted and held [peer] exactly once, so [kept] is
       full and still sorted. *)
    t.by_item.(item) <- (if Array.length kept = 0 then no_replicas else kept)
  done;
  t.peer_len.(peer) <- 0;
  n

let place t rng ~item ~repl =
  if repl < 1 then invalid_arg "Replication.place: repl must be >= 1";
  let k = min repl t.total_peers in
  let replicas = Pdht_util.Sampling.sample_without_replacement rng ~k ~n:t.total_peers in
  place_on t ~item ~replicas

let replicas t ~item = replicas_of t item

let holds t ~peer ~item =
  let reps = replicas_of t item in
  (* Binary search in the sorted replica array. *)
  let lo = ref 0 and hi = ref (Array.length reps - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = Array.unsafe_get reps mid in
    if v = peer then found := true
    else if v < peer then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let items_at t ~peer = Array.to_list (Array.sub t.peer_items.(peer) 0 t.peer_len.(peer))
let replication_factor t ~item = Array.length (replicas t ~item)

let availability t ~online ~item =
  let reps = replicas t ~item in
  let total = Array.length reps in
  if total = 0 then 0.
  else
    let up = Array.fold_left (fun acc p -> if online p then acc + 1 else acc) 0 reps in
    float_of_int up /. float_of_int total
