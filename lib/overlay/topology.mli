(** Unstructured overlay topologies.

    The paper assumes "a Gnutella-like topology, where each peer has a
    few open connections to other peers" (Section 3.1).  We provide the
    two families observed in deployed Gnutella networks: a random graph
    with fixed minimum degree and a power-law graph grown by
    preferential attachment (Barabási-Albert), both undirected. *)

type t

val peer_count : t -> int

val neighbors : t -> int -> int array
(** Adjacency of a peer (no self-loops, no duplicates), ascending.
    Allocates a copy of the CSR slice — convenience for tests and
    debugging; hot paths use {!degree}/{!neighbor}/{!iter_neighbors},
    which read the flat arrays in place. *)

val neighbor : t -> int -> int -> int
(** [neighbor t p i] is the [i]-th neighbor of [p] (ascending order),
    [0 <= i < degree t p].  No allocation. *)

val iter_neighbors : t -> int -> f:(int -> unit) -> unit
(** Apply [f] to each neighbor of [p] in ascending order. *)

val degree : t -> int -> int
val edge_count : t -> int
(** Undirected edges. *)

val random_regularish : Pdht_util.Rng.t -> peers:int -> degree:int -> t
(** Each peer opens [degree] connections to distinct uniformly random
    other peers (the classic Gnutella client behaviour); resulting
    degrees are ≈ 2x[degree] on average.  Requires [peers >= 2] and
    [1 <= degree < peers]. *)

val barabasi_albert : Pdht_util.Rng.t -> peers:int -> attach:int -> t
(** Preferential-attachment growth: each arriving peer links to
    [attach] existing peers chosen proportionally to current degree.
    Requires [peers > attach >= 1]. *)

val ring_lattice : peers:int -> k:int -> t
(** Deterministic circulant graph (each peer linked to its [k] nearest
    successors and predecessors) — a worst case for flooding, used in
    tests and ablations.  Requires [peers >= 3] and [1 <= k <
    peers / 2]. *)

val watts_strogatz : Pdht_util.Rng.t -> peers:int -> k:int -> beta:float -> t
(** Small-world graph: a {!ring_lattice} whose edges are each rewired to
    a uniform random endpoint with probability [beta].  [beta = 0.] is
    the lattice, [beta = 1.] approaches a random graph; small positive
    values give the high-clustering/short-path regime real unstructured
    overlays sit in.  Requires lattice-valid [peers]/[k] and [beta] in
    [\[0, 1\]]. *)

val is_connected : t -> bool
(** BFS reachability over all peers. *)

val connected_fraction_from : t -> online:(int -> bool) -> int -> float
(** Fraction of online peers reachable from a given online peer through
    online peers only; 0. if the start peer is offline. *)

val mean_degree : t -> float

val duplication_factor : t -> float
(** Expected ratio of messages to peers reached when fully flooding the
    connected component: [2 * edges / peers] within a connected graph
    corresponds to the paper's [dup] constant (Section 3.1, after
    [LvCa02], who report ≈ 1.8 for Gnutella-like graphs). *)
