(** TTL-limited flooding search (the classic Gnutella mechanism).

    Every peer that receives the query for the first time forwards it to
    all neighbors except the sender; duplicate receptions are counted as
    messages but not forwarded.  The measured [messages / peers_reached]
    ratio is exactly the paper's duplication factor [dup]
    (Section 3.1). *)

type result = {
  found_at : int option;  (** first peer holding the key, if reached *)
  peers_reached : int;    (** distinct peers that saw the query *)
  messages : int;         (** total messages sent, duplicates included *)
  hops_to_hit : int option; (** TTL depth at which the key was first found *)
  depth : int;            (** BFS levels actually executed ([<= ttl]);
                              a level is one wave of parallel messages,
                              so sequential search time is [depth]
                              per-hop latencies *)
}

val search :
  ?scratch:Scratch.t ->
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  Topology.t ->
  online:(int -> bool) ->
  holds:(int -> bool) ->
  source:int ->
  ttl:int ->
  result
(** Flood from [source] (which must be online, else the result is
    empty) up to [ttl] hops, looking for any online peer for which
    [holds] is true.  The flood is exhaustive (it does not stop early on
    a hit), matching deployed Gnutella behaviour and giving a
    conservative message count; [found_at] reports the first hit in BFS
    order.

    [scratch] makes repeated searches allocation-free: the visited set
    and frontier buffers are reused instead of rebuilt per call.  The
    result is identical with or without it (a fresh scratch is allocated
    when omitted).

    [deliver ~src ~dst] is the network model's per-message fate (see
    [Pdht_net.Hook.cast]): every message to an online peer is counted
    and then offered to [deliver]; a [false] verdict means the message
    was lost in flight, so the receiver neither answers nor forwards.
    Omitting [deliver] keeps the classic instantaneous-and-reliable
    semantics, bit for bit.

    [span] is the causal span id of the wave this flood serves (see
    [Pdht_obs.Span]); it is forwarded verbatim to every [deliver] call
    so the network layer can parent its per-message trace events.  It
    is a plain [int] precisely so this library needs no dependency on
    the observability layer. *)

val duplication_factor : result -> float
(** [messages / peers_reached]; 0. when nothing was reached. *)
