type result = {
  found_at : int option;
  rings : int;
  final_ttl : int;
  messages : int;
  depth : int;
}

let search ?scratch ?span ?deliver topo ~online ~holds ~source ~initial_ttl
    ~growth ~max_ttl =
  if initial_ttl < 1 then invalid_arg "Expanding_ring.search: initial_ttl must be >= 1";
  if growth < 1 then invalid_arg "Expanding_ring.search: growth must be >= 1";
  if max_ttl < initial_ttl then invalid_arg "Expanding_ring.search: max_ttl < initial_ttl";
  let messages = ref 0 in
  let rings = ref 0 in
  let depth = ref 0 in
  let rec attempt ttl previous_reach =
    incr rings;
    let r = Flood.search ?scratch ?span ?deliver topo ~online ~holds ~source ~ttl in
    messages := !messages + r.Flood.messages;
    (* Rings run one after the other, so their wave counts add up. *)
    depth := !depth + r.Flood.depth;
    match r.Flood.found_at with
    | Some _ ->
        { found_at = r.Flood.found_at; rings = !rings; final_ttl = ttl;
          messages = !messages; depth = !depth }
    | None ->
        if ttl >= max_ttl || r.Flood.peers_reached = previous_reach then
          (* Budget exhausted, or the flood stopped growing (component
             fully covered) — a larger ring cannot find more. *)
          { found_at = None; rings = !rings; final_ttl = ttl; messages = !messages;
            depth = !depth }
        else attempt (min max_ttl (ttl + growth)) r.Flood.peers_reached
  in
  attempt initial_ttl (-1)
