(** Reusable per-topology search scratch: generation-stamped visited
    set plus preallocated frontier / candidate / walker buffers.

    Passing one scratch to repeated {!Flood.search},
    {!Expanding_ring.search} or {!Random_walk.search} calls makes the
    per-search cost allocation-free (beyond the small result record)
    while returning results identical to fresh-allocation calls.

    A scratch is single-owner mutable state: share it across sequential
    searches freely, never across domains.  The record is exposed so the
    search implementations can index the buffers directly; treat it as
    opaque elsewhere. *)

type t = {
  mutable stamp : int array;
      (** [stamp.(p) = generation] means peer [p] was visited in the
          current search. *)
  mutable generation : int;
  mutable frontier : int array;
  mutable next_frontier : int array;
  mutable candidates : int array;  (** online-neighbor staging buffer *)
  mutable positions : int array;   (** random-walk walker positions *)
}

val create : unit -> t

val ensure_peers : t -> int -> unit
(** Grow [stamp]/[frontier]/[next_frontier]/[candidates] to hold at
    least [n] peers.  Idempotent and allocation-free when already large
    enough. *)

val ensure_walkers : t -> int -> unit
(** Grow [positions] to hold at least [n] walkers. *)

val next_generation : t -> int
(** Begin a new search: returns the fresh generation under which to
    stamp visited peers.  Handles stamp-counter overflow by wiping. *)
