(** Kademlia: XOR-metric DHT with k-buckets (Maymounkov & Mazieres).

    A third structured substrate beside {!Chord} and {!Pgrid},
    supporting the paper's claim that the partial-indexing scheme "can
    be used for any of the DHT based systems".  A key is owned by the
    [k_replica] members closest to it in XOR distance; lookups proceed
    iteratively with [alpha]-way parallel probes, halving the distance
    per round, for the usual O(log n) message cost.

    Like the other substrates, membership is fixed at construction and
    churn is an [online] predicate supplied per call. *)

type t

val create :
  Pdht_util.Rng.t -> members:int -> ?bucket_size:int -> ?alpha:int -> unit -> t
(** [bucket_size] (k, default 8) entries per distance bucket; [alpha]
    (default 3) parallel probes per round.  Requires [members >= 1]. *)

val members : t -> int
val id_of : t -> int -> Pdht_util.Bitkey.t

val closest_members : t -> Pdht_util.Bitkey.t -> k:int -> int array
(** The [min k members] members closest to the key in XOR distance,
    nearest first — the key's replica group. *)

val responsible : t -> online:(int -> bool) -> Pdht_util.Bitkey.t -> int option
(** Closest online member, [None] if everyone is offline. *)

type outcome = {
  responsible : int option;
  messages : int; (** every probe, including timeouts on offline peers *)
  hops : int;     (** probe rounds *)
}

val lookup :
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  t ->
  Pdht_util.Rng.t ->
  online:(int -> bool) ->
  source:int ->
  key:Pdht_util.Bitkey.t ->
  outcome
(** Iterative lookup from [source] (offline source fails free).
    Succeeds when the globally closest *online* member has been
    contacted; fails if the search stalls with every known closer
    candidate offline.  [deliver] (one RPC per live contact) makes an
    undeliverable candidate look dead; the iteration routes around it
    rather than aborting. *)

val bucket_count : t -> int -> int
(** Non-empty k-buckets of a member. *)

val routing_table_size : t -> int -> int
(** Total routing entries a member currently holds. *)

val probe_and_repair :
  t -> Pdht_util.Rng.t -> online:(int -> bool) -> peer:int -> probes:int -> int
(** Probe random bucket entries; an offline entry is replaced with a
    random online member from the same bucket's distance range if one
    exists (repair free, probes one message each — the [MaCa03]
    discipline shared by all backends). *)

val forget_routes : t -> peer:int -> unit
(** Crash-stop routing loss: empty every k-bucket of [peer].  Lookups
    from the member fail immediately (no candidates) until
    {!rebuild_routes}; {!probe_and_repair} skips empty buckets. *)

val rebuild_routes : t -> Pdht_util.Rng.t -> peer:int -> int
(** Rejoin: repopulate the member's k-buckets with the construction-time
    reservoir sampling.  Returns the message cost — one FIND_NODE-style
    exchange per entry learned. *)
