(** Kademlia: XOR-metric DHT with k-buckets (Maymounkov & Mazieres).

    A third structured substrate beside {!Chord} and {!Pgrid},
    supporting the paper's claim that the partial-indexing scheme "can
    be used for any of the DHT based systems".  A key is owned by the
    [k_replica] members closest to it in XOR distance; lookups proceed
    iteratively with [alpha]-way parallel probes, halving the distance
    per round, for the usual O(log n) message cost.

    Like the other substrates, membership is fixed at construction and
    churn is an [online] predicate supplied per call.

    Two table modes.  The default ("frozen") tables are the original
    reservoir-sampled construction: static buckets that only
    {!probe_and_repair} and {!rebuild_routes} touch.  Opting in with
    {!enable_live_routing} turns every member's table into living
    k-buckets in least-recently-seen order with a per-bucket
    replacement cache, maintained by the {!Pdht_proto.Bucket_rules}
    discipline: lookup contacts promote or insert, full buckets
    liveness-probe their LRS entry before admitting a newcomer,
    evictions back-fill from the cache, and {!refresh_sweep}
    re-populates ranges no contact has touched.  All probe traffic is
    counted and drained through the maintenance account, giving the
    measured [cRtn] the paper only assumes. *)

type t

val create :
  Pdht_util.Rng.t -> members:int -> ?bucket_size:int -> ?alpha:int -> unit -> t
(** [bucket_size] (k, default 8) entries per distance bucket; [alpha]
    (default 3) parallel probes per round.  Requires [members >= 1]. *)

val members : t -> int
val id_of : t -> int -> Pdht_util.Bitkey.t

val closest_members : t -> Pdht_util.Bitkey.t -> k:int -> int array
(** The [min k members] members closest to the key in XOR distance,
    nearest first — the key's replica group. *)

val responsible : t -> online:(int -> bool) -> Pdht_util.Bitkey.t -> int option
(** Closest online member, [None] if everyone is offline. *)

type outcome = {
  responsible : int option;
  messages : int; (** every probe, including timeouts on offline peers *)
  hops : int;     (** probe rounds *)
}

val lookup :
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  t ->
  Pdht_util.Rng.t ->
  online:(int -> bool) ->
  source:int ->
  key:Pdht_util.Bitkey.t ->
  outcome
(** Iterative lookup from [source] (offline source fails free).
    Succeeds when the globally closest *online* member has been
    contacted; fails if the search stalls with every known closer
    candidate offline.  [deliver] (one RPC per live contact) makes an
    undeliverable candidate look dead; the iteration routes around it
    rather than aborting. *)

val bucket_count : t -> int -> int
(** Non-empty k-buckets of a member. *)

val routing_table_size : t -> int -> int
(** Total routing entries a member currently holds. *)

val probe_and_repair :
  t -> Pdht_util.Rng.t -> online:(int -> bool) -> peer:int -> probes:int -> int
(** Probe random bucket entries; an offline entry is replaced with a
    random online member from the same bucket's distance range if one
    exists (repair free, probes one message each — the [MaCa03]
    discipline shared by all backends). *)

val forget_routes : t -> peer:int -> unit
(** Crash-stop routing loss: empty every k-bucket of [peer].  Lookups
    from the member fail immediately (no candidates) until
    {!rebuild_routes}; {!probe_and_repair} skips empty buckets. *)

val rebuild_routes : t -> Pdht_util.Rng.t -> peer:int -> int
(** Rejoin: repopulate the member's k-buckets with the construction-time
    reservoir sampling.  Returns the message cost — one FIND_NODE-style
    exchange per entry learned.  In live mode the living table is
    re-seeded from the same draws (cache emptied). *)

(** {2 Live routing tables} *)

val enable_live_routing : ?probe_retries:int -> t -> unit
(** Switch to living k-buckets, seeded from the current frozen tables.
    Consumes no randomness, so enabling after {!create} leaves every
    RNG stream untouched.  [probe_retries] (default 3, the
    {!Pdht_net.Config} default ladder) sets the message cost of a
    liveness probe that times out: [1 + probe_retries] attempts.
    Idempotent; cannot be undone. *)

val live_routing : t -> bool

val refresh_sweep : t -> Pdht_util.Rng.t -> online:(int -> bool) -> int
(** One bucket-refresh pass over every online member: each non-empty id
    range that saw no contact since the previous sweep gets a refresh
    lookup ([alpha] probes plus one exchange per live entry learned).
    Returns the message cost; 0 in frozen mode.  The caller charges the
    cost to maintenance. *)

val drain_probe_cost : t -> int
(** Probe messages accrued by lookup-driven bucket updates since the
    last drain (eviction-rule liveness probes, including full timeout
    ladders for dead entries).  {!probe_and_repair} drains implicitly;
    drivers without a maintenance tick can drain and charge manually.
    Always 0 in frozen mode. *)

type live_stats = {
  probes : int;            (** liveness probes sent (contact + tick) *)
  probe_messages : int;    (** probe cost incl. dead-entry retry ladders *)
  refresh_messages : int;  (** refresh-sweep traffic *)
  evictions : int;         (** dead LRS entries evicted *)
  promotions : int;        (** contacts moving an entry to MRS *)
  insertions : int;        (** newcomers admitted to a bucket with room *)
  cache_fills : int;       (** bucket back-fills from the replacement cache *)
}

val live_stats : t -> live_stats option
(** Whole-run counters; [None] in frozen mode. *)

val contact_stats : t -> int * int
(** [(contacts, dead_contacts)] across all lookups so far, in either
    table mode: every contact attempt the iterative searches made, and
    how many hit a peer that turned out dead — the stale-route rate is
    [dead / contacts]. *)
