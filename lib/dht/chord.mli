(** Chord ring over a fixed member set ([StMo01]).

    One of the two "traditional DHT" substrates (the other is
    {!Pgrid}).  Members are peer indices [0 .. members-1] with uniformly
    random 63-bit identifiers; a key is owned by its successor on the
    ring.  Lookups route greedily through finger tables, resolving about
    half of [log2 members] bits per message on average — the cost the
    model abstracts as Eq. 7.

    Membership is fixed at construction (the paper's [numActivePeers]
    peers that agree to build the DHT); churn is modelled as members
    being temporarily offline, which lookups and maintenance must route
    around. *)

type t

val create : Pdht_util.Rng.t -> members:int -> t
(** Requires [members >= 1]. *)

val members : t -> int
val id_of : t -> int -> Pdht_util.Bitkey.t

val successor_member : t -> Pdht_util.Bitkey.t -> int
(** Owner of a key ignoring churn: the member whose id is the first at
    or clockwise after the key. *)

val responsible : t -> online:(int -> bool) -> Pdht_util.Bitkey.t -> int option
(** First online member at or after the key; [None] if every member is
    offline. *)

val successors : t -> Pdht_util.Bitkey.t -> k:int -> int array
(** The [min k members] members clockwise from the key — the standard
    Chord replica group. *)

type outcome = {
  responsible : int option; (** peer that answered, [None] on routing failure *)
  messages : int;           (** hops plus timed-out probes to offline peers *)
  hops : int;               (** successful forwarding steps only *)
}

val lookup :
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  t ->
  online:(int -> bool) ->
  source:int ->
  key:Pdht_util.Bitkey.t ->
  outcome
(** Iterative greedy finger routing from [source] (must be a member; an
    offline source fails immediately with no messages).  [deliver] is
    consulted once per successful forwarding step (RPC semantics); a
    [false] verdict aborts the routing with [responsible = None] so the
    caller can degrade to its miss path.  Omitted = reliable. *)

(** Finger-table maintenance (probing per [MaCa03]). *)

val finger_count : t -> int -> int
(** Distinct finger entries of a member. *)

val finger_targets : t -> int -> int array
(** Current finger entries (member indices) of a member. *)

val probe_and_repair :
  t -> Pdht_util.Rng.t -> online:(int -> bool) -> peer:int -> probes:int -> int
(** Probe [probes] random finger entries of [peer]; each probe costs one
    message (the returned count).  A probe hitting an offline target
    repairs that finger to the next online member for its ideal target
    id — repair itself is free, as the paper assumes repair information
    is piggybacked on other traffic (Section 3.3.1). *)

val forget_routes : t -> peer:int -> unit
(** Crash-stop routing loss: every finger of [peer] points at itself
    (self-fingers are unusable, so lookups from the member degrade to
    ring walking until {!rebuild_routes}).  Fingers of *other* members
    pointing at the crashed node are repaired by the ordinary
    {!probe_and_repair} while it is offline. *)

val rebuild_routes : t -> online:(int -> bool) -> peer:int -> int
(** Rejoin: recompute [peer]'s finger table against the current online
    population (the join protocol's finger fixup — one lookup per
    level).  Returns the message cost, one per finger level. *)

val expected_lookup_messages : members:int -> float
(** Model Eq. 7: [1/2 * log2 members]. *)
