let log2 x = Float.log x /. Float.log 2.

let probes_per_peer_per_second ~env ~members =
  if members < 1 then invalid_arg "Maintenance.probes_per_peer_per_second";
  env *. log2 (float_of_int (max 2 members))

let env_from_trace ~maintenance_rate ~members =
  if members < 2 then invalid_arg "Maintenance.env_from_trace: need >= 2 members";
  maintenance_rate /. log2 (float_of_int members)

let attach ?obs ?refresh_every engine ~dht ~rng ~online ~metrics ~env ~interval =
  if not (interval > 0.) then invalid_arg "Maintenance.attach: interval must be positive";
  let members = Dht.members dht in
  let budget = probes_per_peer_per_second ~env ~members *. interval in
  let whole = int_of_float (Float.floor budget) in
  let frac = budget -. Float.floor budget in
  let per_tick =
    match obs with
    | None -> None
    | Some (obs : Pdht_obs.Context.t) ->
        Some
          (Pdht_obs.Registry.histogram obs.Pdht_obs.Context.registry
             "maintenance.messages_per_tick")
  in
  let tick engine =
    let sent_this_tick = ref 0 in
    for peer = 0 to members - 1 do
      if online peer then begin
        let probes = whole + (if Pdht_util.Rng.bernoulli rng ~p:frac then 1 else 0) in
        let sent = Dht.probe_and_repair dht rng ~online ~peer ~probes in
        sent_this_tick := !sent_this_tick + sent;
        Pdht_sim.Metrics.charge metrics Pdht_sim.Metrics.Maintenance sent
      end
    done;
    match obs with
    | None -> ()
    | Some obs ->
        (match per_tick with
        | Some hist -> Pdht_obs.Histogram.record_int hist !sent_this_tick
        | None -> ());
        let tracer = obs.Pdht_obs.Context.tracer in
        if Pdht_obs.Tracer.active tracer Pdht_obs.Event.Maintenance then begin
          (* Each maintenance tick is a causal root of its own (never
             query-sampled): its probes answer to no query. *)
          let span =
            match Pdht_obs.Tracer.root_span tracer with
            | Some s -> Pdht_obs.Span.id s
            | None -> -1
          in
          Pdht_obs.Tracer.emit tracer
            (Pdht_obs.Event.make
               ~time:(Pdht_sim.Engine.now engine)
               ~messages:!sent_this_tick ~span Pdht_obs.Event.Maintenance)
        end
  in
  Pdht_sim.Engine.schedule_periodic engine ~first:interval ~every:interval tick;
  match refresh_every with
  | None -> ()
  | Some every ->
      if not (every > 0.) then
        invalid_arg "Maintenance.attach: refresh interval must be positive";
      let refreshes =
        match obs with
        | None -> None
        | Some (obs : Pdht_obs.Context.t) ->
            Some
              (Pdht_obs.Registry.counter obs.Pdht_obs.Context.registry
                 "maintenance.refresh_messages")
      in
      Pdht_sim.Engine.schedule_periodic engine ~first:every ~every (fun _engine ->
          let sent = Dht.refresh_sweep dht rng ~online in
          Pdht_sim.Metrics.charge metrics Pdht_sim.Metrics.Maintenance sent;
          match refreshes with
          | Some c -> Pdht_obs.Registry.incr c sent
          | None -> ())

let cost_per_key_per_second ~env ~members ~indexed_keys =
  if indexed_keys <= 0 then invalid_arg "Maintenance.cost_per_key_per_second: no keys";
  let m = float_of_int members in
  env *. log2 m *. m /. float_of_int indexed_keys
