(* Open-addressed flat store: one linear-probe int table (the interned
   62-bit keys themselves) plus parallel unboxed [expiry]/[last_touch]
   float arrays and a ['v] value array, all indexed by slot.  A slot is
   empty iff its key is [-1] (keys are non-negative by construction).
   Deletion is backward-shift (no tombstones), so probe chains never
   grow stale and the sweep in [expire] stays a single in-place pass.
   Load factor is kept at or below 1/2; tables start tiny (8 slots) so
   a million mostly-idle per-peer stores cost a few hundred bytes
   each. *)

type eviction =
  | Evict_soonest_expiry
  | Evict_lru
  | Evict_random

type 'v t = {
  capacity : int;
  eviction : eviction;
  rng : Pdht_util.Rng.t; (* only consulted by Evict_random *)
  mutable size : int;
  mutable mask : int; (* slot count - 1; slot count a power of two *)
  mutable keys : int array; (* Bitkey.to_int; -1 = empty *)
  mutable expiry : float array;
  mutable last_touch : float array;
  mutable values : 'v array; (* length 0 until the first [put] *)
}

let initial_slots = 8

let create ?(eviction = Evict_soonest_expiry) ?(seed = 0) ~capacity () =
  if capacity < 1 then invalid_arg "Storage.create: capacity must be >= 1";
  {
    capacity;
    eviction;
    rng = Pdht_util.Rng.create ~seed;
    size = 0;
    mask = initial_slots - 1;
    keys = Array.make initial_slots (-1);
    expiry = Array.make initial_slots 0.;
    last_touch = Array.make initial_slots 0.;
    values = [||];
  }

let capacity t = t.capacity
let eviction_policy t = t.eviction

(* Fibonacci hashing: the multiply spreads key entropy into the high
   bits, the xor-shift folds them back down before masking. *)
let home key mask =
  let h = key * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land mask

(* Slot of [key], or -1 when absent. *)
let find_slot t key =
  let mask = t.mask in
  let keys = t.keys in
  let i = ref (home key mask) in
  let s = ref (-1) in
  let continue = ref true in
  while !continue do
    let k = keys.(!i) in
    if k = key then begin
      s := !i;
      continue := false
    end
    else if k = -1 then continue := false
    else i := (!i + 1) land mask
  done;
  !s

(* Backward-shift deletion: walk the probe chain after [slot], moving
   back any entry whose home position does not lie strictly between the
   current hole and itself, then leave the final hole empty. *)
let delete_slot t slot =
  let mask = t.mask in
  let keys = t.keys in
  let hole = ref slot in
  let j = ref ((slot + 1) land mask) in
  let continue = ref true in
  while !continue do
    let k = keys.(!j) in
    if k = -1 then continue := false
    else begin
      let h = home k mask in
      if (!j - h) land mask >= (!j - !hole) land mask then begin
        keys.(!hole) <- k;
        t.expiry.(!hole) <- t.expiry.(!j);
        t.last_touch.(!hole) <- t.last_touch.(!j);
        if Array.length t.values > 0 then t.values.(!hole) <- t.values.(!j);
        hole := !j
      end;
      j := (!j + 1) land mask
    end
  done;
  keys.(!hole) <- -1;
  t.size <- t.size - 1

let grow t =
  let old_keys = t.keys
  and old_expiry = t.expiry
  and old_touch = t.last_touch
  and old_values = t.values in
  let slots = 2 * (t.mask + 1) in
  let mask = slots - 1 in
  t.mask <- mask;
  t.keys <- Array.make slots (-1);
  t.expiry <- Array.make slots 0.;
  t.last_touch <- Array.make slots 0.;
  if Array.length old_values > 0 then
    t.values <- Array.make slots old_values.(0);
  for i = 0 to Array.length old_keys - 1 do
    let k = old_keys.(i) in
    if k >= 0 then begin
      let j = ref (home k mask) in
      while t.keys.(!j) >= 0 do
        j := (!j + 1) land mask
      done;
      t.keys.(!j) <- k;
      t.expiry.(!j) <- old_expiry.(i);
      t.last_touch.(!j) <- old_touch.(i);
      t.values.(!j) <- old_values.(i)
    end
  done

(* In-place expiry sweep (no intermediate list): a backward shift can
   pull a later entry into the slot under examination, so the cursor
   only advances once the slot holds nothing expired. *)
let expire t ~now =
  let removed = ref 0 in
  let i = ref 0 in
  while !i <= t.mask do
    let k = t.keys.(!i) in
    if k >= 0 && t.expiry.(!i) <= now then begin
      delete_slot t !i;
      incr removed
    end
    else incr i
  done;
  !removed

(* Victim selection is a slot-order linear scan: capacity is a per-peer
   cache size (order 100 in the paper scenario), so a scan is cheaper
   than maintaining an ordered structure under the frequent TTL
   refreshes. *)
let evict_one t =
  if t.size > 0 then begin
    let best = ref (-1) in
    (match t.eviction with
    | Evict_soonest_expiry ->
        for i = 0 to t.mask do
          if
            t.keys.(i) >= 0
            && (!best = -1 || t.expiry.(i) < t.expiry.(!best))
          then best := i
        done
    | Evict_lru ->
        for i = 0 to t.mask do
          if
            t.keys.(i) >= 0
            && (!best = -1 || t.last_touch.(i) < t.last_touch.(!best))
          then best := i
        done
    | Evict_random ->
        let target = ref (Pdht_util.Rng.int t.rng t.size) in
        let i = ref 0 in
        while !best = -1 do
          if t.keys.(!i) >= 0 then begin
            if !target = 0 then best := !i else decr target
          end;
          incr i
        done);
    if !best >= 0 then delete_slot t !best
  end

let put t ~key ~value ~now ~ttl =
  if ttl <= 0. then invalid_arg "Storage.put: ttl must be positive";
  let k = Pdht_util.Bitkey.to_int key in
  let slot = find_slot t k in
  if slot >= 0 then begin
    t.expiry.(slot) <- now +. ttl;
    t.last_touch.(slot) <- now;
    t.values.(slot) <- value
  end
  else begin
    if t.size >= t.capacity then begin
      let _ = expire t ~now in
      if t.size >= t.capacity then evict_one t
    end;
    if 2 * (t.size + 1) > t.mask + 1 then grow t;
    if Array.length t.values = 0 then
      t.values <- Array.make (t.mask + 1) value;
    let mask = t.mask in
    let i = ref (home k mask) in
    while t.keys.(!i) >= 0 do
      i := (!i + 1) land mask
    done;
    t.keys.(!i) <- k;
    t.expiry.(!i) <- now +. ttl;
    t.last_touch.(!i) <- now;
    t.values.(!i) <- value;
    t.size <- t.size + 1
  end

(* Slot of a live entry under [key], purging it instead when expired. *)
let find_live_slot t ~key ~now =
  let slot = find_slot t (Pdht_util.Bitkey.to_int key) in
  if slot < 0 then -1
  else if t.expiry.(slot) <= now then begin
    delete_slot t slot;
    -1
  end
  else slot

let get t ~key ~now =
  let slot = find_live_slot t ~key ~now in
  if slot < 0 then None
  else begin
    t.last_touch.(slot) <- now;
    Some t.values.(slot)
  end

let get_and_refresh t ~key ~now ~ttl =
  let slot = find_live_slot t ~key ~now in
  if slot < 0 then None
  else begin
    t.expiry.(slot) <- now +. ttl;
    t.last_touch.(slot) <- now;
    Some t.values.(slot)
  end

let mem t ~key ~now = find_live_slot t ~key ~now >= 0

let remove t ~key =
  let slot = find_slot t (Pdht_util.Bitkey.to_int key) in
  if slot >= 0 then delete_slot t slot

let clear t =
  let n = t.size in
  Array.fill t.keys 0 (t.mask + 1) (-1);
  t.size <- 0;
  n

let live_count t ~now =
  let _ = expire t ~now in
  t.size

let fold_live t ~now ~init ~f =
  let _ = expire t ~now in
  let acc = ref init in
  for i = 0 to t.mask do
    if t.keys.(i) >= 0 then
      acc := f !acc (Pdht_util.Bitkey.of_int t.keys.(i)) t.values.(i)
  done;
  !acc

let expiry t ~key =
  let slot = find_slot t (Pdht_util.Bitkey.to_int key) in
  if slot < 0 then None else Some t.expiry.(slot)
