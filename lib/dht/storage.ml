type eviction =
  | Evict_soonest_expiry
  | Evict_lru
  | Evict_random

type 'v entry = { value : 'v; mutable expiry : float; mutable last_touch : float }

type 'v t = {
  capacity : int;
  eviction : eviction;
  table : (Pdht_util.Bitkey.t, 'v entry) Hashtbl.t;
  rng : Pdht_util.Rng.t; (* only consulted by Evict_random *)
}

let create ?(eviction = Evict_soonest_expiry) ?(seed = 0) ~capacity () =
  if capacity < 1 then invalid_arg "Storage.create: capacity must be >= 1";
  { capacity; eviction; table = Hashtbl.create (min capacity 64);
    rng = Pdht_util.Rng.create ~seed }

let capacity t = t.capacity
let eviction_policy t = t.eviction

let expire t ~now =
  let stale =
    Hashtbl.fold (fun k e acc -> if e.expiry <= now then k :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) stale;
  List.length stale

(* Victim selection is a linear scan: capacity is a per-peer cache size
   (order 100 in the paper scenario), so a scan is cheaper than
   maintaining an ordered structure under the frequent TTL refreshes. *)
let evict_one t =
  match t.eviction with
  | Evict_soonest_expiry ->
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | None -> Some (k, e.expiry)
            | Some (_, best) -> if e.expiry < best then Some (k, e.expiry) else acc)
          t.table None
      in
      (match victim with None -> () | Some (k, _) -> Hashtbl.remove t.table k)
  | Evict_lru ->
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | None -> Some (k, e.last_touch)
            | Some (_, best) -> if e.last_touch < best then Some (k, e.last_touch) else acc)
          t.table None
      in
      (match victim with None -> () | Some (k, _) -> Hashtbl.remove t.table k)
  | Evict_random ->
      let n = Hashtbl.length t.table in
      if n > 0 then begin
        let target = Pdht_util.Rng.int t.rng n in
        let idx = ref 0 in
        let victim = ref None in
        Hashtbl.iter
          (fun k _ ->
            if !idx = target then victim := Some k;
            incr idx)
          t.table;
        match !victim with None -> () | Some k -> Hashtbl.remove t.table k
      end

let put t ~key ~value ~now ~ttl =
  if ttl <= 0. then invalid_arg "Storage.put: ttl must be positive";
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        let _ = expire t ~now in
        if Hashtbl.length t.table >= t.capacity then evict_one t
      end);
  Hashtbl.replace t.table key { value; expiry = now +. ttl; last_touch = now }

let find_live t ~key ~now =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      if e.expiry <= now then begin
        Hashtbl.remove t.table key;
        None
      end
      else Some e

let get t ~key ~now =
  match find_live t ~key ~now with
  | None -> None
  | Some e ->
      e.last_touch <- now;
      Some e.value

let get_and_refresh t ~key ~now ~ttl =
  match find_live t ~key ~now with
  | None -> None
  | Some e ->
      e.expiry <- now +. ttl;
      e.last_touch <- now;
      Some e.value

let mem t ~key ~now = find_live t ~key ~now <> None
let remove t ~key = Hashtbl.remove t.table key

let clear t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  n

let live_count t ~now =
  let _ = expire t ~now in
  Hashtbl.length t.table

let fold_live t ~now ~init ~f =
  let _ = expire t ~now in
  Hashtbl.fold (fun k e acc -> f acc k e.value) t.table init

let expiry t ~key =
  match Hashtbl.find_opt t.table key with None -> None | Some e -> Some e.expiry
