module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng

type t = {
  ids : Bitkey.t array; (* member -> id *)
  sorted : int array; (* member indices sorted by id *)
  pos_in_sorted : int array;
  digit_bits : int;
  digit_count : int;
  leaf_set_size : int;
  routing : int option array array array; (* member -> row -> digit value -> entry *)
  groups : (int * int, int array) Hashtbl.t; (* (depth, prefix) -> members *)
}

let members t = Array.length t.ids
let id_of t m = t.ids.(m)

(* Circular distance on the 62-bit id space (2^62 = max_int + 1). *)
let circular_distance a b =
  let d = abs (Bitkey.to_int a - Bitkey.to_int b) in
  if d = 0 then 0 else min d (max_int - d + 1)

let digit t id i =
  let shift = Bitkey.width - ((i + 1) * t.digit_bits) in
  (Bitkey.to_int id lsr shift) land ((1 lsl t.digit_bits) - 1)

let shared_digit_prefix t a b =
  let rec go i = if i < t.digit_count && digit t a i = digit t b i then go (i + 1) else i in
  go 0

let prefix_key t id ~depth = (depth, Bitkey.to_int (Bitkey.prefix id ~len:(depth * t.digit_bits)))

let create rng ~members:n ?(digit_bits = 2) ?(leaf_set_size = 8) () =
  if n < 1 then invalid_arg "Pastry.create: need >= 1 member";
  if digit_bits < 1 || digit_bits > Bitkey.width then invalid_arg "Pastry.create: bad digit_bits";
  if leaf_set_size < 1 then invalid_arg "Pastry.create: leaf_set_size must be >= 1";
  let digit_count = Bitkey.width / digit_bits in
  let seen = Hashtbl.create n in
  let ids =
    Array.init n (fun _ ->
        let rec fresh () =
          let id = Bitkey.random rng in
          if Hashtbl.mem seen id then fresh ()
          else begin
            Hashtbl.add seen id ();
            id
          end
        in
        fresh ())
  in
  let sorted = Array.init n Fun.id in
  Array.sort (fun a b -> Bitkey.compare ids.(a) ids.(b)) sorted;
  let pos_in_sorted = Array.make n 0 in
  Array.iteri (fun p m -> pos_in_sorted.(m) <- p) sorted;
  let t0 =
    { ids; sorted; pos_in_sorted; digit_bits; digit_count; leaf_set_size;
      routing = [||]; groups = Hashtbl.create (4 * n) }
  in
  (* Depth is bounded by the point where prefixes become unique, well
     under log_{2^b} n + a margin; building every row past that depth
     would only create empty groups. *)
  let max_depth = min digit_count ((62 / digit_bits) + 1) in
  let useful_depth =
    let rec grow d =
      if d >= max_depth then d
      else begin
        (* Stop one level after every group is a singleton. *)
        let distinct = Hashtbl.create n in
        Array.iter (fun id -> Hashtbl.replace distinct (Bitkey.to_int (Bitkey.prefix id ~len:(d * digit_bits))) ()) ids;
        if Hashtbl.length distinct = n then d else grow (d + 1)
      end
    in
    grow 1
  in
  for depth = 0 to useful_depth do
    let acc = Hashtbl.create n in
    Array.iteri
      (fun m id ->
        let key = prefix_key t0 id ~depth in
        let existing = try Hashtbl.find acc key with Not_found -> [] in
        Hashtbl.replace acc key (m :: existing))
      ids;
    Hashtbl.iter (fun key ms -> Hashtbl.replace t0.groups key (Array.of_list ms)) acc
  done;
  let digit_values = 1 lsl digit_bits in
  let routing =
    Array.init n (fun m ->
        let id = ids.(m) in
        Array.init (min useful_depth digit_count) (fun row ->
            Array.init digit_values (fun d ->
                if d = digit t0 id row then None
                else begin
                  (* Members sharing [row] digits with us whose next
                     digit is [d]: the (row+1)-digit prefix formed from
                     our prefix plus digit d. *)
                  let base = Bitkey.prefix id ~len:(row * digit_bits) in
                  let shift = Bitkey.width - ((row + 1) * digit_bits) in
                  let target_prefix =
                    Bitkey.of_int (Bitkey.to_int base lor (d lsl shift))
                  in
                  match Hashtbl.find_opt t0.groups (row + 1, Bitkey.to_int target_prefix) with
                  | None | Some [||] -> None
                  | Some pool -> Some pool.(Rng.int rng (Array.length pool))
                end)))
  in
  { t0 with routing }

let leaf_set t m =
  let n = members t in
  let half = min t.leaf_set_size ((n - 1) / 2 + 1) in
  let pos = t.pos_in_sorted.(m) in
  let neighbors = ref [] in
  for i = 1 to half do
    neighbors := t.sorted.((pos + i) mod n) :: !neighbors;
    neighbors := t.sorted.(((pos - i) mod n + n) mod n) :: !neighbors
  done;
  let distinct = List.sort_uniq compare (List.filter (fun x -> x <> m) !neighbors) in
  let arr = Array.of_list distinct in
  Array.sort
    (fun a b -> compare (circular_distance t.ids.(a) t.ids.(m)) (circular_distance t.ids.(b) t.ids.(m)))
    arr;
  arr

let numerically_closest t key =
  let n = members t in
  (* Binary search for the id successor, then compare with the
     predecessor circularly. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Bitkey.compare t.ids.(t.sorted.(mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  let succ = t.sorted.(!lo mod n) in
  let pred = t.sorted.((!lo - 1 + n) mod n) in
  if circular_distance t.ids.(succ) key <= circular_distance t.ids.(pred) key then succ
  else pred

let replica_group t key ~k =
  let n = members t in
  let k = min k n in
  if k < 0 then invalid_arg "Pastry.replica_group: negative k";
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (circular_distance t.ids.(a) key) (circular_distance t.ids.(b) key))
    order;
  Array.sub order 0 k

let responsible t ~online key =
  let n = members t in
  let best = ref None in
  for m = 0 to n - 1 do
    if online m then
      match !best with
      | None -> best := Some m
      | Some b ->
          if circular_distance t.ids.(m) key < circular_distance t.ids.(b) key then
            best := Some m
  done;
  !best

type outcome = { responsible : int option; messages : int; hops : int }

let lookup ?span ?deliver t rng ~online ~source ~key =
  ignore rng;
  if source < 0 || source >= members t then invalid_arg "Pastry.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else
    match responsible t ~online key with
    | None -> { responsible = None; messages = 0; hops = 0 }
    | Some target ->
        let messages = ref 0 in
        let hops = ref 0 in
        let current = ref source in
        let stalled = ref false in
        (* One RPC per successful forward under the network model; an
           exhausted retry budget stalls the routing (miss path). *)
        let forward src dst =
          match deliver with None -> true | Some d -> d ~span ~src ~dst
        in
        (* Progress measure: (shared prefix length, numeric closeness)
           lexicographically — preferred hops grow the prefix, fallback
           hops keep it and shrink the distance, so the loop terminates;
           the hop budget is a backstop against pathological churn. *)
        let budget = (8 * t.digit_count) + members t in
        while !current <> target && not !stalled do
          if !hops > budget then stalled := true
          else begin
          let c = !current in
          let row = shared_digit_prefix t t.ids.(c) key in
          (* Preferred: the routing-table entry for the key's next
             digit. *)
          let preferred =
            if row < Array.length t.routing.(c) then
              t.routing.(c).(row).(digit t key row)
            else None
          in
          let next =
            match preferred with
            | Some m ->
                incr messages;
                if online m then Some m else None
            | None -> None
          in
          match next with
          | Some m ->
              if forward c m then begin
                incr hops;
                current := m
              end
              else stalled := true
          | None ->
              (* Fallback tiers (the standard Pastry "rare case" rule
                 plus leaf-set delivery):
                 (a) a known member numerically strictly closer that
                     shares at least as long a digit prefix — the
                     lexicographic progress measure never regresses;
                 (b) failing that, the numerically closest leaf-set
                     member if it improves on us — the delivery step
                     that hands the key to its owner even when the owner
                     sits across a digit boundary.
                 Each liveness check costs a message. *)
              let my_distance = circular_distance t.ids.(c) key in
              let leaves = Array.to_list (leaf_set t c) in
              let known =
                leaves
                @ (Array.to_list t.routing.(c)
                  |> List.concat_map Array.to_list
                  |> List.filter_map Fun.id)
              in
              let by_distance =
                List.sort (fun a b ->
                    compare (circular_distance t.ids.(a) key)
                      (circular_distance t.ids.(b) key))
              in
              let prefix_safe =
                List.filter
                  (fun m ->
                    circular_distance t.ids.(m) key < my_distance
                    && shared_digit_prefix t t.ids.(m) key >= row)
                  known
                |> List.sort_uniq compare |> by_distance
              in
              let leaf_delivery =
                List.filter
                  (fun m -> circular_distance t.ids.(m) key < my_distance)
                  leaves
                |> by_distance
              in
              let rec try_candidates = function
                | [] -> None
                | m :: rest ->
                    incr messages;
                    if online m then Some m else try_candidates rest
              in
              (match try_candidates prefix_safe with
              | Some m ->
                  if forward c m then begin
                    incr hops;
                    current := m
                  end
                  else stalled := true
              | None -> (
                  match try_candidates leaf_delivery with
                  | Some m ->
                      if forward c m then begin
                        incr hops;
                        current := m
                      end
                      else stalled := true
                  | None -> stalled := true))
          end
        done;
        if !current = target then { responsible = Some target; messages = !messages; hops = !hops }
        else { responsible = None; messages = !messages; hops = !hops }

let routing_table_size t m =
  let table =
    Array.fold_left
      (fun acc row ->
        acc + Array.fold_left (fun a e -> match e with Some _ -> a + 1 | None -> a) 0 row)
      0 t.routing.(m)
  in
  table + Array.length (leaf_set t m)

(* Crash-stop state loss: blank every routing-table entry of [peer].
   The leaf set is derived from the static sorted ring, so routing from
   the member degrades to leaf-set-only hand-offs (slow, often stalls —
   miss path) until {!rebuild_routes}.  [probe_and_repair] never fills a
   [None] slot. *)
let forget_routes t ~peer =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) None) t.routing.(peer)

(* Rejoin: refill the routing table from the prefix groups exactly as
   [create] does — a uniform pick per (row, digit) slot.  One message
   per entry learned (the state exchange of a Pastry join). *)
let rebuild_routes t rng ~peer =
  let id = t.ids.(peer) in
  let digit_values = 1 lsl t.digit_bits in
  let messages = ref 0 in
  Array.iteri
    (fun row entries ->
      for d = 0 to digit_values - 1 do
        if d = digit t id row then entries.(d) <- None
        else begin
          let base = Bitkey.prefix id ~len:(row * t.digit_bits) in
          let shift = Bitkey.width - ((row + 1) * t.digit_bits) in
          let target_prefix = Bitkey.of_int (Bitkey.to_int base lor (d lsl shift)) in
          match Hashtbl.find_opt t.groups (row + 1, Bitkey.to_int target_prefix) with
          | None | Some [||] -> entries.(d) <- None
          | Some pool ->
              entries.(d) <- Some pool.(Rng.int rng (Array.length pool));
              incr messages
        end
      done)
    t.routing.(peer);
  !messages

let probe_and_repair t rng ~online ~peer ~probes =
  if probes < 0 then invalid_arg "Pastry.probe_and_repair: negative probes";
  let rows = Array.length t.routing.(peer) in
  if rows = 0 then 0
  else begin
    let digit_values = 1 lsl t.digit_bits in
    for _ = 1 to probes do
      let row = Rng.int rng rows in
      let d = Rng.int rng digit_values in
      match t.routing.(peer).(row).(d) with
      | None -> ()
      | Some m ->
          if not (online m) then begin
            let base = Bitkey.prefix t.ids.(peer) ~len:(row * t.digit_bits) in
            let shift = Bitkey.width - ((row + 1) * t.digit_bits) in
            let target_prefix = Bitkey.of_int (Bitkey.to_int base lor (d lsl shift)) in
            match Hashtbl.find_opt t.groups (row + 1, Bitkey.to_int target_prefix) with
            | None | Some [||] -> ()
            | Some pool ->
                let tries = min 20 (2 * Array.length pool) in
                let rec attempt k =
                  if k = 0 then ()
                  else
                    let cand = pool.(Rng.int rng (Array.length pool)) in
                    if online cand && cand <> peer then
                      t.routing.(peer).(row).(d) <- Some cand
                    else attempt (k - 1)
                in
                attempt tries
          end
    done;
    probes
  end
