type backend = Chord_backend | Pgrid_backend | Kademlia_backend | Pastry_backend

type impl =
  | Chord of Chord.t
  | Pgrid of Pgrid.t
  | Kademlia of Kademlia.t
  | Pastry of Pastry.t

type t = { impl : impl }

let create rng ~backend ~members ?(leaf_size = 1) ?(refs_per_level = 3) () =
  match backend with
  | Chord_backend -> { impl = Chord (Chord.create rng ~members) }
  | Pgrid_backend -> { impl = Pgrid (Pgrid.build rng ~members ~leaf_size ~refs_per_level) }
  | Kademlia_backend ->
      { impl = Kademlia (Kademlia.create rng ~members ~bucket_size:(max 4 refs_per_level) ()) }
  | Pastry_backend ->
      { impl = Pastry (Pastry.create rng ~members ~leaf_set_size:(max 4 refs_per_level) ()) }

let backend t =
  match t.impl with
  | Chord _ -> Chord_backend
  | Pgrid _ -> Pgrid_backend
  | Kademlia _ -> Kademlia_backend
  | Pastry _ -> Pastry_backend

let backend_label = function
  | Chord_backend -> "chord"
  | Pgrid_backend -> "p-grid"
  | Kademlia_backend -> "kademlia"
  | Pastry_backend -> "pastry"

let members t =
  match t.impl with
  | Chord c -> Chord.members c
  | Pgrid g -> Pgrid.members g
  | Kademlia k -> Kademlia.members k
  | Pastry p -> Pastry.members p

type outcome = { responsible : int option; messages : int; hops : int }

let lookup ?span ?deliver t rng ~online ~source ~key =
  match t.impl with
  | Chord c ->
      let o = Chord.lookup ?span ?deliver c ~online ~source ~key in
      { responsible = o.Chord.responsible; messages = o.Chord.messages; hops = o.Chord.hops }
  | Pgrid g ->
      let o = Pgrid.lookup ?span ?deliver g rng ~online ~source ~key in
      { responsible = o.Pgrid.responsible; messages = o.Pgrid.messages; hops = o.Pgrid.hops }
  | Kademlia k ->
      let o = Kademlia.lookup ?span ?deliver k rng ~online ~source ~key in
      { responsible = o.Kademlia.responsible; messages = o.Kademlia.messages;
        hops = o.Kademlia.hops }
  | Pastry p ->
      let o = Pastry.lookup ?span ?deliver p rng ~online ~source ~key in
      { responsible = o.Pastry.responsible; messages = o.Pastry.messages;
        hops = o.Pastry.hops }

let responsible t ~online key =
  match t.impl with
  | Chord c -> Chord.responsible c ~online key
  | Pgrid g -> Pgrid.responsible g ~online key
  | Kademlia k -> Kademlia.responsible k ~online key
  | Pastry p -> Pastry.responsible p ~online key

let replica_group t ~repl key =
  match t.impl with
  | Chord c -> Chord.successors c key ~k:repl
  | Pgrid g -> Pgrid.responsible_peers g key
  | Kademlia k -> Kademlia.closest_members k key ~k:repl
  | Pastry p -> Pastry.replica_group p key ~k:repl

let probe_and_repair t rng ~online ~peer ~probes =
  match t.impl with
  | Chord c -> Chord.probe_and_repair c rng ~online ~peer ~probes
  | Pgrid g -> Pgrid.probe_and_repair g rng ~online ~peer ~probes
  | Kademlia k -> Kademlia.probe_and_repair k rng ~online ~peer ~probes
  | Pastry p -> Pastry.probe_and_repair p rng ~online ~peer ~probes

let forget_routes t ~peer =
  match t.impl with
  | Chord c -> Chord.forget_routes c ~peer
  | Pgrid g -> Pgrid.forget_routes g ~peer
  | Kademlia k -> Kademlia.forget_routes k ~peer
  | Pastry p -> Pastry.forget_routes p ~peer

let rebuild_routes t rng ~online ~peer =
  match t.impl with
  | Chord c -> Chord.rebuild_routes c ~online ~peer
  | Pgrid g -> Pgrid.rebuild_routes g rng ~peer
  | Kademlia k -> Kademlia.rebuild_routes k rng ~peer
  | Pastry p -> Pastry.rebuild_routes p rng ~peer

let routing_table_size t p =
  match t.impl with
  | Chord c -> Chord.finger_count c p
  | Pgrid g -> Pgrid.routing_table_size g p
  | Kademlia k -> Kademlia.routing_table_size k p
  | Pastry pa -> Pastry.routing_table_size pa p

let expected_lookup_messages t = Chord.expected_lookup_messages ~members:(members t)

let enable_live_routing ?probe_retries t =
  match t.impl with
  | Kademlia k -> Kademlia.enable_live_routing ?probe_retries k
  | Chord _ | Pgrid _ | Pastry _ ->
      invalid_arg "Dht.enable_live_routing: only the Kademlia backend has live k-buckets"

let live_routing t =
  match t.impl with Kademlia k -> Kademlia.live_routing k | _ -> false

let refresh_sweep t rng ~online =
  match t.impl with Kademlia k -> Kademlia.refresh_sweep k rng ~online | _ -> 0

let drain_probe_cost t =
  match t.impl with Kademlia k -> Kademlia.drain_probe_cost k | _ -> 0

let contact_stats t =
  match t.impl with Kademlia k -> Some (Kademlia.contact_stats k) | _ -> None
