(** P-Grid: a self-organizing binary-trie access structure ([Aber01]).

    The paper's own prototype runs on P-Grid, so we implement it as the
    primary structured substrate.  Construction recursively splits the
    member set: peers on the '0' side of a split extend their path with
    0, peers on the '1' side with 1, until at most [leaf_size] peers
    share a path.  A peer with path {m pi} is responsible for every key
    that starts with {m pi}; peers sharing a path are natural replicas.

    At each level [l] of its path a peer keeps [refs_per_level]
    references to peers on the complementary subtree.  Routing forwards
    a query to a reference at the first level where the key disagrees
    with the current peer's path, resolving at least one more bit per
    hop — the [O(log2 members)] behaviour the model's Eq. 7 assumes. *)

type t

val build :
  Pdht_util.Rng.t -> members:int -> leaf_size:int -> refs_per_level:int -> t
(** Requires [members >= 1], [leaf_size >= 1], [refs_per_level >= 1]. *)

val members : t -> int
val path_of : t -> int -> string
(** The peer's binary path as a '0'/'1' string. *)

val path_length : t -> int -> int
val max_path_length : t -> int

val responsible_peers : t -> Pdht_util.Bitkey.t -> int array
(** All peers (the leaf replica group) whose path prefixes the key. *)

val responsible : t -> online:(int -> bool) -> Pdht_util.Bitkey.t -> int option
(** Any online peer of the responsible leaf (lowest index for
    determinism). *)

val refs_at : t -> peer:int -> level:int -> int array
(** Complementary-subtree references of [peer] at [level] (< its path
    length). *)

type outcome = { responsible : int option; messages : int; hops : int }

val lookup :
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  t ->
  Pdht_util.Rng.t ->
  online:(int -> bool) ->
  source:int ->
  key:Pdht_util.Bitkey.t ->
  outcome
(** Route from [source]; each forwarding attempt costs one message,
    attempts to offline references cost one message each (timeout).
    Fails ([responsible = None]) if some level's references are all
    offline and the local leaf cannot answer — or, with [deliver]
    supplied (one RPC per forward hop), when a hop's delivery budget is
    exhausted. *)

val probe_and_repair :
  t -> Pdht_util.Rng.t -> online:(int -> bool) -> peer:int -> probes:int -> int
(** Probe random routing references; offline ones are replaced by a
    random online peer from the same complementary subtree (repair free,
    probes cost one message each — see {!Chord.probe_and_repair}). *)

val routing_table_size : t -> int -> int
(** Total references a peer currently holds. *)

val forget_routes : t -> peer:int -> unit
(** Crash-stop routing loss: empty every reference level of [peer].
    Lookups from the member fail at their first hop (dead level) until
    {!rebuild_routes}; {!probe_and_repair} skips empty levels and never
    restores them. *)

val rebuild_routes : t -> Pdht_util.Rng.t -> peer:int -> int
(** Rejoin: re-sample [refs_per_level] fresh references per level from
    the complementary subtrees, as at construction.  Returns the message
    cost — one exchange per reference learned. *)
