(** Per-peer bounded key-value store with expiration times.

    This implements the paper's index-cache behaviour directly: "Each
    key has an expiration time keyTtl ... The expiration time of a key
    is reset ... whenever the peer that stores the key receives a query
    for it.  Therefore, peers evict those keys from their local storage
    that have not been queried for keyTtl rounds" (Section 5.1), over a
    cache of [stor] key-value pairs per peer (Table 1).

    When a peer's cache is full, something must go.  Expired entries are
    always purged first; the {!eviction} policy picks the victim among
    live entries.  The paper's TTL semantics make {!Evict_soonest_expiry}
    the natural choice (the entry the algorithm was going to drop next);
    the alternatives exist for the ablation bench. *)

type eviction =
  | Evict_soonest_expiry  (** drop the entry closest to timing out *)
  | Evict_lru             (** drop the least recently touched entry *)
  | Evict_random          (** drop a pseudo-random entry (deterministic
                              in the store's construction seed) *)

type 'v t

val create : ?eviction:eviction -> ?seed:int -> capacity:int -> unit -> 'v t
(** Requires [capacity >= 1].  [eviction] defaults to
    {!Evict_soonest_expiry}; [seed] (default 0) only matters for
    {!Evict_random}. *)

val capacity : 'v t -> int
val eviction_policy : 'v t -> eviction

val put : 'v t -> key:Pdht_util.Bitkey.t -> value:'v -> now:float -> ttl:float -> unit
(** Insert or overwrite; expiry becomes [now +. ttl].  On a full store,
    expired entries are purged, then the policy victim is evicted. *)

val get : 'v t -> key:Pdht_util.Bitkey.t -> now:float -> 'v option
(** Lookup; expired entries are treated as absent (and purged).  Does
    NOT refresh the TTL — that is the caller's policy decision.  Counts
    as a touch for LRU purposes. *)

val get_and_refresh :
  'v t -> key:Pdht_util.Bitkey.t -> now:float -> ttl:float -> 'v option
(** The paper's query-hit behaviour: on a hit, the expiration time is
    reset to [now +. ttl]. *)

val mem : 'v t -> key:Pdht_util.Bitkey.t -> now:float -> bool
(** Like {!get} but without the LRU touch (read-only probe). *)

val remove : 'v t -> key:Pdht_util.Bitkey.t -> unit

val clear : 'v t -> int
(** Drop every entry, live or expired, and return how many there were —
    the crash-stop "index cache lost" operation.  Does not touch the
    eviction RNG, so a cleared store's future [Evict_random] choices are
    unchanged. *)

val expire : 'v t -> now:float -> int
(** Purge everything past expiry; returns the number evicted. *)

val live_count : 'v t -> now:float -> int
(** Non-expired entries (purges as a side effect). *)

val fold_live : 'v t -> now:float -> init:'a -> f:('a -> Pdht_util.Bitkey.t -> 'v -> 'a) -> 'a

val expiry : 'v t -> key:Pdht_util.Bitkey.t -> float option
(** Current expiration instant of a key, if present (possibly already
    past). *)
