(** Peer session (churn) model.

    "Peers continuously join and leave the system" (paper Section
    3.3.1); P2P clients are "extremely transient" [ChRa03].  Each peer
    alternates independently between online sessions and offline gaps.
    The classic fit to Gnutella traces [MaCa03] uses exponential
    durations ({!create}); later DHT measurement work finds
    heavy-tailed session lengths, which {!create_spec} models through a
    {!Pdht_dist.Session.spec} (lognormal / Weibull / Pareto legs,
    exponential unchanged as the default).

    The model is driven by a {!Pdht_sim.Engine}: [attach] schedules the
    on/off toggle events.  Without an engine it can also be stepped
    manually with [toggle]. *)

type t

val create :
  Pdht_util.Rng.t ->
  peers:int ->
  mean_uptime:float ->
  mean_downtime:float ->
  initially_online_fraction:float ->
  t
(** Exponential sessions.  Durations in seconds, both strictly
    positive.  Each peer starts online with probability
    [initially_online_fraction]. *)

val create_spec : Pdht_util.Rng.t -> peers:int -> Pdht_dist.Session.spec -> t
(** General session-length distributions.  The spec is validated
    ([Invalid_argument] on a bad one); an all-exponential spec behaves
    exactly like {!create} with the same parameters. *)

val always_online : peers:int -> t
(** Degenerate model with no churn (for model-validation runs). *)

val peers : t -> int
val online : t -> int -> bool
val online_count : t -> int
val availability : t -> float
(** Stationary expected fraction online:
    [mean_uptime / (mean_uptime + mean_downtime)] (1. without churn). *)

val attach : t -> Pdht_sim.Engine.t -> unit
(** Schedule every peer's next toggle on the engine; toggles reschedule
    themselves, so one call drives the model for the whole run. *)

val instrument : t -> Pdht_obs.Context.t -> unit
(** Register churn telemetry: the ["churn.session_length"] histogram
    (seconds between a peer's consecutive transitions — completed
    uptime and downtime sessions alike), the ["churn.transitions"]
    counter, the ["churn.online_count"] gauge, and a [Churn] trace
    event per transition.  Call before {!attach} fires any toggles. *)

val on_toggle : t -> (peer:int -> now_online:bool -> time:float -> unit) -> unit
(** Register a callback fired at every session transition (after the
    state change).  Callbacks run in registration order; registration
    is amortised O(1) (a growable array — the per-peer rejoin hooks
    register thousands of callbacks). *)

val toggle : t -> int -> float -> unit
(** [toggle t peer time] flips the peer's session state now and fires
    every registered callback — the manual stepping primitive behind
    [attach], exposed for drivers and tests. *)

val session_changes : t -> int
(** Total number of transitions so far (a churn-intensity measure). *)
