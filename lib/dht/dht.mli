(** Uniform facade over the structured substrates.

    The PDHT core is generic over "a traditional DHT" (the paper
    analyses the class, not one system); this module erases the
    difference between {!Chord}, {!Pgrid}, {!Kademlia} and {!Pastry}
    behind one lookup/maintain interface — supporting the paper's claim
    that the scheme "can be used for any of the DHT based systems". *)

type backend = Chord_backend | Pgrid_backend | Kademlia_backend | Pastry_backend

val backend_label : backend -> string

type t

val create :
  Pdht_util.Rng.t ->
  backend:backend ->
  members:int ->
  ?leaf_size:int ->
  ?refs_per_level:int ->
  unit ->
  t
(** [leaf_size] applies to P-Grid (default 1); [refs_per_level]
    (default 3) sets P-Grid's per-level references, Kademlia's bucket
    size and Pastry's leaf-set half-width (floored at 4 for the
    latter two, which need redundancy to terminate routing). *)

val backend : t -> backend
val members : t -> int

type outcome = { responsible : int option; messages : int; hops : int }

val lookup :
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  t ->
  Pdht_util.Rng.t ->
  online:(int -> bool) ->
  source:int ->
  key:Pdht_util.Bitkey.t ->
  outcome
(** [deliver] threads the network model's per-hop RPC verdict into the
    backend (see each backend's [lookup]); a failed delivery makes the
    lookup fail ([responsible = None]) or routes around the silent peer,
    never raises.  Omitted = reliable, instantaneous semantics.
    [span] is this routing's causal span id ({!Pdht_obs.Span}),
    forwarded to every [deliver] call so the network layer can parent
    its per-hop trace events. *)

val responsible : t -> online:(int -> bool) -> Pdht_util.Bitkey.t -> int option

val replica_group : t -> repl:int -> Pdht_util.Bitkey.t -> int array
(** The peers that should hold a key, targeting [repl] replicas: for
    Chord the key's [repl] ring successors; for P-Grid the responsible
    leaf group (build with [leaf_size = repl] to match — the group is
    whatever the trie split produced); for Kademlia the [repl]
    XOR-closest members; for Pastry the [repl] numerically closest. *)

val probe_and_repair :
  t -> Pdht_util.Rng.t -> online:(int -> bool) -> peer:int -> probes:int -> int

val forget_routes : t -> peer:int -> unit
(** Crash-stop routing loss for one member: drop every routing entry it
    holds (fingers / references / buckets / table rows, per backend).
    Lookups *from* the member degrade to their worst case or fail until
    {!rebuild_routes}; other members route around it via the ordinary
    churn handling while it is offline. *)

val rebuild_routes : t -> Pdht_util.Rng.t -> online:(int -> bool) -> peer:int -> int
(** Rejoin: reconstruct the member's routing state as its backend's join
    protocol would, returning the message cost.  [rng] drives the
    re-sampling backends (P-Grid / Kademlia / Pastry); Chord rebuilds
    deterministically against [online]. *)

val routing_table_size : t -> int -> int

val expected_lookup_messages : t -> float
(** Eq. 7 with this DHT's member count. *)

(** {2 Live routing tables}

    Kademlia-only: switch the backend's k-buckets from the frozen
    build-time snapshot to mutable, self-healing tables (replacement
    caches, liveness probing, contact-driven promotion — see
    {!Kademlia.enable_live_routing}). *)

val enable_live_routing : ?probe_retries:int -> t -> unit
(** @raise Invalid_argument on any backend but Kademlia. *)

val live_routing : t -> bool
(** [false] for every non-Kademlia backend. *)

val refresh_sweep : t -> Pdht_util.Rng.t -> online:(int -> bool) -> int
(** One bucket-refresh pass over every stale bucket range of every
    online member (see {!Kademlia.refresh_sweep}); returns the message
    cost.  0 for non-Kademlia backends and for a Kademlia table whose
    live mode is off. *)

val drain_probe_cost : t -> int
(** Collect (and reset) the messages spent on contact-driven liveness
    probes since the last drain, for charging to maintenance.  0 when
    live routing is off. *)

val contact_stats : t -> (int * int) option
(** Kademlia: [(contacts, dead_contacts)] over all lookups so far — the
    stale-route rate is [dead / max 1 contacts].  [None] elsewhere. *)
