module Bitkey = Pdht_util.Bitkey

type t = {
  ids : Bitkey.t array; (* member -> id *)
  ring : int array; (* position -> member, sorted by id *)
  pos : int array; (* member -> position *)
  fingers : int array array; (* member -> finger level -> member *)
  finger_ids : Bitkey.t array array; (* member -> finger level -> ideal target id *)
}

let members t = Array.length t.ids
let id_of t m = t.ids.(m)

(* Position of the first ring id at or clockwise after [key]. *)
let successor_pos t key =
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  (* Invariant: ids of ring positions < !lo are < key; >= !hi are >= key. *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Bitkey.compare t.ids.(t.ring.(mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let successor_member t key = t.ring.(successor_pos t key)

let first_online_from t ~online start_pos =
  let n = Array.length t.ring in
  let rec walk i =
    if i = n then None
    else
      let m = t.ring.((start_pos + i) mod n) in
      if online m then Some m else walk (i + 1)
  in
  walk 0

let responsible t ~online key = first_online_from t ~online (successor_pos t key)

let successors t key ~k =
  let n = Array.length t.ring in
  let k = min k n in
  if k < 0 then invalid_arg "Chord.successors: negative k";
  let start = successor_pos t key in
  Array.init k (fun i -> t.ring.((start + i) mod n))

let half_add id offset =
  (* (id + offset) mod 2^63, staying non-negative. *)
  Bitkey.of_int ((Bitkey.to_int id + offset) land max_int)

let create rng ~members:n =
  if n < 1 then invalid_arg "Chord.create: need >= 1 member";
  let seen = Hashtbl.create n in
  let ids =
    Array.init n (fun _ ->
        let rec fresh () =
          let id = Bitkey.random rng in
          if Hashtbl.mem seen id then fresh ()
          else begin
            Hashtbl.add seen id ();
            id
          end
        in
        fresh ())
  in
  let ring = Array.init n Fun.id in
  Array.sort (fun a b -> Bitkey.compare ids.(a) ids.(b)) ring;
  let pos = Array.make n 0 in
  Array.iteri (fun p m -> pos.(m) <- p) ring;
  let t = { ids; ring; pos; fingers = [||]; finger_ids = [||] } in
  let finger_ids =
    Array.init n (fun m -> Array.init Bitkey.width (fun j -> half_add ids.(m) (1 lsl j)))
  in
  let fingers =
    Array.init n (fun m -> Array.map (fun target -> successor_member t target) finger_ids.(m))
  in
  { t with fingers; finger_ids }

let in_open_interval ~a ~b x =
  (* Circular open interval (a, b); empty when a = b. *)
  if Bitkey.compare a b < 0 then Bitkey.compare a x < 0 && Bitkey.compare x b < 0
  else if Bitkey.compare a b > 0 then Bitkey.compare x a > 0 || Bitkey.compare x b < 0
  else false

type outcome = { responsible : int option; messages : int; hops : int }

let lookup ?span ?deliver t ~online ~source ~key =
  if source < 0 || source >= members t then invalid_arg "Chord.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else
    match responsible t ~online key with
    | None -> { responsible = None; messages = 0; hops = 0 }
    | Some target ->
        let messages = ref 0 in
        let hops = ref 0 in
        let current = ref source in
        let failed = ref false in
        let n = members t in
        (* Forwarding the lookup to the next node is one RPC under the
           network model; an exhausted retry budget aborts the routing
           (the caller degrades to its miss path). *)
        let forward src dst =
          match deliver with None -> true | Some d -> d ~span ~src ~dst
        in
        (* Each iteration strictly advances clockwise toward the key, so
           the loop terminates after at most [n] hops. *)
        while !current <> target && not !failed do
          let c = !current in
          let id_c = t.ids.(c) in
          (* Closest preceding online finger within (id_c, key). *)
          let chosen = ref None in
          let j = ref (Bitkey.width - 1) in
          while !chosen = None && !j >= 0 do
            let f = t.fingers.(c).(!j) in
            if f <> c && in_open_interval ~a:id_c ~b:key t.ids.(f) then begin
              incr messages; (* probe / forward attempt *)
              if online f then chosen := Some f
            end;
            decr j
          done;
          (match !chosen with
          | Some f ->
              if forward c f then begin
                incr hops;
                current := f
              end
              else failed := true
          | None ->
              (* No useful finger: walk the ring successor by successor,
                 paying for timeouts on offline members. *)
              let rec walk i =
                if i > n then None
                else
                  let m = t.ring.((t.pos.(c) + i) mod n) in
                  incr messages;
                  if online m then Some m else walk (i + 1)
              in
              (match walk 1 with
              | Some m ->
                  if forward c m then begin
                    incr hops;
                    current := m
                  end
                  else failed := true
              | None -> current := target (* unreachable: target is online *)))
        done;
        if !failed then { responsible = None; messages = !messages; hops = !hops }
        else { responsible = Some target; messages = !messages; hops = !hops }

let finger_targets t m =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun f ->
      if not (Hashtbl.mem seen f) then begin
        Hashtbl.add seen f ();
        acc := f :: !acc
      end)
    t.fingers.(m);
  Array.of_list (List.rev !acc)

let finger_count t m = Array.length (finger_targets t m)

let probe_and_repair t rng ~online ~peer ~probes =
  if probes < 0 then invalid_arg "Chord.probe_and_repair: negative probes";
  let levels = Array.length t.fingers.(peer) in
  for _ = 1 to probes do
    let j = Pdht_util.Rng.int rng levels in
    let target = t.fingers.(peer).(j) in
    if not (online target) then begin
      let ideal = t.finger_ids.(peer).(j) in
      match first_online_from t ~online (successor_pos t ideal) with
      | Some fresh -> t.fingers.(peer).(j) <- fresh
      | None -> ()
    end
  done;
  probes

(* Crash-stop state loss: point every finger of [peer] at itself.
   [lookup] skips self-fingers, so until the member rebuilds it can only
   walk the ring successor by successor — the behaviour of a node that
   lost its finger table.  Other members' fingers *to* the crashed node
   are handled by the existing [probe_and_repair] (it is offline while
   crashed). *)
let forget_routes t ~peer =
  let fingers = t.fingers.(peer) in
  for j = 0 to Array.length fingers - 1 do
    fingers.(j) <- peer
  done

(* Rejoin: recompute the finger table the way a Chord join does — one
   lookup per finger level, landing on the first *online* member at or
   after the ideal target.  Returns the message cost (one per level). *)
let rebuild_routes t ~online ~peer =
  let fingers = t.fingers.(peer) in
  let levels = Array.length fingers in
  for j = 0 to levels - 1 do
    let ideal = t.finger_ids.(peer).(j) in
    match first_online_from t ~online (successor_pos t ideal) with
    | Some fresh -> fingers.(j) <- fresh
    | None -> fingers.(j) <- successor_member t ideal
  done;
  levels

let expected_lookup_messages ~members =
  0.5 *. (Float.log (float_of_int members) /. Float.log 2.)
