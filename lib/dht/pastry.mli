(** Pastry: prefix routing with leaf sets ([RoDr01]).

    The fourth structured substrate — and the one whose maintenance
    behaviour [MaCa03] measured to calibrate the paper's [env] constant,
    so it belongs in this reproduction.  Identifiers are sequences of
    base-[2^b] digits; each member keeps a routing table with one row
    per shared-prefix length (a matching entry per digit value) and a
    leaf set of the [leaf_set_size] numerically closest members on each
    side.  Routing resolves one digit per hop, giving
    O(log_{2^b} members) lookups; the leaf set finishes the last hop and
    provides the key's replica group.

    Membership is fixed at construction; churn arrives as an [online]
    predicate per call, exactly as for {!Chord}, {!Pgrid} and
    {!Kademlia}. *)

type t

val create :
  Pdht_util.Rng.t -> members:int -> ?digit_bits:int -> ?leaf_set_size:int -> unit -> t
(** [digit_bits] (b, default 2: base-4 digits) must divide into
    {!Pdht_util.Bitkey.width} at least once; [leaf_set_size] (default 8)
    is the leaf-set half-width.  Requires [members >= 1]. *)

val members : t -> int
val id_of : t -> int -> Pdht_util.Bitkey.t

val numerically_closest : t -> Pdht_util.Bitkey.t -> int
(** Owner of a key ignoring churn: the member whose id minimises
    |id - key| on the circular id space. *)

val leaf_set : t -> int -> int array
(** A member's leaf set (both sides, nearest first). *)

val replica_group : t -> Pdht_util.Bitkey.t -> k:int -> int array
(** The [min k members] members numerically closest to the key — the
    Pastry replica group. *)

val responsible : t -> online:(int -> bool) -> Pdht_util.Bitkey.t -> int option
(** Numerically closest online member. *)

type outcome = {
  responsible : int option;
  messages : int;
  hops : int;
}

val lookup :
  ?span:int ->
  ?deliver:(span:int option -> src:int -> dst:int -> bool) ->
  t ->
  Pdht_util.Rng.t ->
  online:(int -> bool) ->
  source:int ->
  key:Pdht_util.Bitkey.t ->
  outcome
(** Prefix routing from [source]; offline routing entries cost a timeout
    message each and fall back to the leaf set (and, in the worst case,
    a numerically-closer known member), as in deployed Pastry.
    [deliver] is one RPC per successful forward; a [false] verdict
    stalls the routing ([responsible = None]). *)

val routing_table_size : t -> int -> int

val probe_and_repair :
  t -> Pdht_util.Rng.t -> online:(int -> bool) -> peer:int -> probes:int -> int
(** The shared [MaCa03] probing discipline: probe random routing
    entries, replace discovered-offline ones with an online member
    matching the same prefix slot when available. *)

val forget_routes : t -> peer:int -> unit
(** Crash-stop routing loss: blank every routing-table entry of [peer]
    (the leaf set, derived from the static ring, survives).  Routing
    from the member degrades badly until {!rebuild_routes};
    {!probe_and_repair} never fills blank slots. *)

val rebuild_routes : t -> Pdht_util.Rng.t -> peer:int -> int
(** Rejoin: refill the member's routing table from the prefix groups as
    at construction.  Returns the message cost — one exchange per entry
    learned. *)
