module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng
module Sampling = Pdht_util.Sampling

type t = {
  paths : string array; (* peer -> binary path *)
  refs : int array array array; (* peer -> level -> complementary references *)
  leaves : (string, int array) Hashtbl.t; (* terminal path -> replica group *)
  subtrees : (string, int array) Hashtbl.t; (* any trie prefix -> peers under it *)
  refs_per_level : int;
  max_depth : int;
  (* Per-instance candidate buffer for [lookup]: each hop copies the
     current level's references here and shuffles the prefix, instead of
     allocating an [Array.copy] per hop.  Single-owner state — a P-Grid
     instance belongs to one simulated system / domain. *)
  lookup_buf : int array;
  (* Flat binary trie over the leaf paths, for allocation-free
     [responsible_peers]: descending the string-keyed [leaves] table
     would build a prefix string per level on every call, and replica
     subnetworks resolve their groups through this on the query path.
     [trie_child.(2 * node + bit)] is the child node or -1;
     [trie_leaf.(node)] is the leaf's replica group, [||] for interior
     nodes. *)
  trie_child : int array;
  trie_leaf : int array array;
}

let members t = Array.length t.paths
let path_of t p = t.paths.(p)
let path_length t p = String.length t.paths.(p)
let max_path_length t = t.max_depth

let build rng ~members:n ~leaf_size ~refs_per_level =
  if n < 1 then invalid_arg "Pgrid.build: need >= 1 member";
  if leaf_size < 1 then invalid_arg "Pgrid.build: leaf_size must be >= 1";
  if refs_per_level < 1 then invalid_arg "Pgrid.build: refs_per_level must be >= 1";
  let paths = Array.make n "" in
  let leaves = Hashtbl.create 64 in
  let subtrees = Hashtbl.create 256 in
  let max_depth = ref 0 in
  (* Balanced recursive split: both halves differ in size by at most
     one, giving near-uniform path lengths — the shape a converged
     P-Grid reaches under uniform load. *)
  let rec split prefix peers =
    Hashtbl.replace subtrees prefix peers;
    if Array.length peers <= leaf_size || String.length prefix >= Bitkey.width then begin
      Hashtbl.replace leaves prefix peers;
      Array.iter (fun p -> paths.(p) <- prefix) peers;
      if String.length prefix > !max_depth then max_depth := String.length prefix
    end
    else begin
      let shuffled = Array.copy peers in
      Sampling.shuffle rng shuffled;
      let half = Array.length shuffled / 2 in
      split (prefix ^ "0") (Array.sub shuffled 0 half);
      split (prefix ^ "1") (Array.sub shuffled half (Array.length shuffled - half))
    end
  in
  split "" (Array.init n Fun.id);
  let complement path l =
    let flipped = if path.[l] = '0' then '1' else '0' in
    String.sub path 0 l ^ String.make 1 flipped
  in
  let refs =
    Array.init n (fun p ->
        let path = paths.(p) in
        Array.init (String.length path) (fun l ->
            let pool = Hashtbl.find subtrees (complement path l) in
            let k = min refs_per_level (Array.length pool) in
            let idx = Sampling.sample_without_replacement rng ~k ~n:(Array.length pool) in
            Array.map (fun i -> pool.(i)) idx))
  in
  (* Materialise the leaf trie as flat arrays.  Node 0 is the root; the
     node count is bounded by one interior node per path character plus
     the root. *)
  let node_bound =
    1 + Hashtbl.fold (fun path _ acc -> acc + String.length path) leaves 0
  in
  let trie_child = Array.make (2 * node_bound) (-1) in
  let trie_leaf = Array.make node_bound [||] in
  let next_node = ref 1 in
  Hashtbl.iter
    (fun path peers ->
      let node = ref 0 in
      String.iter
        (fun c ->
          let slot = (2 * !node) + if c = '1' then 1 else 0 in
          (if trie_child.(slot) < 0 then begin
             trie_child.(slot) <- !next_node;
             incr next_node
           end);
          node := trie_child.(slot))
        path;
      trie_leaf.(!node) <- peers)
    leaves;
  { paths; refs; leaves; subtrees; refs_per_level; max_depth = !max_depth;
    lookup_buf = Array.make (max 1 refs_per_level) 0; trie_child; trie_leaf }

(* Top-level recursion (not local closures): [lookup] calls these a
   couple of times per hop, and a local [let rec] would allocate its
   closure on every call. *)
let rec key_matches_from key path i =
  i = String.length path
  || (Bitkey.bit key i = (String.unsafe_get path i = '1') && key_matches_from key path (i + 1))

let key_matches_path key path = key_matches_from key path 0

let rec match_length_from key path n i =
  if i < n && Bitkey.bit key i = (String.unsafe_get path i = '1') then
    match_length_from key path n (i + 1)
  else i

(* Length of the longest common prefix of the key's bits and [path]. *)
let match_length key path = match_length_from key path (String.length path) 0

let responsible_peers t key =
  (* Walk the flat trie by key bits — no prefix strings, no lookups in
     the string-keyed tables.  Returns the shared group array exactly
     as the table-backed descent did; callers treat it as read-only. *)
  let rec walk node i =
    let leaf = t.trie_leaf.(node) in
    if Array.length leaf > 0 then leaf
    else if i >= Bitkey.width then [||]
    else
      let child = t.trie_child.((2 * node) + if Bitkey.bit key i then 1 else 0) in
      if child < 0 then [||] else walk child (i + 1)
  in
  walk 0 0

let responsible t ~online key =
  let peers = responsible_peers t key in
  let rec scan i =
    if i = Array.length peers then None
    else if online peers.(i) then Some peers.(i)
    else scan (i + 1)
  in
  scan 0

let refs_at t ~peer ~level =
  if level < 0 || level >= Array.length t.refs.(peer) then
    invalid_arg "Pgrid.refs_at: level out of range";
  t.refs.(peer).(level)

type outcome = { responsible : int option; messages : int; hops : int }

let lookup ?span ?deliver t rng ~online ~source ~key =
  if source < 0 || source >= members t then invalid_arg "Pgrid.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else begin
    let messages = ref 0 in
    let hops = ref 0 in
    let current = ref source in
    let failed = ref false in
    let arrived = ref (key_matches_path key t.paths.(source)) in
    (* Every hop extends the matched prefix by at least one bit, so the
       loop runs at most [max_depth] times. *)
    while (not !arrived) && not !failed do
      let path = t.paths.(!current) in
      let l = match_length key path in
      let refs = t.refs.(!current).(l) in
      let len = Array.length refs in
      let candidates = t.lookup_buf in
      Array.blit refs 0 candidates 0 len;
      (* Try the level's references in a uniformly random order, but
         generate that order lazily (incremental Fisher-Yates): the
         scan stops at the first online reference, so drawing the full
         shuffle up front would waste RNG draws on candidates never
         contacted.  The sequence of tried candidates is distributed
         exactly as a scan over a fully shuffled copy. *)
      let next = ref (-1) in
      let i = ref 0 in
      while !next < 0 && !i < len do
        let j = !i + Rng.int rng (len - !i) in
        let c = candidates.(j) in
        candidates.(j) <- candidates.(!i);
        candidates.(!i) <- c;
        incr messages;
        if online c then next := c;
        incr i
      done;
      if !next >= 0 then begin
        (* Forward hop = one RPC under the network model; an exhausted
           retry budget fails the lookup like a dead level would. *)
        let delivered =
          match deliver with None -> true | Some d -> d ~span ~src:!current ~dst:!next
        in
        if delivered then begin
          incr hops;
          current := !next;
          if key_matches_path key t.paths.(!next) then arrived := true
        end
        else failed := true
      end
      else failed := true
    done;
    if !failed then { responsible = None; messages = !messages; hops = !hops }
    else { responsible = Some !current; messages = !messages; hops = !hops }
  end

let probe_and_repair t rng ~online ~peer ~probes =
  if probes < 0 then invalid_arg "Pgrid.probe_and_repair: negative probes";
  let levels = Array.length t.refs.(peer) in
  if levels = 0 then 0
  else begin
    for _ = 1 to probes do
      let l = Rng.int rng levels in
      let arr = t.refs.(peer).(l) in
      if Array.length arr > 0 then begin
        let i = Rng.int rng (Array.length arr) in
        if not (online arr.(i)) then begin
          (* Replace with an online peer from the same complementary
             subtree, if one exists. *)
          let path = t.paths.(peer) in
          let flipped = if path.[l] = '0' then '1' else '0' in
          let comp = String.sub path 0 l ^ String.make 1 flipped in
          let pool = Hashtbl.find t.subtrees comp in
          let tries = min 20 (2 * Array.length pool) in
          let rec attempt k =
            if k = 0 then ()
            else
              let cand = pool.(Rng.int rng (Array.length pool)) in
              if online cand then arr.(i) <- cand else attempt (k - 1)
          in
          attempt tries
        end
      end
    done;
    probes
  end

let routing_table_size t p =
  Array.fold_left (fun acc refs -> acc + Array.length refs) 0 t.refs.(p)

let complement_prefix path l =
  let flipped = if path.[l] = '0' then '1' else '0' in
  String.sub path 0 l ^ String.make 1 flipped

(* Crash-stop state loss: empty every reference level of [peer].
   [lookup] from it then fails at the first hop (dead level) and the
   caller degrades to its miss path; [probe_and_repair] skips empty
   levels, so only {!rebuild_routes} restores them. *)
let forget_routes t ~peer =
  let refs = t.refs.(peer) in
  for l = 0 to Array.length refs - 1 do
    refs.(l) <- [||]
  done

(* Rejoin: re-run the construction-time exchange for one peer — sample
   [refs_per_level] fresh references from each complementary subtree.
   One message per reference learned (the P-Grid exchange that taught
   it). *)
let rebuild_routes t rng ~peer =
  let path = t.paths.(peer) in
  let refs = t.refs.(peer) in
  let messages = ref 0 in
  for l = 0 to Array.length refs - 1 do
    let pool = Hashtbl.find t.subtrees (complement_prefix path l) in
    let k = min t.refs_per_level (Array.length pool) in
    let idx = Sampling.sample_without_replacement rng ~k ~n:(Array.length pool) in
    refs.(l) <- Array.map (fun i -> pool.(i)) idx;
    messages := !messages + k
  done;
  !messages
