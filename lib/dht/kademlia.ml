module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng
module Rules = Pdht_proto.Bucket_rules

(* Flat-state Kademlia.  Ids double as their own int keys: [sorted_ids]
   holds the raw 62-bit ids in ascending order with [sorted_members]
   giving the owning member per position, which makes the id set an
   implicit binary trie — descending into the child that matches the
   query key's bit at each depth enumerates members in exactly
   increasing XOR distance, so k-NN ([closest_members]) and
   nearest-online ([responsible]) are O(k + log n) walks instead of a
   full sort / full scan.  Lookups run on generation-stamped scratch
   owned by [t] (the PR 3 [Scratch] discipline): no per-lookup
   Hashtbls, no per-round candidate lists. *)
(* Live routing state (opt-in): mutable k-buckets with LRS..MRS order,
   a per-bucket replacement cache, and the counters the churn
   experiments read.  [None] = the frozen reservoir tables below, the
   exact pre-existing behaviour. *)
type live = {
  lbuckets : int array array array; (* member -> cpl bucket -> k slots *)
  llen : int array array; (* occupancy; slot 0 = least-recently-seen *)
  cache : int array array array; (* replacement cache, oldest first *)
  clen : int array array;
  touched : bool array array; (* contact since the last refresh sweep *)
  range_nonempty : bool array array; (* does anyone live in this range *)
  probe_retries : int; (* dead-probe retry ladder (Rpc_machine schedule) *)
  mutable pending_probe_cost : int; (* contact-driven probes, undrained *)
  mutable probes : int;
  mutable probe_messages : int;
  mutable refresh_messages : int;
  mutable evictions : int;
  mutable promotions : int;
  mutable insertions : int;
  mutable cache_fills : int;
}

type t = {
  ids : Bitkey.t array; (* member -> id *)
  sorted_ids : int array; (* raw ids, ascending *)
  sorted_members : int array; (* member owning sorted_ids.(i) *)
  buckets : int array array array; (* member -> cpl bucket -> entries *)
  bucket_size : int;
  alpha : int;
  mutable live : live option;
  (* lookup contact accounting (both table modes): how many contact
     attempts the iterative searches made, and how many hit a peer that
     turned out dead — the numerator of the stale-route rate. *)
  mutable contacts : int;
  mutable dead_contacts : int;
  (* per-lookup scratch; a slot is live iff its stamp equals the
     current generation *)
  mutable generation : int;
  cand_stamp : int array;
  contacted_stamp : int array;
  dead_stamp : int array;
  mutable cand_buf : int array;
  mutable cand_len : int;
  table_dist : int array; (* routing-table sort scratch *)
  table_buf : int array;
  batch_dist : int array; (* alpha smallest pending, ascending *)
  batch_buf : int array;
}

let members t = Array.length t.ids
let id_of t m = t.ids.(m)

let distance key id = Bitkey.xor_distance key id

(* First position in [lo, hi) whose id has bit [depth] set (MSB-first).
   Within a segment sharing all bits above [depth], ascending id order
   puts every 0-bit id before every 1-bit id. *)
let split t lo hi depth =
  let bit = 1 lsl (Bitkey.width - 1 - depth) in
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if t.sorted_ids.(mid) land bit = 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Visit members in strictly increasing XOR distance from [key],
   stopping early when [f] returns [false].  At each trie level the
   child whose bit matches the key is exhausted first; ids are distinct,
   so every segment of two or more ids has a discriminating bit and the
   recursion terminates. *)
let rec visit_xor t keybits lo hi depth f =
  if lo >= hi then true
  else if hi - lo = 1 then f t.sorted_members.(lo)
  else begin
    let mid = split t lo hi depth in
    if mid = lo || mid = hi then visit_xor t keybits lo hi (depth + 1) f
    else if keybits land (1 lsl (Bitkey.width - 1 - depth)) <> 0 then
      if visit_xor t keybits mid hi (depth + 1) f then
        visit_xor t keybits lo mid (depth + 1) f
      else false
    else if visit_xor t keybits lo mid (depth + 1) f then
      visit_xor t keybits mid hi (depth + 1) f
    else false
  end

let visit_closest t key f =
  ignore (visit_xor t (Bitkey.to_int key) 0 (members t) 0 f)

(* The [k] members closest to [key] in XOR distance: the first [k]
   stops of the trie walk, already in increasing-distance order (the
   order the old full sort produced — XOR distances of distinct ids are
   distinct, so the ordering is unique). *)
let closest_members t key ~k =
  let n = members t in
  let k = min k n in
  if k < 0 then invalid_arg "Kademlia.closest_members: negative k";
  if k = 0 then [||]
  else begin
    let out = Array.make k 0 in
    let count = ref 0 in
    visit_closest t key (fun m ->
        out.(!count) <- m;
        incr count;
        !count < k);
    out
  end

(* Nearest online member = first online stop of the same walk. *)
let responsible t ~online key =
  let best = ref (-1) in
  visit_closest t key (fun m ->
      if online m then begin
        best := m;
        false
      end
      else true);
  if !best < 0 then None else Some !best

let create rng ~members:n ?(bucket_size = 8) ?(alpha = 3) () =
  if n < 1 then invalid_arg "Kademlia.create: need >= 1 member";
  if bucket_size < 1 then invalid_arg "Kademlia.create: bucket_size must be >= 1";
  if alpha < 1 then invalid_arg "Kademlia.create: alpha must be >= 1";
  (* Bulk id draw with a sorted-array duplicate check instead of a
     boxed-key Hashtbl per peer.  A collision among n 62-bit draws has
     probability ~n^2/2^63, so the fix-up loop below effectively never
     runs and the RNG stream matches the old draw-until-fresh
     implementation in every collision-free run (the only runs that
     occur in practice). *)
  let ids = Array.init n (fun _ -> Bitkey.random rng) in
  let order = Array.init n Fun.id in
  let sort_order () =
    Array.sort
      (fun a b ->
        compare (Bitkey.to_int ids.(a)) (Bitkey.to_int ids.(b)))
      order
  in
  sort_order ();
  let rec dedup () =
    let clashed = ref false in
    for i = 1 to n - 1 do
      if Bitkey.equal ids.(order.(i)) ids.(order.(i - 1)) then begin
        clashed := true;
        (* redraw at the later member index, as the sequential
           implementation would have *)
        let victim = max order.(i) order.(i - 1) in
        ids.(victim) <- Bitkey.random rng
      end
    done;
    if !clashed then begin
      sort_order ();
      dedup ()
    end
  in
  dedup ();
  let sorted_ids = Array.make n 0 in
  let sorted_members = Array.make n 0 in
  for i = 0 to n - 1 do
    sorted_ids.(i) <- Bitkey.to_int ids.(order.(i));
    sorted_members.(i) <- order.(i)
  done;
  (* Global construction: reservoir-sample up to [bucket_size] members
     into each common-prefix-length bucket.  One O(n^2) pass with a
     cheap inner body; fine at simulation scale. *)
  let buckets =
    Array.init n (fun m ->
        let mine = ids.(m) in
        let per_bucket = Array.make Bitkey.width [] in
        let counts = Array.make Bitkey.width 0 in
        for other = 0 to n - 1 do
          if other <> m then begin
            let cpl = Bitkey.common_prefix_length mine ids.(other) in
            let b = min cpl (Bitkey.width - 1) in
            counts.(b) <- counts.(b) + 1;
            if List.length per_bucket.(b) < bucket_size then
              per_bucket.(b) <- other :: per_bucket.(b)
            else if Rng.int rng counts.(b) < bucket_size then begin
              (* Reservoir replacement keeps bucket membership uniform
                 among eligible members. *)
              let keep = List.filteri (fun i _ -> i > 0) per_bucket.(b) in
              per_bucket.(b) <- other :: keep
            end
          end
        done;
        Array.map Array.of_list per_bucket)
  in
  {
    ids;
    sorted_ids;
    sorted_members;
    buckets;
    bucket_size;
    alpha;
    live = None;
    contacts = 0;
    dead_contacts = 0;
    generation = 0;
    cand_stamp = Array.make n 0;
    contacted_stamp = Array.make n 0;
    dead_stamp = Array.make n 0;
    cand_buf = Array.make 64 0;
    cand_len = 0;
    table_dist = Array.make (Bitkey.width * bucket_size) 0;
    table_buf = Array.make (Bitkey.width * bucket_size) 0;
    batch_dist = Array.make alpha 0;
    batch_buf = Array.make alpha 0;
  }

let bucket_of t m other =
  min (Bitkey.common_prefix_length t.ids.(m) t.ids.(other)) (Bitkey.width - 1)

let live_routing t = t.live <> None

(* Which cpl buckets of member [m] cover a non-empty id range: one walk
   down the implicit trie — at depth [d] the segment shares [m]'s first
   [d] bits, and the opposite child holds exactly the members at cpl
   [d].  O(width + log n) per member, so enabling live routing stays
   cheap at scale. *)
let compute_range_nonempty t m =
  let out = Array.make Bitkey.width false in
  let keybits = Bitkey.to_int t.ids.(m) in
  let lo = ref 0 and hi = ref (members t) and depth = ref 0 in
  while !hi - !lo > 1 && !depth < Bitkey.width do
    let mid = split t !lo !hi !depth in
    let bit_set = keybits land (1 lsl (Bitkey.width - 1 - !depth)) <> 0 in
    let diff = if bit_set then mid - !lo else !hi - mid in
    if diff > 0 then out.(!depth) <- true;
    if bit_set then lo := mid else hi := mid;
    incr depth
  done;
  out

(* Switch the member tables from the frozen reservoir arrays to living
   k-buckets, seeded from the reservoir contents (existing entries
   become the initial LRS..MRS order).  No RNG is consumed: enabling
   live routing after [create] leaves every stream exactly where the
   frozen path would have it. *)
let enable_live_routing ?(probe_retries = 3) t =
  if probe_retries < 0 then
    invalid_arg "Kademlia.enable_live_routing: negative probe_retries";
  if t.live = None then begin
    let n = members t in
    let k = t.bucket_size in
    let lbuckets = Array.init n (fun _ -> Array.init Bitkey.width (fun _ -> Array.make k 0)) in
    let llen = Array.init n (fun _ -> Array.make Bitkey.width 0) in
    for m = 0 to n - 1 do
      Array.iteri
        (fun b entries ->
          let take = min (Array.length entries) k in
          Array.blit entries 0 lbuckets.(m).(b) 0 take;
          llen.(m).(b) <- take)
        t.buckets.(m)
    done;
    t.live <-
      Some
        {
          lbuckets;
          llen;
          cache = Array.init n (fun _ -> Array.init Bitkey.width (fun _ -> Array.make k 0));
          clen = Array.init n (fun _ -> Array.make Bitkey.width 0);
          touched = Array.init n (fun _ -> Array.make Bitkey.width false);
          range_nonempty = Array.init n (fun m -> compute_range_nonempty t m);
          probe_retries;
          pending_probe_cost = 0;
          probes = 0;
          probe_messages = 0;
          refresh_messages = 0;
          evictions = 0;
          promotions = 0;
          insertions = 0;
          cache_fills = 0;
        }
  end

(* Index of [peer] in the first [len] slots of [arr], or -1. *)
let slot_of arr len peer =
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < len do
    if arr.(!i) = peer then found := !i;
    incr i
  done;
  !found

(* Remove slot [i], keeping order (shift the tail left). *)
let remove_slot arr len i =
  Array.blit arr (i + 1) arr i (len - i - 1)

(* Append at the most-recently-seen end of the replacement cache,
   displacing the oldest entry when full. *)
let cache_add lv ~owner ~bucket peer =
  let arr = lv.cache.(owner).(bucket) in
  let len = lv.clen.(owner).(bucket) in
  let i = slot_of arr len peer in
  if i >= 0 then begin
    remove_slot arr len i;
    arr.(len - 1) <- peer
  end
  else if len < Array.length arr then begin
    arr.(len) <- peer;
    lv.clen.(owner).(bucket) <- len + 1
  end
  else begin
    remove_slot arr len 0;
    arr.(len - 1) <- peer
  end

(* Pop the most recently cached entry of the bucket, if any. *)
let cache_pop lv ~owner ~bucket =
  let len = lv.clen.(owner).(bucket) in
  if len = 0 then None
  else begin
    lv.clen.(owner).(bucket) <- len - 1;
    Some lv.cache.(owner).(bucket).(len - 1)
  end

let cache_remove lv ~owner ~bucket peer =
  let arr = lv.cache.(owner).(bucket) in
  let len = lv.clen.(owner).(bucket) in
  let i = slot_of arr len peer in
  if i >= 0 then begin
    remove_slot arr len i;
    lv.clen.(owner).(bucket) <- len - 1
  end

(* [owner] just heard from [peer] (a lookup contact, either direction).
   Apply the Kademlia rule: promote if present, insert if room,
   otherwise liveness-probe the least-recently-seen entry and evict or
   keep.  The probe is a real maintenance message: an alive entry costs
   one probe, a dead one the whole timeout ladder; both accrue in
   [pending_probe_cost] until the maintenance tick drains them. *)
let note_contact t lv ~online ~owner ~peer =
  if owner <> peer then begin
    let b = bucket_of t owner peer in
    let arr = lv.lbuckets.(owner).(b) in
    let len = lv.llen.(owner).(b) in
    let i = slot_of arr len peer in
    lv.touched.(owner).(b) <- true;
    match Rules.on_contact
            { Rules.occupancy = len; capacity = t.bucket_size; present = i >= 0 }
    with
    | Rules.Promote ->
        remove_slot arr len i;
        arr.(len - 1) <- peer;
        lv.promotions <- lv.promotions + 1
    | Rules.Insert ->
        arr.(len) <- peer;
        lv.llen.(owner).(b) <- len + 1;
        lv.insertions <- lv.insertions + 1
    | Rules.Probe_lrs -> (
        let lrs = arr.(0) in
        let alive = online lrs in
        let cost = Rules.probe_messages ~retries:lv.probe_retries ~alive in
        lv.probes <- lv.probes + 1;
        lv.probe_messages <- lv.probe_messages + cost;
        lv.pending_probe_cost <- lv.pending_probe_cost + cost;
        match Rules.on_probe (if alive then Rules.Lrs_alive else Rules.Lrs_dead) with
        | Rules.Keep_old_cache_new ->
            remove_slot arr len 0;
            arr.(len - 1) <- lrs;
            cache_add lv ~owner ~bucket:b peer
        | Rules.Evict_insert_new ->
            remove_slot arr len 0;
            arr.(len - 1) <- peer;
            lv.evictions <- lv.evictions + 1)
  end

(* A lookup contact to [peer] timed out: route around it.  With a
   replacement cached, evict and back-fill; with an empty cache, KEEP
   the entry but demote it to least-recently-seen — Kademlia never
   discards a route it cannot replace (a stale route beats a shorter
   table, and under session churn the peer usually comes back).  The
   demoted entry is the next liveness probe's first target. *)
let note_dead t lv ~owner ~peer =
  if owner <> peer then begin
    let b = bucket_of t owner peer in
    let arr = lv.lbuckets.(owner).(b) in
    let len = lv.llen.(owner).(b) in
    cache_remove lv ~owner ~bucket:b peer;
    let i = slot_of arr len peer in
    if i >= 0 then begin
      lv.touched.(owner).(b) <- true;
      match cache_pop lv ~owner ~bucket:b with
      | Some fill ->
          remove_slot arr len i;
          arr.(len - 1) <- fill;
          lv.cache_fills <- lv.cache_fills + 1
      | None ->
          for j = i downto 1 do
            arr.(j) <- arr.(j - 1)
          done;
          arr.(0) <- peer
    end
  end

type live_stats = {
  probes : int;
  probe_messages : int;
  refresh_messages : int;
  evictions : int;
  promotions : int;
  insertions : int;
  cache_fills : int;
}

let live_stats t =
  Option.map
    (fun (lv : live) ->
      {
        probes = lv.probes;
        probe_messages = lv.probe_messages;
        refresh_messages = lv.refresh_messages;
        evictions = lv.evictions;
        promotions = lv.promotions;
        insertions = lv.insertions;
        cache_fills = lv.cache_fills;
      })
    t.live

let contact_stats t = (t.contacts, t.dead_contacts)

let drain_probe_cost t =
  match t.live with
  | None -> 0
  | Some lv ->
      let c = lv.pending_probe_cost in
      lv.pending_probe_cost <- 0;
      c

(* One refresh pass: every online member re-looks-up each bucket range
   that saw no contact since the previous sweep (and is non-empty in
   the global id space — ranges nobody occupies are never refreshable).
   A refresh costs the lookup's [alpha] probes plus one FIND_NODE-style
   exchange per fresh entry learned; learned entries are live members
   of the range, found by bounded sampling as in the frozen repair. *)
let refresh_sweep t rng ~online =
  match t.live with
  | None -> 0
  | Some lv ->
      let n = members t in
      let messages = ref 0 in
      for m = 0 to n - 1 do
        if online m then begin
          let tb = lv.touched.(m) in
          for b = 0 to Bitkey.width - 1 do
            if lv.range_nonempty.(m).(b) && not tb.(b) then begin
              messages := !messages + t.alpha;
              let arr = lv.lbuckets.(m).(b) in
              let missing = t.bucket_size - lv.llen.(m).(b) in
              let attempts = ref (30 * max 1 missing) in
              while lv.llen.(m).(b) < t.bucket_size && !attempts > 0 do
                decr attempts;
                let cand = Rng.int rng n in
                if
                  cand <> m && online cand
                  && bucket_of t m cand = b
                  && slot_of arr lv.llen.(m).(b) cand < 0
                then begin
                  let len = lv.llen.(m).(b) in
                  arr.(len) <- cand;
                  lv.llen.(m).(b) <- len + 1;
                  incr messages
                end
              done
            end;
            tb.(b) <- false
          done
        end
      done;
      lv.refresh_messages <- lv.refresh_messages + !messages;
      !messages

type outcome = { responsible : int option; messages : int; hops : int }

(* In-place quicksort of (dist, member) pairs held in two parallel
   scratch arrays — the routing-table answers are a few hundred entries
   at most, and sorting them in scratch replaces the old per-contact
   List.sort allocation. *)
let rec sort_pairs dist buf lo hi =
  if hi - lo > 1 then begin
    let pivot = dist.((lo + hi) lsr 1) in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while dist.(!i) < pivot do incr i done;
      while dist.(!j) > pivot do decr j done;
      if !i <= !j then begin
        let d = dist.(!i) in
        dist.(!i) <- dist.(!j);
        dist.(!j) <- d;
        let m = buf.(!i) in
        buf.(!i) <- buf.(!j);
        buf.(!j) <- m;
        incr i;
        decr j
      end
    done;
    sort_pairs dist buf lo (!j + 1);
    sort_pairs dist buf !i hi
  end

let lookup ?span ?deliver t rng ~online ~source ~key =
  ignore rng;
  if source < 0 || source >= members t then invalid_arg "Kademlia.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else
    match responsible t ~online key with
    | None -> { responsible = None; messages = 0; hops = 0 }
    | Some target ->
        let messages = ref 0 in
        let hops = ref 0 in
        t.generation <- t.generation + 1;
        let gen = t.generation in
        t.cand_len <- 0;
        let add_candidate m =
          if t.cand_stamp.(m) <> gen then begin
            t.cand_stamp.(m) <- gen;
            if t.cand_len = Array.length t.cand_buf then begin
              let bigger = Array.make (2 * t.cand_len) 0 in
              Array.blit t.cand_buf 0 bigger 0 t.cand_len;
              t.cand_buf <- bigger
            end;
            t.cand_buf.(t.cand_len) <- m;
            t.cand_len <- t.cand_len + 1
          end
        in
        (* A member's routing-table answer to "who do you know near
           [key]?": its bucket entries, closest [bucket_size] first.
           Sorted in scratch; entries duplicated by past repairs count
           against the quota exactly as they did in the old sorted
           list. *)
        let add_closest_in_table member =
          let len = ref 0 in
          (match t.live with
          | Some lv ->
              let buckets = lv.lbuckets.(member) in
              let lens = lv.llen.(member) in
              for b = 0 to Array.length buckets - 1 do
                let bucket = buckets.(b) in
                for i = 0 to lens.(b) - 1 do
                  t.table_buf.(!len) <- bucket.(i);
                  t.table_dist.(!len) <- distance key t.ids.(bucket.(i));
                  incr len
                done
              done
          | None ->
              let buckets = t.buckets.(member) in
              for b = 0 to Array.length buckets - 1 do
                let bucket = buckets.(b) in
                for i = 0 to Array.length bucket - 1 do
                  t.table_buf.(!len) <- bucket.(i);
                  t.table_dist.(!len) <- distance key t.ids.(bucket.(i));
                  incr len
                done
              done);
          sort_pairs t.table_dist t.table_buf 0 !len;
          let take = min !len t.bucket_size in
          for i = 0 to take - 1 do
            add_candidate t.table_buf.(i)
          done
        in
        t.contacted_stamp.(source) <- gen;
        add_closest_in_table source;
        let best_online = ref source in
        let finished = ref (source = target) in
        while not !finished do
          (* Up to alpha closest uncontacted, un-dead candidates, in
             increasing distance (the head of the old sorted pending
             list — XOR distances of distinct ids never tie). *)
          let batch_len = ref 0 in
          for idx = 0 to t.cand_len - 1 do
            let m = t.cand_buf.(idx) in
            if t.contacted_stamp.(m) <> gen && t.dead_stamp.(m) <> gen then begin
              let d = distance key t.ids.(m) in
              if !batch_len < t.alpha then begin
                let p = ref !batch_len in
                while !p > 0 && t.batch_dist.(!p - 1) > d do
                  t.batch_dist.(!p) <- t.batch_dist.(!p - 1);
                  t.batch_buf.(!p) <- t.batch_buf.(!p - 1);
                  decr p
                done;
                t.batch_dist.(!p) <- d;
                t.batch_buf.(!p) <- m;
                incr batch_len
              end
              else if d < t.batch_dist.(t.alpha - 1) then begin
                let p = ref (t.alpha - 1) in
                while !p > 0 && t.batch_dist.(!p - 1) > d do
                  t.batch_dist.(!p) <- t.batch_dist.(!p - 1);
                  t.batch_buf.(!p) <- t.batch_buf.(!p - 1);
                  decr p
                done;
                t.batch_dist.(!p) <- d;
                t.batch_buf.(!p) <- m
              end
            end
          done;
          if !batch_len = 0 then finished := true
          else begin
            incr hops;
            for i = 0 to !batch_len - 1 do
              let m = t.batch_buf.(i) in
              incr messages;
              t.contacts <- t.contacts + 1;
              (* The iterative caller contacts each candidate directly;
                 under the network model that contact is one RPC
                 (consulted only for live candidates — offline ones
                 already pay their timeout message), and an exhausted
                 retry budget makes the candidate look dead —
                 Kademlia's native tolerance to unresponsive nodes, no
                 abort needed. *)
              if
                online m
                && (match deliver with None -> true | Some d -> d ~span ~src:source ~dst:m)
              then begin
                t.contacted_stamp.(m) <- gen;
                if distance key t.ids.(m) < distance key t.ids.(!best_online) then
                  best_online := m;
                add_closest_in_table m;
                (* Living tables learn from the contact in both
                   directions, as real FIND_NODE traffic does. *)
                match t.live with
                | Some lv ->
                    note_contact t lv ~online ~owner:source ~peer:m;
                    note_contact t lv ~online ~owner:m ~peer:source
                | None -> ()
              end
              else begin
                t.dead_stamp.(m) <- gen;
                t.dead_contacts <- t.dead_contacts + 1;
                match t.live with
                | Some lv -> note_dead t lv ~owner:source ~peer:m
                | None -> ()
              end
            done;
            if !best_online = target then finished := true
          end
        done;
        let result = if !best_online = target then Some target else None in
        { responsible = result; messages = !messages; hops = !hops }

let bucket_count t m =
  match t.live with
  | Some lv ->
      Array.fold_left (fun acc len -> if len > 0 then acc + 1 else acc) 0 lv.llen.(m)
  | None ->
      Array.fold_left
        (fun acc b -> if Array.length b > 0 then acc + 1 else acc)
        0 t.buckets.(m)

let routing_table_size t m =
  match t.live with
  | Some lv -> Array.fold_left ( + ) 0 lv.llen.(m)
  | None -> Array.fold_left (fun acc b -> acc + Array.length b) 0 t.buckets.(m)

(* Crash-stop state loss: empty every k-bucket of [peer].  Lookups from
   the member then start with no candidates and fail immediately (miss
   path); [probe_and_repair] only touches non-empty buckets, so only
   {!rebuild_routes} restores the table. *)
let forget_routes t ~peer =
  let buckets = t.buckets.(peer) in
  for b = 0 to Array.length buckets - 1 do
    buckets.(b) <- [||]
  done;
  match t.live with
  | Some lv ->
      Array.fill lv.llen.(peer) 0 Bitkey.width 0;
      Array.fill lv.clen.(peer) 0 Bitkey.width 0;
      Array.fill lv.touched.(peer) 0 Bitkey.width false
  | None -> ()

(* Rejoin: repopulate [peer]'s k-buckets with the construction-time
   reservoir pass (uniform bucket membership among eligible members).
   One message per entry learned — the FIND_NODE traffic of a Kademlia
   join. *)
let rebuild_routes t rng ~peer =
  let n = members t in
  let mine = t.ids.(peer) in
  let per_bucket = Array.make Bitkey.width [] in
  let counts = Array.make Bitkey.width 0 in
  for other = 0 to n - 1 do
    if other <> peer then begin
      let cpl = Bitkey.common_prefix_length mine t.ids.(other) in
      let b = min cpl (Bitkey.width - 1) in
      counts.(b) <- counts.(b) + 1;
      if List.length per_bucket.(b) < t.bucket_size then
        per_bucket.(b) <- other :: per_bucket.(b)
      else if Rng.int rng counts.(b) < t.bucket_size then begin
        let keep = List.filteri (fun i _ -> i > 0) per_bucket.(b) in
        per_bucket.(b) <- other :: keep
      end
    end
  done;
  let messages = ref 0 in
  Array.iteri
    (fun b entries ->
      let arr = Array.of_list entries in
      t.buckets.(peer).(b) <- arr;
      messages := !messages + Array.length arr)
    per_bucket;
  (match t.live with
  | Some lv ->
      (* Seed the living table from the freshly joined reservoir (same
         draws as the frozen path, so stream parity holds per mode). *)
      for b = 0 to Bitkey.width - 1 do
        let entries = t.buckets.(peer).(b) in
        let take = min (Array.length entries) t.bucket_size in
        Array.blit entries 0 lv.lbuckets.(peer).(b) 0 take;
        lv.llen.(peer).(b) <- take;
        lv.clen.(peer).(b) <- 0;
        lv.touched.(peer).(b) <- true
      done
  | None -> ());
  !messages

(* Living-table maintenance: each budgeted probe liveness-checks the
   least-recently-seen entry of a random non-empty bucket — the entry
   the Kademlia rule says to distrust first.  An alive entry rotates to
   most-recently-seen for one message; a dead one eats the full retry
   ladder, is evicted, and the bucket back-fills from the replacement
   cache.  The return value also drains the contact-driven probe cost
   accrued by lookups since the last tick, so every probe message ends
   up charged to the maintenance account exactly once. *)
let live_probe_and_repair t lv rng ~online ~peer ~probes =
  let lens = lv.llen.(peer) in
  let nonempty = ref [] in
  let count = ref 0 in
  for b = Bitkey.width - 1 downto 0 do
    if lens.(b) > 0 then begin
      nonempty := b :: !nonempty;
      incr count
    end
  done;
  let sent = ref (drain_probe_cost t) in
  if !count > 0 then begin
    let nonempty = Array.of_list !nonempty in
    for _ = 1 to probes do
      let b = nonempty.(Rng.int rng !count) in
      let len = lens.(b) in
      if len > 0 then begin
        let arr = lv.lbuckets.(peer).(b) in
        let lrs = arr.(0) in
        let alive = online lrs in
        let cost = Rules.probe_messages ~retries:lv.probe_retries ~alive in
        lv.probes <- lv.probes + 1;
        lv.probe_messages <- lv.probe_messages + cost;
        sent := !sent + cost;
        lv.touched.(peer).(b) <- true;
        (match Rules.on_probe (if alive then Rules.Lrs_alive else Rules.Lrs_dead) with
        | Rules.Keep_old_cache_new ->
            remove_slot arr len 0;
            arr.(len - 1) <- lrs
        | Rules.Evict_insert_new -> (
            (* The full retry ladder confirmed the entry dead — unlike
               a single lookup timeout ([note_dead] demotes but keeps),
               this is strong enough evidence to evict outright.  Refill
               from the replacement cache if possible, else learn a live
               member of the range (the shared [MaCa03] repair
               discipline, one exchange per entry learned).  If the
               range offers no live member right now the bucket stays
               short until a later contact or refresh sweep back-fills
               it. *)
            remove_slot arr len 0;
            lens.(b) <- len - 1;
            lv.evictions <- lv.evictions + 1;
            match cache_pop lv ~owner:peer ~bucket:b with
            | Some fill ->
                arr.(len - 1) <- fill;
                lens.(b) <- len;
                lv.cache_fills <- lv.cache_fills + 1
            | None ->
                let n = members t in
                let attempts = ref 30 in
                let found = ref false in
                while (not !found) && !attempts > 0 do
                  decr attempts;
                  let cand = Rng.int rng n in
                  if
                    cand <> peer && online cand
                    && bucket_of t peer cand = b
                    && slot_of arr (len - 1) cand < 0
                  then begin
                    arr.(len - 1) <- cand;
                    lens.(b) <- len;
                    incr sent;
                    found := true
                  end
                done))
      end
    done
  end;
  !sent

let probe_and_repair t rng ~online ~peer ~probes =
  if probes < 0 then invalid_arg "Kademlia.probe_and_repair: negative probes";
  match t.live with
  | Some lv -> live_probe_and_repair t lv rng ~online ~peer ~probes
  | None ->
  let nonempty =
    Array.to_list (Array.mapi (fun i b -> (i, b)) t.buckets.(peer))
    |> List.filter (fun (_, b) -> Array.length b > 0)
    |> Array.of_list
  in
  if Array.length nonempty = 0 then 0
  else begin
    let mine = t.ids.(peer) in
    for _ = 1 to probes do
      let b_idx, bucket = nonempty.(Rng.int rng (Array.length nonempty)) in
      let i = Rng.int rng (Array.length bucket) in
      if not (online bucket.(i)) then begin
        (* Replace with a random online member sharing the same bucket
           (common-prefix-length) if one exists; bounded sampling keeps
           the repair cheap. *)
        let n = members t in
        let rec attempt k =
          if k = 0 then ()
          else
            let cand = Rng.int rng n in
            let cpl = Bitkey.common_prefix_length mine t.ids.(cand) in
            let cand_bucket = min cpl (Bitkey.width - 1) in
            if cand <> peer && online cand && cand_bucket = b_idx then bucket.(i) <- cand
            else attempt (k - 1)
        in
        attempt 30
      end
    done;
    probes
  end
