module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng

(* Flat-state Kademlia.  Ids double as their own int keys: [sorted_ids]
   holds the raw 62-bit ids in ascending order with [sorted_members]
   giving the owning member per position, which makes the id set an
   implicit binary trie — descending into the child that matches the
   query key's bit at each depth enumerates members in exactly
   increasing XOR distance, so k-NN ([closest_members]) and
   nearest-online ([responsible]) are O(k + log n) walks instead of a
   full sort / full scan.  Lookups run on generation-stamped scratch
   owned by [t] (the PR 3 [Scratch] discipline): no per-lookup
   Hashtbls, no per-round candidate lists. *)
type t = {
  ids : Bitkey.t array; (* member -> id *)
  sorted_ids : int array; (* raw ids, ascending *)
  sorted_members : int array; (* member owning sorted_ids.(i) *)
  buckets : int array array array; (* member -> cpl bucket -> entries *)
  bucket_size : int;
  alpha : int;
  (* per-lookup scratch; a slot is live iff its stamp equals the
     current generation *)
  mutable generation : int;
  cand_stamp : int array;
  contacted_stamp : int array;
  dead_stamp : int array;
  mutable cand_buf : int array;
  mutable cand_len : int;
  table_dist : int array; (* routing-table sort scratch *)
  table_buf : int array;
  batch_dist : int array; (* alpha smallest pending, ascending *)
  batch_buf : int array;
}

let members t = Array.length t.ids
let id_of t m = t.ids.(m)

let distance key id = Bitkey.xor_distance key id

(* First position in [lo, hi) whose id has bit [depth] set (MSB-first).
   Within a segment sharing all bits above [depth], ascending id order
   puts every 0-bit id before every 1-bit id. *)
let split t lo hi depth =
  let bit = 1 lsl (Bitkey.width - 1 - depth) in
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if t.sorted_ids.(mid) land bit = 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Visit members in strictly increasing XOR distance from [key],
   stopping early when [f] returns [false].  At each trie level the
   child whose bit matches the key is exhausted first; ids are distinct,
   so every segment of two or more ids has a discriminating bit and the
   recursion terminates. *)
let rec visit_xor t keybits lo hi depth f =
  if lo >= hi then true
  else if hi - lo = 1 then f t.sorted_members.(lo)
  else begin
    let mid = split t lo hi depth in
    if mid = lo || mid = hi then visit_xor t keybits lo hi (depth + 1) f
    else if keybits land (1 lsl (Bitkey.width - 1 - depth)) <> 0 then
      if visit_xor t keybits mid hi (depth + 1) f then
        visit_xor t keybits lo mid (depth + 1) f
      else false
    else if visit_xor t keybits lo mid (depth + 1) f then
      visit_xor t keybits mid hi (depth + 1) f
    else false
  end

let visit_closest t key f =
  ignore (visit_xor t (Bitkey.to_int key) 0 (members t) 0 f)

(* The [k] members closest to [key] in XOR distance: the first [k]
   stops of the trie walk, already in increasing-distance order (the
   order the old full sort produced — XOR distances of distinct ids are
   distinct, so the ordering is unique). *)
let closest_members t key ~k =
  let n = members t in
  let k = min k n in
  if k < 0 then invalid_arg "Kademlia.closest_members: negative k";
  if k = 0 then [||]
  else begin
    let out = Array.make k 0 in
    let count = ref 0 in
    visit_closest t key (fun m ->
        out.(!count) <- m;
        incr count;
        !count < k);
    out
  end

(* Nearest online member = first online stop of the same walk. *)
let responsible t ~online key =
  let best = ref (-1) in
  visit_closest t key (fun m ->
      if online m then begin
        best := m;
        false
      end
      else true);
  if !best < 0 then None else Some !best

let create rng ~members:n ?(bucket_size = 8) ?(alpha = 3) () =
  if n < 1 then invalid_arg "Kademlia.create: need >= 1 member";
  if bucket_size < 1 then invalid_arg "Kademlia.create: bucket_size must be >= 1";
  if alpha < 1 then invalid_arg "Kademlia.create: alpha must be >= 1";
  (* Bulk id draw with a sorted-array duplicate check instead of a
     boxed-key Hashtbl per peer.  A collision among n 62-bit draws has
     probability ~n^2/2^63, so the fix-up loop below effectively never
     runs and the RNG stream matches the old draw-until-fresh
     implementation in every collision-free run (the only runs that
     occur in practice). *)
  let ids = Array.init n (fun _ -> Bitkey.random rng) in
  let order = Array.init n Fun.id in
  let sort_order () =
    Array.sort
      (fun a b ->
        compare (Bitkey.to_int ids.(a)) (Bitkey.to_int ids.(b)))
      order
  in
  sort_order ();
  let rec dedup () =
    let clashed = ref false in
    for i = 1 to n - 1 do
      if Bitkey.equal ids.(order.(i)) ids.(order.(i - 1)) then begin
        clashed := true;
        (* redraw at the later member index, as the sequential
           implementation would have *)
        let victim = max order.(i) order.(i - 1) in
        ids.(victim) <- Bitkey.random rng
      end
    done;
    if !clashed then begin
      sort_order ();
      dedup ()
    end
  in
  dedup ();
  let sorted_ids = Array.make n 0 in
  let sorted_members = Array.make n 0 in
  for i = 0 to n - 1 do
    sorted_ids.(i) <- Bitkey.to_int ids.(order.(i));
    sorted_members.(i) <- order.(i)
  done;
  (* Global construction: reservoir-sample up to [bucket_size] members
     into each common-prefix-length bucket.  One O(n^2) pass with a
     cheap inner body; fine at simulation scale. *)
  let buckets =
    Array.init n (fun m ->
        let mine = ids.(m) in
        let per_bucket = Array.make Bitkey.width [] in
        let counts = Array.make Bitkey.width 0 in
        for other = 0 to n - 1 do
          if other <> m then begin
            let cpl = Bitkey.common_prefix_length mine ids.(other) in
            let b = min cpl (Bitkey.width - 1) in
            counts.(b) <- counts.(b) + 1;
            if List.length per_bucket.(b) < bucket_size then
              per_bucket.(b) <- other :: per_bucket.(b)
            else if Rng.int rng counts.(b) < bucket_size then begin
              (* Reservoir replacement keeps bucket membership uniform
                 among eligible members. *)
              let keep = List.filteri (fun i _ -> i > 0) per_bucket.(b) in
              per_bucket.(b) <- other :: keep
            end
          end
        done;
        Array.map Array.of_list per_bucket)
  in
  {
    ids;
    sorted_ids;
    sorted_members;
    buckets;
    bucket_size;
    alpha;
    generation = 0;
    cand_stamp = Array.make n 0;
    contacted_stamp = Array.make n 0;
    dead_stamp = Array.make n 0;
    cand_buf = Array.make 64 0;
    cand_len = 0;
    table_dist = Array.make (Bitkey.width * bucket_size) 0;
    table_buf = Array.make (Bitkey.width * bucket_size) 0;
    batch_dist = Array.make alpha 0;
    batch_buf = Array.make alpha 0;
  }

type outcome = { responsible : int option; messages : int; hops : int }

(* In-place quicksort of (dist, member) pairs held in two parallel
   scratch arrays — the routing-table answers are a few hundred entries
   at most, and sorting them in scratch replaces the old per-contact
   List.sort allocation. *)
let rec sort_pairs dist buf lo hi =
  if hi - lo > 1 then begin
    let pivot = dist.((lo + hi) lsr 1) in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while dist.(!i) < pivot do incr i done;
      while dist.(!j) > pivot do decr j done;
      if !i <= !j then begin
        let d = dist.(!i) in
        dist.(!i) <- dist.(!j);
        dist.(!j) <- d;
        let m = buf.(!i) in
        buf.(!i) <- buf.(!j);
        buf.(!j) <- m;
        incr i;
        decr j
      end
    done;
    sort_pairs dist buf lo (!j + 1);
    sort_pairs dist buf !i hi
  end

let lookup ?span ?deliver t rng ~online ~source ~key =
  ignore rng;
  if source < 0 || source >= members t then invalid_arg "Kademlia.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else
    match responsible t ~online key with
    | None -> { responsible = None; messages = 0; hops = 0 }
    | Some target ->
        let messages = ref 0 in
        let hops = ref 0 in
        t.generation <- t.generation + 1;
        let gen = t.generation in
        t.cand_len <- 0;
        let add_candidate m =
          if t.cand_stamp.(m) <> gen then begin
            t.cand_stamp.(m) <- gen;
            if t.cand_len = Array.length t.cand_buf then begin
              let bigger = Array.make (2 * t.cand_len) 0 in
              Array.blit t.cand_buf 0 bigger 0 t.cand_len;
              t.cand_buf <- bigger
            end;
            t.cand_buf.(t.cand_len) <- m;
            t.cand_len <- t.cand_len + 1
          end
        in
        (* A member's routing-table answer to "who do you know near
           [key]?": its bucket entries, closest [bucket_size] first.
           Sorted in scratch; entries duplicated by past repairs count
           against the quota exactly as they did in the old sorted
           list. *)
        let add_closest_in_table member =
          let len = ref 0 in
          let buckets = t.buckets.(member) in
          for b = 0 to Array.length buckets - 1 do
            let bucket = buckets.(b) in
            for i = 0 to Array.length bucket - 1 do
              t.table_buf.(!len) <- bucket.(i);
              t.table_dist.(!len) <- distance key t.ids.(bucket.(i));
              incr len
            done
          done;
          sort_pairs t.table_dist t.table_buf 0 !len;
          let take = min !len t.bucket_size in
          for i = 0 to take - 1 do
            add_candidate t.table_buf.(i)
          done
        in
        t.contacted_stamp.(source) <- gen;
        add_closest_in_table source;
        let best_online = ref source in
        let finished = ref (source = target) in
        while not !finished do
          (* Up to alpha closest uncontacted, un-dead candidates, in
             increasing distance (the head of the old sorted pending
             list — XOR distances of distinct ids never tie). *)
          let batch_len = ref 0 in
          for idx = 0 to t.cand_len - 1 do
            let m = t.cand_buf.(idx) in
            if t.contacted_stamp.(m) <> gen && t.dead_stamp.(m) <> gen then begin
              let d = distance key t.ids.(m) in
              if !batch_len < t.alpha then begin
                let p = ref !batch_len in
                while !p > 0 && t.batch_dist.(!p - 1) > d do
                  t.batch_dist.(!p) <- t.batch_dist.(!p - 1);
                  t.batch_buf.(!p) <- t.batch_buf.(!p - 1);
                  decr p
                done;
                t.batch_dist.(!p) <- d;
                t.batch_buf.(!p) <- m;
                incr batch_len
              end
              else if d < t.batch_dist.(t.alpha - 1) then begin
                let p = ref (t.alpha - 1) in
                while !p > 0 && t.batch_dist.(!p - 1) > d do
                  t.batch_dist.(!p) <- t.batch_dist.(!p - 1);
                  t.batch_buf.(!p) <- t.batch_buf.(!p - 1);
                  decr p
                done;
                t.batch_dist.(!p) <- d;
                t.batch_buf.(!p) <- m
              end
            end
          done;
          if !batch_len = 0 then finished := true
          else begin
            incr hops;
            for i = 0 to !batch_len - 1 do
              let m = t.batch_buf.(i) in
              incr messages;
              (* The iterative caller contacts each candidate directly;
                 under the network model that contact is one RPC
                 (consulted only for live candidates — offline ones
                 already pay their timeout message), and an exhausted
                 retry budget makes the candidate look dead —
                 Kademlia's native tolerance to unresponsive nodes, no
                 abort needed. *)
              if
                online m
                && (match deliver with None -> true | Some d -> d ~span ~src:source ~dst:m)
              then begin
                t.contacted_stamp.(m) <- gen;
                if distance key t.ids.(m) < distance key t.ids.(!best_online) then
                  best_online := m;
                add_closest_in_table m
              end
              else t.dead_stamp.(m) <- gen
            done;
            if !best_online = target then finished := true
          end
        done;
        let result = if !best_online = target then Some target else None in
        { responsible = result; messages = !messages; hops = !hops }

let bucket_count t m =
  Array.fold_left (fun acc b -> if Array.length b > 0 then acc + 1 else acc) 0 t.buckets.(m)

let routing_table_size t m =
  Array.fold_left (fun acc b -> acc + Array.length b) 0 t.buckets.(m)

(* Crash-stop state loss: empty every k-bucket of [peer].  Lookups from
   the member then start with no candidates and fail immediately (miss
   path); [probe_and_repair] only touches non-empty buckets, so only
   {!rebuild_routes} restores the table. *)
let forget_routes t ~peer =
  let buckets = t.buckets.(peer) in
  for b = 0 to Array.length buckets - 1 do
    buckets.(b) <- [||]
  done

(* Rejoin: repopulate [peer]'s k-buckets with the construction-time
   reservoir pass (uniform bucket membership among eligible members).
   One message per entry learned — the FIND_NODE traffic of a Kademlia
   join. *)
let rebuild_routes t rng ~peer =
  let n = members t in
  let mine = t.ids.(peer) in
  let per_bucket = Array.make Bitkey.width [] in
  let counts = Array.make Bitkey.width 0 in
  for other = 0 to n - 1 do
    if other <> peer then begin
      let cpl = Bitkey.common_prefix_length mine t.ids.(other) in
      let b = min cpl (Bitkey.width - 1) in
      counts.(b) <- counts.(b) + 1;
      if List.length per_bucket.(b) < t.bucket_size then
        per_bucket.(b) <- other :: per_bucket.(b)
      else if Rng.int rng counts.(b) < t.bucket_size then begin
        let keep = List.filteri (fun i _ -> i > 0) per_bucket.(b) in
        per_bucket.(b) <- other :: keep
      end
    end
  done;
  let messages = ref 0 in
  Array.iteri
    (fun b entries ->
      let arr = Array.of_list entries in
      t.buckets.(peer).(b) <- arr;
      messages := !messages + Array.length arr)
    per_bucket;
  !messages

let probe_and_repair t rng ~online ~peer ~probes =
  if probes < 0 then invalid_arg "Kademlia.probe_and_repair: negative probes";
  let nonempty =
    Array.to_list (Array.mapi (fun i b -> (i, b)) t.buckets.(peer))
    |> List.filter (fun (_, b) -> Array.length b > 0)
    |> Array.of_list
  in
  if Array.length nonempty = 0 then 0
  else begin
    let mine = t.ids.(peer) in
    for _ = 1 to probes do
      let b_idx, bucket = nonempty.(Rng.int rng (Array.length nonempty)) in
      let i = Rng.int rng (Array.length bucket) in
      if not (online bucket.(i)) then begin
        (* Replace with a random online member sharing the same bucket
           (common-prefix-length) if one exists; bounded sampling keeps
           the repair cheap. *)
        let n = members t in
        let rec attempt k =
          if k = 0 then ()
          else
            let cand = Rng.int rng n in
            let cpl = Bitkey.common_prefix_length mine t.ids.(cand) in
            let cand_bucket = min cpl (Bitkey.width - 1) in
            if cand <> peer && online cand && cand_bucket = b_idx then bucket.(i) <- cand
            else attempt (k - 1)
        in
        attempt 30
      end
    done;
    probes
  end
